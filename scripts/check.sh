#!/usr/bin/env bash
# Local/CI entry point mirroring the tier-1 verify command.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
cd build && ctest --output-on-failure -j
