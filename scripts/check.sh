#!/usr/bin/env bash
# Local/CI entry point mirroring the tier-1 verify command, plus the docs
# target: the documentation layer must exist and every bench executable the
# README lists must be present in the build tree.
#
# Opt-in legs:
#   CHECK_SANITIZE=1  rebuild the kernel-facing suites plus the adaptive
#                     estimation suite under ASan+UBSan in build-asan/ and
#                     run them (the leg .github/workflows/ci.yml runs on
#                     every push).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# ---- docs target ------------------------------------------------------------
status=0
for doc in README.md docs/ARCHITECTURE.md docs/CAMPAIGNS.md docs/SHARDING.md docs/SNAPSHOT_FORMAT.md docs/RESULT_FORMAT.md docs/DISPATCHER.md; do
  if [[ ! -f "$doc" ]]; then
    echo "docs check FAILED: $doc is missing" >&2
    status=1
  fi
done

# Every fig*/tab*/ablation_*/ext*/perf_* executable named in the README's
# bench table must exist in the build tree. (while-read instead of mapfile
# for bash 3.2 compatibility; empty-array guards for set -u on bash < 4.4.)
bench_count=0
if [[ -f README.md ]]; then
  while IFS= read -r name; do
    bench_count=$((bench_count + 1))
    if [[ ! -x "build/$name" ]]; then
      echo "docs check FAILED: README.md lists $name but build/$name is missing" >&2
      status=1
    fi
  done < <(grep -oE '`(fig[0-9]|tab[0-9]|ext[0-9]|ablation_|perf_)[a-z0-9_]+`' README.md |
    tr -d '\`' | sort -u)
  if [[ $bench_count -eq 0 ]]; then
    echo "docs check FAILED: README.md lists no bench executables" >&2
    status=1
  fi
fi

# Every flag the README's "Performance modes" table advertises must exist
# in perf_campaign --help, so the docs can never drift from the bench.
flag_count=0
if [[ -x build/perf_campaign ]]; then
  perf_help="$(./build/perf_campaign --help)"
  while IFS= read -r flag; do
    flag_count=$((flag_count + 1))
    if ! grep -qF -- "$flag" <<< "$perf_help"; then
      echo "docs check FAILED: README performance mode $flag missing from perf_campaign --help" >&2
      status=1
    fi
  done < <(sed -n '/^## Performance modes/,/^## /p' README.md |
    grep -oE '`--[a-z-]+' | tr -d '\`' | sort -u)
  if [[ $flag_count -eq 0 ]]; then
    echo "docs check FAILED: README lists no performance-mode flags" >&2
    status=1
  fi
else
  echo "docs check FAILED: build/perf_campaign missing (needed for the flags check)" >&2
  status=1
fi

if [[ $status -ne 0 ]]; then
  exit $status
fi
echo "docs check OK (README.md, docs/{ARCHITECTURE,CAMPAIGNS,SHARDING,SNAPSHOT_FORMAT,RESULT_FORMAT,DISPATCHER}.md, $bench_count bench executables, $flag_count perf flags)"

# ---- sharding smoke ----------------------------------------------------------
# Drive the distribution layer end to end through its real CLIs — plan two
# shards, execute each as a separate worker process (one resuming serialized
# snapshots), merge — and require the merged CSV to be byte-identical to the
# single-process campaign (the docs/SHARDING.md equivalence contract).
smoke_dir=build/shard_smoke
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
./build/qufi_shard_plan --circuit bv --width 4 --theta-step 60 --phi-step 90 \
  --points 4 --shards 2 --out-dir "$smoke_dir" > /dev/null
./build/qufi_shard_worker --manifest "$smoke_dir/shard_000.manifest" \
  --out "$smoke_dir/part_000.csv" --snapshot-dir "$smoke_dir/snaps" > /dev/null
./build/qufi_shard_worker --manifest "$smoke_dir/shard_001.manifest" \
  --out "$smoke_dir/part_001.csv" > /dev/null
./build/qufi_shard_merge --out "$smoke_dir/merged.csv" \
  "$smoke_dir/part_001.csv" "$smoke_dir/part_000.csv" > /dev/null
./build/qufi_cli --circuit bv --width 4 --theta-step 60 --phi-step 90 \
  --points 4 --csv "$smoke_dir/single.csv" > /dev/null
if ! diff -q "$smoke_dir/merged.csv" "$smoke_dir/single.csv" > /dev/null; then
  echo "sharding smoke FAILED: merged shard CSV differs from single-process CSV" >&2
  diff "$smoke_dir/merged.csv" "$smoke_dir/single.csv" | head -5 >&2
  exit 1
fi
echo "sharding smoke OK (2-shard plan -> worker -> merge == single-process)"

# Same contract for the double-fault campaign through the tree engine and
# the tree-aware shard policy: the full primary x secondary grid, planned
# as two shards (one resuming serialized snapshots), must merge
# byte-identically to the single-process qufi_cli run.
./build/qufi_shard_plan --circuit bv --width 4 --double --theta-step 60 \
  --phi-step 90 --points 4 --shards 2 --policy tree \
  --out-dir "$smoke_dir/double" > /dev/null
./build/qufi_shard_worker --manifest "$smoke_dir/double/shard_000.manifest" \
  --out "$smoke_dir/double/part_000.csv" \
  --snapshot-dir "$smoke_dir/double/snaps" > /dev/null
./build/qufi_shard_worker --manifest "$smoke_dir/double/shard_001.manifest" \
  --out "$smoke_dir/double/part_001.csv" > /dev/null
./build/qufi_shard_merge --out "$smoke_dir/double/merged.csv" \
  "$smoke_dir/double/part_001.csv" "$smoke_dir/double/part_000.csv" > /dev/null
./build/qufi_cli --circuit bv --width 4 --double --theta-step 60 \
  --phi-step 90 --points 4 --csv "$smoke_dir/double/single.csv" > /dev/null
if ! diff -q "$smoke_dir/double/merged.csv" "$smoke_dir/double/single.csv" > /dev/null; then
  echo "double-fault smoke FAILED: merged shard CSV differs from single-process CSV" >&2
  diff "$smoke_dir/double/merged.csv" "$smoke_dir/double/single.csv" | head -5 >&2
  exit 1
fi
echo "double-fault smoke OK (tree-policy 2-shard merge == single-process)"

# Idle-noise campaigns run through the same plan -> worker -> merge path
# with moment-aware snapshots (one worker resuming serialized v3 snapshot
# files): the merged CSV must still be byte-identical to the single-process
# idle-noise run — the re-admission contract of docs/CAMPAIGNS.md.
./build/qufi_shard_plan --circuit bv --width 4 --idle-noise --theta-step 60 \
  --phi-step 90 --points 4 --shards 2 --out-dir "$smoke_dir/idle" > /dev/null
./build/qufi_shard_worker --manifest "$smoke_dir/idle/shard_000.manifest" \
  --out "$smoke_dir/idle/part_000.csv" \
  --snapshot-dir "$smoke_dir/idle/snaps" > /dev/null
./build/qufi_shard_worker --manifest "$smoke_dir/idle/shard_001.manifest" \
  --out "$smoke_dir/idle/part_001.csv" > /dev/null
./build/qufi_shard_merge --out "$smoke_dir/idle/merged.csv" \
  "$smoke_dir/idle/part_001.csv" "$smoke_dir/idle/part_000.csv" > /dev/null
./build/qufi_cli --circuit bv --width 4 --idle-noise --theta-step 60 \
  --phi-step 90 --points 4 --csv "$smoke_dir/idle/single.csv" > /dev/null
if ! diff -q "$smoke_dir/idle/merged.csv" "$smoke_dir/idle/single.csv" > /dev/null; then
  echo "idle-noise smoke FAILED: merged shard CSV differs from single-process CSV" >&2
  diff "$smoke_dir/idle/merged.csv" "$smoke_dir/idle/single.csv" | head -5 >&2
  exit 1
fi
echo "idle-noise smoke OK (moment-aware 2-shard merge == single-process)"

# Adaptive-estimation campaigns ride the identical plan -> worker -> merge
# path: the policy travels in the v4 manifest, every worker runs the
# deterministic estimator over its points, and the merged CSV — including
# the derived configs_evaluated / ci_halfwidth / est_qvf columns, which
# exporters recompute by replay — must be byte-identical to the
# single-process `qufi_cli --adaptive` run (docs/CAMPAIGNS.md "Adaptive
# estimation" determinism contract).
./build/qufi_shard_plan --circuit bv --width 4 --adaptive --points 4 \
  --shards 2 --out-dir "$smoke_dir/adaptive" > /dev/null
./build/qufi_shard_worker --manifest "$smoke_dir/adaptive/shard_000.manifest" \
  --out "$smoke_dir/adaptive/part_000.csv" \
  --snapshot-dir "$smoke_dir/adaptive/snaps" > /dev/null
./build/qufi_shard_worker --manifest "$smoke_dir/adaptive/shard_001.manifest" \
  --out "$smoke_dir/adaptive/part_001.csv" > /dev/null
./build/qufi_shard_merge --out "$smoke_dir/adaptive/merged.csv" \
  "$smoke_dir/adaptive/part_001.csv" "$smoke_dir/adaptive/part_000.csv" > /dev/null
./build/qufi_cli --circuit bv --width 4 --adaptive --points 4 \
  --csv "$smoke_dir/adaptive/single.csv" > /dev/null
if ! diff -q "$smoke_dir/adaptive/merged.csv" "$smoke_dir/adaptive/single.csv" > /dev/null; then
  echo "adaptive smoke FAILED: merged shard CSV differs from single-process --adaptive CSV" >&2
  diff "$smoke_dir/adaptive/merged.csv" "$smoke_dir/adaptive/single.csv" | head -5 >&2
  exit 1
fi
echo "adaptive smoke OK (estimation-policy 2-shard merge == single-process)"

# Columnar result-path smoke: the same three campaigns (single, double,
# idle-noise) through the binary QUFIPART pipeline — workers streaming
# columnar partials, a streaming k-way merge to a merged container, and a
# CSV export — must all be byte-identical to the single-process CSV each
# text smoke above already produced (the docs/RESULT_FORMAT.md projection
# contract). The direct merge-to-CSV path is checked too.
for variant in single double idle; do
  case "$variant" in
    single) vdir="$smoke_dir";        vlabel="single-fault" ;;
    double) vdir="$smoke_dir/double"; vlabel="double-fault" ;;
    idle)   vdir="$smoke_dir/idle";   vlabel="idle-noise" ;;
  esac
  ./build/qufi_shard_worker --manifest "$vdir/shard_000.manifest" \
    --format columnar --out "$vdir/part_000.qp" \
    --snapshot-dir "$vdir/snaps" > /dev/null
  ./build/qufi_shard_worker --manifest "$vdir/shard_001.manifest" \
    --format columnar --out "$vdir/part_001.qp" > /dev/null
  ./build/qufi_shard_merge --format columnar --out "$vdir/merged.qp" \
    "$vdir/part_001.qp" "$vdir/part_000.qp" > /dev/null
  ./build/qufi_export_csv --out "$vdir/exported.csv" "$vdir/merged.qp" \
    > /dev/null
  if ! diff -q "$vdir/exported.csv" "$vdir/single.csv" > /dev/null; then
    echo "columnar smoke FAILED ($vlabel): merge+export CSV differs from single-process CSV" >&2
    diff "$vdir/exported.csv" "$vdir/single.csv" | head -5 >&2
    exit 1
  fi
  ./build/qufi_shard_merge --format csv --out "$vdir/streamed.csv" \
    "$vdir/part_001.qp" "$vdir/part_000.qp" > /dev/null
  if ! diff -q "$vdir/streamed.csv" "$vdir/single.csv" > /dev/null; then
    echo "columnar smoke FAILED ($vlabel): streaming merge-to-CSV differs from single-process CSV" >&2
    diff "$vdir/streamed.csv" "$vdir/single.csv" | head -5 >&2
    exit 1
  fi
done
echo "columnar smoke OK (QUFIPART worker -> streaming merge -> export == single-process, 3 campaigns)"

# The sharded bench line must keep reporting the result-path metrics the
# README documents (merge_ms, partial_bytes), so perf trajectories can
# track the streaming merge. One --json --shards 2 pass over the paper
# circuits exercises the real plan -> worker -> merge path.
perf_json="$(./build/perf_campaign --json --shards 2)"
for key in merge_ms partial_bytes peak_rss_kb; do
  if ! grep -q "\"$key\":" <<< "$perf_json"; then
    echo "perf json FAILED: perf_campaign --json --shards 2 output lacks \"$key\"" >&2
    exit 1
  fi
done
echo "perf json OK (merge_ms / partial_bytes / peak_rss_kb reported)"

# Dispatcher smoke: two concurrent campaigns through qufid's process fleet
# with a chaos kill — the first spawned worker is SIGKILLed at spawn, while
# it provably holds its lease, so the kill can never race shard completion
# and a single drain always observes it (no retry loop needed). The lease
# expires, the shard is requeued and re-run — and both final CSVs must
# STILL be byte-identical to the single-process qufi_cli runs (the
# docs/DISPATCHER.md contract).
disp_dir=build/dispatcher_smoke
rm -rf "$disp_dir"
mkdir -p "$disp_dir/out"
./build/qufi_submit --spool "$disp_dir/spool" --name bv4 --circuit bv \
  --width 4 --theta-step 60 --phi-step 90 --csv "$disp_dir/out/bv4.csv" \
  > /dev/null
./build/qufi_submit --spool "$disp_dir/spool" --name dj4 --circuit dj \
  --width 4 --theta-step 60 --phi-step 90 --priority 5 \
  --csv "$disp_dir/out/dj4.csv" > /dev/null
./build/qufid --spool "$disp_dir/spool" --work-dir "$disp_dir/work" \
  --fleet process --workers 2 --chaos-kill 1 --lease-timeout 2000 \
  --drain > "$disp_dir/qufid.log"
if ! grep -q '"event":"chaos_kill"' "$disp_dir/qufid.log"; then
  echo "dispatcher smoke FAILED: qufid --chaos-kill never killed a worker" >&2
  exit 1
fi
# The killed worker held a lease, so the journal must record its requeue.
if ! grep -q ' requeue ' "$disp_dir/work/qufid.journal"; then
  echo "dispatcher smoke FAILED: no requeue journaled after the chaos kill" >&2
  exit 1
fi
./build/qufi_cli --circuit bv --width 4 --theta-step 60 --phi-step 90 \
  --csv "$disp_dir/ref_bv4.csv" > /dev/null
./build/qufi_cli --circuit dj --width 4 --theta-step 60 --phi-step 90 \
  --csv "$disp_dir/ref_dj4.csv" > /dev/null
for name in bv4 dj4; do
  if ! diff -q "$disp_dir/out/$name.csv" "$disp_dir/ref_$name.csv" > /dev/null; then
    echo "dispatcher smoke FAILED: $name CSV differs from single-process CSV after worker kill" >&2
    diff "$disp_dir/out/$name.csv" "$disp_dir/ref_$name.csv" | head -5 >&2
    exit 1
  fi
done
echo "dispatcher smoke OK (2 campaigns, chaos-killed worker, CSVs == single-process)"

# Crash-durability smoke: SIGKILL the daemon ITSELF (and its workers)
# mid-campaign, then restart qufid over the same spool + work dir. The
# write-ahead journal (on by default) must drive recovery: the restarted
# daemon replays it, adopts/requeues the in-flight attempts, finishes the
# drain with byte-identical CSVs, and never re-runs a shard the journal
# already recorded as complete.
crash_dir=build/dispatcher_crash_smoke
rm -rf "$crash_dir"
mkdir -p "$crash_dir/out"
./build/qufi_submit --spool "$crash_dir/spool" --name bv4 --circuit bv \
  --width 4 --theta-step 60 --phi-step 90 --csv "$crash_dir/out/bv4.csv" \
  > /dev/null
./build/qufi_submit --spool "$crash_dir/spool" --name dj4 --circuit dj \
  --width 4 --theta-step 60 --phi-step 90 --priority 5 \
  --csv "$crash_dir/out/dj4.csv" > /dev/null
./build/qufid --spool "$crash_dir/spool" --work-dir "$crash_dir/work" \
  --fleet process --workers 1 --lease-timeout 2000 --drain \
  > "$crash_dir/qufid1.log" &
qufid_pid=$!
# Kill once the journal has acknowledged at least one completed shard, so
# the no-re-execution check below is about a genuinely Done shard.
for i in $(seq 1 200); do
  if [[ -f "$crash_dir/work/qufid.journal" ]] &&
     grep -q ' complete ' "$crash_dir/work/qufid.journal" 2>/dev/null; then
    break
  fi
  if ! kill -0 "$qufid_pid" 2>/dev/null; then break; fi
  sleep 0.1
done
worker_pids="$(pgrep -P "$qufid_pid" 2>/dev/null || true)"
kill -9 "$qufid_pid" $worker_pids 2>/dev/null || true
wait "$qufid_pid" 2>/dev/null || true
./build/qufid --spool "$crash_dir/spool" --work-dir "$crash_dir/work" \
  --fleet process --workers 2 --lease-timeout 2000 --drain \
  > "$crash_dir/qufid2.log"
if ! grep -q '"event":"recovered"' "$crash_dir/qufid2.log"; then
  echo "restart smoke FAILED: restarted qufid did not report journal recovery" >&2
  cat "$crash_dir/qufid2.log" >&2
  exit 1
fi
for name in bv4 dj4; do
  if ! diff -q "$crash_dir/out/$name.csv" "$disp_dir/ref_$name.csv" > /dev/null; then
    echo "restart smoke FAILED: $name CSV differs from single-process CSV after daemon SIGKILL + restart" >&2
    diff "$crash_dir/out/$name.csv" "$disp_dir/ref_$name.csv" | head -5 >&2
    exit 1
  fi
done
# No completed shard may ever be leased again: once the journal records
# `complete` for a (campaign, shard), no later record may `acquire` it.
if ! awk '
  $2 == "complete" { done[$5 " " $6] = $1 + 0 }
  $2 == "acquire"  { key = $5 " " $6
                     if (key in done && $1 + 0 > done[key]) {
                       print "shard re-acquired after complete: " key; bad = 1 } }
  END { exit bad }' "$crash_dir/work/qufid.journal"; then
  echo "restart smoke FAILED: a completed shard was re-executed after recovery" >&2
  exit 1
fi
echo "restart smoke OK (daemon SIGKILLed mid-campaign, journal recovery, no completed shard re-run)"

# Golden-CSV regression through the real CLI: the committed bv-2q fixture
# pins the column schema and row ordering documented in the README, so
# qufi_cli --csv output must stay byte-identical to it.
./build/qufi_cli --circuit bv --width 2 --theta-step 90 --phi-step 180 \
  --csv "$smoke_dir/golden.csv" > /dev/null
if ! diff -q "$smoke_dir/golden.csv" tests/golden/bv2q_single.csv > /dev/null; then
  echo "golden CSV FAILED: qufi_cli output differs from tests/golden/bv2q_single.csv" >&2
  diff "$smoke_dir/golden.csv" tests/golden/bv2q_single.csv | head -5 >&2
  exit 1
fi
echo "golden CSV OK (qufi_cli --csv == tests/golden/bv2q_single.csv)"

# ---- kernel smoke ------------------------------------------------------------
# Every kernel set available on this host must produce byte-identical
# fixed-seed statevector + density digests (perf_simulator --digest prints
# no set name, so the outputs diff byte-exactly), and the golden CSV must
# survive a forced-scalar run — the kernel-dispatch bit-identity contract
# of docs/ARCHITECTURE.md. The --json speedup lines are informational here;
# BENCH tracking compares them across commits.
if [[ -x build/perf_simulator ]]; then
  kernel_sets="$(./build/perf_simulator --list-kernels)"
  QUFI_KERNELS=scalar ./build/perf_simulator --digest > build/kernel_digest_scalar.txt
  for kset in $kernel_sets; do
    QUFI_KERNELS="$kset" ./build/perf_simulator --digest > "build/kernel_digest_$kset.txt"
    if ! diff -q "build/kernel_digest_$kset.txt" build/kernel_digest_scalar.txt > /dev/null; then
      echo "kernel smoke FAILED: $kset digests differ from scalar" >&2
      diff "build/kernel_digest_$kset.txt" build/kernel_digest_scalar.txt >&2
      exit 1
    fi
  done
  QUFI_KERNELS=scalar ./build/qufi_cli --circuit bv --width 2 --theta-step 90 \
    --phi-step 180 --csv "$smoke_dir/golden_scalar.csv" > /dev/null
  if ! diff -q "$smoke_dir/golden_scalar.csv" tests/golden/bv2q_single.csv > /dev/null; then
    echo "kernel smoke FAILED: scalar-kernel golden CSV differs from fixture" >&2
    exit 1
  fi
  # The golden CSV must also survive the best vectorized set this host has
  # (--list-kernels prints best-first), not just the forced-scalar run.
  best_kset="$(echo "$kernel_sets" | head -n 1)"
  if [[ "$best_kset" != "scalar" ]]; then
    QUFI_KERNELS="$best_kset" ./build/qufi_cli --circuit bv --width 2 \
      --theta-step 90 --phi-step 180 \
      --csv "$smoke_dir/golden_$best_kset.csv" > /dev/null
    if ! diff -q "$smoke_dir/golden_$best_kset.csv" tests/golden/bv2q_single.csv > /dev/null; then
      echo "kernel smoke FAILED: $best_kset-kernel golden CSV differs from fixture" >&2
      exit 1
    fi
  fi
  echo "kernel smoke OK (byte-identical digests across: $(echo $kernel_sets | tr '\n' ' '))"
else
  echo "kernel smoke SKIPPED: build/perf_simulator missing (google-benchmark not found)"
fi

# ---- opt-in sanitizer pass ---------------------------------------------------
# CHECK_SANITIZE=1 rebuilds the kernel-facing tests, the adaptive
# estimation suite, and the dispatcher/journal suite under ASan+UBSan in a
# separate build tree and runs them, so the vectorized pointer arithmetic,
# the estimator's cell bookkeeping, and the journal's recovery/truncation
# paths are exercised with checking on before merge.
if [[ "${CHECK_SANITIZE:-0}" == "1" ]]; then
  cmake -B build-asan -S . -DQUFI_SANITIZE=ON -DQUFI_BUILD_BENCHES=OFF \
    -DQUFI_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j --target test_kernels test_sim test_adaptive \
    test_dispatcher
  for t in test_kernels test_sim test_adaptive test_dispatcher; do
    ./build-asan/$t > /dev/null
  done
  # The vectorized sets must survive sanitized runs too, not just the default.
  for kset in $(./build/perf_simulator --list-kernels); do
    QUFI_KERNELS="$kset" ./build-asan/test_kernels > /dev/null
  done
  echo "sanitizer pass OK (test_kernels + test_sim + test_adaptive + test_dispatcher under ASan+UBSan)"
fi
