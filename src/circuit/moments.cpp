#include "circuit/moments.hpp"

#include <algorithm>
#include <limits>

namespace qufi::circ {

Moments compute_moments(const QuantumCircuit& circuit) {
  Moments result;
  const auto& instrs = circuit.instructions();
  result.moment_of.resize(instrs.size(), 0);

  std::vector<int> level(
      static_cast<std::size_t>(circuit.num_qubits() + circuit.num_clbits()),
      0);

  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const auto& instr = instrs[i];
    int start = 0;
    for (int q : instr.qubits)
      start = std::max(start, level[static_cast<std::size_t>(q)]);
    for (int c : instr.clbits)
      start = std::max(
          start, level[static_cast<std::size_t>(circuit.num_qubits() + c)]);

    if (instr.kind == GateKind::Barrier) {
      for (int q : instr.qubits) level[static_cast<std::size_t>(q)] = start;
      result.moment_of[i] = start;
      continue;
    }

    result.moment_of[i] = start;
    const int end = start + 1;
    for (int q : instr.qubits) level[static_cast<std::size_t>(q)] = end;
    for (int c : instr.clbits)
      level[static_cast<std::size_t>(circuit.num_qubits() + c)] = end;

    if (static_cast<std::size_t>(end) > result.instructions_per_moment.size())
      result.instructions_per_moment.resize(static_cast<std::size_t>(end));
    result.instructions_per_moment[static_cast<std::size_t>(start)].push_back(
        i);
  }
  return result;
}

std::vector<int> moment_frontier(const QuantumCircuit& circuit,
                                 std::size_t prefix_length) {
  const auto& instrs = circuit.instructions();
  std::vector<int> level(
      static_cast<std::size_t>(circuit.num_qubits() + circuit.num_clbits()),
      0);
  const std::size_t n = std::min(prefix_length, instrs.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& instr = instrs[i];
    int start = 0;
    for (int q : instr.qubits)
      start = std::max(start, level[static_cast<std::size_t>(q)]);
    for (int c : instr.clbits)
      start = std::max(
          start, level[static_cast<std::size_t>(circuit.num_qubits() + c)]);

    if (instr.kind == GateKind::Barrier) {
      for (int q : instr.qubits) level[static_cast<std::size_t>(q)] = start;
      continue;
    }

    const int end = start + 1;
    for (int q : instr.qubits) level[static_cast<std::size_t>(q)] = end;
    for (int c : instr.clbits)
      level[static_cast<std::size_t>(circuit.num_qubits() + c)] = end;
  }
  return level;
}

int sealed_moment_count(const QuantumCircuit& circuit,
                        std::size_t prefix_length,
                        const std::vector<int>& qubits) {
  const std::vector<int> frontier = moment_frontier(circuit, prefix_length);
  int sealed = std::numeric_limits<int>::max();
  for (const int q : qubits) {
    sealed = std::min(sealed, frontier[static_cast<std::size_t>(q)]);
  }
  return qubits.empty() ? 0 : sealed;
}

}  // namespace qufi::circ
