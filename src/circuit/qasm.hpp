#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace qufi::circ {

/// Serializes a circuit to OpenQASM 2.0. Gates outside qelib1.inc (sx,
/// sxdg) are emitted with local gate definitions so the output loads in any
/// QASM 2 toolchain. The paper exports faulty circuits as QASM to run them
/// on other systems; this is that interop path.
std::string to_qasm(const QuantumCircuit& circuit);

/// Parses the OpenQASM 2.0 subset produced by to_qasm (plus common
/// variations: arbitrary whitespace, `pi` expressions with + - * / and
/// parentheses, multiple qreg/creg declarations are rejected for clarity).
/// Throws qufi::Error with a line-tagged message on any syntax problem.
QuantumCircuit from_qasm(const std::string& text);

}  // namespace qufi::circ
