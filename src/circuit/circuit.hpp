#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qufi::circ {

/// One operation applied to specific qubits (and classical bits for
/// Measure). Parameter count is validated against the gate metadata when
/// appended to a circuit.
struct Instruction {
  GateKind kind = GateKind::I;
  std::vector<int> qubits;
  std::vector<int> clbits;   ///< only used by Measure (same length as qubits)
  std::vector<double> params;

  bool is_unitary() const { return gate_info(kind).is_unitary; }
  const char* name() const { return gate_info(kind).name; }
};

/// A quantum circuit: an ordered list of instructions over `num_qubits`
/// qubits and `num_clbits` classical bits.
///
/// Builder methods return *this so construction chains:
///   QuantumCircuit qc(2, 2);
///   qc.h(0).cx(0, 1).measure_all();
///
/// Conventions (Qiskit-compatible): qubit q is bit q of the state index;
/// for controlled gates the first operand is the control.
class QuantumCircuit {
 public:
  QuantumCircuit() = default;
  QuantumCircuit(int num_qubits, int num_clbits = 0);

  int num_qubits() const { return num_qubits_; }
  int num_clbits() const { return num_clbits_; }
  const std::vector<Instruction>& instructions() const { return instructions_; }
  std::vector<Instruction>& mutable_instructions() { return instructions_; }
  std::size_t size() const { return instructions_.size(); }
  std::string name() const { return name_; }
  QuantumCircuit& set_name(std::string name);

  // ---- single-qubit gates ----
  QuantumCircuit& i(int q) { return add1(GateKind::I, q); }
  QuantumCircuit& x(int q) { return add1(GateKind::X, q); }
  QuantumCircuit& y(int q) { return add1(GateKind::Y, q); }
  QuantumCircuit& z(int q) { return add1(GateKind::Z, q); }
  QuantumCircuit& h(int q) { return add1(GateKind::H, q); }
  QuantumCircuit& s(int q) { return add1(GateKind::S, q); }
  QuantumCircuit& sdg(int q) { return add1(GateKind::Sdg, q); }
  QuantumCircuit& t(int q) { return add1(GateKind::T, q); }
  QuantumCircuit& tdg(int q) { return add1(GateKind::Tdg, q); }
  QuantumCircuit& sx(int q) { return add1(GateKind::SX, q); }
  QuantumCircuit& sxdg(int q) { return add1(GateKind::SXdg, q); }
  QuantumCircuit& rx(double angle, int q) { return add1p(GateKind::RX, angle, q); }
  QuantumCircuit& ry(double angle, int q) { return add1p(GateKind::RY, angle, q); }
  QuantumCircuit& rz(double angle, int q) { return add1p(GateKind::RZ, angle, q); }
  QuantumCircuit& p(double angle, int q) { return add1p(GateKind::P, angle, q); }
  QuantumCircuit& u(double theta, double phi, double lambda, int q);

  // ---- multi-qubit gates ----
  QuantumCircuit& cx(int control, int target) { return add2(GateKind::CX, control, target); }
  QuantumCircuit& cy(int control, int target) { return add2(GateKind::CY, control, target); }
  QuantumCircuit& cz(int control, int target) { return add2(GateKind::CZ, control, target); }
  QuantumCircuit& ch(int control, int target) { return add2(GateKind::CH, control, target); }
  QuantumCircuit& cp(double angle, int control, int target);
  QuantumCircuit& crz(double angle, int control, int target);
  QuantumCircuit& swap(int a, int b) { return add2(GateKind::SWAP, a, b); }
  QuantumCircuit& ccx(int c0, int c1, int target);

  // ---- non-unitary directives ----
  /// Barrier over specific qubits; empty means all qubits.
  QuantumCircuit& barrier(std::vector<int> qubits = {});
  QuantumCircuit& measure(int qubit, int clbit);
  /// Measures qubit i into clbit i for all qubits (grows clbits if needed).
  QuantumCircuit& measure_all();
  QuantumCircuit& reset(int qubit);

  /// Appends a raw instruction (validated).
  QuantumCircuit& append(Instruction instr);
  /// Appends every instruction of `other` (dimension-checked).
  QuantumCircuit& compose(const QuantumCircuit& other);
  /// Appends `other` with its qubit i mapped to qubit_map[i] (clbits kept).
  QuantumCircuit& compose(const QuantumCircuit& other,
                          const std::vector<int>& qubit_map);

  /// Dagger of the circuit: reversed order, inverted gates. Throws if the
  /// circuit contains Measure or Reset. Barriers are preserved.
  QuantumCircuit inverse() const;

  /// Number of instructions per gate name, e.g. {"cx": 6, "h": 4}.
  std::map<std::string, int> count_ops() const;

  /// Number of unitary gate instructions (barriers/measures excluded).
  int num_unitary_gates() const;

  /// Circuit depth over unitary gates + measures (barriers are zero-width
  /// synchronization points). Computed via ASAP layering.
  int depth() const;

  /// True when every Measure appears after the last unitary gate touching
  /// its qubit (required by the density-matrix backend).
  bool measurements_are_terminal() const;

  /// Indices of qubits that are touched by at least one instruction.
  std::vector<int> active_qubits() const;

  /// Human-readable multi-line listing (one instruction per line).
  std::string to_string() const;

 private:
  QuantumCircuit& add1(GateKind kind, int q);
  QuantumCircuit& add1p(GateKind kind, double angle, int q);
  QuantumCircuit& add2(GateKind kind, int a, int b);
  void check_qubit(int q) const;
  void check_clbit(int c) const;

  int num_qubits_ = 0;
  int num_clbits_ = 0;
  std::string name_ = "circuit";
  std::vector<Instruction> instructions_;
};

}  // namespace qufi::circ
