#include "circuit/circuit.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace qufi::circ {

QuantumCircuit::QuantumCircuit(int num_qubits, int num_clbits)
    : num_qubits_(num_qubits), num_clbits_(num_clbits) {
  require(num_qubits >= 0, "QuantumCircuit: negative qubit count");
  require(num_clbits >= 0, "QuantumCircuit: negative clbit count");
}

QuantumCircuit& QuantumCircuit::set_name(std::string name) {
  name_ = std::move(name);
  return *this;
}

void QuantumCircuit::check_qubit(int q) const {
  require(q >= 0 && q < num_qubits_,
          "qubit index " + std::to_string(q) + " out of range [0, " +
              std::to_string(num_qubits_) + ")");
}

void QuantumCircuit::check_clbit(int c) const {
  require(c >= 0 && c < num_clbits_,
          "clbit index " + std::to_string(c) + " out of range [0, " +
              std::to_string(num_clbits_) + ")");
}

QuantumCircuit& QuantumCircuit::add1(GateKind kind, int q) {
  return append(Instruction{kind, {q}, {}, {}});
}

QuantumCircuit& QuantumCircuit::add1p(GateKind kind, double angle, int q) {
  return append(Instruction{kind, {q}, {}, {angle}});
}

QuantumCircuit& QuantumCircuit::add2(GateKind kind, int a, int b) {
  return append(Instruction{kind, {a, b}, {}, {}});
}

QuantumCircuit& QuantumCircuit::u(double theta, double phi, double lambda,
                                  int q) {
  return append(Instruction{GateKind::U, {q}, {}, {theta, phi, lambda}});
}

QuantumCircuit& QuantumCircuit::cp(double angle, int control, int target) {
  return append(Instruction{GateKind::CP, {control, target}, {}, {angle}});
}

QuantumCircuit& QuantumCircuit::crz(double angle, int control, int target) {
  return append(Instruction{GateKind::CRZ, {control, target}, {}, {angle}});
}

QuantumCircuit& QuantumCircuit::ccx(int c0, int c1, int target) {
  return append(Instruction{GateKind::CCX, {c0, c1, target}, {}, {}});
}

QuantumCircuit& QuantumCircuit::barrier(std::vector<int> qubits) {
  if (qubits.empty()) {
    qubits.resize(static_cast<std::size_t>(num_qubits_));
    std::iota(qubits.begin(), qubits.end(), 0);
  }
  return append(Instruction{GateKind::Barrier, std::move(qubits), {}, {}});
}

QuantumCircuit& QuantumCircuit::measure(int qubit, int clbit) {
  return append(Instruction{GateKind::Measure, {qubit}, {clbit}, {}});
}

QuantumCircuit& QuantumCircuit::measure_all() {
  if (num_clbits_ < num_qubits_) num_clbits_ = num_qubits_;
  for (int q = 0; q < num_qubits_; ++q) measure(q, q);
  return *this;
}

QuantumCircuit& QuantumCircuit::reset(int qubit) {
  return append(Instruction{GateKind::Reset, {qubit}, {}, {}});
}

QuantumCircuit& QuantumCircuit::append(Instruction instr) {
  const auto& info = gate_info(instr.kind);
  if (info.num_qubits > 0) {
    require(static_cast<int>(instr.qubits.size()) == info.num_qubits,
            std::string(info.name) + ": expected " +
                std::to_string(info.num_qubits) + " qubits, got " +
                std::to_string(instr.qubits.size()));
  } else {
    require(!instr.qubits.empty(), "barrier: needs at least one qubit");
  }
  require(static_cast<int>(instr.params.size()) == info.num_params,
          std::string(info.name) + ": expected " +
              std::to_string(info.num_params) + " params, got " +
              std::to_string(instr.params.size()));
  for (int q : instr.qubits) check_qubit(q);
  for (std::size_t a = 0; a < instr.qubits.size(); ++a)
    for (std::size_t b = a + 1; b < instr.qubits.size(); ++b)
      require(instr.qubits[a] != instr.qubits[b],
              std::string(info.name) + ": duplicate qubit operand " +
                  std::to_string(instr.qubits[a]));
  if (instr.kind == GateKind::Measure) {
    require(instr.clbits.size() == 1, "measure: needs exactly one clbit");
    check_clbit(instr.clbits[0]);
  } else {
    require(instr.clbits.empty(),
            std::string(info.name) + ": unexpected clbit operands");
  }
  instructions_.push_back(std::move(instr));
  return *this;
}

QuantumCircuit& QuantumCircuit::compose(const QuantumCircuit& other) {
  require(other.num_qubits_ <= num_qubits_,
          "compose: other circuit has more qubits");
  require(other.num_clbits_ <= num_clbits_,
          "compose: other circuit has more clbits");
  for (const auto& instr : other.instructions_) append(instr);
  return *this;
}

QuantumCircuit& QuantumCircuit::compose(const QuantumCircuit& other,
                                        const std::vector<int>& qubit_map) {
  require(static_cast<int>(qubit_map.size()) == other.num_qubits_,
          "compose: qubit_map size mismatch");
  for (const auto& instr : other.instructions_) {
    Instruction mapped = instr;
    for (auto& q : mapped.qubits) q = qubit_map.at(static_cast<std::size_t>(q));
    append(std::move(mapped));
  }
  return *this;
}

QuantumCircuit QuantumCircuit::inverse() const {
  QuantumCircuit inv(num_qubits_, num_clbits_);
  inv.set_name(name_ + "_dg");
  for (auto it = instructions_.rbegin(); it != instructions_.rend(); ++it) {
    if (it->kind == GateKind::Barrier) {
      inv.append(*it);
      continue;
    }
    require(it->is_unitary(),
            std::string("inverse: circuit contains non-unitary op ") +
                it->name());
    const auto ig = gate_inverse(it->kind, it->params);
    Instruction instr;
    instr.kind = ig.kind;
    instr.qubits = it->qubits;
    instr.params.assign(ig.params.begin(), ig.params.begin() + ig.num_params);
    inv.append(std::move(instr));
  }
  return inv;
}

std::map<std::string, int> QuantumCircuit::count_ops() const {
  std::map<std::string, int> counts;
  for (const auto& instr : instructions_) ++counts[instr.name()];
  return counts;
}

int QuantumCircuit::num_unitary_gates() const {
  int n = 0;
  for (const auto& instr : instructions_)
    if (instr.is_unitary()) ++n;
  return n;
}

int QuantumCircuit::depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_qubits_ + num_clbits_),
                         0);
  int depth = 0;
  for (const auto& instr : instructions_) {
    int start = 0;
    const auto touch = [&](int wire) {
      start = std::max(start, level[static_cast<std::size_t>(wire)]);
    };
    for (int q : instr.qubits) touch(q);
    for (int c : instr.clbits) touch(num_qubits_ + c);
    if (instr.kind == GateKind::Barrier) {
      // Synchronize without consuming a layer.
      for (int q : instr.qubits) level[static_cast<std::size_t>(q)] = start;
      continue;
    }
    const int end = start + 1;
    for (int q : instr.qubits) level[static_cast<std::size_t>(q)] = end;
    for (int c : instr.clbits)
      level[static_cast<std::size_t>(num_qubits_ + c)] = end;
    depth = std::max(depth, end);
  }
  return depth;
}

bool QuantumCircuit::measurements_are_terminal() const {
  std::vector<bool> measured(static_cast<std::size_t>(num_qubits_), false);
  for (const auto& instr : instructions_) {
    if (instr.kind == GateKind::Measure) {
      measured[static_cast<std::size_t>(instr.qubits[0])] = true;
    } else if (instr.kind != GateKind::Barrier) {
      for (int q : instr.qubits) {
        if (measured[static_cast<std::size_t>(q)]) return false;
      }
    }
  }
  return true;
}

std::vector<int> QuantumCircuit::active_qubits() const {
  std::vector<bool> used(static_cast<std::size_t>(num_qubits_), false);
  for (const auto& instr : instructions_) {
    if (instr.kind == GateKind::Barrier) continue;
    for (int q : instr.qubits) used[static_cast<std::size_t>(q)] = true;
  }
  std::vector<int> out;
  for (int q = 0; q < num_qubits_; ++q)
    if (used[static_cast<std::size_t>(q)]) out.push_back(q);
  return out;
}

std::string QuantumCircuit::to_string() const {
  std::ostringstream os;
  os << name_ << " (" << num_qubits_ << " qubits, " << num_clbits_
     << " clbits, " << instructions_.size() << " ops, depth " << depth()
     << ")\n";
  for (const auto& instr : instructions_) {
    os << "  " << instr.name();
    if (!instr.params.empty()) {
      os << '(';
      for (std::size_t k = 0; k < instr.params.size(); ++k) {
        if (k) os << ", ";
        os << instr.params[k];
      }
      os << ')';
    }
    os << ' ';
    for (std::size_t k = 0; k < instr.qubits.size(); ++k) {
      if (k) os << ',';
      os << 'q' << instr.qubits[k];
    }
    if (!instr.clbits.empty()) os << " -> c" << instr.clbits[0];
    os << '\n';
  }
  return os.str();
}

}  // namespace qufi::circ
