#include "circuit/gate.hpp"

#include <cmath>
#include <numbers>
#include <unordered_map>

#include "util/error.hpp"

namespace qufi::circ {

using util::cplx;
using util::Mat2;
using util::Mat4;

namespace {
constexpr double kPi = std::numbers::pi;

const GateInfo kInfos[] = {
    // name, qubits, params, unitary
    {"id", 1, 0, true},     // I
    {"x", 1, 0, true},      // X
    {"y", 1, 0, true},      // Y
    {"z", 1, 0, true},      // Z
    {"h", 1, 0, true},      // H
    {"s", 1, 0, true},      // S
    {"sdg", 1, 0, true},    // Sdg
    {"t", 1, 0, true},      // T
    {"tdg", 1, 0, true},    // Tdg
    {"sx", 1, 0, true},     // SX
    {"sxdg", 1, 0, true},   // SXdg
    {"rx", 1, 1, true},     // RX
    {"ry", 1, 1, true},     // RY
    {"rz", 1, 1, true},     // RZ
    {"p", 1, 1, true},      // P
    {"u", 1, 3, true},      // U
    {"cx", 2, 0, true},     // CX
    {"cy", 2, 0, true},     // CY
    {"cz", 2, 0, true},     // CZ
    {"ch", 2, 0, true},     // CH
    {"cp", 2, 1, true},     // CP
    {"crz", 2, 1, true},    // CRZ
    {"swap", 2, 0, true},   // SWAP
    {"ccx", 3, 0, true},    // CCX
    {"barrier", 0, 0, false},   // Barrier
    {"measure", 1, 0, false},   // Measure
    {"reset", 1, 0, false},     // Reset
};

void check_params(GateKind kind, std::span<const double> params) {
  const auto& info = gate_info(kind);
  qufi::require(static_cast<int>(params.size()) == info.num_params,
                std::string("gate ") + info.name + ": expected " +
                    std::to_string(info.num_params) + " params, got " +
                    std::to_string(params.size()));
}

}  // namespace

const GateInfo& gate_info(GateKind kind) {
  return kInfos[static_cast<int>(kind)];
}

GateKind gate_from_name(const std::string& name) {
  static const std::unordered_map<std::string, GateKind> kByName = [] {
    std::unordered_map<std::string, GateKind> m;
    for (int i = 0; i <= static_cast<int>(GateKind::Reset); ++i) {
      m.emplace(kInfos[i].name, static_cast<GateKind>(i));
    }
    return m;
  }();
  const auto it = kByName.find(name);
  qufi::require(it != kByName.end(), "unknown gate name: " + name);
  return it->second;
}

Mat2 gate_matrix1(GateKind kind, std::span<const double> params) {
  check_params(kind, params);
  const cplx i{0, 1};
  const double isq2 = 1.0 / std::sqrt(2.0);
  switch (kind) {
    case GateKind::I:
      return Mat2::identity();
    case GateKind::X:
      return Mat2{{0, 1, 1, 0}};
    case GateKind::Y:
      return Mat2{{0, -i, i, 0}};
    case GateKind::Z:
      return Mat2{{1, 0, 0, -1}};
    case GateKind::H:
      return Mat2{{isq2, isq2, isq2, -isq2}};
    case GateKind::S:
      return Mat2{{1, 0, 0, i}};
    case GateKind::Sdg:
      return Mat2{{1, 0, 0, -i}};
    case GateKind::T:
      return Mat2{{1, 0, 0, std::exp(i * (kPi / 4))}};
    case GateKind::Tdg:
      return Mat2{{1, 0, 0, std::exp(-i * (kPi / 4))}};
    case GateKind::SX: {
      const cplx p{0.5, 0.5}, m{0.5, -0.5};
      return Mat2{{p, m, m, p}};
    }
    case GateKind::SXdg: {
      const cplx p{0.5, 0.5}, m{0.5, -0.5};
      return Mat2{{m, p, p, m}};
    }
    case GateKind::RX: {
      const double h = params[0] / 2;
      return Mat2{{std::cos(h), -i * std::sin(h), -i * std::sin(h),
                   std::cos(h)}};
    }
    case GateKind::RY: {
      const double h = params[0] / 2;
      return Mat2{{std::cos(h), -std::sin(h), std::sin(h), std::cos(h)}};
    }
    case GateKind::RZ: {
      const double h = params[0] / 2;
      return Mat2{{std::exp(-i * h), 0, 0, std::exp(i * h)}};
    }
    case GateKind::P:
      return Mat2{{1, 0, 0, std::exp(i * params[0])}};
    case GateKind::U:
      return util::unitary_from_angles(params[0], params[1], params[2]);
    default:
      throw Error(std::string("gate_matrix1: not a single-qubit unitary: ") +
                  gate_info(kind).name);
  }
}

Mat4 gate_matrix2(GateKind kind, std::span<const double> params) {
  check_params(kind, params);
  // Index convention: basis |q1 q0> where operand 0 is the low bit. For
  // controlled gates operand 0 is the control, so the "target" block acts on
  // states with bit0 = 1 (indices 1 and 3).
  const auto controlled = [](const Mat2& u) {
    Mat4 m = Mat4::identity();
    m(1, 1) = u(0, 0);
    m(1, 3) = u(0, 1);
    m(3, 1) = u(1, 0);
    m(3, 3) = u(1, 1);
    return m;
  };
  switch (kind) {
    case GateKind::CX:
      return controlled(gate_matrix1(GateKind::X, {}));
    case GateKind::CY:
      return controlled(gate_matrix1(GateKind::Y, {}));
    case GateKind::CZ:
      return controlled(gate_matrix1(GateKind::Z, {}));
    case GateKind::CH:
      return controlled(gate_matrix1(GateKind::H, {}));
    case GateKind::CP: {
      const double lam[] = {params[0]};
      return controlled(gate_matrix1(GateKind::P, lam));
    }
    case GateKind::CRZ: {
      const double lam[] = {params[0]};
      return controlled(gate_matrix1(GateKind::RZ, lam));
    }
    case GateKind::SWAP: {
      Mat4 m;
      m(0, 0) = m(3, 3) = 1;
      m(1, 2) = m(2, 1) = 1;
      return m;
    }
    default:
      throw Error(std::string("gate_matrix2: not a two-qubit unitary: ") +
                  gate_info(kind).name);
  }
}

InverseGate gate_inverse(GateKind kind, std::span<const double> params) {
  check_params(kind, params);
  const auto self = [&] {
    InverseGate g{kind, {}, gate_info(kind).num_params};
    for (std::size_t k = 0; k < params.size(); ++k) g.params[k] = params[k];
    return g;
  };
  const auto negated = [&] {
    InverseGate g = self();
    for (int k = 0; k < g.num_params; ++k) g.params[k] = -g.params[k];
    return g;
  };
  switch (kind) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CZ:
    case GateKind::CH:
    case GateKind::SWAP:
    case GateKind::CCX:
      return self();
    case GateKind::S:
      return InverseGate{GateKind::Sdg, {}, 0};
    case GateKind::Sdg:
      return InverseGate{GateKind::S, {}, 0};
    case GateKind::T:
      return InverseGate{GateKind::Tdg, {}, 0};
    case GateKind::Tdg:
      return InverseGate{GateKind::T, {}, 0};
    case GateKind::SX:
      return InverseGate{GateKind::SXdg, {}, 0};
    case GateKind::SXdg:
      return InverseGate{GateKind::SX, {}, 0};
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CP:
    case GateKind::CRZ:
      return negated();
    case GateKind::U:
      // U(θ,φ,λ)† = U(−θ,−λ,−φ): reverse the two Z-rotations as well.
      return InverseGate{GateKind::U, {-params[0], -params[2], -params[1]}, 3};
    default:
      throw Error(std::string("gate_inverse: non-unitary gate: ") +
                  gate_info(kind).name);
  }
}

}  // namespace qufi::circ
