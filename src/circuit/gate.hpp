#pragma once

#include <span>
#include <string>

#include "util/matrix.hpp"

namespace qufi::circ {

/// Every operation the circuit IR understands.
///
/// Unitary gates follow Qiskit matrix conventions. `U` is the generic
/// single-qubit rotation of the paper's Eq. (3) and is the fault-injection
/// gate. Barrier/Measure/Reset are non-unitary directives.
enum class GateKind {
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  SX,
  SXdg,
  RX,
  RY,
  RZ,
  P,
  U,
  CX,
  CY,
  CZ,
  CH,
  CP,
  CRZ,
  SWAP,
  CCX,
  Barrier,
  Measure,
  Reset,
};

/// Static metadata for a gate kind.
struct GateInfo {
  const char* name;  ///< lowercase mnemonic, matches OpenQASM where defined
  int num_qubits;    ///< operand count (0 = variadic, only Barrier)
  int num_params;    ///< rotation-angle count
  bool is_unitary;   ///< false for Barrier/Measure/Reset
};

/// Looks up metadata for `kind`.
const GateInfo& gate_info(GateKind kind);

/// Resolves a lowercase mnemonic ("cx", "rz", ...) to its kind.
/// Throws qufi::Error for unknown names.
GateKind gate_from_name(const std::string& name);

/// 2x2 matrix of a single-qubit unitary gate. `params` length must match
/// gate_info(kind).num_params. Throws for non-1q or non-unitary kinds.
util::Mat2 gate_matrix1(GateKind kind, std::span<const double> params);

/// 4x4 matrix of a two-qubit unitary gate, in the convention that qubit
/// operand 0 is the *low* bit of the 2-bit index (Qiskit ordering: for CX,
/// operand 0 is the control). Throws for non-2q kinds (incl. CCX's 3q).
util::Mat4 gate_matrix2(GateKind kind, std::span<const double> params);

/// Returns the (kind, params) pair of the inverse gate. Throws for
/// non-unitary kinds. Self-inverse gates return themselves.
struct InverseGate {
  GateKind kind;
  std::array<double, 3> params;
  int num_params;
};
InverseGate gate_inverse(GateKind kind, std::span<const double> params);

}  // namespace qufi::circ
