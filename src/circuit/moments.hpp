#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace qufi::circ {

/// ASAP (as-soon-as-possible) layering of a circuit.
///
/// A *moment* is a set of instructions that act on disjoint qubits and can
/// execute simultaneously. QuFI uses moments to define injection slots: the
/// paper injects a fault "after each gate", i.e. between the moment a gate
/// belongs to and the next one.
struct Moments {
  /// moment index of each instruction, parallel to circuit.instructions().
  /// Barriers get the moment they synchronize at.
  std::vector<int> moment_of;
  /// instruction indices per moment.
  std::vector<std::vector<std::size_t>> instructions_per_moment;

  int num_moments() const {
    return static_cast<int>(instructions_per_moment.size());
  }
};

/// Computes the ASAP layering of `circuit`. Barriers synchronize their
/// qubits but occupy no layer of their own.
Moments compute_moments(const QuantumCircuit& circuit);

}  // namespace qufi::circ
