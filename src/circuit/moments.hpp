#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace qufi::circ {

/// ASAP (as-soon-as-possible) layering of a circuit.
///
/// A *moment* is a set of instructions that act on disjoint qubits and can
/// execute simultaneously. QuFI uses moments to define injection slots: the
/// paper injects a fault "after each gate", i.e. between the moment a gate
/// belongs to and the next one.
struct Moments {
  /// moment index of each instruction, parallel to circuit.instructions().
  /// Barriers get the moment they synchronize at.
  std::vector<int> moment_of;
  /// instruction indices per moment.
  std::vector<std::vector<std::size_t>> instructions_per_moment;

  int num_moments() const {
    return static_cast<int>(instructions_per_moment.size());
  }
};

/// Computes the ASAP layering of `circuit`. Barriers synchronize their
/// qubits but occupy no layer of their own.
Moments compute_moments(const QuantumCircuit& circuit);

/// ASAP frontier after the first `prefix_length` instructions: for each wire
/// (qubits first, then clbits offset by num_qubits), the index of the first
/// moment that wire is still free in — exactly the scheduler state
/// compute_moments holds after processing those instructions. Any
/// instruction processed later (the circuit's own suffix, or fault gates
/// spliced in at the split) lands in moment >= the max frontier over its
/// wires, which is what moment-aware snapshots build their sealing argument
/// on.
std::vector<int> moment_frontier(const QuantumCircuit& circuit,
                                 std::size_t prefix_length);

/// Number of leading moments that are *sealed* at a split: every moment
/// below the returned boundary already has its full membership among the
/// first `prefix_length` instructions, and no instruction appended at or
/// after the split — including spliced-in fault gates, as long as they act
/// only on `qubits` — can ever be scheduled into one of them. The boundary
/// is the minimum frontier over `qubits` (an instruction's moment is the
/// max frontier over its wires, so it can never drop below the min).
///
/// \param qubits The qubit set future instructions may touch (a campaign
///               passes the circuit's active qubits; injections outside it
///               take the splice fallback anyway). Must be non-empty.
int sealed_moment_count(const QuantumCircuit& circuit,
                        std::size_t prefix_length,
                        const std::vector<int>& qubits);

}  // namespace qufi::circ
