#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <numbers>
#include <sstream>

#include "util/error.hpp"

namespace qufi::circ {

namespace {

std::string format_angle(double value) {
  // Emit clean multiples of pi where possible for readability.
  constexpr double kPi = std::numbers::pi;
  const double ratio = value / kPi;
  for (int den = 1; den <= 16; ++den) {
    const double num = ratio * den;
    if (std::abs(num - std::round(num)) < 1e-12) {
      const auto n = static_cast<long>(std::llround(num));
      if (n == 0) return "0";
      std::ostringstream os;
      if (n == 1) os << "pi";
      else if (n == -1) os << "-pi";
      else os << n << "*pi";
      if (den != 1) os << "/" << den;
      return os.str();
    }
  }
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

}  // namespace

std::string to_qasm(const QuantumCircuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";

  const auto ops = circuit.count_ops();
  if (ops.contains("sx"))
    os << "gate sx a { u(pi/2,-pi/2,pi/2) a; }\n";
  if (ops.contains("sxdg"))
    os << "gate sxdg a { u(pi/2,pi/2,-pi/2) a; }\n";

  os << "qreg q[" << circuit.num_qubits() << "];\n";
  if (circuit.num_clbits() > 0)
    os << "creg c[" << circuit.num_clbits() << "];\n";

  for (const auto& instr : circuit.instructions()) {
    if (instr.kind == GateKind::Measure) {
      os << "measure q[" << instr.qubits[0] << "] -> c[" << instr.clbits[0]
         << "];\n";
      continue;
    }
    os << instr.name();
    if (!instr.params.empty()) {
      os << '(';
      for (std::size_t k = 0; k < instr.params.size(); ++k) {
        if (k) os << ',';
        os << format_angle(instr.params[k]);
      }
      os << ')';
    }
    os << ' ';
    for (std::size_t k = 0; k < instr.qubits.size(); ++k) {
      if (k) os << ',';
      os << "q[" << instr.qubits[k] << ']';
    }
    os << ";\n";
  }
  return os.str();
}

// ------------------------------------------------------------------ parser

namespace {

constexpr double kPi = std::numbers::pi;

/// Character-level scanner with line tracking for error messages.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  bool eof() const { return pos_ >= text_.size(); }
  int line() const { return line_; }

  char peek() const { return eof() ? '\0' : text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_ws_and_comments() {
    while (!eof()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!eof() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw Error("QASM parse error (line " + std::to_string(line_) +
                "): " + message);
  }

  void expect(char c) {
    skip_ws_and_comments();
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "', got '" +
           (eof() ? std::string("<eof>") : std::string(1, peek())) + "'");
    advance();
  }

  bool consume(char c) {
    skip_ws_and_comments();
    if (!eof() && peek() == c) {
      advance();
      return true;
    }
    return false;
  }

  std::string identifier() {
    skip_ws_and_comments();
    std::string id;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_')) {
      id += advance();
    }
    if (id.empty()) fail("expected identifier");
    return id;
  }

  int integer() {
    skip_ws_and_comments();
    std::string digits;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
      digits += advance();
    if (digits.empty()) fail("expected integer");
    return std::stoi(digits);
  }

  double number() {
    skip_ws_and_comments();
    std::string num;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      ((peek() == '+' || peek() == '-') && !num.empty() &&
                       (num.back() == 'e' || num.back() == 'E')))) {
      num += advance();
    }
    if (num.empty()) fail("expected number");
    return std::stod(num);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Recursive-descent evaluator for parameter expressions: numbers, pi,
/// unary minus, + - * /, parentheses.
class ExprParser {
 public:
  explicit ExprParser(Scanner& sc) : sc_(sc) {}

  double parse() { return expression(); }

 private:
  double expression() {
    double value = term();
    for (;;) {
      sc_.skip_ws_and_comments();
      if (sc_.consume('+')) value += term();
      else if (sc_.consume('-')) value -= term();
      else return value;
    }
  }

  double term() {
    double value = factor();
    for (;;) {
      sc_.skip_ws_and_comments();
      if (sc_.consume('*')) value *= factor();
      else if (sc_.consume('/')) {
        const double d = factor();
        if (d == 0.0) sc_.fail("division by zero in parameter");
        value /= d;
      } else {
        return value;
      }
    }
  }

  double factor() {
    sc_.skip_ws_and_comments();
    if (sc_.consume('-')) return -factor();
    if (sc_.consume('+')) return factor();
    if (sc_.consume('(')) {
      const double v = expression();
      sc_.expect(')');
      return v;
    }
    const char c = sc_.peek();
    if (std::isalpha(static_cast<unsigned char>(c))) {
      const std::string id = sc_.identifier();
      if (id == "pi") return kPi;
      sc_.fail("unknown symbol in expression: " + id);
    }
    return sc_.number();
  }

  Scanner& sc_;
};

}  // namespace

QuantumCircuit from_qasm(const std::string& text) {
  Scanner sc(text);
  sc.skip_ws_and_comments();

  // Header.
  {
    const std::string kw = sc.identifier();
    if (kw != "OPENQASM") sc.fail("expected OPENQASM header");
    ExprParser version(sc);
    const double v = version.parse();
    if (std::abs(v - 2.0) > 1e-9) sc.fail("only OpenQASM 2.0 is supported");
    sc.expect(';');
  }

  int num_qubits = -1;
  int num_clbits = 0;
  QuantumCircuit circuit;
  bool circuit_ready = false;
  std::string qreg_name = "q";
  std::string creg_name = "c";

  const auto ensure_circuit = [&] {
    if (!circuit_ready) {
      if (num_qubits < 0) sc.fail("gate before qreg declaration");
      circuit = QuantumCircuit(num_qubits, num_clbits);
      circuit_ready = true;
    }
  };

  while (true) {
    sc.skip_ws_and_comments();
    if (sc.eof()) break;

    if (sc.peek() == '}') sc.fail("unexpected '}'");

    const std::string word = sc.identifier();

    if (word == "include") {
      sc.skip_ws_and_comments();
      sc.expect('"');
      while (!sc.eof() && sc.peek() != '"') sc.advance();
      sc.expect('"');
      sc.expect(';');
      continue;
    }
    if (word == "gate") {
      // Skip custom gate definitions entirely (our exporter only defines
      // gates whose applications we parse natively).
      while (!sc.eof() && sc.peek() != '{') sc.advance();
      sc.expect('{');
      int depth = 1;
      while (!sc.eof() && depth > 0) {
        const char c = sc.advance();
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
      if (depth != 0) sc.fail("unterminated gate definition");
      continue;
    }
    if (word == "qreg") {
      if (num_qubits >= 0) sc.fail("multiple qreg declarations not supported");
      qreg_name = sc.identifier();
      sc.expect('[');
      num_qubits = sc.integer();
      sc.expect(']');
      sc.expect(';');
      continue;
    }
    if (word == "creg") {
      if (circuit_ready) sc.fail("creg after first gate not supported");
      if (num_clbits > 0) sc.fail("multiple creg declarations not supported");
      creg_name = sc.identifier();
      sc.expect('[');
      num_clbits = sc.integer();
      sc.expect(']');
      sc.expect(';');
      continue;
    }
    if (word == "measure") {
      ensure_circuit();
      const std::string reg = sc.identifier();
      if (reg != qreg_name) sc.fail("unknown quantum register: " + reg);
      sc.expect('[');
      const int q = sc.integer();
      sc.expect(']');
      sc.skip_ws_and_comments();
      sc.expect('-');
      sc.expect('>');
      const std::string creg = sc.identifier();
      if (creg != creg_name) sc.fail("unknown classical register: " + creg);
      sc.expect('[');
      const int c = sc.integer();
      sc.expect(']');
      sc.expect(';');
      circuit.measure(q, c);
      continue;
    }

    // Generic gate application.
    ensure_circuit();
    GateKind kind;
    try {
      kind = gate_from_name(word);
    } catch (const Error&) {
      sc.fail("unknown gate: " + word);
    }

    std::vector<double> params;
    if (sc.consume('(')) {
      if (!sc.consume(')')) {
        do {
          ExprParser expr(sc);
          params.push_back(expr.parse());
        } while (sc.consume(','));
        sc.expect(')');
      }
    }

    std::vector<int> qubits;
    do {
      const std::string reg = sc.identifier();
      if (reg != qreg_name) sc.fail("unknown quantum register: " + reg);
      if (sc.consume('[')) {
        qubits.push_back(sc.integer());
        sc.expect(']');
      } else {
        // Whole-register operand: only meaningful for barrier.
        for (int q = 0; q < num_qubits; ++q) qubits.push_back(q);
      }
    } while (sc.consume(','));
    sc.expect(';');

    circuit.append(Instruction{kind, std::move(qubits), {}, std::move(params)});
  }

  if (!circuit_ready) {
    require(num_qubits >= 0, "QASM parse error: no qreg declaration");
    circuit = QuantumCircuit(num_qubits, num_clbits);
  }
  return circuit;
}

}  // namespace qufi::circ
