#pragma once

#include <cstdint>
#include <string>

#include "backend/result.hpp"
#include "circuit/circuit.hpp"

namespace qufi::backend {

/// Execution target abstraction. The paper's three scenarios map to:
///   (1) ideal simulation            -> IdealBackend
///   (2) simulation with noise model -> DensityMatrixBackend (exact) or
///                                      TrajectoryBackend (sampled)
///   (3) physical IBM-Q machine      -> SimulatedHardwareBackend
///                                      (drifting-calibration substitute)
class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  /// Executes `circuit`. shots == 0 requests the exact output distribution
  /// (supported by all backends except TrajectoryBackend, which must
  /// sample). `seed` makes sampling deterministic.
  virtual ExecutionResult run(const circ::QuantumCircuit& circuit,
                              std::uint64_t shots, std::uint64_t seed) = 0;
};

}  // namespace qufi::backend
