#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "backend/result.hpp"
#include "circuit/circuit.hpp"

namespace qufi::backend {

/// Opaque simulator state captured after a circuit prefix.
///
/// Injection campaigns sweep hundreds of fault configurations that all share
/// the gates before the injection site; a snapshot lets the backend evolve
/// that prefix once and resume per configuration (the QVF-methodology
/// amortization). Snapshots are immutable once built and safe to share
/// across threads; run_suffix never mutates them.
class PrefixSnapshot {
 public:
  virtual ~PrefixSnapshot() = default;

  /// Number of leading circuit instructions folded into this snapshot.
  std::size_t prefix_length() const { return prefix_length_; }

 protected:
  explicit PrefixSnapshot(std::size_t prefix_length)
      : prefix_length_(prefix_length) {}

 private:
  std::size_t prefix_length_;
};

using PrefixSnapshotPtr = std::shared_ptr<const PrefixSnapshot>;

/// Execution target abstraction. The paper's three scenarios map to:
///   (1) ideal simulation            -> IdealBackend
///   (2) simulation with noise model -> DensityMatrixBackend (exact) or
///                                      TrajectoryBackend (sampled)
///   (3) physical IBM-Q machine      -> SimulatedHardwareBackend
///                                      (drifting-calibration substitute)
class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  /// Executes `circuit`. shots == 0 requests the exact output distribution
  /// (supported by all backends except TrajectoryBackend, which must
  /// sample). `seed` makes sampling deterministic.
  virtual ExecutionResult run(const circ::QuantumCircuit& circuit,
                              std::uint64_t shots, std::uint64_t seed) = 0;

  /// True when prepare_prefix captures real simulator state, so run_suffix
  /// skips re-executing the prefix. The base implementation only records
  /// the circuit split (run_suffix re-simulates from scratch), so campaigns
  /// use this to decide whether grouping work by injection point pays off.
  virtual bool supports_checkpointing() const { return false; }

  /// Captures the execution state after the first `prefix_length`
  /// instructions of `circuit`. `shots_hint` is the shot count the caller
  /// intends to pass to run_suffix (sampling backends size per-shot caches
  /// from it; exact backends ignore it). `snapshot_seed` feeds any
  /// randomness the snapshot itself consumes (the trajectory backend's
  /// prefix noise sampling), so replications with different campaign seeds
  /// resample the prefix; exact backends ignore it.
  virtual PrefixSnapshotPtr prepare_prefix(const circ::QuantumCircuit& circuit,
                                           std::size_t prefix_length,
                                           std::uint64_t shots_hint = 0,
                                           std::uint64_t snapshot_seed = 0);

  /// Resumes from `snapshot`: executes the `injected` gates (all unitary),
  /// then the remaining instructions of the snapshot's circuit, and
  /// resolves measurements exactly as run() would. For exact backends the
  /// result is bit-identical to run() on the spliced faulty circuit; the
  /// trajectory backend shares prefix randomness across calls (common
  /// random numbers), which is distribution-equivalent but not bit-equal.
  virtual ExecutionResult run_suffix(const PrefixSnapshot& snapshot,
                                     std::span<const circ::Instruction> injected,
                                     std::uint64_t shots, std::uint64_t seed);
};

/// Builds the faulty circuit run_suffix models: instructions [0,
/// prefix_length), then `injected`, then the rest. Shared by the base
/// fallback and by backends that need the spliced circuit explicitly.
circ::QuantumCircuit splice_circuit(const circ::QuantumCircuit& circuit,
                                    std::size_t prefix_length,
                                    std::span<const circ::Instruction> injected);

}  // namespace qufi::backend
