#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend/result.hpp"
#include "circuit/circuit.hpp"

namespace qufi::backend {

/// Opaque simulator state captured after a circuit prefix.
///
/// Injection campaigns sweep hundreds of fault configurations that all share
/// the gates before the injection site; a snapshot lets the backend evolve
/// that prefix once and resume per configuration (the QVF-methodology
/// amortization). Snapshots are immutable once built and safe to share
/// across threads; run_suffix / run_suffix_batch never mutate them.
class PrefixSnapshot {
 public:
  virtual ~PrefixSnapshot() = default;

  /// \return Number of leading circuit instructions folded into this
  ///         snapshot (the faulty circuit is prefix + injected gates +
  ///         remaining instructions).
  std::size_t prefix_length() const { return prefix_length_; }

  /// \return The circuit this snapshot was prepared over, or nullptr when
  ///         the snapshot kind does not retain it. All bundled snapshot
  ///         kinds (splice, density, trajectory) return non-null; the
  ///         accessor lets decorators (e.g. the dist snapshot cache) key
  ///         derived snapshots without widening extend_snapshot's
  ///         signature.
  virtual const circ::QuantumCircuit* circuit() const { return nullptr; }

 protected:
  explicit PrefixSnapshot(std::size_t prefix_length)
      : prefix_length_(prefix_length) {}

 private:
  std::size_t prefix_length_;
};

using PrefixSnapshotPtr = std::shared_ptr<const PrefixSnapshot>;

/// One entry of a run_suffix_batch call: the fault gates spliced in at the
/// snapshot's split point plus the sampling seed for that configuration.
///
/// Campaigns keep per-config seeds (derived from the grid indices, not the
/// submission order) so batched and per-config execution produce identical
/// sampling streams regardless of scheduling.
struct SuffixConfig {
  /// Fault gates inserted at the split point, in order. All must be
  /// unitary; typically one U(theta, phi, 0) gate (two for double faults).
  std::vector<circ::Instruction> injected;
  /// Seed forwarded to measurement sampling, exactly as the `seed`
  /// parameter of run_suffix would be.
  std::uint64_t seed = 0;
};

/// Execution target abstraction. The paper's three scenarios map to:
///   (1) ideal simulation            -> IdealBackend
///   (2) simulation with noise model -> DensityMatrixBackend (exact) or
///                                      TrajectoryBackend (sampled)
///   (3) physical IBM-Q machine      -> SimulatedHardwareBackend
///                                      (drifting-calibration substitute)
///
/// Thread-safety: all methods of the bundled backends are safe to call
/// concurrently from multiple threads (campaign pools do so); snapshots are
/// immutable and may be shared across lanes. Custom backends passed to
/// campaigns via CampaignSpec::backend_override must uphold the same
/// guarantee.
class Backend {
 public:
  virtual ~Backend() = default;

  /// \return Human-readable backend identifier (stamped into results and
  ///         campaign metadata), e.g. "density_matrix(fake_casablanca)".
  virtual std::string name() const = 0;

  /// Executes `circuit`.
  ///
  /// \param circuit Circuit with terminal measurements into clbits.
  /// \param shots   0 requests the exact output distribution (supported by
  ///                all backends except TrajectoryBackend, which must
  ///                sample); > 0 samples that many shots.
  /// \param seed    Makes sampling deterministic; ignored for exact runs.
  /// \return The output distribution (and counts when shots > 0).
  virtual ExecutionResult run(const circ::QuantumCircuit& circuit,
                              std::uint64_t shots, std::uint64_t seed) = 0;

  /// \return True when prepare_prefix captures real simulator state, so
  ///         run_suffix skips re-executing the prefix. The base
  ///         implementation only records the circuit split (run_suffix
  ///         re-simulates from scratch), so campaigns use this to decide
  ///         whether grouping work by injection point pays off.
  virtual bool supports_checkpointing() const { return false; }

  /// Digest of any execution *schedule* a snapshot at (circuit,
  /// prefix_length) would depend on beyond the circuit bytes themselves — a
  /// cache-key component for snapshot stores (src/dist snapshot cache).
  /// Backends whose prefix evolution is a pure function of the instruction
  /// list return 0 (the default). The idle-noise density backend returns a
  /// digest of its sealed moment schedule at the split, so snapshots written
  /// by a different scheduler version (or a different sealing boundary) can
  /// never be served from a shared cache directory.
  virtual std::uint64_t snapshot_schedule_digest(
      const circ::QuantumCircuit& circuit, std::size_t prefix_length) const {
    (void)circuit;
    (void)prefix_length;
    return 0;
  }

  /// Captures the execution state after the first `prefix_length`
  /// instructions of `circuit`.
  ///
  /// \param circuit       Full circuit the suffix calls will complete.
  /// \param prefix_length Number of leading instructions to fold in
  ///                      (must be <= circuit.size()).
  /// \param shots_hint    Shot count the caller intends to pass to
  ///                      run_suffix; sampling backends size per-shot
  ///                      caches from it, exact backends ignore it.
  /// \param snapshot_seed Feeds any randomness the snapshot itself consumes
  ///                      (the trajectory backend's prefix noise sampling),
  ///                      so replications with different campaign seeds
  ///                      resample the prefix; exact backends ignore it.
  /// \return An immutable, thread-shareable snapshot.
  virtual PrefixSnapshotPtr prepare_prefix(const circ::QuantumCircuit& circuit,
                                           std::size_t prefix_length,
                                           std::uint64_t shots_hint = 0,
                                           std::uint64_t snapshot_seed = 0);

  /// Derives a deeper snapshot from an existing one: advances `parent`
  /// through circuit instructions [from_gate, to_gate) instead of
  /// re-evolving from the initial state — the prefix-tree primitive that
  /// lets a campaign's nested split points share prefix work (the child of
  /// a snapshot at gate a is the snapshot at gate b > a).
  ///
  /// Equivalence contract: the returned snapshot is bit-identical to
  /// prepare_prefix(circuit, to_gate, shots_hint, snapshot_seed) — the
  /// density backend replays the same operation sequence on the parent's
  /// state, and the trajectory backend resumes each cached shot's stored
  /// RNG stream — so results are independent of the tree shape (chain
  /// depth, skipped intermediate splits, sharding of the point set).
  ///
  /// \param parent        Snapshot produced by prepare_prefix or
  ///                      extend_snapshot on this backend.
  /// \param from_gate     Must equal parent.prefix_length() (validated;
  ///                      spelled out so call sites document their chain).
  /// \param to_gate       New prefix length, in [from_gate, circuit size].
  /// \param shots_hint    As in prepare_prefix; backends whose snapshots
  ///                      carry their sampling state ignore it.
  /// \param snapshot_seed As in prepare_prefix; same note.
  /// \return An immutable, thread-shareable snapshot at to_gate. The base
  ///         implementation advances the splice fallback (no simulator
  ///         state to reuse, still exact).
  virtual PrefixSnapshotPtr extend_snapshot(const PrefixSnapshot& parent,
                                            std::size_t from_gate,
                                            std::size_t to_gate,
                                            std::uint64_t shots_hint = 0,
                                            std::uint64_t snapshot_seed = 0);

  /// Resumes from `snapshot`: executes the `injected` gates (all unitary),
  /// then the remaining instructions of the snapshot's circuit, and
  /// resolves measurements exactly as run() would.
  ///
  /// \param snapshot Snapshot produced by prepare_prefix on this backend.
  /// \param injected Fault gates spliced in at the split point.
  /// \param shots    As in run().
  /// \param seed     As in run().
  /// \return For exact backends, bit-identical to run() on the spliced
  ///         faulty circuit; the trajectory backend shares prefix
  ///         randomness across calls (common random numbers), which is
  ///         distribution-equivalent but not bit-equal.
  virtual ExecutionResult run_suffix(const PrefixSnapshot& snapshot,
                                     std::span<const circ::Instruction> injected,
                                     std::uint64_t shots, std::uint64_t seed);

  /// Executes a whole grid of fault configurations from one snapshot in a
  /// single call — the batched form of run_suffix that campaigns submit
  /// per injection point.
  ///
  /// Backends with real checkpointing amortize per-call setup across the
  /// batch: the density backend reuses one scratch density matrix and a
  /// pre-fused suffix (each config only applies its own U-gate parameters
  /// before replaying the fused suffix superoperators), and the trajectory
  /// backend replays its cached per-shot prefix statevectors across the
  /// grid with common random numbers. The base implementation loops
  /// run_suffix, so backends without batch support keep one code path.
  ///
  /// \param snapshot Snapshot produced by prepare_prefix on this backend.
  /// \param configs  One entry per fault configuration (injected gates +
  ///                 per-config sampling seed).
  /// \param shots    As in run(); shared by every config in the batch.
  /// \return One ExecutionResult per config, in input order; empty when
  ///         `configs` is empty. results[i] equals
  ///         run_suffix(snapshot, configs[i].injected, shots,
  ///         configs[i].seed) within floating-point reassociation (QVF
  ///         parity within 1e-9 on the density backend, bit-identical on
  ///         the trajectory backend).
  virtual std::vector<ExecutionResult> run_suffix_batch(
      const PrefixSnapshot& snapshot, std::span<const SuffixConfig> configs,
      std::uint64_t shots);

  /// Serializes `snapshot` into the versioned binary container documented in
  /// docs/SNAPSHOT_FORMAT.md (magic + version + backend kind + payload +
  /// checksum). Serialized snapshots are the unit of distribution: a shard
  /// worker can resume a prefix another process evolved.
  ///
  /// \param snapshot Snapshot produced by prepare_prefix on this backend.
  /// \param out      Binary stream (open files with std::ios::binary).
  /// \return True when the snapshot was written; false when this backend has
  ///         no serializable snapshot form (the base splice snapshot carries
  ///         no simulator state worth shipping — workers re-simulate).
  virtual bool save_snapshot(const PrefixSnapshot& snapshot,
                             std::ostream& out) const;

  /// Reconstructs a snapshot previously written by save_snapshot on a
  /// backend of the same kind. The result is usable exactly like the
  /// original: run_suffix / run_suffix_batch from it reproduce the same
  /// records (bit-identical — the payload stores exact state bits).
  ///
  /// \param in Binary stream positioned at the container start.
  /// \return The reconstructed snapshot.
  /// \throws qufi::Error on bad magic, version or backend-kind mismatch,
  ///         checksum failure, or truncation — corrupt files never yield a
  ///         snapshot. The base implementation always throws (no
  ///         serializable form).
  virtual PrefixSnapshotPtr load_snapshot(std::istream& in) const;
};

/// Builds the faulty circuit run_suffix models: instructions [0,
/// prefix_length), then `injected`, then the rest. Shared by the base
/// fallback and by backends that need the spliced circuit explicitly.
///
/// \param circuit       The fault-free circuit.
/// \param prefix_length Split point (must be <= circuit.size()).
/// \param injected      Unitary fault gates inserted at the split point.
/// \return The spliced circuit, named "<circuit>+fault".
circ::QuantumCircuit splice_circuit(const circ::QuantumCircuit& circuit,
                                    std::size_t prefix_length,
                                    std::span<const circ::Instruction> injected);

}  // namespace qufi::backend
