#pragma once

#include "backend/backend.hpp"

namespace qufi::backend {

/// Noise-free statevector execution; the paper's scenario (1) and the
/// source of QVF golden outputs.
class IdealBackend : public Backend {
 public:
  std::string name() const override { return "ideal_statevector"; }

  ExecutionResult run(const circ::QuantumCircuit& circuit, std::uint64_t shots,
                      std::uint64_t seed) override;
};

}  // namespace qufi::backend
