#include "backend/density_backend.hpp"

#include <algorithm>

#include "circuit/moments.hpp"
#include "noise/channels.hpp"
#include "noise/readout.hpp"
#include "sim/density_matrix.hpp"
#include "util/error.hpp"

namespace qufi::backend {

using circ::GateKind;
using circ::Instruction;

namespace {

/// Reset-to-|0> as a Kraus channel: {|0><0|, |0><1|}.
const noise::KrausChannel1& reset_channel() {
  static const noise::KrausChannel1 kChannel = [] {
    util::Mat2 k0 = util::Mat2::zero();
    k0(0, 0) = 1;
    util::Mat2 k1 = util::Mat2::zero();
    k1(0, 1) = 1;
    return noise::KrausChannel1{{k0, k1}};
  }();
  return kChannel;
}

void apply_channel(sim::DensityMatrix& dm, const noise::KrausChannel1& ch,
                   int q) {
  if (!ch.is_identity()) dm.apply_kraus1(ch.ops, q);
}

double instruction_duration_ns(const Instruction& instr,
                               const noise::NoiseModel& nm) {
  switch (instr.kind) {
    case GateKind::Barrier:
      return 0.0;
    case GateKind::Measure:
      return nm.measure_duration_ns();
    default:
      break;
  }
  const auto& info = circ::gate_info(instr.kind);
  if (info.num_qubits == 2) {
    return nm.duration_2q_ns(instr.qubits[0], instr.qubits[1]);
  }
  if (info.num_qubits == 1 && noise::NoiseModel::is_noisy_1q_gate(instr.kind)) {
    return nm.duration_1q_ns(instr.qubits[0]);
  }
  return 0.0;  // virtual gates
}

/// Executor over the *compacted* qubit set: the density matrix holds only
/// qubits the circuit touches (a 4-qubit circuit transpiled onto a 7-qubit
/// device simulates 16x16, not 128x128), while noise lookups keep the
/// original physical indices so per-qubit calibration stays correct.
struct DensityExecutor {
  sim::DensityMatrix dm;
  const noise::NoiseModel& nm;
  const DensityRunOptions& options;
  const std::vector<int>& to_compact;  // physical -> compact (-1 unused)

  int compact(int physical) const {
    return to_compact[static_cast<std::size_t>(physical)];
  }

  void execute(const Instruction& instr) {
    switch (instr.kind) {
      case GateKind::Barrier:
      case GateKind::Measure:
        return;  // terminal measures are resolved from the final diagonal
      case GateKind::Reset:
        dm.apply_kraus1(reset_channel().ops, compact(instr.qubits[0]));
        return;
      default:
        break;
    }

    apply_unitary(instr);
    if (nm.is_ideal()) return;

    const auto& info = circ::gate_info(instr.kind);
    if (info.num_qubits == 1) {
      const int physical = instr.qubits[0];
      const int q = compact(physical);
      if (!options.coherent_errors.empty() &&
          noise::NoiseModel::is_noisy_1q_gate(instr.kind)) {
        const auto& ce =
            options.coherent_errors[static_cast<std::size_t>(physical)];
        if (ce.z_angle != 0.0) {
          const double params[] = {ce.z_angle};
          dm.apply_unitary1(circ::gate_matrix1(GateKind::RZ, params), q);
        }
        if (ce.x_angle != 0.0) {
          const double params[] = {ce.x_angle};
          dm.apply_unitary1(circ::gate_matrix1(GateKind::RX, params), q);
        }
      }
      if (const auto* superop = nm.superop_after_1q(instr.kind, physical)) {
        dm.apply_superop1(*superop, q);
      }
    } else if (info.num_qubits == 2) {
      // Combined edge superoperator, built for the sorted physical pair.
      const int lo = std::min(instr.qubits[0], instr.qubits[1]);
      const int hi = std::max(instr.qubits[0], instr.qubits[1]);
      if (const auto* superop = nm.superop_after_2q(lo, hi)) {
        dm.apply_superop2(superop->a, compact(lo), compact(hi));
      }
    }
    // 3q gates (ccx) run noiselessly: transpiled circuits never contain
    // them; untranspiled use is an ideal-composition approximation.
  }

 private:
  void apply_unitary(const Instruction& instr) {
    const auto& info = circ::gate_info(instr.kind);
    switch (info.num_qubits) {
      case 1:
        dm.apply_unitary1(circ::gate_matrix1(instr.kind, instr.params),
                          compact(instr.qubits[0]));
        return;
      case 2:
        dm.apply_unitary2(circ::gate_matrix2(instr.kind, instr.params),
                          compact(instr.qubits[0]), compact(instr.qubits[1]));
        return;
      case 3: {
        require(instr.kind == GateKind::CCX,
                "run_density_probs: unsupported 3-qubit gate");
        const Instruction mapped{instr.kind,
                                 {compact(instr.qubits[0]),
                                  compact(instr.qubits[1]),
                                  compact(instr.qubits[2])},
                                 {},
                                 {}};
        dm.apply_instruction(mapped);
        return;
      }
      default:
        throw Error("run_density_probs: unsupported operand count");
    }
  }
};

/// Physical <-> compact index maps for a circuit's active-qubit set.
struct Compaction {
  std::vector<int> active;      // compact -> physical
  std::vector<int> to_compact;  // physical -> compact (-1 unused)
};

Compaction build_compaction(const circ::QuantumCircuit& circuit) {
  Compaction c;
  c.active = circuit.active_qubits();
  if (c.active.empty()) c.active.push_back(0);
  c.to_compact.assign(static_cast<std::size_t>(circuit.num_qubits()), -1);
  for (std::size_t k = 0; k < c.active.size(); ++k) {
    c.to_compact[static_cast<std::size_t>(c.active[k])] = static_cast<int>(k);
  }
  return c;
}

/// Resolves terminal measurements from the final diagonal (last measure
/// into a clbit wins, Qiskit semantics) and applies readout error.
std::vector<double> resolve_clbit_probs(const DensityExecutor& exec,
                                        const circ::QuantumCircuit& circuit,
                                        const noise::NoiseModel& noise_model) {
  std::vector<int> clbit_source_compact(
      static_cast<std::size_t>(circuit.num_clbits()), -1);
  std::vector<int> clbit_source_physical(
      static_cast<std::size_t>(circuit.num_clbits()), -1);
  bool any_measure = false;
  for (const auto& instr : circuit.instructions()) {
    if (instr.kind != GateKind::Measure) continue;
    const auto c = static_cast<std::size_t>(instr.clbits[0]);
    clbit_source_compact[c] = exec.compact(instr.qubits[0]);
    clbit_source_physical[c] = instr.qubits[0];
    any_measure = true;
  }
  require(any_measure, "run_density_probs: circuit has no measurements");

  const auto qubit_probs = exec.dm.probabilities();
  std::vector<double> clbit_probs(std::size_t{1} << circuit.num_clbits(), 0.0);
  for (std::uint64_t i = 0; i < qubit_probs.size(); ++i) {
    if (qubit_probs[i] == 0.0) continue;
    std::uint64_t j = 0;
    for (int c = 0; c < circuit.num_clbits(); ++c) {
      const int q = clbit_source_compact[static_cast<std::size_t>(c)];
      if (q >= 0 && ((i >> q) & 1ULL)) j |= 1ULL << c;
    }
    clbit_probs[j] += qubit_probs[i];
  }

  if (!noise_model.is_ideal()) {
    std::vector<int> clbits;
    std::vector<noise::ReadoutError> errors;
    for (int c = 0; c < circuit.num_clbits(); ++c) {
      const int q = clbit_source_physical[static_cast<std::size_t>(c)];
      if (q < 0) continue;
      clbits.push_back(c);
      errors.push_back(noise_model.readout(q));
    }
    noise::apply_readout_error(clbit_probs, clbits, errors);
  }
  return clbit_probs;
}

/// Density-matrix state captured after a circuit prefix, together with the
/// compaction maps and the circuit whose suffix run_suffix will replay.
class DensitySnapshot final : public PrefixSnapshot {
 public:
  DensitySnapshot(sim::DensityMatrix dm, Compaction compaction,
                  circ::QuantumCircuit circuit, std::size_t prefix_length)
      : PrefixSnapshot(prefix_length),
        dm_(std::move(dm)),
        compaction_(std::move(compaction)),
        circuit_(std::move(circuit)) {}

  const sim::DensityMatrix& dm() const { return dm_; }
  const Compaction& compaction() const { return compaction_; }
  const circ::QuantumCircuit& circuit() const { return circuit_; }

 private:
  sim::DensityMatrix dm_;
  Compaction compaction_;
  circ::QuantumCircuit circuit_;
};

}  // namespace

std::vector<double> run_density_probs(const circ::QuantumCircuit& circuit,
                                      const noise::NoiseModel& noise_model,
                                      const DensityRunOptions& options) {
  require(circuit.num_clbits() > 0,
          "run_density_probs: circuit has no classical bits");
  require(circuit.measurements_are_terminal(),
          "run_density_probs: density-matrix execution requires terminal "
          "measurements (use TrajectoryBackend for mid-circuit measures)");
  require(options.coherent_errors.empty() ||
              options.coherent_errors.size() ==
                  static_cast<std::size_t>(circuit.num_qubits()),
          "run_density_probs: coherent error vector size mismatch");

  // Compaction: simulate only the qubits the circuit touches.
  const Compaction compaction = build_compaction(circuit);
  const std::vector<int>& active = compaction.active;

  DensityExecutor exec{sim::DensityMatrix(static_cast<int>(active.size())),
                       noise_model, options, compaction.to_compact};

  if (options.idle_noise && !noise_model.is_ideal()) {
    // Moment-scheduled execution: idle qubits decohere while others work.
    const auto moments = circ::compute_moments(circuit);
    const auto& instrs = circuit.instructions();
    for (int m = 0; m < moments.num_moments(); ++m) {
      const auto& idx =
          moments.instructions_per_moment[static_cast<std::size_t>(m)];
      double duration = 0.0;
      std::vector<bool> busy(active.size(), false);
      for (const auto i : idx) {
        duration = std::max(duration,
                            instruction_duration_ns(instrs[i], noise_model));
        for (int q : instrs[i].qubits) {
          const int c = exec.compact(q);
          if (c >= 0) busy[static_cast<std::size_t>(c)] = true;
        }
      }
      for (const auto i : idx) exec.execute(instrs[i]);
      if (duration > 0.0) {
        for (std::size_t k = 0; k < active.size(); ++k) {
          if (busy[k]) continue;
          const auto idle =
              noise_model.idle_relaxation(active[k], duration);
          apply_channel(exec.dm, idle, static_cast<int>(k));
        }
      }
    }
  } else {
    for (const auto& instr : circuit.instructions()) exec.execute(instr);
  }

  return resolve_clbit_probs(exec, circuit, noise_model);
}

DensityMatrixBackend::DensityMatrixBackend(noise::NoiseModel noise_model,
                                           bool idle_noise)
    : noise_model_(std::move(noise_model)), idle_noise_(idle_noise) {}

std::string DensityMatrixBackend::name() const {
  return "density_matrix(" + noise_model_.source_name() +
         (idle_noise_ ? ", idle_noise" : "") + ")";
}

ExecutionResult DensityMatrixBackend::run(const circ::QuantumCircuit& circuit,
                                          std::uint64_t shots,
                                          std::uint64_t seed) {
  DensityRunOptions options;
  options.idle_noise = idle_noise_;
  auto probs = run_density_probs(circuit, noise_model_, options);
  return ExecutionResult::from_distribution(
      std::move(probs), circuit.num_clbits(), shots, seed, name());
}

PrefixSnapshotPtr DensityMatrixBackend::prepare_prefix(
    const circ::QuantumCircuit& circuit, std::size_t prefix_length,
    std::uint64_t shots_hint, std::uint64_t snapshot_seed) {
  if (!supports_checkpointing()) {
    return Backend::prepare_prefix(circuit, prefix_length, shots_hint,
                                   snapshot_seed);
  }
  require(prefix_length <= circuit.size(),
          "prepare_prefix: prefix length exceeds circuit size");
  require(circuit.num_clbits() > 0,
          "prepare_prefix: circuit has no classical bits");
  require(circuit.measurements_are_terminal(),
          "prepare_prefix: density-matrix execution requires terminal "
          "measurements");

  // The compaction is built from the full circuit so the snapshot's matrix
  // has the same dimension a full faulty run would use; injected gates may
  // only touch qubits already active in the full circuit.
  Compaction compaction = build_compaction(circuit);
  const DensityRunOptions options{};
  DensityExecutor exec{
      sim::DensityMatrix(static_cast<int>(compaction.active.size())),
      noise_model_, options, compaction.to_compact};
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < prefix_length; ++i) exec.execute(instrs[i]);
  return std::make_shared<DensitySnapshot>(std::move(exec.dm),
                                           std::move(compaction), circuit,
                                           prefix_length);
}

ExecutionResult DensityMatrixBackend::run_suffix(
    const PrefixSnapshot& snapshot,
    std::span<const circ::Instruction> injected, std::uint64_t shots,
    std::uint64_t seed) {
  const auto* snap = dynamic_cast<const DensitySnapshot*>(&snapshot);
  if (!snap) return Backend::run_suffix(snapshot, injected, shots, seed);

  const circ::QuantumCircuit& circuit = snap->circuit();
  for (const auto& instr : injected) {
    require(instr.is_unitary(), "run_suffix: injected gate not unitary");
    for (int q : instr.qubits) {
      require(q >= 0 && q < circuit.num_qubits(),
              "run_suffix: injected gate qubit out of range");
      // A fault on a qubit outside the snapshot's compacted set (mapped but
      // never gated, e.g. an idle double-fault neighbor) cannot resume from
      // the snapshot; re-simulate the spliced circuit, which stays exact.
      if (snap->compaction().to_compact[static_cast<std::size_t>(q)] < 0) {
        return run(splice_circuit(circuit, snap->prefix_length(), injected),
                   shots, seed);
      }
    }
  }

  const DensityRunOptions options{};
  DensityExecutor exec{snap->dm().clone(), noise_model_, options,
                       snap->compaction().to_compact};
  for (const auto& instr : injected) exec.execute(instr);
  const auto& instrs = circuit.instructions();
  for (std::size_t i = snap->prefix_length(); i < instrs.size(); ++i) {
    exec.execute(instrs[i]);
  }
  auto probs = resolve_clbit_probs(exec, circuit, noise_model_);
  return ExecutionResult::from_distribution(
      std::move(probs), circuit.num_clbits(), shots, seed, name());
}

}  // namespace qufi::backend
