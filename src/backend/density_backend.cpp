#include "backend/density_backend.hpp"

#include <algorithm>
#include <complex>
#include <map>
#include <memory>
#include <mutex>

#include "backend/snapshot_io.hpp"
#include "circuit/moments.hpp"
#include "noise/channels.hpp"
#include "noise/readout.hpp"
#include "sim/density_matrix.hpp"
#include "util/arena.hpp"
#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qufi::backend {

using circ::GateKind;
using circ::Instruction;

namespace {

/// Reset-to-|0> as a Kraus channel: {|0><0|, |0><1|}.
const noise::KrausChannel1& reset_channel() {
  static const noise::KrausChannel1 kChannel = [] {
    util::Mat2 k0 = util::Mat2::zero();
    k0(0, 0) = 1;
    util::Mat2 k1 = util::Mat2::zero();
    k1(0, 1) = 1;
    return noise::KrausChannel1{{k0, k1}};
  }();
  return kChannel;
}

void apply_channel(sim::DensityMatrix& dm, const noise::KrausChannel1& ch,
                   int q) {
  if (!ch.is_identity()) dm.apply_kraus1(ch.ops, q);
}

double instruction_duration_ns(const Instruction& instr,
                               const noise::NoiseModel& nm) {
  switch (instr.kind) {
    case GateKind::Barrier:
      return 0.0;
    case GateKind::Measure:
      return nm.measure_duration_ns();
    default:
      break;
  }
  const auto& info = circ::gate_info(instr.kind);
  if (info.num_qubits == 2) {
    return nm.duration_2q_ns(instr.qubits[0], instr.qubits[1]);
  }
  if (info.num_qubits == 1 && noise::NoiseModel::is_noisy_1q_gate(instr.kind)) {
    return nm.duration_1q_ns(instr.qubits[0]);
  }
  return 0.0;  // virtual gates
}

/// Executor over the *compacted* qubit set: the density matrix holds only
/// qubits the circuit touches (a 4-qubit circuit transpiled onto a 7-qubit
/// device simulates 16x16, not 128x128), while noise lookups keep the
/// original physical indices so per-qubit calibration stays correct.
struct DensityExecutor {
  sim::DensityMatrix dm;
  const noise::NoiseModel& nm;
  const DensityRunOptions& options;
  const std::vector<int>& to_compact;  // physical -> compact (-1 unused)

  int compact(int physical) const {
    return to_compact[static_cast<std::size_t>(physical)];
  }

  void execute(const Instruction& instr) {
    switch (instr.kind) {
      case GateKind::Barrier:
      case GateKind::Measure:
        return;  // terminal measures are resolved from the final diagonal
      case GateKind::Reset:
        dm.apply_kraus1(reset_channel().ops, compact(instr.qubits[0]));
        return;
      default:
        break;
    }

    apply_unitary(instr);
    if (nm.is_ideal()) return;

    const auto& info = circ::gate_info(instr.kind);
    if (info.num_qubits == 1) {
      const int physical = instr.qubits[0];
      const int q = compact(physical);
      if (!options.coherent_errors.empty() &&
          noise::NoiseModel::is_noisy_1q_gate(instr.kind)) {
        const auto& ce =
            options.coherent_errors[static_cast<std::size_t>(physical)];
        if (ce.z_angle != 0.0) {
          const double params[] = {ce.z_angle};
          dm.apply_unitary1(circ::gate_matrix1(GateKind::RZ, params), q);
        }
        if (ce.x_angle != 0.0) {
          const double params[] = {ce.x_angle};
          dm.apply_unitary1(circ::gate_matrix1(GateKind::RX, params), q);
        }
      }
      if (const auto* superop = nm.superop_after_1q(instr.kind, physical)) {
        dm.apply_superop1(*superop, q);
      }
    } else if (info.num_qubits == 2) {
      // Combined edge superoperator, built for the sorted physical pair.
      const int lo = std::min(instr.qubits[0], instr.qubits[1]);
      const int hi = std::max(instr.qubits[0], instr.qubits[1]);
      if (const auto* superop = nm.superop_after_2q(lo, hi)) {
        dm.apply_superop2(superop->a, compact(lo), compact(hi));
      }
    }
    // 3q gates (ccx) run noiselessly: transpiled circuits never contain
    // them; untranspiled use is an ideal-composition approximation.
  }

 private:
  void apply_unitary(const Instruction& instr) {
    const auto& info = circ::gate_info(instr.kind);
    switch (info.num_qubits) {
      case 1:
        dm.apply_unitary1(circ::gate_matrix1(instr.kind, instr.params),
                          compact(instr.qubits[0]));
        return;
      case 2:
        dm.apply_unitary2(circ::gate_matrix2(instr.kind, instr.params),
                          compact(instr.qubits[0]), compact(instr.qubits[1]));
        return;
      case 3: {
        require(instr.kind == GateKind::CCX,
                "run_density_probs: unsupported 3-qubit gate");
        const Instruction mapped{instr.kind,
                                 {compact(instr.qubits[0]),
                                  compact(instr.qubits[1]),
                                  compact(instr.qubits[2])},
                                 {},
                                 {}};
        dm.apply_instruction(mapped);
        return;
      }
      default:
        throw Error("run_density_probs: unsupported operand count");
    }
  }
};

/// Executes moments [from_moment, to_moment) of `moments` over `circuit`:
/// each moment's instructions in index order, then thermal relaxation on
/// the moment's idle active qubits. This is the idle-noise scheduling loop,
/// shared by run_density_probs and by the moment-aware snapshot paths
/// (prepare_prefix / extend_snapshot / run_suffix), so a resumed execution
/// applies the exact same kernel sequence a from-scratch run would.
void execute_idle_moments(DensityExecutor& exec,
                          const circ::QuantumCircuit& circuit,
                          const circ::Moments& moments, int from_moment,
                          int to_moment, const noise::NoiseModel& nm,
                          const std::vector<int>& active) {
  const auto& instrs = circuit.instructions();
  for (int m = from_moment; m < to_moment; ++m) {
    const auto& idx =
        moments.instructions_per_moment[static_cast<std::size_t>(m)];
    double duration = 0.0;
    std::vector<bool> busy(active.size(), false);
    for (const auto i : idx) {
      duration = std::max(duration, instruction_duration_ns(instrs[i], nm));
      for (int q : instrs[i].qubits) {
        const int c = exec.compact(q);
        if (c >= 0) busy[static_cast<std::size_t>(c)] = true;
      }
    }
    for (const auto i : idx) exec.execute(instrs[i]);
    if (duration > 0.0) {
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (busy[k]) continue;
        const auto idle = nm.idle_relaxation(active[k], duration);
        apply_channel(exec.dm, idle, static_cast<int>(k));
      }
    }
  }
}

/// Physical <-> compact index maps for a circuit's active-qubit set.
struct Compaction {
  std::vector<int> active;      // compact -> physical
  std::vector<int> to_compact;  // physical -> compact (-1 unused)
};

/// Digest of the sealed moment schedule a moment-aware snapshot at
/// (circuit, prefix_length) depends on: the split, the sealing boundary and
/// the per-active-qubit moment frontier. Stored in v3 snapshot containers
/// and folded into dist snapshot-cache keys, so a snapshot written under a
/// different scheduler (or loaded at the wrong boundary) is rejected
/// instead of silently resuming a different schedule.
std::uint64_t idle_schedule_digest(const circ::QuantumCircuit& circuit,
                                   std::size_t prefix_length,
                                   const std::vector<int>& active) {
  const std::vector<int> frontier =
      circ::moment_frontier(circuit, prefix_length);
  // The sealed boundary is the min frontier over the active set (the same
  // value sealed_moment_count computes; derived here from the frontier
  // already in hand instead of rescanning the prefix).
  int sealed = active.empty() ? 0
                              : frontier[static_cast<std::size_t>(active[0])];
  for (const int q : active) {
    sealed = std::min(sealed, frontier[static_cast<std::size_t>(q)]);
  }
  util::ByteWriter w;
  w.u64(prefix_length);
  w.u64(static_cast<std::uint64_t>(sealed));
  for (const int q : active) {
    w.u32(static_cast<std::uint32_t>(frontier[static_cast<std::size_t>(q)]));
  }
  return util::fnv1a64(w.data());
}

Compaction build_compaction(const circ::QuantumCircuit& circuit) {
  Compaction c;
  c.active = circuit.active_qubits();
  if (c.active.empty()) c.active.push_back(0);
  c.to_compact.assign(static_cast<std::size_t>(circuit.num_qubits()), -1);
  for (std::size_t k = 0; k < c.active.size(); ++k) {
    c.to_compact[static_cast<std::size_t>(c.active[k])] = static_cast<int>(k);
  }
  return c;
}

/// Terminal-measurement layout of a circuit, precomputed once and reused
/// across every execution that shares the circuit (batched suffix sweeps
/// resolve hundreds of distributions against one resolver).
struct MeasurementResolver {
  std::vector<int> clbit_source_compact;  ///< per clbit, -1 = never measured
  std::vector<int> measured_clbits;
  std::vector<noise::ReadoutError> readout_errors;
  int num_clbits = 0;
  bool apply_readout = false;
};

MeasurementResolver build_measurement_resolver(
    const circ::QuantumCircuit& circuit, const std::vector<int>& to_compact,
    const noise::NoiseModel& noise_model) {
  MeasurementResolver res;
  res.num_clbits = circuit.num_clbits();
  res.clbit_source_compact.assign(
      static_cast<std::size_t>(circuit.num_clbits()), -1);
  std::vector<int> clbit_source_physical(
      static_cast<std::size_t>(circuit.num_clbits()), -1);
  bool any_measure = false;
  for (const auto& instr : circuit.instructions()) {
    if (instr.kind != GateKind::Measure) continue;
    // Last measure into a clbit wins (Qiskit semantics).
    const auto c = static_cast<std::size_t>(instr.clbits[0]);
    res.clbit_source_compact[c] =
        to_compact[static_cast<std::size_t>(instr.qubits[0])];
    clbit_source_physical[c] = instr.qubits[0];
    any_measure = true;
  }
  require(any_measure, "run_density_probs: circuit has no measurements");

  res.apply_readout = !noise_model.is_ideal();
  if (res.apply_readout) {
    for (int c = 0; c < circuit.num_clbits(); ++c) {
      const int q = clbit_source_physical[static_cast<std::size_t>(c)];
      if (q < 0) continue;
      res.measured_clbits.push_back(c);
      res.readout_errors.push_back(noise_model.readout(q));
    }
  }
  return res;
}

/// Resolves terminal measurements from precomputed basis-state
/// probabilities and applies readout error per the resolver.
std::vector<double> resolve_probs_from(std::span<const double> qubit_probs,
                                       const MeasurementResolver& res) {
  std::vector<double> clbit_probs(std::size_t{1} << res.num_clbits, 0.0);
  for (std::uint64_t i = 0; i < qubit_probs.size(); ++i) {
    if (qubit_probs[i] == 0.0) continue;
    std::uint64_t j = 0;
    for (int c = 0; c < res.num_clbits; ++c) {
      const int q = res.clbit_source_compact[static_cast<std::size_t>(c)];
      if (q >= 0 && ((i >> q) & 1ULL)) j |= 1ULL << c;
    }
    clbit_probs[j] += qubit_probs[i];
  }
  if (res.apply_readout) {
    noise::apply_readout_error(clbit_probs, res.measured_clbits,
                               res.readout_errors);
  }
  return clbit_probs;
}

/// Resolves terminal measurements from the final diagonal and applies
/// readout error per the resolver.
std::vector<double> resolve_probs(const sim::DensityMatrix& dm,
                                  const MeasurementResolver& res) {
  return resolve_probs_from(dm.probabilities(), res);
}

/// Arena-backed variant for batch loops: the dim-sized diagonal scratch
/// comes from the arena instead of a per-config heap allocation.
std::vector<double> resolve_probs(const sim::DensityMatrix& dm,
                                  const MeasurementResolver& res,
                                  util::Arena& arena) {
  auto qubit_probs = arena.alloc<double>(dm.dim());
  dm.probabilities_into(qubit_probs);
  return resolve_probs_from(qubit_probs, res);
}

std::vector<double> resolve_clbit_probs(const DensityExecutor& exec,
                                        const circ::QuantumCircuit& circuit,
                                        const noise::NoiseModel& noise_model) {
  return resolve_probs(
      exec.dm,
      build_measurement_resolver(circuit, exec.to_compact, noise_model));
}

// ---- batched suffix execution ----------------------------------------------
//
// A batch sweeps hundreds of fault configs from one snapshot; every config
// replays the *same* suffix instructions. The suffix is therefore compiled
// once into a flat list of prebaked operations: gate matrices are built
// once (no per-config trig), noise superoperators are looked up once, and —
// the big win — each noisy gate's unitary is fused into its noise channel so
// the replay applies one superoperator pass instead of a unitary pass plus a
// channel pass. Only the injected U-gate parameters differ per config.

/// Swaps the operand order of a two-qubit gate matrix (local index bit 0
/// <-> bit 1), so a gate given in (q0, q1) order can be expressed over the
/// sorted pair an edge superoperator is built for.
util::Mat4 swap_operand_order(const util::Mat4& u) {
  static constexpr int kPerm[4] = {0, 2, 1, 3};
  util::Mat4 out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) out(r, c) = u(kPerm[r], kPerm[c]);
  }
  return out;
}

/// One precompiled suffix operation over compact qubit indices.
struct BakedOp {
  enum class Kind : std::uint8_t {
    Unitary1,  ///< noiseless 1q gate: m1 on q0
    Unitary2,  ///< noiseless 2q gate: m4 on (q0, q1)
    Superop1,  ///< fused 1q gate+channel superop: m4 on q0
    Superop2,  ///< fused 2q gate+channel superop: so2 on (q0, q1)
    CCX,       ///< noiseless Toffoli on (q0, q1, q2)
    Inject,    ///< per-config fault slot: injected[q0] executes here
  };
  Kind kind = Kind::Unitary1;
  int q0 = 0, q1 = 0, q2 = 0;
  util::Mat2 m1{};
  util::Mat4 m4{};
  noise::SuperOp2 so2{};
};

/// Bakes one instruction into `op` (gate matrix built once, noise fused in).
/// Returns false for instructions with nothing to replay (barriers, and
/// terminal measures, which are resolved from the final diagonal).
bool bake_instruction(const Instruction& instr,
                      const std::vector<int>& to_compact,
                      const noise::NoiseModel& nm, BakedOp& op) {
  const auto compact = [&](int physical) {
    return to_compact[static_cast<std::size_t>(physical)];
  };
  switch (instr.kind) {
    case GateKind::Barrier:
    case GateKind::Measure:
      return false;
    case GateKind::Reset:
      op.kind = BakedOp::Kind::Superop1;
      op.q0 = compact(instr.qubits[0]);
      op.m4 = noise::channel_superop(reset_channel());
      return true;
    default:
      break;
  }

  const auto& info = circ::gate_info(instr.kind);
  if (info.num_qubits == 1) {
    const util::Mat2 u = circ::gate_matrix1(instr.kind, instr.params);
    op.q0 = compact(instr.qubits[0]);
    if (const auto* superop = nm.superop_after_1q(instr.kind,
                                                  instr.qubits[0])) {
      op.kind = BakedOp::Kind::Superop1;
      op.m4 = noise::compose_superops(
          *superop, noise::channel_superop(noise::KrausChannel1{{u}}));
    } else {
      op.kind = BakedOp::Kind::Unitary1;
      op.m1 = u;
    }
  } else if (info.num_qubits == 2) {
    const util::Mat4 u = circ::gate_matrix2(instr.kind, instr.params);
    const int lo = std::min(instr.qubits[0], instr.qubits[1]);
    const int hi = std::max(instr.qubits[0], instr.qubits[1]);
    if (const auto* superop = nm.superop_after_2q(lo, hi)) {
      // Edge superops are built for the sorted pair, so re-express the
      // gate over (lo, hi) before fusing.
      const util::Mat4 u_sorted =
          instr.qubits[0] == lo ? u : swap_operand_order(u);
      op.kind = BakedOp::Kind::Superop2;
      op.q0 = compact(lo);
      op.q1 = compact(hi);
      op.so2 = noise::compose_superops(
          *superop, noise::channel_superop(noise::KrausChannel2{{u_sorted}}));
    } else {
      op.kind = BakedOp::Kind::Unitary2;
      op.q0 = compact(instr.qubits[0]);
      op.q1 = compact(instr.qubits[1]);
      op.m4 = u;
    }
  } else {
    require(instr.kind == GateKind::CCX,
            "run_suffix_batch: unsupported 3-qubit gate");
    op.kind = BakedOp::Kind::CCX;
    op.q0 = compact(instr.qubits[0]);
    op.q1 = compact(instr.qubits[1]);
    op.q2 = compact(instr.qubits[2]);
  }
  return true;
}

std::vector<BakedOp> bake_suffix(const circ::QuantumCircuit& circuit,
                                 std::size_t prefix_length,
                                 const std::vector<int>& to_compact,
                                 const noise::NoiseModel& nm) {
  std::vector<BakedOp> ops;
  const auto& instrs = circuit.instructions();
  for (std::size_t i = prefix_length; i < instrs.size(); ++i) {
    BakedOp op;
    if (bake_instruction(instrs[i], to_compact, nm, op)) ops.push_back(op);
  }
  return ops;
}

void apply_baked_op(sim::DensityMatrix& dm, const BakedOp& op) {
  switch (op.kind) {
    case BakedOp::Kind::Unitary1:
      dm.apply_unitary1(op.m1, op.q0);
      break;
    case BakedOp::Kind::Unitary2:
      dm.apply_unitary2(op.m4, op.q0, op.q1);
      break;
    case BakedOp::Kind::Superop1:
      dm.apply_superop1(op.m4, op.q0);
      break;
    case BakedOp::Kind::Superop2:
      dm.apply_superop2(op.so2.a, op.q0, op.q1);
      break;
    case BakedOp::Kind::CCX: {
      const Instruction mapped{GateKind::CCX, {op.q0, op.q1, op.q2}, {}, {}};
      dm.apply_instruction(mapped);
      break;
    }
    case BakedOp::Kind::Inject:
      break;  // per-config; callers substitute the config's fault gate
  }
}

/// Replays a compiled suffix, skipping Inject slots — the form the response
/// basis builds against (the injection itself lives in the config weights).
/// Per-config replays walk the op list themselves so Inject slots execute
/// the config's own fault gates.
void replay_suffix(sim::DensityMatrix& dm, std::span<const BakedOp> ops) {
  for (const auto& op : ops) apply_baked_op(dm, op);
}

/// Complex analogue of resolve_probs for the response basis: basis matrices
/// are not Hermitian, so their diagonals (and hence their "probabilities")
/// are complex; the imaginary parts cancel when configs recombine them.
/// The readout confusion map is real-linear, so it applies to the real and
/// imaginary parts independently.
std::vector<std::complex<double>> resolve_probs_complex(
    const sim::DensityMatrix& dm, const MeasurementResolver& res) {
  const std::uint64_t dim = dm.dim();
  const auto raw = dm.raw();
  const std::size_t num_outcomes = std::size_t{1} << res.num_clbits;
  std::vector<std::complex<double>> clbit_probs(num_outcomes, 0.0);
  for (std::uint64_t i = 0; i < dim; ++i) {
    const sim::cplx diag = raw[i * dim + i];
    if (diag == sim::cplx{}) continue;
    std::uint64_t j = 0;
    for (int c = 0; c < res.num_clbits; ++c) {
      const int q = res.clbit_source_compact[static_cast<std::size_t>(c)];
      if (q >= 0 && ((i >> q) & 1ULL)) j |= 1ULL << c;
    }
    clbit_probs[j] += diag;
  }
  if (res.apply_readout) {
    std::vector<double> re(num_outcomes), im(num_outcomes);
    for (std::size_t o = 0; o < num_outcomes; ++o) {
      re[o] = clbit_probs[o].real();
      im[o] = clbit_probs[o].imag();
    }
    noise::apply_readout_error(re, res.measured_clbits, res.readout_errors);
    noise::apply_readout_error(im, res.measured_clbits, res.readout_errors);
    for (std::size_t o = 0; o < num_outcomes; ++o) {
      clbit_probs[o] = {re[o], im[o]};
    }
  }
  return clbit_probs;
}

/// The suffix pipeline of a snapshot, compiled into a linear-response basis
/// over the fault slot — the deepest level of the prefix tree, where the
/// injection site itself becomes a split point shared by the whole grid.
///
/// Everything a batched config executes after its injected gates is one
/// fixed linear map L on density matrices (suffix superoperators, diagonal
/// extraction, readout confusion). A config only perturbs the k injected
/// qubits (k = 1 or 2), so its post-injection state decomposes over m^4
/// slot basis matrices (m = 2^k):
///
///   rho' = sum_{a,b,c,d} Phi(|c><d|)_{ab} * B_{ab,cd},
///   B_{ab,cd} = |a><b|_slot (x) rho0_slice(c,d),
///
/// where Phi is the config's slot channel (its injected unitaries composed
/// with their noise channels). Precomputing the m^4 responses L(B) per
/// snapshot turns each config into a 4^k-qubit channel build plus one
/// m^4 x 2^nc weighted sum — replacing a full suffix replay. The responses
/// are complex (the basis matrices are not Hermitian); imaginary parts
/// cancel in the weighted sum.
struct SuffixResponseBasis {
  std::vector<int> targets;  ///< compact qubit indices, ascending (size 1-2)
  /// Injection-shape key the basis was compiled for (empty when the suffix
  /// does not depend on the shape, i.e. non-idle snapshots). Moment-aware
  /// suffixes weave the spliced schedule's idle channels into the replayed
  /// ops, and that schedule depends on where the fault gates land.
  std::string shape;
  /// Response vectors, indexed [((a*m + b)*m + c)*m + d] * num_outcomes + o.
  std::vector<std::complex<double>> responses;
  std::size_t num_outcomes = 0;
};

/// Stable key of a batch config's injection *shape* — the gate kinds and
/// operand qubits, excluding parameters. Two configs with the same shape
/// splice into circuits with identical moment schedules (moment placement
/// depends on qubits, durations on kind + qubits), so they share a compiled
/// idle suffix and a response basis.
std::string injection_shape_key(std::span<const Instruction> injected) {
  util::ByteWriter w;
  for (const Instruction& instr : injected) {
    w.u32(static_cast<std::uint32_t>(instr.kind));
    w.u32(static_cast<std::uint32_t>(instr.qubits.size()));
    for (const int q : instr.qubits) w.u32(static_cast<std::uint32_t>(q));
  }
  return w.data();
}

/// Density-matrix state captured after a circuit prefix, together with the
/// compaction maps, the circuit whose suffix run_suffix will replay, and a
/// lazily-built cache of the compiled suffix program so every batch chunk
/// submitted against this snapshot shares one compilation.
class DensitySnapshot final : public PrefixSnapshot {
 public:
  /// \param idle_noise      True when the snapshot is moment-aware: the
  ///                        state covers exactly the sealed moments below
  ///                        `moment_cursor` (not a flat gate prefix).
  /// \param moment_cursor   First unsealed moment at the split (0 for
  ///                        non-idle snapshots).
  /// \param schedule_digest idle_schedule_digest at the split (0 non-idle).
  DensitySnapshot(sim::DensityMatrix dm, Compaction compaction,
                  circ::QuantumCircuit circuit, std::size_t prefix_length,
                  bool idle_noise = false, std::size_t moment_cursor = 0,
                  std::uint64_t schedule_digest = 0)
      : PrefixSnapshot(prefix_length),
        dm_(std::move(dm)),
        compaction_(std::move(compaction)),
        circuit_(std::move(circuit)),
        idle_noise_(idle_noise),
        moment_cursor_(moment_cursor),
        schedule_digest_(schedule_digest) {}

  const sim::DensityMatrix& dm() const { return dm_; }
  const Compaction& compaction() const { return compaction_; }
  const circ::QuantumCircuit* circuit() const override { return &circuit_; }
  bool idle_noise() const { return idle_noise_; }
  std::size_t moment_cursor() const { return moment_cursor_; }
  std::uint64_t schedule_digest() const { return schedule_digest_; }

  /// The fused suffix program plus the terminal-measurement resolver,
  /// compiled on first use and cached. Thread-safe: snapshots are shared
  /// across pool lanes, and chunked campaigns submit several batches
  /// against one snapshot.
  struct CompiledSuffix {
    std::vector<BakedOp> ops;
    MeasurementResolver resolver;
  };
  const CompiledSuffix& compiled_suffix(const noise::NoiseModel& nm) const {
    std::call_once(compile_once_, [&] {
      compiled_.ops =
          bake_suffix(circuit_, prefix_length(), compaction_.to_compact, nm);
      compiled_.resolver =
          build_measurement_resolver(circuit_, compaction_.to_compact, nm);
    });
    return compiled_;
  }

  /// Shape-keyed compiled suffixes for moment-aware snapshots: the spliced
  /// schedule (and with it the interleaved idle channels and the Inject
  /// slot positions) depends on where the fault gates land, so each
  /// injection shape bakes its own program. Built on first use by `build`
  /// under the snapshot's lock and shared across chunks and lanes, so
  /// results stay independent of batch granularity.
  template <typename BuildFn>
  const CompiledSuffix& compiled_idle_suffix(const std::string& shape,
                                             BuildFn&& build) const {
    std::lock_guard<std::mutex> lock(idle_compiled_mutex_);
    auto it = idle_compiled_.find(shape);
    if (it == idle_compiled_.end()) {
      it = idle_compiled_
               .emplace(shape, std::make_unique<CompiledSuffix>(build()))
               .first;
    }
    return *it->second;
  }

  /// Cached response basis per (target-qubit set, injection shape), built
  /// on first use by `build` under the snapshot's lock. Chunked submissions
  /// against one snapshot share the basis, so per-config results are
  /// independent of batch granularity (the shard byte-identity contract).
  template <typename BuildFn>
  const SuffixResponseBasis& response_basis(const std::vector<int>& targets,
                                            const std::string& shape,
                                            BuildFn&& build) const {
    std::lock_guard<std::mutex> lock(response_mutex_);
    for (const auto& basis : response_bases_) {
      if (basis->targets == targets && basis->shape == shape) return *basis;
    }
    response_bases_.push_back(
        std::make_unique<SuffixResponseBasis>(build(targets)));
    response_bases_.back()->shape = shape;
    return *response_bases_.back();
  }

 private:
  sim::DensityMatrix dm_;
  Compaction compaction_;
  circ::QuantumCircuit circuit_;
  bool idle_noise_ = false;
  std::size_t moment_cursor_ = 0;
  std::uint64_t schedule_digest_ = 0;
  mutable std::once_flag compile_once_;
  mutable CompiledSuffix compiled_;
  mutable std::mutex idle_compiled_mutex_;
  mutable std::map<std::string, std::unique_ptr<CompiledSuffix>>
      idle_compiled_;
  mutable std::mutex response_mutex_;
  mutable std::vector<std::unique_ptr<SuffixResponseBasis>> response_bases_;
};

/// Compiles the moment-aware suffix of a snapshot for one injection shape:
/// splices representative fault gates in at the split, recomputes the
/// spliced circuit's moment schedule, and flattens every moment at or above
/// the snapshot's sealed boundary into baked ops — residue prefix gates
/// (sealed later than the split), Inject slots where the fault gates land,
/// the suffix gates (noise fused as in bake_suffix), and one idle-channel
/// superop per (moment, idle qubit) pair. Replaying the result from the
/// snapshot state applies the same schedule a from-scratch run of the
/// spliced circuit would (parameters of the representative gates never
/// matter: moment placement depends on qubits, durations on kind + qubits).
DensitySnapshot::CompiledSuffix compile_idle_suffix(
    const DensitySnapshot& snap, std::span<const Instruction> injected_rep,
    const noise::NoiseModel& nm) {
  const circ::QuantumCircuit& circuit = *snap.circuit();
  const circ::QuantumCircuit spliced =
      splice_circuit(circuit, snap.prefix_length(), injected_rep);
  const circ::Moments moments = circ::compute_moments(spliced);
  const auto& instrs = spliced.instructions();
  const std::vector<int>& to_compact = snap.compaction().to_compact;
  const std::vector<int>& active = snap.compaction().active;
  const std::size_t split = snap.prefix_length();
  const std::size_t num_injected = injected_rep.size();

  DensitySnapshot::CompiledSuffix compiled;
  for (int m = static_cast<int>(snap.moment_cursor());
       m < moments.num_moments(); ++m) {
    const auto& idx =
        moments.instructions_per_moment[static_cast<std::size_t>(m)];
    double duration = 0.0;
    std::vector<bool> busy(active.size(), false);
    for (const auto i : idx) {
      duration = std::max(duration, instruction_duration_ns(instrs[i], nm));
      for (int q : instrs[i].qubits) {
        const int c = to_compact[static_cast<std::size_t>(q)];
        if (c >= 0) busy[static_cast<std::size_t>(c)] = true;
      }
    }
    for (const auto i : idx) {
      if (i >= split && i < split + num_injected) {
        BakedOp op;
        op.kind = BakedOp::Kind::Inject;
        op.q0 = static_cast<int>(i - split);
        compiled.ops.push_back(op);
        continue;
      }
      BakedOp op;
      if (bake_instruction(instrs[i], to_compact, nm, op)) {
        compiled.ops.push_back(op);
      }
    }
    if (duration > 0.0) {
      for (std::size_t k = 0; k < active.size(); ++k) {
        if (busy[k]) continue;
        const auto idle = nm.idle_relaxation(active[k], duration);
        if (idle.is_identity()) continue;
        BakedOp op;
        op.kind = BakedOp::Kind::Superop1;
        op.q0 = static_cast<int>(k);
        op.m4 = noise::channel_superop(idle);
        compiled.ops.push_back(op);
      }
    }
  }
  compiled.resolver = build_measurement_resolver(circuit, to_compact, nm);
  return compiled;
}

/// True when a baked op acts on any of `targets` (compact indices) —
/// the response-path eligibility scan under idle noise: an op on a target
/// ahead of the last Inject slot would have to commute past the config's
/// slot channel, which only disjoint-qubit ops do.
bool op_touches(const BakedOp& op, const std::vector<int>& targets) {
  const auto has = [&](int q) {
    return std::find(targets.begin(), targets.end(), q) != targets.end();
  };
  switch (op.kind) {
    case BakedOp::Kind::Unitary1:
    case BakedOp::Kind::Superop1:
      return has(op.q0);
    case BakedOp::Kind::Unitary2:
    case BakedOp::Kind::Superop2:
      return has(op.q0) || has(op.q1);
    case BakedOp::Kind::CCX:
      return has(op.q0) || has(op.q1) || has(op.q2);
    case BakedOp::Kind::Inject:
      return false;
  }
  return false;
}

/// Response-path eligibility of a compiled idle suffix for one target set:
/// every non-Inject op that precedes the last Inject slot must be disjoint
/// from the targets. Then the whole post-injection pipeline factors as
/// "slot channel, then one fixed linear map" exactly — ops ahead of the
/// injection commute past the slot channel (disjoint qubits), idle channels
/// on the targets only ever appear after the last fault gate (a target is
/// busy in its own injection moment), and everything is baked into the
/// basis replay.
bool idle_response_eligible(const DensitySnapshot::CompiledSuffix& compiled,
                            const std::vector<int>& targets) {
  std::ptrdiff_t last_inject = -1;
  for (std::size_t i = 0; i < compiled.ops.size(); ++i) {
    if (compiled.ops[i].kind == BakedOp::Kind::Inject) {
      last_inject = static_cast<std::ptrdiff_t>(i);
    }
  }
  for (std::ptrdiff_t i = 0; i < last_inject; ++i) {
    if (op_touches(compiled.ops[static_cast<std::size_t>(i)], targets)) {
      return false;
    }
  }
  return true;
}

/// Builds the m^4 basis responses for one target set: each slot matrix unit
/// placement B_{ab,cd} (the |a><b| slot block filled with the snapshot's
/// (c,d) slice) is replayed through the compiled suffix and resolved. One
/// replay per basis element, amortized over every config that shares the
/// targets.
SuffixResponseBasis build_response_basis(
    const DensitySnapshot& snap, const std::vector<int>& targets,
    const DensitySnapshot::CompiledSuffix& compiled) {
  const int k = static_cast<int>(targets.size());
  const std::uint64_t m = std::uint64_t{1} << k;
  const sim::DensityMatrix& rho0 = snap.dm();
  const std::uint64_t dim = rho0.dim();
  const auto raw0 = rho0.raw();

  // spread[x]: slot label bits placed at their compact qubit positions;
  // rests: every full index whose target bits are all zero.
  std::vector<std::uint64_t> spread(m, 0);
  for (std::uint64_t x = 0; x < m; ++x) {
    for (int j = 0; j < k; ++j) {
      if ((x >> j) & 1ULL) spread[x] |= std::uint64_t{1} << targets[j];
    }
  }
  std::uint64_t target_mask = 0;
  for (const int t : targets) target_mask |= std::uint64_t{1} << t;
  std::vector<std::uint64_t> rests;
  rests.reserve(dim >> k);
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & target_mask) == 0) rests.push_back(i);
  }

  SuffixResponseBasis basis;
  basis.targets = targets;
  basis.num_outcomes = std::size_t{1} << compiled.resolver.num_clbits;
  basis.responses.resize(m * m * m * m * basis.num_outcomes);
  // One scratch matrix refilled in place per basis element — the m^4 loop
  // used to allocate (and zero via from_raw) a fresh dim^2 buffer each
  // iteration.
  sim::DensityMatrix basis_dm(rho0.num_qubits());
  for (std::uint64_t a = 0; a < m; ++a) {
    for (std::uint64_t b = 0; b < m; ++b) {
      for (std::uint64_t c = 0; c < m; ++c) {
        for (std::uint64_t d = 0; d < m; ++d) {
          const std::span<sim::cplx> rawb = basis_dm.mutable_raw();
          std::fill(rawb.begin(), rawb.end(), sim::cplx{});
          for (const std::uint64_t ri : rests) {
            const std::uint64_t row = (ri | spread[a]) * dim + spread[b];
            const std::uint64_t src = (ri | spread[c]) * dim + spread[d];
            for (const std::uint64_t si : rests) {
              rawb[row + si] = raw0[src + si];
            }
          }
          replay_suffix(basis_dm, compiled.ops);
          const auto response =
              resolve_probs_complex(basis_dm, compiled.resolver);
          const std::uint64_t beta = ((a * m + b) * m + c) * m + d;
          std::copy(response.begin(), response.end(),
                    basis.responses.begin() +
                        static_cast<std::ptrdiff_t>(beta * basis.num_outcomes));
        }
      }
    }
  }
  return basis;
}

/// Weights of one config over a response basis: W_beta = Phi(|c><d|)[a][b],
/// where Phi is the config's slot channel — its injected unitaries composed
/// with the same per-qubit noise channels the replay path applies. Computed
/// by evolving each slot matrix unit through a tiny k-qubit density matrix
/// with the same kernels, so the channel semantics match execute() exactly.
std::span<std::complex<double>> slot_channel_weights(
    util::Arena& arena, std::span<const Instruction> injected,
    const std::vector<int>& targets, const std::vector<int>& to_compact,
    const noise::NoiseModel& nm) {
  const int k = static_cast<int>(targets.size());
  const std::uint64_t m = std::uint64_t{1} << k;
  auto weights = arena.alloc_zeroed<std::complex<double>>(m * m * m * m);
  sim::DensityMatrix tiny(k);
  for (std::uint64_t c = 0; c < m; ++c) {
    for (std::uint64_t d = 0; d < m; ++d) {
      const std::span<sim::cplx> raw = tiny.mutable_raw();
      std::fill(raw.begin(), raw.end(), sim::cplx{});
      raw[c * m + d] = 1.0;
      for (const Instruction& instr : injected) {
        const int compact =
            to_compact[static_cast<std::size_t>(instr.qubits[0])];
        int slot = 0;
        while (targets[static_cast<std::size_t>(slot)] != compact) ++slot;
        tiny.apply_unitary1(circ::gate_matrix1(instr.kind, instr.params),
                            slot);
        if (!nm.is_ideal()) {
          if (const auto* superop =
                  nm.superop_after_1q(instr.kind, instr.qubits[0])) {
            tiny.apply_superop1(*superop, slot);
          }
        }
      }
      for (std::uint64_t a = 0; a < m; ++a) {
        for (std::uint64_t b = 0; b < m; ++b) {
          weights[((a * m + b) * m + c) * m + d] = tiny.at(a, b);
        }
      }
    }
  }
  return weights;
}

}  // namespace

std::vector<double> run_density_probs(const circ::QuantumCircuit& circuit,
                                      const noise::NoiseModel& noise_model,
                                      const DensityRunOptions& options) {
  require(circuit.num_clbits() > 0,
          "run_density_probs: circuit has no classical bits");
  require(circuit.measurements_are_terminal(),
          "run_density_probs: density-matrix execution requires terminal "
          "measurements (use TrajectoryBackend for mid-circuit measures)");
  require(options.coherent_errors.empty() ||
              options.coherent_errors.size() ==
                  static_cast<std::size_t>(circuit.num_qubits()),
          "run_density_probs: coherent error vector size mismatch");

  // Compaction: simulate only the qubits the circuit touches.
  const Compaction compaction = build_compaction(circuit);
  const std::vector<int>& active = compaction.active;

  DensityExecutor exec{sim::DensityMatrix(static_cast<int>(active.size())),
                       noise_model, options, compaction.to_compact};

  if (options.idle_noise && !noise_model.is_ideal()) {
    // Moment-scheduled execution: idle qubits decohere while others work.
    const auto moments = circ::compute_moments(circuit);
    execute_idle_moments(exec, circuit, moments, 0, moments.num_moments(),
                         noise_model, active);
  } else {
    for (const auto& instr : circuit.instructions()) exec.execute(instr);
  }

  return resolve_clbit_probs(exec, circuit, noise_model);
}

DensityMatrixBackend::DensityMatrixBackend(noise::NoiseModel noise_model,
                                           bool idle_noise)
    : noise_model_(std::move(noise_model)), idle_noise_(idle_noise) {}

std::string DensityMatrixBackend::name() const {
  return "density_matrix(" + noise_model_.source_name() +
         (idle_noise_ ? ", idle_noise" : "") + ")";
}

ExecutionResult DensityMatrixBackend::run(const circ::QuantumCircuit& circuit,
                                          std::uint64_t shots,
                                          std::uint64_t seed) {
  DensityRunOptions options;
  options.idle_noise = idle_noise_;
  auto probs = run_density_probs(circuit, noise_model_, options);
  return ExecutionResult::from_distribution(
      std::move(probs), circuit.num_clbits(), shots, seed, name());
}

std::uint64_t DensityMatrixBackend::snapshot_schedule_digest(
    const circ::QuantumCircuit& circuit, std::size_t prefix_length) const {
  if (!idle_mode_active()) return 0;
  return idle_schedule_digest(circuit, prefix_length,
                              build_compaction(circuit).active);
}

PrefixSnapshotPtr DensityMatrixBackend::prepare_prefix(
    const circ::QuantumCircuit& circuit, std::size_t prefix_length,
    std::uint64_t shots_hint, std::uint64_t snapshot_seed) {
  (void)shots_hint;
  (void)snapshot_seed;
  require(prefix_length <= circuit.size(),
          "prepare_prefix: prefix length exceeds circuit size");
  require(circuit.num_clbits() > 0,
          "prepare_prefix: circuit has no classical bits");
  require(circuit.measurements_are_terminal(),
          "prepare_prefix: density-matrix execution requires terminal "
          "measurements");

  // The compaction is built from the full circuit so the snapshot's matrix
  // has the same dimension a full faulty run would use; injected gates may
  // only touch qubits already active in the full circuit.
  Compaction compaction = build_compaction(circuit);
  const DensityRunOptions options{};
  DensityExecutor exec{
      sim::DensityMatrix(static_cast<int>(compaction.active.size())),
      noise_model_, options, compaction.to_compact};
  const auto& instrs = circuit.instructions();
  if (idle_mode_active()) {
    // Moment-aware snapshot: evolve exactly the moments that are sealed at
    // the split (no spliced-in fault gate or later instruction can ever
    // join them), in the same moment order a from-scratch run uses.
    // Everything above the boundary — including prefix gates whose moment
    // is still open — replays at run_suffix time against the spliced
    // circuit's own schedule.
    const circ::Moments moments = circ::compute_moments(circuit);
    const int sealed =
        circ::sealed_moment_count(circuit, prefix_length, compaction.active);
    execute_idle_moments(exec, circuit, moments, 0, sealed, noise_model_,
                         compaction.active);
    const std::uint64_t digest =
        idle_schedule_digest(circuit, prefix_length, compaction.active);
    return std::make_shared<DensitySnapshot>(
        std::move(exec.dm), std::move(compaction), circuit, prefix_length,
        /*idle_noise=*/true, static_cast<std::size_t>(sealed), digest);
  }
  for (std::size_t i = 0; i < prefix_length; ++i) exec.execute(instrs[i]);
  return std::make_shared<DensitySnapshot>(std::move(exec.dm),
                                           std::move(compaction), circuit,
                                           prefix_length);
}

PrefixSnapshotPtr DensityMatrixBackend::extend_snapshot(
    const PrefixSnapshot& parent, std::size_t from_gate, std::size_t to_gate,
    std::uint64_t shots_hint, std::uint64_t snapshot_seed) {
  const auto* snap = dynamic_cast<const DensitySnapshot*>(&parent);
  if (!snap) {
    return Backend::extend_snapshot(parent, from_gate, to_gate, shots_hint,
                                    snapshot_seed);
  }
  const circ::QuantumCircuit& circuit = *snap->circuit();
  require(from_gate == parent.prefix_length(),
          "extend_snapshot: from_gate does not match the parent prefix");
  require(to_gate >= from_gate,
          "extend_snapshot: cannot extend a snapshot backwards");
  require(to_gate <= circuit.size(),
          "extend_snapshot: to_gate exceeds circuit size");
  require(snap->idle_noise() == idle_mode_active(),
          "extend_snapshot: snapshot idle-noise mode does not match the "
          "backend");

  const DensityRunOptions options{};
  DensityExecutor exec{snap->dm().clone(), noise_model_, options,
                       snap->compaction().to_compact};
  const auto& instrs = circuit.instructions();
  if (snap->idle_noise()) {
    // Advance the sealed boundary: the child's sealed moments are a
    // superset of the parent's (frontiers only grow with the prefix), so
    // the derivation replays exactly the newly sealed moments — the same
    // moment sequence a from-scratch prepare at to_gate runs after the
    // parent's boundary. Bit-identical by construction.
    const circ::Moments moments = circ::compute_moments(circuit);
    const int sealed_to =
        circ::sealed_moment_count(circuit, to_gate, snap->compaction().active);
    const int sealed_from = static_cast<int>(snap->moment_cursor());
    require(sealed_to >= sealed_from,
            "extend_snapshot: sealed boundary regressed (corrupt snapshot?)");
    execute_idle_moments(exec, circuit, moments, sealed_from, sealed_to,
                         noise_model_, snap->compaction().active);
    const std::uint64_t digest =
        idle_schedule_digest(circuit, to_gate, snap->compaction().active);
    return std::make_shared<DensitySnapshot>(
        std::move(exec.dm), snap->compaction(), circuit, to_gate,
        /*idle_noise=*/true, static_cast<std::size_t>(sealed_to), digest);
  }
  for (std::size_t i = from_gate; i < to_gate; ++i) exec.execute(instrs[i]);
  return std::make_shared<DensitySnapshot>(std::move(exec.dm),
                                           snap->compaction(), circuit,
                                           to_gate);
}

ExecutionResult DensityMatrixBackend::run_suffix(
    const PrefixSnapshot& snapshot,
    std::span<const circ::Instruction> injected, std::uint64_t shots,
    std::uint64_t seed) {
  const auto* snap = dynamic_cast<const DensitySnapshot*>(&snapshot);
  if (!snap) return Backend::run_suffix(snapshot, injected, shots, seed);

  const circ::QuantumCircuit& circuit = *snap->circuit();
  require(snap->idle_noise() == idle_mode_active(),
          "run_suffix: snapshot idle-noise mode does not match the backend");
  for (const auto& instr : injected) {
    require(instr.is_unitary(), "run_suffix: injected gate not unitary");
    for (int q : instr.qubits) {
      require(q >= 0 && q < circuit.num_qubits(),
              "run_suffix: injected gate qubit out of range");
      // A fault on a qubit outside the snapshot's compacted set (mapped but
      // never gated, e.g. an idle double-fault neighbor) cannot resume from
      // the snapshot; re-simulate the spliced circuit, which stays exact.
      if (snap->compaction().to_compact[static_cast<std::size_t>(q)] < 0) {
        return run(splice_circuit(circuit, snap->prefix_length(), injected),
                   shots, seed);
      }
    }
  }

  const DensityRunOptions options{};
  DensityExecutor exec{snap->dm().clone(), noise_model_, options,
                       snap->compaction().to_compact};
  if (snap->idle_noise()) {
    // Moment-aware resume: recompute the schedule of the spliced circuit
    // (its sealed moments match the snapshot's by construction — that is
    // what sealing means) and execute everything from the boundary on, idle
    // channels included, in the same moment order run() uses.
    const circ::QuantumCircuit spliced =
        splice_circuit(circuit, snap->prefix_length(), injected);
    const circ::Moments moments = circ::compute_moments(spliced);
    execute_idle_moments(exec, spliced, moments,
                         static_cast<int>(snap->moment_cursor()),
                         moments.num_moments(), noise_model_,
                         snap->compaction().active);
    auto probs = resolve_clbit_probs(exec, spliced, noise_model_);
    return ExecutionResult::from_distribution(
        std::move(probs), circuit.num_clbits(), shots, seed, name());
  }
  for (const auto& instr : injected) exec.execute(instr);
  const auto& instrs = circuit.instructions();
  for (std::size_t i = snap->prefix_length(); i < instrs.size(); ++i) {
    exec.execute(instrs[i]);
  }
  auto probs = resolve_clbit_probs(exec, circuit, noise_model_);
  return ExecutionResult::from_distribution(
      std::move(probs), circuit.num_clbits(), shots, seed, name());
}

bool DensityMatrixBackend::save_snapshot(const PrefixSnapshot& snapshot,
                                         std::ostream& out) const {
  const auto* snap = dynamic_cast<const DensitySnapshot*>(&snapshot);
  if (!snap) return false;

  util::ByteWriter payload;
  snapio::write_circuit(payload, *snap->circuit());
  payload.u64(snap->prefix_length());
  // v3 moment-aware header: idle flag, sealed-moment cursor, idle-schedule
  // digest (zeros for plain snapshots — the flag keeps a moment-aware
  // state from ever being resumed as a flat gate prefix, or vice versa).
  payload.u8(snap->idle_noise() ? 1 : 0);
  payload.u64(snap->moment_cursor());
  payload.u64(snap->schedule_digest());
  const sim::DensityMatrix& dm = snap->dm();
  payload.u32(static_cast<std::uint32_t>(dm.num_qubits()));
  for (const auto& amp : dm.raw()) {
    payload.f64(amp.real());
    payload.f64(amp.imag());
  }
  snapio::write_container(out, snapio::SnapshotKind::Density, payload.data());
  return true;
}

PrefixSnapshotPtr DensityMatrixBackend::load_snapshot(std::istream& in) const {
  const snapio::Container container = snapio::read_container(in);
  require(container.kind == snapio::SnapshotKind::Density,
          "load_snapshot: container was not written by a density backend");

  util::ByteReader r(container.payload);
  circ::QuantumCircuit circuit = snapio::read_circuit(r);
  const std::uint64_t prefix_length = r.u64();
  require(prefix_length <= circuit.size(),
          "load_snapshot: prefix length exceeds circuit size");
  // v3 moment-aware header; v1/v2 payloads predate idle-noise
  // checkpointing, so they are always plain gate-prefix snapshots.
  bool snapshot_idle = false;
  std::uint64_t moment_cursor = 0;
  std::uint64_t schedule_digest = 0;
  if (container.version >= 3) {
    snapshot_idle = r.u8() != 0;
    moment_cursor = r.u64();
    schedule_digest = r.u64();
  }
  require(snapshot_idle == idle_mode_active(),
          "load_snapshot: snapshot idle-noise mode does not match the "
          "backend");

  // The compaction is a pure function of the circuit, so it is re-derived
  // instead of stored; the qubit count cross-checks payload vs circuit.
  Compaction compaction = build_compaction(circuit);
  if (snapshot_idle) {
    // Re-derive the sealed schedule from the embedded circuit and require
    // the stored cursor/digest to match: a snapshot written by a different
    // moment scheduler (or tampered at the boundary) must never resume.
    const int sealed = circ::sealed_moment_count(
        circuit, static_cast<std::size_t>(prefix_length), compaction.active);
    require(moment_cursor == static_cast<std::uint64_t>(sealed),
            "load_snapshot: moment cursor does not match the schedule");
    require(schedule_digest ==
                idle_schedule_digest(circuit,
                                     static_cast<std::size_t>(prefix_length),
                                     compaction.active),
            "load_snapshot: idle-schedule digest mismatch");
  } else {
    require(moment_cursor == 0 && schedule_digest == 0,
            "load_snapshot: non-idle snapshot carries a moment cursor");
  }
  const auto num_qubits = static_cast<int>(r.u32());
  require(num_qubits == static_cast<int>(compaction.active.size()),
          "load_snapshot: density dimension does not match circuit");
  // DensityMatrix supports at most 12 qubits; checking before the shift
  // keeps the arithmetic defined for any checksum-valid file.
  require(num_qubits >= 1 && num_qubits <= 12,
          "load_snapshot: density qubit count out of range");
  const std::uint64_t dim = std::uint64_t{1} << num_qubits;
  std::vector<sim::cplx> rho(dim * dim);
  for (auto& amp : rho) {
    const double re = r.f64();
    const double im = r.f64();
    amp = sim::cplx{re, im};
  }
  require(r.at_end(), "load_snapshot: trailing bytes in density payload");
  return std::make_shared<DensitySnapshot>(
      sim::DensityMatrix::from_raw(num_qubits, std::move(rho)),
      std::move(compaction), std::move(circuit),
      static_cast<std::size_t>(prefix_length), snapshot_idle,
      static_cast<std::size_t>(moment_cursor), schedule_digest);
}

std::vector<ExecutionResult> DensityMatrixBackend::run_suffix_batch(
    const PrefixSnapshot& snapshot, std::span<const SuffixConfig> configs,
    std::uint64_t shots) {
  const auto* snap = dynamic_cast<const DensitySnapshot*>(&snapshot);
  if (!snap) return Backend::run_suffix_batch(snapshot, configs, shots);
  if (configs.empty()) return {};

  const circ::QuantumCircuit& circuit = *snap->circuit();
  const std::vector<int>& to_compact = snap->compaction().to_compact;

  // Validate every config up front; configs whose fault touches a qubit
  // outside the snapshot's compacted set (mapped but never gated, e.g. an
  // idle double-fault neighbor) cannot resume from the snapshot and fall
  // back to exact splice re-simulation individually.
  std::vector<char> needs_splice(configs.size(), 0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (const auto& instr : configs[c].injected) {
      require(instr.is_unitary(), "run_suffix_batch: injected gate not unitary");
      for (int q : instr.qubits) {
        require(q >= 0 && q < circuit.num_qubits(),
                "run_suffix_batch: injected gate qubit out of range");
        if (to_compact[static_cast<std::size_t>(q)] < 0) needs_splice[c] = 1;
      }
    }
  }

  require(snap->idle_noise() == idle_mode_active(),
          "run_suffix_batch: snapshot idle-noise mode does not match the "
          "backend");
  const bool idle = snap->idle_noise();

  // Per-batch setup amortized over every config: the compiled suffix
  // (cached on the snapshot, so chunked submissions share one compile), the
  // backend name string, and one scratch density matrix (re-filled from the
  // snapshot with no allocation). Moment-aware snapshots compile one suffix
  // per injection *shape* (the spliced schedule depends on where the fault
  // gates land); a single-fault grid has one shape, a double-fault slice
  // one per neighbor.
  const DensitySnapshot::CompiledSuffix* shared_compiled =
      idle ? nullptr : &snap->compiled_suffix(noise_model_);
  std::vector<const DensitySnapshot::CompiledSuffix*> compiled_of(
      configs.size(), shared_compiled);
  std::vector<std::string> shape_of(configs.size());
  if (idle) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      if (needs_splice[c]) continue;
      shape_of[c] = injection_shape_key(configs[c].injected);
      compiled_of[c] = &snap->compiled_idle_suffix(shape_of[c], [&] {
        return compile_idle_suffix(*snap, configs[c].injected, noise_model_);
      });
    }
  }
  const std::string backend_name = name();

  // Suffix-response grouping (the injection-site level of the prefix tree):
  // configs whose injected gates are all single-qubit and touch at most two
  // compact qubits share one m^4 basis of suffix responses; when enough of
  // them share a target set (and, for moment-aware suffixes, an injection
  // shape whose pre-injection ops are disjoint from the targets), each is
  // evaluated as a weighted basis sum instead of a full suffix replay.
  // Everything else (small groups, splice fallbacks, exotic injections)
  // takes the replay path below.
  struct ResponseGroup {
    std::vector<int> targets;
    std::string shape;
    std::vector<std::size_t> config_indices;
  };
  std::vector<ResponseGroup> groups;
  std::vector<std::ptrdiff_t> group_of(configs.size(), -1);
  if (suffix_response_enabled_) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      if (needs_splice[c] || configs[c].injected.empty()) continue;
      std::vector<int> targets;
      bool eligible = true;
      for (const auto& instr : configs[c].injected) {
        if (circ::gate_info(instr.kind).num_qubits != 1) {
          eligible = false;
          break;
        }
        const int q = to_compact[static_cast<std::size_t>(instr.qubits[0])];
        if (std::find(targets.begin(), targets.end(), q) == targets.end()) {
          targets.push_back(q);
        }
      }
      if (!eligible || targets.size() > 2) continue;
      std::sort(targets.begin(), targets.end());
      auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
        return g.targets == targets && g.shape == shape_of[c];
      });
      if (it == groups.end()) {
        groups.push_back(ResponseGroup{std::move(targets), shape_of[c], {}});
        it = groups.end() - 1;
      }
      it->config_indices.push_back(c);
      group_of[c] = it - groups.begin();
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::size_t threshold = groups[g].targets.size() == 1
                                        ? kResponseMinConfigs1q
                                        : kResponseMinConfigs2q;
      // Below break-even, or a moment-aware shape whose pre-injection ops
      // touch a target (the slot channel would not factor out): replay
      // path. Both predicates are pure functions of the batch contents, so
      // the choice is identical across chunkings and shardings.
      const bool ineligible =
          groups[g].config_indices.size() < threshold ||
          (idle && !idle_response_eligible(
                       *compiled_of[groups[g].config_indices.front()],
                       groups[g].targets));
      if (ineligible) {
        for (const std::size_t c : groups[g].config_indices) group_of[c] = -1;
        groups[g].config_indices.clear();
      }
    }
  }

  const DensityRunOptions options{};
  // The scratch starts empty (cheap |0><0| init, no snapshot copy) and is
  // re-filled from the snapshot per config below.
  DensityExecutor exec{sim::DensityMatrix(snap->dm().num_qubits()),
                       noise_model_, options, to_compact};

  std::vector<ExecutionResult> results(configs.size());
  // Per-config scratch (response weights, accumulators, diagonal buffers)
  // comes from one arena: after the first config its blocks are warm and
  // the steady-state loop allocates nothing.
  util::Arena arena;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    arena.reset();
    const SuffixConfig& config = configs[c];
    if (needs_splice[c]) {
      results[c] =
          run(splice_circuit(circuit, snap->prefix_length(), config.injected),
              shots, config.seed);
      continue;
    }
    if (group_of[c] >= 0) {
      const ResponseGroup& group = groups[static_cast<std::size_t>(group_of[c])];
      const SuffixResponseBasis& basis = snap->response_basis(
          group.targets, group.shape, [&](const std::vector<int>& targets) {
            return build_response_basis(*snap, targets, *compiled_of[c]);
          });
      const auto weights = slot_channel_weights(
          arena, config.injected, group.targets, to_compact, noise_model_);
      const auto acc = arena.alloc_zeroed<std::complex<double>>(
          basis.num_outcomes);
      for (std::size_t beta = 0; beta < weights.size(); ++beta) {
        const std::complex<double> w = weights[beta];
        if (w == std::complex<double>{}) continue;
        const auto* response = &basis.responses[beta * basis.num_outcomes];
        for (std::size_t o = 0; o < basis.num_outcomes; ++o) {
          acc[o] += w * response[o];
        }
      }
      // Imaginary parts cancel analytically; rounding can leave a state
      // with probability ~ -1e-16, which samplers must never see.
      std::vector<double> probs(basis.num_outcomes);
      for (std::size_t o = 0; o < basis.num_outcomes; ++o) {
        probs[o] = std::max(0.0, acc[o].real());
      }
      results[c] = ExecutionResult::from_distribution(
          std::move(probs), circuit.num_clbits(), shots, config.seed,
          backend_name);
      continue;
    }
    exec.dm = snap->dm();
    if (idle) {
      // Moment-aware replay: the compiled program interleaves residue
      // prefix gates, Inject slots, suffix gates and idle channels in the
      // spliced schedule's moment order; Inject slots execute this config's
      // own fault gates (unitary + its noise channel, as execute() would).
      for (const auto& op : compiled_of[c]->ops) {
        if (op.kind == BakedOp::Kind::Inject) {
          exec.execute(config.injected[static_cast<std::size_t>(op.q0)]);
        } else {
          apply_baked_op(exec.dm, op);
        }
      }
    } else {
      for (const auto& instr : config.injected) exec.execute(instr);
      replay_suffix(exec.dm, compiled_of[c]->ops);
    }
    results[c] = ExecutionResult::from_distribution(
        resolve_probs(exec.dm, compiled_of[c]->resolver, arena),
        circuit.num_clbits(), shots, config.seed, backend_name);
  }
  return results;
}

}  // namespace qufi::backend
