#include "backend/ideal_backend.hpp"

#include "sim/statevector.hpp"

namespace qufi::backend {

ExecutionResult IdealBackend::run(const circ::QuantumCircuit& circuit,
                                  std::uint64_t shots, std::uint64_t seed) {
  auto probs = sim::ideal_clbit_probabilities(circuit);
  return ExecutionResult::from_distribution(
      std::move(probs), circuit.num_clbits(), shots, seed, name());
}

}  // namespace qufi::backend
