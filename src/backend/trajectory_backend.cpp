#include "backend/trajectory_backend.hpp"

#include <algorithm>
#include <cmath>

#include "backend/snapshot_io.hpp"
#include "noise/readout.hpp"
#include "sim/statevector.hpp"
#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qufi::backend {

using circ::GateKind;
using circ::Instruction;

namespace {

/// Samples one Kraus branch of a 1q channel and applies it (normalized).
void sample_kraus1(sim::Statevector& sv, const noise::KrausChannel1& ch,
                   int q, util::Xoshiro256pp& rng) {
  if (ch.is_identity()) return;
  const double draw = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t k = 0; k < ch.ops.size(); ++k) {
    // Branch probability = ||K psi||^2; try op on a scratch copy.
    sim::Statevector candidate = sv;
    candidate.apply_matrix1(ch.ops[k], q);
    const double p = candidate.norm() * candidate.norm();
    cumulative += p;
    if (draw < cumulative || k + 1 == ch.ops.size()) {
      if (p > 0) candidate.normalize();
      sv = std::move(candidate);
      return;
    }
  }
}

void sample_kraus2(sim::Statevector& sv, const noise::KrausChannel2& ch,
                   int q0, int q1, util::Xoshiro256pp& rng) {
  if (ch.is_identity()) return;
  const double draw = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t k = 0; k < ch.ops.size(); ++k) {
    sim::Statevector candidate = sv;
    candidate.apply_matrix2(ch.ops[k], q0, q1);
    const double p = candidate.norm() * candidate.norm();
    cumulative += p;
    if (draw < cumulative || k + 1 == ch.ops.size()) {
      if (p > 0) candidate.normalize();
      sv = std::move(candidate);
      return;
    }
  }
}

/// Executes one instruction of a trajectory: unitary + sampled noise
/// branches, or the non-unitary Measure/Reset/Barrier handling. Measure
/// outcomes accumulate into `outcome` (bit = clbit index).
void execute_one(sim::Statevector& sv, std::uint64_t& outcome,
                 const Instruction& instr, util::Xoshiro256pp& rng,
                 const noise::NoiseModel& nm) {
  switch (instr.kind) {
    case GateKind::Barrier:
      return;
    case GateKind::Measure: {
      const int bit = sv.measure_qubit(instr.qubits[0], rng);
      const std::uint64_t mask = 1ULL << instr.clbits[0];
      outcome = bit ? (outcome | mask) : (outcome & ~mask);
      return;
    }
    case GateKind::Reset:
      sv.reset_qubit(instr.qubits[0], rng);
      return;
    default:
      break;
  }

  sv.apply_instruction(instr);
  if (nm.is_ideal()) return;

  const auto& info = circ::gate_info(instr.kind);
  if (info.num_qubits == 1) {
    for (const auto* ch : nm.channels_after_1q(instr.kind, instr.qubits[0])) {
      sample_kraus1(sv, *ch, instr.qubits[0], rng);
    }
  } else if (info.num_qubits == 2) {
    const auto tq = nm.channels_after_2q(instr.qubits[0], instr.qubits[1]);
    if (tq.relax_a) sample_kraus1(sv, *tq.relax_a, instr.qubits[0], rng);
    if (tq.relax_b) sample_kraus1(sv, *tq.relax_b, instr.qubits[1], rng);
    if (tq.depol) {
      sample_kraus2(sv, *tq.depol, instr.qubits[0], instr.qubits[1], rng);
    }
  }
}

/// Measured clbits and their readout errors, in instruction order (the
/// same list run() builds during its first shot).
void collect_readout(const circ::QuantumCircuit& circuit,
                     const noise::NoiseModel& nm, std::vector<int>& clbits,
                     std::vector<noise::ReadoutError>& errors) {
  for (const auto& instr : circuit.instructions()) {
    if (instr.kind != GateKind::Measure) continue;
    clbits.push_back(instr.clbits[0]);
    errors.push_back(nm.readout(instr.qubits[0]));
  }
}

/// One cached prefix trajectory: the statevector, the mid-circuit
/// measurement bits already drawn, and the state of the prefix RNG stream
/// after the last prefix instruction — stored so extend_snapshot can
/// continue the exact draw sequence a longer from-scratch prepare would
/// have produced (prefix-tree bit-identity).
struct CachedShot {
  sim::Statevector sv;
  std::uint64_t outcome = 0;
  std::array<std::uint64_t, 4> rng_state{};
};

class TrajectorySnapshot final : public PrefixSnapshot {
 public:
  TrajectorySnapshot(circ::QuantumCircuit circuit, std::size_t prefix_length,
                     std::vector<CachedShot> shots)
      : PrefixSnapshot(prefix_length),
        circuit_(std::move(circuit)),
        shots_(std::move(shots)) {}

  const circ::QuantumCircuit* circuit() const override { return &circuit_; }
  const std::vector<CachedShot>& shots() const { return shots_; }

 private:
  circ::QuantumCircuit circuit_;
  std::vector<CachedShot> shots_;
};

// Bounds on the per-shot cache. Campaigns build one snapshot per
// concurrently-processed injection point, so the budget is per snapshot and
// deliberately modest; shots beyond the cache re-simulate their prefix.
constexpr std::uint64_t kMaxCachedTrajectories = 4096;
constexpr std::uint64_t kMaxCacheBytes = 64ULL << 20;  // 64 MiB per snapshot

// Snapshot-internal randomness: prefix draws must not depend on the
// per-config seed (that is what makes one snapshot shareable), so they are
// salted independently of the suffix stream.
constexpr std::uint64_t kPrefixSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kSuffixSalt = 0xd1b54a32d192ed03ULL;

}  // namespace

TrajectoryBackend::TrajectoryBackend(noise::NoiseModel noise_model)
    : noise_model_(std::move(noise_model)) {}

std::string TrajectoryBackend::name() const {
  return "trajectory(" + noise_model_.source_name() + ")";
}

ExecutionResult TrajectoryBackend::run(const circ::QuantumCircuit& circuit,
                                       std::uint64_t shots,
                                       std::uint64_t seed) {
  require(shots > 0, "TrajectoryBackend: shots must be > 0");
  require(circuit.num_clbits() > 0,
          "TrajectoryBackend: circuit has no classical bits");

  std::vector<std::uint64_t> outcome_counts(
      std::size_t{1} << circuit.num_clbits(), 0);

  // Per-shot readout errors are applied to the measured clbits.
  std::vector<int> measured_clbits;
  std::vector<noise::ReadoutError> readout_errors;
  collect_readout(circuit, noise_model_, measured_clbits, readout_errors);

  for (std::uint64_t shot = 0; shot < shots; ++shot) {
    const std::uint64_t words[] = {seed, shot};
    util::Xoshiro256pp rng(util::hash_combine(words));

    sim::Statevector sv(circuit.num_qubits());
    std::uint64_t outcome = 0;
    for (const auto& instr : circuit.instructions()) {
      execute_one(sv, outcome, instr, rng, noise_model_);
    }

    outcome = noise::sample_readout_flips(outcome, measured_clbits,
                                          readout_errors, rng);
    ++outcome_counts[outcome];
  }

  return ExecutionResult::from_outcome_counts(outcome_counts,
                                              circuit.num_clbits(), name());
}

PrefixSnapshotPtr TrajectoryBackend::prepare_prefix(
    const circ::QuantumCircuit& circuit, std::size_t prefix_length,
    std::uint64_t shots_hint, std::uint64_t snapshot_seed) {
  const std::uint64_t bytes_per_shot =
      sizeof(sim::cplx) * (std::uint64_t{1} << circuit.num_qubits());
  const std::uint64_t cacheable = std::min(
      {shots_hint, kMaxCachedTrajectories, kMaxCacheBytes / bytes_per_shot});
  if (cacheable == 0) {
    return Backend::prepare_prefix(circuit, prefix_length, shots_hint,
                                   snapshot_seed);
  }
  require(prefix_length <= circuit.size(),
          "prepare_prefix: prefix length exceeds circuit size");

  std::vector<CachedShot> cached;
  cached.reserve(cacheable);
  const auto& instrs = circuit.instructions();
  for (std::uint64_t shot = 0; shot < cacheable; ++shot) {
    const std::uint64_t words[] = {kPrefixSalt, snapshot_seed, shot};
    util::Xoshiro256pp rng(util::hash_combine(words));
    CachedShot state{sim::Statevector(circuit.num_qubits()), 0, {}};
    for (std::size_t i = 0; i < prefix_length; ++i) {
      execute_one(state.sv, state.outcome, instrs[i], rng, noise_model_);
    }
    state.rng_state = rng.state();
    cached.push_back(std::move(state));
  }
  return std::make_shared<TrajectorySnapshot>(circuit, prefix_length,
                                              std::move(cached));
}

PrefixSnapshotPtr TrajectoryBackend::extend_snapshot(
    const PrefixSnapshot& parent, std::size_t from_gate, std::size_t to_gate,
    std::uint64_t shots_hint, std::uint64_t snapshot_seed) {
  const auto* snap = dynamic_cast<const TrajectorySnapshot*>(&parent);
  if (!snap) {
    return Backend::extend_snapshot(parent, from_gate, to_gate, shots_hint,
                                    snapshot_seed);
  }
  const circ::QuantumCircuit& circuit = *snap->circuit();
  require(from_gate == parent.prefix_length(),
          "extend_snapshot: from_gate does not match the parent prefix");
  require(to_gate >= from_gate,
          "extend_snapshot: cannot extend a snapshot backwards");
  require(to_gate <= circuit.size(),
          "extend_snapshot: to_gate exceeds circuit size");

  const auto& instrs = circuit.instructions();
  std::vector<CachedShot> cached;
  cached.reserve(snap->shots().size());
  for (const CachedShot& parent_shot : snap->shots()) {
    // Resuming the stored stream reproduces exactly the draws a
    // from-scratch prepare at to_gate would make for gates
    // [from_gate, to_gate) — chain hops are invisible in the state bits.
    util::Xoshiro256pp rng(0);
    rng.set_state(parent_shot.rng_state);
    CachedShot state{parent_shot.sv, parent_shot.outcome, {}};
    for (std::size_t i = from_gate; i < to_gate; ++i) {
      execute_one(state.sv, state.outcome, instrs[i], rng, noise_model_);
    }
    state.rng_state = rng.state();
    cached.push_back(std::move(state));
  }
  return std::make_shared<TrajectorySnapshot>(circuit, to_gate,
                                              std::move(cached));
}

bool TrajectoryBackend::save_snapshot(const PrefixSnapshot& snapshot,
                                      std::ostream& out) const {
  const auto* snap = dynamic_cast<const TrajectorySnapshot*>(&snapshot);
  if (!snap) return false;

  util::ByteWriter payload;
  snapio::write_circuit(payload, *snap->circuit());
  payload.u64(snap->prefix_length());
  payload.u64(snap->shots().size());
  for (const CachedShot& shot : snap->shots()) {
    payload.u64(shot.outcome);
    for (const std::uint64_t w : shot.rng_state) payload.u64(w);
    for (const auto& amp : shot.sv.amplitudes()) {
      payload.f64(amp.real());
      payload.f64(amp.imag());
    }
  }
  snapio::write_container(out, snapio::SnapshotKind::Trajectory,
                          payload.data());
  return true;
}

PrefixSnapshotPtr TrajectoryBackend::load_snapshot(std::istream& in) const {
  const snapio::Container container = snapio::read_container(in);
  require(container.kind == snapio::SnapshotKind::Trajectory,
          "load_snapshot: container was not written by a trajectory backend");
  // v1 trajectory payloads predate the per-shot RNG state, so they cannot
  // resume prefix randomness (not extendable, not CRN-reproducible): reject
  // instead of misparsing the shorter per-shot layout.
  require(container.version >= 2,
          "load_snapshot: trajectory payload requires container v2+");

  util::ByteReader r(container.payload);
  circ::QuantumCircuit circuit = snapio::read_circuit(r);
  const std::uint64_t prefix_length = r.u64();
  require(prefix_length <= circuit.size(),
          "load_snapshot: prefix length exceeds circuit size");
  // Statevector supports at most 24 qubits; checking before the shift also
  // keeps the arithmetic below overflow-free for any checksum-valid file.
  require(circuit.num_qubits() >= 1 && circuit.num_qubits() <= 24,
          "load_snapshot: trajectory qubit count out of range");
  const std::uint64_t num_shots = r.u64();
  const std::uint64_t dim = std::uint64_t{1} << circuit.num_qubits();
  // Per-shot bytes (outcome + RNG state + amplitudes) must account for the
  // rest of the payload exactly; dividing (instead of multiplying shot
  // count) cannot wrap.
  const std::uint64_t per_shot = 8 + 32 + dim * 16;
  require(r.remaining() % per_shot == 0 &&
              r.remaining() / per_shot == num_shots,
          "load_snapshot: trajectory payload size mismatch");

  std::vector<CachedShot> shots;
  shots.reserve(static_cast<std::size_t>(num_shots));
  for (std::uint64_t s = 0; s < num_shots; ++s) {
    CachedShot shot{sim::Statevector(circuit.num_qubits()), r.u64(), {}};
    for (std::uint64_t& w : shot.rng_state) w = r.u64();
    std::vector<sim::cplx> amps(static_cast<std::size_t>(dim));
    for (auto& amp : amps) {
      const double re = r.f64();
      const double im = r.f64();
      amp = sim::cplx{re, im};
    }
    shot.sv = sim::Statevector::from_amplitudes(std::move(amps));
    shots.push_back(std::move(shot));
  }
  return std::make_shared<TrajectorySnapshot>(
      std::move(circuit), static_cast<std::size_t>(prefix_length),
      std::move(shots));
}

ExecutionResult TrajectoryBackend::run_suffix(
    const PrefixSnapshot& snapshot,
    std::span<const circ::Instruction> injected, std::uint64_t shots,
    std::uint64_t seed) {
  const auto* snap = dynamic_cast<const TrajectorySnapshot*>(&snapshot);
  if (!snap) return Backend::run_suffix(snapshot, injected, shots, seed);
  // A single-config batch: keeps the subtle per-shot RNG-stream derivation
  // (cached resume vs overflow re-simulation) in exactly one place.
  const SuffixConfig config{{injected.begin(), injected.end()}, seed};
  auto results = run_suffix_batch(snapshot, {&config, 1}, shots);
  return std::move(results.front());
}

std::vector<ExecutionResult> TrajectoryBackend::run_suffix_batch(
    const PrefixSnapshot& snapshot, std::span<const SuffixConfig> configs,
    std::uint64_t shots) {
  const auto* snap = dynamic_cast<const TrajectorySnapshot*>(&snapshot);
  if (!snap) return Backend::run_suffix_batch(snapshot, configs, shots);
  if (configs.empty()) return {};
  require(shots > 0, "TrajectoryBackend: shots must be > 0");

  const circ::QuantumCircuit& circuit = *snap->circuit();
  const auto& instrs = circuit.instructions();
  for (const auto& config : configs) {
    for (const auto& instr : config.injected) {
      require(instr.is_unitary(), "run_suffix_batch: injected gate not unitary");
      for (int q : instr.qubits) {
        require(q >= 0 && q < circuit.num_qubits(),
                "run_suffix_batch: injected gate qubit out of range");
      }
    }
  }

  // Per-batch setup shared by every config: the readout table, the backend
  // name, one reusable outcome histogram, and a scratch statevector that
  // cached prefix shots are copied into without reallocating.
  std::vector<int> measured_clbits;
  std::vector<noise::ReadoutError> readout_errors;
  collect_readout(circuit, noise_model_, measured_clbits, readout_errors);
  const std::string backend_name = name();
  const std::size_t cached = snap->shots().size();
  sim::Statevector scratch(circuit.num_qubits());
  std::vector<std::uint64_t> outcome_counts(
      std::size_t{1} << circuit.num_clbits(), 0);

  std::vector<ExecutionResult> results;
  results.reserve(configs.size());
  for (const auto& config : configs) {
    std::fill(outcome_counts.begin(), outcome_counts.end(), 0);
    // Shots past the cache re-simulate the whole spliced circuit (run()
    // semantics); the splice differs per config, so it is built lazily.
    circ::QuantumCircuit spliced;
    if (shots > cached) {
      spliced = splice_circuit(circuit, snap->prefix_length(), config.injected);
    }

    for (std::uint64_t shot = 0; shot < shots; ++shot) {
      std::uint64_t outcome = 0;
      if (shot < cached) {
        // Resume the cached prefix trajectory (common random numbers across
        // configs) with this config's suffix stream.
        const CachedShot& start = snap->shots()[shot];
        const std::uint64_t words[] = {config.seed, shot, kSuffixSalt};
        util::Xoshiro256pp rng(util::hash_combine(words));
        scratch = start.sv;
        outcome = start.outcome;
        for (const auto& instr : config.injected) {
          execute_one(scratch, outcome, instr, rng, noise_model_);
        }
        for (std::size_t i = snap->prefix_length(); i < instrs.size(); ++i) {
          execute_one(scratch, outcome, instrs[i], rng, noise_model_);
        }
        outcome = noise::sample_readout_flips(outcome, measured_clbits,
                                              readout_errors, rng);
      } else {
        const std::uint64_t words[] = {config.seed, shot};
        util::Xoshiro256pp rng(util::hash_combine(words));
        sim::Statevector sv(circuit.num_qubits());
        for (const auto& instr : spliced.instructions()) {
          execute_one(sv, outcome, instr, rng, noise_model_);
        }
        outcome = noise::sample_readout_flips(outcome, measured_clbits,
                                              readout_errors, rng);
      }
      ++outcome_counts[outcome];
    }
    results.push_back(ExecutionResult::from_outcome_counts(
        outcome_counts, circuit.num_clbits(), backend_name));
  }
  return results;
}

}  // namespace qufi::backend
