#include "backend/trajectory_backend.hpp"

#include <cmath>

#include "noise/readout.hpp"
#include "sim/statevector.hpp"
#include "util/error.hpp"

namespace qufi::backend {

using circ::GateKind;
using circ::Instruction;

namespace {

/// Samples one Kraus branch of a 1q channel and applies it (normalized).
void sample_kraus1(sim::Statevector& sv, const noise::KrausChannel1& ch,
                   int q, util::Xoshiro256pp& rng) {
  if (ch.is_identity()) return;
  const double draw = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t k = 0; k < ch.ops.size(); ++k) {
    // Branch probability = ||K psi||^2; try op on a scratch copy.
    sim::Statevector candidate = sv;
    candidate.apply_matrix1(ch.ops[k], q);
    const double p = candidate.norm() * candidate.norm();
    cumulative += p;
    if (draw < cumulative || k + 1 == ch.ops.size()) {
      if (p > 0) candidate.normalize();
      sv = std::move(candidate);
      return;
    }
  }
}

void sample_kraus2(sim::Statevector& sv, const noise::KrausChannel2& ch,
                   int q0, int q1, util::Xoshiro256pp& rng) {
  if (ch.is_identity()) return;
  const double draw = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t k = 0; k < ch.ops.size(); ++k) {
    sim::Statevector candidate = sv;
    candidate.apply_matrix2(ch.ops[k], q0, q1);
    const double p = candidate.norm() * candidate.norm();
    cumulative += p;
    if (draw < cumulative || k + 1 == ch.ops.size()) {
      if (p > 0) candidate.normalize();
      sv = std::move(candidate);
      return;
    }
  }
}

}  // namespace

TrajectoryBackend::TrajectoryBackend(noise::NoiseModel noise_model)
    : noise_model_(std::move(noise_model)) {}

std::string TrajectoryBackend::name() const {
  return "trajectory(" + noise_model_.source_name() + ")";
}

ExecutionResult TrajectoryBackend::run(const circ::QuantumCircuit& circuit,
                                       std::uint64_t shots,
                                       std::uint64_t seed) {
  require(shots > 0, "TrajectoryBackend: shots must be > 0");
  require(circuit.num_clbits() > 0,
          "TrajectoryBackend: circuit has no classical bits");

  std::vector<std::uint64_t> outcome_counts(
      std::size_t{1} << circuit.num_clbits(), 0);

  // Per-shot readout errors are applied to the measured clbits.
  std::vector<int> measured_clbits;
  std::vector<noise::ReadoutError> readout_errors;

  for (std::uint64_t shot = 0; shot < shots; ++shot) {
    const std::uint64_t words[] = {seed, shot};
    util::Xoshiro256pp rng(util::hash_combine(words));

    sim::Statevector sv(circuit.num_qubits());
    std::uint64_t outcome = 0;
    if (shot == 0) {
      measured_clbits.clear();
      readout_errors.clear();
    }

    for (const auto& instr : circuit.instructions()) {
      switch (instr.kind) {
        case GateKind::Barrier:
          continue;
        case GateKind::Measure: {
          const int bit = sv.measure_qubit(instr.qubits[0], rng);
          const std::uint64_t mask = 1ULL << instr.clbits[0];
          outcome = bit ? (outcome | mask) : (outcome & ~mask);
          if (shot == 0) {
            measured_clbits.push_back(instr.clbits[0]);
            readout_errors.push_back(noise_model_.readout(instr.qubits[0]));
          }
          continue;
        }
        case GateKind::Reset:
          sv.reset_qubit(instr.qubits[0], rng);
          continue;
        default:
          break;
      }

      sv.apply_instruction(instr);
      if (noise_model_.is_ideal()) continue;

      const auto& info = circ::gate_info(instr.kind);
      if (info.num_qubits == 1) {
        for (const auto* ch :
             noise_model_.channels_after_1q(instr.kind, instr.qubits[0])) {
          sample_kraus1(sv, *ch, instr.qubits[0], rng);
        }
      } else if (info.num_qubits == 2) {
        const auto tq =
            noise_model_.channels_after_2q(instr.qubits[0], instr.qubits[1]);
        if (tq.relax_a) sample_kraus1(sv, *tq.relax_a, instr.qubits[0], rng);
        if (tq.relax_b) sample_kraus1(sv, *tq.relax_b, instr.qubits[1], rng);
        if (tq.depol) {
          sample_kraus2(sv, *tq.depol, instr.qubits[0], instr.qubits[1], rng);
        }
      }
    }

    outcome = noise::sample_readout_flips(outcome, measured_clbits,
                                          readout_errors, rng);
    ++outcome_counts[outcome];
  }

  return ExecutionResult::from_outcome_counts(outcome_counts,
                                              circuit.num_clbits(), name());
}

}  // namespace qufi::backend
