#include "backend/result.hpp"

#include "util/bitstring.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qufi::backend {

double ExecutionResult::probability_of(const std::string& bitstring) const {
  require(static_cast<int>(bitstring.size()) == num_clbits,
          "probability_of: bitstring width mismatch");
  return probabilities.at(util::from_bitstring(bitstring));
}

std::string ExecutionResult::most_probable() const {
  require(!probabilities.empty(), "most_probable: empty result");
  std::size_t best = 0;
  for (std::size_t i = 1; i < probabilities.size(); ++i) {
    if (probabilities[i] > probabilities[best]) best = i;
  }
  return util::to_bitstring(best, num_clbits);
}

ExecutionResult ExecutionResult::from_distribution(std::vector<double> probs,
                                                   int num_clbits,
                                                   std::uint64_t shots,
                                                   std::uint64_t seed,
                                                   std::string backend_name) {
  require(probs.size() == (std::size_t{1} << num_clbits),
          "from_distribution: size mismatch");
  ExecutionResult result;
  result.num_clbits = num_clbits;
  result.shots = shots;
  result.backend_name = std::move(backend_name);
  if (shots == 0) {
    result.probabilities = std::move(probs);
    return result;
  }
  util::Xoshiro256pp rng(seed);
  const auto sampled = util::sample_counts(probs, shots, rng);
  result.probabilities.assign(probs.size(), 0.0);
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    if (sampled[i] == 0) continue;
    result.counts[util::to_bitstring(i, num_clbits)] = sampled[i];
    result.probabilities[i] =
        static_cast<double>(sampled[i]) / static_cast<double>(shots);
  }
  return result;
}

ExecutionResult ExecutionResult::from_outcome_counts(
    const std::vector<std::uint64_t>& outcome_counts, int num_clbits,
    std::string backend_name) {
  require(outcome_counts.size() == (std::size_t{1} << num_clbits),
          "from_outcome_counts: size mismatch");
  ExecutionResult result;
  result.num_clbits = num_clbits;
  result.backend_name = std::move(backend_name);
  std::uint64_t total = 0;
  for (const auto c : outcome_counts) total += c;
  require(total > 0, "from_outcome_counts: zero shots");
  result.shots = total;
  result.probabilities.assign(outcome_counts.size(), 0.0);
  for (std::size_t i = 0; i < outcome_counts.size(); ++i) {
    if (outcome_counts[i] == 0) continue;
    result.counts[util::to_bitstring(i, num_clbits)] = outcome_counts[i];
    result.probabilities[i] = static_cast<double>(outcome_counts[i]) /
                              static_cast<double>(total);
  }
  return result;
}

}  // namespace qufi::backend
