#pragma once

#include "backend/backend.hpp"
#include "noise/noise_model.hpp"

namespace qufi::backend {

/// Monte-Carlo wavefunction (quantum trajectory) execution: each shot runs
/// the statevector and samples one Kraus branch per noise channel. Agrees
/// with DensityMatrixBackend in expectation (cross-validated by property
/// tests); supports mid-circuit measurement and reset, which the density
/// path does not.
class TrajectoryBackend : public Backend {
 public:
  explicit TrajectoryBackend(noise::NoiseModel noise_model);

  std::string name() const override;

  /// shots must be > 0 (a trajectory backend cannot produce exact output).
  ExecutionResult run(const circ::QuantumCircuit& circuit, std::uint64_t shots,
                      std::uint64_t seed) override;

  /// Trajectory checkpointing caches one evolved statevector per shot
  /// (including mid-circuit measurement outcomes drawn so far). Prefix
  /// randomness comes from a snapshot-internal stream, so every run_suffix
  /// sweep shares the same prefix trajectories (common random numbers):
  /// distribution-equivalent to run() on the spliced circuit, not
  /// bit-identical, and lower variance across grid configs.
  bool supports_checkpointing() const override { return true; }

  /// `shots_hint` sizes the per-shot cache; with shots_hint == 0 (or a
  /// prefix too large to cache) this degrades to the base splice snapshot.
  /// `snapshot_seed` salts the prefix noise stream so different campaign
  /// seeds resample the prefix realizations.
  PrefixSnapshotPtr prepare_prefix(const circ::QuantumCircuit& circuit,
                                   std::size_t prefix_length,
                                   std::uint64_t shots_hint = 0,
                                   std::uint64_t snapshot_seed = 0) override;

  /// Advances every cached shot through instructions [from_gate, to_gate),
  /// resuming each shot's stored prefix RNG stream — the derived snapshot
  /// is bit-identical to prepare_prefix(circuit, to_gate, ...) with the
  /// same snapshot_seed (which the cached streams already encode), so tree
  /// shape and sharding never change sampled records. Falls back to the
  /// base splice extension for fallback snapshots.
  PrefixSnapshotPtr extend_snapshot(const PrefixSnapshot& parent,
                                    std::size_t from_gate, std::size_t to_gate,
                                    std::uint64_t shots_hint = 0,
                                    std::uint64_t snapshot_seed = 0) override;

  ExecutionResult run_suffix(const PrefixSnapshot& snapshot,
                             std::span<const circ::Instruction> injected,
                             std::uint64_t shots, std::uint64_t seed) override;

  /// Batched grid sweep: replays the cached per-shot prefix statevectors
  /// across every config with common random numbers, hoisting the readout
  /// table and reusing one scratch statevector (no per-shot clone
  /// allocation). Each config's counts are bit-identical to a sequential
  /// run_suffix call with the same snapshot and per-config seed.
  std::vector<ExecutionResult> run_suffix_batch(
      const PrefixSnapshot& snapshot, std::span<const SuffixConfig> configs,
      std::uint64_t shots) override;

  /// Writes the cached per-shot prefix statevectors (and their mid-circuit
  /// measurement bits) as a kind=Trajectory snapshot container. Returns
  /// false for fallback splice snapshots (nothing cached to ship).
  bool save_snapshot(const PrefixSnapshot& snapshot,
                     std::ostream& out) const override;

  /// Rebuilds a trajectory snapshot from a kind=Trajectory container.
  /// Because the cached shots carry the prefix randomness, suffix sweeps
  /// from a loaded snapshot are bit-identical to sweeps from the original
  /// (common random numbers survive serialization).
  PrefixSnapshotPtr load_snapshot(std::istream& in) const override;

 private:
  noise::NoiseModel noise_model_;
};

}  // namespace qufi::backend
