#pragma once

#include "backend/backend.hpp"
#include "noise/noise_model.hpp"

namespace qufi::backend {

/// Monte-Carlo wavefunction (quantum trajectory) execution: each shot runs
/// the statevector and samples one Kraus branch per noise channel. Agrees
/// with DensityMatrixBackend in expectation (cross-validated by property
/// tests); supports mid-circuit measurement and reset, which the density
/// path does not.
class TrajectoryBackend : public Backend {
 public:
  explicit TrajectoryBackend(noise::NoiseModel noise_model);

  std::string name() const override;

  /// shots must be > 0 (a trajectory backend cannot produce exact output).
  ExecutionResult run(const circ::QuantumCircuit& circuit, std::uint64_t shots,
                      std::uint64_t seed) override;

 private:
  noise::NoiseModel noise_model_;
};

}  // namespace qufi::backend
