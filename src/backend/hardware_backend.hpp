#pragma once

#include <optional>

#include "backend/backend.hpp"
#include "noise/backend_props.hpp"
#include "noise/drift.hpp"

namespace qufi::backend {

/// Simulated physical quantum machine — the substitution for real IBM-Q
/// execution (paper scenario 3 / Fig. 11).
///
/// Differences from DensityMatrixBackend, mirroring what distinguishes a
/// real machine from its static noise model:
///   * per-job calibration drift: every run(...) re-samples T1/T2, gate and
///     readout errors around the nominal snapshot (deterministic in seed);
///   * coherent per-qubit over-rotations that a static Kraus model lacks;
///   * fault-injector U gates are decomposed to basis gates first, so the
///     injected perturbation itself executes through noisy hardware gates
///     (exactly as it would on the real device);
///   * finite shots by default (shots == 0 is promoted to 1024).
class SimulatedHardwareBackend : public Backend {
 public:
  /// `fixed_job`: when set, every run() sees the same drifted calibration
  /// (one submission batch on one machine day — how the paper's 53k
  /// hardware injections ran). When unset, each run() drifts independently
  /// (seed-derived), modeling executions spread over many calibration
  /// cycles.
  SimulatedHardwareBackend(noise::BackendProperties nominal,
                           noise::DriftModel drift = {},
                           std::optional<std::uint64_t> fixed_job = {});

  std::string name() const override;

  ExecutionResult run(const circ::QuantumCircuit& circuit, std::uint64_t shots,
                      std::uint64_t seed) override;

  const noise::BackendProperties& nominal() const { return nominal_; }

 private:
  noise::BackendProperties nominal_;
  noise::DriftModel drift_;
  std::optional<std::uint64_t> fixed_job_;
};

}  // namespace qufi::backend
