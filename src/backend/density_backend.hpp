#pragma once

#include <span>

#include "backend/backend.hpp"
#include "noise/drift.hpp"
#include "noise/noise_model.hpp"

namespace qufi::backend {

/// Knobs for one density-matrix execution.
struct DensityRunOptions {
  /// Per-physical-qubit coherent miscalibration applied after every noisy
  /// 1q gate (used by the simulated-hardware backend). Empty = none.
  std::span<const noise::DriftModel::CoherentError> coherent_errors = {};
  /// Apply thermal relaxation to idle qubits per circuit moment
  /// (extension beyond the paper's Qiskit noise model; see ablation bench).
  bool idle_noise = false;
};

/// Exact noisy execution: evolves the full density matrix through the
/// circuit with the noise model's Kraus channels and returns the exact
/// distribution over classical bitstrings (readout error included).
/// Requires terminal measurements.
std::vector<double> run_density_probs(const circ::QuantumCircuit& circuit,
                                      const noise::NoiseModel& noise_model,
                                      const DensityRunOptions& options = {});

/// Backend wrapper over run_density_probs — the paper's scenario (2),
/// "simulation of a physical machine, tuning the noise over which the
/// fault is injected using the IBM-Q noise model".
class DensityMatrixBackend : public Backend {
 public:
  explicit DensityMatrixBackend(noise::NoiseModel noise_model,
                                bool idle_noise = false);

  std::string name() const override;

  ExecutionResult run(const circ::QuantumCircuit& circuit, std::uint64_t shots,
                      std::uint64_t seed) override;

  /// Real checkpointing: the snapshot holds the evolved density matrix.
  /// Disabled under idle_noise, where the moment schedule of the spliced
  /// faulty circuit differs from the original's and a prefix state would
  /// not be equivalent to full re-simulation (the base splice fallback is
  /// used instead, which stays exact).
  bool supports_checkpointing() const override { return !idle_noise_; }

  PrefixSnapshotPtr prepare_prefix(const circ::QuantumCircuit& circuit,
                                   std::size_t prefix_length,
                                   std::uint64_t shots_hint = 0,
                                   std::uint64_t snapshot_seed = 0) override;

  /// Advances the parent's evolved density matrix through instructions
  /// [from_gate, to_gate) — the same operation sequence a from-scratch
  /// prepare_prefix(circuit, to_gate) would run on that state, so the
  /// derived snapshot is bit-identical to the from-scratch one regardless
  /// of how many chain hops produced it. Falls back to the base splice
  /// extension when checkpointing is off (idle_noise) or the parent is a
  /// fallback snapshot.
  PrefixSnapshotPtr extend_snapshot(const PrefixSnapshot& parent,
                                    std::size_t from_gate, std::size_t to_gate,
                                    std::uint64_t shots_hint = 0,
                                    std::uint64_t snapshot_seed = 0) override;

  ExecutionResult run_suffix(const PrefixSnapshot& snapshot,
                             std::span<const circ::Instruction> injected,
                             std::uint64_t shots, std::uint64_t seed) override;

  /// Batched grid sweep from one snapshot: compiles the shared suffix once
  /// (gate matrices built once, each noisy gate's unitary fused into its
  /// noise superoperator) and reuses a single scratch density matrix across
  /// configs, so each config costs one snapshot refill + its own injected
  /// gates + the fused replay. Equivalent to per-config run_suffix within
  /// floating-point reassociation (QVF parity well under 1e-9).
  std::vector<ExecutionResult> run_suffix_batch(
      const PrefixSnapshot& snapshot, std::span<const SuffixConfig> configs,
      std::uint64_t shots) override;

  /// Writes the evolved density matrix plus the circuit and split point as
  /// a kind=Density snapshot container (docs/SNAPSHOT_FORMAT.md). Returns
  /// false only for foreign/fallback snapshots with no density state.
  bool save_snapshot(const PrefixSnapshot& snapshot,
                     std::ostream& out) const override;

  /// Rebuilds a density snapshot from a kind=Density container; the
  /// compaction maps are re-derived from the embedded circuit. The loaded
  /// snapshot is bit-equivalent to the one save_snapshot consumed.
  PrefixSnapshotPtr load_snapshot(std::istream& in) const override;

  const noise::NoiseModel& noise_model() const { return noise_model_; }

  /// Enables the suffix-response fast path inside run_suffix_batch: large
  /// same-qubit batches are evaluated against a precomputed linear-response
  /// basis of the compiled suffix (one basis replay per slot matrix unit,
  /// then a small weighted sum per config) instead of one full suffix
  /// replay per config. Results match the replay path within floating-point
  /// reassociation (QVF parity well under 1e-9); small batches always use
  /// the replay path. Campaigns drive this from CampaignSpec::use_tree —
  /// the response basis is the deepest level of the prefix tree (the
  /// injection site itself as a shared split point). Set before submitting
  /// work; not synchronized against in-flight batches.
  void set_suffix_response_enabled(bool enabled) {
    suffix_response_enabled_ = enabled;
  }
  bool suffix_response_enabled() const { return suffix_response_enabled_; }

  /// Minimum same-target group sizes at which the response path engages
  /// (the m^4 basis replays must amortize: 2 x 16 for one target qubit,
  /// 2 x 256 for a pair). Public so campaign chunking can guarantee every
  /// full chunk stays on the fast path — the response-vs-replay decision
  /// must be a pure function of the batch contents, never of thread count
  /// or sharding (the byte-identity contract).
  static constexpr std::size_t kResponseMinConfigs1q = 32;
  static constexpr std::size_t kResponseMinConfigs2q = 512;

 private:
  noise::NoiseModel noise_model_;
  bool idle_noise_;
  bool suffix_response_enabled_ = true;
};

}  // namespace qufi::backend
