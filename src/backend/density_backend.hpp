#pragma once

#include <span>

#include "backend/backend.hpp"
#include "noise/drift.hpp"
#include "noise/noise_model.hpp"

namespace qufi::backend {

/// Knobs for one density-matrix execution.
struct DensityRunOptions {
  /// Per-physical-qubit coherent miscalibration applied after every noisy
  /// 1q gate (used by the simulated-hardware backend). Empty = none.
  std::span<const noise::DriftModel::CoherentError> coherent_errors = {};
  /// Apply thermal relaxation to idle qubits per circuit moment
  /// (extension beyond the paper's Qiskit noise model; see ablation bench).
  bool idle_noise = false;
};

/// Exact noisy execution: evolves the full density matrix through the
/// circuit with the noise model's Kraus channels and returns the exact
/// distribution over classical bitstrings (readout error included).
/// Requires terminal measurements.
std::vector<double> run_density_probs(const circ::QuantumCircuit& circuit,
                                      const noise::NoiseModel& noise_model,
                                      const DensityRunOptions& options = {});

/// Backend wrapper over run_density_probs — the paper's scenario (2),
/// "simulation of a physical machine, tuning the noise over which the
/// fault is injected using the IBM-Q noise model".
class DensityMatrixBackend : public Backend {
 public:
  explicit DensityMatrixBackend(noise::NoiseModel noise_model,
                                bool idle_noise = false);

  std::string name() const override;

  ExecutionResult run(const circ::QuantumCircuit& circuit, std::uint64_t shots,
                      std::uint64_t seed) override;

  /// Real checkpointing: the snapshot holds the evolved density matrix.
  /// Under idle_noise the snapshot is *moment-aware*: it captures the state
  /// after the moments that are sealed at the split (no spliced-in fault
  /// gate or later instruction can ever be scheduled into them) together
  /// with the sealed boundary, and run_suffix resumes the idle-relaxation
  /// schedule of the spliced circuit from that boundary — so the resumed
  /// execution applies bit-identical idle channels to a from-scratch run.
  bool supports_checkpointing() const override { return true; }

  /// Under idle_noise: a digest of the sealed moment schedule at the split
  /// (the sealing boundary plus the per-qubit moment frontier) — the
  /// snapshot-cache key component that keeps moment-aware snapshots from
  /// being served across scheduler versions. 0 when idle_noise is off (the
  /// prefix evolution is then a pure function of the circuit bytes).
  std::uint64_t snapshot_schedule_digest(
      const circ::QuantumCircuit& circuit,
      std::size_t prefix_length) const override;

  PrefixSnapshotPtr prepare_prefix(const circ::QuantumCircuit& circuit,
                                   std::size_t prefix_length,
                                   std::uint64_t shots_hint = 0,
                                   std::uint64_t snapshot_seed = 0) override;

  /// Advances the parent's evolved density matrix through instructions
  /// [from_gate, to_gate) — the same operation sequence a from-scratch
  /// prepare_prefix(circuit, to_gate) would run on that state, so the
  /// derived snapshot is bit-identical to the from-scratch one regardless
  /// of how many chain hops produced it. Under idle_noise the extension
  /// advances moment-by-moment from the parent's sealed boundary to the
  /// child's (gates in moment order, idle channels per moment), preserving
  /// the same bit-identity. Falls back to the base splice extension when
  /// the parent is a fallback snapshot.
  PrefixSnapshotPtr extend_snapshot(const PrefixSnapshot& parent,
                                    std::size_t from_gate, std::size_t to_gate,
                                    std::uint64_t shots_hint = 0,
                                    std::uint64_t snapshot_seed = 0) override;

  ExecutionResult run_suffix(const PrefixSnapshot& snapshot,
                             std::span<const circ::Instruction> injected,
                             std::uint64_t shots, std::uint64_t seed) override;

  /// Batched grid sweep from one snapshot: compiles the shared suffix once
  /// (gate matrices built once, each noisy gate's unitary fused into its
  /// noise superoperator) and reuses a single scratch density matrix across
  /// configs, so each config costs one snapshot refill + its own injected
  /// gates + the fused replay. Equivalent to per-config run_suffix within
  /// floating-point reassociation (QVF parity well under 1e-9).
  std::vector<ExecutionResult> run_suffix_batch(
      const PrefixSnapshot& snapshot, std::span<const SuffixConfig> configs,
      std::uint64_t shots) override;

  /// Writes the evolved density matrix plus the circuit and split point as
  /// a kind=Density snapshot container (docs/SNAPSHOT_FORMAT.md). Returns
  /// false only for foreign/fallback snapshots with no density state.
  bool save_snapshot(const PrefixSnapshot& snapshot,
                     std::ostream& out) const override;

  /// Rebuilds a density snapshot from a kind=Density container; the
  /// compaction maps are re-derived from the embedded circuit. The loaded
  /// snapshot is bit-equivalent to the one save_snapshot consumed.
  PrefixSnapshotPtr load_snapshot(std::istream& in) const override;

  const noise::NoiseModel& noise_model() const { return noise_model_; }

  /// Enables the suffix-response fast path inside run_suffix_batch: large
  /// same-qubit batches are evaluated against a precomputed linear-response
  /// basis of the compiled suffix (one basis replay per slot matrix unit,
  /// then a small weighted sum per config) instead of one full suffix
  /// replay per config. Results match the replay path within floating-point
  /// reassociation (QVF parity well under 1e-9); small batches always use
  /// the replay path. Campaigns drive this from CampaignSpec::use_tree —
  /// the response basis is the deepest level of the prefix tree (the
  /// injection site itself as a shared split point). Set before submitting
  /// work; not synchronized against in-flight batches.
  void set_suffix_response_enabled(bool enabled) {
    suffix_response_enabled_ = enabled;
  }
  bool suffix_response_enabled() const { return suffix_response_enabled_; }

  /// Minimum same-target group sizes at which the response path engages
  /// (the m^4 basis replays must amortize: 2 x 16 for one target qubit,
  /// 2 x 256 for a pair). Public so campaign chunking can guarantee every
  /// full chunk stays on the fast path — the response-vs-replay decision
  /// must be a pure function of the batch contents, never of thread count
  /// or sharding (the byte-identity contract).
  static constexpr std::size_t kResponseMinConfigs1q = 32;
  static constexpr std::size_t kResponseMinConfigs2q = 512;

 private:
  /// True when moment-scheduled execution is actually in effect: the
  /// idle_noise knob is on AND the model has noise to schedule (an ideal
  /// model takes the plain path, matching run()). The single definition of
  /// "moment-aware mode" — snapshots record it, and every resume path
  /// (extend/run_suffix/batch/load) validates against this predicate.
  bool idle_mode_active() const {
    return idle_noise_ && !noise_model_.is_ideal();
  }

  noise::NoiseModel noise_model_;
  bool idle_noise_;
  bool suffix_response_enabled_ = true;
};

}  // namespace qufi::backend
