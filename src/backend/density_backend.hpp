#pragma once

#include <span>

#include "backend/backend.hpp"
#include "noise/drift.hpp"
#include "noise/noise_model.hpp"

namespace qufi::backend {

/// Knobs for one density-matrix execution.
struct DensityRunOptions {
  /// Per-physical-qubit coherent miscalibration applied after every noisy
  /// 1q gate (used by the simulated-hardware backend). Empty = none.
  std::span<const noise::DriftModel::CoherentError> coherent_errors = {};
  /// Apply thermal relaxation to idle qubits per circuit moment
  /// (extension beyond the paper's Qiskit noise model; see ablation bench).
  bool idle_noise = false;
};

/// Exact noisy execution: evolves the full density matrix through the
/// circuit with the noise model's Kraus channels and returns the exact
/// distribution over classical bitstrings (readout error included).
/// Requires terminal measurements.
std::vector<double> run_density_probs(const circ::QuantumCircuit& circuit,
                                      const noise::NoiseModel& noise_model,
                                      const DensityRunOptions& options = {});

/// Backend wrapper over run_density_probs — the paper's scenario (2),
/// "simulation of a physical machine, tuning the noise over which the
/// fault is injected using the IBM-Q noise model".
class DensityMatrixBackend : public Backend {
 public:
  explicit DensityMatrixBackend(noise::NoiseModel noise_model,
                                bool idle_noise = false);

  std::string name() const override;

  ExecutionResult run(const circ::QuantumCircuit& circuit, std::uint64_t shots,
                      std::uint64_t seed) override;

  const noise::NoiseModel& noise_model() const { return noise_model_; }

 private:
  noise::NoiseModel noise_model_;
  bool idle_noise_;
};

}  // namespace qufi::backend
