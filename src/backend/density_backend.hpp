#pragma once

#include <span>

#include "backend/backend.hpp"
#include "noise/drift.hpp"
#include "noise/noise_model.hpp"

namespace qufi::backend {

/// Knobs for one density-matrix execution.
struct DensityRunOptions {
  /// Per-physical-qubit coherent miscalibration applied after every noisy
  /// 1q gate (used by the simulated-hardware backend). Empty = none.
  std::span<const noise::DriftModel::CoherentError> coherent_errors = {};
  /// Apply thermal relaxation to idle qubits per circuit moment
  /// (extension beyond the paper's Qiskit noise model; see ablation bench).
  bool idle_noise = false;
};

/// Exact noisy execution: evolves the full density matrix through the
/// circuit with the noise model's Kraus channels and returns the exact
/// distribution over classical bitstrings (readout error included).
/// Requires terminal measurements.
std::vector<double> run_density_probs(const circ::QuantumCircuit& circuit,
                                      const noise::NoiseModel& noise_model,
                                      const DensityRunOptions& options = {});

/// Backend wrapper over run_density_probs — the paper's scenario (2),
/// "simulation of a physical machine, tuning the noise over which the
/// fault is injected using the IBM-Q noise model".
class DensityMatrixBackend : public Backend {
 public:
  explicit DensityMatrixBackend(noise::NoiseModel noise_model,
                                bool idle_noise = false);

  std::string name() const override;

  ExecutionResult run(const circ::QuantumCircuit& circuit, std::uint64_t shots,
                      std::uint64_t seed) override;

  /// Real checkpointing: the snapshot holds the evolved density matrix.
  /// Disabled under idle_noise, where the moment schedule of the spliced
  /// faulty circuit differs from the original's and a prefix state would
  /// not be equivalent to full re-simulation (the base splice fallback is
  /// used instead, which stays exact).
  bool supports_checkpointing() const override { return !idle_noise_; }

  PrefixSnapshotPtr prepare_prefix(const circ::QuantumCircuit& circuit,
                                   std::size_t prefix_length,
                                   std::uint64_t shots_hint = 0,
                                   std::uint64_t snapshot_seed = 0) override;

  ExecutionResult run_suffix(const PrefixSnapshot& snapshot,
                             std::span<const circ::Instruction> injected,
                             std::uint64_t shots, std::uint64_t seed) override;

  /// Batched grid sweep from one snapshot: compiles the shared suffix once
  /// (gate matrices built once, each noisy gate's unitary fused into its
  /// noise superoperator) and reuses a single scratch density matrix across
  /// configs, so each config costs one snapshot refill + its own injected
  /// gates + the fused replay. Equivalent to per-config run_suffix within
  /// floating-point reassociation (QVF parity well under 1e-9).
  std::vector<ExecutionResult> run_suffix_batch(
      const PrefixSnapshot& snapshot, std::span<const SuffixConfig> configs,
      std::uint64_t shots) override;

  /// Writes the evolved density matrix plus the circuit and split point as
  /// a kind=Density snapshot container (docs/SNAPSHOT_FORMAT.md). Returns
  /// false only for foreign/fallback snapshots with no density state.
  bool save_snapshot(const PrefixSnapshot& snapshot,
                     std::ostream& out) const override;

  /// Rebuilds a density snapshot from a kind=Density container; the
  /// compaction maps are re-derived from the embedded circuit. The loaded
  /// snapshot is bit-equivalent to the one save_snapshot consumed.
  PrefixSnapshotPtr load_snapshot(std::istream& in) const override;

  const noise::NoiseModel& noise_model() const { return noise_model_; }

 private:
  noise::NoiseModel noise_model_;
  bool idle_noise_;
};

}  // namespace qufi::backend
