#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"
#include "util/binary_io.hpp"

namespace qufi::backend::snapio {

/// Which backend family wrote a snapshot file. A backend's load_snapshot
/// rejects containers of the other kind instead of misinterpreting the
/// payload.
enum class SnapshotKind : std::uint32_t {
  Density = 1,     ///< evolved density matrix (DensityMatrixBackend)
  Trajectory = 2,  ///< cached per-shot statevectors (TrajectoryBackend)
};

/// 8-byte file magic; the version bumps on any layout change (no in-place
/// migration — old snapshots are cheap to regenerate from the circuit).
/// v2: trajectory shots carry their prefix RNG state (4 u64 words per shot)
/// so serialized snapshots stay extendable (prefix-tree derivation).
inline constexpr char kMagic[8] = {'Q', 'U', 'F', 'I', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kVersion = 2;

/// Serializes a circuit into `w` (dims, name, and every instruction with
/// full-precision params). The exact byte layout is documented in
/// docs/SNAPSHOT_FORMAT.md and is shared by every snapshot kind.
void write_circuit(util::ByteWriter& w, const circ::QuantumCircuit& circuit);

/// Mirror of write_circuit. Throws qufi::Error on malformed input (unknown
/// gate id, operand counts that fail circuit validation, truncation).
circ::QuantumCircuit read_circuit(util::ByteReader& r);

/// Frames `payload` as a snapshot container — magic, version, kind, payload,
/// trailing FNV-1a checksum over everything between magic and checksum —
/// and writes it to `out`. Throws qufi::Error when the stream write fails.
void write_container(std::ostream& out, SnapshotKind kind,
                     const std::string& payload);

/// A parsed container: the kind tag plus the raw payload bytes.
struct Container {
  SnapshotKind kind = SnapshotKind::Density;
  std::string payload;
};

/// Reads one container from `in` (consumes the remainder of the stream) and
/// validates magic, version, kind tag, and checksum. Throws qufi::Error with
/// a reason ("bad magic", "unsupported version", "checksum mismatch",
/// "truncated") on any violation — corrupt files never produce a snapshot.
Container read_container(std::istream& in);

/// FNV-1a hash of a circuit's serialized bytes — the cache key component
/// that keys snapshot files to the exact circuit they were built from.
std::uint64_t circuit_fingerprint(const circ::QuantumCircuit& circuit);

}  // namespace qufi::backend::snapio
