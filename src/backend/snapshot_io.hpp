#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"
#include "util/binary_io.hpp"

namespace qufi::backend::snapio {

/// Which backend family wrote a snapshot file. A backend's load_snapshot
/// rejects containers of the other kind instead of misinterpreting the
/// payload.
enum class SnapshotKind : std::uint32_t {
  Density = 1,     ///< evolved density matrix (DensityMatrixBackend)
  Trajectory = 2,  ///< cached per-shot statevectors (TrajectoryBackend)
};

/// 8-byte file magic; the version bumps on any layout change (no in-place
/// migration — old snapshots are cheap to regenerate from the circuit).
/// v2: trajectory shots carry their prefix RNG state (4 u64 words per shot)
/// so serialized snapshots stay extendable (prefix-tree derivation).
/// v3: density payloads carry the moment-aware idle-noise header (idle flag,
/// sealed-moment cursor, idle-schedule digest) so moment-scheduled
/// executions can resume a serialized prefix.
/// v4: the container body carries a payload codec tag + raw size, so
/// payloads can optionally be deflate-compressed on disk (the checksum
/// covers the *stored* bytes — corruption is detected before inflating).
/// Readers accept v1-v4 (the per-kind loaders decide what the payload can
/// express — see docs/SNAPSHOT_FORMAT.md for the compatibility table).
inline constexpr char kMagic[8] = {'Q', 'U', 'F', 'I', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kVersion = 4;
inline constexpr std::uint32_t kMinReadVersion = 1;

/// How a v4+ container's payload bytes are stored on disk. read_container
/// always hands loaders the *decompressed* payload, so per-kind payload
/// formats never see the codec.
enum class PayloadCodec : std::uint8_t {
  None = 0,     ///< payload stored verbatim
  Deflate = 1,  ///< zlib stream (requires a zlib-enabled build to read)
};

/// Serializes a circuit into `w` (dims, name, and every instruction with
/// full-precision params). The exact byte layout is documented in
/// docs/SNAPSHOT_FORMAT.md and is shared by every snapshot kind.
void write_circuit(util::ByteWriter& w, const circ::QuantumCircuit& circuit);

/// Mirror of write_circuit. Throws qufi::Error on malformed input (unknown
/// gate id, operand counts that fail circuit validation, truncation).
circ::QuantumCircuit read_circuit(util::ByteReader& r);

/// Frames `payload` as a v4 snapshot container — magic, version, kind,
/// codec tag, raw payload size, stored payload, trailing FNV-1a checksum
/// over everything between magic and checksum — and writes it to `out`.
/// With PayloadCodec::Deflate the payload is compressed before storing
/// (requires util::deflate_available(); callers should fall back to None
/// otherwise). Throws qufi::Error when compression or the stream write
/// fails.
void write_container(std::ostream& out, SnapshotKind kind,
                     const std::string& payload,
                     PayloadCodec codec = PayloadCodec::None);

/// A parsed container: the format version, the kind tag, and the payload
/// bytes (already decompressed for v4 containers with a non-None codec).
/// Loaders branch on `version` to parse payload fields that
/// were added in later formats (and to reject versions whose payload cannot
/// express what the backend needs, e.g. trajectory RNG state before v2).
struct Container {
  std::uint32_t version = kVersion;
  SnapshotKind kind = SnapshotKind::Density;
  std::string payload;
};

/// Reads one container from `in` (consumes the remainder of the stream) and
/// validates magic, version, kind tag, and checksum. Throws qufi::Error with
/// a reason ("bad magic", "unsupported version", "checksum mismatch",
/// "truncated") on any violation — corrupt files never produce a snapshot.
Container read_container(std::istream& in);

/// FNV-1a hash of a circuit's serialized bytes — the cache key component
/// that keys snapshot files to the exact circuit they were built from.
std::uint64_t circuit_fingerprint(const circ::QuantumCircuit& circuit);

}  // namespace qufi::backend::snapio
