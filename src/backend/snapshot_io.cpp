#include "backend/snapshot_io.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "util/compress.hpp"
#include "util/error.hpp"

namespace qufi::backend::snapio {

void write_circuit(util::ByteWriter& w, const circ::QuantumCircuit& circuit) {
  w.u32(static_cast<std::uint32_t>(circuit.num_qubits()));
  w.u32(static_cast<std::uint32_t>(circuit.num_clbits()));
  w.str(circuit.name());
  w.u64(circuit.size());
  for (const auto& instr : circuit.instructions()) {
    w.u32(static_cast<std::uint32_t>(instr.kind));
    w.u32(static_cast<std::uint32_t>(instr.qubits.size()));
    for (const int q : instr.qubits) w.u32(static_cast<std::uint32_t>(q));
    w.u32(static_cast<std::uint32_t>(instr.clbits.size()));
    for (const int c : instr.clbits) w.u32(static_cast<std::uint32_t>(c));
    w.u32(static_cast<std::uint32_t>(instr.params.size()));
    for (const double p : instr.params) w.f64(p);
  }
}

circ::QuantumCircuit read_circuit(util::ByteReader& r) {
  const auto num_qubits = static_cast<int>(r.u32());
  const auto num_clbits = static_cast<int>(r.u32());
  require(num_qubits >= 0 && num_qubits <= 64 && num_clbits >= 0 &&
              num_clbits <= 64,
          "snapshot: circuit dimensions out of range");
  const std::string name = r.str();
  circ::QuantumCircuit circuit(num_qubits, num_clbits);
  circuit.set_name(name);
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    circ::Instruction instr;
    const std::uint32_t kind = r.u32();
    require(kind <= static_cast<std::uint32_t>(circ::GateKind::Reset),
            "snapshot: unknown gate kind");
    instr.kind = static_cast<circ::GateKind>(kind);
    instr.qubits.resize(r.u32());
    for (auto& q : instr.qubits) q = static_cast<int>(r.u32());
    instr.clbits.resize(r.u32());
    for (auto& c : instr.clbits) c = static_cast<int>(r.u32());
    instr.params.resize(r.u32());
    for (auto& p : instr.params) p = r.f64();
    circuit.append(std::move(instr));  // re-validated on append
  }
  return circuit;
}

void write_container(std::ostream& out, SnapshotKind kind,
                     const std::string& payload, PayloadCodec codec) {
  util::ByteWriter body;  // everything the checksum covers
  body.u32(kVersion);
  body.u32(static_cast<std::uint32_t>(kind));
  body.u8(static_cast<std::uint8_t>(codec));
  body.u64(payload.size());
  if (codec == PayloadCodec::Deflate) {
    const std::string stored = util::deflate_compress(payload);
    body.raw(stored.data(), stored.size());
  } else {
    require(codec == PayloadCodec::None, "snapshot: unknown payload codec");
    body.raw(payload.data(), payload.size());
  }

  out.write(kMagic, sizeof kMagic);
  out.write(body.data().data(), static_cast<std::streamsize>(body.size()));
  util::ByteWriter checksum;
  checksum.u64(util::fnv1a64(body.data()));
  out.write(checksum.data().data(),
            static_cast<std::streamsize>(checksum.size()));
  require(out.good(), "snapshot: stream write failed");
}

Container read_container(std::istream& in) {
  std::string bytes{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  // magic + version + kind + checksum is the minimum viable container.
  require(bytes.size() >= sizeof kMagic + 4 + 4 + 8, "snapshot: truncated");
  require(std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0,
          "snapshot: bad magic");

  const std::string_view body(bytes.data() + sizeof kMagic,
                              bytes.size() - sizeof kMagic - 8);
  util::ByteReader tail(
      std::string_view(bytes.data() + bytes.size() - 8, 8));
  require(tail.u64() == util::fnv1a64(body), "snapshot: checksum mismatch");

  util::ByteReader r(body);
  const std::uint32_t version = r.u32();
  require(version >= kMinReadVersion && version <= kVersion,
          "snapshot: unsupported version");
  const std::uint32_t kind = r.u32();
  require(kind == static_cast<std::uint32_t>(SnapshotKind::Density) ||
              kind == static_cast<std::uint32_t>(SnapshotKind::Trajectory),
          "snapshot: unknown backend kind");

  Container c;
  c.version = version;
  c.kind = static_cast<SnapshotKind>(kind);
  if (version >= 4) {
    // v4 body: codec tag + raw payload size + stored (maybe compressed)
    // payload. The checksum above covered the stored bytes, so corruption
    // is already ruled out before any decompression runs.
    const std::uint8_t codec = r.u8();
    const std::uint64_t raw_size = r.u64();
    const std::string_view stored = body.substr(4 + 4 + 1 + 8);
    if (codec == static_cast<std::uint8_t>(PayloadCodec::Deflate)) {
      c.payload = util::deflate_decompress(
          stored, static_cast<std::size_t>(raw_size));
    } else {
      require(codec == static_cast<std::uint8_t>(PayloadCodec::None),
              "snapshot: unknown payload codec");
      require(stored.size() == raw_size,
              "snapshot: payload size mismatch");
      c.payload.assign(stored);
    }
  } else {
    c.payload.assign(body.substr(8));
  }
  return c;
}

std::uint64_t circuit_fingerprint(const circ::QuantumCircuit& circuit) {
  util::ByteWriter w;
  write_circuit(w, circuit);
  return util::fnv1a64(w.data());
}

}  // namespace qufi::backend::snapio
