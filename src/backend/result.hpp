#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qufi::backend {

/// Outcome of executing a circuit on a backend.
///
/// `probabilities` is the distribution over classical bitstrings
/// (size 2^num_clbits, index bit c = clbit c). With shots == 0 it is the
/// exact backend distribution; with shots > 0 it holds the empirical
/// frequencies of the sampled `counts`, matching how the paper estimates
/// distributions from 1,024 executions.
struct ExecutionResult {
  std::vector<double> probabilities;
  std::map<std::string, std::uint64_t> counts;  ///< empty when shots == 0
  std::uint64_t shots = 0;
  int num_clbits = 0;
  std::string backend_name;

  /// Probability of an MSB-first bitstring (e.g. "101").
  double probability_of(const std::string& bitstring) const;

  /// Bitstring with the highest probability (lowest index wins ties).
  std::string most_probable() const;

  /// Builds a result from an exact distribution; samples `shots` outcomes
  /// when shots > 0 (deterministic in `seed`) and replaces probabilities
  /// with empirical frequencies.
  static ExecutionResult from_distribution(std::vector<double> probs,
                                           int num_clbits, std::uint64_t shots,
                                           std::uint64_t seed,
                                           std::string backend_name);

  /// Builds a result directly from sampled outcome indices.
  static ExecutionResult from_outcome_counts(
      const std::vector<std::uint64_t>& outcome_counts, int num_clbits,
      std::string backend_name);
};

}  // namespace qufi::backend
