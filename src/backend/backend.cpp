#include "backend/backend.hpp"

#include "util/error.hpp"

namespace qufi::backend {

namespace {

/// Fallback snapshot: no simulator state, just the circuit and the split.
class SpliceSnapshot final : public PrefixSnapshot {
 public:
  SpliceSnapshot(circ::QuantumCircuit circuit, std::size_t prefix_length)
      : PrefixSnapshot(prefix_length), circuit_(std::move(circuit)) {}

  const circ::QuantumCircuit* circuit() const override { return &circuit_; }

 private:
  circ::QuantumCircuit circuit_;
};

}  // namespace

circ::QuantumCircuit splice_circuit(
    const circ::QuantumCircuit& circuit, std::size_t prefix_length,
    std::span<const circ::Instruction> injected) {
  require(prefix_length <= circuit.size(),
          "splice_circuit: prefix length exceeds circuit size");
  circ::QuantumCircuit spliced(circuit.num_qubits(), circuit.num_clbits());
  spliced.set_name(circuit.name() + "+fault");
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < prefix_length; ++i) spliced.append(instrs[i]);
  for (const auto& instr : injected) {
    require(instr.is_unitary(), "splice_circuit: injected gate not unitary");
    spliced.append(instr);
  }
  for (std::size_t i = prefix_length; i < instrs.size(); ++i) {
    spliced.append(instrs[i]);
  }
  return spliced;
}

PrefixSnapshotPtr Backend::prepare_prefix(const circ::QuantumCircuit& circuit,
                                          std::size_t prefix_length,
                                          std::uint64_t /*shots_hint*/,
                                          std::uint64_t /*snapshot_seed*/) {
  require(prefix_length <= circuit.size(),
          "prepare_prefix: prefix length exceeds circuit size");
  return std::make_shared<SpliceSnapshot>(circuit, prefix_length);
}

ExecutionResult Backend::run_suffix(const PrefixSnapshot& snapshot,
                                    std::span<const circ::Instruction> injected,
                                    std::uint64_t shots, std::uint64_t seed) {
  const auto* splice = dynamic_cast<const SpliceSnapshot*>(&snapshot);
  require(splice != nullptr,
          "run_suffix: snapshot was not produced by this backend");
  return run(splice_circuit(*splice->circuit(), splice->prefix_length(),
                            injected),
             shots, seed);
}

PrefixSnapshotPtr Backend::extend_snapshot(const PrefixSnapshot& parent,
                                           std::size_t from_gate,
                                           std::size_t to_gate,
                                           std::uint64_t /*shots_hint*/,
                                           std::uint64_t /*snapshot_seed*/) {
  const auto* splice = dynamic_cast<const SpliceSnapshot*>(&parent);
  require(splice != nullptr,
          "extend_snapshot: snapshot was not produced by this backend");
  require(from_gate == parent.prefix_length(),
          "extend_snapshot: from_gate does not match the parent prefix");
  require(to_gate >= from_gate,
          "extend_snapshot: cannot extend a snapshot backwards");
  require(to_gate <= splice->circuit()->size(),
          "extend_snapshot: to_gate exceeds circuit size");
  return std::make_shared<SpliceSnapshot>(*splice->circuit(), to_gate);
}

bool Backend::save_snapshot(const PrefixSnapshot& /*snapshot*/,
                            std::ostream& /*out*/) const {
  return false;  // splice snapshots carry no simulator state worth shipping
}

PrefixSnapshotPtr Backend::load_snapshot(std::istream& /*in*/) const {
  throw Error("load_snapshot: backend has no serializable snapshot form");
}

std::vector<ExecutionResult> Backend::run_suffix_batch(
    const PrefixSnapshot& snapshot, std::span<const SuffixConfig> configs,
    std::uint64_t shots) {
  std::vector<ExecutionResult> results;
  results.reserve(configs.size());
  for (const auto& config : configs) {
    results.push_back(run_suffix(snapshot, config.injected, shots,
                                 config.seed));
  }
  return results;
}

}  // namespace qufi::backend
