#include "backend/hardware_backend.hpp"

#include "backend/density_backend.hpp"
#include "transpile/decompose.hpp"
#include "util/error.hpp"

namespace qufi::backend {

SimulatedHardwareBackend::SimulatedHardwareBackend(
    noise::BackendProperties nominal, noise::DriftModel drift,
    std::optional<std::uint64_t> fixed_job)
    : nominal_(std::move(nominal)), drift_(drift), fixed_job_(fixed_job) {
  nominal_.validate();
}

std::string SimulatedHardwareBackend::name() const {
  return "hardware_sim(" + nominal_.name + ")";
}

ExecutionResult SimulatedHardwareBackend::run(
    const circ::QuantumCircuit& circuit, std::uint64_t shots,
    std::uint64_t seed) {
  require(circuit.num_qubits() <= nominal_.num_qubits,
          "SimulatedHardwareBackend: circuit wider than device");
  if (shots == 0) shots = 1024;  // hardware always samples

  // The machine only executes basis gates: decompose anything else —
  // including injected U fault gates, which therefore pick up gate noise.
  const circ::QuantumCircuit lowered = transpile::decompose_to_basis(circuit);

  const std::uint64_t job = fixed_job_.value_or(seed);
  const noise::BackendProperties drifted = drift_.sample(nominal_, job);
  const noise::NoiseModel noise_model =
      noise::NoiseModel::from_backend(drifted);
  const auto coherent = drift_.sample_coherent(circuit.num_qubits(), job);

  DensityRunOptions options;
  options.coherent_errors = coherent;
  auto probs = run_density_probs(lowered, noise_model, options);
  return ExecutionResult::from_distribution(
      std::move(probs), circuit.num_clbits(), shots, seed, name());
}

}  // namespace qufi::backend
