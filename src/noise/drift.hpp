#pragma once

#include <cstdint>

#include "noise/backend_props.hpp"

namespace qufi::noise {

/// Calibration drift model: the substitution for real-hardware execution.
///
/// The paper's Fig. 11 compares fault injection on a static noise model
/// against the physical IBM-Q Jakarta machine, whose noise "is not static
/// and may slightly change the state probability distribution". We model
/// that by re-sampling every calibration figure around its nominal value
/// for each job, plus small coherent over-rotations (gate miscalibration)
/// that a static Kraus model cannot express.
///
/// Sampling is deterministic in (seed, job_index) so experiments reproduce.
struct DriftModel {
  double t1_t2_rel_sigma = 0.06;     ///< relative sigma on T1/T2
  double gate_error_rel_sigma = 0.15;  ///< relative sigma on gate infidelity
  double readout_rel_sigma = 0.12;   ///< relative sigma on readout errors
  double coherent_sigma_rad = 0.012; ///< sigma of per-qubit RZ/RX miscalibration
  std::uint64_t seed = 0x5157464a414bULL;  // "QWFJAK"

  /// Returns a drifted copy of `nominal` for the given job. Relative factors
  /// are log-normal-ish (1 + sigma * N(0,1), clamped to [0.5, 1.5]) and T2
  /// is re-clamped to 2*T1.
  BackendProperties sample(const BackendProperties& nominal,
                           std::uint64_t job_index) const;

  /// Per-qubit coherent miscalibration angles for the given job; first =
  /// Z over-rotation, second = X over-rotation (radians), applied after
  /// every physical 1q gate by the hardware backend.
  struct CoherentError {
    double z_angle = 0.0;
    double x_angle = 0.0;
  };
  std::vector<CoherentError> sample_coherent(int num_qubits,
                                             std::uint64_t job_index) const;
};

}  // namespace qufi::noise
