#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace qufi::noise {

/// Classical measurement assignment error for one qubit.
struct ReadoutError {
  double p_meas1_given0 = 0.0;  ///< P(read 1 | prepared 0)
  double p_meas0_given1 = 0.0;  ///< P(read 0 | prepared 1)

  bool is_trivial() const {
    return p_meas1_given0 == 0.0 && p_meas0_given1 == 0.0;
  }
  /// Mean assignment error, the figure IBM reports per qubit.
  double mean_error() const { return 0.5 * (p_meas1_given0 + p_meas0_given1); }
};

/// Applies per-clbit readout confusion to a distribution over classical
/// bitstrings (size 2^num_clbits). `errors[i]` is the error of the qubit
/// measured into clbit `clbits[i]`. The confusion matrix factorizes per bit
/// so this runs one in-place pass per clbit.
void apply_readout_error(std::vector<double>& clbit_probs,
                         std::span<const int> clbits,
                         std::span<const ReadoutError> errors);

/// Sampling version: flips bits of an ideal outcome according to the
/// per-clbit errors. Used by the trajectory backend per shot.
std::uint64_t sample_readout_flips(std::uint64_t outcome,
                                   std::span<const int> clbits,
                                   std::span<const ReadoutError> errors,
                                   util::Xoshiro256pp& rng);

}  // namespace qufi::noise
