#include "noise/mitigation.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace qufi::noise {

std::vector<double> mitigate_readout(std::span<const double> observed,
                                     std::span<const int> clbits,
                                     std::span<const ReadoutError> errors) {
  require(clbits.size() == errors.size(),
          "mitigate_readout: clbit/error count mismatch");
  require(std::has_single_bit(observed.size()),
          "mitigate_readout: distribution size must be a power of two");
  const int num_clbits = std::bit_width(observed.size()) - 1;

  std::vector<double> probs(observed.begin(), observed.end());
  for (std::size_t k = 0; k < clbits.size(); ++k) {
    const int c = clbits[k];
    require(c >= 0 && c < num_clbits, "mitigate_readout: bad clbit index");
    const double e0 = errors[k].p_meas1_given0;
    const double e1 = errors[k].p_meas0_given1;
    const double det = 1.0 - e0 - e1;  // determinant of the confusion matrix
    require(std::abs(det) > 1e-9,
            "mitigate_readout: confusion matrix is singular (e0 + e1 == 1)");
    // Inverse of [[1-e0, e1], [e0, 1-e1]] applied per bit-pair.
    const std::uint64_t bit = 1ULL << c;
    for (std::uint64_t j = 0; j < probs.size(); ++j) {
      if (j & bit) continue;
      const double m0 = probs[j];
      const double m1 = probs[j | bit];
      probs[j] = ((1.0 - e1) * m0 - e1 * m1) / det;
      probs[j | bit] = (-e0 * m0 + (1.0 - e0) * m1) / det;
    }
  }

  // Clip quasi-probabilities and renormalize.
  double total = 0.0;
  for (auto& p : probs) {
    if (p < 0.0) p = 0.0;
    total += p;
  }
  if (total > 0.0) {
    for (auto& p : probs) p /= total;
  }
  return probs;
}

}  // namespace qufi::noise
