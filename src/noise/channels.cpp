#include "noise/channels.hpp"

#include <cmath>

#include "circuit/gate.hpp"
#include "util/error.hpp"

namespace qufi::noise {

using util::cplx;
using util::Mat2;
using util::Mat4;

namespace {

Mat2 pauli(char p) {
  switch (p) {
    case 'I':
      return Mat2::identity();
    case 'X':
      return circ::gate_matrix1(circ::GateKind::X, {});
    case 'Y':
      return circ::gate_matrix1(circ::GateKind::Y, {});
    case 'Z':
      return circ::gate_matrix1(circ::GateKind::Z, {});
    default:
      throw Error("pauli: bad label");
  }
}

void check_prob(double p, const char* what) {
  require(p >= 0.0 && p <= 1.0,
          std::string(what) + ": probability out of [0, 1]");
}

}  // namespace

bool KrausChannel1::is_cptp(double tol) const {
  Mat2 sum = Mat2::zero();
  for (const auto& k : ops) sum = sum + k.adjoint() * k;
  return sum.approx_equal(Mat2::identity(), tol);
}

bool KrausChannel1::is_identity(double tol) const {
  return ops.size() == 1 && ops[0].approx_equal(Mat2::identity(), tol);
}

bool KrausChannel2::is_cptp(double tol) const {
  Mat4 sum = Mat4::zero();
  for (const auto& k : ops) sum = sum + k.adjoint() * k;
  return sum.approx_equal(Mat4::identity(), tol);
}

bool KrausChannel2::is_identity(double tol) const {
  return ops.size() == 1 && ops[0].approx_equal(Mat4::identity(), tol);
}

namespace {

Mat2 conj2(const Mat2& m) {
  Mat2 out;
  for (std::size_t i = 0; i < 4; ++i) out.a[i] = std::conj(m.a[i]);
  return out;
}

Mat4 conj4(const Mat4& m) {
  Mat4 out;
  for (std::size_t i = 0; i < 16; ++i) out.a[i] = std::conj(m.a[i]);
  return out;
}

}  // namespace

util::Mat4 channel_superop(const KrausChannel1& channel) {
  Mat4 superop = Mat4::zero();
  for (const auto& k : channel.ops) {
    superop = superop + util::kron(k, conj2(k));
  }
  return superop;
}

SuperOp2 channel_superop(const KrausChannel2& channel) {
  SuperOp2 superop;
  for (const auto& k : channel.ops) {
    const Mat4 kc = conj4(k);
    for (int rr = 0; rr < 4; ++rr) {
      for (int rc = 0; rc < 4; ++rc) {
        for (int cr = 0; cr < 4; ++cr) {
          for (int cc = 0; cc < 4; ++cc) {
            superop.a[static_cast<std::size_t>(((rr << 2) | rc) * 16 +
                                               ((cr << 2) | cc))] +=
                k(rr, cr) * kc(rc, cc);
          }
        }
      }
    }
  }
  return superop;
}

util::Mat4 compose_superops(const util::Mat4& second, const util::Mat4& first) {
  return second * first;
}

SuperOp2 compose_superops(const SuperOp2& second, const SuperOp2& first) {
  SuperOp2 out;
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      cplx sum{};
      for (int k = 0; k < 16; ++k) {
        sum += second.a[static_cast<std::size_t>(r * 16 + k)] *
               first.a[static_cast<std::size_t>(k * 16 + c)];
      }
      out.a[static_cast<std::size_t>(r * 16 + c)] = sum;
    }
  }
  return out;
}

SuperOp2 embed_superops(const util::Mat4& slot0, const util::Mat4& slot1) {
  // Local index j = (r1 r0 c1 c0); slot0's 4x4 superop index is (r0 c0),
  // slot1's is (r1 c1).
  SuperOp2 out;
  for (int j_out = 0; j_out < 16; ++j_out) {
    const int c0o = j_out & 1, c1o = (j_out >> 1) & 1;
    const int r0o = (j_out >> 2) & 1, r1o = (j_out >> 3) & 1;
    for (int j_in = 0; j_in < 16; ++j_in) {
      const int c0i = j_in & 1, c1i = (j_in >> 1) & 1;
      const int r0i = (j_in >> 2) & 1, r1i = (j_in >> 3) & 1;
      out.a[static_cast<std::size_t>(j_out * 16 + j_in)] =
          slot0((r0o << 1) | c0o, (r0i << 1) | c0i) *
          slot1((r1o << 1) | c1o, (r1i << 1) | c1i);
    }
  }
  return out;
}

KrausChannel1 depolarizing1(double p) {
  check_prob(p, "depolarizing1");
  if (p == 0.0) return KrausChannel1{{Mat2::identity()}};
  KrausChannel1 ch;
  ch.ops.push_back(pauli('I') * cplx{std::sqrt(1.0 - p), 0});
  const double w = std::sqrt(p / 3.0);
  for (char label : {'X', 'Y', 'Z'})
    ch.ops.push_back(pauli(label) * cplx{w, 0});
  return ch;
}

KrausChannel2 depolarizing2(double p) {
  check_prob(p, "depolarizing2");
  if (p == 0.0) return KrausChannel2{{Mat4::identity()}};
  KrausChannel2 ch;
  const char labels[] = {'I', 'X', 'Y', 'Z'};
  for (char a : labels) {
    for (char b : labels) {
      const bool ident = (a == 'I' && b == 'I');
      const double w = ident ? std::sqrt(1.0 - p) : std::sqrt(p / 15.0);
      ch.ops.push_back(util::kron(pauli(a), pauli(b)) * cplx{w, 0});
    }
  }
  return ch;
}

KrausChannel1 amplitude_damping(double gamma) {
  check_prob(gamma, "amplitude_damping");
  Mat2 k0 = Mat2::identity();
  k0(1, 1) = std::sqrt(1.0 - gamma);
  Mat2 k1 = Mat2::zero();
  k1(0, 1) = std::sqrt(gamma);
  return KrausChannel1{{k0, k1}};
}

KrausChannel1 phase_damping(double lambda) {
  check_prob(lambda, "phase_damping");
  Mat2 k0 = Mat2::identity();
  k0(1, 1) = std::sqrt(1.0 - lambda);
  Mat2 k1 = Mat2::zero();
  k1(1, 1) = std::sqrt(lambda);
  return KrausChannel1{{k0, k1}};
}

KrausChannel1 thermal_relaxation(double duration_ns, double t1_us,
                                 double t2_us) {
  require(duration_ns >= 0, "thermal_relaxation: negative duration");
  require(t1_us > 0 && t2_us > 0, "thermal_relaxation: T1/T2 must be positive");
  require(t2_us <= 2.0 * t1_us + 1e-12,
          "thermal_relaxation: requires T2 <= 2*T1");
  if (duration_ns == 0.0) return KrausChannel1{{Mat2::identity()}};

  const double t_us = duration_ns * 1e-3;
  const double gamma = 1.0 - std::exp(-t_us / t1_us);
  // Pure dephasing rate: 1/T2 = 1/(2 T1) + 1/T_phi. After amplitude damping
  // the off-diagonal already decays as exp(-t/(2 T1)); add phase damping
  // lambda so the total off-diagonal decay is exp(-t/T2).
  const double inv_tphi = std::max(0.0, 1.0 / t2_us - 0.5 / t1_us);
  const double lambda = 1.0 - std::exp(-2.0 * t_us * inv_tphi);

  const KrausChannel1 ad = amplitude_damping(gamma);
  const KrausChannel1 pd = phase_damping(lambda);
  KrausChannel1 out;
  for (const auto& l : pd.ops) {
    for (const auto& k : ad.ops) {
      const Mat2 prod = l * k;
      double mag = 0.0;
      for (const auto& v : prod.a) mag += std::norm(v);
      if (mag > 1e-24) out.ops.push_back(prod);
    }
  }
  return out;
}

KrausChannel1 pauli_channel(double px, double py, double pz) {
  check_prob(px, "pauli_channel");
  check_prob(py, "pauli_channel");
  check_prob(pz, "pauli_channel");
  const double pi = 1.0 - px - py - pz;
  require(pi >= -1e-12, "pauli_channel: probabilities exceed 1");
  KrausChannel1 ch;
  ch.ops.push_back(pauli('I') * cplx{std::sqrt(std::max(0.0, pi)), 0});
  if (px > 0) ch.ops.push_back(pauli('X') * cplx{std::sqrt(px), 0});
  if (py > 0) ch.ops.push_back(pauli('Y') * cplx{std::sqrt(py), 0});
  if (pz > 0) ch.ops.push_back(pauli('Z') * cplx{std::sqrt(pz), 0});
  return ch;
}

KrausChannel1 bit_flip(double p) { return pauli_channel(p, 0, 0); }
KrausChannel1 phase_flip(double p) { return pauli_channel(0, 0, p); }

KrausChannel1 coherent_z_rotation(double epsilon) {
  const double params[] = {epsilon};
  return KrausChannel1{{circ::gate_matrix1(circ::GateKind::RZ, params)}};
}

KrausChannel1 coherent_x_rotation(double epsilon) {
  const double params[] = {epsilon};
  return KrausChannel1{{circ::gate_matrix1(circ::GateKind::RX, params)}};
}

}  // namespace qufi::noise
