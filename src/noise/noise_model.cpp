#include "noise/noise_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qufi::noise {

namespace {

/// Depolarizing probability from IBM-reported average gate infidelity.
double depol_p_from_infidelity_1q(double eps) {
  return std::clamp(1.5 * eps, 0.0, 1.0);
}
double depol_p_from_infidelity_2q(double eps) {
  return std::clamp(1.25 * eps, 0.0, 1.0);
}

}  // namespace

NoiseModel NoiseModel::ideal() { return NoiseModel{}; }

NoiseModel NoiseModel::from_backend(const BackendProperties& props,
                                    double scale) {
  require(scale >= 0.0, "NoiseModel: scale must be non-negative");
  props.validate();
  NoiseModel model;
  if (scale == 0.0) return model;

  model.ideal_ = false;
  model.scale_ = scale;
  model.source_name_ = props.name;
  model.qubit_props_ = props.qubits;

  const int n = props.num_qubits;
  model.relax_1q_.reserve(static_cast<std::size_t>(n));
  model.depol_1q_.reserve(static_cast<std::size_t>(n));
  model.readout_.reserve(static_cast<std::size_t>(n));
  model.measure_duration_ns_ = props.measure_duration_ns;
  for (int q = 0; q < n; ++q) {
    const auto& qb = props.qubits[static_cast<std::size_t>(q)];
    const auto& g1 = props.gate_1q[static_cast<std::size_t>(q)];
    model.dur_1q_ns_.push_back(g1.duration_ns);
    model.relax_1q_.push_back(
        thermal_relaxation(g1.duration_ns * scale, qb.t1_us, qb.t2_us));
    model.depol_1q_.push_back(depolarizing1(
        std::clamp(depol_p_from_infidelity_1q(g1.error) * scale, 0.0, 1.0)));
    model.superop_1q_.push_back(
        compose_superops(channel_superop(model.depol_1q_.back()),
                         channel_superop(model.relax_1q_.back())));
    ReadoutError ro = qb.readout;
    ro.p_meas1_given0 = std::clamp(ro.p_meas1_given0 * scale, 0.0, 1.0);
    ro.p_meas0_given1 = std::clamp(ro.p_meas0_given1 * scale, 0.0, 1.0);
    model.readout_.push_back(ro);
  }

  double mean_cx_err = 0.0;
  double mean_cx_dur = 0.0;
  for (const auto& [edge, spec] : props.gate_2q) {
    const auto& qa = props.qubits[static_cast<std::size_t>(edge.first)];
    const auto& qb = props.qubits[static_cast<std::size_t>(edge.second)];
    EdgeNoise en;
    en.relax_a =
        thermal_relaxation(spec.duration_ns * scale, qa.t1_us, qa.t2_us);
    en.relax_b =
        thermal_relaxation(spec.duration_ns * scale, qb.t1_us, qb.t2_us);
    en.depol = depolarizing2(
        std::clamp(depol_p_from_infidelity_2q(spec.error) * scale, 0.0, 1.0));
    en.superop = compose_superops(
        channel_superop(en.depol),
        embed_superops(channel_superop(en.relax_a),
                       channel_superop(en.relax_b)));
    model.edge_noise_.emplace(edge, std::move(en));
    model.dur_2q_ns_.emplace(edge, spec.duration_ns);
    mean_cx_err += spec.error;
    mean_cx_dur += spec.duration_ns;
  }

  // Fallback noise for 2q gates on uncalibrated pairs (e.g. circuits run
  // without transpilation): average calibration over all edges.
  if (!props.gate_2q.empty()) {
    mean_cx_err /= static_cast<double>(props.gate_2q.size());
    mean_cx_dur /= static_cast<double>(props.gate_2q.size());
  } else {
    mean_cx_err = 0.01;
    mean_cx_dur = 400.0;
  }
  double mean_t1 = 0.0;
  double mean_t2 = 0.0;
  for (const auto& qb : props.qubits) {
    mean_t1 += qb.t1_us;
    mean_t2 += qb.t2_us;
  }
  mean_t1 /= static_cast<double>(n);
  mean_t2 /= static_cast<double>(n);
  model.default_edge_noise_.relax_a =
      thermal_relaxation(mean_cx_dur * scale, mean_t1, std::min(mean_t2, 2 * mean_t1));
  model.default_edge_noise_.relax_b = model.default_edge_noise_.relax_a;
  model.default_edge_noise_.depol = depolarizing2(std::clamp(
      depol_p_from_infidelity_2q(mean_cx_err) * scale, 0.0, 1.0));
  model.default_edge_noise_.superop = compose_superops(
      channel_superop(model.default_edge_noise_.depol),
      embed_superops(channel_superop(model.default_edge_noise_.relax_a),
                     channel_superop(model.default_edge_noise_.relax_b)));
  model.mean_dur_2q_ns_ = mean_cx_dur;

  return model;
}

const util::Mat4* NoiseModel::superop_after_1q(circ::GateKind kind,
                                               int qubit) const {
  if (ideal_ || !is_noisy_1q_gate(kind)) return nullptr;
  require(qubit >= 0 && qubit < num_qubits(),
          "NoiseModel: qubit out of range for source backend " + source_name_);
  return &superop_1q_[static_cast<std::size_t>(qubit)];
}

const SuperOp2* NoiseModel::superop_after_2q(int a, int b) const {
  if (ideal_) return nullptr;
  require(a >= 0 && a < num_qubits() && b >= 0 && b < num_qubits() && a != b,
          "NoiseModel: bad 2q operands");
  const auto it = edge_noise_.find({std::min(a, b), std::max(a, b)});
  return it != edge_noise_.end() ? &it->second.superop
                                 : &default_edge_noise_.superop;
}

double NoiseModel::duration_1q_ns(int qubit) const {
  if (ideal_) return 0.0;
  require(qubit >= 0 && qubit < num_qubits(),
          "NoiseModel: qubit out of range");
  return dur_1q_ns_[static_cast<std::size_t>(qubit)];
}

double NoiseModel::duration_2q_ns(int a, int b) const {
  if (ideal_) return 0.0;
  const auto it = dur_2q_ns_.find({std::min(a, b), std::max(a, b)});
  return it != dur_2q_ns_.end() ? it->second : mean_dur_2q_ns_;
}

bool NoiseModel::is_noisy_1q_gate(circ::GateKind kind) {
  using circ::GateKind;
  switch (kind) {
    case GateKind::I:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::U:  // fault-injector gate: exempt (see class comment)
    case GateKind::Barrier:
    case GateKind::Measure:
    case GateKind::Reset:
      return false;
    default:
      return circ::gate_info(kind).num_qubits == 1;
  }
}

std::vector<const KrausChannel1*> NoiseModel::channels_after_1q(
    circ::GateKind kind, int qubit) const {
  std::vector<const KrausChannel1*> out;
  if (ideal_ || !is_noisy_1q_gate(kind)) return out;
  require(qubit >= 0 && qubit < num_qubits(),
          "NoiseModel: qubit out of range for source backend " + source_name_);
  const auto& relax = relax_1q_[static_cast<std::size_t>(qubit)];
  const auto& depol = depol_1q_[static_cast<std::size_t>(qubit)];
  if (!relax.is_identity()) out.push_back(&relax);
  if (!depol.is_identity()) out.push_back(&depol);
  return out;
}

NoiseModel::TwoQubitNoise NoiseModel::channels_after_2q(int a, int b) const {
  TwoQubitNoise out;
  if (ideal_) return out;
  require(a >= 0 && a < num_qubits() && b >= 0 && b < num_qubits() && a != b,
          "NoiseModel: bad 2q operands");
  const bool flipped = a > b;
  const auto it = edge_noise_.find({std::min(a, b), std::max(a, b)});
  const EdgeNoise& en =
      it != edge_noise_.end() ? it->second : default_edge_noise_;
  out.relax_a = flipped ? &en.relax_b : &en.relax_a;
  out.relax_b = flipped ? &en.relax_a : &en.relax_b;
  out.depol = &en.depol;
  return out;
}

KrausChannel1 NoiseModel::idle_relaxation(int qubit, double duration_ns) const {
  if (ideal_ || duration_ns <= 0.0) {
    return KrausChannel1{{util::Mat2::identity()}};
  }
  require(qubit >= 0 && qubit < num_qubits(),
          "NoiseModel: qubit out of range");
  const auto& qb = qubit_props_[static_cast<std::size_t>(qubit)];
  return thermal_relaxation(duration_ns * scale_, qb.t1_us, qb.t2_us);
}

const ReadoutError& NoiseModel::readout(int qubit) const {
  if (ideal_) return trivial_readout_;
  require(qubit >= 0 && qubit < num_qubits(),
          "NoiseModel: qubit out of range");
  return readout_[static_cast<std::size_t>(qubit)];
}

}  // namespace qufi::noise
