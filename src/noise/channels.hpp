#pragma once

#include <vector>

#include "util/matrix.hpp"

namespace qufi::noise {

/// Single-qubit quantum channel in Kraus form: rho -> sum_i K_i rho K_i†.
struct KrausChannel1 {
  std::vector<util::Mat2> ops;

  /// True when sum K†K == I within tol (trace preserving).
  bool is_cptp(double tol = 1e-9) const;
  /// True when the channel is exactly identity (single identity op).
  bool is_identity(double tol = 1e-12) const;
};

/// Two-qubit quantum channel in Kraus form.
struct KrausChannel2 {
  std::vector<util::Mat4> ops;

  bool is_cptp(double tol = 1e-9) const;
  bool is_identity(double tol = 1e-12) const;
};

/// Row-major 16x16 two-qubit channel superoperator over the local index
/// j = (rowpart << 2) | colpart, each part in gate-operand order
/// (operand 0 = low bit). Built once per noise model; applied by the
/// density-matrix simulator in a single kernel pass.
struct SuperOp2 {
  std::array<util::cplx, 256> a{};
};

/// vec_rm(K B K†) = (K (x) conj K) vec_rm(B): one-qubit channel as a 4x4
/// superoperator over (column bit, row bit).
util::Mat4 channel_superop(const KrausChannel1& channel);

/// Two-qubit channel as a 16x16 superoperator (see SuperOp2 indexing).
SuperOp2 channel_superop(const KrausChannel2& channel);

/// Superoperator product: apply `first`, then `second`.
util::Mat4 compose_superops(const util::Mat4& second, const util::Mat4& first);
SuperOp2 compose_superops(const SuperOp2& second, const SuperOp2& first);

/// Embeds two independent 1q channel superoperators into the two-qubit
/// superoperator space: `slot0` acts on gate operand 0, `slot1` on
/// operand 1.
SuperOp2 embed_superops(const util::Mat4& slot0, const util::Mat4& slot1);

/// Depolarizing channel: rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z).
/// `p` is the probability that one uniformly-random non-identity Pauli is
/// applied. Relation to average gate infidelity eps: p = 1.5 * eps.
KrausChannel1 depolarizing1(double p);

/// Two-qubit depolarizing: identity with prob 1-p, each of the 15
/// non-identity Pauli pairs with prob p/15. p = 1.25 * eps for IBM-reported
/// two-qubit gate infidelity eps.
KrausChannel2 depolarizing2(double p);

/// Amplitude damping (T1 decay) with probability gamma of |1> -> |0>.
KrausChannel1 amplitude_damping(double gamma);

/// Phase damping with dephasing probability lambda.
KrausChannel1 phase_damping(double lambda);

/// Thermal relaxation over `duration_ns` with relaxation times T1/T2 (us):
/// amplitude damping gamma = 1 - exp(-t/T1) composed with the pure
/// dephasing needed so off-diagonals decay as exp(-t/T2).
/// Requires T1 > 0, 0 < T2 <= 2*T1. duration 0 returns identity.
KrausChannel1 thermal_relaxation(double duration_ns, double t1_us,
                                 double t2_us);

/// General Pauli channel: I with prob 1-px-py-pz, X/Y/Z with px/py/pz.
KrausChannel1 pauli_channel(double px, double py, double pz);

/// Bit flip = pauli_channel(p, 0, 0); phase flip = pauli_channel(0, 0, p).
KrausChannel1 bit_flip(double p);
KrausChannel1 phase_flip(double p);

/// Coherent error: a deterministic unitary over-rotation RZ(epsilon)
/// (single Kraus op). Models gate miscalibration on real hardware.
KrausChannel1 coherent_z_rotation(double epsilon);

/// Coherent over-rotation about X: RX(epsilon).
KrausChannel1 coherent_x_rotation(double epsilon);

}  // namespace qufi::noise
