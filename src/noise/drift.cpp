#include "noise/drift.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace qufi::noise {

namespace {

double drift_factor(util::Xoshiro256pp& rng, double rel_sigma) {
  return std::clamp(1.0 + rel_sigma * rng.normal(), 0.5, 1.5);
}

}  // namespace

BackendProperties DriftModel::sample(const BackendProperties& nominal,
                                     std::uint64_t job_index) const {
  const std::uint64_t words[] = {seed, job_index, 0xD81FUL};
  util::Xoshiro256pp rng(util::hash_combine(words));

  BackendProperties out = nominal;
  out.name = nominal.name + "_drift" + std::to_string(job_index);
  for (auto& qb : out.qubits) {
    qb.t1_us *= drift_factor(rng, t1_t2_rel_sigma);
    qb.t2_us *= drift_factor(rng, t1_t2_rel_sigma);
    qb.t2_us = std::min(qb.t2_us, 2.0 * qb.t1_us);
    qb.readout.p_meas1_given0 =
        std::clamp(qb.readout.p_meas1_given0 * drift_factor(rng, readout_rel_sigma),
                   0.0, 0.5);
    qb.readout.p_meas0_given1 =
        std::clamp(qb.readout.p_meas0_given1 * drift_factor(rng, readout_rel_sigma),
                   0.0, 0.5);
  }
  for (auto& g1 : out.gate_1q) {
    g1.error = std::clamp(g1.error * drift_factor(rng, gate_error_rel_sigma),
                          0.0, 1.0);
  }
  for (auto& [edge, spec] : out.gate_2q) {
    spec.error = std::clamp(spec.error * drift_factor(rng, gate_error_rel_sigma),
                            0.0, 1.0);
  }
  return out;
}

std::vector<DriftModel::CoherentError> DriftModel::sample_coherent(
    int num_qubits, std::uint64_t job_index) const {
  const std::uint64_t words[] = {seed, job_index, 0xC0EUL};
  util::Xoshiro256pp rng(util::hash_combine(words));
  std::vector<CoherentError> out(static_cast<std::size_t>(num_qubits));
  for (auto& ce : out) {
    ce.z_angle = coherent_sigma_rad * rng.normal();
    ce.x_angle = coherent_sigma_rad * rng.normal();
  }
  return out;
}

}  // namespace qufi::noise
