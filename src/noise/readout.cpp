#include "noise/readout.hpp"

#include <bit>

#include "util/error.hpp"

namespace qufi::noise {

void apply_readout_error(std::vector<double>& clbit_probs,
                         std::span<const int> clbits,
                         std::span<const ReadoutError> errors) {
  require(clbits.size() == errors.size(),
          "apply_readout_error: clbit/error count mismatch");
  require(std::has_single_bit(clbit_probs.size()),
          "apply_readout_error: distribution size must be a power of two");
  const int num_clbits = std::bit_width(clbit_probs.size()) - 1;

  for (std::size_t k = 0; k < clbits.size(); ++k) {
    const int c = clbits[k];
    require(c >= 0 && c < num_clbits, "apply_readout_error: bad clbit index");
    const ReadoutError& e = errors[k];
    if (e.is_trivial()) continue;
    const std::uint64_t bit = 1ULL << c;
    for (std::uint64_t j = 0; j < clbit_probs.size(); ++j) {
      if (j & bit) continue;
      const double p0 = clbit_probs[j];
      const double p1 = clbit_probs[j | bit];
      clbit_probs[j] = p0 * (1.0 - e.p_meas1_given0) + p1 * e.p_meas0_given1;
      clbit_probs[j | bit] =
          p0 * e.p_meas1_given0 + p1 * (1.0 - e.p_meas0_given1);
    }
  }
}

std::uint64_t sample_readout_flips(std::uint64_t outcome,
                                   std::span<const int> clbits,
                                   std::span<const ReadoutError> errors,
                                   util::Xoshiro256pp& rng) {
  require(clbits.size() == errors.size(),
          "sample_readout_flips: clbit/error count mismatch");
  for (std::size_t k = 0; k < clbits.size(); ++k) {
    const ReadoutError& e = errors[k];
    if (e.is_trivial()) continue;
    const std::uint64_t bit = 1ULL << clbits[k];
    const double flip_prob = (outcome & bit) ? e.p_meas0_given1
                                             : e.p_meas1_given0;
    if (rng.uniform() < flip_prob) outcome ^= bit;
  }
  return outcome;
}

}  // namespace qufi::noise
