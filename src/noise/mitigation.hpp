#pragma once

#include <span>
#include <vector>

#include "noise/readout.hpp"

namespace qufi::noise {

/// Readout-error mitigation by confusion-matrix inversion (the standard
/// "measurement calibration" technique, cf. qiskit.utils.mitigation).
///
/// Each clbit's 2x2 confusion matrix
///     [[1-e0, e1], [e0, 1-e1]]
/// (e0 = P(read 1|0), e1 = P(read 0|1)) is inverted and applied to the
/// observed distribution. Inversion can produce small negative
/// quasi-probabilities from sampling noise; these are clipped to zero and
/// the vector renormalized.
///
/// `clbits[i]` is mitigated with `errors[i]`; other clbits are untouched.
/// Throws qufi::Error for non-invertible confusion (e0 + e1 == 1).
std::vector<double> mitigate_readout(std::span<const double> observed,
                                     std::span<const int> clbits,
                                     std::span<const ReadoutError> errors);

}  // namespace qufi::noise
