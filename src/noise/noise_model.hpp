#pragma once

#include <vector>

#include "circuit/gate.hpp"
#include "noise/backend_props.hpp"
#include "noise/channels.hpp"

namespace qufi::noise {

/// Executable noise model: the channel sequences a noisy backend applies
/// around each circuit instruction. Built from BackendProperties, mirroring
/// Qiskit's NoiseModel.from_backend as used in the paper's scenario (2).
///
/// Model:
///  * after each *physical* single-qubit gate (sx, x, h, y, z, s, t, rx,
///    ry, ...): thermal relaxation for the gate duration, then a
///    depolarizing channel with p = 1.5 * reported infidelity;
///  * rz / p / id are virtual (frame changes): no noise;
///  * the generic U gate is the *fault injector* and is exempt from noise —
///    it models the radiation-induced perturbation itself, not a physical
///    gate. (On the simulated-hardware backend fault gates are decomposed
///    into basis gates first and therefore do incur gate noise, just like
///    on the real machine.)
///  * after each two-qubit gate: thermal relaxation on both operands for
///    the edge's duration, then two-qubit depolarizing with
///    p = 1.25 * reported infidelity;
///  * readout: per-qubit assignment confusion on the final distribution.
///
/// `scale` multiplies every error probability and duration-derived rate;
/// scale=0 yields the ideal model (used in ablations).
class NoiseModel {
 public:
  /// Noise-free model (all queries return empty channel sequences).
  static NoiseModel ideal();

  /// Builds the model from a calibration snapshot. `scale` in [0, inf).
  static NoiseModel from_backend(const BackendProperties& props,
                                 double scale = 1.0);

  bool is_ideal() const { return ideal_; }
  int num_qubits() const { return static_cast<int>(relax_1q_.size()); }
  double scale() const { return scale_; }
  const std::string& source_name() const { return source_name_; }

  /// True when gate `kind` incurs single-qubit gate noise.
  static bool is_noisy_1q_gate(circ::GateKind kind);

  /// Channel sequence to apply after a noisy 1q gate on `qubit`.
  /// Empty for ideal models or noise-exempt gates.
  std::vector<const KrausChannel1*> channels_after_1q(circ::GateKind kind,
                                                      int qubit) const;

  /// Noise applied after a two-qubit gate on (a, b).
  struct TwoQubitNoise {
    const KrausChannel1* relax_a = nullptr;  ///< thermal relaxation on a
    const KrausChannel1* relax_b = nullptr;  ///< thermal relaxation on b
    const KrausChannel2* depol = nullptr;    ///< pair depolarizing
  };
  TwoQubitNoise channels_after_2q(int a, int b) const;

  /// Fast path for the density-matrix backend: the full 1q gate-noise
  /// sequence (thermal relaxation then depolarizing) combined into a single
  /// 4x4 superoperator. nullptr when the gate is noise-exempt or the model
  /// is ideal.
  const util::Mat4* superop_after_1q(circ::GateKind kind, int qubit) const;

  /// Combined 2q superoperator (relaxation on both operands + pair
  /// depolarizing) for the *sorted* physical pair (min, max); apply it over
  /// local operand order (min, max). nullptr for ideal models.
  const SuperOp2* superop_after_2q(int a, int b) const;

  /// Thermal relaxation on `qubit` for an arbitrary idle duration; used by
  /// the (optional) idle-noise scheduling extension.
  KrausChannel1 idle_relaxation(int qubit, double duration_ns) const;

  /// Readout error of `qubit` (trivial error for ideal models).
  const ReadoutError& readout(int qubit) const;

  /// Calibrated durations (ns), for the idle-noise scheduling extension.
  /// Zero for ideal models; 2q falls back to the mean edge duration for
  /// uncalibrated pairs.
  double duration_1q_ns(int qubit) const;
  double duration_2q_ns(int a, int b) const;
  double measure_duration_ns() const { return measure_duration_ns_; }

 private:
  NoiseModel() = default;

  bool ideal_ = true;
  double scale_ = 0.0;
  std::string source_name_ = "ideal";
  std::vector<QubitProperties> qubit_props_;

  // Precomputed per-qubit channels for 1q gates.
  std::vector<KrausChannel1> relax_1q_;
  std::vector<KrausChannel1> depol_1q_;
  std::vector<util::Mat4> superop_1q_;  // depol . relax, combined
  // Per edge (key = a * n + b with a < b).
  struct EdgeNoise {
    KrausChannel1 relax_a;
    KrausChannel1 relax_b;
    KrausChannel2 depol;
    SuperOp2 superop;  // depol . (relax_a (x) relax_b), operand order (a, b)
  };
  std::map<std::pair<int, int>, EdgeNoise> edge_noise_;
  // Fallback for 2q gates on uncalibrated pairs (untranspiled circuits).
  EdgeNoise default_edge_noise_;
  std::vector<ReadoutError> readout_;
  ReadoutError trivial_readout_;
  std::vector<double> dur_1q_ns_;
  std::map<std::pair<int, int>, double> dur_2q_ns_;
  double mean_dur_2q_ns_ = 0.0;
  double measure_duration_ns_ = 0.0;
};

}  // namespace qufi::noise
