#include "noise/backend_props.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace qufi::noise {

namespace {

std::pair<int, int> edge_key(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}

/// Builds a backend from parallel arrays; shared by the fake factories.
BackendProperties assemble(
    std::string name, int n, std::vector<std::pair<int, int>> edges,
    std::vector<double> t1, std::vector<double> t2,
    std::vector<double> readout_mean, std::vector<double> err_1q,
    std::vector<double> err_cx, std::vector<double> dur_cx) {
  BackendProperties props;
  props.name = std::move(name);
  props.num_qubits = n;
  for (auto [a, b] : edges) props.coupling.push_back(edge_key(a, b));

  props.qubits.resize(static_cast<std::size_t>(n));
  props.gate_1q.resize(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    auto& qb = props.qubits[static_cast<std::size_t>(q)];
    qb.t1_us = t1[static_cast<std::size_t>(q)];
    qb.t2_us = t2[static_cast<std::size_t>(q)];
    // IBM reports a mean assignment error; real devices read 1->0 more
    // often than 0->1 (relaxation during readout), so split 40/60.
    const double mean = readout_mean[static_cast<std::size_t>(q)];
    qb.readout.p_meas1_given0 = 0.8 * mean;
    qb.readout.p_meas0_given1 = 1.2 * mean;
    auto& g1 = props.gate_1q[static_cast<std::size_t>(q)];
    g1.duration_ns = 35.5;
    g1.error = err_1q[static_cast<std::size_t>(q)];
  }
  for (std::size_t e = 0; e < props.coupling.size(); ++e) {
    props.gate_2q[props.coupling[e]] = GateSpec{dur_cx[e], err_cx[e]};
  }
  props.validate();
  return props;
}

/// Deterministic per-index variation in [lo, hi] used by the synthetic
/// topologies; cycles through a fixed pattern so values are stable across
/// runs without an RNG dependency.
double vary(double lo, double hi, int index) {
  static constexpr double kPattern[] = {0.31, 0.77, 0.12, 0.58, 0.93,
                                        0.44, 0.69, 0.05, 0.86, 0.23};
  const double f = kPattern[static_cast<std::size_t>(index) % 10];
  return lo + (hi - lo) * f;
}

}  // namespace

const GateSpec& BackendProperties::cx_spec(int a, int b) const {
  const auto it = gate_2q.find(edge_key(a, b));
  require(it != gate_2q.end(),
          name + ": no cx calibration for edge (" + std::to_string(a) + ", " +
              std::to_string(b) + ")");
  return it->second;
}

bool BackendProperties::connected(int a, int b) const {
  const auto key = edge_key(a, b);
  return std::find(coupling.begin(), coupling.end(), key) != coupling.end();
}

void BackendProperties::validate() const {
  require(num_qubits > 0, name + ": no qubits");
  require(static_cast<int>(qubits.size()) == num_qubits,
          name + ": qubit property count mismatch");
  require(static_cast<int>(gate_1q.size()) == num_qubits,
          name + ": 1q gate spec count mismatch");
  for (const auto& [a, b] : coupling) {
    require(a >= 0 && b < num_qubits && a < b,
            name + ": bad coupling edge");
    require(gate_2q.contains({a, b}), name + ": edge missing cx calibration");
  }
  for (int q = 0; q < num_qubits; ++q) {
    const auto& qb = qubits[static_cast<std::size_t>(q)];
    require(qb.t1_us > 0 && qb.t2_us > 0,
            name + ": T1/T2 must be positive");
    require(qb.t2_us <= 2.0 * qb.t1_us + 1e-9,
            name + ": T2 must not exceed 2*T1 (qubit " + std::to_string(q) +
                ")");
  }
}

BackendProperties fake_casablanca() {
  return assemble(
      "fake_casablanca", 7,
      {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}},
      /*t1=*/{116.2, 141.8, 162.4, 98.7, 134.5, 155.1, 127.9},
      /*t2=*/{73.4, 106.1, 140.9, 121.3, 53.8, 95.2, 161.0},
      /*readout=*/{0.022, 0.018, 0.031, 0.014, 0.025, 0.019, 0.028},
      /*err_1q=*/{2.3e-4, 1.9e-4, 3.4e-4, 2.8e-4, 2.1e-4, 4.2e-4, 2.6e-4},
      /*err_cx=*/{0.0089, 0.0132, 0.0104, 0.0116, 0.0097, 0.0145},
      /*dur_cx=*/{305.8, 391.1, 355.5, 420.4, 334.2, 469.3});
}

BackendProperties fake_jakarta() {
  return assemble(
      "fake_jakarta", 7,
      {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}},
      /*t1=*/{182.3, 151.6, 109.4, 133.2, 98.1, 168.9, 144.7},
      /*t2=*/{43.5, 118.2, 92.7, 150.4, 112.0, 71.6, 133.8},
      /*readout=*/{0.019, 0.024, 0.035, 0.016, 0.028, 0.021, 0.017},
      /*err_1q=*/{2.0e-4, 2.7e-4, 3.1e-4, 1.8e-4, 3.8e-4, 2.4e-4, 2.2e-4},
      /*err_cx=*/{0.0078, 0.0121, 0.0096, 0.0139, 0.0088, 0.0107},
      /*dur_cx=*/{320.0, 377.6, 341.3, 455.1, 362.7, 412.9});
}

BackendProperties fake_linear(int num_qubits) {
  require(num_qubits >= 1, "fake_linear: need at least one qubit");
  std::vector<std::pair<int, int>> edges;
  std::vector<double> t1, t2, ro, e1, ecx, dcx;
  for (int q = 0; q < num_qubits; ++q) {
    t1.push_back(vary(95.0, 170.0, q));
    t2.push_back(std::min(vary(50.0, 150.0, q + 3), 1.9 * t1.back()));
    ro.push_back(vary(0.012, 0.032, q + 5));
    e1.push_back(vary(1.8e-4, 4.5e-4, q + 7));
  }
  for (int q = 0; q + 1 < num_qubits; ++q) {
    edges.emplace_back(q, q + 1);
    ecx.push_back(vary(0.008, 0.015, q + 2));
    dcx.push_back(vary(300.0, 480.0, q + 4));
  }
  return assemble("fake_linear" + std::to_string(num_qubits), num_qubits,
                  std::move(edges), std::move(t1), std::move(t2),
                  std::move(ro), std::move(e1), std::move(ecx),
                  std::move(dcx));
}

BackendProperties fake_fully_connected(int num_qubits) {
  require(num_qubits >= 1, "fake_fully_connected: need at least one qubit");
  std::vector<std::pair<int, int>> edges;
  std::vector<double> t1, t2, ro, e1, ecx, dcx;
  for (int q = 0; q < num_qubits; ++q) {
    t1.push_back(vary(100.0, 160.0, q + 1));
    t2.push_back(std::min(vary(60.0, 140.0, q + 2), 1.9 * t1.back()));
    ro.push_back(vary(0.014, 0.03, q + 6));
    e1.push_back(vary(2.0e-4, 4.0e-4, q + 8));
  }
  int e = 0;
  for (int a = 0; a < num_qubits; ++a) {
    for (int b = a + 1; b < num_qubits; ++b, ++e) {
      edges.emplace_back(a, b);
      ecx.push_back(vary(0.009, 0.014, e));
      dcx.push_back(vary(310.0, 460.0, e + 3));
    }
  }
  return assemble("fake_full" + std::to_string(num_qubits), num_qubits,
                  std::move(edges), std::move(t1), std::move(t2),
                  std::move(ro), std::move(e1), std::move(ecx),
                  std::move(dcx));
}

BackendProperties fake_grid(int rows, int cols) {
  require(rows >= 1 && cols >= 1, "fake_grid: bad dimensions");
  const int n = rows * cols;
  std::vector<std::pair<int, int>> edges;
  std::vector<double> t1, t2, ro, e1, ecx, dcx;
  for (int q = 0; q < n; ++q) {
    t1.push_back(vary(100.0, 165.0, q + 4));
    t2.push_back(std::min(vary(55.0, 145.0, q + 9), 1.9 * t1.back()));
    ro.push_back(vary(0.013, 0.031, q));
    e1.push_back(vary(1.9e-4, 4.3e-4, q + 2));
  }
  int e = 0;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int q = r * cols + c;
      if (c + 1 < cols) {
        edges.emplace_back(q, q + 1);
        ecx.push_back(vary(0.0085, 0.0148, e));
        dcx.push_back(vary(305.0, 475.0, e + 5));
        ++e;
      }
      if (r + 1 < rows) {
        edges.emplace_back(q, q + cols);
        ecx.push_back(vary(0.0085, 0.0148, e));
        dcx.push_back(vary(305.0, 475.0, e + 5));
        ++e;
      }
    }
  }
  return assemble("fake_grid" + std::to_string(rows) + "x" +
                      std::to_string(cols),
                  n, std::move(edges), std::move(t1), std::move(t2),
                  std::move(ro), std::move(e1), std::move(ecx),
                  std::move(dcx));
}

BackendProperties fake_backend_by_name(const std::string& name,
                                       int min_qubits) {
  if (name == "casablanca") return fake_casablanca();
  if (name == "jakarta") return fake_jakarta();
  if (name == "linear") return fake_linear(std::max(min_qubits, 2));
  if (name == "full") return fake_fully_connected(std::max(min_qubits, 2));
  throw Error("unknown backend device name: " + name +
              " (expected casablanca | jakarta | linear | full)");
}

}  // namespace qufi::noise
