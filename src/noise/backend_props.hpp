#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "noise/readout.hpp"

namespace qufi::noise {

/// Per-qubit calibration data, mirroring the fields IBM publishes daily.
struct QubitProperties {
  double t1_us = 120.0;  ///< spin-lattice relaxation time
  double t2_us = 90.0;   ///< spin-spin coherence time (<= 2*T1)
  ReadoutError readout;  ///< measurement assignment errors
};

/// Calibration of a gate family on a specific qubit or edge.
struct GateSpec {
  double duration_ns = 0.0;
  double error = 0.0;  ///< average gate infidelity as reported by IBM
};

/// Snapshot of a machine's calibration: topology plus per-qubit and
/// per-gate specs. Equivalent of Qiskit's BackendProperties + coupling map;
/// the fake_* factories below play the role of qiskit.test.mock.Fake*.
struct BackendProperties {
  std::string name;
  int num_qubits = 0;
  /// Undirected coupling edges, stored with first < second.
  std::vector<std::pair<int, int>> coupling;
  std::vector<QubitProperties> qubits;
  /// Physical single-qubit gate (sx / x) calibration per qubit. rz is
  /// virtual on IBM hardware: zero duration, zero error.
  std::vector<GateSpec> gate_1q;
  /// Two-qubit (cx) calibration per edge.
  std::map<std::pair<int, int>, GateSpec> gate_2q;
  double measure_duration_ns = 5351.1;

  /// Order-insensitive edge lookup; throws when (a, b) is not an edge.
  const GateSpec& cx_spec(int a, int b) const;

  /// True when (a, b) is a coupling edge (order-insensitive).
  bool connected(int a, int b) const;

  /// Validates internal consistency (sizes, T2 <= 2*T1, edges in range).
  void validate() const;
};

/// 7-qubit IBM Falcon "H" topology:  0-1-2, 1-3, 3-5, 4-5, 5-6.
/// Calibration values modeled on published ibmq_casablanca snapshots.
BackendProperties fake_casablanca();

/// Same topology as Casablanca with the ibmq_jakarta-like calibration used
/// for the paper's Fig. 11 hardware comparison.
BackendProperties fake_jakarta();

/// Line topology 0-1-...-(n-1) with deterministic per-qubit variation.
BackendProperties fake_linear(int num_qubits);

/// Fully-connected topology (no routing needed); for ablations isolating
/// algorithmic effects from SWAP overhead.
BackendProperties fake_fully_connected(int num_qubits);

/// rows x cols grid topology, nearest-neighbor coupling.
BackendProperties fake_grid(int rows, int cols);

/// Resolves a fake device by CLI/manifest name: "casablanca", "jakarta",
/// "linear", or "full" (the latter two sized to at least `min_qubits`,
/// clamped to >= 2). The single source of the name mapping shared by
/// qufi_cli, qufi_shard_plan, and shard manifests — a device added here is
/// immediately plannable and executable everywhere. Throws qufi::Error on
/// unknown names.
BackendProperties fake_backend_by_name(const std::string& name,
                                       int min_qubits);

}  // namespace qufi::noise
