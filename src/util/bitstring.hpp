#pragma once

#include <cstdint>
#include <string>

namespace qufi::util {

/// Bit/bitstring conventions (Qiskit-compatible):
///  * qubit q maps to bit q of the state index (little-endian);
///  * formatted bitstrings print the highest bit first, so qubit 0 is the
///    rightmost character.

/// Formats `value` as a binary string of `bits` characters, MSB first.
std::string to_bitstring(std::uint64_t value, int bits);

/// Parses an MSB-first binary string. Throws qufi::Error on bad input.
std::uint64_t from_bitstring(const std::string& s);

/// Returns bit `bit` of `value`.
inline int get_bit(std::uint64_t value, int bit) {
  return static_cast<int>((value >> bit) & 1ULL);
}

/// Returns `value` with bit `bit` set to `on`.
inline std::uint64_t set_bit(std::uint64_t value, int bit, bool on) {
  return on ? (value | (1ULL << bit)) : (value & ~(1ULL << bit));
}

/// Returns `value` with bit `bit` flipped.
inline std::uint64_t flip_bit(std::uint64_t value, int bit) {
  return value ^ (1ULL << bit);
}

}  // namespace qufi::util
