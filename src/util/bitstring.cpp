#include "util/bitstring.hpp"

#include "util/error.hpp"

namespace qufi::util {

std::string to_bitstring(std::uint64_t value, int bits) {
  require(bits >= 0 && bits <= 64, "to_bitstring: bits out of range");
  std::string s(static_cast<std::size_t>(bits), '0');
  for (int i = 0; i < bits; ++i) {
    if ((value >> i) & 1ULL) s[static_cast<std::size_t>(bits - 1 - i)] = '1';
  }
  return s;
}

std::uint64_t from_bitstring(const std::string& s) {
  require(!s.empty() && s.size() <= 64, "from_bitstring: bad length");
  std::uint64_t value = 0;
  for (char c : s) {
    require(c == '0' || c == '1', "from_bitstring: non-binary character");
    value = (value << 1) | static_cast<std::uint64_t>(c == '1');
  }
  return value;
}

}  // namespace qufi::util
