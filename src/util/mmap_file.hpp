#pragma once

#include <cstddef>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>

namespace qufi::util {

/// Read-only memory-mapped file (POSIX mmap).
///
/// Used by the snapshot cache's load path so a fleet of worker processes
/// reading the same snapshot files shares OS page cache instead of each
/// copying the bytes through a private ifstream buffer. Mapping can fail
/// (exotic filesystems, empty files); callers treat an unopened map as
/// "fall back to ifstream", never as an error.
class MmapFile {
 public:
  MmapFile() = default;
  /// Maps `path` read-only. Check is_open() — construction never throws.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  bool is_open() const { return data_ != nullptr; }
  std::string_view view() const {
    return {static_cast<const char*>(data_), size_};
  }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Zero-copy istream over a string_view (e.g. an MmapFile's view) — adapts
/// mapped bytes to the Backend::load_snapshot(istream) interface without
/// materializing a copy.
class ViewStreambuf : public std::streambuf {
 public:
  explicit ViewStreambuf(std::string_view view) {
    char* begin = const_cast<char*>(view.data());
    setg(begin, begin, begin + view.size());
  }
};

class ViewIstream : private ViewStreambuf, public std::istream {
 public:
  explicit ViewIstream(std::string_view view)
      : ViewStreambuf(view), std::istream(this) {}
};

}  // namespace qufi::util
