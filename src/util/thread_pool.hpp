#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qufi::util {

/// Fixed-size thread pool with a simple task queue.
///
/// Campaigns submit independent injection configs; determinism is guaranteed
/// by the *submitter* (per-config seeds + index-addressed result slots), not
/// by execution order, so a plain queue is sufficient.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 means std::thread::hardware_concurrency(),
  /// clamped to at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Throws qufi::Error after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are captured and the first one is rethrown;
  /// after any failure, lanes stop claiming new iterations (already-claimed
  /// ones still finish), so not every remaining index is attempted.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace qufi::util
