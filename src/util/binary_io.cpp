#include "util/binary_io.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace qufi::util {

namespace {

void append_le(std::string& buf, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

void ByteWriter::u8(std::uint8_t v) { append_le(buf_, v, 1); }
void ByteWriter::u32(std::uint32_t v) { append_le(buf_, v, 4); }
void ByteWriter::u64(std::uint64_t v) { append_le(buf_, v, 8); }
void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void ByteWriter::raw(const void* data, std::size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

std::uint8_t ByteReader::u8() {
  std::uint8_t v = 0;
  raw(&v, 1);
  return v;
}

std::uint32_t ByteReader::u32() {
  unsigned char b[4];
  raw(b, sizeof b);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  unsigned char b[8];
  raw(b, sizeof b);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t size = u64();
  require(size <= remaining(), "binary_io: truncated input");
  std::string out(static_cast<std::size_t>(size), '\0');
  raw(out.data(), out.size());
  return out;
}

void ByteReader::raw(void* out, std::size_t size) {
  require(size <= remaining(), "binary_io: truncated input");
  std::memcpy(out, buf_.data() + pos_, size);
  pos_ += size;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace qufi::util
