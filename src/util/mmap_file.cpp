#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace qufi::util {

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    void* mapped = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_SHARED, fd, 0);
    if (mapped != MAP_FAILED) {
      data_ = mapped;
      size_ = static_cast<std::size_t>(st.st_size);
    }
  }
  ::close(fd);  // the mapping keeps its own reference
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace qufi::util
