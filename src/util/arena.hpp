#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace qufi::util {

/// Monotonic bump allocator for per-batch scratch buffers.
///
/// Batched suffix sweeps churn the same small scratch shapes (response-basis
/// weights, accumulators, diagonal extraction buffers) hundreds of times per
/// injection point; an arena turns that into pointer bumps over a handful of
/// blocks that live for the whole batch. reset() rewinds the cursor without
/// releasing memory, so steady-state batches allocate nothing at all.
///
/// Only trivially-destructible element types are supported (no destructors
/// run at reset), and the arena is single-threaded by design: every batch
/// loop owns its own instance.
class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 1 << 16)
      : first_block_bytes_(first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation; memory is uninitialized. Alignments up to the
  /// default operator-new alignment (16 on the supported toolchains) are
  /// honored; block bases are new[]-aligned, so relative alignment suffices.
  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    for (; block_ < blocks_.size(); ++block_, used_ = 0) {
      Block& b = blocks_[block_];
      const std::size_t start = (used_ + align - 1) & ~(align - 1);
      if (start + bytes <= b.size) {
        used_ = start + bytes;
        return b.data.get() + start;
      }
    }
    // No existing block fits: grow geometrically (and at least enough for
    // this request, so one oversized ask never loops).
    std::size_t size = blocks_.empty() ? first_block_bytes_
                                       : blocks_.back().size * 2;
    while (size < bytes) size *= 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    block_ = blocks_.size() - 1;
    used_ = bytes;
    return blocks_.back().data.get();
  }

  /// Typed span of `n` elements, uninitialized.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    static_assert(std::is_trivially_copyable_v<T>,
                  "Arena memory is raw storage");
    T* p = static_cast<T*>(allocate_bytes(n * sizeof(T), alignof(T)));
    return {p, n};
  }

  /// Typed span of `n` elements, zero-initialized.
  template <typename T>
  std::span<T> alloc_zeroed(std::size_t n) {
    auto s = alloc<T>(n);
    std::memset(static_cast<void*>(s.data()), 0, n * sizeof(T));
    return s;
  }

  /// Rewinds the cursor to the start; keeps every block for reuse.
  void reset() {
    block_ = 0;
    used_ = 0;
  }

  /// Total bytes held across blocks (capacity, not live allocations).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< current block index
  std::size_t used_ = 0;   ///< bytes used in the current block
};

}  // namespace qufi::util
