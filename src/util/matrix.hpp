#pragma once

#include <array>
#include <complex>
#include <string>

namespace qufi::util {

using cplx = std::complex<double>;

/// Dense 2x2 complex matrix in row-major order. Value type; cheap to copy.
/// The workhorse for single-qubit gate algebra.
struct Mat2 {
  std::array<cplx, 4> a{};  // [ a[0] a[1] ; a[2] a[3] ]

  static Mat2 identity();
  static Mat2 zero();

  cplx& operator()(int r, int c) { return a[static_cast<std::size_t>(2 * r + c)]; }
  const cplx& operator()(int r, int c) const {
    return a[static_cast<std::size_t>(2 * r + c)];
  }

  Mat2 operator*(const Mat2& rhs) const;
  Mat2 operator+(const Mat2& rhs) const;
  Mat2 operator-(const Mat2& rhs) const;
  Mat2 operator*(cplx scalar) const;

  /// Conjugate transpose.
  Mat2 adjoint() const;
  cplx determinant() const;
  cplx trace() const;

  /// Frobenius norm of (this - rhs).
  double distance(const Mat2& rhs) const;

  /// True when this is unitary within `tol` (U U† == I).
  bool is_unitary(double tol = 1e-9) const;

  /// True when matrices are elementwise equal within `tol`.
  bool approx_equal(const Mat2& rhs, double tol = 1e-9) const;

  /// True when `this == e^{i phase} rhs` for some real phase, within `tol`.
  bool equal_up_to_phase(const Mat2& rhs, double tol = 1e-9) const;

  std::string to_string() const;
};

/// Dense 4x4 complex matrix in row-major order, for two-qubit gates.
struct Mat4 {
  std::array<cplx, 16> a{};

  static Mat4 identity();
  static Mat4 zero();

  cplx& operator()(int r, int c) { return a[static_cast<std::size_t>(4 * r + c)]; }
  const cplx& operator()(int r, int c) const {
    return a[static_cast<std::size_t>(4 * r + c)];
  }

  Mat4 operator*(const Mat4& rhs) const;
  Mat4 operator+(const Mat4& rhs) const;
  Mat4 operator*(cplx scalar) const;

  Mat4 adjoint() const;
  cplx trace() const;
  double distance(const Mat4& rhs) const;
  bool is_unitary(double tol = 1e-9) const;
  bool approx_equal(const Mat4& rhs, double tol = 1e-9) const;
  bool equal_up_to_phase(const Mat4& rhs, double tol = 1e-9) const;

  std::string to_string() const;
};

/// Kronecker product: (a ⊗ b), with `a` acting on the high bit.
Mat4 kron(const Mat2& a, const Mat2& b);

/// Random single-qubit unitary, Haar-ish (from random U(θ,φ,λ) + phase).
/// Defined in matrix.cpp to keep gate definitions out of util; takes the
/// three Euler angles and a global phase directly.
Mat2 unitary_from_angles(double theta, double phi, double lambda,
                         double global_phase = 0.0);

}  // namespace qufi::util
