#include "util/matrix.hpp"

#include <cmath>
#include <sstream>

namespace qufi::util {

namespace {

// Finds a phase factor z (|z|=1) such that lhs ≈ z * rhs, by scanning for
// the largest-magnitude entry of rhs. Returns false when rhs ~ 0.
template <typename M>
bool phase_between(const M& lhs, const M& rhs, cplx& phase) {
  std::size_t best = 0;
  double best_mag = 0.0;
  for (std::size_t i = 0; i < rhs.a.size(); ++i) {
    const double m = std::abs(rhs.a[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  if (best_mag < 1e-12) return false;
  phase = lhs.a[best] / rhs.a[best];
  const double mag = std::abs(phase);
  if (mag < 1e-12) return false;
  phase /= mag;  // force onto the unit circle
  return true;
}

template <typename M>
bool approx_equal_impl(const M& lhs, const M& rhs, double tol) {
  for (std::size_t i = 0; i < lhs.a.size(); ++i) {
    if (std::abs(lhs.a[i] - rhs.a[i]) > tol) return false;
  }
  return true;
}

template <typename M>
std::string to_string_impl(const M& m, int dim) {
  std::ostringstream os;
  os.precision(4);
  for (int r = 0; r < dim; ++r) {
    os << "[ ";
    for (int c = 0; c < dim; ++c) {
      const cplx v = m(r, c);
      os << "(" << v.real() << (v.imag() < 0 ? "" : "+") << v.imag() << "i) ";
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------- Mat2

Mat2 Mat2::identity() { return Mat2{{cplx{1, 0}, {}, {}, cplx{1, 0}}}; }
Mat2 Mat2::zero() { return Mat2{}; }

Mat2 Mat2::operator*(const Mat2& rhs) const {
  Mat2 out;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c)
      out(r, c) = (*this)(r, 0) * rhs(0, c) + (*this)(r, 1) * rhs(1, c);
  return out;
}

Mat2 Mat2::operator+(const Mat2& rhs) const {
  Mat2 out;
  for (std::size_t i = 0; i < 4; ++i) out.a[i] = a[i] + rhs.a[i];
  return out;
}

Mat2 Mat2::operator-(const Mat2& rhs) const {
  Mat2 out;
  for (std::size_t i = 0; i < 4; ++i) out.a[i] = a[i] - rhs.a[i];
  return out;
}

Mat2 Mat2::operator*(cplx scalar) const {
  Mat2 out;
  for (std::size_t i = 0; i < 4; ++i) out.a[i] = a[i] * scalar;
  return out;
}

Mat2 Mat2::adjoint() const {
  Mat2 out;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) out(r, c) = std::conj((*this)(c, r));
  return out;
}

cplx Mat2::determinant() const { return a[0] * a[3] - a[1] * a[2]; }
cplx Mat2::trace() const { return a[0] + a[3]; }

double Mat2::distance(const Mat2& rhs) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < 4; ++i) sum += std::norm(a[i] - rhs.a[i]);
  return std::sqrt(sum);
}

bool Mat2::is_unitary(double tol) const {
  return (*this * adjoint()).approx_equal(identity(), tol);
}

bool Mat2::approx_equal(const Mat2& rhs, double tol) const {
  return approx_equal_impl(*this, rhs, tol);
}

bool Mat2::equal_up_to_phase(const Mat2& rhs, double tol) const {
  cplx phase;
  if (!phase_between(*this, rhs, phase)) return approx_equal(rhs, tol);
  return approx_equal(rhs * phase, tol);
}

std::string Mat2::to_string() const { return to_string_impl(*this, 2); }

// ---------------------------------------------------------------- Mat4

Mat4 Mat4::identity() {
  Mat4 out;
  for (int i = 0; i < 4; ++i) out(i, i) = cplx{1, 0};
  return out;
}
Mat4 Mat4::zero() { return Mat4{}; }

Mat4 Mat4::operator*(const Mat4& rhs) const {
  Mat4 out;
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) {
      cplx sum{};
      for (int k = 0; k < 4; ++k) sum += (*this)(r, k) * rhs(k, c);
      out(r, c) = sum;
    }
  return out;
}

Mat4 Mat4::operator+(const Mat4& rhs) const {
  Mat4 out;
  for (std::size_t i = 0; i < 16; ++i) out.a[i] = a[i] + rhs.a[i];
  return out;
}

Mat4 Mat4::operator*(cplx scalar) const {
  Mat4 out;
  for (std::size_t i = 0; i < 16; ++i) out.a[i] = a[i] * scalar;
  return out;
}

Mat4 Mat4::adjoint() const {
  Mat4 out;
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) out(r, c) = std::conj((*this)(c, r));
  return out;
}

cplx Mat4::trace() const { return a[0] + a[5] + a[10] + a[15]; }

double Mat4::distance(const Mat4& rhs) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < 16; ++i) sum += std::norm(a[i] - rhs.a[i]);
  return std::sqrt(sum);
}

bool Mat4::is_unitary(double tol) const {
  return (*this * adjoint()).approx_equal(identity(), tol);
}

bool Mat4::approx_equal(const Mat4& rhs, double tol) const {
  return approx_equal_impl(*this, rhs, tol);
}

bool Mat4::equal_up_to_phase(const Mat4& rhs, double tol) const {
  cplx phase;
  if (!phase_between(*this, rhs, phase)) return approx_equal(rhs, tol);
  return approx_equal(rhs * phase, tol);
}

std::string Mat4::to_string() const { return to_string_impl(*this, 4); }

Mat4 kron(const Mat2& a, const Mat2& b) {
  Mat4 out;
  for (int ar = 0; ar < 2; ++ar)
    for (int ac = 0; ac < 2; ++ac)
      for (int br = 0; br < 2; ++br)
        for (int bc = 0; bc < 2; ++bc)
          out(2 * ar + br, 2 * ac + bc) = a(ar, ac) * b(br, bc);
  return out;
}

Mat2 unitary_from_angles(double theta, double phi, double lambda,
                         double global_phase) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  const cplx g = std::exp(cplx{0, global_phase});
  Mat2 u;
  u(0, 0) = g * c;
  u(0, 1) = g * (-std::exp(cplx{0, lambda}) * s);
  u(1, 0) = g * (std::exp(cplx{0, phi}) * s);
  u(1, 1) = g * (std::exp(cplx{0, phi + lambda}) * c);
  return u;
}

}  // namespace qufi::util
