#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace qufi::util {

namespace {

constexpr const char* kGreen = "\x1b[32m";
constexpr const char* kRed = "\x1b[31m";
constexpr const char* kReset = "\x1b[0m";

/// Per-cell glyph: '.' masked / 'o' dubious / '#' silent-error, mirroring the
/// paper's green / white / red classification.
char classify_glyph(double v, const HeatmapOptions& o) {
  if (v < o.low_threshold) return '.';
  if (v > o.high_threshold) return '#';
  return 'o';
}

}  // namespace

std::string ascii_heatmap(const std::vector<std::vector<double>>& rows,
                          std::span<const std::string> row_labels,
                          std::span<const std::string> col_labels,
                          const HeatmapOptions& options) {
  require(rows.size() == row_labels.size(),
          "ascii_heatmap: row label count mismatch");
  std::size_t label_width = 0;
  for (const auto& l : row_labels) label_width = std::max(label_width, l.size());
  label_width = std::max<std::size_t>(label_width, 4);

  const int cw = std::max(options.cell_width, 4);
  std::ostringstream os;

  // Header row.
  os << std::string(label_width + 1, ' ');
  for (const auto& c : col_labels) {
    os << std::setw(cw + 2) << c.substr(0, static_cast<std::size_t>(cw + 1));
  }
  os << '\n';

  for (std::size_t r = 0; r < rows.size(); ++r) {
    require(rows[r].size() == col_labels.size(),
            "ascii_heatmap: column count mismatch in row " + std::to_string(r));
    os << std::setw(static_cast<int>(label_width)) << row_labels[r] << ' ';
    for (double v : rows[r]) {
      std::ostringstream cell;
      cell << classify_glyph(v, options) << std::fixed
           << std::setprecision(cw - 3) << v;
      if (options.use_color) {
        const char* color = v < options.low_threshold  ? kGreen
                            : v > options.high_threshold ? kRed
                                                          : "";
        os << "  " << color << cell.str() << (*color ? kReset : "");
      } else {
        os << "  " << cell.str();
      }
    }
    os << '\n';
  }
  os << std::string(label_width + 1, ' ')
     << "legend: .=masked(<" << options.low_threshold << ")  o=dubious  #=silent-error(>"
     << options.high_threshold << ")\n";
  return os.str();
}

std::string ascii_histogram(std::span<const double> bin_centers,
                            std::span<const double> values, int max_width) {
  require(bin_centers.size() == values.size(),
          "ascii_histogram: size mismatch");
  double peak = 0.0;
  for (double v : values) peak = std::max(peak, v);
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int bar =
        peak > 0 ? static_cast<int>(std::lround(values[i] / peak * max_width))
                 : 0;
    os << std::fixed << std::setprecision(3) << std::setw(7) << bin_centers[i]
       << " | " << std::string(static_cast<std::size_t>(bar), '#') << ' '
       << std::setprecision(4) << values[i] << '\n';
  }
  return os.str();
}

std::string ascii_grouped_bars(std::span<const std::string> categories,
                               std::span<const std::string> series_names,
                               const std::vector<std::vector<double>>& values,
                               double hi, int max_width) {
  require(values.size() == series_names.size(),
          "ascii_grouped_bars: series count mismatch");
  std::size_t name_width = 0;
  for (const auto& s : series_names) name_width = std::max(name_width, s.size());

  std::ostringstream os;
  for (std::size_t c = 0; c < categories.size(); ++c) {
    os << categories[c] << ":\n";
    for (std::size_t s = 0; s < series_names.size(); ++s) {
      require(values[s].size() == categories.size(),
              "ascii_grouped_bars: category count mismatch");
      const double v = values[s][c];
      const int bar = hi > 0
                          ? static_cast<int>(std::lround(
                                std::clamp(v / hi, 0.0, 1.0) * max_width))
                          : 0;
      os << "  " << std::setw(static_cast<int>(name_width)) << series_names[s]
         << " | " << std::string(static_cast<std::size_t>(bar), '=') << ' '
         << std::fixed << std::setprecision(4) << v << '\n';
    }
  }
  return os.str();
}

}  // namespace qufi::util
