#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace qufi::util {

/// Minimal CSV writer with RFC-4180-style quoting.
///
/// Used by campaign result exporters; rows are flushed eagerly so partial
/// campaign output survives interruption.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws qufi::Error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes a header/data row. Fields containing commas, quotes or newlines
  /// are quoted.
  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string> fields);

  /// Convenience: formats arithmetic values with full round-trip precision.
  template <typename T>
  static std::string field(const T& value) {
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
  }

 private:
  std::ofstream out_;
  std::string path_;
};

/// Splits one CSV line into fields (handles quoted fields). Used by tests
/// and the result-import path.
std::vector<std::string> split_csv_line(const std::string& line);

}  // namespace qufi::util
