#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qufi::util {

/// Append-only binary buffer with an explicit little-endian wire format.
///
/// Snapshot serialization and shard artifacts are written through this so
/// the on-disk layout is byte-stable across platforms (the format is defined
/// little-endian regardless of host endianness; see docs/SNAPSHOT_FORMAT.md).
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 binary64, stored as its u64 bit pattern (exact round-trip).
  void f64(double v);
  /// Length-prefixed (u64) byte string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix (caller owns framing).
  void raw(const void* data, std::size_t size);

  const std::string& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Sequential reader over a byte buffer; the mirror of ByteWriter.
///
/// Every accessor throws qufi::Error("binary_io: truncated input") when the
/// buffer runs out, so truncated snapshot files are rejected instead of
/// yielding garbage state.
class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  void raw(void* out, std::size_t size);

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool at_end() const { return pos_ == buf_.size(); }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

/// FNV-1a 64-bit hash — the snapshot container checksum. Not cryptographic;
/// it guards against truncation and bit rot, not tampering.
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace qufi::util
