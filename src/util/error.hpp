#pragma once

#include <stdexcept>
#include <string>

namespace qufi {

/// Base exception for all qufi validation and usage errors.
///
/// Thrown on programmer errors (bad qubit index, malformed QASM, non-CPTP
/// channel, ...). Hot simulation paths never throw; validation happens at
/// construction / configuration boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws qufi::Error with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace qufi
