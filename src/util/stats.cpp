#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qufi::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  require(bins > 0, "Histogram: need at least one bin");
  require(hi > lo, "Histogram: hi must exceed lo");
}

void Histogram::add(double x) {
  auto idx = static_cast<long>((x - lo_) / width_);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
  stats_.add(x);
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::vector<double> Histogram::density() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  const double norm = 1.0 / (static_cast<double>(total_) * width_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = static_cast<double>(counts_[i]) * norm;
  return out;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return std::sqrt(sum / static_cast<double>(xs.size() - 1));
}

}  // namespace qufi::util
