#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/error.hpp"

namespace qufi::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    require(!stopping_, "ThreadPool: submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  const std::size_t lanes = std::min(n, workers_.size());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([&] {
      for (;;) {
        // Once any iteration failed, stop claiming work: a failing campaign
        // aborts promptly instead of burning the rest of the grid.
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qufi::util
