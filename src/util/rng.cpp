#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace qufi::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::span<const std::uint64_t> words) {
  std::uint64_t state = 0x243f6a8885a308d3ULL;  // pi digits
  std::uint64_t acc = 0;
  for (std::uint64_t w : words) {
    state ^= w + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
    acc = splitmix64(state);
  }
  return acc;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256pp::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256pp::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256pp::uniform_int(std::uint64_t bound) {
  require(bound > 0, "uniform_int: bound must be positive");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256pp::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(angle);
  has_cached_normal_ = true;
  return r * std::cos(angle);
}

double Xoshiro256pp::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Xoshiro256pp::discrete(std::span<const double> weights) {
  require(!weights.empty(), "discrete: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "discrete: negative weight");
    total += w;
  }
  require(total > 0.0, "discrete: all weights are zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: return the last index
}

std::vector<std::uint64_t> sample_counts(std::span<const double> probs,
                                         std::uint64_t shots,
                                         Xoshiro256pp& rng) {
  std::vector<std::uint64_t> counts(probs.size(), 0);
  if (shots == 0 || probs.empty()) return counts;

  // Draw `shots` uniforms, sort them, and sweep the CDF once.
  std::vector<double> draws(shots);
  for (auto& d : draws) d = rng.uniform();
  std::sort(draws.begin(), draws.end());

  double cdf = 0.0;
  std::size_t outcome = 0;
  for (double d : draws) {
    while (outcome + 1 < probs.size() && d >= cdf + probs[outcome]) {
      cdf += probs[outcome];
      ++outcome;
    }
    ++counts[outcome];
  }
  return counts;
}

}  // namespace qufi::util
