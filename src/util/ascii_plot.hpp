#pragma once

#include <span>
#include <string>
#include <vector>

namespace qufi::util {

/// Options for terminal heatmap rendering.
struct HeatmapOptions {
  double lo = 0.0;         ///< value mapped to the "best" end of the scale
  double hi = 1.0;         ///< value mapped to the "worst" end of the scale
  bool use_color = false;  ///< emit ANSI colors (off by default: log-friendly)
  /// QVF-style classification thresholds used for the color/per-cell glyph:
  /// value < low_threshold  -> "masked" (paper: green),
  /// value > high_threshold -> "silent error" (paper: red),
  /// otherwise              -> "dubious" (paper: white).
  double low_threshold = 0.45;
  double high_threshold = 0.55;
  int cell_width = 5;  ///< printed width of each numeric cell
};

/// Renders a row-major grid (rows.size() == row_labels.size(), each row has
/// col_labels.size() entries) as an ASCII table with one glyph + number per
/// cell. This is the terminal stand-in for the paper's heatmap figures.
std::string ascii_heatmap(const std::vector<std::vector<double>>& rows,
                          std::span<const std::string> row_labels,
                          std::span<const std::string> col_labels,
                          const HeatmapOptions& options = {});

/// Renders a horizontal-bar histogram: one line per bin with `#` bars scaled
/// to `max_width` characters. `values` are densities or counts.
std::string ascii_histogram(std::span<const double> bin_centers,
                            std::span<const double> values,
                            int max_width = 50);

/// Renders several named series as grouped horizontal bars per category
/// (terminal stand-in for the grouped bar chart of the paper's Fig. 11).
std::string ascii_grouped_bars(std::span<const std::string> categories,
                               std::span<const std::string> series_names,
                               const std::vector<std::vector<double>>& values,
                               double hi = 1.0, int max_width = 40);

}  // namespace qufi::util
