#include "util/csv.hpp"

#include "util/error.hpp"

namespace qufi::util {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path), path_(path) {
  require(out_.good(), "CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  out_ << '\n';
  out_.flush();
  require(out_.good(), "CsvWriter: write failed for " + path_);
}

void CsvWriter::write_row(std::initializer_list<std::string> fields) {
  write_row(std::vector<std::string>(fields));
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // swallow CR of CRLF
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace qufi::util
