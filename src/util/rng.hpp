#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace qufi::util {

/// splitmix64 step: hashes `state` forward and returns the next value.
///
/// Used both as a standalone mixing function (deterministic per-config seeds
/// derived from a campaign seed and a config index) and to seed Xoshiro256pp.
std::uint64_t splitmix64(std::uint64_t& state);

/// Hashes an arbitrary sequence of 64-bit words into a single seed.
/// Order-sensitive. Useful to derive independent, reproducible RNG streams
/// from structured identifiers (campaign seed, config index, shot index...).
std::uint64_t hash_combine(std::span<const std::uint64_t> words);

/// xoshiro256++ PRNG (Blackman & Vigna). Deterministic, fast, and good
/// statistical quality; satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 from a single 64-bit seed.
  explicit Xoshiro256pp(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t uniform_int(std::uint64_t bound);

  /// Standard normal deviate (Box-Muller, one value cached).
  double normal();

  /// Normal deviate with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  /// Linear scan over the CDF; fine for the small distributions used here.
  std::size_t discrete(std::span<const double> weights);

  /// The four raw xoshiro256++ state words. Together with set_state this
  /// lets a caller suspend a stream and resume it later bit-exactly — the
  /// trajectory backend stores per-shot prefix RNG states in snapshots so
  /// extend_snapshot continues the exact draw sequence a from-scratch
  /// prepare_prefix would have produced.
  std::array<std::uint64_t, 4> state() const { return s_; }

  /// Restores a stream captured by state(). Discards any cached Box-Muller
  /// normal deviate, so the resumed stream matches a generator that was
  /// seeded-and-advanced to the same point (all snapshot consumers draw
  /// uniforms only).
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_ = s;
    has_cached_normal_ = false;
  }

 private:
  std::array<std::uint64_t, 4> s_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples `shots` outcomes from probability vector `probs` (assumed to sum
/// to ~1) and returns per-outcome counts. Uses inverse-CDF with a single
/// pass per shot batch: outcomes are drawn by sorted uniform positions, so
/// the cost is O(shots + |probs|) and the result is deterministic in `rng`.
std::vector<std::uint64_t> sample_counts(std::span<const double> probs,
                                         std::uint64_t shots,
                                         Xoshiro256pp& rng);

}  // namespace qufi::util
