#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace qufi::util {

/// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over a closed range [lo, hi]. Values outside the
/// range are clamped into the first/last bin (QVF is bounded so this only
/// absorbs float round-off).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }

  /// Center of bin `i`.
  double bin_center(std::size_t i) const;

  /// Normalized density per bin: count / (total * bin_width), matching the
  /// density histograms of the paper's Fig. 7/10.
  std::vector<double> density() const;

  const RunningStats& stats() const { return stats_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  RunningStats stats_;
};

/// Mean of a span; 0 for empty input.
double mean_of(std::span<const double> xs);

/// Sample standard deviation of a span; 0 when fewer than two values.
double stddev_of(std::span<const double> xs);

}  // namespace qufi::util
