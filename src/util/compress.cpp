#include "util/compress.hpp"

#include <limits>

#include "util/error.hpp"

#if defined(QUFI_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace qufi::util {

#if defined(QUFI_HAVE_ZLIB)

bool deflate_available() { return true; }

std::string deflate_compress(std::string_view raw) {
  require(raw.size() <= std::numeric_limits<uLong>::max(),
          "deflate: input too large");
  uLongf bound = compressBound(static_cast<uLong>(raw.size()));
  std::string out(static_cast<std::size_t>(bound), '\0');
  const int rc = compress2(reinterpret_cast<Bytef*>(out.data()), &bound,
                           reinterpret_cast<const Bytef*>(raw.data()),
                           static_cast<uLong>(raw.size()),
                           Z_DEFAULT_COMPRESSION);
  require(rc == Z_OK, "deflate: compression failed");
  out.resize(static_cast<std::size_t>(bound));
  return out;
}

std::string deflate_decompress(std::string_view compressed,
                               std::size_t raw_size) {
  std::string out(raw_size, '\0');
  uLongf dest_len = static_cast<uLongf>(raw_size);
  const int rc =
      uncompress(reinterpret_cast<Bytef*>(out.data()), &dest_len,
                 reinterpret_cast<const Bytef*>(compressed.data()),
                 static_cast<uLong>(compressed.size()));
  require(rc == Z_OK, "deflate: corrupt compressed payload");
  require(dest_len == raw_size, "deflate: decompressed size mismatch");
  return out;
}

#else  // !QUFI_HAVE_ZLIB

bool deflate_available() { return false; }

std::string deflate_compress(std::string_view) {
  throw Error("deflate: zlib support not built in");
}

std::string deflate_decompress(std::string_view, std::size_t) {
  throw Error("deflate: zlib support not built in");
}

#endif

}  // namespace qufi::util
