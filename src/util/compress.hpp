#pragma once

#include <string>
#include <string_view>

namespace qufi::util {

/// Whether this build carries zlib and can (de)compress deflate streams.
/// When false, deflate_compress/deflate_decompress throw qufi::Error — the
/// snapshot container layer keys on this to fall back to uncompressed
/// payloads (write side) or fail loudly (read side).
bool deflate_available();

/// Compresses `raw` as a zlib stream (RFC 1950). Throws qufi::Error when
/// zlib is unavailable or compression fails.
std::string deflate_compress(std::string_view raw);

/// Inflates a zlib stream produced by deflate_compress. `raw_size` is the
/// exact expected output size (snapshot containers store it next to the
/// codec tag); a stream that inflates to any other size is rejected.
/// Throws qufi::Error on unavailability, corrupt input, or size mismatch.
std::string deflate_decompress(std::string_view compressed,
                               std::size_t raw_size);

}  // namespace qufi::util
