#include "dist/manifest.hpp"

#include <fstream>
#include <sstream>

#include "circuit/gate.hpp"
#include "noise/backend_props.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace qufi::dist {

namespace {

/// 17-significant-digit formatting round-trips IEEE binary64 exactly, so a
/// worker reconstructs bit-identical gate parameters and grid bounds.
std::string g17(double v) { return util::CsvWriter::field(v); }

const char* strategy_name(InjectionStrategy s) {
  return s == InjectionStrategy::OperandsAfterEachGate ? "operands"
                                                       : "moments";
}

InjectionStrategy strategy_from_name(const std::string& name) {
  if (name == "operands") return InjectionStrategy::OperandsAfterEachGate;
  if (name == "moments") return InjectionStrategy::EveryActiveQubitEveryMoment;
  throw Error("manifest: unknown injection strategy: " + name);
}

const char* kind_name(WorkerBackendKind k) {
  return k == WorkerBackendKind::Density ? "density" : "trajectory";
}

WorkerBackendKind kind_from_name(const std::string& name) {
  if (name == "density") return WorkerBackendKind::Density;
  if (name == "trajectory") return WorkerBackendKind::Trajectory;
  throw Error("manifest: unknown backend kind: " + name);
}

}  // namespace

void save_manifest(const ShardManifest& manifest, const std::string& path) {
  std::ofstream out(path);
  require(out.is_open(), "manifest: cannot open for writing: " + path);

  // Written files always use the current format (use_tree is a v2 key,
  // idle_noise a v3 key, adaptive a v4 key), whatever version the in-memory
  // manifest was loaded from.
  out << "qufi-shard-manifest " << 4 << "\n";
  out << "shard " << manifest.shard_index << " " << manifest.shard_count
      << "\n";
  out << "device " << manifest.device << "\n";
  out << "backend_kind " << kind_name(manifest.backend_kind) << "\n";
  out << "opt_level " << manifest.opt_level << "\n";
  out << "strategy " << strategy_name(manifest.strategy) << "\n";
  out << "grid " << g17(manifest.grid.theta_step_deg) << " "
      << g17(manifest.grid.phi_step_deg) << " "
      << g17(manifest.grid.theta_max_deg) << " "
      << g17(manifest.grid.phi_max_deg) << "\n";
  out << "shots " << manifest.shots << "\n";
  out << "seed " << manifest.seed << "\n";
  out << "noise_scale " << g17(manifest.noise_scale) << "\n";
  out << "max_points " << manifest.max_points << "\n";
  out << "double " << (manifest.double_fault ? 1 : 0) << "\n";
  out << "use_checkpoints " << (manifest.use_checkpoints ? 1 : 0) << "\n";
  out << "use_batch " << (manifest.use_batch ? 1 : 0) << "\n";
  out << "use_tree " << (manifest.use_tree ? 1 : 0) << "\n";
  out << "idle_noise " << (manifest.idle_noise ? 1 : 0) << "\n";
  if (manifest.adaptive) {
    out << "adaptive " << g17(manifest.adaptive->max_config_fraction) << " "
        << g17(manifest.adaptive->qvf_ci_target) << " "
        << manifest.adaptive->min_configs_per_point << " "
        << manifest.adaptive->seed << "\n";
  }
  for (const auto& expected : manifest.expected_outputs) {
    out << "expected " << expected << "\n";
  }
  out << "expected_records " << manifest.expected_records << "\n";
  out << "points";
  for (const std::size_t p : manifest.point_indices) out << " " << p;
  out << "\n";

  // Circuit block: name line first (the name may contain spaces), then one
  // line per instruction with exact parameter bits.
  const circ::QuantumCircuit& qc = manifest.circuit;
  out << "circuit " << qc.num_qubits() << " " << qc.num_clbits() << " "
      << qc.size() << "\n";
  out << "name " << qc.name() << "\n";
  for (const auto& instr : qc.instructions()) {
    out << instr.name() << " " << instr.qubits.size();
    for (const int q : instr.qubits) out << " " << q;
    out << " " << instr.clbits.size();
    for (const int c : instr.clbits) out << " " << c;
    out << " " << instr.params.size();
    for (const double p : instr.params) out << " " << g17(p);
    out << "\n";
  }
  out << "end\n";
  require(out.good(), "manifest: write failed: " + path);
}

ShardManifest load_manifest(const std::string& path) {
  std::ifstream in(path);
  require(in.is_open(), "manifest: cannot open: " + path);

  ShardManifest m;
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& why) -> void {
    throw Error("manifest: " + path + ":" + std::to_string(line_no) + ": " +
                why);
  };

  bool saw_header = false, saw_circuit = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;

    if (!saw_header) {
      if (key != "qufi-shard-manifest") fail("missing manifest header");
      std::uint32_t version = 0;
      if (!(ls >> version)) fail("bad header");
      if (version < 1 || version > 4) fail("unsupported manifest version");
      m.format_version = version;
      saw_header = true;
      continue;
    }

    if (key == "shard") {
      if (!(ls >> m.shard_index >> m.shard_count)) fail("bad shard line");
    } else if (key == "device") {
      if (!(ls >> m.device)) fail("bad device line");
    } else if (key == "backend_kind") {
      std::string kind;
      if (!(ls >> kind)) fail("bad backend_kind line");
      m.backend_kind = kind_from_name(kind);
    } else if (key == "opt_level") {
      if (!(ls >> m.opt_level)) fail("bad opt_level line");
    } else if (key == "strategy") {
      std::string s;
      if (!(ls >> s)) fail("bad strategy line");
      m.strategy = strategy_from_name(s);
    } else if (key == "grid") {
      if (!(ls >> m.grid.theta_step_deg >> m.grid.phi_step_deg >>
            m.grid.theta_max_deg >> m.grid.phi_max_deg)) {
        fail("bad grid line");
      }
    } else if (key == "shots") {
      if (!(ls >> m.shots)) fail("bad shots line");
    } else if (key == "seed") {
      if (!(ls >> m.seed)) fail("bad seed line");
    } else if (key == "noise_scale") {
      if (!(ls >> m.noise_scale)) fail("bad noise_scale line");
    } else if (key == "max_points") {
      if (!(ls >> m.max_points)) fail("bad max_points line");
    } else if (key == "double") {
      int v = 0;
      if (!(ls >> v)) fail("bad double line");
      m.double_fault = v != 0;
    } else if (key == "use_checkpoints") {
      int v = 0;
      if (!(ls >> v)) fail("bad use_checkpoints line");
      m.use_checkpoints = v != 0;
    } else if (key == "use_batch") {
      int v = 0;
      if (!(ls >> v)) fail("bad use_batch line");
      m.use_batch = v != 0;
    } else if (key == "use_tree") {
      int v = 0;
      if (!(ls >> v)) fail("bad use_tree line");
      m.use_tree = v != 0;
    } else if (key == "idle_noise") {
      int v = 0;
      if (!(ls >> v)) fail("bad idle_noise line");
      m.idle_noise = v != 0;
    } else if (key == "adaptive") {
      AdaptivePolicy policy;
      if (!(ls >> policy.max_config_fraction >> policy.qvf_ci_target >>
            policy.min_configs_per_point >> policy.seed)) {
        fail("bad adaptive line");
      }
      m.adaptive = policy;
    } else if (key == "expected") {
      std::string bits;
      if (!(ls >> bits)) fail("bad expected line");
      m.expected_outputs.push_back(bits);
    } else if (key == "expected_records") {
      if (!(ls >> m.expected_records)) fail("bad expected_records line");
    } else if (key == "points") {
      std::size_t p = 0;
      while (ls >> p) m.point_indices.push_back(p);
    } else if (key == "circuit") {
      int nq = 0, nc = 0;
      std::size_t count = 0;
      if (!(ls >> nq >> nc >> count)) fail("bad circuit line");
      circ::QuantumCircuit qc(nq, nc);
      if (!std::getline(in, line)) fail("missing circuit name line");
      ++line_no;
      if (line.rfind("name ", 0) != 0) fail("missing circuit name line");
      qc.set_name(line.substr(5));
      for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(in, line)) fail("truncated circuit block");
        ++line_no;
        std::istringstream is(line);
        std::string gate;
        std::size_t n = 0;
        circ::Instruction instr;
        if (!(is >> gate >> n)) fail("bad instruction line");
        instr.kind = circ::gate_from_name(gate);
        instr.qubits.resize(n);
        for (auto& q : instr.qubits) {
          if (!(is >> q)) fail("bad instruction qubits");
        }
        if (!(is >> n)) fail("bad instruction line");
        instr.clbits.resize(n);
        for (auto& c : instr.clbits) {
          if (!(is >> c)) fail("bad instruction clbits");
        }
        if (!(is >> n)) fail("bad instruction line");
        instr.params.resize(n);
        for (auto& p : instr.params) {
          if (!(is >> p)) fail("bad instruction params");
        }
        qc.append(std::move(instr));
      }
      if (!std::getline(in, line) || line != "end") {
        ++line_no;
        fail("missing end marker");
      }
      ++line_no;
      m.circuit = std::move(qc);
      saw_circuit = true;
    } else {
      fail("unknown key: " + key);
    }
  }
  require(saw_header, "manifest: empty file: " + path);
  require(saw_circuit, "manifest: missing circuit block: " + path);
  require(m.shard_count >= 1 && m.shard_index < m.shard_count,
          "manifest: shard index/count out of range: " + path);
  return m;
}

CampaignSpec manifest_to_spec(const ShardManifest& manifest) {
  CampaignSpec spec;
  spec.circuit = manifest.circuit;
  spec.expected_outputs = manifest.expected_outputs;
  spec.backend = noise::fake_backend_by_name(manifest.device,
                                             manifest.circuit.num_qubits());
  spec.transpile_options.optimization_level = manifest.opt_level;
  spec.grid = manifest.grid;
  spec.strategy = manifest.strategy;
  spec.shots = manifest.shots;
  spec.seed = manifest.seed;
  spec.noise_scale = manifest.noise_scale;
  spec.max_points = manifest.max_points;
  spec.use_checkpoints = manifest.use_checkpoints;
  spec.use_batch = manifest.use_batch;
  spec.use_tree = manifest.use_tree;
  spec.idle_noise = manifest.idle_noise;
  spec.adaptive = manifest.adaptive;
  return spec;
}

std::vector<ShardManifest> make_manifests(const CampaignSpec& spec,
                                          const std::string& device,
                                          WorkerBackendKind kind,
                                          const ShardPlan& plan,
                                          bool double_fault) {
  require(!(double_fault && spec.adaptive),
          "make_manifests: adaptive estimation supports single-fault "
          "campaigns only");
  // The planner computes the full-campaign record total once (for double
  // campaigns this costs a transpile — here, in the coordinator, instead
  // of once per worker) and stamps it into every manifest. Adaptive
  // campaigns stamp 0 ("unknown"): how many configs each point evaluates is
  // only decided while the estimator runs, so the merger's completeness
  // check degrades to per-point coverage instead of a record total.
  const std::uint64_t expected_records =
      spec.adaptive
          ? 0
          : (double_fault
                 ? double_campaign_executions(
                       campaign_point_neighbor_pairs(spec).size(), spec.grid)
                 : single_campaign_executions(plan.total_points, spec.grid));
  std::vector<ShardManifest> manifests;
  manifests.reserve(plan.shards.size());
  for (const ShardAssignment& shard : plan.shards) {
    ShardManifest m;
    m.shard_index = shard.shard_index;
    m.shard_count = plan.num_shards;
    m.device = device;
    m.backend_kind = kind;
    m.circuit = spec.circuit;
    m.expected_outputs = spec.expected_outputs;
    m.opt_level = spec.transpile_options.optimization_level;
    m.strategy = spec.strategy;
    m.grid = spec.grid;
    m.shots = spec.shots;
    m.seed = spec.seed;
    m.noise_scale = spec.noise_scale;
    m.max_points = spec.max_points;
    m.double_fault = double_fault;
    m.use_checkpoints = spec.use_checkpoints;
    m.use_batch = spec.use_batch;
    m.use_tree = spec.use_tree;
    m.idle_noise = spec.idle_noise;
    m.adaptive = spec.adaptive;
    m.point_indices = shard.point_indices;
    m.expected_records = expected_records;
    manifests.push_back(std::move(m));
  }
  return manifests;
}

}  // namespace qufi::dist
