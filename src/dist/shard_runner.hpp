#pragma once

#include <cstdint>
#include <string>

#include "dist/manifest.hpp"
#include "dist/partial.hpp"

namespace qufi::dist {

/// Worker-side execution knobs that are not part of the campaign identity
/// (they never change the computed records, only how fast they appear).
struct ShardRunOptions {
  /// Directory of serialized prefix snapshots; empty = always re-simulate
  /// prefixes. Shared across workers/retries, keyed to circuit bytes.
  std::string snapshot_dir;
  /// Store cache snapshots deflate-compressed (container v4). Purely a
  /// storage choice: keys and loaded states are codec-independent, so
  /// compressed and plain workers can share one snapshot_dir. Ignored
  /// without zlib support or snapshot_dir.
  bool compress_snapshots = false;
  /// Worker threads; 0 = hardware concurrency.
  int threads = 0;
  /// Stream the shard's records into this columnar QUFIPART file as points
  /// complete (docs/RESULT_FORMAT.md), instead of accumulating them in
  /// memory: the returned partial then carries metadata and the point table
  /// but an *empty* records vector, and worker memory stays at O(in-flight
  /// points) whatever the grid size. Empty = accumulate in the partial as
  /// before. The file is a complete shard partial (read_partial_any /
  /// merge_result_files consume it directly) written via temp + rename.
  std::string columnar_output_path;
  /// Write the columnar partial in WriteMode::Live (in place, per-block
  /// flush) instead of temp + rename, so a dispatcher's Tail-mode reader
  /// can merge the shard's completed points while it still runs — the
  /// live-progress path of docs/DISPATCHER.md. Ignored without
  /// columnar_output_path.
  bool columnar_live = false;
};

/// What one shard execution produced.
struct ShardRunOutput {
  PartialResult partial;
  /// Snapshot-cache counters (both 0 when no snapshot_dir was given).
  std::uint64_t snapshot_hits = 0;
  std::uint64_t snapshot_misses = 0;
  /// Size of the streamed columnar partial (0 unless columnar_output_path
  /// was given).
  std::uint64_t partial_bytes = 0;
  /// Records streamed into the columnar partial (partial.records stays
  /// empty in that mode; 0 unless columnar_output_path was given).
  std::uint64_t streamed_records = 0;
};

/// Executes one shard manifest end to end: rebuilds the campaign spec,
/// constructs the worker backend (density or trajectory, optionally behind
/// a snapshot cache), runs the subset campaign over the shard's points, and
/// packages the partial result (including the global expected-record count
/// the merger checks completeness against).
///
/// Deterministic and idempotent: re-running the same manifest reproduces
/// the same partial bit-for-bit, so retries after a crash are safe and the
/// merger can treat duplicate shard outputs as confirmations.
ShardRunOutput run_shard(const ShardManifest& manifest,
                         const ShardRunOptions& options = {});

}  // namespace qufi::dist
