#pragma once

#include <cstdint>
#include <string>

#include "dist/manifest.hpp"
#include "dist/partial.hpp"

namespace qufi::dist {

/// Worker-side execution knobs that are not part of the campaign identity
/// (they never change the computed records, only how fast they appear).
struct ShardRunOptions {
  /// Directory of serialized prefix snapshots; empty = always re-simulate
  /// prefixes. Shared across workers/retries, keyed to circuit bytes.
  std::string snapshot_dir;
  /// Worker threads; 0 = hardware concurrency.
  int threads = 0;
};

/// What one shard execution produced.
struct ShardRunOutput {
  PartialResult partial;
  /// Snapshot-cache counters (both 0 when no snapshot_dir was given).
  std::uint64_t snapshot_hits = 0;
  std::uint64_t snapshot_misses = 0;
};

/// Executes one shard manifest end to end: rebuilds the campaign spec,
/// constructs the worker backend (density or trajectory, optionally behind
/// a snapshot cache), runs the subset campaign over the shard's points, and
/// packages the partial result (including the global expected-record count
/// the merger checks completeness against).
///
/// Deterministic and idempotent: re-running the same manifest reproduces
/// the same partial bit-for-bit, so retries after a crash are safe and the
/// merger can treat duplicate shard outputs as confirmations.
ShardRunOutput run_shard(const ShardManifest& manifest,
                         const ShardRunOptions& options = {});

}  // namespace qufi::dist
