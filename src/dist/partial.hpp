#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/result_io.hpp"
#include "core/results.hpp"

namespace qufi::dist {

/// One shard's output on disk: the campaign metadata (shard-local
/// executions), the full global point table (identical across shards, so
/// the merger can cross-check without re-transpiling), and the shard's
/// records with global point indices. Rows are CSV (first field = row kind)
/// so partials stay greppable; values use %.17g, which round-trips doubles
/// exactly — a merged result carries the same bits the worker computed.
struct PartialResult {
  /// v1: initial format. v2: adds the `idle_noise` metadata row (absent in
  /// v1 files, defaulting to false), so the merger can refuse to combine
  /// idle-noise and plain shards. v3: adds the `adaptive` metadata row
  /// (absent = exhaustive), carrying the estimation policy the merger
  /// cross-checks across shards.
  std::uint32_t format_version = 3;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Global record count of the *full* campaign (all shards), computed by
  /// every worker from the manifest — the merger's completeness check.
  std::uint64_t expected_total_records = 0;

  CampaignMetadata meta;
  std::vector<InjectionPoint> points;
  std::vector<InjectionRecord> records;
};

/// Writes one shard's partial-result file.
///
/// \param path     Output file (truncated).
/// \param partial  Shard output; `meta.executions` is shard-local.
void write_partial(const std::string& path, const PartialResult& partial);

/// Parses a file written by write_partial. Throws qufi::Error with a
/// line-tagged reason on malformed input or an unsupported version.
PartialResult read_partial(const std::string& path);

/// The columnar QUFIPART header equivalent of `partial`'s text rows —
/// shard identity, expected total, metadata, point table. Shared by
/// write_partial_columnar and the worker's streaming output path (which
/// opens a resio::ResultWriter on it before any record exists).
resio::ResultFileHeader columnar_partial_header(const PartialResult& partial);

/// Writes one shard's partial as a binary columnar QUFIPART file
/// (docs/RESULT_FORMAT.md) — the at-scale sibling of write_partial. The
/// stored doubles are the exact bit patterns of the in-memory records, so
/// text (%.17g) and columnar partials merge to identical results.
void write_partial_columnar(const std::string& path,
                            const PartialResult& partial);

/// Reads either partial flavor: binary columnar (sniffed via the QUFIPART
/// magic) or text. Throws qufi::Error as read_partial / resio::ResultReader
/// do.
PartialResult read_partial_any(const std::string& path);

}  // namespace qufi::dist
