#include "dist/snapshot_cache.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "backend/snapshot_io.hpp"
#include "util/binary_io.hpp"
#include "util/compress.hpp"
#include "util/error.hpp"
#include "util/mmap_file.hpp"

namespace qufi::dist {

namespace fs = std::filesystem;

SnapshotCachingBackend::SnapshotCachingBackend(backend::Backend& inner,
                                               std::string cache_dir,
                                               std::string key_context,
                                               bool compress)
    : inner_(inner),
      cache_dir_(std::move(cache_dir)),
      compress_(compress && util::deflate_available()) {
  require(!cache_dir_.empty(), "snapshot cache: empty cache directory");
  // The inner backend's name encodes its family and noise-model source
  // ("density_matrix(fake_casablanca)"), so two devices with identical
  // coupling (and therefore identical transpiled circuit bytes) still key
  // to different files; key_context carries whatever else the caller knows
  // changes the evolved state (e.g. noise_scale).
  context_hash_ = util::fnv1a64(inner_.name() + "\x1f" + key_context);
  std::error_code ec;
  fs::create_directories(cache_dir_, ec);
  require(!ec, "snapshot cache: cannot create directory: " + cache_dir_);
}

std::string SnapshotCachingBackend::name() const { return inner_.name(); }

bool SnapshotCachingBackend::supports_checkpointing() const {
  return inner_.supports_checkpointing();
}

std::uint64_t SnapshotCachingBackend::snapshot_schedule_digest(
    const circ::QuantumCircuit& circuit, std::size_t prefix_length) const {
  return inner_.snapshot_schedule_digest(circuit, prefix_length);
}

backend::ExecutionResult SnapshotCachingBackend::run(
    const circ::QuantumCircuit& circuit, std::uint64_t shots,
    std::uint64_t seed) {
  return inner_.run(circuit, shots, seed);
}

namespace {

/// Key = execution identity (backend name + context) + exact circuit
/// bytes + every prepare_prefix argument + the backend's schedule digest
/// at the split (non-zero only for moment-aware idle-noise snapshots,
/// where the evolved state also depends on the sealed moment schedule), so
/// a cache directory can be shared by campaigns over different circuits,
/// devices, noise scales, seeds or scheduler versions without ever serving
/// the wrong state. extend_snapshot uses the same key at its target split
/// (derivation is bit-identical to a from-scratch prepare, so the tree
/// path collapses out of the key).
fs::path snapshot_key_path(const std::string& cache_dir,
                           std::uint64_t context_hash,
                           const circ::QuantumCircuit& circuit,
                           std::size_t prefix_length, std::uint64_t shots_hint,
                           std::uint64_t snapshot_seed,
                           std::uint64_t schedule_digest) {
  const std::uint64_t words[] = {context_hash,
                                 backend::snapio::circuit_fingerprint(circuit),
                                 prefix_length, shots_hint, snapshot_seed,
                                 schedule_digest};
  char key[64];
  std::snprintf(key, sizeof key, "snap_%016" PRIx64 ".qsnap",
                util::fnv1a64({reinterpret_cast<const char*>(words),
                               sizeof words}));
  return fs::path(cache_dir) / key;
}

}  // namespace

backend::PrefixSnapshotPtr SnapshotCachingBackend::prepare_prefix(
    const circ::QuantumCircuit& circuit, std::size_t prefix_length,
    std::uint64_t shots_hint, std::uint64_t snapshot_seed) {
  if (!inner_.supports_checkpointing()) {
    return inner_.prepare_prefix(circuit, prefix_length, shots_hint,
                                 snapshot_seed);
  }

  const fs::path path = snapshot_key_path(
      cache_dir_, context_hash_, circuit, prefix_length, shots_hint,
      snapshot_seed,
      inner_.snapshot_schedule_digest(circuit, prefix_length));

  if (auto snapshot = load_cached(path.string())) {
    hits_.fetch_add(1);
    return snapshot;
  }

  auto snapshot = inner_.prepare_prefix(circuit, prefix_length, shots_hint,
                                        snapshot_seed);
  misses_.fetch_add(1);
  persist(*snapshot, path.string());
  return snapshot;
}

backend::PrefixSnapshotPtr SnapshotCachingBackend::extend_snapshot(
    const backend::PrefixSnapshot& parent, std::size_t from_gate,
    std::size_t to_gate, std::uint64_t shots_hint,
    std::uint64_t snapshot_seed) {
  const circ::QuantumCircuit* circuit = parent.circuit();
  if (!inner_.supports_checkpointing() || circuit == nullptr) {
    return inner_.extend_snapshot(parent, from_gate, to_gate, shots_hint,
                                  snapshot_seed);
  }
  // Validate the chain contract up front so a bad call fails the same way
  // on cache hits and misses.
  require(from_gate == parent.prefix_length(),
          "extend_snapshot: from_gate does not match the parent prefix");
  require(to_gate >= from_gate && to_gate <= circuit->size(),
          "extend_snapshot: to_gate out of range");

  const fs::path path = snapshot_key_path(
      cache_dir_, context_hash_, *circuit, to_gate, shots_hint, snapshot_seed,
      inner_.snapshot_schedule_digest(*circuit, to_gate));
  if (auto snapshot = load_cached(path.string())) {
    hits_.fetch_add(1);
    return snapshot;
  }

  auto snapshot = inner_.extend_snapshot(parent, from_gate, to_gate,
                                         shots_hint, snapshot_seed);
  misses_.fetch_add(1);
  persist(*snapshot, path.string());
  return snapshot;
}

backend::PrefixSnapshotPtr SnapshotCachingBackend::load_cached(
    const std::string& path) {
  try {
    util::MmapFile map(path);
    if (map.is_open()) {
      util::ViewIstream in(map.view());
      return inner_.load_snapshot(in);
    }
    // Mapping unavailable (file vanished, empty, exotic filesystem): a
    // plain stream read is still correct, just private-buffered.
    std::ifstream in(path, std::ios::binary);
    if (in.is_open()) return inner_.load_snapshot(in);
  } catch (const Error&) {
    // Corrupt/truncated file (killed worker mid-write without the atomic
    // rename, bit rot): the caller recomputes.
  }
  return nullptr;
}

void SnapshotCachingBackend::persist(const backend::PrefixSnapshot& snapshot,
                                     const std::string& path) {
  // Write-then-rename keeps readers from ever seeing a partial file; the
  // pid + counter temp name keeps concurrent writers of the same key —
  // other threads AND other worker processes sharing the directory — from
  // clobbering each other mid-write (content is identical either way:
  // snapshots are deterministic in the key).
  const fs::path target(path);
  const fs::path temp = path + ".tmp" + std::to_string(::getpid()) + "." +
                        std::to_string(temp_counter_.fetch_add(1));
  {
    std::ofstream out(temp, std::ios::binary);
    if (!out.is_open()) return;  // cache dir vanished: still correct
    bool ok = false;
    if (compress_) {
      // The inner backend always frames uncompressed; re-frame its
      // container with the deflate codec. The payload bytes (and so the
      // loaded state) are identical — only the storage encoding changes.
      std::ostringstream plain;
      ok = inner_.save_snapshot(snapshot, plain);
      if (ok) {
        std::istringstream in(std::move(plain).str());
        const auto container = backend::snapio::read_container(in);
        backend::snapio::write_container(
            out, container.kind, container.payload,
            backend::snapio::PayloadCodec::Deflate);
        ok = out.good();
      }
    } else {
      ok = inner_.save_snapshot(snapshot, out);
    }
    if (!ok) {
      out.close();
      std::error_code ec;
      fs::remove(temp, ec);
      return;  // inner backend has no serializable form
    }
  }
  std::error_code ec;
  fs::rename(temp, target, ec);
  if (ec) fs::remove(temp, ec);
}

backend::ExecutionResult SnapshotCachingBackend::run_suffix(
    const backend::PrefixSnapshot& snapshot,
    std::span<const circ::Instruction> injected, std::uint64_t shots,
    std::uint64_t seed) {
  return inner_.run_suffix(snapshot, injected, shots, seed);
}

std::vector<backend::ExecutionResult> SnapshotCachingBackend::run_suffix_batch(
    const backend::PrefixSnapshot& snapshot,
    std::span<const backend::SuffixConfig> configs, std::uint64_t shots) {
  return inner_.run_suffix_batch(snapshot, configs, shots);
}

bool SnapshotCachingBackend::save_snapshot(
    const backend::PrefixSnapshot& snapshot, std::ostream& out) const {
  return inner_.save_snapshot(snapshot, out);
}

backend::PrefixSnapshotPtr SnapshotCachingBackend::load_snapshot(
    std::istream& in) const {
  return inner_.load_snapshot(in);
}

}  // namespace qufi::dist
