#include "dist/partial.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace qufi::dist {

namespace {

/// Round-trip double formatting, shared with every other result exporter.
std::string g17(double v) { return util::CsvWriter::field(v); }

/// Full-round-trip double parsing. std::stod throws out_of_range for
/// *subnormal* results (glibc strtod flags ERANGE on underflow), but
/// subnormals are legitimate %.17g round-trips of computed QVF values — so
/// parse via strtod directly and reject only true overflow.
double to_double(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || end == nullptr || *end != '\0') {
    throw std::invalid_argument("to_double: " + s);
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    throw std::out_of_range("to_double: " + s);
  }
  return v;
}

std::uint64_t to_u64(const std::string& s) { return std::stoull(s); }
int to_int(const std::string& s) { return std::stoi(s); }

}  // namespace

void write_partial(const std::string& path, const PartialResult& partial) {
  util::CsvWriter csv(path);
  const CampaignMetadata& m = partial.meta;
  // Always written as the current format (the idle_noise row is a v2 row,
  // the adaptive row a v3 one), whatever version the in-memory partial was
  // loaded from.
  csv.write_row({"qufi_partial", "3"});
  csv.write_row({"shard", std::to_string(partial.shard_index),
                 std::to_string(partial.shard_count)});
  csv.write_row({"expected_total_records",
                 std::to_string(partial.expected_total_records)});
  csv.write_row({"circuit", m.circuit_name});
  csv.write_row({"backend", m.backend_name});
  csv.write_row({"dims", std::to_string(m.circuit_qubits),
                 std::to_string(m.transpiled_gates)});
  csv.write_row({"grid", g17(m.grid.theta_step_deg), g17(m.grid.phi_step_deg),
                 g17(m.grid.theta_max_deg), g17(m.grid.phi_max_deg)});
  csv.write_row({"run", std::to_string(m.shots), std::to_string(m.seed),
                 m.double_fault ? "1" : "0"});
  csv.write_row({"idle_noise", m.idle_noise ? "1" : "0"});
  csv.write_row({"adaptive", m.adaptive ? "1" : "0",
                 g17(m.adaptive_policy.max_config_fraction),
                 g17(m.adaptive_policy.qvf_ci_target),
                 std::to_string(m.adaptive_policy.min_configs_per_point),
                 std::to_string(m.adaptive_policy.seed)});
  csv.write_row({"faultfree_qvf", g17(m.faultfree_qvf)});
  csv.write_row({"work", std::to_string(m.executions),
                 std::to_string(m.injections)});
  for (std::size_t i = 0; i < partial.points.size(); ++i) {
    const InjectionPoint& p = partial.points[i];
    csv.write_row({"point", std::to_string(i), std::to_string(p.instr_index),
                   std::to_string(p.qubit), std::to_string(p.logical_qubit),
                   std::to_string(p.moment)});
  }
  for (const InjectionRecord& r : partial.records) {
    csv.write_row({"record", std::to_string(r.point_index),
                   std::to_string(r.theta_index), std::to_string(r.phi_index),
                   std::to_string(r.neighbor_qubit),
                   std::to_string(r.theta1_index),
                   std::to_string(r.phi1_index), g17(r.qvf), g17(r.pa),
                   g17(r.pb)});
  }
}

PartialResult read_partial(const std::string& path) {
  std::ifstream in(path);
  require(in.is_open(), "partial: cannot open: " + path);

  PartialResult out;
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& why) -> void {
    throw Error("partial: " + path + ":" + std::to_string(line_no) + ": " +
                why);
  };

  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = util::split_csv_line(line);
    if (fields.empty()) continue;
    const std::string& kind = fields[0];
    const auto want = [&](std::size_t n) {
      if (fields.size() < n + 1) fail("too few fields for " + kind + " row");
    };
    try {
      if (!saw_header) {
        if (kind != "qufi_partial") fail("missing qufi_partial header");
        want(1);
        const std::uint64_t version = to_u64(fields[1]);
        if (version < 1 || version > 3) fail("unsupported partial version");
        out.format_version = static_cast<std::uint32_t>(version);
        saw_header = true;
      } else if (kind == "shard") {
        want(2);
        out.shard_index = static_cast<std::uint32_t>(to_u64(fields[1]));
        out.shard_count = static_cast<std::uint32_t>(to_u64(fields[2]));
      } else if (kind == "expected_total_records") {
        want(1);
        out.expected_total_records = to_u64(fields[1]);
      } else if (kind == "circuit") {
        want(1);
        out.meta.circuit_name = fields[1];
      } else if (kind == "backend") {
        want(1);
        out.meta.backend_name = fields[1];
      } else if (kind == "dims") {
        want(2);
        out.meta.circuit_qubits = to_int(fields[1]);
        out.meta.transpiled_gates = to_int(fields[2]);
      } else if (kind == "grid") {
        want(4);
        out.meta.grid.theta_step_deg = to_double(fields[1]);
        out.meta.grid.phi_step_deg = to_double(fields[2]);
        out.meta.grid.theta_max_deg = to_double(fields[3]);
        out.meta.grid.phi_max_deg = to_double(fields[4]);
      } else if (kind == "run") {
        want(3);
        out.meta.shots = to_u64(fields[1]);
        out.meta.seed = to_u64(fields[2]);
        out.meta.double_fault = fields[3] == "1";
      } else if (kind == "idle_noise") {
        want(1);
        out.meta.idle_noise = fields[1] == "1";
      } else if (kind == "adaptive") {
        want(5);
        out.meta.adaptive = fields[1] == "1";
        out.meta.adaptive_policy.max_config_fraction = to_double(fields[2]);
        out.meta.adaptive_policy.qvf_ci_target = to_double(fields[3]);
        out.meta.adaptive_policy.min_configs_per_point =
            static_cast<std::uint32_t>(to_u64(fields[4]));
        out.meta.adaptive_policy.seed = to_u64(fields[5]);
      } else if (kind == "faultfree_qvf") {
        want(1);
        out.meta.faultfree_qvf = to_double(fields[1]);
      } else if (kind == "work") {
        want(2);
        out.meta.executions = to_u64(fields[1]);
        out.meta.injections = to_u64(fields[2]);
      } else if (kind == "point") {
        want(5);
        if (to_u64(fields[1]) != out.points.size()) {
          fail("point rows out of order");
        }
        InjectionPoint p;
        p.instr_index = static_cast<std::size_t>(to_u64(fields[2]));
        p.qubit = to_int(fields[3]);
        p.logical_qubit = to_int(fields[4]);
        p.moment = to_int(fields[5]);
        out.points.push_back(p);
      } else if (kind == "record") {
        want(9);
        InjectionRecord r;
        r.point_index = static_cast<std::uint32_t>(to_u64(fields[1]));
        r.theta_index = to_int(fields[2]);
        r.phi_index = to_int(fields[3]);
        r.neighbor_qubit = to_int(fields[4]);
        r.theta1_index = to_int(fields[5]);
        r.phi1_index = to_int(fields[6]);
        r.qvf = to_double(fields[7]);
        r.pa = to_double(fields[8]);
        r.pb = to_double(fields[9]);
        out.records.push_back(r);
      } else {
        fail("unknown row kind: " + kind);
      }
    } catch (const std::invalid_argument&) {
      fail("malformed number");
    } catch (const std::out_of_range&) {
      fail("number out of range");
    }
  }
  require(saw_header, "partial: empty file: " + path);
  require(out.shard_count >= 1 && out.shard_index < out.shard_count,
          "partial: shard index/count out of range: " + path);
  for (const InjectionRecord& r : out.records) {
    require(r.point_index < out.points.size(),
            "partial: record references unknown point: " + path);
  }
  return out;
}

resio::ResultFileHeader columnar_partial_header(const PartialResult& partial) {
  resio::ResultFileHeader header;
  header.shard_index = partial.shard_index;
  header.shard_count = partial.shard_count;
  header.expected_total_records = partial.expected_total_records;
  header.meta = partial.meta;
  header.points = partial.points;
  return header;
}

void write_partial_columnar(const std::string& path,
                            const PartialResult& partial) {
  resio::write_result_file(path, columnar_partial_header(partial),
                           partial.records, partial.meta.executions,
                           partial.meta.injections);
}

PartialResult read_partial_any(const std::string& path) {
  if (!resio::is_result_file(path)) return read_partial(path);
  resio::LoadedResultFile file = resio::read_result_file(path);
  PartialResult out;
  out.shard_index = file.header.shard_index;
  out.shard_count = file.header.shard_count;
  out.expected_total_records = file.header.expected_total_records;
  out.meta = file.header.meta;
  out.meta.executions = file.executions;
  out.meta.injections = file.injections;
  out.points = file.header.points;
  out.records = std::move(file.records);
  require(out.shard_count >= 1 && out.shard_index < out.shard_count,
          "partial: shard index/count out of range: " + path);
  return out;
}

}  // namespace qufi::dist
