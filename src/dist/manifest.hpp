#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "dist/shard_plan.hpp"

namespace qufi::dist {

/// Which execution backend a shard worker builds. The density backend is
/// the paper's exact noise-model scenario; the trajectory backend is the
/// sampled Monte-Carlo alternative (requires shots > 0).
enum class WorkerBackendKind {
  Density,
  Trajectory,
};

/// A self-contained description of one shard: everything a worker process
/// on another machine needs to execute its points bit-compatibly with the
/// single-process campaign — the full campaign definition (circuit embedded
/// instruction-by-instruction with exact parameter bits, device name, grid,
/// seeds, engine knobs) plus this shard's global point indices.
///
/// Manifests are plain text (one `key value...` line each, circuit block at
/// the end); the format is versioned and documented in docs/SHARDING.md.
struct ShardManifest {
  /// v1: initial format. v2: adds the optional `use_tree` engine knob.
  /// v3: adds the optional `idle_noise` execution-mode knob. v4: adds the
  /// optional `adaptive` estimation-policy key. Absent keys default (so
  /// v1-v3 files load unchanged, with adaptive off).
  std::uint32_t format_version = 4;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;

  /// Fake-device name the worker rebuilds BackendProperties from:
  /// "casablanca", "jakarta", "linear", or "full" (the qufi_cli names;
  /// linear/full size themselves from the circuit width).
  std::string device = "casablanca";
  WorkerBackendKind backend_kind = WorkerBackendKind::Density;

  circ::QuantumCircuit circuit;
  std::vector<std::string> expected_outputs;

  int opt_level = 3;
  InjectionStrategy strategy = InjectionStrategy::OperandsAfterEachGate;
  FaultParamGrid grid;
  std::uint64_t shots = 0;
  std::uint64_t seed = 0x51754649;
  double noise_scale = 1.0;
  std::size_t max_points = 0;
  bool double_fault = false;
  bool use_checkpoints = true;
  bool use_batch = true;
  bool use_tree = true;
  /// Moment-scheduled idle-qubit relaxation (density backend only; the
  /// trajectory family has no idle mode and run_shard rejects the combo).
  bool idle_noise = false;
  /// Adaptive estimation policy (CampaignSpec::adaptive). Every worker of
  /// a campaign must carry the identical policy — the merger rejects
  /// mixing adaptive and exhaustive shards or differing policies.
  std::optional<AdaptivePolicy> adaptive;

  /// This shard's global injection-point indices (strictly increasing).
  std::vector<std::size_t> point_indices;

  /// Record count of the *full* campaign (all shards), stamped by the
  /// planner so workers can emit the merger's completeness check without
  /// re-deriving it (for double campaigns that would cost a transpile).
  /// 0 = unknown; run_shard then computes it locally.
  std::uint64_t expected_records = 0;
};

/// Writes `manifest` to `path`. Throws qufi::Error on I/O failure.
void save_manifest(const ShardManifest& manifest, const std::string& path);

/// Parses a manifest written by save_manifest. Throws qufi::Error with a
/// line-tagged reason on malformed input or an unsupported version.
ShardManifest load_manifest(const std::string& path);

/// Rebuilds the CampaignSpec a worker executes: circuit, device properties
/// (resolved from `device`), grid, seeds, and engine knobs. The execution
/// backend itself (density vs trajectory, snapshot caching) is chosen by
/// run_shard, not the spec.
CampaignSpec manifest_to_spec(const ShardManifest& manifest);

/// Builds per-shard manifests from a campaign definition and a plan.
///
/// \param spec        The campaign being distributed.
/// \param device      Fake-device name (must match spec.backend; the
///                    manifest stores the name, not the properties).
/// \param kind        Worker backend family.
/// \param plan        Output of plan_shards / plan_campaign_shards.
/// \param double_fault True to run the double-fault campaign per shard.
/// \return One manifest per shard, in shard-index order.
std::vector<ShardManifest> make_manifests(const CampaignSpec& spec,
                                          const std::string& device,
                                          WorkerBackendKind kind,
                                          const ShardPlan& plan,
                                          bool double_fault);

}  // namespace qufi::dist
