#pragma once

#include <cstdint>
#include <span>

#include "core/results.hpp"
#include "dist/partial.hpp"

namespace qufi::dist {

/// Knobs for recombining shard outputs.
struct MergeOptions {
  /// Expected record count of the full campaign; 0 skips the completeness
  /// check (merge_partial_results then defaults it to the partials' own
  /// expected_total_records).
  std::uint64_t expected_records = 0;
  /// Accept an incomplete merge (lost shard recovery): suppresses the
  /// completeness check entirely, including the partials' default.
  bool allow_incomplete = false;
};

/// Recombines shard results into the full-campaign result.
///
/// Deterministic by construction: records are reassembled in ascending
/// global point-index order (the single-process enumeration order), not in
/// shard arrival order — merging the same shard set in any permutation
/// yields the identical CampaignResult, and on the density backend the
/// records are bit-identical to the one-process run (trajectory: identical
/// under common random numbers, i.e. when every shard was produced with
/// the same manifest seed).
///
/// Shards are idempotent retry units: when two inputs both carry a point
/// (a retried shard re-ran it), the duplicates must agree bit-exactly and
/// one copy is kept; conflicting duplicates throw (they indicate divergent
/// workers, not a retry).
///
/// \param shards  One CampaignResult per shard (from
///                run_*_fault_campaign_subset). Metadata and point tables
///                must agree across shards; `meta.executions` may differ
///                (it is shard-local).
/// \param options See MergeOptions.
/// \return The recombined result; meta.executions/injections are recomputed
///         from the merged record set.
/// \throws qufi::Error on empty input, metadata/point-table mismatch,
///         conflicting duplicate points, or a failed completeness check.
CampaignResult merge_shard_results(std::span<const CampaignResult> shards,
                                   const MergeOptions& options = {});

/// File-level merge: validates the PartialResult headers (matching shard
/// counts, consistent expected totals) and merges, defaulting the
/// completeness check to the partials' expected_total_records.
CampaignResult merge_partial_results(std::span<const PartialResult> parts,
                                     const MergeOptions& options = {});

}  // namespace qufi::dist
