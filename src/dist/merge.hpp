#pragma once

#include <cstdint>
#include <span>

#include "core/results.hpp"
#include "dist/partial.hpp"

namespace qufi::dist {

/// Knobs for recombining shard outputs.
struct MergeOptions {
  /// Expected record count of the full campaign; 0 skips the completeness
  /// check (merge_partial_results then defaults it to the partials' own
  /// expected_total_records).
  std::uint64_t expected_records = 0;
  /// Accept an incomplete merge (lost shard recovery): suppresses the
  /// completeness check entirely, including the partials' default.
  bool allow_incomplete = false;
};

/// Recombines shard results into the full-campaign result.
///
/// Deterministic by construction: records are reassembled in ascending
/// global point-index order (the single-process enumeration order), not in
/// shard arrival order — merging the same shard set in any permutation
/// yields the identical CampaignResult, and on the density backend the
/// records are bit-identical to the one-process run (trajectory: identical
/// under common random numbers, i.e. when every shard was produced with
/// the same manifest seed).
///
/// Shards are idempotent retry units: when two inputs both carry a point
/// (a retried shard re-ran it), the duplicates must agree bit-exactly and
/// one copy is kept; conflicting duplicates throw (they indicate divergent
/// workers, not a retry).
///
/// \param shards  One CampaignResult per shard (from
///                run_*_fault_campaign_subset). Metadata and point tables
///                must agree across shards; `meta.executions` may differ
///                (it is shard-local).
/// \param options See MergeOptions.
/// \return The recombined result; meta.executions/injections are recomputed
///         from the merged record set.
/// \throws qufi::Error on empty input, metadata/point-table mismatch,
///         conflicting duplicate points, or a failed completeness check.
CampaignResult merge_shard_results(std::span<const CampaignResult> shards,
                                   const MergeOptions& options = {});

/// File-level merge: validates the PartialResult headers (matching shard
/// counts, consistent expected totals) and merges, defaulting the
/// completeness check to the partials' expected_total_records.
CampaignResult merge_partial_results(std::span<const PartialResult> parts,
                                     const MergeOptions& options = {});

/// Which injection points ended a merge with zero records. For single-fault
/// campaigns that is exactly the not-yet-merged set (every point sweeps a
/// non-empty grid); double-fault points with no coupled active neighbor
/// legitimately appear here too, so the report is a diagnostic, not a
/// failure by itself. Dispatchers and humans read the same thing: how many
/// points are outstanding and which global indices to look at first.
struct MissingPointReport {
  std::uint64_t count = 0;
  /// First few missing global point indices (at most `max_examples` of the
  /// finder call), ascending.
  std::vector<std::uint32_t> first;

  /// " (3 points have no records; first missing: 4, 7, 11)" — empty string
  /// when nothing is missing. Appended to merge errors and CLI summaries.
  std::string describe() const;
};

/// Scans `records` (any order) against a `num_points`-entry point table.
MissingPointReport find_missing_points(std::size_t num_points,
                                       std::span<const InjectionRecord> records,
                                       std::size_t max_examples = 8);

/// What a streaming file merge did (for perf reporting and CLI summaries).
struct StreamingMergeStats {
  std::uint64_t merged_records = 0;  ///< records written to the output
  /// Records dropped as bit-exact duplicates of an earlier shard's (retried
  /// shards re-execute points; identical output confirms the retry).
  std::uint64_t duplicate_records = 0;
  std::uint64_t input_bytes = 0;  ///< total size of the input files
  /// Points that contributed zero records to the merged output (see
  /// MissingPointReport) — the requeue-aware diagnostic behind
  /// --allow-partial: a lost shard shows up here by its point indices.
  MissingPointReport missing;
};

/// Streaming k-way merge over columnar QUFIPART partials, writing the
/// merged result as one columnar file (shard 0-of-1). Never materializes
/// the campaign: each input contributes at most one decoded block at a time
/// (peak memory O(shards x block), not O(campaign)), and the output
/// streams through a resio::ResultWriter. Semantics match
/// merge_partial_results — order-independent (ascending global point
/// order), duplicate-tolerant for bit-exact retries, completeness checked
/// against expected_total_records — with conflicts diagnosed by shard and
/// point ("shard 2 and shard 5 disagree on point 17"). Throws qufi::Error
/// on any header mismatch, conflict, or failed completeness check.
StreamingMergeStats merge_result_files(std::span<const std::string> inputs,
                                       const std::string& out_path,
                                       const MergeOptions& options = {});

/// Same streaming merge, but exporting straight to campaign CSV — the rows
/// are byte-identical to CampaignResult::write_csv on the merged result
/// (shared preamble/row helpers, same canonical point order). Written via
/// temp file + rename like every result artifact.
StreamingMergeStats merge_result_files_to_csv(
    std::span<const std::string> inputs, const std::string& csv_path,
    const MergeOptions& options = {});

/// One input of an incremental (prefix) merge: a columnar partial that may
/// still be growing, plus the global point indices its shard owns (from the
/// shard's manifest). Ownership is what lets the merge distinguish "this
/// point's records have not arrived yet" from "this point has none".
struct PrefixMergeInput {
  std::string path;
  /// Strictly increasing global point indices assigned to the shard that
  /// writes (or wrote) this file. Multiple inputs may carry the same owned
  /// set: retries of one shard all own the same points.
  std::vector<std::size_t> owned_points;
};

/// What merge_result_prefix saw and produced.
struct PrefixMergeResult {
  /// Points [0, frontier) are final: every one of them is either present in
  /// a complete block of some input or owned by a *sealed* input (which
  /// proves it has zero records). The merged prefix below covers exactly
  /// these points and is bit-identical to the first records of the final
  /// merged output — and it only ever grows as inputs grow.
  std::uint32_t frontier = 0;
  std::uint32_t total_points = 0;
  bool complete = false;  ///< frontier == total_points and some input seen
  std::uint64_t sealed_inputs = 0;
  /// Inputs skipped because not even their header could be read yet (a live
  /// writer that has not flushed it, or a worker killed that early). They
  /// contribute nothing; corruption *inside* a readable file still throws.
  std::uint64_t unreadable_inputs = 0;
  /// The monotone merge prefix: records for points [0, frontier) in
  /// ascending point order, duplicates verified bit-exactly and dropped
  /// (first input wins, as in merge_result_files).
  std::vector<InjectionRecord> records;
  /// Header metadata — from a sealed input when one exists (its
  /// faultfree_qvf is the real value), otherwise from the first readable
  /// input (faultfree_qvf is then still the streaming placeholder).
  /// executions/injections are recomputed over the prefix records.
  CampaignMetadata meta;
  /// Global point table (identical across inputs), so callers can render
  /// the prefix as CSV rows without reopening any input.
  std::vector<InjectionPoint> points;
};

/// Bit-exact equivalence of two *sealed* columnar partials: same campaign
/// identity (metadata + point table) and identical record sequences in
/// ascending point order, doubles compared by bit pattern. Block layout may
/// differ (completion order varies run to run) — equivalence is over the
/// records, which is what merging consumes. This is the dispatcher's
/// duplicate-completion check: a requeued shard's original worker reporting
/// late must have produced the same bits as the accepted retry. Throws
/// qufi::Error when either file cannot be read as a sealed partial.
bool result_files_equivalent(const std::string& a, const std::string& b);

/// Incremental k-way merge over possibly still-growing columnar partials —
/// the dispatcher's live QVF view (docs/DISPATCHER.md). Opens every input
/// in ReadMode::Tail, computes the resolved frontier from complete blocks
/// plus sealed-input ownership, and merges exactly the points below it.
/// Successive calls over growing files yield prefixes that extend each
/// other bit-exactly and converge to the final merged record sequence once
/// every shard's output is sealed. Throws qufi::Error on metadata/point
/// table mismatches between readable inputs, on conflicting duplicates, or
/// on corruption inside available bytes.
PrefixMergeResult merge_result_prefix(std::span<const PrefixMergeInput> inputs);

}  // namespace qufi::dist
