#pragma once

#include <cstdint>
#include <span>

#include "core/results.hpp"
#include "dist/partial.hpp"

namespace qufi::dist {

/// Knobs for recombining shard outputs.
struct MergeOptions {
  /// Expected record count of the full campaign; 0 skips the completeness
  /// check (merge_partial_results then defaults it to the partials' own
  /// expected_total_records).
  std::uint64_t expected_records = 0;
  /// Accept an incomplete merge (lost shard recovery): suppresses the
  /// completeness check entirely, including the partials' default.
  bool allow_incomplete = false;
};

/// Recombines shard results into the full-campaign result.
///
/// Deterministic by construction: records are reassembled in ascending
/// global point-index order (the single-process enumeration order), not in
/// shard arrival order — merging the same shard set in any permutation
/// yields the identical CampaignResult, and on the density backend the
/// records are bit-identical to the one-process run (trajectory: identical
/// under common random numbers, i.e. when every shard was produced with
/// the same manifest seed).
///
/// Shards are idempotent retry units: when two inputs both carry a point
/// (a retried shard re-ran it), the duplicates must agree bit-exactly and
/// one copy is kept; conflicting duplicates throw (they indicate divergent
/// workers, not a retry).
///
/// \param shards  One CampaignResult per shard (from
///                run_*_fault_campaign_subset). Metadata and point tables
///                must agree across shards; `meta.executions` may differ
///                (it is shard-local).
/// \param options See MergeOptions.
/// \return The recombined result; meta.executions/injections are recomputed
///         from the merged record set.
/// \throws qufi::Error on empty input, metadata/point-table mismatch,
///         conflicting duplicate points, or a failed completeness check.
CampaignResult merge_shard_results(std::span<const CampaignResult> shards,
                                   const MergeOptions& options = {});

/// File-level merge: validates the PartialResult headers (matching shard
/// counts, consistent expected totals) and merges, defaulting the
/// completeness check to the partials' expected_total_records.
CampaignResult merge_partial_results(std::span<const PartialResult> parts,
                                     const MergeOptions& options = {});

/// What a streaming file merge did (for perf reporting and CLI summaries).
struct StreamingMergeStats {
  std::uint64_t merged_records = 0;  ///< records written to the output
  /// Records dropped as bit-exact duplicates of an earlier shard's (retried
  /// shards re-execute points; identical output confirms the retry).
  std::uint64_t duplicate_records = 0;
  std::uint64_t input_bytes = 0;  ///< total size of the input files
};

/// Streaming k-way merge over columnar QUFIPART partials, writing the
/// merged result as one columnar file (shard 0-of-1). Never materializes
/// the campaign: each input contributes at most one decoded block at a time
/// (peak memory O(shards x block), not O(campaign)), and the output
/// streams through a resio::ResultWriter. Semantics match
/// merge_partial_results — order-independent (ascending global point
/// order), duplicate-tolerant for bit-exact retries, completeness checked
/// against expected_total_records — with conflicts diagnosed by shard and
/// point ("shard 2 and shard 5 disagree on point 17"). Throws qufi::Error
/// on any header mismatch, conflict, or failed completeness check.
StreamingMergeStats merge_result_files(std::span<const std::string> inputs,
                                       const std::string& out_path,
                                       const MergeOptions& options = {});

/// Same streaming merge, but exporting straight to campaign CSV — the rows
/// are byte-identical to CampaignResult::write_csv on the merged result
/// (shared preamble/row helpers, same canonical point order). Written via
/// temp file + rename like every result artifact.
StreamingMergeStats merge_result_files_to_csv(
    std::span<const std::string> inputs, const std::string& csv_path,
    const MergeOptions& options = {});

}  // namespace qufi::dist
