#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/campaign.hpp"
#include "core/injection.hpp"

/// \dir src/dist
/// Distribution layer: turns one campaign into shardable work. Campaigns
/// are embarrassingly parallel across injection points (the paper sweeps
/// every (qubit, gate, theta, phi) config independently), so the unit of
/// distribution is the point — each shard owns whole points, evolves their
/// prefixes (or loads serialized snapshots), sweeps their grids, and emits
/// partial results that merge deterministically. See docs/SHARDING.md.

namespace qufi::dist {

/// How injection points are split across shards.
enum class ShardPolicy {
  /// Contiguous, near-equal point-count ranges (shard k takes points
  /// [k*N/M, (k+1)*N/M)). Cheapest to reason about; ignores that early
  /// points carry longer suffixes than late ones.
  PointCount,
  /// Greedy longest-processing-time balancing on the per-point cost model
  /// (suffix length dominates a batched grid sweep). Deterministic:
  /// stable-sorted by descending cost, ties broken by point index, assigned
  /// to the least-loaded shard (ties to the lowest shard index).
  CostWeighted,
  /// Cost balancing aware of the prefix-tree engine: each shard runs its
  /// own chain over its points, so a point's prefix is not an independent
  /// cost — adding a point to a shard costs its suffix sweep plus only the
  /// prefix *extension* beyond the shard's deepest split so far. Points are
  /// visited in ascending split order (the chain order) and greedily
  /// assigned to the shard where the incremental cost, added to the
  /// shard's load, is smallest (ties to the lowest shard index).
  /// Deterministic; degenerates to suffix-cost balancing when every shard
  /// already reaches similar depth.
  TreeAware,
};

/// The points one worker executes, in strictly increasing global order (the
/// order run_single_fault_campaign_subset requires).
struct ShardAssignment {
  std::uint32_t shard_index = 0;
  std::vector<std::size_t> point_indices;
  /// Sum of point_cost over the assignment (both policies fill it in, so
  /// plans can report imbalance either way).
  std::uint64_t estimated_cost = 0;
};

/// A full partition of a campaign's injection points: every point appears
/// in exactly one shard; shards may be empty when num_shards > num_points.
struct ShardPlan {
  std::uint32_t num_shards = 1;
  std::size_t total_points = 0;
  ShardPolicy policy = ShardPolicy::CostWeighted;
  std::vector<ShardAssignment> shards;
};

/// Cost model for one injection point: 1 (the prefix snapshot) plus the
/// number of instructions after the split, which is what every config of
/// the point's grid sweep replays. Units are arbitrary; only ratios matter.
/// `sweep_scale` scales the suffix term: adaptive campaigns sweep only
/// adaptive_config_budget / num_configs of each point's grid, which shrinks
/// the sweep cost relative to the fixed prefix work (see
/// plan_campaign_shards, which derives the scale from the spec's policy).
std::uint64_t point_cost(const InjectionPoint& point, std::size_t circuit_size,
                         double sweep_scale = 1.0);

/// Tree-aware incremental cost of adding `point` to a shard whose deepest
/// split so far is `shard_max_split`: the suffix sweep (as in point_cost)
/// plus the prefix gates the shard's chain must still extend through to
/// reach this split (zero when the shard is already at least this deep —
/// split-deduplicated points ride along for free).
std::uint64_t tree_point_cost(const InjectionPoint& point,
                              std::size_t circuit_size,
                              std::size_t shard_max_split,
                              double sweep_scale = 1.0);

/// Partitions `points` (the global enumeration, in order) into
/// `num_shards` deterministic shards.
///
/// \param points       Global injection-point table (campaign_points order).
/// \param circuit_size Instruction count of the transpiled circuit the
///                     points index into (cost-model input).
/// \param num_shards   Must be >= 1.
/// \param policy       Split policy; see ShardPolicy.
/// \param sweep_scale  Fraction of each point's grid actually swept
///                     (see point_cost); 1.0 = exhaustive.
/// \return A plan covering every point exactly once. Deterministic: the
///         same inputs always produce the same plan, so re-planning after
///         a coordinator crash reproduces identical shard manifests.
ShardPlan plan_shards(std::span<const InjectionPoint> points,
                      std::size_t circuit_size, std::uint32_t num_shards,
                      ShardPolicy policy = ShardPolicy::CostWeighted,
                      double sweep_scale = 1.0);

/// Convenience: transpiles `spec`, enumerates + strides its points exactly
/// as the campaign would, and plans over them. When spec.adaptive is set,
/// the per-point sweep costs are scaled by the policy's config budget over
/// the full grid size, so adaptive budgets slot straight into ShardPolicy
/// balancing (prefix work keeps its full weight — it does not shrink with
/// the budget).
ShardPlan plan_campaign_shards(const CampaignSpec& spec,
                               std::uint32_t num_shards,
                               ShardPolicy policy = ShardPolicy::CostWeighted);

}  // namespace qufi::dist
