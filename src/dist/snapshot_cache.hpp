#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "backend/backend.hpp"

namespace qufi::dist {

/// Backend decorator that persists prefix snapshots to a directory.
///
/// prepare_prefix first tries to load a previously serialized snapshot for
/// the same (circuit, prefix_length, shots_hint, snapshot_seed) key; on a
/// miss it delegates to the inner backend and saves the result. Everything
/// else forwards unchanged, so a campaign pointed at this wrapper (via
/// CampaignSpec::backend_override) transparently reuses prefix work across
/// worker processes and across retries of the same shard — the
/// "resume from serialized snapshots" mode of qufi_shard_worker.
///
/// Cache keys include a fingerprint of the circuit bytes, the inner
/// backend's name (which encodes the backend family and noise-model
/// source), and the caller's `key_context` (anything else that changes the
/// evolved state, e.g. the campaign's noise scale) — so a stale or shared
/// directory can never satisfy a lookup for different physics; corrupt or
/// truncated files fail validation on load and are silently recomputed.
/// Saves write to a process-unique temp file and atomically rename into
/// place, so concurrent workers sharing one directory (same-content keys)
/// race benignly.
///
/// Thread-safety: matches the inner backend's (campaign pools call
/// prepare_prefix concurrently; the counters are atomic).
class SnapshotCachingBackend final : public backend::Backend {
 public:
  /// \param inner       Backend that actually executes (not owned; must
  ///                    outlive this wrapper).
  /// \param cache_dir   Directory for snapshot files (created if absent).
  /// \param key_context Extra execution identity folded into every cache
  ///                    key — pass everything that alters evolved state
  ///                    but is not visible in the circuit bytes or the
  ///                    inner backend's name (e.g. noise_scale).
  /// \param compress    Store snapshot payloads deflate-compressed (the
  ///                    container v4 codec flag). Ignored — with an
  ///                    uncompressed fallback — when the build carries no
  ///                    zlib. Loads always accept both codecs, so
  ///                    compressed and plain workers can share a
  ///                    directory; cache keys are codec-independent.
  SnapshotCachingBackend(backend::Backend& inner, std::string cache_dir,
                         std::string key_context = {}, bool compress = false);

  std::string name() const override;
  bool supports_checkpointing() const override;
  std::uint64_t snapshot_schedule_digest(
      const circ::QuantumCircuit& circuit,
      std::size_t prefix_length) const override;

  backend::ExecutionResult run(const circ::QuantumCircuit& circuit,
                               std::uint64_t shots,
                               std::uint64_t seed) override;

  backend::PrefixSnapshotPtr prepare_prefix(
      const circ::QuantumCircuit& circuit, std::size_t prefix_length,
      std::uint64_t shots_hint = 0, std::uint64_t snapshot_seed = 0) override;

  /// Tree-derived snapshots share the prepare_prefix key space: because
  /// extend_snapshot is bit-identical to a from-scratch prepare at the same
  /// split, a derived snapshot's tree path collapses to its canonical
  /// (circuit, to_gate, shots_hint, snapshot_seed) key — so an extension
  /// can be served by a file another worker wrote via prepare_prefix, and
  /// vice versa. On a miss the inner backend extends the parent and the
  /// result is persisted under that canonical key. Requires the parent to
  /// expose its circuit (all bundled snapshot kinds do); otherwise the
  /// extension runs uncached.
  backend::PrefixSnapshotPtr extend_snapshot(
      const backend::PrefixSnapshot& parent, std::size_t from_gate,
      std::size_t to_gate, std::uint64_t shots_hint = 0,
      std::uint64_t snapshot_seed = 0) override;

  backend::ExecutionResult run_suffix(
      const backend::PrefixSnapshot& snapshot,
      std::span<const circ::Instruction> injected, std::uint64_t shots,
      std::uint64_t seed) override;

  std::vector<backend::ExecutionResult> run_suffix_batch(
      const backend::PrefixSnapshot& snapshot,
      std::span<const backend::SuffixConfig> configs,
      std::uint64_t shots) override;

  bool save_snapshot(const backend::PrefixSnapshot& snapshot,
                     std::ostream& out) const override;
  backend::PrefixSnapshotPtr load_snapshot(std::istream& in) const override;

  /// Snapshots served from disk so far.
  std::uint64_t hits() const { return hits_.load(); }
  /// Snapshots computed by the inner backend (and saved when possible).
  std::uint64_t misses() const { return misses_.load(); }

 private:
  /// Best-effort write-then-rename of `snapshot` to cache file `path`;
  /// shared by the prepare and extend miss paths. Failures leave the cache
  /// cold but never affect the returned snapshot.
  void persist(const backend::PrefixSnapshot& snapshot,
               const std::string& path);

  /// Loads a cache file through an mmap-backed view (worker fleets sharing
  /// a directory then share OS page cache instead of each buffering a
  /// private copy), falling back to a plain ifstream when mapping fails.
  /// Returns nullptr on any validation failure — the caller recomputes.
  backend::PrefixSnapshotPtr load_cached(const std::string& path);

  backend::Backend& inner_;
  std::string cache_dir_;
  std::uint64_t context_hash_ = 0;  ///< hash of name() + key_context
  bool compress_ = false;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> temp_counter_{0};
};

}  // namespace qufi::dist
