#include "dist/shard_runner.hpp"

#include <memory>

#include "backend/density_backend.hpp"
#include "backend/trajectory_backend.hpp"
#include "core/result_io.hpp"
#include "dist/snapshot_cache.hpp"
#include "noise/noise_model.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace qufi::dist {

ShardRunOutput run_shard(const ShardManifest& manifest,
                         const ShardRunOptions& options) {
  CampaignSpec spec = manifest_to_spec(manifest);
  spec.threads = options.threads;

  // The worker owns its execution backend explicitly (instead of letting
  // the campaign build one) so the snapshot cache can wrap it and so the
  // trajectory family is reachable from a manifest.
  std::unique_ptr<backend::Backend> exec;
  const auto noise_model =
      noise::NoiseModel::from_backend(spec.backend, spec.noise_scale);
  if (manifest.backend_kind == WorkerBackendKind::Trajectory) {
    require(spec.shots > 0,
            "run_shard: trajectory backend requires shots > 0");
    require(!manifest.idle_noise,
            "run_shard: idle_noise requires the density backend");
    exec = std::make_unique<backend::TrajectoryBackend>(noise_model);
  } else {
    auto density = std::make_unique<backend::DensityMatrixBackend>(
        noise_model, manifest.idle_noise);
    // Workers must mirror the coordinator's engine exactly: the
    // suffix-response path is part of the tree engine (see CampaignSpec::
    // use_tree), so a --no-tree plan keeps every shard on the flat batch.
    density->set_suffix_response_enabled(spec.use_tree);
    exec = std::move(density);
  }

  std::unique_ptr<SnapshotCachingBackend> cache;
  if (!options.snapshot_dir.empty()) {
    // noise_scale changes the evolved state but is invisible in both the
    // circuit bytes and the backend name, so it must ride in the key.
    cache = std::make_unique<SnapshotCachingBackend>(
        *exec, options.snapshot_dir,
        "noise_scale=" + util::CsvWriter::field(spec.noise_scale),
        options.compress_snapshots);
    spec.backend_override = cache.get();
  } else {
    spec.backend_override = exec.get();
  }

  // Completeness total for the merger: planner-stamped when available,
  // otherwise derived here (hand-written manifests; double campaigns pay a
  // transpile via campaign_point_neighbor_pairs in that fallback only).
  const auto derive_expected = [&](std::size_t num_points) -> std::uint64_t {
    if (manifest.expected_records > 0) return manifest.expected_records;
    // Adaptive campaigns decide their record count while running, so the
    // total is unknowable here; 0 tells the merger to use point coverage
    // as its completeness check instead.
    if (spec.adaptive) return 0;
    if (manifest.double_fault) {
      return double_campaign_executions(
          campaign_point_neighbor_pairs(spec).size(), spec.grid);
    }
    return single_campaign_executions(num_points, spec.grid);
  };

  std::unique_ptr<resio::ResultWriter> writer;
  std::unique_ptr<resio::ResultFileSink> sink;
  if (!options.columnar_output_path.empty()) {
    // Streaming mode needs the file header — point table, metadata,
    // expected total — before the first record exists, so mirror the
    // campaign's own derivation (one extra transpile, same enumeration).
    const auto transpiled = campaign_transpile(spec);
    resio::ResultFileHeader header;
    header.shard_index = manifest.shard_index;
    header.shard_count = manifest.shard_count;
    header.points = stride_points(
        enumerate_injection_points(transpiled, spec.strategy),
        spec.max_points);
    header.expected_total_records = derive_expected(header.points.size());
    header.meta.circuit_name = spec.circuit.name();
    header.meta.backend_name = spec.backend_override->name();
    header.meta.circuit_qubits = spec.circuit.num_qubits();
    header.meta.transpiled_gates = transpiled.circuit.num_unitary_gates();
    header.meta.grid = spec.grid;
    header.meta.shots = spec.shots;
    header.meta.seed = spec.seed;
    header.meta.double_fault = manifest.double_fault;
    header.meta.idle_noise = spec.idle_noise;
    if (spec.adaptive) {
      header.meta.adaptive = true;
      header.meta.adaptive_policy = *spec.adaptive;
    }
    // faultfree_qvf is only known once the campaign has run the fault-free
    // reference; set_meta patches it in before finish() seals the header.
    header.meta.faultfree_qvf = 0.0;
    writer = std::make_unique<resio::ResultWriter>(
        options.columnar_output_path, header, resio::kDefaultBlockRecords,
        options.columnar_live ? resio::WriteMode::Live
                              : resio::WriteMode::TempRename);
    sink = std::make_unique<resio::ResultFileSink>(*writer);
    spec.record_sink = sink.get();
  }

  const CampaignResult result =
      manifest.double_fault
          ? run_double_fault_campaign_subset(spec, manifest.point_indices)
          : run_single_fault_campaign_subset(spec, manifest.point_indices);

  ShardRunOutput out;
  out.partial.shard_index = manifest.shard_index;
  out.partial.shard_count = manifest.shard_count;
  out.partial.expected_total_records = derive_expected(result.points.size());
  out.partial.meta = result.meta;
  out.partial.points = result.points;
  out.partial.records = result.records;
  if (writer) {
    writer->set_meta(result.meta);
    writer->finish(result.meta.executions, result.meta.injections);
    out.partial_bytes = writer->bytes_written();
    out.streamed_records = writer->records_written();
  }
  if (cache) {
    out.snapshot_hits = cache->hits();
    out.snapshot_misses = cache->misses();
  }
  return out;
}

}  // namespace qufi::dist
