#include "dist/shard_runner.hpp"

#include <memory>

#include "backend/density_backend.hpp"
#include "backend/trajectory_backend.hpp"
#include "dist/snapshot_cache.hpp"
#include "noise/noise_model.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace qufi::dist {

ShardRunOutput run_shard(const ShardManifest& manifest,
                         const ShardRunOptions& options) {
  CampaignSpec spec = manifest_to_spec(manifest);
  spec.threads = options.threads;

  // The worker owns its execution backend explicitly (instead of letting
  // the campaign build one) so the snapshot cache can wrap it and so the
  // trajectory family is reachable from a manifest.
  std::unique_ptr<backend::Backend> exec;
  const auto noise_model =
      noise::NoiseModel::from_backend(spec.backend, spec.noise_scale);
  if (manifest.backend_kind == WorkerBackendKind::Trajectory) {
    require(spec.shots > 0,
            "run_shard: trajectory backend requires shots > 0");
    require(!manifest.idle_noise,
            "run_shard: idle_noise requires the density backend");
    exec = std::make_unique<backend::TrajectoryBackend>(noise_model);
  } else {
    auto density = std::make_unique<backend::DensityMatrixBackend>(
        noise_model, manifest.idle_noise);
    // Workers must mirror the coordinator's engine exactly: the
    // suffix-response path is part of the tree engine (see CampaignSpec::
    // use_tree), so a --no-tree plan keeps every shard on the flat batch.
    density->set_suffix_response_enabled(spec.use_tree);
    exec = std::move(density);
  }

  std::unique_ptr<SnapshotCachingBackend> cache;
  if (!options.snapshot_dir.empty()) {
    // noise_scale changes the evolved state but is invisible in both the
    // circuit bytes and the backend name, so it must ride in the key.
    cache = std::make_unique<SnapshotCachingBackend>(
        *exec, options.snapshot_dir,
        "noise_scale=" + util::CsvWriter::field(spec.noise_scale));
    spec.backend_override = cache.get();
  } else {
    spec.backend_override = exec.get();
  }

  const CampaignResult result =
      manifest.double_fault
          ? run_double_fault_campaign_subset(spec, manifest.point_indices)
          : run_single_fault_campaign_subset(spec, manifest.point_indices);

  ShardRunOutput out;
  out.partial.shard_index = manifest.shard_index;
  out.partial.shard_count = manifest.shard_count;
  // The merger's completeness total: planner-stamped when available,
  // otherwise derived here (hand-written manifests; double campaigns pay a
  // transpile via campaign_point_neighbor_pairs in that fallback only).
  if (manifest.expected_records > 0) {
    out.partial.expected_total_records = manifest.expected_records;
  } else if (manifest.double_fault) {
    out.partial.expected_total_records = double_campaign_executions(
        campaign_point_neighbor_pairs(spec).size(), spec.grid);
  } else {
    out.partial.expected_total_records =
        single_campaign_executions(result.points.size(), spec.grid);
  }
  out.partial.meta = result.meta;
  out.partial.points = result.points;
  out.partial.records = result.records;
  if (cache) {
    out.snapshot_hits = cache->hits();
    out.snapshot_misses = cache->misses();
  }
  return out;
}

}  // namespace qufi::dist
