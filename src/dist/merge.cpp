#include "dist/merge.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/result_io.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace qufi::dist {

namespace {

/// Uniform view over in-memory shard results and file-loaded partials.
/// `label` names the input in diagnostics ("shard 3", "input 0").
struct ShardView {
  const CampaignMetadata* meta;
  const std::vector<InjectionPoint>* points;
  const std::vector<InjectionRecord>* records;
  std::string label;
};

/// Campaign-identity comparison without the fault-free QVF: live partials
/// carry the streaming placeholder there until their writer seals, so the
/// incremental (prefix) merge must not treat the placeholder-vs-real
/// difference as a campaign mismatch.
bool meta_matches_prefix(const CampaignMetadata& a, const CampaignMetadata& b) {
  return a.circuit_name == b.circuit_name &&
         a.backend_name == b.backend_name &&
         a.circuit_qubits == b.circuit_qubits &&
         a.transpiled_gates == b.transpiled_gates &&
         a.grid.theta_step_deg == b.grid.theta_step_deg &&
         a.grid.phi_step_deg == b.grid.phi_step_deg &&
         a.grid.theta_max_deg == b.grid.theta_max_deg &&
         a.grid.phi_max_deg == b.grid.phi_max_deg && a.shots == b.shots &&
         a.seed == b.seed && a.double_fault == b.double_fault &&
         a.idle_noise == b.idle_noise && a.adaptive == b.adaptive &&
         (!a.adaptive || a.adaptive_policy == b.adaptive_policy);
}

/// The adaptive analog of the idle-noise mode check: an adaptive shard in
/// an exhaustive campaign (or a different policy) evaluates a different
/// config set per point, so the mixup gets its own diagnosis before the
/// generic metadata comparison.
void require_adaptive_compatible(const CampaignMetadata& a,
                                 const CampaignMetadata& b) {
  require(a.adaptive == b.adaptive,
          "merge: cannot mix adaptive and exhaustive shards (adaptive "
          "estimation changes which configs each point evaluates; re-run "
          "the shard with the campaign's mode)");
  require(!a.adaptive || a.adaptive_policy == b.adaptive_policy,
          "merge: shards disagree on the adaptive policy (budget, CI "
          "target, floor and seed must match for the evaluated config sets "
          "to line up; re-run the shard with the campaign's policy)");
}

/// Adaptive completeness: with no pre-computable record total (manifests
/// stamp expected_records = 0), a merged adaptive campaign is complete when
/// every point of the table contributed records — the estimator always
/// evaluates at least its coarse lattice per point.
void require_adaptive_coverage(const MissingPointReport& missing) {
  require(missing.count == 0,
          "merge: incomplete adaptive campaign (missing shard output?)" +
              missing.describe());
}

/// Fills CampaignResult::point_estimates for a merged adaptive result by
/// replaying each point's (contiguous, ascending) record run.
void project_point_estimates(CampaignResult& merged) {
  if (!merged.meta.adaptive) return;
  merged.point_estimates.resize(merged.points.size());
  std::span<const InjectionRecord> records = merged.records;
  for (std::size_t begin = 0; begin < records.size();) {
    std::size_t end = begin;
    while (end < records.size() &&
           records[end].point_index == records[begin].point_index) {
      ++end;
    }
    merged.point_estimates[records[begin].point_index] =
        adaptive_point_estimate(merged.meta,
                                records.subspan(begin, end - begin));
    begin = end;
  }
}

bool meta_matches(const CampaignMetadata& a, const CampaignMetadata& b) {
  return meta_matches_prefix(a, b) && a.faultfree_qvf == b.faultfree_qvf;
}

bool points_match(const std::vector<InjectionPoint>& a,
                  const std::vector<InjectionPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].instr_index != b[i].instr_index || a[i].qubit != b[i].qubit ||
        a[i].logical_qubit != b[i].logical_qubit ||
        a[i].moment != b[i].moment) {
      return false;
    }
  }
  return true;
}

/// Bit-exact record equality. Doubles compare by bit pattern, not value:
/// shards are deterministic, so a retried shard reproduces the *bits* — a
/// value-equal-but-bit-different double (-0.0 vs 0.0) still means the
/// workers diverged.
bool record_matches(const InjectionRecord& a, const InjectionRecord& b) {
  return a.point_index == b.point_index && a.theta_index == b.theta_index &&
         a.phi_index == b.phi_index && a.neighbor_qubit == b.neighbor_qubit &&
         a.theta1_index == b.theta1_index && a.phi1_index == b.phi1_index &&
         std::bit_cast<std::uint64_t>(a.qvf) ==
             std::bit_cast<std::uint64_t>(b.qvf) &&
         std::bit_cast<std::uint64_t>(a.pa) ==
             std::bit_cast<std::uint64_t>(b.pa) &&
         std::bit_cast<std::uint64_t>(a.pb) ==
             std::bit_cast<std::uint64_t>(b.pb);
}

/// "shard 0 and shard 2 disagree on point 17 (...)" — duplicate points are
/// only legal as bit-exact retries, so a conflict must name the pair that
/// diverged for the operator to requeue the right shard.
std::string conflict_message(const std::string& a, const std::string& b,
                             std::uint32_t point, const std::string& detail) {
  return "merge: " + a + " and " + b + " disagree on point " +
         std::to_string(point) + " (" + detail +
         "); duplicates must be bit-exact retries";
}

CampaignResult merge_views(std::span<const ShardView> shards,
                           const MergeOptions& options) {
  require(!shards.empty(), "merge: no shard results");
  for (const ShardView& shard : shards) {
    // Checked before the general metadata comparison so the mode mixup —
    // an idle-noise shard merged into a plain campaign (or vice versa) —
    // fails with a diagnosis, not a generic mismatch.
    require(shards[0].meta->idle_noise == shard.meta->idle_noise,
            "merge: cannot mix idle-noise and non-idle shards (the "
            "idle_noise execution mode changes every record; re-run the "
            "shard with the campaign's mode)");
    require_adaptive_compatible(*shards[0].meta, *shard.meta);
    require(meta_matches(*shards[0].meta, *shard.meta),
            "merge: shard metadata mismatch (different campaigns?)");
    require(points_match(*shards[0].points, *shard.points),
            "merge: shard point tables differ (different campaigns?)");
  }

  const std::size_t num_points = shards[0].points->size();
  // Per-point record slices, taken from the first shard (in input order)
  // that executed the point. Shards are idempotent retry units, so a point
  // appearing in several shards is legal — but only when the duplicates
  // agree bit-exactly; disagreement means divergent workers, not a retry.
  std::vector<std::vector<const InjectionRecord*>> buckets(num_points);
  std::vector<int> owner(num_points, -1);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    // Bucket this shard's records per point (order-preserving).
    std::vector<std::vector<const InjectionRecord*>> mine(num_points);
    for (const InjectionRecord& r : *shards[s].records) {
      require(r.point_index < num_points,
              "merge: record references point outside the table");
      mine[r.point_index].push_back(&r);
    }
    for (std::size_t p = 0; p < num_points; ++p) {
      if (mine[p].empty()) continue;
      if (owner[p] < 0) {
        owner[p] = static_cast<int>(s);
        buckets[p] = std::move(mine[p]);
        continue;
      }
      const std::string& owner_label =
          shards[static_cast<std::size_t>(owner[p])].label;
      const std::uint32_t point = static_cast<std::uint32_t>(p);
      require(buckets[p].size() == mine[p].size(),
              conflict_message(owner_label, shards[s].label, point,
                               std::to_string(buckets[p].size()) + " vs " +
                                   std::to_string(mine[p].size()) +
                                   " records"));
      for (std::size_t k = 0; k < mine[p].size(); ++k) {
        require(record_matches(*buckets[p][k], *mine[p][k]),
                conflict_message(owner_label, shards[s].label, point,
                                 "record " + std::to_string(k) + " of " +
                                     std::to_string(mine[p].size()) +
                                     " differs"));
      }
    }
  }

  CampaignResult merged;
  merged.meta = *shards[0].meta;
  merged.points = *shards[0].points;
  // Ascending point index — the single-process enumeration order — so the
  // output is independent of shard arrival order.
  for (std::size_t p = 0; p < num_points; ++p) {
    for (const InjectionRecord* r : buckets[p]) merged.records.push_back(*r);
  }
  merged.meta.executions = merged.records.size();
  merged.meta.injections =
      campaign_injections(merged.records.size(), merged.meta.shots);

  if (!options.allow_incomplete && options.expected_records > 0) {
    require(merged.records.size() == options.expected_records,
            "merge: incomplete campaign (missing shard output?)");
  }
  if (!options.allow_incomplete && merged.meta.adaptive) {
    require_adaptive_coverage(
        find_missing_points(num_points, merged.records));
  }
  project_point_estimates(merged);
  return merged;
}

}  // namespace

std::string MissingPointReport::describe() const {
  if (count == 0) return "";
  std::string out = " (" + std::to_string(count) + " point" +
                    (count == 1 ? "" : "s") + " have no records; first missing:";
  for (std::size_t i = 0; i < first.size(); ++i) {
    out += (i == 0 ? " " : ", ") + std::to_string(first[i]);
  }
  if (count > first.size()) out += ", ...";
  out += ")";
  return out;
}

MissingPointReport find_missing_points(std::size_t num_points,
                                       std::span<const InjectionRecord> records,
                                       std::size_t max_examples) {
  std::vector<bool> seen(num_points, false);
  for (const InjectionRecord& r : records) {
    if (r.point_index < num_points) seen[r.point_index] = true;
  }
  MissingPointReport report;
  for (std::size_t p = 0; p < num_points; ++p) {
    if (seen[p]) continue;
    ++report.count;
    if (report.first.size() < max_examples) {
      report.first.push_back(static_cast<std::uint32_t>(p));
    }
  }
  return report;
}

CampaignResult merge_shard_results(std::span<const CampaignResult> shards,
                                   const MergeOptions& options) {
  std::vector<ShardView> views;
  views.reserve(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    views.push_back({&shards[s].meta, &shards[s].points, &shards[s].records,
                     "input " + std::to_string(s)});
  }
  return merge_views(views, options);
}

CampaignResult merge_partial_results(std::span<const PartialResult> parts,
                                     const MergeOptions& options) {
  require(!parts.empty(), "merge: no partial results");
  for (const PartialResult& part : parts) {
    require(part.shard_count == parts[0].shard_count,
            "merge: partials disagree on shard count");
    require(part.expected_total_records == parts[0].expected_total_records,
            "merge: partials disagree on expected record count");
  }
  MergeOptions effective = options;
  if (effective.expected_records == 0) {
    effective.expected_records = parts[0].expected_total_records;
  }
  std::vector<ShardView> views;
  views.reserve(parts.size());
  for (const PartialResult& part : parts) {
    views.push_back({&part.meta, &part.points, &part.records,
                     "shard " + std::to_string(part.shard_index)});
  }
  return merge_views(views, effective);
}

namespace {

/// One input of the streaming merge: a block-indexed reader plus a cursor
/// over the current (single) decoded block — the only record storage the
/// merge holds per input.
struct BlockStream {
  std::unique_ptr<resio::ResultReader> reader;
  std::string label;
  std::size_t next_block = 0;
  std::vector<InjectionRecord> cur;
  std::size_t pos = 0;

  /// Positions the cursor on the next record; false at end of input.
  bool ready() {
    while (pos == cur.size()) {
      if (next_block == reader->num_blocks()) {
        cur.clear();
        pos = 0;
        return false;
      }
      cur = reader->read_block(next_block++);
      pos = 0;
    }
    return true;
  }

  std::uint32_t point() const { return cur[pos].point_index; }

  /// Consumes and returns the current point's whole record run. A point
  /// never spans blocks (container invariant), so the run is a contiguous
  /// slice of the current block; the span stays valid until the next
  /// ready() call.
  std::span<const InjectionRecord> take_run() {
    const std::uint32_t p = point();
    const std::size_t begin = pos;
    while (pos < cur.size() && cur[pos].point_index == p) ++pos;
    return {cur.data() + begin, pos - begin};
  }
};

/// Consumes every later stream's run at `point` and cross-checks it against
/// the owning stream's run (the bit-exact retry rule shared by all merges).
/// Returns the number of duplicate records dropped.
std::uint64_t consume_duplicate_runs(std::vector<BlockStream>& streams,
                                     std::size_t owner, std::uint32_t point,
                                     std::span<const InjectionRecord> run) {
  std::uint64_t dropped = 0;
  for (std::size_t i = owner + 1; i < streams.size(); ++i) {
    if (!streams[i].ready() || streams[i].point() != point) continue;
    const auto dup = streams[i].take_run();
    require(dup.size() == run.size(),
            conflict_message(streams[owner].label, streams[i].label, point,
                             std::to_string(run.size()) + " vs " +
                                 std::to_string(dup.size()) + " records"));
    for (std::size_t k = 0; k < run.size(); ++k) {
      require(record_matches(run[k], dup[k]),
              conflict_message(streams[owner].label, streams[i].label, point,
                               "record " + std::to_string(k) + " of " +
                                   std::to_string(run.size()) + " differs"));
    }
    dropped += dup.size();
  }
  return dropped;
}

/// Core streaming k-way merge: validates headers, then repeatedly extracts
/// the minimum-point run across inputs, cross-checks duplicate runs
/// bit-exactly, and hands the surviving run to `emit` in ascending global
/// point order. Memory: one decoded block per input, one run in flight.
template <typename Emit>
StreamingMergeStats run_file_merge(std::span<const std::string> inputs,
                                   const MergeOptions& options,
                                   std::vector<BlockStream>& streams,
                                   const Emit& emit) {
  require(!inputs.empty(), "merge: no partial results");
  streams.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    BlockStream s;
    s.reader = std::make_unique<resio::ResultReader>(inputs[i]);
    s.label = "shard " + std::to_string(s.reader->header().shard_index);
    streams.push_back(std::move(s));
  }
  const resio::ResultFileHeader& first = streams[0].reader->header();
  for (const BlockStream& s : streams) {
    const resio::ResultFileHeader& h = s.reader->header();
    require(first.meta.idle_noise == h.meta.idle_noise,
            "merge: cannot mix idle-noise and non-idle shards (the "
            "idle_noise execution mode changes every record; re-run the "
            "shard with the campaign's mode)");
    require_adaptive_compatible(first.meta, h.meta);
    require(meta_matches(first.meta, h.meta),
            "merge: shard metadata mismatch (different campaigns?)");
    require(points_match(first.points, h.points),
            "merge: shard point tables differ (different campaigns?)");
    require(h.shard_count == first.shard_count,
            "merge: partials disagree on shard count");
    require(h.expected_total_records == first.expected_total_records,
            "merge: partials disagree on expected record count");
  }

  std::uint64_t expected = options.expected_records > 0
                              ? options.expected_records
                              : first.expected_total_records;

  StreamingMergeStats stats;
  std::vector<bool> emitted(first.points.size(), false);
  while (true) {
    // The owner of the next point: the first input (in order) at the
    // minimum pending point index — matching the bucket merge's
    // first-shard-wins rule, so in-memory and streaming merges agree.
    std::size_t owner = inputs.size();
    std::uint32_t min_point = 0;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (!streams[i].ready()) continue;
      if (owner == inputs.size() || streams[i].point() < min_point) {
        owner = i;
        min_point = streams[i].point();
      }
    }
    if (owner == inputs.size()) break;

    const auto run = streams[owner].take_run();
    stats.duplicate_records +=
        consume_duplicate_runs(streams, owner, min_point, run);
    emit(run);
    stats.merged_records += run.size();
    if (min_point < emitted.size()) emitted[min_point] = true;
  }

  // The requeue-aware diagnostic: which global points contributed nothing.
  // A lost or still-requeued shard shows up here by its point indices, so
  // dispatcher logs and --allow-partial CLI output name the same thing.
  for (std::size_t p = 0; p < emitted.size(); ++p) {
    if (emitted[p]) continue;
    ++stats.missing.count;
    if (stats.missing.first.size() < 8) {
      stats.missing.first.push_back(static_cast<std::uint32_t>(p));
    }
  }

  if (!options.allow_incomplete && expected > 0) {
    require(stats.merged_records == expected,
            "merge: incomplete campaign: " +
                std::to_string(stats.merged_records) + " of " +
                std::to_string(expected) +
                " expected records (missing shard output?)" +
                stats.missing.describe());
  }
  if (!options.allow_incomplete && first.meta.adaptive) {
    require_adaptive_coverage(stats.missing);
  }
  for (const std::string& path : inputs) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec) stats.input_bytes += size;
  }
  return stats;
}

}  // namespace

StreamingMergeStats merge_result_files(std::span<const std::string> inputs,
                                       const std::string& out_path,
                                       const MergeOptions& options) {
  std::vector<BlockStream> streams;
  std::unique_ptr<resio::ResultWriter> writer;
  StreamingMergeStats stats =
      run_file_merge(inputs, options, streams,
                     [&](std::span<const InjectionRecord> run) {
                       if (!writer) {
                         resio::ResultFileHeader header =
                             streams[0].reader->header();
                         header.shard_index = 0;
                         header.shard_count = 1;
                         writer = std::make_unique<resio::ResultWriter>(
                             out_path, header);
                       }
                       writer->append(run);
                     });
  if (!writer) {
    // Zero-record merge (empty shards): still produce a valid file.
    resio::ResultFileHeader header = streams[0].reader->header();
    header.shard_index = 0;
    header.shard_count = 1;
    writer = std::make_unique<resio::ResultWriter>(out_path, header);
  }
  // Match merge_shard_results: executions are recomputed from the merged
  // record set, not summed over shards (duplicates would double-count).
  const CampaignMetadata& meta = streams[0].reader->header().meta;
  writer->finish(stats.merged_records,
                 campaign_injections(stats.merged_records, meta.shots));
  return stats;
}

StreamingMergeStats merge_result_files_to_csv(
    std::span<const std::string> inputs, const std::string& csv_path,
    const MergeOptions& options) {
  static std::atomic<std::uint64_t> counter{0};
  const std::string temp = csv_path + ".tmp." + std::to_string(::getpid()) +
                           "." + std::to_string(counter.fetch_add(1));
  StreamingMergeStats stats;
  try {
    std::vector<BlockStream> streams;
    std::unique_ptr<util::CsvWriter> csv;
    stats = run_file_merge(
        inputs, options, streams,
        [&](std::span<const InjectionRecord> run) {
          if (!csv) {
            csv = std::make_unique<util::CsvWriter>(temp);
            write_csv_preamble(*csv, streams[0].reader->header().meta);
          }
          const auto& header = streams[0].reader->header();
          if (header.meta.adaptive) {
            // Each emitted run is one whole point: replay its estimate
            // once and stamp it on every row — the same projection
            // CampaignResult::write_csv applies, so merged and
            // single-process CSVs stay byte-identical.
            const AdaptivePointEstimate est =
                adaptive_point_estimate(header.meta, run);
            for (const InjectionRecord& r : run) {
              write_csv_record(*csv, header.meta, header.points, r, &est);
            }
            return;
          }
          for (const InjectionRecord& r : run) {
            write_csv_record(*csv, header.meta, header.points, r);
          }
        });
    if (!csv) {
      csv = std::make_unique<util::CsvWriter>(temp);
      write_csv_preamble(*csv, streams[0].reader->header().meta);
    }
  } catch (...) {
    std::remove(temp.c_str());
    throw;
  }
  if (std::rename(temp.c_str(), csv_path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw Error("merge: cannot rename CSV temp file into place: " + csv_path);
  }
  return stats;
}

bool result_files_equivalent(const std::string& a, const std::string& b) {
  BlockStream x;
  BlockStream y;
  x.reader = std::make_unique<resio::ResultReader>(a);
  y.reader = std::make_unique<resio::ResultReader>(b);
  if (!meta_matches(x.reader->header().meta, y.reader->header().meta) ||
      !points_match(x.reader->header().points, y.reader->header().points) ||
      x.reader->total_records() != y.reader->total_records()) {
    return false;
  }
  while (true) {
    const bool more_x = x.ready();
    const bool more_y = y.ready();
    if (more_x != more_y) return false;
    if (!more_x) return true;
    if (!record_matches(x.cur[x.pos], y.cur[y.pos])) return false;
    ++x.pos;
    ++y.pos;
  }
}

PrefixMergeResult merge_result_prefix(
    std::span<const PrefixMergeInput> inputs) {
  PrefixMergeResult out;

  // Open every input that already has a complete header, in Tail mode. An
  // input whose header has not reached the disk yet contributes nothing
  // (counted, skipped); once the header is readable, any inconsistency the
  // Tail reader finds is corruption and propagates.
  std::vector<BlockStream> streams;
  std::vector<const PrefixMergeInput*> specs;
  for (const PrefixMergeInput& input : inputs) {
    if (!resio::result_header_available(input.path)) {
      ++out.unreadable_inputs;
      continue;
    }
    BlockStream s;
    s.reader = std::make_unique<resio::ResultReader>(input.path,
                                                     resio::ReadMode::Tail);
    s.label = "shard " + std::to_string(s.reader->header().shard_index) +
              " (" + input.path + ")";
    if (s.reader->sealed()) ++out.sealed_inputs;
    streams.push_back(std::move(s));
    specs.push_back(&input);
  }
  if (streams.empty()) return out;

  const resio::ResultFileHeader& first = streams[0].reader->header();
  const std::size_t num_points = first.points.size();
  out.total_points = static_cast<std::uint32_t>(num_points);
  out.meta = first.meta;
  out.points = first.points;
  for (const BlockStream& s : streams) {
    const resio::ResultFileHeader& h = s.reader->header();
    require(first.meta.idle_noise == h.meta.idle_noise,
            "merge: cannot mix idle-noise and non-idle shards (the "
            "idle_noise execution mode changes every record; re-run the "
            "shard with the campaign's mode)");
    require_adaptive_compatible(first.meta, h.meta);
    require(meta_matches_prefix(first.meta, h.meta),
            "merge: shard metadata mismatch (different campaigns?)");
    require(points_match(first.points, h.points),
            "merge: shard point tables differ (different campaigns?)");
  }
  // Prefer a sealed input's metadata: its fault-free QVF is the real value,
  // not the streaming placeholder a live header still carries.
  for (const BlockStream& s : streams) {
    if (s.reader->sealed()) {
      out.meta = s.reader->header().meta;
      break;
    }
  }

  // Resolve the frontier. A point is final when an input *owning* it proves
  // it: a complete block whose range covers the point (block ranges within a
  // file are pairwise disjoint, so that input can never append the point
  // again), or the input being sealed (proving the point produced zero
  // records). Range coverage alone is not enough — under strided ownership
  // a block's range can straddle points the writing shard never executes.
  std::vector<bool> resolved(num_points, false);
  for (std::size_t si = 0; si < streams.size(); ++si) {
    const std::vector<std::size_t>& owned = specs[si]->owned_points;
    if (streams[si].reader->sealed()) {
      for (std::size_t p : owned) {
        if (p < num_points) resolved[p] = true;
      }
      continue;
    }
    for (std::size_t b = 0; b < streams[si].reader->num_blocks(); ++b) {
      const auto& info = streams[si].reader->block_info(b);
      const auto lo = std::lower_bound(
          owned.begin(), owned.end(),
          static_cast<std::size_t>(info.first_point));
      const auto hi = std::upper_bound(
          owned.begin(), owned.end(),
          static_cast<std::size_t>(info.last_point));
      for (auto it = lo; it != hi; ++it) {
        if (*it < num_points) resolved[*it] = true;
      }
    }
  }
  std::uint32_t frontier = 0;
  while (frontier < num_points && resolved[frontier]) ++frontier;
  out.frontier = frontier;
  out.complete = frontier == num_points;

  // Merge exactly the points below the frontier — the same ascending-order,
  // first-input-wins, bit-exact-duplicate walk as the full file merge, cut
  // short at the first unresolved point.
  while (true) {
    std::size_t owner = streams.size();
    std::uint32_t min_point = 0;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (!streams[i].ready()) continue;
      if (owner == streams.size() || streams[i].point() < min_point) {
        owner = i;
        min_point = streams[i].point();
      }
    }
    if (owner == streams.size() || min_point >= frontier) break;
    const auto run = streams[owner].take_run();
    consume_duplicate_runs(streams, owner, min_point, run);
    out.records.insert(out.records.end(), run.begin(), run.end());
  }
  out.meta.executions = out.records.size();
  out.meta.injections =
      campaign_injections(out.records.size(), out.meta.shots);
  return out;
}

}  // namespace qufi::dist
