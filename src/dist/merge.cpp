#include "dist/merge.hpp"

#include <vector>

#include "util/error.hpp"

namespace qufi::dist {

namespace {

/// Uniform view over in-memory shard results and file-loaded partials.
struct ShardView {
  const CampaignMetadata* meta;
  const std::vector<InjectionPoint>* points;
  const std::vector<InjectionRecord>* records;
};

bool meta_matches(const CampaignMetadata& a, const CampaignMetadata& b) {
  return a.circuit_name == b.circuit_name &&
         a.backend_name == b.backend_name &&
         a.circuit_qubits == b.circuit_qubits &&
         a.transpiled_gates == b.transpiled_gates &&
         a.grid.theta_step_deg == b.grid.theta_step_deg &&
         a.grid.phi_step_deg == b.grid.phi_step_deg &&
         a.grid.theta_max_deg == b.grid.theta_max_deg &&
         a.grid.phi_max_deg == b.grid.phi_max_deg && a.shots == b.shots &&
         a.seed == b.seed && a.double_fault == b.double_fault &&
         a.idle_noise == b.idle_noise && a.faultfree_qvf == b.faultfree_qvf;
}

bool points_match(const std::vector<InjectionPoint>& a,
                  const std::vector<InjectionPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].instr_index != b[i].instr_index || a[i].qubit != b[i].qubit ||
        a[i].logical_qubit != b[i].logical_qubit ||
        a[i].moment != b[i].moment) {
      return false;
    }
  }
  return true;
}

bool record_matches(const InjectionRecord& a, const InjectionRecord& b) {
  return a.point_index == b.point_index && a.theta_index == b.theta_index &&
         a.phi_index == b.phi_index && a.neighbor_qubit == b.neighbor_qubit &&
         a.theta1_index == b.theta1_index && a.phi1_index == b.phi1_index &&
         a.qvf == b.qvf && a.pa == b.pa && a.pb == b.pb;
}

CampaignResult merge_views(std::span<const ShardView> shards,
                           const MergeOptions& options) {
  require(!shards.empty(), "merge: no shard results");
  for (const ShardView& shard : shards) {
    // Checked before the general metadata comparison so the mode mixup —
    // an idle-noise shard merged into a plain campaign (or vice versa) —
    // fails with a diagnosis, not a generic mismatch.
    require(shards[0].meta->idle_noise == shard.meta->idle_noise,
            "merge: cannot mix idle-noise and non-idle shards (the "
            "idle_noise execution mode changes every record; re-run the "
            "shard with the campaign's mode)");
    require(meta_matches(*shards[0].meta, *shard.meta),
            "merge: shard metadata mismatch (different campaigns?)");
    require(points_match(*shards[0].points, *shard.points),
            "merge: shard point tables differ (different campaigns?)");
  }

  const std::size_t num_points = shards[0].points->size();
  // Per-point record slices, taken from the first shard (in input order)
  // that executed the point. Shards are idempotent retry units, so a point
  // appearing in several shards is legal — but only when the duplicates
  // agree bit-exactly; disagreement means divergent workers, not a retry.
  std::vector<std::vector<const InjectionRecord*>> buckets(num_points);
  std::vector<int> owner(num_points, -1);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    // Bucket this shard's records per point (order-preserving).
    std::vector<std::vector<const InjectionRecord*>> mine(num_points);
    for (const InjectionRecord& r : *shards[s].records) {
      require(r.point_index < num_points,
              "merge: record references point outside the table");
      mine[r.point_index].push_back(&r);
    }
    for (std::size_t p = 0; p < num_points; ++p) {
      if (mine[p].empty()) continue;
      if (owner[p] < 0) {
        owner[p] = static_cast<int>(s);
        buckets[p] = std::move(mine[p]);
        continue;
      }
      require(buckets[p].size() == mine[p].size(),
              "merge: conflicting duplicate records for a point");
      for (std::size_t k = 0; k < mine[p].size(); ++k) {
        require(record_matches(*buckets[p][k], *mine[p][k]),
                "merge: conflicting duplicate records for a point");
      }
    }
  }

  CampaignResult merged;
  merged.meta = *shards[0].meta;
  merged.points = *shards[0].points;
  // Ascending point index — the single-process enumeration order — so the
  // output is independent of shard arrival order.
  for (std::size_t p = 0; p < num_points; ++p) {
    for (const InjectionRecord* r : buckets[p]) merged.records.push_back(*r);
  }
  merged.meta.executions = merged.records.size();
  merged.meta.injections =
      campaign_injections(merged.records.size(), merged.meta.shots);

  if (!options.allow_incomplete && options.expected_records > 0) {
    require(merged.records.size() == options.expected_records,
            "merge: incomplete campaign (missing shard output?)");
  }
  return merged;
}

}  // namespace

CampaignResult merge_shard_results(std::span<const CampaignResult> shards,
                                   const MergeOptions& options) {
  std::vector<ShardView> views;
  views.reserve(shards.size());
  for (const CampaignResult& shard : shards) {
    views.push_back({&shard.meta, &shard.points, &shard.records});
  }
  return merge_views(views, options);
}

CampaignResult merge_partial_results(std::span<const PartialResult> parts,
                                     const MergeOptions& options) {
  require(!parts.empty(), "merge: no partial results");
  for (const PartialResult& part : parts) {
    require(part.shard_count == parts[0].shard_count,
            "merge: partials disagree on shard count");
    require(part.expected_total_records == parts[0].expected_total_records,
            "merge: partials disagree on expected record count");
  }
  MergeOptions effective = options;
  if (effective.expected_records == 0) {
    effective.expected_records = parts[0].expected_total_records;
  }
  std::vector<ShardView> views;
  views.reserve(parts.size());
  for (const PartialResult& part : parts) {
    views.push_back({&part.meta, &part.points, &part.records});
  }
  return merge_views(views, effective);
}

}  // namespace qufi::dist
