#include "dist/shard_plan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace qufi::dist {

std::uint64_t point_cost(const InjectionPoint& point,
                         std::size_t circuit_size) {
  require(point.split_index() <= circuit_size,
          "point_cost: split index beyond circuit size");
  return 1 + static_cast<std::uint64_t>(circuit_size - point.split_index());
}

ShardPlan plan_shards(std::span<const InjectionPoint> points,
                      std::size_t circuit_size, std::uint32_t num_shards,
                      ShardPolicy policy) {
  require(num_shards >= 1, "plan_shards: need at least one shard");

  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.total_points = points.size();
  plan.policy = policy;
  plan.shards.resize(num_shards);
  for (std::uint32_t k = 0; k < num_shards; ++k) {
    plan.shards[k].shard_index = k;
  }

  if (policy == ShardPolicy::PointCount) {
    // Contiguous integer-strided ranges (the stride_points idiom): shard k
    // owns [k*N/M, (k+1)*N/M), which covers every point exactly once.
    for (std::uint32_t k = 0; k < num_shards; ++k) {
      const std::size_t begin = points.size() * k / num_shards;
      const std::size_t end = points.size() * (k + 1) / num_shards;
      for (std::size_t i = begin; i < end; ++i) {
        plan.shards[k].point_indices.push_back(i);
        plan.shards[k].estimated_cost += point_cost(points[i], circuit_size);
      }
    }
    return plan;
  }

  // CostWeighted: LPT greedy. Sort by descending cost (stable, so equal
  // costs keep point order), then assign each point to the least-loaded
  // shard, breaking load ties toward the lowest shard index. Deterministic
  // by construction.
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return point_cost(points[a], circuit_size) >
                            point_cost(points[b], circuit_size);
                   });
  for (const std::size_t i : order) {
    ShardAssignment* lightest = &plan.shards[0];
    for (auto& shard : plan.shards) {
      if (shard.estimated_cost < lightest->estimated_cost) lightest = &shard;
    }
    lightest->point_indices.push_back(i);
    lightest->estimated_cost += point_cost(points[i], circuit_size);
  }
  // Subset runners require strictly increasing indices.
  for (auto& shard : plan.shards) {
    std::sort(shard.point_indices.begin(), shard.point_indices.end());
  }
  return plan;
}

ShardPlan plan_campaign_shards(const CampaignSpec& spec,
                               std::uint32_t num_shards, ShardPolicy policy) {
  const auto transpiled = campaign_transpile(spec);
  const auto points = stride_points(
      enumerate_injection_points(transpiled, spec.strategy), spec.max_points);
  return plan_shards(points, transpiled.circuit.size(), num_shards, policy);
}

}  // namespace qufi::dist
