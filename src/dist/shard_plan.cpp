#include "dist/shard_plan.hpp"

#include <algorithm>
#include <cmath>

#include "core/adaptive.hpp"
#include "util/error.hpp"

namespace qufi::dist {

namespace {

/// Integer suffix-sweep cost with the adaptive budget scale applied.
/// Ceiling keeps a nonzero suffix nonzero, and sweep_scale = 1.0 (the
/// exhaustive default) reproduces the unscaled cost bit-for-bit.
std::uint64_t scaled_suffix(std::size_t circuit_size, std::size_t split,
                            double sweep_scale) {
  require(sweep_scale > 0.0 && sweep_scale <= 1.0,
          "shard plan: sweep_scale must be in (0, 1]");
  return static_cast<std::uint64_t>(std::ceil(
      sweep_scale * static_cast<double>(circuit_size - split)));
}

}  // namespace

std::uint64_t point_cost(const InjectionPoint& point, std::size_t circuit_size,
                         double sweep_scale) {
  require(point.split_index() <= circuit_size,
          "point_cost: split index beyond circuit size");
  return 1 + scaled_suffix(circuit_size, point.split_index(), sweep_scale);
}

std::uint64_t tree_point_cost(const InjectionPoint& point,
                              std::size_t circuit_size,
                              std::size_t shard_max_split,
                              double sweep_scale) {
  require(point.split_index() <= circuit_size,
          "tree_point_cost: split index beyond circuit size");
  const std::size_t split = point.split_index();
  const std::uint64_t extension =
      split > shard_max_split ? split - shard_max_split : 0;
  return 1 + extension + scaled_suffix(circuit_size, split, sweep_scale);
}

ShardPlan plan_shards(std::span<const InjectionPoint> points,
                      std::size_t circuit_size, std::uint32_t num_shards,
                      ShardPolicy policy, double sweep_scale) {
  require(num_shards >= 1, "plan_shards: need at least one shard");

  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.total_points = points.size();
  plan.policy = policy;
  plan.shards.resize(num_shards);
  for (std::uint32_t k = 0; k < num_shards; ++k) {
    plan.shards[k].shard_index = k;
  }

  if (policy == ShardPolicy::TreeAware) {
    // Visit points in ascending split order — the chain order the tree
    // engine executes in — and put each on the shard where load +
    // incremental tree cost is smallest. Campaign point tables are already
    // split-ordered, so index order is chain order (stable for equal
    // splits, keeping the choice deterministic).
    std::vector<std::size_t> max_split(num_shards, 0);
    std::vector<char> has_points(num_shards, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::uint32_t best = 0;
      std::uint64_t best_total = ~std::uint64_t{0};
      std::uint64_t best_cost = 0;
      for (std::uint32_t k = 0; k < num_shards; ++k) {
        // A shard with no points has no chain yet: its first root pays the
        // full prefix (max_split 0 models exactly that).
        const std::uint64_t cost =
            tree_point_cost(points[i], circuit_size,
                            has_points[k] ? max_split[k] : 0, sweep_scale);
        const std::uint64_t total = plan.shards[k].estimated_cost + cost;
        if (total < best_total) {
          best = k;
          best_total = total;
          best_cost = cost;
        }
      }
      plan.shards[best].point_indices.push_back(i);
      plan.shards[best].estimated_cost += best_cost;
      max_split[best] = std::max(max_split[best], points[i].split_index());
      has_points[best] = 1;
    }
    // Ascending-split visiting order preserves index order per shard, but
    // sort anyway: subset runners require strictly increasing indices even
    // for hand-built point tables that are not split-ordered.
    for (auto& shard : plan.shards) {
      std::sort(shard.point_indices.begin(), shard.point_indices.end());
    }
    return plan;
  }

  if (policy == ShardPolicy::PointCount) {
    // Contiguous integer-strided ranges (the stride_points idiom): shard k
    // owns [k*N/M, (k+1)*N/M), which covers every point exactly once.
    for (std::uint32_t k = 0; k < num_shards; ++k) {
      const std::size_t begin = points.size() * k / num_shards;
      const std::size_t end = points.size() * (k + 1) / num_shards;
      for (std::size_t i = begin; i < end; ++i) {
        plan.shards[k].point_indices.push_back(i);
        plan.shards[k].estimated_cost +=
            point_cost(points[i], circuit_size, sweep_scale);
      }
    }
    return plan;
  }

  // CostWeighted: LPT greedy. Sort by descending cost (stable, so equal
  // costs keep point order), then assign each point to the least-loaded
  // shard, breaking load ties toward the lowest shard index. Deterministic
  // by construction.
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return point_cost(points[a], circuit_size,
                                       sweep_scale) >
                            point_cost(points[b], circuit_size, sweep_scale);
                   });
  for (const std::size_t i : order) {
    ShardAssignment* lightest = &plan.shards[0];
    for (auto& shard : plan.shards) {
      if (shard.estimated_cost < lightest->estimated_cost) lightest = &shard;
    }
    lightest->point_indices.push_back(i);
    lightest->estimated_cost += point_cost(points[i], circuit_size,
                                           sweep_scale);
  }
  // Subset runners require strictly increasing indices.
  for (auto& shard : plan.shards) {
    std::sort(shard.point_indices.begin(), shard.point_indices.end());
  }
  return plan;
}

ShardPlan plan_campaign_shards(const CampaignSpec& spec,
                               std::uint32_t num_shards, ShardPolicy policy) {
  const auto transpiled = campaign_transpile(spec);
  const auto points = stride_points(
      enumerate_injection_points(transpiled, spec.strategy), spec.max_points);
  // Adaptive campaigns sweep only the policy's per-point config budget, so
  // the planner shrinks every point's sweep cost by the same fraction; the
  // prefix terms keep full weight, which shifts tree-aware balancing toward
  // prefix work exactly as the engine experiences it.
  double sweep_scale = 1.0;
  if (spec.adaptive) {
    sweep_scale =
        static_cast<double>(adaptive_config_budget(spec.grid, *spec.adaptive)) /
        static_cast<double>(spec.grid.num_configs());
  }
  return plan_shards(points, transpiled.circuit.size(), num_shards, policy,
                     sweep_scale);
}

}  // namespace qufi::dist
