#include "algorithms/algorithms.hpp"

#include <numbers>

#include "util/error.hpp"

namespace qufi::algo {

circ::QuantumCircuit random_circuit(int num_qubits, int depth,
                                    std::uint64_t seed,
                                    double two_qubit_fraction) {
  require(num_qubits >= 1, "random_circuit: need >= 1 qubit");
  require(depth >= 0, "random_circuit: negative depth");
  require(two_qubit_fraction >= 0.0 && two_qubit_fraction <= 1.0,
          "random_circuit: two_qubit_fraction out of [0, 1]");

  util::Xoshiro256pp rng(seed);
  circ::QuantumCircuit qc(num_qubits);
  qc.set_name("random" + std::to_string(num_qubits) + "x" +
              std::to_string(depth));

  using circ::GateKind;
  static constexpr GateKind k1q[] = {
      GateKind::H,  GateKind::X,  GateKind::Y,  GateKind::Z, GateKind::S,
      GateKind::T,  GateKind::SX, GateKind::Sdg, GateKind::Tdg};

  for (int layer = 0; layer < depth; ++layer) {
    for (int q = 0; q < num_qubits; ++q) {
      if (num_qubits >= 2 && rng.uniform() < two_qubit_fraction) {
        int other = static_cast<int>(
            rng.uniform_int(static_cast<std::uint64_t>(num_qubits)));
        if (other == q) other = (q + 1) % num_qubits;
        qc.cx(q, other);
        continue;
      }
      const double pick = rng.uniform();
      if (pick < 0.4) {
        // Parameterized rotation with a random angle.
        const double angle = rng.uniform(-std::numbers::pi, std::numbers::pi);
        const double which = rng.uniform();
        if (which < 1.0 / 3) qc.rx(angle, q);
        else if (which < 2.0 / 3) qc.ry(angle, q);
        else qc.rz(angle, q);
      } else {
        const auto kind =
            k1q[rng.uniform_int(sizeof(k1q) / sizeof(k1q[0]))];
        qc.append(circ::Instruction{kind, {q}, {}, {}});
      }
    }
  }
  return qc;
}

}  // namespace qufi::algo
