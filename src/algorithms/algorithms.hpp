#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "util/rng.hpp"

namespace qufi::algo {

/// A benchmark circuit plus its deterministic ideal output(s): the
/// bitstrings (MSB-first over clbits) a noise-free, fault-free execution
/// produces with the highest probability. QVF's P(A) aggregates these.
struct AlgorithmCircuit {
  circ::QuantumCircuit circuit;
  std::vector<std::string> expected_outputs;
};

/// Bernstein-Vazirani over `num_qubits` total qubits: num_qubits-1 data
/// qubits encoding `secret` (bit i of secret -> data qubit i) plus one
/// ancilla (the last qubit). Ideal output: the secret string. This is the
/// paper's headline circuit (Fig. 4: 4 qubits, secret 101).
AlgorithmCircuit bernstein_vazirani(int num_qubits, std::uint64_t secret);

/// Default secret used across the paper-style experiments: alternating
/// bits 101... of width num_qubits-1.
std::uint64_t default_bv_secret(int num_qubits);

/// Deutsch-Jozsa oracle families.
enum class DjOracle {
  ConstantZero,  ///< f(x) = 0 -> output all zeros
  ConstantOne,   ///< f(x) = 1 -> output all zeros
  Balanced,      ///< f(x) = mask . x -> output = mask
};

/// Deutsch-Jozsa over `num_qubits` total qubits (num_qubits-1 data + 1
/// ancilla). For Balanced, `mask` must be a nonzero (num_qubits-1)-bit
/// value; ideal output is the mask itself.
AlgorithmCircuit deutsch_jozsa(int num_qubits, DjOracle oracle,
                               std::uint64_t mask = 0);

/// Textbook QFT block on n qubits (Qiskit convention:
/// |x> -> 2^{-n/2} sum_y exp(2 pi i x y / 2^n) |y>), with final swaps.
circ::QuantumCircuit qft_circuit(int num_qubits, bool do_swaps = true);

/// Inverse QFT block.
circ::QuantumCircuit iqft_circuit(int num_qubits, bool do_swaps = true);

/// QFT benchmark with a deterministic answer: prepares the Fourier state
/// of `value` with single-qubit gates, applies the inverse QFT and
/// measures; ideal output is `value`. (A bare QFT on a basis state has a
/// uniform output distribution — no correct state to contrast — so, as in
/// common QFT benchmarks, the paper's "QFT circuit" is exercised in this
/// prepare/invert form. See DESIGN.md, substitutions.)
AlgorithmCircuit qft_benchmark(int num_qubits, std::uint64_t value);

/// Default QFT benchmark input: the alternating pattern 0b101... of width
/// num_qubits.
std::uint64_t default_qft_value(int num_qubits);

/// GHZ state preparation + full measurement; two equally probable correct
/// outputs (all zeros / all ones) — exercises multi-state P(A).
AlgorithmCircuit ghz(int num_qubits);

/// Grover search for a single marked state on 2 or 3 qubits with the
/// optimal iteration count; ideal output is the marked state (probability
/// 1.0 for n=2, ~0.945 for n=3).
AlgorithmCircuit grover(int num_qubits, std::uint64_t marked);

/// Random circuit over {1q rotations, h, s, t, x, cx} for property tests;
/// deterministic in `seed`. `two_qubit_fraction` in [0, 1].
circ::QuantumCircuit random_circuit(int num_qubits, int depth,
                                    std::uint64_t seed,
                                    double two_qubit_fraction = 0.3);

/// Random Instantaneous Quantum Polynomial-time circuit (H - diagonal - H
/// sandwich with pi/4-multiple phases), one of the supremacy-candidate
/// workloads the paper's §V-C motivates. Deterministic in `seed`; the
/// output distribution is generally spread, so QVF goldens come from
/// compute_golden's most-probable-state rule. Measures all qubits.
circ::QuantumCircuit iqp_circuit(int num_qubits, std::uint64_t seed,
                                 double two_qubit_fraction = 0.5);

/// Builds one of the three paper circuits by name ("bv", "dj", "qft") at
/// the given total width, with the defaults above. Throws on unknown name.
AlgorithmCircuit paper_circuit(const std::string& name, int num_qubits);

}  // namespace qufi::algo
