#include "algorithms/algorithms.hpp"

#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi::algo {

std::uint64_t default_bv_secret(int num_qubits) {
  const int bits = num_qubits - 1;
  std::uint64_t secret = 0;
  for (int i = bits - 1; i >= 0; i -= 2) secret |= 1ULL << i;
  return secret;
}

AlgorithmCircuit bernstein_vazirani(int num_qubits, std::uint64_t secret) {
  require(num_qubits >= 2, "bernstein_vazirani: need >= 2 qubits");
  const int data = num_qubits - 1;
  require(data >= 64 || secret < (1ULL << data),
          "bernstein_vazirani: secret wider than data register");

  circ::QuantumCircuit qc(num_qubits, data);
  qc.set_name("bv" + std::to_string(num_qubits));

  const int ancilla = num_qubits - 1;
  // Put the ancilla in |-> for phase kickback.
  for (int q = 0; q < data; ++q) qc.h(q);
  qc.x(ancilla).h(ancilla);
  qc.barrier();
  // Oracle U_f for f(x) = secret . x.
  for (int q = 0; q < data; ++q) {
    if ((secret >> q) & 1ULL) qc.cx(q, ancilla);
  }
  qc.barrier();
  for (int q = 0; q < data; ++q) qc.h(q);
  for (int q = 0; q < data; ++q) qc.measure(q, q);

  return AlgorithmCircuit{std::move(qc),
                          {util::to_bitstring(secret, data)}};
}

}  // namespace qufi::algo
