#include "algorithms/algorithms.hpp"

#include <numbers>

#include "util/error.hpp"

namespace qufi::algo {

circ::QuantumCircuit iqp_circuit(int num_qubits, std::uint64_t seed,
                                 double two_qubit_fraction) {
  require(num_qubits >= 1, "iqp_circuit: need >= 1 qubit");
  require(two_qubit_fraction >= 0.0 && two_qubit_fraction <= 1.0,
          "iqp_circuit: two_qubit_fraction out of [0, 1]");

  util::Xoshiro256pp rng(seed);
  circ::QuantumCircuit qc(num_qubits, num_qubits);
  qc.set_name("iqp" + std::to_string(num_qubits));

  // H layer, random diagonal layer, H layer: the IQP sandwich.
  for (int q = 0; q < num_qubits; ++q) qc.h(q);
  qc.barrier();
  for (int q = 0; q < num_qubits; ++q) {
    // Diagonal single-qubit phase: multiple of pi/4 (T-power), as in
    // standard IQP constructions.
    const auto power = static_cast<double>(rng.uniform_int(8));
    if (power > 0) qc.p(power * std::numbers::pi / 4.0, q);
  }
  for (int a = 0; a < num_qubits; ++a) {
    for (int b = a + 1; b < num_qubits; ++b) {
      if (rng.uniform() < two_qubit_fraction) {
        const auto power = 1 + rng.uniform_int(3);
        qc.cp(static_cast<double>(power) * std::numbers::pi / 4.0, a, b);
      }
    }
  }
  qc.barrier();
  for (int q = 0; q < num_qubits; ++q) qc.h(q);
  qc.measure_all();
  return qc;
}

}  // namespace qufi::algo
