#include "algorithms/algorithms.hpp"

#include <numbers>

#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi::algo {

namespace {
constexpr double kPi = std::numbers::pi;
}

circ::QuantumCircuit qft_circuit(int num_qubits, bool do_swaps) {
  require(num_qubits >= 1, "qft_circuit: need >= 1 qubit");
  circ::QuantumCircuit qc(num_qubits);
  qc.set_name("qft" + std::to_string(num_qubits));
  for (int j = num_qubits - 1; j >= 0; --j) {
    qc.h(j);
    for (int k = j - 1; k >= 0; --k) {
      // Controlled phase pi / 2^{j-k} between qubit k (control) and j.
      qc.cp(kPi / static_cast<double>(1ULL << (j - k)), k, j);
    }
  }
  if (do_swaps) {
    for (int q = 0; q < num_qubits / 2; ++q) qc.swap(q, num_qubits - 1 - q);
  }
  return qc;
}

circ::QuantumCircuit iqft_circuit(int num_qubits, bool do_swaps) {
  auto qc = qft_circuit(num_qubits, do_swaps).inverse();
  qc.set_name("iqft" + std::to_string(num_qubits));
  return qc;
}

std::uint64_t default_qft_value(int num_qubits) {
  std::uint64_t value = 0;
  for (int i = num_qubits - 1; i >= 0; i -= 2) value |= 1ULL << i;
  return value;
}

AlgorithmCircuit qft_benchmark(int num_qubits, std::uint64_t value) {
  require(num_qubits >= 1, "qft_benchmark: need >= 1 qubit");
  require(num_qubits >= 64 || value < (1ULL << num_qubits),
          "qft_benchmark: value wider than register");

  circ::QuantumCircuit qc(num_qubits, num_qubits);
  qc.set_name("qft" + std::to_string(num_qubits));

  // Prepare QFT|value> as a product state: qubit k holds
  // (|0> + exp(2 pi i value 2^k / 2^n) |1>) / sqrt(2).
  for (int k = 0; k < num_qubits; ++k) {
    qc.h(k);
    const double angle = 2.0 * kPi * static_cast<double>(value) *
                         static_cast<double>(1ULL << k) /
                         static_cast<double>(1ULL << num_qubits);
    qc.p(angle, k);
  }
  qc.barrier();
  qc.compose(iqft_circuit(num_qubits));
  for (int q = 0; q < num_qubits; ++q) qc.measure(q, q);

  return AlgorithmCircuit{std::move(qc),
                          {util::to_bitstring(value, num_qubits)}};
}

AlgorithmCircuit paper_circuit(const std::string& name, int num_qubits) {
  if (name == "bv") {
    return bernstein_vazirani(num_qubits, default_bv_secret(num_qubits));
  }
  if (name == "dj") {
    std::uint64_t mask = 0;  // all ones over the data register
    for (int i = 0; i < num_qubits - 1; ++i) mask |= 1ULL << i;
    return deutsch_jozsa(num_qubits, DjOracle::Balanced, mask);
  }
  if (name == "qft") {
    return qft_benchmark(num_qubits, default_qft_value(num_qubits));
  }
  throw Error("paper_circuit: unknown circuit name '" + name +
              "' (expected bv, dj or qft)");
}

}  // namespace qufi::algo
