#include "algorithms/algorithms.hpp"

#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi::algo {

AlgorithmCircuit deutsch_jozsa(int num_qubits, DjOracle oracle,
                               std::uint64_t mask) {
  require(num_qubits >= 2, "deutsch_jozsa: need >= 2 qubits");
  const int data = num_qubits - 1;
  if (oracle == DjOracle::Balanced) {
    require(mask != 0, "deutsch_jozsa: balanced oracle needs nonzero mask");
    require(data >= 64 || mask < (1ULL << data),
            "deutsch_jozsa: mask wider than data register");
  }

  circ::QuantumCircuit qc(num_qubits, data);
  qc.set_name("dj" + std::to_string(num_qubits));

  const int ancilla = num_qubits - 1;
  for (int q = 0; q < data; ++q) qc.h(q);
  qc.x(ancilla).h(ancilla);
  qc.barrier();
  switch (oracle) {
    case DjOracle::ConstantZero:
      break;  // f(x) = 0: identity oracle
    case DjOracle::ConstantOne:
      qc.x(ancilla);  // global phase via |-> ancilla
      break;
    case DjOracle::Balanced:
      for (int q = 0; q < data; ++q) {
        if ((mask >> q) & 1ULL) qc.cx(q, ancilla);
      }
      break;
  }
  qc.barrier();
  for (int q = 0; q < data; ++q) qc.h(q);
  for (int q = 0; q < data; ++q) qc.measure(q, q);

  const std::uint64_t expected =
      oracle == DjOracle::Balanced ? mask : 0ULL;
  return AlgorithmCircuit{std::move(qc),
                          {util::to_bitstring(expected, data)}};
}

}  // namespace qufi::algo
