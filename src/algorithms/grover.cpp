#include "algorithms/algorithms.hpp"

#include <cmath>
#include <numbers>

#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi::algo {

namespace {

/// Multi-controlled Z over all qubits of qc (2 or 3 qubits).
void append_mcz(circ::QuantumCircuit& qc) {
  const int n = qc.num_qubits();
  if (n == 2) {
    qc.cz(0, 1);
  } else {
    qc.h(2);
    qc.ccx(0, 1, 2);
    qc.h(2);
  }
}

/// Phase-flips the marked basis state.
void append_oracle(circ::QuantumCircuit& qc, std::uint64_t marked) {
  const int n = qc.num_qubits();
  for (int q = 0; q < n; ++q) {
    if (!((marked >> q) & 1ULL)) qc.x(q);
  }
  append_mcz(qc);
  for (int q = 0; q < n; ++q) {
    if (!((marked >> q) & 1ULL)) qc.x(q);
  }
}

void append_diffusion(circ::QuantumCircuit& qc) {
  const int n = qc.num_qubits();
  for (int q = 0; q < n; ++q) qc.h(q);
  for (int q = 0; q < n; ++q) qc.x(q);
  append_mcz(qc);
  for (int q = 0; q < n; ++q) qc.x(q);
  for (int q = 0; q < n; ++q) qc.h(q);
}

}  // namespace

AlgorithmCircuit grover(int num_qubits, std::uint64_t marked) {
  require(num_qubits == 2 || num_qubits == 3,
          "grover: supported widths are 2 and 3 qubits");
  require(marked < (1ULL << num_qubits), "grover: marked state out of range");

  circ::QuantumCircuit qc(num_qubits, num_qubits);
  qc.set_name("grover" + std::to_string(num_qubits));
  for (int q = 0; q < num_qubits; ++q) qc.h(q);

  const double space = std::sqrt(static_cast<double>(1ULL << num_qubits));
  const int iterations = std::max(
      1, static_cast<int>(std::floor(std::numbers::pi / 4.0 * space)));
  for (int it = 0; it < iterations; ++it) {
    qc.barrier();
    append_oracle(qc, marked);
    append_diffusion(qc);
  }
  qc.measure_all();

  return AlgorithmCircuit{std::move(qc),
                          {util::to_bitstring(marked, num_qubits)}};
}

}  // namespace qufi::algo
