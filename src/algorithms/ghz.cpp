#include "algorithms/algorithms.hpp"

#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi::algo {

AlgorithmCircuit ghz(int num_qubits) {
  require(num_qubits >= 2, "ghz: need >= 2 qubits");
  circ::QuantumCircuit qc(num_qubits, num_qubits);
  qc.set_name("ghz" + std::to_string(num_qubits));
  qc.h(0);
  for (int q = 0; q + 1 < num_qubits; ++q) qc.cx(q, q + 1);
  qc.measure_all();

  std::uint64_t ones = 0;
  for (int i = 0; i < num_qubits; ++i) ones |= 1ULL << i;
  return AlgorithmCircuit{std::move(qc),
                          {util::to_bitstring(0, num_qubits),
                           util::to_bitstring(ones, num_qubits)}};
}

}  // namespace qufi::algo
