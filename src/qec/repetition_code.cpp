#include "qec/repetition_code.hpp"

#include <bit>

#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi::qec {

using circ::GateKind;
using circ::QuantumCircuit;

namespace {

void prepare_payload(QuantumCircuit& qc, Payload payload) {
  if (payload == Payload::One) qc.x(0);
  if (payload == Payload::Plus) qc.h(0);
}

/// Maps the payload back to the computational basis so the ideal output is
/// a deterministic bit.
void unprepare_payload(QuantumCircuit& qc, Payload payload) {
  if (payload == Payload::Plus) qc.h(0);
}

std::string expected_bit(Payload payload) {
  return payload == Payload::One ? "1" : "0";
}

}  // namespace

algo::AlgorithmCircuit protected_memory(Payload payload, CodeType code) {
  const int width = code == CodeType::None ? 1 : 3;
  QuantumCircuit qc(width, 1);
  qc.set_name(std::string("memory_") +
              (code == CodeType::None       ? "plain"
               : code == CodeType::BitFlip  ? "bitflip3"
                                            : "phaseflip3"));

  prepare_payload(qc, payload);
  if (code != CodeType::None) {
    qc.cx(0, 1).cx(0, 2);
    if (code == CodeType::PhaseFlip) qc.h(0).h(1).h(2);
  }

  qc.barrier();  // <- the memory window; faults are injected here

  if (code != CodeType::None) {
    if (code == CodeType::PhaseFlip) qc.h(0).h(1).h(2);
    qc.cx(0, 1).cx(0, 2);
    qc.ccx(1, 2, 0);  // majority correction of the data qubit
  }
  unprepare_payload(qc, payload);
  qc.measure(0, 0);

  return algo::AlgorithmCircuit{std::move(qc), {expected_bit(payload)}};
}

std::size_t memory_window_index(const circ::QuantumCircuit& circuit) {
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (instrs[i].kind == GateKind::Barrier) return i;
  }
  throw Error("memory_window_index: no barrier in circuit");
}

algo::AlgorithmCircuit repetition_memory_measured(int distance,
                                                  Payload payload,
                                                  CodeType code) {
  require(distance >= 1 && distance % 2 == 1,
          "repetition_memory_measured: distance must be odd");
  require(code != CodeType::None || distance == 1,
          "repetition_memory_measured: CodeType::None implies distance 1");
  require(payload != Payload::Plus,
          "repetition_memory_measured: majority decoding reads the "
          "computational basis; use protected_memory for |+>");

  QuantumCircuit qc(distance, distance);
  qc.set_name("memory_measured_d" + std::to_string(distance));
  prepare_payload(qc, payload);
  for (int q = 1; q < distance; ++q) qc.cx(0, q);
  if (code == CodeType::PhaseFlip) {
    for (int q = 0; q < distance; ++q) qc.h(q);
  }

  qc.barrier();

  if (code == CodeType::PhaseFlip) {
    for (int q = 0; q < distance; ++q) qc.h(q);
  }
  // No in-circuit correction: measure every data qubit; the majority vote
  // happens classically (decode_majority).
  qc.measure_all();

  return algo::AlgorithmCircuit{
      std::move(qc), majority_strings(distance, payload == Payload::One)};
}

std::vector<double> decode_majority(std::span<const double> probs,
                                    int distance) {
  require(probs.size() == (std::size_t{1} << distance),
          "decode_majority: size mismatch");
  std::vector<double> logical(2, 0.0);
  for (std::uint64_t s = 0; s < probs.size(); ++s) {
    const int ones = std::popcount(s);
    logical[ones * 2 > distance ? 1 : 0] += probs[s];
  }
  return logical;
}

std::vector<std::string> majority_strings(int distance, bool logical_one) {
  std::vector<std::string> out;
  for (std::uint64_t s = 0; s < (std::uint64_t{1} << distance); ++s) {
    const bool majority_is_one = std::popcount(s) * 2 > distance;
    if (majority_is_one == logical_one) {
      out.push_back(util::to_bitstring(s, distance));
    }
  }
  return out;
}

}  // namespace qufi::qec
