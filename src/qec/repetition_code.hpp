#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "circuit/circuit.hpp"

namespace qufi::qec {

/// Logical payload stored in the protected memory.
enum class Payload {
  Zero,  ///< |0>  (classical bit, sensitive to theta/bit-flip faults)
  One,   ///< |1>  (classical bit, sensitive to theta/bit-flip faults)
  Plus,  ///< |+>  (phase-sensitive: phi/Z faults flip it)
};

/// Which repetition code protects the memory window.
enum class CodeType {
  None,       ///< unprotected single qubit (baseline)
  BitFlip,    ///< 3-qubit repetition in the computational basis
  PhaseFlip,  ///< 3-qubit repetition in the Hadamard basis
};

/// Quantum-memory experiment (paper §II-B context: "QEC is designed to
/// protect a qubit from the intrinsic noise ... QEC is inefficient in
/// handling radiation-induced transient faults").
///
/// Circuit: prepare payload on q0 -> encode -> barrier (the *memory window*
/// where faults are injected) -> decode + Toffoli majority correction ->
/// un-prepare -> measure q0. Ideal output: "1" for Payload::One, else "0".
///
/// The barrier index in the returned circuit marks the fault window; use
/// memory_window_index() to inject there.
algo::AlgorithmCircuit protected_memory(Payload payload, CodeType code);

/// Index of the memory-window barrier instruction in a protected_memory
/// circuit (inject faults right after this instruction).
std::size_t memory_window_index(const circ::QuantumCircuit& circuit);

/// Measured-decode variant for arbitrary odd distance: encode, window
/// (+ basis restore for PhaseFlip), then measure every copy; correctness
/// is judged by a classical majority vote over the measured bits (see
/// decode_majority / majority_strings).
/// Supports CodeType::BitFlip and PhaseFlip, Payload::Zero and One.
algo::AlgorithmCircuit repetition_memory_measured(int distance,
                                                  Payload payload,
                                                  CodeType code);

/// Collapses a distribution over `distance` measured bits to the 2-outcome
/// logical distribution by majority vote.
std::vector<double> decode_majority(std::span<const double> probs,
                                    int distance);

/// All bitstrings whose majority equals `logical_one` — the golden set for
/// majority-decoded repetition memories.
std::vector<std::string> majority_strings(int distance, bool logical_one);

}  // namespace qufi::qec
