#include "service/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qufi::service {

namespace {

constexpr const char kHeader[] = "QUFIJRNL 1\n";
constexpr std::size_t kHeaderLen = sizeof(kHeader) - 1;

/// Journal fields are space-separated tokens, so free-form strings (failure
/// reasons, paths) percent-encode space/control bytes. The empty string
/// encodes as a lone "%" — unambiguous, because '%' is otherwise always
/// followed by two hex digits.
std::string encode_field(const std::string& s) {
  if (s.empty()) return "%";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '%' || c == ' ' || u < 0x20) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string decode_field(const std::string& s, const std::string& where) {
  if (s == "%") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    require(i + 2 < s.size(), "journal: truncated %-escape in " + where);
    const auto hex = [&](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      throw Error("journal: bad %-escape in " + where);
    };
    out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
    i += 2;
  }
  return out;
}

std::uint64_t parse_u64(std::istringstream& in, const std::string& what) {
  std::uint64_t v = 0;
  require(static_cast<bool>(in >> v), "journal: bad " + what + " field");
  return v;
}

std::string parse_token(std::istringstream& in, const std::string& what) {
  std::string t;
  require(static_cast<bool>(in >> t), "journal: missing " + what + " field");
  return t;
}

}  // namespace

const char* journal_event_type_name(JournalEventType type) {
  switch (type) {
    case JournalEventType::Submit: return "submit";
    case JournalEventType::Acquire: return "acquire";
    case JournalEventType::HeartbeatBatch: return "beats";
    case JournalEventType::Requeue: return "requeue";
    case JournalEventType::Quarantine: return "quarantine";
    case JournalEventType::Complete: return "complete";
    case JournalEventType::FailUnknown: return "fail-unknown";
    case JournalEventType::CampaignTerminal: return "terminal";
  }
  return "?";
}

std::string format_journal_event(const JournalEvent& event) {
  std::ostringstream out;
  out << event.seq << ' ' << journal_event_type_name(event.type) << ' '
      << event.at_ms;
  switch (event.type) {
    case JournalEventType::Submit:
      out << ' ' << encode_field(event.campaign) << ' ' << event.priority
          << ' ' << event.shard_count << ' ' << encode_field(event.path);
      break;
    case JournalEventType::Acquire:
      out << ' ' << event.lease_id << ' ' << encode_field(event.campaign)
          << ' ' << event.shard_index << ' ' << event.attempt << ' '
          << encode_field(event.path);
      break;
    case JournalEventType::HeartbeatBatch:
      out << ' ' << event.beats.size();
      for (const auto& [lease, at] : event.beats) {
        out << ' ' << lease << ':' << at;
      }
      break;
    case JournalEventType::Requeue:
      out << ' ' << encode_field(event.campaign) << ' ' << event.shard_index
          << ' ' << event.attempt << ' ' << encode_field(event.detail);
      break;
    case JournalEventType::Quarantine:
      out << ' ' << encode_field(event.campaign) << ' ' << event.shard_index
          << ' ' << encode_field(event.path);
      break;
    case JournalEventType::Complete:
      out << ' ' << event.lease_id << ' ' << encode_field(event.campaign)
          << ' ' << event.shard_index << ' ' << encode_field(event.path);
      break;
    case JournalEventType::FailUnknown:
      out << ' ' << event.lease_id << ' ' << encode_field(event.detail);
      break;
    case JournalEventType::CampaignTerminal:
      out << ' ' << encode_field(event.campaign) << ' '
          << encode_field(event.detail);
      break;
  }
  return out.str();
}

namespace {

JournalEvent parse_event_body(const std::string& body) {
  std::istringstream in(body);
  JournalEvent event;
  event.seq = parse_u64(in, "seq");
  const std::string type = parse_token(in, "type");
  std::int64_t at = 0;
  require(static_cast<bool>(in >> at), "journal: bad at_ms field");
  event.at_ms = at;
  if (type == "submit") {
    event.type = JournalEventType::Submit;
    event.campaign = decode_field(parse_token(in, "campaign"), "submit");
    require(static_cast<bool>(in >> event.priority),
            "journal: bad priority field");
    event.shard_count = static_cast<std::uint32_t>(parse_u64(in, "shards"));
    event.path = decode_field(parse_token(in, "csv"), "submit");
  } else if (type == "acquire") {
    event.type = JournalEventType::Acquire;
    event.lease_id = parse_u64(in, "lease");
    event.campaign = decode_field(parse_token(in, "campaign"), "acquire");
    event.shard_index = static_cast<std::uint32_t>(parse_u64(in, "shard"));
    event.attempt = static_cast<std::uint32_t>(parse_u64(in, "attempt"));
    event.path = decode_field(parse_token(in, "output"), "acquire");
  } else if (type == "beats") {
    event.type = JournalEventType::HeartbeatBatch;
    const std::uint64_t n = parse_u64(in, "beat count");
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::string pair = parse_token(in, "beat");
      const auto colon = pair.find(':');
      require(colon != std::string::npos, "journal: bad beat pair");
      event.beats.emplace_back(
          std::stoull(pair.substr(0, colon)),
          static_cast<std::int64_t>(std::stoll(pair.substr(colon + 1))));
    }
  } else if (type == "requeue") {
    event.type = JournalEventType::Requeue;
    event.campaign = decode_field(parse_token(in, "campaign"), "requeue");
    event.shard_index = static_cast<std::uint32_t>(parse_u64(in, "shard"));
    event.attempt = static_cast<std::uint32_t>(parse_u64(in, "attempt"));
    event.detail = decode_field(parse_token(in, "reason"), "requeue");
  } else if (type == "quarantine") {
    event.type = JournalEventType::Quarantine;
    event.campaign = decode_field(parse_token(in, "campaign"), "quarantine");
    event.shard_index = static_cast<std::uint32_t>(parse_u64(in, "shard"));
    event.path = decode_field(parse_token(in, "path"), "quarantine");
  } else if (type == "complete") {
    event.type = JournalEventType::Complete;
    event.lease_id = parse_u64(in, "lease");
    event.campaign = decode_field(parse_token(in, "campaign"), "complete");
    event.shard_index = static_cast<std::uint32_t>(parse_u64(in, "shard"));
    event.path = decode_field(parse_token(in, "path"), "complete");
  } else if (type == "fail-unknown") {
    event.type = JournalEventType::FailUnknown;
    event.lease_id = parse_u64(in, "lease");
    event.detail = decode_field(parse_token(in, "reason"), "fail-unknown");
  } else if (type == "terminal") {
    event.type = JournalEventType::CampaignTerminal;
    event.campaign = decode_field(parse_token(in, "campaign"), "terminal");
    event.detail = decode_field(parse_token(in, "state"), "terminal");
  } else {
    throw Error("journal: unknown record type: " + type);
  }
  return event;
}

}  // namespace

JournalReadResult read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.is_open(), "journal: cannot open: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  JournalReadResult result;
  // Header. A prefix of the header (including an empty file) is what a
  // crash during creation leaves — nothing was acknowledged yet, so it
  // reads as an empty journal with a torn tail at offset 0.
  if (bytes.size() < kHeaderLen) {
    if (std::string(kHeader, bytes.size()) == bytes) {
      result.truncated_tail = !bytes.empty();
      return result;
    }
    throw Error("journal " + path + ": corrupt header at offset 0");
  }
  if (bytes.compare(0, kHeaderLen, kHeader) != 0) {
    throw Error("journal " + path + ": corrupt header at offset 0");
  }

  std::size_t pos = kHeaderLen;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated final line: the torn artifact of a crash mid-append.
      // Everything before it was acknowledged; this record was not.
      result.truncated_tail = true;
      break;
    }
    const std::string line = bytes.substr(pos, nl - pos);
    const auto diagnose = [&](const std::string& why) -> Error {
      return Error("journal " + path + ": " + why + " at offset " +
                   std::to_string(pos) + " (record " +
                   std::to_string(result.events.size() + 1) + ")");
    };
    const std::size_t hash = line.rfind(" #");
    if (hash == std::string::npos || line.size() - hash != 2 + 16) {
      throw diagnose("record without checksum");
    }
    const std::string body = line.substr(0, hash);
    std::uint64_t stored = 0;
    try {
      stored = std::stoull(line.substr(hash + 2), nullptr, 16);
    } catch (const std::exception&) {
      throw diagnose("unparseable checksum");
    }
    if (util::fnv1a64(body) != stored) {
      throw diagnose("checksum mismatch");
    }
    JournalEvent event;
    try {
      event = parse_event_body(body);
    } catch (const Error& e) {
      throw diagnose(std::string("unparseable record (") + e.what() + ")");
    }
    if (event.seq != result.last_seq + 1) {
      throw diagnose("sequence gap (expected " +
                     std::to_string(result.last_seq + 1) + ", found " +
                     std::to_string(event.seq) + ")");
    }
    result.last_seq = event.seq;
    result.events.push_back(std::move(event));
    pos = nl + 1;
    result.valid_bytes = pos;
  }
  return result;
}

JournalWriter::JournalWriter(const std::string& path, std::uint64_t next_seq,
                             std::uint64_t resume_at_bytes)
    : path_(path), next_seq_(next_seq) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  require(fd_ >= 0, "journal: cannot open for writing: " + path);
  if (resume_at_bytes == 0) {
    require(::ftruncate(fd_, 0) == 0, "journal: cannot initialize: " + path);
    require(::write(fd_, kHeader, kHeaderLen) ==
                static_cast<ssize_t>(kHeaderLen),
            "journal: cannot write header: " + path);
    next_seq_ = 1;
    dirty_ = true;
  } else {
    // Drop any torn tail read_journal diagnosed, so the next append starts
    // on a clean line boundary instead of concatenating with crash debris.
    require(::ftruncate(fd_, static_cast<off_t>(resume_at_bytes)) == 0,
            "journal: cannot truncate torn tail: " + path);
    require(::lseek(fd_, 0, SEEK_END) >= 0, "journal: seek failed: " + path);
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    sync();
    ::close(fd_);
  }
}

std::uint64_t JournalWriter::append(JournalEvent event) {
  event.seq = next_seq_++;
  const std::string body = format_journal_event(event);
  char crc[24];
  std::snprintf(crc, sizeof crc, " #%016llx\n",
                static_cast<unsigned long long>(util::fnv1a64(body)));
  const std::string line = body + crc;
  require(::write(fd_, line.data(), line.size()) ==
              static_cast<ssize_t>(line.size()),
          "journal: append failed: " + path_);
  dirty_ = true;
  return event.seq;
}

void JournalWriter::sync() {
  if (!dirty_) return;
  require(::fsync(fd_) == 0, "journal: fsync failed: " + path_);
  dirty_ = false;
}

}  // namespace qufi::service
