#include "service/submission.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "algorithms/algorithms.hpp"
#include "dist/shard_plan.hpp"
#include "noise/backend_props.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace qufi::service {

namespace {

/// 17-significant-digit formatting round-trips IEEE binary64 exactly (the
/// manifest idiom), so re-planning a loaded submission stays bit-exact.
std::string g17(double v) { return util::CsvWriter::field(v); }

}  // namespace

void save_submission(const CampaignRequest& request,
                     const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::string temp = path + ".tmp." + std::to_string(::getpid()) + "." +
                           std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(temp);
    require(out.is_open(), "submission: cannot open for writing: " + temp);
    out << "qufi-submission 1\n";
    out << "name " << request.name << "\n";
    out << "priority " << request.priority << "\n";
    out << "circuit " << request.circuit << "\n";
    out << "width " << request.width << "\n";
    out << "device " << request.device << "\n";
    out << "opt_level " << request.opt_level << "\n";
    out << "grid " << g17(request.theta_step) << " " << g17(request.phi_step)
        << " " << g17(request.phi_max) << "\n";
    out << "shots " << request.shots << "\n";
    out << "seed " << request.seed << "\n";
    out << "max_points " << request.max_points << "\n";
    out << "double " << (request.double_fault ? 1 : 0) << "\n";
    out << "use_tree " << (request.use_tree ? 1 : 0) << "\n";
    out << "idle_noise " << (request.idle_noise ? 1 : 0) << "\n";
    out << "shards " << request.shards << "\n";
    out << "policy " << request.policy << "\n";
    out << "backend_kind " << request.backend_kind << "\n";
    out << "csv " << request.csv_path << "\n";
    out.flush();
    require(out.good(), "submission: write failed: " + temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw Error("submission: cannot rename into place: " + path);
  }
}

CampaignRequest load_submission(const std::string& path) {
  std::ifstream in(path);
  require(in.is_open(), "submission: cannot open: " + path);
  CampaignRequest request;
  std::string line;
  std::size_t line_no = 0;
  bool versioned = false;
  const auto fail = [&](const std::string& why) -> void {
    throw Error("submission " + path + ":" + std::to_string(line_no) + ": " +
                why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (line_no == 1 || !versioned) {
      if (key != "qufi-submission") fail("not a qufi-submission file");
      int version = 0;
      if (!(ls >> version) || version != 1) {
        fail("unsupported submission version");
      }
      versioned = true;
      continue;
    }
    if (key == "name") {
      if (!(ls >> request.name)) fail("bad name line");
    } else if (key == "priority") {
      if (!(ls >> request.priority)) fail("bad priority line");
    } else if (key == "circuit") {
      if (!(ls >> request.circuit)) fail("bad circuit line");
    } else if (key == "width") {
      if (!(ls >> request.width)) fail("bad width line");
    } else if (key == "device") {
      if (!(ls >> request.device)) fail("bad device line");
    } else if (key == "opt_level") {
      if (!(ls >> request.opt_level)) fail("bad opt_level line");
    } else if (key == "grid") {
      if (!(ls >> request.theta_step >> request.phi_step >>
            request.phi_max)) {
        fail("bad grid line");
      }
    } else if (key == "shots") {
      if (!(ls >> request.shots)) fail("bad shots line");
    } else if (key == "seed") {
      if (!(ls >> request.seed)) fail("bad seed line");
    } else if (key == "max_points") {
      if (!(ls >> request.max_points)) fail("bad max_points line");
    } else if (key == "double") {
      int v = 0;
      if (!(ls >> v)) fail("bad double line");
      request.double_fault = v != 0;
    } else if (key == "use_tree") {
      int v = 0;
      if (!(ls >> v)) fail("bad use_tree line");
      request.use_tree = v != 0;
    } else if (key == "idle_noise") {
      int v = 0;
      if (!(ls >> v)) fail("bad idle_noise line");
      request.idle_noise = v != 0;
    } else if (key == "shards") {
      if (!(ls >> request.shards)) fail("bad shards line");
    } else if (key == "policy") {
      if (!(ls >> request.policy)) fail("bad policy line");
    } else if (key == "backend_kind") {
      if (!(ls >> request.backend_kind)) fail("bad backend_kind line");
    } else if (key == "csv") {
      if (!(ls >> request.csv_path)) fail("bad csv line");
    } else {
      fail("unknown key: " + key);
    }
  }
  require(versioned, "submission " + path + ": empty file");
  require(!request.name.empty(), "submission " + path + ": missing name");
  require(!request.csv_path.empty(), "submission " + path + ": missing csv");
  return request;
}

CampaignJob plan_submission(const CampaignRequest& request) {
  require(request.shards >= 1,
          "submission: shards must be >= 1 (campaign " + request.name + ")");

  algo::AlgorithmCircuit bench = [&] {
    if (request.circuit == "ghz") return algo::ghz(request.width);
    if (request.circuit == "grover") {
      return algo::grover(request.width,
                          (1ULL << static_cast<unsigned>(request.width)) - 1);
    }
    return algo::paper_circuit(request.circuit, request.width);
  }();

  CampaignSpec spec;
  spec.circuit = bench.circuit;
  spec.expected_outputs = bench.expected_outputs;
  spec.backend = noise::fake_backend_by_name(request.device, request.width);
  spec.transpile_options.optimization_level = request.opt_level;
  spec.grid.theta_step_deg = request.theta_step;
  spec.grid.phi_step_deg = request.phi_step;
  spec.grid.phi_max_deg = request.phi_max;
  spec.shots = request.shots;
  spec.seed = request.seed;
  spec.max_points = request.max_points;
  spec.use_tree = request.use_tree;
  spec.idle_noise = request.idle_noise;

  dist::ShardPolicy policy;
  if (request.policy == "cost") {
    policy = dist::ShardPolicy::CostWeighted;
  } else if (request.policy == "points") {
    policy = dist::ShardPolicy::PointCount;
  } else if (request.policy == "tree") {
    policy = dist::ShardPolicy::TreeAware;
  } else {
    throw Error("submission: unknown policy: " + request.policy);
  }

  dist::WorkerBackendKind kind;
  if (request.backend_kind == "density") {
    kind = dist::WorkerBackendKind::Density;
  } else if (request.backend_kind == "trajectory") {
    kind = dist::WorkerBackendKind::Trajectory;
  } else {
    throw Error("submission: unknown backend kind: " + request.backend_kind);
  }
  require(!(request.idle_noise && kind == dist::WorkerBackendKind::Trajectory),
          "submission: idle_noise requires the density backend (campaign " +
              request.name + ")");

  const auto plan = dist::plan_campaign_shards(spec, request.shards, policy);
  CampaignJob job;
  job.name = request.name;
  job.priority = request.priority;
  job.csv_path = request.csv_path;
  job.manifests =
      dist::make_manifests(spec, request.device, kind, plan,
                           request.double_fault);
  return job;
}

}  // namespace qufi::service
