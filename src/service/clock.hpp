#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

/// \dir src/service
/// Campaign service layer: a dispatcher that queues submitted campaigns,
/// leases their shards to a worker fleet, supervises the leases
/// (heartbeats, expiry, bounded retries, quarantine of corrupt partials)
/// and streams incremental merges of the partial outputs. Pure library —
/// the qufid CLI wraps it in a process. See docs/DISPATCHER.md.

namespace qufi::service {

/// Millisecond time source the dispatcher schedules against. Injectable so
/// the fault-injection tests script lease expiry deterministically instead
/// of sleeping: every timeout decision in the service layer goes through
/// this interface, never through std::chrono directly.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic milliseconds. Only differences are meaningful.
  virtual std::int64_t now_ms() = 0;
};

/// Wall implementation over std::chrono::steady_clock (monotonic: lease
/// deadlines must not jump with NTP corrections).
class SystemClock final : public Clock {
 public:
  std::int64_t now_ms() override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Scripted test clock: time moves only when the test advances it, so "the
/// worker missed three heartbeat windows" is a statement the test makes,
/// not a race it hopes to win.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t start_ms = 0) : now_(start_ms) {}
  std::int64_t now_ms() override { return now_.load(); }
  void advance(std::int64_t delta_ms) { now_.fetch_add(delta_ms); }
  void set(std::int64_t t_ms) { now_.store(t_ms); }

 private:
  std::atomic<std::int64_t> now_;
};

}  // namespace qufi::service
