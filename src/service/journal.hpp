#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file journal.hpp
/// QUFIJRNL v1 — the dispatcher's crash-durable write-ahead journal.
///
/// An append-only, line-oriented text log of every dispatcher transition
/// (submit / acquire / heartbeat-batch / requeue / quarantine / complete /
/// fail-unknown / campaign-terminal). Each record line carries a strictly
/// increasing sequence number and an FNV-1a checksum of its own bytes, and
/// the file is fsync'd at accept points (acquire, complete, requeue, ...),
/// so after a crash the journal is exactly the set of transitions the
/// dispatcher acknowledged. Recovery is replay: `read_journal` hands back
/// the acknowledged prefix, the Dispatcher reconstructs its state from it
/// and reconciles with the attempt files on disk (docs/DISPATCHER.md).
///
/// Corruption policy, enforced by tests/test_dispatcher.cpp's byte-flip +
/// truncation sweep: a torn *tail* (an unterminated final line — what a
/// crash mid-append leaves) is dropped and the valid prefix returned; any
/// corruption of a complete, newline-terminated record is a hard error
/// with a diagnosis naming the byte offset. Acknowledged transitions are
/// never silently skipped.

namespace qufi::service {

enum class JournalEventType {
  Submit,            ///< campaign registered (manifests already on disk)
  Acquire,           ///< lease issued for one shard attempt
  HeartbeatBatch,    ///< coalesced lease heartbeats since the last record
  Requeue,           ///< shard returned to Pending (expiry/fail/corrupt)
  Quarantine,        ///< attempt file renamed *.quarantined, out of merges
  Complete,          ///< sealed attempt accepted, shard Done
  FailUnknown,       ///< fail() for a lease this dispatcher never issued
  CampaignTerminal,  ///< campaign reached Completed or Failed
};

/// One journal record. Which fields are meaningful depends on `type`; the
/// serialization (format_journal_event / parse) round-trips exactly the
/// fields each type writes and zero-initializes the rest.
struct JournalEvent {
  std::uint64_t seq = 0;  ///< assigned by the writer, strictly +1
  JournalEventType type = JournalEventType::Submit;
  std::int64_t at_ms = 0;  ///< dispatcher clock at append time
  std::uint64_t lease_id = 0;
  std::string campaign;
  std::uint32_t shard_index = 0;
  std::uint32_t attempt = 0;      ///< Acquire: 1-based; Requeue: attempts so far
  int priority = 0;               ///< Submit
  std::uint32_t shard_count = 0;  ///< Submit
  std::string path;    ///< Submit: csv_path; Acquire/Quarantine/Complete: attempt file
  std::string detail;  ///< Requeue/FailUnknown: reason; CampaignTerminal: "completed"|"failed <error>"
  /// HeartbeatBatch: (lease_id, last_beat_ms) pairs.
  std::vector<std::pair<std::uint64_t, std::int64_t>> beats;
};

/// What read_journal recovered.
struct JournalReadResult {
  std::vector<JournalEvent> events;  ///< the acknowledged prefix, in order
  /// True when an unterminated final line (a torn crash-time append) was
  /// dropped. `valid_bytes` then points at its first byte.
  bool truncated_tail = false;
  /// Byte offset of the first non-replayed byte — the resume point a
  /// JournalWriter truncates to before appending.
  std::uint64_t valid_bytes = 0;
  std::uint64_t last_seq = 0;  ///< 0 when no events survived
};

/// Reads and validates a journal. Throws qufi::Error (naming the file and
/// byte offset) on a corrupt header, a checksum mismatch or parse failure
/// in any newline-terminated record, or a sequence-number gap. A torn final
/// line is tolerated per the corruption policy above.
JournalReadResult read_journal(const std::string& path);

/// Appends records to a journal file. Writes are one full line per
/// append(); durability is explicit via sync() so callers batch several
/// records per fsync at accept points.
class JournalWriter {
 public:
  /// Opens `path` for appending. `resume_at_bytes == 0` (re)initializes the
  /// file with a fresh header; otherwise the file is truncated to that
  /// offset (dropping a torn tail found by read_journal) and appending
  /// continues with `next_seq`. Throws qufi::Error on I/O failure.
  JournalWriter(const std::string& path, std::uint64_t next_seq,
                std::uint64_t resume_at_bytes);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Stamps the next sequence number onto `event`, serializes and writes
  /// it. No fsync — call sync() at the accept point. Returns the seq.
  std::uint64_t append(JournalEvent event);

  /// fsync()s the file iff anything was appended since the last sync.
  void sync();

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  bool dirty_ = false;
};

/// Serialization helpers, exposed for the corruption-sweep tests.
std::string format_journal_event(const JournalEvent& event);
const char* journal_event_type_name(JournalEventType type);

}  // namespace qufi::service
