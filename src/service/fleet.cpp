#include "service/fleet.hpp"

#include <algorithm>
#include <chrono>

#include "dist/shard_runner.hpp"
#include "util/error.hpp"

namespace qufi::service {

ThreadWorkerFleet::ThreadWorkerFleet(Dispatcher& dispatcher,
                                     FleetOptions options)
    : dispatcher_(dispatcher), options_(std::move(options)) {
  require(options_.workers > 0, "ThreadWorkerFleet: workers must be positive");
  require(options_.heartbeat_interval_ms > 0,
          "ThreadWorkerFleet: heartbeat_interval_ms must be positive");
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

ThreadWorkerFleet::~ThreadWorkerFleet() { stop(); }

void ThreadWorkerFleet::drain() {
  while (!stopping_.load() && !dispatcher_.idle()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
}

void ThreadWorkerFleet::stop() {
  stopping_.store(true);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (supervisor_.joinable()) supervisor_.join();
}

void ThreadWorkerFleet::worker_loop(int worker_index) {
  const std::string worker_id = "worker-" + std::to_string(worker_index);
  while (!stopping_.load()) {
    std::optional<ShardLease> lease = dispatcher_.acquire(worker_id);
    if (!lease) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.push_back(lease->id);
    }
    try {
      dist::ShardRunOptions run;
      run.threads = options_.threads_per_worker;
      run.snapshot_dir = options_.snapshot_dir;
      run.columnar_output_path = lease->output_path;
      // Live so the dispatcher's incremental merges observe this shard's
      // completed points while it runs — and so a crash mid-shard leaves a
      // salvageable torn prefix instead of nothing.
      run.columnar_live = true;
      dist::run_shard(lease->manifest, run);
      const bool deliver = !options_.deliver_completion ||
                           options_.deliver_completion(*lease);
      if (deliver) {
        dispatcher_.complete(lease->id);
        shards_completed_.fetch_add(1);
      }
    } catch (const Error& e) {
      // fail() returning false means the lease was already expired and
      // requeued (or its campaign is terminal) — the report changed
      // nothing, so it is not counted as a shard failure.
      if (dispatcher_.fail(lease->id, e.what())) shards_failed_.fetch_add(1);
    } catch (const std::exception& e) {
      if (dispatcher_.fail(lease->id, e.what())) shards_failed_.fetch_add(1);
    }
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(
          std::remove(inflight_.begin(), inflight_.end(), lease->id),
          inflight_.end());
    }
  }
}

void ThreadWorkerFleet::supervisor_loop() {
  // One shared heartbeat thread instead of one per worker: workers block
  // inside run_shard for the whole attempt, so they cannot beat their own
  // leases. A heartbeat for a lease the dispatcher already expired returns
  // false and is simply dropped — the worker finds out at complete() time.
  while (!stopping_.load()) {
    std::vector<std::uint64_t> snapshot;
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      snapshot = inflight_;
    }
    for (const std::uint64_t id : snapshot) dispatcher_.heartbeat(id);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.heartbeat_interval_ms));
  }
}

}  // namespace qufi::service
