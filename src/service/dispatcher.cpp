#include "service/dispatcher.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/result_io.hpp"
#include "util/error.hpp"

namespace qufi::service {

struct Dispatcher::Shard {
  std::uint32_t index = 0;
  dist::ShardManifest manifest;
  ShardState state = ShardState::Pending;
  std::uint32_t attempts = 0;
  std::uint32_t quarantined = 0;
  std::uint64_t lease_id = 0;  ///< active lease when state == Leased
  std::string accepted_path;
  std::string last_failure;
  /// Outputs of every attempt, minus quarantined ones — the progress()
  /// input set. Attempt-unique paths mean entries are only ever appended
  /// (or removed on quarantine), never rewritten.
  std::vector<std::string> attempt_paths;
};

struct Dispatcher::Campaign {
  std::string name;
  int priority = 0;
  CampaignState state = CampaignState::Queued;
  std::string csv_path;
  std::string dir;
  std::string error;
  std::uint32_t requeues = 0;
  std::vector<Shard> shards;
};

struct Dispatcher::ActiveLease {
  std::string campaign;
  std::uint32_t shard_index = 0;
  std::string output_path;
  std::string worker_id;
  std::int64_t last_beat_ms = 0;
};

Dispatcher::Dispatcher(DispatcherOptions options, Clock& clock)
    : options_(std::move(options)), clock_(clock) {
  require(options_.lease_timeout_ms > 0,
          "Dispatcher: lease_timeout_ms must be positive");
  require(options_.max_retries >= 0,
          "Dispatcher: max_retries must be non-negative");
}

Dispatcher::~Dispatcher() = default;

void Dispatcher::submit(CampaignJob job) {
  require(!job.name.empty(), "Dispatcher::submit: campaign name is empty");
  require(job.name.find('/') == std::string::npos &&
              job.name.find('\\') == std::string::npos,
          "Dispatcher::submit: campaign name must not contain path "
          "separators: " + job.name);
  require(!job.manifests.empty(),
          "Dispatcher::submit: campaign has no shards: " + job.name);
  require(!job.csv_path.empty(),
          "Dispatcher::submit: campaign has no csv_path: " + job.name);

  std::lock_guard<std::mutex> lock(mutex_);
  require(find_campaign_locked(job.name) == nullptr,
          "Dispatcher::submit: duplicate campaign name: " + job.name);

  auto campaign = std::make_unique<Campaign>();
  campaign->name = job.name;
  campaign->priority = job.priority;
  campaign->csv_path = job.csv_path;
  campaign->dir =
      (std::filesystem::path(options_.work_dir) / job.name).string();
  std::filesystem::create_directories(campaign->dir);
  campaign->shards.reserve(job.manifests.size());
  for (std::size_t i = 0; i < job.manifests.size(); ++i) {
    require(job.manifests[i].shard_index == i,
            "Dispatcher::submit: manifests must arrive in shard-index "
            "order (campaign " + job.name + ")");
    Shard shard;
    shard.index = static_cast<std::uint32_t>(i);
    shard.manifest = std::move(job.manifests[i]);
    campaign->shards.push_back(std::move(shard));
  }
  campaigns_.push_back(std::move(campaign));
}

std::optional<ShardLease> Dispatcher::acquire(const std::string& worker_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  expire_leases_locked();

  // Highest priority wins; submission order breaks ties (strict > keeps the
  // earlier campaign when priorities match).
  Campaign* best = nullptr;
  for (const auto& campaign : campaigns_) {
    if (campaign->state != CampaignState::Queued &&
        campaign->state != CampaignState::Running) {
      continue;
    }
    const bool has_pending =
        std::any_of(campaign->shards.begin(), campaign->shards.end(),
                    [](const Shard& s) {
                      return s.state == ShardState::Pending;
                    });
    if (!has_pending) continue;
    if (best == nullptr || campaign->priority > best->priority) {
      best = campaign.get();
    }
  }
  if (best == nullptr) return std::nullopt;

  Shard* shard = nullptr;
  for (Shard& s : best->shards) {
    if (s.state == ShardState::Pending) {
      shard = &s;
      break;
    }
  }

  ++shard->attempts;
  shard->state = ShardState::Leased;
  const std::uint64_t id = next_lease_id_++;
  shard->lease_id = id;
  char file[64];
  std::snprintf(file, sizeof file, "shard_%03u.attempt%u.qp", shard->index,
                shard->attempts);
  const std::string output =
      (std::filesystem::path(best->dir) / file).string();
  shard->attempt_paths.push_back(output);
  active_[id] = ActiveLease{best->name, shard->index, output, worker_id,
                            clock_.now_ms()};
  best->state = CampaignState::Running;

  ShardLease lease;
  lease.id = id;
  lease.campaign = best->name;
  lease.shard_index = shard->index;
  lease.attempt = shard->attempts;
  lease.manifest = shard->manifest;
  lease.output_path = output;
  return lease;
}

bool Dispatcher::heartbeat(std::uint64_t lease_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  it->second.last_beat_ms = clock_.now_ms();
  return true;
}

void Dispatcher::complete(std::uint64_t lease_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string campaign_name;
  std::uint32_t shard_index = 0;
  std::string output;
  if (auto it = active_.find(lease_id); it != active_.end()) {
    campaign_name = it->second.campaign;
    shard_index = it->second.shard_index;
    output = it->second.output_path;
    retire_lease_locked(lease_id);
  } else if (auto rt = retired_.find(lease_id); rt != retired_.end()) {
    // A presumed-dead worker reporting late: its lease was expired and the
    // shard possibly re-run, but its output is still attempt-unique data —
    // verify it like any other completion.
    campaign_name = rt->second.campaign;
    shard_index = rt->second.shard_index;
    output = rt->second.output_path;
  } else {
    return;  // never issued by this dispatcher
  }

  Campaign* campaign = find_campaign_locked(campaign_name);
  if (campaign == nullptr || campaign->state == CampaignState::Failed) return;
  Shard& shard = campaign->shards[shard_index];
  const bool was_this_lease = shard.lease_id == lease_id;
  if (was_this_lease) shard.lease_id = 0;

  // A completion only counts if the file parses as a sealed partial whose
  // every block checksums clean: a worker that died between its last block
  // flush and finish() leaves an unsealed file, and a flipped bit leaves a
  // checksum mismatch. Constructing the reader validates the header, block
  // index and end marker; the read_block pass validates the block bodies —
  // without it, body corruption would sail through to the final merge and
  // fail the whole campaign instead of costing one retry.
  std::string invalid_reason;
  try {
    resio::ResultReader probe(output, resio::ReadMode::Sealed);
    for (std::size_t i = 0; i < probe.num_blocks(); ++i) {
      (void)probe.read_block(i);
    }
  } catch (const Error& e) {
    invalid_reason = e.what();
  }

  if (!invalid_reason.empty()) {
    const std::string quarantined = output + ".quarantined";
    if (std::rename(output.c_str(), quarantined.c_str()) == 0) {
      ++shard.quarantined;
    }
    auto& paths = shard.attempt_paths;
    paths.erase(std::remove(paths.begin(), paths.end(), output),
                paths.end());
    if (shard.state == ShardState::Leased && was_this_lease) {
      shard.state = ShardState::Pending;  // requeue_locked expects no lease
      requeue_locked(*campaign, shard, "corrupt partial: " + invalid_reason);
    }
    // Done (another attempt already accepted) or re-leased/pending (a stale
    // late completion): the quarantine alone is the whole response.
    return;
  }

  if (shard.state == ShardState::Done) {
    // Duplicate completion: legal only as a bit-exact reproduction of the
    // accepted partial — shards are deterministic, so divergence means a
    // broken worker, and merging either file would be a guess.
    bool same = false;
    std::string why;
    try {
      same = dist::result_files_equivalent(shard.accepted_path, output);
    } catch (const Error& e) {
      why = e.what();
    }
    if (!same) {
      fail_campaign_locked(
          *campaign,
          "campaign '" + campaign->name + "': shard " +
              std::to_string(shard.index) +
              ": duplicate completion diverges from the accepted partial (" +
              (why.empty() ? output + " vs " + shard.accepted_path : why) +
              "); workers must be deterministic");
    }
    return;
  }

  accept_completion_locked(*campaign, shard, output);
}

void Dispatcher::fail(std::uint64_t lease_id, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_.find(lease_id);
  if (it == active_.end()) return;
  const std::string campaign_name = it->second.campaign;
  const std::uint32_t shard_index = it->second.shard_index;
  retire_lease_locked(lease_id);
  Campaign* campaign = find_campaign_locked(campaign_name);
  if (campaign == nullptr || campaign->state == CampaignState::Completed ||
      campaign->state == CampaignState::Failed) {
    return;
  }
  Shard& shard = campaign->shards[shard_index];
  if (shard.state != ShardState::Leased || shard.lease_id != lease_id) return;
  shard.lease_id = 0;
  shard.state = ShardState::Pending;
  requeue_locked(*campaign, shard, "worker failure: " + reason);
}

std::size_t Dispatcher::tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  return expire_leases_locked();
}

std::size_t Dispatcher::expire_leases_locked() {
  const std::int64_t now = clock_.now_ms();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, lease] : active_) {
    if (now - lease.last_beat_ms > options_.lease_timeout_ms) {
      expired.push_back(id);
    }
  }
  for (const std::uint64_t id : expired) {
    const ActiveLease lease = active_.at(id);
    retire_lease_locked(id);
    Campaign* campaign = find_campaign_locked(lease.campaign);
    if (campaign == nullptr ||
        campaign->state == CampaignState::Completed ||
        campaign->state == CampaignState::Failed) {
      continue;
    }
    Shard& shard = campaign->shards[lease.shard_index];
    if (shard.state != ShardState::Leased || shard.lease_id != id) continue;
    shard.lease_id = 0;
    shard.state = ShardState::Pending;
    requeue_locked(*campaign, shard,
                   "lease expired after " +
                       std::to_string(options_.lease_timeout_ms) +
                       " ms without a heartbeat");
  }
  return expired.size();
}

void Dispatcher::retire_lease_locked(std::uint64_t lease_id) {
  auto it = active_.find(lease_id);
  if (it == active_.end()) return;
  retired_[lease_id] = RetiredLease{it->second.campaign,
                                    it->second.shard_index,
                                    it->second.output_path};
  active_.erase(it);
}

void Dispatcher::requeue_locked(Campaign& campaign, Shard& shard,
                                const std::string& why) {
  ++campaign.requeues;
  shard.last_failure = why;
  const std::uint32_t max_attempts =
      static_cast<std::uint32_t>(options_.max_retries) + 1;
  if (shard.attempts >= max_attempts) {
    fail_campaign_locked(
        campaign,
        "campaign '" + campaign.name + "': shard " +
            std::to_string(shard.index) +
            " exhausted its retry budget (" + std::to_string(shard.attempts) +
            " of " + std::to_string(max_attempts) +
            " attempts; last failure: " + why + ")");
  }
  // Otherwise the shard is already Pending and the next acquire re-leases
  // it — attempt-unique output paths make the old attempt's file inert.
}

void Dispatcher::fail_campaign_locked(Campaign& campaign,
                                      const std::string& error) {
  campaign.state = CampaignState::Failed;
  campaign.error = error;
  // Active leases of this campaign are left to finish or expire; their
  // completions are ignored (the campaign is terminal either way).
}

void Dispatcher::accept_completion_locked(Campaign& campaign, Shard& shard,
                                          const std::string& output_path) {
  shard.state = ShardState::Done;
  shard.accepted_path = output_path;
  const bool all_done =
      std::all_of(campaign.shards.begin(), campaign.shards.end(),
                  [](const Shard& s) { return s.state == ShardState::Done; });
  if (all_done) finalize_locked(campaign);
}

void Dispatcher::finalize_locked(Campaign& campaign) {
  std::vector<std::string> inputs;
  inputs.reserve(campaign.shards.size());
  for (const Shard& shard : campaign.shards) {
    inputs.push_back(shard.accepted_path);
  }
  try {
    dist::merge_result_files_to_csv(inputs, campaign.csv_path);
    campaign.state = CampaignState::Completed;
  } catch (const Error& e) {
    fail_campaign_locked(campaign, "campaign '" + campaign.name +
                                       "': final merge failed: " + e.what());
  }
}

Dispatcher::Campaign* Dispatcher::find_campaign_locked(
    const std::string& name) {
  for (const auto& campaign : campaigns_) {
    if (campaign->name == name) return campaign.get();
  }
  return nullptr;
}

const Dispatcher::Campaign* Dispatcher::find_campaign_locked(
    const std::string& name) const {
  for (const auto& campaign : campaigns_) {
    if (campaign->name == name) return campaign.get();
  }
  return nullptr;
}

CampaignStatusView Dispatcher::status_locked(const Campaign& campaign) const {
  CampaignStatusView view;
  view.name = campaign.name;
  view.state = campaign.state;
  view.priority = campaign.priority;
  view.csv_path = campaign.csv_path;
  view.error = campaign.error;
  view.shards_total = campaign.shards.size();
  view.requeues = campaign.requeues;
  for (const Shard& shard : campaign.shards) {
    ShardStatusView sv;
    sv.shard_index = shard.index;
    sv.state = shard.state;
    sv.attempts = shard.attempts;
    sv.quarantined = shard.quarantined;
    sv.accepted_path = shard.accepted_path;
    view.shards.push_back(std::move(sv));
    switch (shard.state) {
      case ShardState::Pending: ++view.shards_pending; break;
      case ShardState::Leased: ++view.shards_leased; break;
      case ShardState::Done: ++view.shards_done; break;
    }
  }
  return view;
}

std::vector<CampaignStatusView> Dispatcher::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CampaignStatusView> views;
  views.reserve(campaigns_.size());
  for (const auto& campaign : campaigns_) {
    views.push_back(status_locked(*campaign));
  }
  return views;
}

CampaignStatusView Dispatcher::campaign_status(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Campaign* campaign = find_campaign_locked(name);
  require(campaign != nullptr,
          "Dispatcher: unknown campaign: " + name);
  return status_locked(*campaign);
}

dist::PrefixMergeResult Dispatcher::progress(const std::string& name) const {
  std::vector<dist::PrefixMergeInput> inputs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Campaign* campaign = find_campaign_locked(name);
    require(campaign != nullptr, "Dispatcher: unknown campaign: " + name);
    for (const Shard& shard : campaign->shards) {
      for (const std::string& path : shard.attempt_paths) {
        inputs.push_back(
            dist::PrefixMergeInput{path, shard.manifest.point_indices});
      }
    }
  }
  // The merge runs unlocked: attempt files are append-only and unique per
  // lease, so reading them races with nothing the lock protects.
  return dist::merge_result_prefix(inputs);
}

bool Dispatcher::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::all_of(campaigns_.begin(), campaigns_.end(),
                     [](const std::unique_ptr<Campaign>& c) {
                       return c->state == CampaignState::Completed ||
                              c->state == CampaignState::Failed;
                     });
}

}  // namespace qufi::service
