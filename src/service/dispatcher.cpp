#include "service/dispatcher.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/result_io.hpp"
#include "util/error.hpp"

namespace qufi::service {

namespace {

/// Manifests are persisted beside the attempt files when journaling, so
/// recovery can rebuild the shard set without re-planning (replay, not
/// re-planning, is the recovery contract).
std::string manifest_path(const std::string& campaign_dir,
                          std::uint32_t shard_index) {
  char file[32];
  std::snprintf(file, sizeof file, "shard_%03u.manifest", shard_index);
  return (std::filesystem::path(campaign_dir) / file).string();
}

/// The completion probe: a file counts iff it parses as a sealed partial
/// whose every block checksums clean. Shared verbatim between complete()
/// and recovery's re-adoption pass — "exactly as complete() does today" is
/// the recovery contract, so it is literally the same code.
bool probe_sealed_clean(const std::string& path, std::string* why) {
  try {
    resio::ResultReader probe(path, resio::ReadMode::Sealed);
    for (std::size_t i = 0; i < probe.num_blocks(); ++i) {
      (void)probe.read_block(i);
    }
    return true;
  } catch (const Error& e) {
    if (why != nullptr) *why = e.what();
    return false;
  }
}

}  // namespace

struct Dispatcher::Shard {
  std::uint32_t index = 0;
  dist::ShardManifest manifest;
  ShardState state = ShardState::Pending;
  std::uint32_t attempts = 0;
  std::uint32_t quarantined = 0;
  std::uint64_t lease_id = 0;  ///< active lease when state == Leased
  std::string accepted_path;
  std::string last_failure;
  /// Outputs of every attempt, minus quarantined ones — the progress()
  /// input set. Attempt-unique paths mean entries are only ever appended
  /// (or removed on quarantine), never rewritten.
  std::vector<std::string> attempt_paths;
};

struct Dispatcher::Campaign {
  std::string name;
  int priority = 0;
  CampaignState state = CampaignState::Queued;
  std::string csv_path;
  std::string dir;
  std::string error;
  std::uint32_t requeues = 0;
  std::vector<Shard> shards;
};

struct Dispatcher::ActiveLease {
  std::string campaign;
  std::uint32_t shard_index = 0;
  std::string output_path;
  std::string worker_id;
  std::int64_t last_beat_ms = 0;
};

Dispatcher::Dispatcher(DispatcherOptions options, Clock& clock)
    : options_(std::move(options)), clock_(clock) {
  require(options_.lease_timeout_ms > 0,
          "Dispatcher: lease_timeout_ms must be positive");
  require(options_.max_retries >= 0,
          "Dispatcher: max_retries must be non-negative");
  if (!options_.journal_path.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    init_journal_locked();
  }
}

Dispatcher::~Dispatcher() = default;

// ---- journal plumbing -------------------------------------------------------

void Dispatcher::init_journal_locked() {
  namespace fs = std::filesystem;
  const std::string& path = options_.journal_path;
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  const bool has_bytes = fs::exists(path, ec) && fs::file_size(path, ec) > 0;
  if (!has_bytes) {
    journal_ = std::make_unique<JournalWriter>(path, 1, 0);
    journal_->sync();
    return;
  }
  // Recovery: replay the acknowledged prefix, resume the journal on a clean
  // line boundary, then reconcile the replayed state with the files on
  // disk. Corruption throws out of the constructor with the offset — a
  // dispatcher never starts on a journal it cannot fully account for.
  const JournalReadResult log = read_journal(path);
  recovery_.recovered = !log.events.empty();
  recovery_.journal_truncated = log.truncated_tail;
  recovery_.events_replayed = log.events.size();
  replay_journal_locked(log.events);
  journal_ = std::make_unique<JournalWriter>(path, log.last_seq + 1,
                                             log.valid_bytes == 0
                                                 ? 0
                                                 : log.valid_bytes);
  adopt_disk_state_locked();
  journal_sync_locked();
}

void Dispatcher::replay_journal_locked(
    const std::vector<JournalEvent>& events) {
  namespace fs = std::filesystem;
  const auto shard_of = [&](const JournalEvent& event) -> Shard& {
    Campaign* campaign = find_campaign_locked(event.campaign);
    require(campaign != nullptr,
            "journal " + options_.journal_path + ": record " +
                std::to_string(event.seq) +
                " references unknown campaign: " + event.campaign);
    require(event.shard_index < campaign->shards.size(),
            "journal " + options_.journal_path + ": record " +
                std::to_string(event.seq) + " references shard " +
                std::to_string(event.shard_index) + " beyond campaign " +
                event.campaign);
    return campaign->shards[event.shard_index];
  };

  for (const JournalEvent& event : events) {
    switch (event.type) {
      case JournalEventType::Submit: {
        require(find_campaign_locked(event.campaign) == nullptr,
                "journal " + options_.journal_path +
                    ": duplicate submit for campaign: " + event.campaign);
        auto campaign = std::make_unique<Campaign>();
        campaign->name = event.campaign;
        campaign->priority = event.priority;
        campaign->csv_path = event.path;
        campaign->dir =
            (fs::path(options_.work_dir) / event.campaign).string();
        campaign->shards.reserve(event.shard_count);
        for (std::uint32_t i = 0; i < event.shard_count; ++i) {
          Shard shard;
          shard.index = i;
          // Manifests were persisted before the submit record was
          // acknowledged; a missing file means the work dir was tampered
          // with, which recovery must refuse rather than re-plan around.
          shard.manifest =
              dist::load_manifest(manifest_path(campaign->dir, i));
          campaign->shards.push_back(std::move(shard));
        }
        campaigns_.push_back(std::move(campaign));
        ++recovery_.campaigns_restored;
        break;
      }
      case JournalEventType::Acquire: {
        Shard& shard = shard_of(event);
        Campaign& campaign = *find_campaign_locked(event.campaign);
        shard.attempts = std::max(shard.attempts, event.attempt);
        shard.state = ShardState::Leased;
        shard.lease_id = event.lease_id;
        shard.attempt_paths.push_back(event.path);
        active_[event.lease_id] =
            ActiveLease{event.campaign, event.shard_index, event.path,
                        "recovered", event.at_ms};
        next_lease_id_ = std::max(next_lease_id_, event.lease_id + 1);
        campaign.state = CampaignState::Running;
        break;
      }
      case JournalEventType::HeartbeatBatch: {
        for (const auto& [lease, at] : event.beats) {
          if (auto it = active_.find(lease); it != active_.end()) {
            it->second.last_beat_ms = at;
          }
        }
        break;
      }
      case JournalEventType::Requeue: {
        Shard& shard = shard_of(event);
        Campaign& campaign = *find_campaign_locked(event.campaign);
        if (shard.state == ShardState::Leased) {
          retire_lease_locked(shard.lease_id);
          shard.lease_id = 0;
          shard.state = ShardState::Pending;
        }
        shard.last_failure = event.detail;
        ++campaign.requeues;
        break;
      }
      case JournalEventType::Quarantine: {
        Shard& shard = shard_of(event);
        ++shard.quarantined;
        auto& paths = shard.attempt_paths;
        paths.erase(std::remove(paths.begin(), paths.end(), event.path),
                    paths.end());
        break;
      }
      case JournalEventType::Complete: {
        Shard& shard = shard_of(event);
        retire_lease_locked(event.lease_id);
        if (shard.lease_id == event.lease_id) shard.lease_id = 0;
        shard.state = ShardState::Done;
        shard.accepted_path = event.path;
        break;
      }
      case JournalEventType::FailUnknown:
        break;  // post-mortem breadcrumb only, no state
      case JournalEventType::CampaignTerminal: {
        Campaign* campaign = find_campaign_locked(event.campaign);
        require(campaign != nullptr,
                "journal " + options_.journal_path +
                    ": terminal record for unknown campaign: " +
                    event.campaign);
        if (event.detail.rfind("failed", 0) == 0) {
          campaign->state = CampaignState::Failed;
          campaign->error = event.detail.size() > 7 ? event.detail.substr(7)
                                                    : std::string();
        } else {
          campaign->state = CampaignState::Completed;
        }
        prune_retired_locked(campaign->name);
        break;
      }
    }
  }
}

void Dispatcher::adopt_disk_state_locked() {
  namespace fs = std::filesystem;
  for (const auto& campaign_ptr : campaigns_) {
    Campaign& campaign = *campaign_ptr;
    if (campaign.state == CampaignState::Failed) continue;
    if (campaign.state == CampaignState::Completed) {
      // The CSV write and the terminal record are one accept point, but a
      // crash can still land between rename and append in the other order
      // across restarts of restarts — re-merging from the accepted partials
      // is idempotent, so a missing final CSV is simply re-finalized.
      std::error_code ec;
      if (!fs::exists(campaign.csv_path, ec)) finalize_locked(campaign);
      continue;
    }
    for (Shard& shard : campaign.shards) {
      if (campaign.state == CampaignState::Failed) break;
      if (shard.state == ShardState::Leased) {
        // The lease's worker died with the daemon. Its attempt file decides:
        // sealed + checksum-clean is a finished shard the crash merely
        // prevented from being reported — adopt it; anything else is the
        // torn artifact of a mid-write kill — quarantine and requeue.
        const std::uint64_t lease_id = shard.lease_id;
        std::string output;
        if (auto it = active_.find(lease_id); it != active_.end()) {
          output = it->second.output_path;
        }
        retire_lease_locked(lease_id);
        shard.lease_id = 0;
        std::string why;
        if (!output.empty() && probe_sealed_clean(output, &why)) {
          ++recovery_.shards_adopted;
          journal_append_locked([&] {
            JournalEvent event;
            event.type = JournalEventType::Complete;
            event.lease_id = lease_id;
            event.campaign = campaign.name;
            event.shard_index = shard.index;
            event.path = output;
            return event;
          }());
          accept_completion_locked(campaign, shard, lease_id, output);
        } else {
          if (!output.empty()) {
            quarantine_locked(campaign, shard, output);
            ++recovery_.files_quarantined;
          }
          shard.state = ShardState::Pending;
          ++recovery_.shards_requeued;
          requeue_locked(campaign, shard,
                         "attempt not adopted at recovery: " +
                             (why.empty() ? "no attempt file" : why));
        }
      } else if (shard.state == ShardState::Done) {
        // Done shards are re-verified by checksum exactly as complete()
        // verified them the first time: bit rot between crash and restart
        // costs one retry, never a corrupt final merge.
        std::string why;
        if (!probe_sealed_clean(shard.accepted_path, &why)) {
          const std::string bad = shard.accepted_path;
          shard.accepted_path.clear();
          shard.state = ShardState::Pending;
          quarantine_locked(campaign, shard, bad);
          ++recovery_.files_quarantined;
          ++recovery_.shards_requeued;
          requeue_locked(campaign, shard,
                         "accepted partial failed re-verification at "
                         "recovery: " + why);
        }
      }
    }
    // Crash between the complete record and the terminal record: every
    // shard is Done but the campaign never finalized. Merge now.
    if ((campaign.state == CampaignState::Running ||
         campaign.state == CampaignState::Queued) &&
        !campaign.shards.empty() &&
        std::all_of(campaign.shards.begin(), campaign.shards.end(),
                    [](const Shard& s) {
                      return s.state == ShardState::Done;
                    })) {
      finalize_locked(campaign);
    }
  }
}

void Dispatcher::journal_append_locked(JournalEvent event) {
  if (!journal_) return;
  if (event.type != JournalEventType::HeartbeatBatch) flush_beats_locked();
  event.at_ms = clock_.now_ms();
  journal_->append(std::move(event));
}

void Dispatcher::flush_beats_locked() {
  if (!journal_ || dirty_beats_.empty()) return;
  JournalEvent event;
  event.type = JournalEventType::HeartbeatBatch;
  event.at_ms = clock_.now_ms();
  event.beats.assign(dirty_beats_.begin(), dirty_beats_.end());
  dirty_beats_.clear();
  journal_->append(std::move(event));
}

void Dispatcher::journal_sync_locked() {
  if (!journal_) return;
  journal_->sync();
}

// ---- submission -------------------------------------------------------------

void Dispatcher::submit(CampaignJob job) {
  require(!job.name.empty(), "Dispatcher::submit: campaign name is empty");
  require(job.name.find('/') == std::string::npos &&
              job.name.find('\\') == std::string::npos,
          "Dispatcher::submit: campaign name must not contain path "
          "separators: " + job.name);
  require(!job.manifests.empty(),
          "Dispatcher::submit: campaign has no shards: " + job.name);
  require(!job.csv_path.empty(),
          "Dispatcher::submit: campaign has no csv_path: " + job.name);

  std::lock_guard<std::mutex> lock(mutex_);
  require(find_campaign_locked(job.name) == nullptr,
          "Dispatcher::submit: duplicate campaign name: " + job.name);

  auto campaign = std::make_unique<Campaign>();
  campaign->name = job.name;
  campaign->priority = job.priority;
  campaign->csv_path = job.csv_path;
  campaign->dir =
      (std::filesystem::path(options_.work_dir) / job.name).string();
  std::filesystem::create_directories(campaign->dir);
  campaign->shards.reserve(job.manifests.size());
  for (std::size_t i = 0; i < job.manifests.size(); ++i) {
    require(job.manifests[i].shard_index == i,
            "Dispatcher::submit: manifests must arrive in shard-index "
            "order (campaign " + job.name + ")");
    Shard shard;
    shard.index = static_cast<std::uint32_t>(i);
    shard.manifest = std::move(job.manifests[i]);
    campaign->shards.push_back(std::move(shard));
  }
  if (journal_) {
    // Manifests hit disk before the submit record: a submit the journal
    // acknowledges is always replayable.
    for (const Shard& shard : campaign->shards) {
      dist::save_manifest(shard.manifest,
                          manifest_path(campaign->dir, shard.index));
    }
    JournalEvent event;
    event.type = JournalEventType::Submit;
    event.campaign = campaign->name;
    event.priority = campaign->priority;
    event.shard_count = static_cast<std::uint32_t>(campaign->shards.size());
    event.path = campaign->csv_path;
    journal_append_locked(std::move(event));
    journal_sync_locked();
  }
  campaigns_.push_back(std::move(campaign));
}

std::optional<ShardLease> Dispatcher::acquire(const std::string& worker_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  expire_leases_locked();

  // Highest priority wins; submission order breaks ties (strict > keeps the
  // earlier campaign when priorities match).
  Campaign* best = nullptr;
  for (const auto& campaign : campaigns_) {
    if (campaign->state != CampaignState::Queued &&
        campaign->state != CampaignState::Running) {
      continue;
    }
    const bool has_pending =
        std::any_of(campaign->shards.begin(), campaign->shards.end(),
                    [](const Shard& s) {
                      return s.state == ShardState::Pending;
                    });
    if (!has_pending) continue;
    if (best == nullptr || campaign->priority > best->priority) {
      best = campaign.get();
    }
  }
  if (best == nullptr) {
    journal_sync_locked();  // expiry requeues above still need durability
    return std::nullopt;
  }

  Shard* shard = nullptr;
  for (Shard& s : best->shards) {
    if (s.state == ShardState::Pending) {
      shard = &s;
      break;
    }
  }

  ++shard->attempts;
  shard->state = ShardState::Leased;
  const std::uint64_t id = next_lease_id_++;
  shard->lease_id = id;
  char file[64];
  std::snprintf(file, sizeof file, "shard_%03u.attempt%u.qp", shard->index,
                shard->attempts);
  const std::string output =
      (std::filesystem::path(best->dir) / file).string();
  shard->attempt_paths.push_back(output);
  active_[id] = ActiveLease{best->name, shard->index, output, worker_id,
                            clock_.now_ms()};
  best->state = CampaignState::Running;

  {
    JournalEvent event;
    event.type = JournalEventType::Acquire;
    event.lease_id = id;
    event.campaign = best->name;
    event.shard_index = shard->index;
    event.attempt = shard->attempts;
    event.path = output;
    journal_append_locked(std::move(event));
    journal_sync_locked();  // the lease id is an acknowledgment
  }

  ShardLease lease;
  lease.id = id;
  lease.campaign = best->name;
  lease.shard_index = shard->index;
  lease.attempt = shard->attempts;
  lease.manifest = shard->manifest;
  lease.output_path = output;
  return lease;
}

bool Dispatcher::heartbeat(std::uint64_t lease_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  it->second.last_beat_ms = clock_.now_ms();
  // Coalesced into one heartbeat-batch record ahead of the next journaled
  // transition (or tick) — heartbeats are the one transition that must not
  // cost an fsync each.
  if (journal_) dirty_beats_[lease_id] = it->second.last_beat_ms;
  return true;
}

void Dispatcher::complete(std::uint64_t lease_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string campaign_name;
  std::uint32_t shard_index = 0;
  std::string output;
  if (auto it = active_.find(lease_id); it != active_.end()) {
    campaign_name = it->second.campaign;
    shard_index = it->second.shard_index;
    output = it->second.output_path;
    retire_lease_locked(lease_id);
  } else if (auto rt = retired_.find(lease_id); rt != retired_.end()) {
    // A presumed-dead worker reporting late: its lease was expired and the
    // shard possibly re-run, but its output is still attempt-unique data —
    // verify it like any other completion.
    campaign_name = rt->second.campaign;
    shard_index = rt->second.shard_index;
    output = rt->second.output_path;
  } else {
    return;  // never issued by this dispatcher, or campaign already terminal
  }

  Campaign* campaign = find_campaign_locked(campaign_name);
  if (campaign == nullptr || campaign->state == CampaignState::Failed) return;
  Shard& shard = campaign->shards[shard_index];
  const bool was_this_lease = shard.lease_id == lease_id;
  if (was_this_lease) shard.lease_id = 0;

  // A completion only counts if the file parses as a sealed partial whose
  // every block checksums clean: a worker that died between its last block
  // flush and finish() leaves an unsealed file, and a flipped bit leaves a
  // checksum mismatch. Constructing the reader validates the header, block
  // index and end marker; the read_block pass validates the block bodies —
  // without it, body corruption would sail through to the final merge and
  // fail the whole campaign instead of costing one retry.
  std::string invalid_reason;
  (void)probe_sealed_clean(output, &invalid_reason);

  if (!invalid_reason.empty()) {
    quarantine_locked(*campaign, shard, output);
    if (shard.state == ShardState::Leased && was_this_lease) {
      shard.state = ShardState::Pending;  // requeue_locked expects no lease
      requeue_locked(*campaign, shard, "corrupt partial: " + invalid_reason);
    }
    journal_sync_locked();
    // Done (another attempt already accepted) or re-leased/pending (a stale
    // late completion): the quarantine alone is the whole response.
    return;
  }

  if (shard.state == ShardState::Done) {
    // Duplicate completion: legal only as a bit-exact reproduction of the
    // accepted partial — shards are deterministic, so divergence means a
    // broken worker, and merging either file would be a guess.
    bool same = false;
    std::string why;
    try {
      same = dist::result_files_equivalent(shard.accepted_path, output);
    } catch (const Error& e) {
      why = e.what();
    }
    if (!same) {
      fail_campaign_locked(
          *campaign,
          "campaign '" + campaign->name + "': shard " +
              std::to_string(shard.index) +
              ": duplicate completion diverges from the accepted partial (" +
              (why.empty() ? output + " vs " + shard.accepted_path : why) +
              "); workers must be deterministic");
      journal_sync_locked();
    }
    return;
  }

  {
    JournalEvent event;
    event.type = JournalEventType::Complete;
    event.lease_id = lease_id;
    event.campaign = campaign->name;
    event.shard_index = shard.index;
    event.path = output;
    journal_append_locked(std::move(event));
  }
  accept_completion_locked(*campaign, shard, lease_id, output);
  journal_sync_locked();  // complete() returning IS the acknowledgment
}

bool Dispatcher::fail(std::uint64_t lease_id, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_.find(lease_id);
  if (it == active_.end()) {
    // Distinguish "lease retired normally, report changed nothing" from a
    // lease id the in-memory maps have never heard of (a caller bug, or a
    // lease pruned with its terminal campaign): the latter is worth a
    // post-mortem breadcrumb in the journal.
    if (retired_.find(lease_id) == retired_.end()) {
      JournalEvent event;
      event.type = JournalEventType::FailUnknown;
      event.lease_id = lease_id;
      event.detail = reason;
      journal_append_locked(std::move(event));
      journal_sync_locked();
    }
    return false;
  }
  const std::string campaign_name = it->second.campaign;
  const std::uint32_t shard_index = it->second.shard_index;
  retire_lease_locked(lease_id);
  Campaign* campaign = find_campaign_locked(campaign_name);
  if (campaign == nullptr || campaign->state == CampaignState::Completed ||
      campaign->state == CampaignState::Failed) {
    return true;
  }
  Shard& shard = campaign->shards[shard_index];
  if (shard.state != ShardState::Leased || shard.lease_id != lease_id) {
    return true;
  }
  shard.lease_id = 0;
  shard.state = ShardState::Pending;
  requeue_locked(*campaign, shard, "worker failure: " + reason);
  journal_sync_locked();
  return true;
}

std::size_t Dispatcher::tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t expired = expire_leases_locked();
  // Persist coalesced heartbeats at the tick cadence so a recovered journal
  // carries recent liveness even across quiet stretches.
  flush_beats_locked();
  journal_sync_locked();
  return expired;
}

std::size_t Dispatcher::expire_leases_locked() {
  const std::int64_t now = clock_.now_ms();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, lease] : active_) {
    if (now - lease.last_beat_ms > options_.lease_timeout_ms) {
      expired.push_back(id);
    }
  }
  for (const std::uint64_t id : expired) {
    const ActiveLease lease = active_.at(id);
    retire_lease_locked(id);
    Campaign* campaign = find_campaign_locked(lease.campaign);
    if (campaign == nullptr ||
        campaign->state == CampaignState::Completed ||
        campaign->state == CampaignState::Failed) {
      continue;
    }
    Shard& shard = campaign->shards[lease.shard_index];
    if (shard.state != ShardState::Leased || shard.lease_id != id) continue;
    shard.lease_id = 0;
    shard.state = ShardState::Pending;
    requeue_locked(*campaign, shard,
                   "lease expired after " +
                       std::to_string(options_.lease_timeout_ms) +
                       " ms without a heartbeat");
  }
  return expired.size();
}

void Dispatcher::retire_lease_locked(std::uint64_t lease_id) {
  auto it = active_.find(lease_id);
  if (it == active_.end()) return;
  // Leases of terminal campaigns are dropped outright: late completions for
  // them change nothing, and remembering them forever is the leak the
  // retired-map prune exists to stop (the journal keeps the forensic
  // record).
  const Campaign* campaign = find_campaign_locked(it->second.campaign);
  if (campaign != nullptr && campaign->state != CampaignState::Completed &&
      campaign->state != CampaignState::Failed) {
    retired_[lease_id] = RetiredLease{it->second.campaign,
                                      it->second.shard_index,
                                      it->second.output_path};
  }
  active_.erase(it);
}

void Dispatcher::prune_retired_locked(const std::string& campaign_name) {
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (it->second.campaign == campaign_name) {
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
}

void Dispatcher::quarantine_locked(Campaign& campaign, Shard& shard,
                                   const std::string& output_path) {
  const std::string quarantined = output_path + ".quarantined";
  if (std::rename(output_path.c_str(), quarantined.c_str()) == 0) {
    ++shard.quarantined;
  }
  auto& paths = shard.attempt_paths;
  paths.erase(std::remove(paths.begin(), paths.end(), output_path),
              paths.end());
  JournalEvent event;
  event.type = JournalEventType::Quarantine;
  event.campaign = campaign.name;
  event.shard_index = shard.index;
  event.path = output_path;
  journal_append_locked(std::move(event));
}

void Dispatcher::requeue_locked(Campaign& campaign, Shard& shard,
                                const std::string& why) {
  ++campaign.requeues;
  shard.last_failure = why;
  {
    JournalEvent event;
    event.type = JournalEventType::Requeue;
    event.campaign = campaign.name;
    event.shard_index = shard.index;
    event.attempt = shard.attempts;
    event.detail = why;
    journal_append_locked(std::move(event));
  }
  const std::uint32_t max_attempts =
      static_cast<std::uint32_t>(options_.max_retries) + 1;
  if (shard.attempts >= max_attempts) {
    fail_campaign_locked(
        campaign,
        "campaign '" + campaign.name + "': shard " +
            std::to_string(shard.index) +
            " exhausted its retry budget (" + std::to_string(shard.attempts) +
            " of " + std::to_string(max_attempts) +
            " attempts; last failure: " + why + ")");
  }
  // Otherwise the shard is already Pending and the next acquire re-leases
  // it — attempt-unique output paths make the old attempt's file inert.
}

void Dispatcher::fail_campaign_locked(Campaign& campaign,
                                      const std::string& error) {
  campaign.state = CampaignState::Failed;
  campaign.error = error;
  {
    JournalEvent event;
    event.type = JournalEventType::CampaignTerminal;
    event.campaign = campaign.name;
    event.detail = "failed " + error;
    journal_append_locked(std::move(event));
  }
  // Active leases of this campaign are left to finish or expire; their
  // completions are ignored (the campaign is terminal either way). Retired
  // leases are pruned — late duplicates for a terminal campaign change
  // nothing, and the journal keeps them reconstructible for post-mortem.
  prune_retired_locked(campaign.name);
}

void Dispatcher::accept_completion_locked(Campaign& campaign, Shard& shard,
                                          std::uint64_t lease_id,
                                          const std::string& output_path) {
  (void)lease_id;  // journaled by the caller before state changes
  shard.state = ShardState::Done;
  shard.accepted_path = output_path;
  const bool all_done =
      std::all_of(campaign.shards.begin(), campaign.shards.end(),
                  [](const Shard& s) { return s.state == ShardState::Done; });
  if (all_done) finalize_locked(campaign);
}

void Dispatcher::finalize_locked(Campaign& campaign) {
  std::vector<std::string> inputs;
  inputs.reserve(campaign.shards.size());
  for (const Shard& shard : campaign.shards) {
    inputs.push_back(shard.accepted_path);
  }
  try {
    dist::merge_result_files_to_csv(inputs, campaign.csv_path);
    campaign.state = CampaignState::Completed;
    JournalEvent event;
    event.type = JournalEventType::CampaignTerminal;
    event.campaign = campaign.name;
    event.detail = "completed";
    journal_append_locked(std::move(event));
    prune_retired_locked(campaign.name);
  } catch (const Error& e) {
    fail_campaign_locked(campaign, "campaign '" + campaign.name +
                                       "': final merge failed: " + e.what());
  }
}

Dispatcher::Campaign* Dispatcher::find_campaign_locked(
    const std::string& name) {
  for (const auto& campaign : campaigns_) {
    if (campaign->name == name) return campaign.get();
  }
  return nullptr;
}

const Dispatcher::Campaign* Dispatcher::find_campaign_locked(
    const std::string& name) const {
  for (const auto& campaign : campaigns_) {
    if (campaign->name == name) return campaign.get();
  }
  return nullptr;
}

CampaignStatusView Dispatcher::status_locked(const Campaign& campaign) const {
  CampaignStatusView view;
  view.name = campaign.name;
  view.state = campaign.state;
  view.priority = campaign.priority;
  view.csv_path = campaign.csv_path;
  view.error = campaign.error;
  view.shards_total = campaign.shards.size();
  view.requeues = campaign.requeues;
  for (const Shard& shard : campaign.shards) {
    ShardStatusView sv;
    sv.shard_index = shard.index;
    sv.state = shard.state;
    sv.attempts = shard.attempts;
    sv.quarantined = shard.quarantined;
    sv.accepted_path = shard.accepted_path;
    view.shards.push_back(std::move(sv));
    switch (shard.state) {
      case ShardState::Pending: ++view.shards_pending; break;
      case ShardState::Leased: ++view.shards_leased; break;
      case ShardState::Done: ++view.shards_done; break;
    }
  }
  return view;
}

std::vector<CampaignStatusView> Dispatcher::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CampaignStatusView> views;
  views.reserve(campaigns_.size());
  for (const auto& campaign : campaigns_) {
    views.push_back(status_locked(*campaign));
  }
  return views;
}

CampaignStatusView Dispatcher::campaign_status(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Campaign* campaign = find_campaign_locked(name);
  require(campaign != nullptr,
          "Dispatcher: unknown campaign: " + name);
  return status_locked(*campaign);
}

std::size_t Dispatcher::retired_lease_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retired_.size();
}

dist::PrefixMergeResult Dispatcher::progress(const std::string& name) const {
  std::vector<dist::PrefixMergeInput> inputs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Campaign* campaign = find_campaign_locked(name);
    require(campaign != nullptr, "Dispatcher: unknown campaign: " + name);
    for (const Shard& shard : campaign->shards) {
      for (const std::string& path : shard.attempt_paths) {
        inputs.push_back(
            dist::PrefixMergeInput{path, shard.manifest.point_indices});
      }
    }
  }
  // The merge runs unlocked: attempt files are append-only and unique per
  // lease, so reading them races with nothing the lock protects.
  return dist::merge_result_prefix(inputs);
}

bool Dispatcher::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::all_of(campaigns_.begin(), campaigns_.end(),
                     [](const std::unique_ptr<Campaign>& c) {
                       return c->state == CampaignState::Completed ||
                              c->state == CampaignState::Failed;
                     });
}

}  // namespace qufi::service
