#pragma once

#include <cstdint>
#include <string>

#include "service/dispatcher.hpp"

namespace qufi::service {

/// A campaign submission as it travels from qufi_submit to qufid: the
/// campaign *definition* (the same knobs qufi_cli and qufi_shard_plan
/// take), not the planned shards — the dispatcher plans on intake, so a
/// submission stays a dozen lines of text however large the campaign is.
/// Serialized as versioned `key value` lines (docs/DISPATCHER.md).
struct CampaignRequest {
  std::string name;
  int priority = 0;
  std::string circuit = "bv";  ///< bv | dj | qft | ghz | grover
  int width = 4;
  std::string device = "casablanca";
  int opt_level = 3;
  double theta_step = 15.0;
  double phi_step = 15.0;
  double phi_max = 360.0;
  std::uint64_t shots = 0;
  std::uint64_t seed = 0x51754649;
  std::size_t max_points = 0;
  bool double_fault = false;
  bool use_tree = true;
  bool idle_noise = false;
  std::uint32_t shards = 2;
  std::string policy = "cost";          ///< cost | points | tree
  std::string backend_kind = "density"; ///< density | trajectory
  std::string csv_path;
};

/// Writes `request` to `path` (temp + rename, so a spool watcher never
/// reads a half-written submission). Throws qufi::Error on I/O failure.
void save_submission(const CampaignRequest& request, const std::string& path);

/// Parses a submission written by save_submission. Throws qufi::Error with
/// a line-tagged reason on malformed input or an unsupported version.
CampaignRequest load_submission(const std::string& path);

/// Turns a request into a dispatchable job: builds the circuit and device,
/// plans the shard partition (deterministic — re-planning the same request
/// reproduces identical manifests), and stamps the job's name, priority and
/// CSV path. Throws qufi::Error on unknown circuit/policy/backend names or
/// invalid combinations (idle noise on the trajectory family).
CampaignJob plan_submission(const CampaignRequest& request);

}  // namespace qufi::service
