#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "service/dispatcher.hpp"

namespace qufi::service {

/// ThreadWorkerFleet knobs.
struct FleetOptions {
  /// Concurrent worker threads (each runs one shard at a time).
  int workers = 2;
  /// Engine threads inside each worker's campaign run (ShardRunOptions::
  /// threads). Keep workers x threads near the core count.
  int threads_per_worker = 1;
  /// Shared snapshot-cache directory for all workers; empty = no cache.
  std::string snapshot_dir;
  /// How often the supervisor thread refreshes every in-flight lease. Keep
  /// well under the dispatcher's lease_timeout_ms (a third or less).
  std::int64_t heartbeat_interval_ms = 1'000;
  /// Idle worker backoff between acquire() polls.
  std::int64_t poll_interval_ms = 20;
  /// Test-only fault hook, called after a shard ran but before its
  /// completion is reported. Return false to swallow the completion —
  /// exactly what a worker killed between finish() and complete() looks
  /// like to the dispatcher (sealed file on disk, lease left to expire).
  /// Must be thread-safe; null means always deliver.
  std::function<bool(const ShardLease&)> deliver_completion;
};

/// An in-process worker fleet: N threads that acquire leases, run shards
/// (streaming Live columnar partials so progress merges can tail them),
/// heartbeat through a shared supervisor thread, and report completions or
/// failures. This is the library fleet qufid's --fleet thread mode uses and
/// the end-to-end tests drive; the SIGKILL-able process fleet lives in the
/// qufid binary itself (docs/DISPATCHER.md).
class ThreadWorkerFleet {
 public:
  /// Starts the workers immediately. The dispatcher must outlive the fleet.
  ThreadWorkerFleet(Dispatcher& dispatcher, FleetOptions options = {});
  /// Stops and joins (see stop()).
  ~ThreadWorkerFleet();

  ThreadWorkerFleet(const ThreadWorkerFleet&) = delete;
  ThreadWorkerFleet& operator=(const ThreadWorkerFleet&) = delete;

  /// Blocks until the dispatcher reports idle (every campaign terminal).
  /// New submissions during the wait are picked up and waited for too.
  void drain();

  /// Asks workers to finish their current shard and exit, then joins them.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Shards completed (reported) by this fleet so far.
  std::uint64_t shards_completed() const { return shards_completed_.load(); }
  /// Shard runs that threw and were reported via Dispatcher::fail().
  std::uint64_t shards_failed() const { return shards_failed_.load(); }

 private:
  void worker_loop(int worker_index);
  void supervisor_loop();

  Dispatcher& dispatcher_;
  FleetOptions options_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> shards_completed_{0};
  std::atomic<std::uint64_t> shards_failed_{0};
  /// Lease ids currently being executed, for the supervisor to heartbeat.
  std::mutex inflight_mutex_;
  std::vector<std::uint64_t> inflight_;
  std::vector<std::thread> workers_;
  std::thread supervisor_;
};

}  // namespace qufi::service
