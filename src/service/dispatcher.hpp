#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dist/manifest.hpp"
#include "dist/merge.hpp"
#include "service/clock.hpp"
#include "service/journal.hpp"

namespace qufi::service {

/// Dispatcher-wide knobs.
struct DispatcherOptions {
  /// Spool directory for shard partials: every leased attempt streams its
  /// columnar output to `<work_dir>/<campaign>/shard_<i>.attempt<k>.qp`.
  /// Attempt-unique paths are what make requeues race-free: a retry never
  /// truncates a file the incremental merger may be tailing.
  std::string work_dir = ".";
  /// A lease whose last heartbeat is older than this is presumed dead and
  /// requeued on the next tick()/acquire().
  std::int64_t lease_timeout_ms = 30'000;
  /// Re-lease budget per shard after its first attempt: a shard may run at
  /// most `max_retries + 1` times before its campaign fails.
  int max_retries = 2;
  /// Write-ahead journal (QUFIJRNL v1, src/service/journal.hpp). Empty
  /// disables durability: the dispatcher is then in-memory only, as before
  /// PR 10. When set, every transition is journaled (fsync'd at accept
  /// points), shard manifests are persisted beside the attempt files, and
  /// constructing a Dispatcher over an existing journal *recovers*: the
  /// journal is replayed, still-valid attempt files re-adopted, and no
  /// Done shard is ever re-run (docs/DISPATCHER.md "Crash durability").
  std::string journal_path;
};

/// What recovery found when a Dispatcher was constructed over a non-empty
/// journal. All zeros (recovered == false) for a fresh dispatcher.
struct RecoveryReport {
  bool recovered = false;          ///< the journal held acknowledged events
  bool journal_truncated = false;  ///< a torn tail record was dropped
  std::size_t events_replayed = 0;
  std::size_t campaigns_restored = 0;
  /// Leased-at-crash attempts whose file probed sealed + checksum-clean and
  /// was accepted as a completion without re-running the shard.
  std::size_t shards_adopted = 0;
  /// Shards requeued at recovery (torn / missing / corrupt attempt files).
  std::size_t shards_requeued = 0;
  /// Attempt files renamed *.quarantined during recovery.
  std::size_t files_quarantined = 0;
};

/// One campaign as submitted to the dispatcher: a name (unique while the
/// dispatcher lives), a priority, the planned shard manifests, and where
/// the final merged CSV goes.
struct CampaignJob {
  std::string name;
  /// Higher runs first; ties go to the earlier submission. Checked on every
  /// acquire(), so a higher-priority submission preempts the *remaining*
  /// shards of a running campaign (leased shards finish undisturbed).
  int priority = 0;
  std::vector<dist::ShardManifest> manifests;
  /// Final merged campaign CSV, written (temp + rename) when the last
  /// shard's accepted partial lands. Byte-identical to the single-process
  /// campaign's CSV (docs/DISPATCHER.md).
  std::string csv_path;
};

enum class ShardState {
  Pending,  ///< waiting for a worker (initial state, and after a requeue)
  Leased,   ///< running under an active lease
  Done,     ///< an accepted sealed partial exists
};

enum class CampaignState {
  Queued,     ///< submitted, no shard leased yet
  Running,    ///< at least one shard leased or done
  Completed,  ///< all shards done, final CSV written
  Failed,     ///< retry budget exhausted, divergent retry, or merge failure
};

/// What a worker holds while it runs one shard attempt.
struct ShardLease {
  std::uint64_t id = 0;  ///< heartbeat/complete/fail key, never reused
  std::string campaign;
  std::uint32_t shard_index = 0;
  std::uint32_t attempt = 1;  ///< 1-based attempt number for this shard
  dist::ShardManifest manifest;
  /// Where this attempt must stream its columnar partial (WriteMode::Live,
  /// so the dispatcher's progress merges can tail it).
  std::string output_path;
};

struct ShardStatusView {
  std::uint32_t shard_index = 0;
  ShardState state = ShardState::Pending;
  std::uint32_t attempts = 0;     ///< leases handed out so far
  std::uint32_t quarantined = 0;  ///< corrupt completions set aside
  std::string accepted_path;      ///< non-empty once Done
};

struct CampaignStatusView {
  std::string name;
  CampaignState state = CampaignState::Queued;
  int priority = 0;
  std::string csv_path;
  std::string error;  ///< diagnosis when state == Failed
  std::size_t shards_total = 0;
  std::size_t shards_done = 0;
  std::size_t shards_leased = 0;
  std::size_t shards_pending = 0;
  std::uint32_t requeues = 0;  ///< expired or failed leases, total
  std::vector<ShardStatusView> shards;
};

/// The campaign dispatcher: a deterministic, clock-driven state machine
/// with no threads of its own. Workers (in-process threads, forked
/// processes, tests) drive it through four calls — acquire / heartbeat /
/// complete / fail — and time only advances through the injected Clock, so
/// every failure scenario in tests/test_dispatcher.cpp is a script, not a
/// sleep. All methods are thread-safe. See docs/DISPATCHER.md for the
/// lease/heartbeat/retry state machine.
class Dispatcher {
 public:
  /// Constructs the dispatcher. When options.journal_path names an existing
  /// non-empty journal, this IS the recovery path: the journal is replayed,
  /// Done shards and retry budgets restored, leased-at-crash attempts
  /// reconciled with their files on disk (sealed + checksum-clean files are
  /// adopted as completions exactly as complete() would accept them; torn
  /// Live files are quarantined and the shard requeued against its budget),
  /// and the journal resumes appending. Throws qufi::Error with an
  /// offset-naming diagnosis on journal corruption — recovery never
  /// silently drops acknowledged transitions. recovery_report() says what
  /// happened.
  Dispatcher(DispatcherOptions options, Clock& clock);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Registers a campaign and creates its spool directory. Throws
  /// qufi::Error on a duplicate or empty name, a name with path
  /// separators, or an empty manifest list.
  void submit(CampaignJob job);

  /// Leases the next shard: highest campaign priority first (ties to the
  /// earlier submission), lowest pending shard index within the campaign.
  /// Expires stale leases first, so a single-threaded poll loop never needs
  /// to call tick() separately. Returns nullopt when nothing is pending.
  /// `worker_id` is diagnostic only.
  std::optional<ShardLease> acquire(const std::string& worker_id);

  /// Refreshes a lease's deadline. Returns false when the lease is no
  /// longer active (expired and requeued, or already completed): the worker
  /// should abandon the attempt — its output file stays untouched, and a
  /// late complete() is still handled gracefully.
  bool heartbeat(std::uint64_t lease_id);

  /// Reports the attempt's output as finished. Verifies the file is a
  /// sealed, readable partial: a corrupt or unsealed file is quarantined
  /// (renamed `*.quarantined`, never merged) and the shard requeued against
  /// its retry budget. A duplicate completion (the shard already Done via
  /// another attempt) is verified bit-exact against the accepted partial
  /// and dropped; divergence fails the campaign — determinism is the
  /// contract that makes requeues safe. When the last shard lands, the
  /// final CSV is merged and written before complete() returns.
  void complete(std::uint64_t lease_id);

  /// Voluntary failure (the worker caught an exception): requeues the
  /// shard against its retry budget. Returns false when the lease is no
  /// longer active (expired and requeued, or already completed) — the
  /// report changed nothing, mirroring heartbeat(), so fleets can tell
  /// "lease already expired" from a caller bug. A lease id this dispatcher
  /// never issued is additionally journaled (fail-unknown) for post-mortem.
  bool fail(std::uint64_t lease_id, const std::string& reason);

  /// Expires leases whose heartbeat is older than lease_timeout_ms and
  /// requeues their shards (or fails the campaign when the retry budget is
  /// spent). Returns the number of leases expired. acquire() calls this
  /// implicitly; explicit calls are for fleets that may sit idle.
  std::size_t tick();

  /// All campaigns, in submission order.
  std::vector<CampaignStatusView> status() const;
  /// One campaign. Throws qufi::Error on an unknown name.
  CampaignStatusView campaign_status(const std::string& name) const;

  /// The campaign's live merge frontier: an incremental k-way merge
  /// (dist::merge_result_prefix) over every non-quarantined attempt file,
  /// each tailed in ReadMode::Tail. The returned record prefix is a
  /// bit-exact, monotonically growing prefix of the final merged output.
  /// Throws qufi::Error on an unknown name or corruption inside a readable
  /// attempt file.
  dist::PrefixMergeResult progress(const std::string& name) const;

  /// True when every campaign is terminal (Completed or Failed).
  bool idle() const;

  /// What constructing over an existing journal recovered (all-zeros for a
  /// fresh dispatcher). Written once in the constructor, immutable after.
  const RecoveryReport& recovery_report() const { return recovery_; }

  /// Retired leases currently remembered for late-duplicate verification.
  /// Entries are pruned when their campaign reaches a terminal state (the
  /// journal keeps late completions reconstructible for post-mortem), so a
  /// long-running daemon's map stays bounded by in-flight work.
  std::size_t retired_lease_count() const;

 private:
  struct Shard;
  struct Campaign;
  struct ActiveLease;

  Campaign* find_campaign_locked(const std::string& name);
  const Campaign* find_campaign_locked(const std::string& name) const;
  std::size_t expire_leases_locked();
  void retire_lease_locked(std::uint64_t lease_id);
  void requeue_locked(Campaign& campaign, Shard& shard,
                      const std::string& why);
  void fail_campaign_locked(Campaign& campaign, const std::string& error);
  void accept_completion_locked(Campaign& campaign, Shard& shard,
                                std::uint64_t lease_id,
                                const std::string& output_path);
  void finalize_locked(Campaign& campaign);
  void prune_retired_locked(const std::string& campaign_name);
  void quarantine_locked(Campaign& campaign, Shard& shard,
                         const std::string& output_path);
  CampaignStatusView status_locked(const Campaign& campaign) const;

  // Journal plumbing (all no-ops when options_.journal_path is empty).
  void init_journal_locked();
  void replay_journal_locked(const std::vector<JournalEvent>& events);
  void adopt_disk_state_locked();
  void journal_append_locked(JournalEvent event);
  void flush_beats_locked();
  void journal_sync_locked();

  DispatcherOptions options_;
  Clock& clock_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Campaign>> campaigns_;  // submission order
  std::map<std::uint64_t, ActiveLease> active_;
  /// Retired leases (expired, completed, failed) kept so a late complete()
  /// from a presumed-dead worker can still be verified and credited. Pruned
  /// once the campaign is terminal (see retired_lease_count()).
  struct RetiredLease {
    std::string campaign;
    std::uint32_t shard_index = 0;
    std::string output_path;
  };
  std::map<std::uint64_t, RetiredLease> retired_;
  std::uint64_t next_lease_id_ = 1;
  std::unique_ptr<JournalWriter> journal_;
  /// Heartbeats since the last journal record, coalesced into one
  /// heartbeat-batch line (per-beat fsync would dominate the journal).
  std::map<std::uint64_t, std::int64_t> dirty_beats_;
  RecoveryReport recovery_;
};

}  // namespace qufi::service
