#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qufi {

/// Radiation-induced transient fault on one qubit, modeled (paper §III) as
/// a phase shift of parametrized magnitude: the injected gate is
/// U(theta, phi, lambda=0) from Eq. (3). theta shifts the |0>/|1>
/// probability; phi rotates about Z. Magnitudes depend on the deposited
/// charge, hence the parameter sweep.
struct PhaseShiftFault {
  double theta = 0.0;  ///< radians, [0, pi]
  double phi = 0.0;    ///< radians, [0, 2 pi)

  /// The injector gate as a circuit instruction on `qubit`.
  circ::Instruction as_instruction(int qubit) const;

  /// True for (0, 0): injecting it reproduces the fault-free circuit.
  bool is_identity() const { return theta == 0.0 && phi == 0.0; }

  std::string label() const;
};

/// The paper's injection sweep: phi in [0, 2 pi) and theta in [0, pi],
/// both in 15-degree steps -> 24 x 13 = 312 configurations per injection
/// point. Benches shrink the step for quick runs (structure unchanged).
struct FaultParamGrid {
  double theta_step_deg = 15.0;
  double phi_step_deg = 15.0;
  double theta_max_deg = 180.0;  ///< inclusive
  double phi_max_deg = 360.0;    ///< exclusive at 360, inclusive below

  int num_theta() const;
  int num_phi() const;
  int num_configs() const { return num_theta() * num_phi(); }

  double theta_at(int i) const;  ///< radians
  double phi_at(int j) const;    ///< radians

  /// All (theta, phi) combinations, phi-major ordering.
  std::vector<PhaseShiftFault> enumerate() const;

  /// Validates steps/ranges; throws qufi::Error on bad values.
  void validate() const;
};

/// Named fault whose phase shift matches a basic gate's action — the four
/// faults the paper injects on the physical machine (Fig. 11).
struct NamedFault {
  std::string name;
  PhaseShiftFault fault;
};

/// T (phi=pi/4), S (phi=pi/2), Z (phi=pi) and the Y-like shift
/// (theta=pi, phi=pi/2); all with lambda = 0 per the fault model.
std::vector<NamedFault> gate_equivalent_faults();

}  // namespace qufi
