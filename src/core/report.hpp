#pragma once

#include <span>
#include <string>

#include "core/campaign.hpp"
#include "core/results.hpp"
#include "util/stats.hpp"

namespace qufi {

/// Pretty-prints an angle as a multiple of pi ("3pi/4") or degrees.
std::string angle_label(double radians);

/// Rendering knobs for heatmap reports.
struct HeatmapReportOptions {
  bool color = false;
  /// Delta heatmaps (Fig. 9) are centered on 0: thresholds +-0.05 and the
  /// value range is [-1, 1].
  bool delta = false;
};

/// Terminal rendering of a QVF heatmap, phi on rows (descending, like the
/// paper's y axis) and theta on columns.
std::string render_heatmap(const HeatmapGrid& grid, const std::string& title,
                           const HeatmapReportOptions& options = {});

/// Terminal rendering of a QVF density histogram (Fig. 7 / Fig. 10 style).
std::string render_histogram(const util::Histogram& hist,
                             const std::string& title);

/// One-paragraph campaign summary: executions, fault-free QVF, mean/stddev,
/// masked/dubious/silent breakdown.
std::string render_campaign_summary(const CampaignResult& result);

/// Side-by-side table of named-fault QVF for two executions (Fig. 11:
/// simulation vs machine), with absolute differences.
std::string render_named_fault_comparison(
    std::span<const NamedFaultQvf> series_a,
    std::span<const NamedFaultQvf> series_b, const std::string& name_a,
    const std::string& name_b);

/// Writes a heatmap as CSV (phi rows x theta columns).
void write_heatmap_csv(const HeatmapGrid& grid, const std::string& path);

}  // namespace qufi
