#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/fault_model.hpp"
#include "core/injection.hpp"
#include "util/stats.hpp"

namespace qufi {

namespace util {
class CsvWriter;
}  // namespace util

/// One executed injection configuration and its score.
struct InjectionRecord {
  std::uint32_t point_index = 0;  ///< into CampaignResult::points
  std::int32_t theta_index = 0;   ///< primary-fault grid indices
  std::int32_t phi_index = 0;
  // Double-fault fields (negative when single fault):
  std::int32_t neighbor_qubit = -1;
  std::int32_t theta1_index = -1;
  std::int32_t phi1_index = -1;

  double qvf = 0.0;
  double pa = 0.0;  ///< correct-state probability mass
  double pb = 0.0;  ///< strongest incorrect state
};

/// (theta, phi)-indexed aggregation of QVF values — the data behind the
/// paper's heatmap figures. mean_qvf[phi_index][theta_index].
struct HeatmapGrid {
  std::vector<double> theta_rad;
  std::vector<double> phi_rad;
  std::vector<std::vector<double>> mean_qvf;
  std::vector<std::vector<std::uint64_t>> samples;

  /// Elementwise difference this - other (paper Fig. 9). Grids must match.
  HeatmapGrid delta(const HeatmapGrid& other) const;

  double at(int phi_index, int theta_index) const;
};

/// Receives completed record blocks from a running campaign engine.
///
/// When CampaignSpec::record_sink is set, the engine hands each injection
/// point's finished record slice to emit() the moment its grid sweep
/// completes — blocks arrive in completion order, not point order, and
/// concurrently from pool lanes, so implementations must be internally
/// synchronized and must consume the span before returning (it aliases
/// engine-owned storage that is recycled afterwards). Each emitted block is
/// one whole point's records, sorted in enumeration order — exactly the
/// block shape the columnar result container stores (src/core/result_io.hpp)
/// and the streaming shard merger consumes.
class ResultBlockSink {
 public:
  virtual ~ResultBlockSink() = default;
  virtual void emit(std::span<const InjectionRecord> records) = 0;
};

/// Campaign-level metadata for reports.
struct CampaignMetadata {
  std::string circuit_name;
  std::string backend_name;
  int circuit_qubits = 0;
  int transpiled_gates = 0;
  FaultParamGrid grid;
  std::uint64_t shots = 0;  ///< 0 = exact distributions
  std::uint64_t seed = 0;
  bool double_fault = false;
  /// Moment-scheduled idle-qubit relaxation was active (see
  /// CampaignSpec::idle_noise). Carried through partial-result files so the
  /// shard merger can reject mixing idle-noise and plain shards.
  bool idle_noise = false;
  /// Campaign ran in adaptive estimation mode (CampaignSpec::adaptive):
  /// records cover only the estimator's evaluated subset of each point's
  /// grid. Carried through partial-result files and manifests so the shard
  /// merger can reject mixing adaptive and exhaustive shards (or shards
  /// with differing policies, which sample different config sets).
  bool adaptive = false;
  AdaptivePolicy adaptive_policy;  ///< meaningful only when `adaptive`
  double faultfree_qvf = 0.0;  ///< QVF of the noisy, fault-free execution
  std::uint64_t executions = 0;  ///< faulty circuits executed
  std::uint64_t injections = 0;  ///< paper accounting: executions x shots
};

/// Full output of a fault-injection campaign plus the aggregations used by
/// every figure of the paper.
class CampaignResult {
 public:
  CampaignMetadata meta;
  std::vector<InjectionPoint> points;
  std::vector<InjectionRecord> records;
  /// Adaptive campaigns only: per-point estimator outputs, parallel to
  /// `points` (empty otherwise). Derived data — every exporter recomputes
  /// these from `records` via replay_adaptive_point rather than trusting
  /// this vector, so merged-shard and single-process projections cannot
  /// diverge; it exists for in-process consumers (CLIs, tests).
  std::vector<AdaptivePointEstimate> point_estimates;

  /// Mean QVF per primary (theta, phi) cell over all points (Fig. 5; for
  /// double campaigns this averages over all secondary combos too, Fig 8b).
  HeatmapGrid mean_heatmap() const;

  /// Mean heatmap restricted to points attributed to one logical qubit
  /// (Fig. 6 per-qubit profiles).
  HeatmapGrid heatmap_for_logical_qubit(int logical_qubit) const;

  /// Distinct logical qubits appearing across points (sorted).
  std::vector<int> logical_qubits() const;

  /// For double campaigns: QVF over the secondary (theta1, phi1) grid with
  /// the primary fault fixed (Fig. 8c "explosion plot").
  HeatmapGrid secondary_detail(int theta_index, int phi_index) const;

  /// All per-record QVF values, in record order.
  std::vector<double> all_qvf() const;

  util::Histogram qvf_histogram(std::size_t bins = 25) const;
  util::RunningStats qvf_stats() const;

  /// Fraction of records in each impact class (masked/dubious/silent).
  struct ImpactBreakdown {
    double masked = 0.0;
    double dubious = 0.0;
    double silent = 0.0;
  };
  ImpactBreakdown impact_breakdown() const;

  /// Writes one row per record (plus a metadata header comment). Rows are
  /// sorted by point index (stable within a point), so output is
  /// deterministic for merged shard results as well as single-process runs;
  /// the column schema is documented in the README ("Campaign CSV schema").
  /// The file is written to a temp name and renamed into place, so a
  /// crashed export can never leave a truncated CSV behind.
  void write_csv(const std::string& path) const;

 private:
  HeatmapGrid empty_primary_grid() const;
};

/// The two leading rows of every campaign CSV (metadata comment + column
/// header). Shared by CampaignResult::write_csv and the streaming exporters
/// (qufi_export_csv, the columnar shard merger), so their output is
/// byte-identical by construction.
void write_csv_preamble(util::CsvWriter& csv, const CampaignMetadata& meta);

/// One record row of the campaign CSV (see write_csv_preamble). Adaptive
/// campaigns append per-point estimator columns, so `estimate` must be
/// non-null when meta.adaptive (use adaptive_point_estimate on the point's
/// complete record block); it is ignored otherwise.
void write_csv_record(util::CsvWriter& csv, const CampaignMetadata& meta,
                      std::span<const InjectionPoint> points,
                      const InjectionRecord& record,
                      const AdaptivePointEstimate* estimate = nullptr);

/// Recomputes one point's adaptive estimate from its complete record block
/// (all records share one point_index) by replaying the estimator against
/// the recorded QVF values — the single projection path every CSV exporter
/// shares. Throws qufi::Error when the block does not exactly match the
/// estimator's evaluated config set for that point.
AdaptivePointEstimate adaptive_point_estimate(
    const CampaignMetadata& meta, std::span<const InjectionRecord> records);

/// Paper-style injection accounting: executions x shots ("we report the
/// finding of more than 285,249,536 injections").
std::uint64_t single_campaign_executions(std::size_t num_points,
                                         const FaultParamGrid& grid);
std::uint64_t double_campaign_executions(std::size_t num_point_neighbor_pairs,
                                         const FaultParamGrid& primary_grid);

/// executions x shots, with exact runs (shots == 0) counting one injection
/// per execution — the single source of CampaignMetadata::injections,
/// shared by the campaign engines and the shard merger.
std::uint64_t campaign_injections(std::uint64_t executions,
                                  std::uint64_t shots);

}  // namespace qufi
