#include "core/fault_model.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "util/error.hpp"

namespace qufi {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kDegToRad = kPi / 180.0;
}  // namespace

circ::Instruction PhaseShiftFault::as_instruction(int qubit) const {
  return circ::Instruction{circ::GateKind::U, {qubit}, {}, {theta, phi, 0.0}};
}

std::string PhaseShiftFault::label() const {
  std::ostringstream os;
  os.precision(4);
  os << "U(theta=" << theta << ", phi=" << phi << ", 0)";
  return os.str();
}

int FaultParamGrid::num_theta() const {
  return static_cast<int>(std::lround(theta_max_deg / theta_step_deg)) + 1;
}

int FaultParamGrid::num_phi() const {
  const auto steps = static_cast<int>(std::lround(phi_max_deg / phi_step_deg));
  // [0, 360) excludes the endpoint (it aliases 0); smaller ranges include it.
  return phi_max_deg >= 360.0 - 1e-9 ? steps : steps + 1;
}

double FaultParamGrid::theta_at(int i) const {
  require(i >= 0 && i < num_theta(), "FaultParamGrid: theta index range");
  return static_cast<double>(i) * theta_step_deg * kDegToRad;
}

double FaultParamGrid::phi_at(int j) const {
  require(j >= 0 && j < num_phi(), "FaultParamGrid: phi index range");
  return static_cast<double>(j) * phi_step_deg * kDegToRad;
}

std::vector<PhaseShiftFault> FaultParamGrid::enumerate() const {
  validate();
  std::vector<PhaseShiftFault> out;
  out.reserve(static_cast<std::size_t>(num_configs()));
  for (int j = 0; j < num_phi(); ++j) {
    for (int i = 0; i < num_theta(); ++i) {
      out.push_back(PhaseShiftFault{theta_at(i), phi_at(j)});
    }
  }
  return out;
}

void FaultParamGrid::validate() const {
  require(theta_step_deg > 0 && phi_step_deg > 0,
          "FaultParamGrid: steps must be positive");
  require(theta_max_deg > 0 && theta_max_deg <= 180.0,
          "FaultParamGrid: theta range must be (0, 180]");
  require(phi_max_deg > 0 && phi_max_deg <= 360.0,
          "FaultParamGrid: phi range must be (0, 360]");
  const double theta_steps = theta_max_deg / theta_step_deg;
  const double phi_steps = phi_max_deg / phi_step_deg;
  require(std::abs(theta_steps - std::round(theta_steps)) < 1e-9,
          "FaultParamGrid: theta step must divide the range");
  require(std::abs(phi_steps - std::round(phi_steps)) < 1e-9,
          "FaultParamGrid: phi step must divide the range");
}

std::vector<NamedFault> gate_equivalent_faults() {
  return {
      {"t", PhaseShiftFault{0.0, kPi / 4}},
      {"s", PhaseShiftFault{0.0, kPi / 2}},
      {"z", PhaseShiftFault{0.0, kPi}},
      {"y", PhaseShiftFault{kPi, kPi / 2}},
  };
}

}  // namespace qufi
