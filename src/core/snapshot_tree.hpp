#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace qufi {

/// One snapshot the prefix-tree engine materializes: a unique split point
/// shared by every campaign point that injects there (operand points of one
/// multi-qubit gate all split at the same instruction, so deduplication
/// alone removes snapshots). A root is evolved from the initial state; a
/// child is derived from its parent via Backend::extend_snapshot, paying
/// only the gates between the two splits.
struct SnapshotTreeNode {
  /// Prefix length (instruction count) of this snapshot.
  std::size_t split = 0;
  /// Index of the parent node in SnapshotTreePlan::nodes, or -1 for a root
  /// (prepared from scratch). Parents always precede children.
  std::ptrdiff_t parent = -1;
  /// Positions (into the planner's input span) of the points that sweep
  /// their grid from this snapshot, in input order.
  std::vector<std::size_t> members;
};

/// A forest of snapshot chains over a campaign subset's split points:
/// nodes are grouped chain-major (each chain is one contiguous run of
/// ascending unique splits whose head is a root), so one worker lane can
/// walk a chain keeping at most two snapshots alive. The plan is a pure
/// function of (splits, max_chains) — subsets plan their own trees, and
/// because extend_snapshot is bit-identical to a from-scratch prepare, the
/// tree shape never changes campaign records (the sharding contract).
struct SnapshotTreePlan {
  std::vector<SnapshotTreeNode> nodes;
  /// Chain c covers nodes [chain_begin[c], chain_begin[c + 1]); size is
  /// num_chains() + 1.
  std::vector<std::size_t> chain_begin;

  std::size_t num_chains() const {
    return chain_begin.empty() ? 0 : chain_begin.size() - 1;
  }

  /// Gates evolved from scratch (sum of root splits) — what the roots cost.
  std::uint64_t scratch_gates() const;
  /// Gates advanced via extend_snapshot (sum of child - parent splits).
  std::uint64_t extended_gates() const;
  /// Gates the flat engine would evolve for the same input: one
  /// from-scratch prefix per input point (before deduplication).
  std::uint64_t flat_gates() const;
};

/// Plans the prefix tree for one campaign subset.
///
/// \param splits     Per-point split index (prefix length), one entry per
///                   subset position, in subset order. Campaign point
///                   tables are enumerated in instruction order, so the
///                   sequence is typically nondecreasing, but any order is
///                   handled (nodes are planned over the sorted unique
///                   splits).
/// \param max_chains Parallelism bound: unique splits are partitioned into
///                   at most this many contiguous chains (integer striding,
///                   deterministic). 0 is treated as 1.
/// \return The deduplicated chain forest; empty when `splits` is empty.
SnapshotTreePlan plan_snapshot_tree(std::span<const std::size_t> splits,
                                    std::size_t max_chains);

}  // namespace qufi
