#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/results.hpp"

namespace qufi::resio {

/// 8-byte file magic of the binary columnar result/partial container — the
/// result-layer sibling of QUFISNAP (docs/RESULT_FORMAT.md). The version
/// bumps on any layout change; readers reject newer versions but accept all
/// older ones (v1 files simply carry no adaptive metadata — adaptive
/// defaults off).
inline constexpr char kResultMagic[8] = {'Q', 'U', 'F', 'I',
                                         'P', 'A', 'R', 'T'};
/// v2: fixed-size adaptive-estimation fields after faultfree_qvf (flag,
/// max_config_fraction, qvf_ci_target, min_configs_per_point, seed).
inline constexpr std::uint32_t kResultVersion = 2;

/// Default block-cut target: ResultWriter closes a block at the first point
/// boundary at or past this many buffered records, so merge memory is
/// O(shards x block) while per-block framing overhead stays negligible.
inline constexpr std::size_t kDefaultBlockRecords = 4096;

/// How ResultWriter materializes the output file.
enum class WriteMode {
  /// Stream to a process-unique temp file, rename into place at finish():
  /// a crashed writer never leaves a file at `path` at all. The default,
  /// and the right mode for every batch artifact.
  TempRename,
  /// Stream directly to `path` (truncating it) and flush each block as it
  /// is written, so a concurrent ReadMode::Tail reader observes sealed
  /// blocks while the file grows — the dispatcher's live-progress path. A
  /// crashed writer leaves an unsealed (end-marker-less) file behind; tail
  /// readers consume its complete blocks, the strict reader rejects it.
  Live,
};

/// How ResultReader treats the file's seal.
enum class ReadMode {
  /// Require the end marker: a file without one is truncated output from a
  /// crashed worker and is rejected up front. The default.
  Sealed,
  /// Tail a possibly still-growing file: index every complete block, stop
  /// cleanly at a torn tail (an incomplete final frame — bytes a live
  /// writer has not finished appending), and treat the end marker as
  /// optional. Complete-but-invalid sections (a checksum mismatch inside a
  /// fully present block) still throw: a torn append is always a *prefix*
  /// of valid frames, so inconsistency inside available bytes is
  /// corruption, not growth. sealed() reports whether the end marker was
  /// seen; until then totals come from indexed blocks only.
  Tail,
};

/// Everything a result file knows before any record is computed: shard
/// identity, campaign metadata, and the full global point table (identical
/// across shards, so the merger cross-checks without re-transpiling).
/// `meta.executions`/`meta.injections` are NOT stored here — they live in
/// the end marker, which is what lets a worker stream blocks to disk as the
/// engine completes them instead of accumulating the whole result first.
struct ResultFileHeader {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Global record count of the full campaign (all shards) — the merger's
  /// completeness check. For a full (unsharded) result this equals the
  /// file's own record count.
  std::uint64_t expected_total_records = 0;

  CampaignMetadata meta;
  std::vector<InjectionPoint> points;
};

/// Append-oriented writer for the QUFIPART container.
///
/// The header (shard identity, metadata, point table) is written up front;
/// records then stream out in checksummed columnar blocks, and finish()
/// seals the file with an end marker carrying the totals that are only
/// known once the campaign ran. Writes go to a process-unique temp file
/// that finish() renames into place, so a crashed worker can never leave a
/// truncated file that parses as a result (the reader requires the end
/// marker).
///
/// Block invariants (what makes the streaming k-way merge possible):
///  - records within a block are sorted by point index;
///  - a point never spans two blocks;
///  - block point ranges within one file are pairwise disjoint (blocks may
///    arrive in any order — completion order from a campaign sink — and
///    the reader sorts its block index by first point).
/// append() enforces the first two and cuts blocks at point boundaries; the
/// third holds as long as every point is appended exactly once.
///
/// Thread-safety: append() may be called concurrently (a campaign pool's
/// lanes flush completed points directly); internal state is mutex-guarded.
class ResultWriter {
 public:
  /// Opens `path` for writing (via temp file in TempRename mode, in place in
  /// Live mode; see WriteMode) and writes the header. Throws qufi::Error
  /// when the file cannot be created.
  ResultWriter(std::string path, const ResultFileHeader& header,
               std::size_t block_records = kDefaultBlockRecords,
               WriteMode mode = WriteMode::TempRename);
  /// Aborting destructor: if finish() was never called, the temp file is
  /// removed and `path` is left untouched (TempRename), or the unsealed
  /// in-place file is left as-is (Live) — exactly the artifact a killed
  /// worker leaves for tail readers and quarantine logic to deal with.
  ~ResultWriter();

  ResultWriter(const ResultWriter&) = delete;
  ResultWriter& operator=(const ResultWriter&) = delete;

  /// Buffers `records` (non-decreasing point index within the span; spans
  /// themselves may arrive in any point order, whole points at a time) and
  /// flushes full blocks at point boundaries. Throws qufi::Error on a
  /// descending point index within the span or on I/O failure.
  void append(std::span<const InjectionRecord> records);

  /// Replaces the header's campaign metadata; finish() rewrites the header
  /// section in place before sealing the file. This is how a streaming
  /// worker handles metadata only known once the campaign ran (the
  /// fault-free QVF): open the writer with a placeholder, stream blocks,
  /// set the real metadata, finish. The re-encoded header must be
  /// byte-size-identical — same strings, numeric fields only — or this
  /// throws qufi::Error.
  void set_meta(const CampaignMetadata& meta);

  /// Flushes the remaining buffer, writes the end marker (record total plus
  /// the campaign's execution accounting), rewrites the header (see
  /// set_meta) and renames the temp file into place (TempRename mode; Live
  /// mode patches the header of the in-place file). Must be called exactly
  /// once.
  void finish(std::uint64_t executions, std::uint64_t injections);

  std::uint64_t records_written() const { return records_written_; }
  /// Bytes written so far (final file size once finish() returned).
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void flush_pending_locked(bool all);
  void write_block_locked(std::span<const InjectionRecord> records);

  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  ResultFileHeader header_;
  std::uint64_t header_body_size_ = 0;
  std::size_t block_records_;
  WriteMode mode_;
  std::mutex mutex_;
  std::vector<InjectionRecord> pending_;
  std::uint64_t records_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  bool finished_ = false;
};

/// Streaming reader for the QUFIPART container.
///
/// Construction scans the whole file once: it parses and checksums the
/// header, indexes every block (offset, point range, record count — the
/// block bodies are skipped, not read), and validates the end marker, so a
/// truncated or corrupt file is rejected up front with a diagnosis naming
/// the bad section ("header checksum mismatch", "block 3: truncated", ...).
/// Block *bodies* are only read and checksummed by read_block(), one block
/// in memory at a time — the property the k-way merger builds on.
///
/// ReadMode::Tail relaxes exactly one thing: the end marker (and the bytes
/// of an unfinished final frame) may be missing, so a still-growing Live
/// file can be observed mid-write. Indexed blocks are complete either way —
/// a tail read never surfaces a torn block.
class ResultReader {
 public:
  explicit ResultReader(std::string path, ReadMode mode = ReadMode::Sealed);

  const ResultFileHeader& header() const { return header_; }
  /// True when the end marker was present (always true in Sealed mode).
  bool sealed() const { return sealed_; }
  /// Totals from the end marker. In Tail mode these are only meaningful
  /// once sealed(); use indexed_records() for live progress before that.
  std::uint64_t total_records() const { return total_records_; }
  std::uint64_t executions() const { return executions_; }
  std::uint64_t injections() const { return injections_; }
  /// Sum of record counts over the indexed (complete) blocks — equals
  /// total_records() once sealed.
  std::uint64_t indexed_records() const { return indexed_records_; }

  struct BlockInfo {
    std::uint32_t first_point = 0;
    std::uint32_t last_point = 0;
    std::uint64_t num_records = 0;
  };
  /// Blocks in ascending first-point order (file order may differ when the
  /// writer streamed completion-ordered points). Ranges are validated to be
  /// pairwise disjoint at scan time.
  std::size_t num_blocks() const { return blocks_.size(); }
  const BlockInfo& block_info(std::size_t i) const { return blocks_[i].info; }

  /// Reads, checksums and decodes block `i` (sorted order). Throws
  /// qufi::Error on checksum mismatch, unsorted records, or records whose
  /// point index falls outside the block's declared range.
  std::vector<InjectionRecord> read_block(std::size_t i);

 private:
  struct IndexedBlock {
    BlockInfo info;
    std::uint64_t body_offset = 0;  ///< file offset of the block body
    std::uint64_t body_size = 0;
    std::size_t ordinal = 0;  ///< position in file order (for diagnostics)
  };

  std::string path_;
  std::ifstream in_;
  ResultFileHeader header_;
  std::vector<IndexedBlock> blocks_;
  bool sealed_ = false;
  std::uint64_t indexed_records_ = 0;
  std::uint64_t total_records_ = 0;
  std::uint64_t executions_ = 0;
  std::uint64_t injections_ = 0;
};

/// Sniffs the 8-byte magic: true when `path` starts with "QUFIPART".
bool is_result_file(const std::string& path);

/// True when `path` currently holds at least a complete header section
/// (magic through header checksum) — the gate incremental mergers use to
/// separate "a live writer has not flushed its header yet" (skip the input
/// for now) from "readable": once this returns true, a Tail-mode
/// ResultReader either succeeds or diagnoses genuine corruption. Never
/// throws; a missing or too-short file is simply false.
bool result_header_available(const std::string& path);

/// Convenience one-shot writer: emits `records` (already sorted by point —
/// the canonical order every campaign/merge produces) as a sequence of
/// blocks. Used by the CLIs for non-streaming exports and by tests.
void write_result_file(const std::string& path, const ResultFileHeader& header,
                       std::span<const InjectionRecord> records,
                       std::uint64_t executions, std::uint64_t injections,
                       std::size_t block_records = kDefaultBlockRecords);

/// Convenience one-shot reader: loads the entire file (header + all blocks,
/// in sorted order). For streaming consumption use ResultReader directly.
struct LoadedResultFile {
  ResultFileHeader header;
  std::vector<InjectionRecord> records;
  std::uint64_t executions = 0;
  std::uint64_t injections = 0;
};
LoadedResultFile read_result_file(const std::string& path);

/// ResultBlockSink adapter over a ResultWriter: campaign engines hand
/// completed point slices to sink(), the writer streams them to disk. The
/// caller still invokes finish() (the engine cannot know when the *file* is
/// complete — e.g. a worker appends nothing for an empty shard).
class ResultFileSink final : public ResultBlockSink {
 public:
  explicit ResultFileSink(ResultWriter& writer) : writer_(writer) {}
  void emit(std::span<const InjectionRecord> records) override {
    writer_.append(records);
  }

 private:
  ResultWriter& writer_;
};

}  // namespace qufi::resio
