#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/fault_model.hpp"

namespace qufi {

struct InjectionRecord;

/// Budget/tolerance policy for adaptive QVF estimation
/// (CampaignSpec::adaptive; docs/CAMPAIGNS.md "Adaptive estimation").
///
/// The estimator runs a coarse deterministic stratified pass over each
/// injection point's (theta, phi) grid, fits a local bilinear surface per
/// grid cell, and iteratively refines only the cell whose error-bound
/// contribution to the point's QVF confidence interval is largest, until
/// the interval halfwidth drops under qvf_ci_target or the config budget
/// is spent. All sampling is driven by per-(point, round) counter-based
/// seeds, so the evaluated config set is a pure function of
/// (grid, policy, campaign seed, point index) — never of thread or shard
/// scheduling.
struct AdaptivePolicy {
  /// Hard per-point config budget as a fraction of the full grid, in
  /// (0, 1]. 1.0 degenerates to the exhaustive sweep (zero error).
  double max_config_fraction = 0.25;
  /// Stop refining a point once the estimated |QVF_est - QVF_exhaustive|
  /// bound drops under this.
  double qvf_ci_target = 0.005;
  /// Budget floor: never evaluate fewer configs per point than this (the
  /// estimator additionally floors at its coarse-lattice size, which
  /// depends only on the grid). Grids at or under the floor are swept
  /// exhaustively.
  std::uint32_t min_configs_per_point = 32;
  /// Salt for the refinement probes, mixed with the campaign seed. Two
  /// campaigns differing only in this seed probe different configs.
  std::uint64_t seed = 0;

  friend bool operator==(const AdaptivePolicy&,
                         const AdaptivePolicy&) = default;
};

/// Per-point output of the adaptive estimator.
struct AdaptivePointEstimate {
  std::uint64_t configs_evaluated = 0;  ///< grid configs actually executed
  double ci_halfwidth = 0.0;  ///< final error bound on est_qvf
  double est_qvf = 0.0;       ///< estimated grid-mean QVF of the point
};

/// Throws qufi::Error on out-of-range policy fields.
void validate_adaptive_policy(const AdaptivePolicy& policy);

/// The per-point config budget: max(min_configs_per_point,
/// floor(max_config_fraction x grid configs), coarse-lattice size),
/// clamped to the grid size. Budgets at the grid size sweep exhaustively.
/// The planner uses this to scale per-point sweep costs
/// (dist::plan_campaign_shards).
std::uint64_t adaptive_config_budget(const FaultParamGrid& grid,
                                     const AdaptivePolicy& policy);

/// Evaluates a batch of grid configs for one point and returns their QVF
/// values in input order. `rems` are flat grid indices
/// (phi_index * num_theta + theta_index), strictly increasing within a
/// batch, never repeated across batches of one point.
using AdaptiveBatchEval =
    std::function<std::vector<double>(std::span<const std::uint32_t>)>;

/// Runs the adaptive estimation loop for one injection point, driving all
/// executions through `eval`. The sequence of requested configs is
/// deterministic given (grid, policy, campaign_seed, point_index) and the
/// QVF values `eval` returns — with a budget that is strictly a stop
/// condition, so raising max_config_fraction extends the sequence without
/// changing its prefix (the budget-monotonicity contract the test harness
/// pins).
AdaptivePointEstimate run_adaptive_point(const FaultParamGrid& grid,
                                         const AdaptivePolicy& policy,
                                         std::uint64_t campaign_seed,
                                         std::uint64_t point_index,
                                         const AdaptiveBatchEval& eval);

/// Recomputes one point's AdaptivePointEstimate from its final records by
/// replaying the estimator's decision sequence against a rem -> qvf lookup
/// instead of a backend. Because every decision depends only on QVF values
/// of configs the estimator itself evaluated — all of which are in the
/// records — the replay reproduces configs_evaluated / ci_halfwidth /
/// est_qvf bit-identically, which is how merged shard results and CSV
/// exporters project adaptive columns without carrying them in the
/// container. Throws qufi::Error when the record set is not exactly the
/// estimator's evaluated set (corruption, or records from a different
/// seed/policy).
AdaptivePointEstimate replay_adaptive_point(
    const FaultParamGrid& grid, const AdaptivePolicy& policy,
    std::uint64_t campaign_seed, std::uint64_t point_index,
    std::span<const InjectionRecord> records);

}  // namespace qufi
