#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "core/results.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qufi {

namespace {

/// Coarse-lattice stride in grid-index space. Stride 3 puts the coarse
/// pass at ~1/9 of the grid — under every sane budget — and two midpoint
/// splits take any cell down to fully-evaluated 1x1 rectangles.
constexpr int kLatticeStride = 3;

/// Boundary-inclusive strided lattice over one axis: {0, 3, 6, ..., N-1}.
/// Depends only on the axis size, never on the budget, so the evaluation
/// sequence is a prefix-extension across budgets.
std::vector<int> axis_lattice(int n) {
  std::vector<int> idx;
  for (int i = 0; i < n; i += kLatticeStride) idx.push_back(i);
  if (idx.back() != n - 1) idx.push_back(n - 1);
  return idx;
}

/// One rectangular cell of the (theta, phi) index grid; corners are always
/// evaluated. Degenerate spans (t0 == t1) only occur on axes of size 1.
struct Cell {
  int t0, t1, p0, p1;
};

struct Assessment {
  double est = 0.0;
  double ci = 0.0;
  std::vector<double> cell_err;
};

class PointEstimator {
 public:
  PointEstimator(const FaultParamGrid& grid, const AdaptivePolicy& policy,
                 std::uint64_t campaign_seed, std::uint64_t point_index,
                 const AdaptiveBatchEval& eval)
      : policy_(policy),
        campaign_seed_(campaign_seed),
        point_index_(point_index),
        eval_(eval),
        num_theta_(grid.num_theta()),
        num_phi_(grid.num_phi()),
        total_(static_cast<std::uint64_t>(grid.num_configs())),
        budget_(adaptive_config_budget(grid, policy)),
        value_(total_, 0.0),
        known_(total_, 0) {}

  AdaptivePointEstimate run() {
    if (budget_ >= total_) return run_exhaustive();
    seed_lattice();
    std::uint64_t round = 0;
    for (;;) {
      const Assessment a = assess();
      if (a.ci <= policy_.qvf_ci_target || evaluated_ >= budget_) {
        return {evaluated_, a.ci, a.est};
      }
      const std::size_t best = pick_cell(a.cell_err);
      if (a.cell_err[best] <= 0.0) return {evaluated_, a.ci, a.est};
      ++round;
      refine(best, round);
    }
  }

 private:
  std::uint32_t rem_of(int t, int p) const {
    return static_cast<std::uint32_t>(p * num_theta_ + t);
  }

  AdaptivePointEstimate run_exhaustive() {
    std::vector<std::uint32_t> all(total_);
    for (std::uint64_t r = 0; r < total_; ++r) {
      all[r] = static_cast<std::uint32_t>(r);
    }
    evaluate(all);
    double sum = 0.0;
    for (const double v : value_) sum += v;
    return {evaluated_, 0.0, sum / static_cast<double>(total_)};
  }

  void evaluate(std::span<const std::uint32_t> rems) {
    if (rems.empty()) return;
    const auto qvfs = eval_(rems);
    require(qvfs.size() == rems.size(),
            "adaptive: batch eval returned wrong result count");
    for (std::size_t k = 0; k < rems.size(); ++k) {
      value_[rems[k]] = qvfs[k];
      known_[rems[k]] = 1;
    }
    evaluated_ += rems.size();
  }

  void seed_lattice() {
    const auto lat_t = axis_lattice(num_theta_);
    const auto lat_p = axis_lattice(num_phi_);
    std::vector<std::uint32_t> rems;
    rems.reserve(lat_t.size() * lat_p.size());
    for (const int p : lat_p) {
      for (const int t : lat_t) rems.push_back(rem_of(t, p));
    }
    std::sort(rems.begin(), rems.end());
    evaluate(rems);  // lattice size <= budget by adaptive_config_budget
    const auto spans = [](const std::vector<int>& lat) {
      std::vector<std::pair<int, int>> out;
      if (lat.size() == 1) {
        out.emplace_back(lat[0], lat[0]);
      } else {
        for (std::size_t i = 0; i + 1 < lat.size(); ++i) {
          out.emplace_back(lat[i], lat[i + 1]);
        }
      }
      return out;
    };
    for (const auto& [p0, p1] : spans(lat_p)) {
      for (const auto& [t0, t1] : spans(lat_t)) {
        cells_.push_back({t0, t1, p0, p1});
      }
    }
  }

  /// Whether config (t, p) of `cell` is owned by it: cells tile the grid,
  /// sharing edges, so ownership is half-open except at the top boundary.
  bool owned(const Cell& c, int t, int p) const {
    return (t < c.t1 || c.t1 == num_theta_ - 1) &&
           (p < c.p1 || c.p1 == num_phi_ - 1);
  }

  /// Full deterministic pass: the surface estimate sums known values and
  /// bilinear fits per owned config; each cell's CI contribution is its
  /// unknown count x a per-config error bound (half the corner spread, or
  /// the worst observed fit residual among its evaluated non-corner
  /// configs, whichever is larger).
  Assessment assess() const {
    Assessment a;
    a.cell_err.reserve(cells_.size());
    double est_sum = 0.0;
    double err_sum = 0.0;
    for (const Cell& c : cells_) {
      const double v00 = value_[rem_of(c.t0, c.p0)];
      const double v10 = value_[rem_of(c.t1, c.p0)];
      const double v01 = value_[rem_of(c.t0, c.p1)];
      const double v11 = value_[rem_of(c.t1, c.p1)];
      const double spread = std::max({v00, v10, v01, v11}) -
                            std::min({v00, v10, v01, v11});
      double resid = 0.0;
      std::uint64_t unknown = 0;
      for (int p = c.p0; p <= c.p1; ++p) {
        for (int t = c.t0; t <= c.t1; ++t) {
          if (!owned(c, t, p)) continue;
          const double wt =
              c.t1 > c.t0 ? static_cast<double>(t - c.t0) / (c.t1 - c.t0)
                          : 0.0;
          const double wp =
              c.p1 > c.p0 ? static_cast<double>(p - c.p0) / (c.p1 - c.p0)
                          : 0.0;
          const double fit = v00 * (1.0 - wt) * (1.0 - wp) +
                             v10 * wt * (1.0 - wp) +
                             v01 * (1.0 - wt) * wp + v11 * wt * wp;
          const std::uint32_t rem = rem_of(t, p);
          if (known_[rem]) {
            est_sum += value_[rem];
            const bool corner = (t == c.t0 || t == c.t1) &&
                                (p == c.p0 || p == c.p1);
            if (!corner) resid = std::max(resid, std::abs(value_[rem] - fit));
          } else {
            est_sum += fit;
            ++unknown;
          }
        }
      }
      const double per_config = std::max(0.5 * spread, resid);
      const double err = static_cast<double>(unknown) * per_config;
      err_sum += err;
      a.cell_err.push_back(err);
    }
    a.est = est_sum / static_cast<double>(total_);
    a.ci = err_sum / static_cast<double>(total_);
    return a;
  }

  /// Highest-error cell, ties broken toward the lowest (p0, t0) — pure
  /// value comparisons, no scheduling dependence.
  std::size_t pick_cell(const std::vector<double>& err) const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < err.size(); ++i) {
      if (err[i] > err[best] ||
          (err[i] == err[best] &&
           std::pair(cells_[i].p0, cells_[i].t0) <
               std::pair(cells_[best].p0, cells_[best].t0))) {
        best = i;
      }
    }
    return best;
  }

  /// Splits the cell at its index midpoints (evaluating the new cross
  /// configs) plus one hash-chosen probe among its unevaluated configs, so
  /// interpolation residuals are observable and not just bounded by corner
  /// spread. The request list is truncated at the remaining budget — the
  /// only budget dependence, preserving the prefix-extension contract.
  void refine(std::size_t index, std::uint64_t round) {
    const Cell c = cells_[index];
    const int tm = c.t1 - c.t0 > 1 ? (c.t0 + c.t1) / 2 : -1;
    const int pm = c.p1 - c.p0 > 1 ? (c.p0 + c.p1) / 2 : -1;
    std::vector<std::uint32_t> request;
    const auto want = [&](int t, int p) {
      const std::uint32_t rem = rem_of(t, p);
      if (!known_[rem]) request.push_back(rem);
    };
    if (tm >= 0) {
      want(tm, c.p0);
      want(tm, c.p1);
    }
    if (pm >= 0) {
      want(c.t0, pm);
      want(c.t1, pm);
    }
    if (tm >= 0 && pm >= 0) want(tm, pm);

    std::vector<std::uint32_t> unknowns;
    for (int p = c.p0; p <= c.p1; ++p) {
      for (int t = c.t0; t <= c.t1; ++t) {
        const std::uint32_t rem = rem_of(t, p);
        if (!known_[rem] &&
            std::find(request.begin(), request.end(), rem) == request.end()) {
          unknowns.push_back(rem);
        }
      }
    }
    if (!unknowns.empty()) {
      const std::uint64_t words[] = {
          policy_.seed, campaign_seed_, point_index_, round,
          (static_cast<std::uint64_t>(rem_of(c.t0, c.p0)) << 32) |
              rem_of(c.t1, c.p1)};
      request.push_back(
          unknowns[util::hash_combine(words) % unknowns.size()]);
    }
    std::sort(request.begin(), request.end());
    request.erase(std::unique(request.begin(), request.end()), request.end());
    if (evaluated_ + request.size() > budget_) {
      request.resize(static_cast<std::size_t>(budget_ - evaluated_));
    }
    evaluate(request);

    if (tm < 0 && pm < 0) return;  // 1x1 cells have no interior to split off
    std::vector<Cell> sub;
    const int tsplits[] = {c.t0, tm >= 0 ? tm : c.t1, c.t1};
    const int psplits[] = {c.p0, pm >= 0 ? pm : c.p1, c.p1};
    for (int jp = 0; jp + 1 < (pm >= 0 ? 3 : 2); ++jp) {
      for (int jt = 0; jt + 1 < (tm >= 0 ? 3 : 2); ++jt) {
        const int pa = pm >= 0 ? psplits[jp] : c.p0;
        const int pb = pm >= 0 ? psplits[jp + 1] : c.p1;
        const int ta = tm >= 0 ? tsplits[jt] : c.t0;
        const int tb = tm >= 0 ? tsplits[jt + 1] : c.t1;
        sub.push_back({ta, tb, pa, pb});
      }
    }
    cells_.erase(cells_.begin() + static_cast<std::ptrdiff_t>(index));
    cells_.insert(cells_.begin() + static_cast<std::ptrdiff_t>(index),
                  sub.begin(), sub.end());
  }

  const AdaptivePolicy& policy_;
  const std::uint64_t campaign_seed_;
  const std::uint64_t point_index_;
  const AdaptiveBatchEval& eval_;
  const int num_theta_;
  const int num_phi_;
  const std::uint64_t total_;
  const std::uint64_t budget_;
  std::vector<double> value_;
  std::vector<char> known_;
  std::vector<Cell> cells_;
  std::uint64_t evaluated_ = 0;
};

}  // namespace

void validate_adaptive_policy(const AdaptivePolicy& policy) {
  require(policy.max_config_fraction > 0.0 &&
              policy.max_config_fraction <= 1.0,
          "adaptive: max_config_fraction must be in (0, 1]");
  require(policy.qvf_ci_target >= 0.0,
          "adaptive: qvf_ci_target must be non-negative");
  require(policy.min_configs_per_point >= 1,
          "adaptive: min_configs_per_point must be at least 1");
}

std::uint64_t adaptive_config_budget(const FaultParamGrid& grid,
                                     const AdaptivePolicy& policy) {
  const auto total = static_cast<std::uint64_t>(grid.num_configs());
  auto budget = static_cast<std::uint64_t>(
      std::floor(policy.max_config_fraction * static_cast<double>(total)));
  budget = std::max(budget,
                    static_cast<std::uint64_t>(policy.min_configs_per_point));
  // The coarse lattice must always fit, so its corners are evaluated and
  // every later decision has data; its size depends only on the grid.
  budget = std::max(budget, static_cast<std::uint64_t>(
                                axis_lattice(grid.num_theta()).size() *
                                axis_lattice(grid.num_phi()).size()));
  return std::min(budget, total);
}

AdaptivePointEstimate run_adaptive_point(const FaultParamGrid& grid,
                                         const AdaptivePolicy& policy,
                                         std::uint64_t campaign_seed,
                                         std::uint64_t point_index,
                                         const AdaptiveBatchEval& eval) {
  validate_adaptive_policy(policy);
  grid.validate();
  return PointEstimator(grid, policy, campaign_seed, point_index, eval).run();
}

AdaptivePointEstimate replay_adaptive_point(
    const FaultParamGrid& grid, const AdaptivePolicy& policy,
    std::uint64_t campaign_seed, std::uint64_t point_index,
    std::span<const InjectionRecord> records) {
  const auto total = static_cast<std::uint64_t>(grid.num_configs());
  const int num_theta = grid.num_theta();
  std::vector<double> lookup(total, 0.0);
  std::vector<char> have(total, 0);
  for (const InjectionRecord& rec : records) {
    require(rec.neighbor_qubit < 0,
            "adaptive replay: double-fault record in adaptive result");
    require(rec.theta_index >= 0 && rec.theta_index < num_theta &&
                rec.phi_index >= 0 && rec.phi_index < grid.num_phi(),
            "adaptive replay: record grid index out of range");
    const auto rem = static_cast<std::uint64_t>(rec.phi_index) *
                         static_cast<std::uint64_t>(num_theta) +
                     static_cast<std::uint64_t>(rec.theta_index);
    require(!have[rem], "adaptive replay: duplicate record for one config");
    lookup[rem] = rec.qvf;
    have[rem] = 1;
  }
  const AdaptiveBatchEval eval =
      [&](std::span<const std::uint32_t> rems) -> std::vector<double> {
    std::vector<double> out;
    out.reserve(rems.size());
    for (const std::uint32_t rem : rems) {
      require(have[rem],
              "adaptive replay: records do not cover the estimator's "
              "sampling sequence (wrong seed/policy or corrupt result)");
      out.push_back(lookup[rem]);
    }
    return out;
  };
  const auto estimate =
      run_adaptive_point(grid, policy, campaign_seed, point_index, eval);
  require(estimate.configs_evaluated == records.size(),
          "adaptive replay: records outside the estimator's sampling "
          "sequence (wrong seed/policy or corrupt result)");
  return estimate;
}

}  // namespace qufi
