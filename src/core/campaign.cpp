#include "core/campaign.hpp"

#include <memory>

#include "backend/density_backend.hpp"
#include "noise/noise_model.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace qufi {

namespace {

/// Shared, prepared campaign state.
struct Prepared {
  transpile::TranspileResult transpiled;
  transpile::CouplingMap coupling;
  GoldenOutput golden;
  std::unique_ptr<backend::Backend> owned_backend;
  backend::Backend* exec = nullptr;
};

Prepared prepare(const CampaignSpec& spec) {
  require(spec.circuit.num_clbits() > 0,
          "campaign: circuit needs measurements");
  spec.grid.validate();

  Prepared prep{transpile::transpile(spec.circuit, spec.backend,
                                     spec.transpile_options),
                transpile::CouplingMap::from_backend(spec.backend),
                {},
                nullptr,
                nullptr};

  if (spec.expected_outputs.empty()) {
    prep.golden = compute_golden(spec.circuit);
  } else {
    prep.golden =
        golden_from_expected(spec.expected_outputs, spec.circuit.num_clbits());
  }

  if (spec.backend_override) {
    prep.exec = spec.backend_override;
  } else {
    prep.owned_backend = std::make_unique<backend::DensityMatrixBackend>(
        noise::NoiseModel::from_backend(spec.backend, spec.noise_scale));
    prep.exec = prep.owned_backend.get();
  }
  return prep;
}

std::vector<InjectionPoint> stride_points(std::vector<InjectionPoint> points,
                                          std::size_t max_points) {
  if (max_points == 0 || points.size() <= max_points) return points;
  std::vector<InjectionPoint> kept;
  kept.reserve(max_points);
  const double stride = static_cast<double>(points.size()) /
                        static_cast<double>(max_points);
  for (std::size_t k = 0; k < max_points; ++k) {
    kept.push_back(points[static_cast<std::size_t>(
        static_cast<double>(k) * stride)]);
  }
  return kept;
}

std::uint64_t config_seed(const CampaignSpec& spec, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c, std::uint64_t d) {
  const std::uint64_t words[] = {spec.seed, a, b, c, d};
  return util::hash_combine(words);
}

double faultfree_qvf(const Prepared& prep, const CampaignSpec& spec) {
  const auto result = prep.exec->run(prep.transpiled.circuit, spec.shots,
                                     config_seed(spec, ~0ULL, 0, 0, 0));
  return compute_qvf(result.probabilities, prep.golden);
}

CampaignMetadata base_metadata(const CampaignSpec& spec, const Prepared& prep) {
  CampaignMetadata meta;
  meta.circuit_name = spec.circuit.name();
  meta.backend_name = prep.exec->name();
  meta.circuit_qubits = spec.circuit.num_qubits();
  meta.transpiled_gates = prep.transpiled.circuit.num_unitary_gates();
  meta.grid = spec.grid;
  meta.shots = spec.shots;
  meta.seed = spec.seed;
  meta.faultfree_qvf = faultfree_qvf(prep, spec);
  return meta;
}

}  // namespace

transpile::TranspileResult campaign_transpile(const CampaignSpec& spec) {
  return transpile::transpile(spec.circuit, spec.backend,
                              spec.transpile_options);
}

std::vector<InjectionPoint> campaign_points(const CampaignSpec& spec) {
  const auto transpiled = campaign_transpile(spec);
  return stride_points(enumerate_injection_points(transpiled, spec.strategy),
                       spec.max_points);
}

std::vector<std::pair<InjectionPoint, int>> campaign_point_neighbor_pairs(
    const CampaignSpec& spec) {
  const auto transpiled = campaign_transpile(spec);
  const auto coupling = transpile::CouplingMap::from_backend(spec.backend);
  const auto points = stride_points(
      enumerate_injection_points(transpiled, spec.strategy), spec.max_points);
  std::vector<std::pair<InjectionPoint, int>> pairs;
  for (const auto& p : points) {
    for (int nb : neighbor_candidates(transpiled, coupling, p)) {
      pairs.emplace_back(p, nb);
    }
  }
  return pairs;
}

CampaignResult run_single_fault_campaign(const CampaignSpec& spec) {
  Prepared prep = prepare(spec);
  CampaignResult result;
  result.points = stride_points(
      enumerate_injection_points(prep.transpiled, spec.strategy),
      spec.max_points);
  require(!result.points.empty(), "campaign: no injection points");

  const int num_theta = spec.grid.num_theta();
  const int num_phi = spec.grid.num_phi();
  const std::size_t configs_per_point =
      static_cast<std::size_t>(num_theta) * static_cast<std::size_t>(num_phi);
  const std::size_t total = result.points.size() * configs_per_point;
  result.records.resize(total);

  util::ThreadPool pool(static_cast<std::size_t>(
      spec.threads > 0 ? spec.threads : 0));
  pool.parallel_for(total, [&](std::size_t idx) {
    const std::size_t point_index = idx / configs_per_point;
    const std::size_t rem = idx % configs_per_point;
    const int phi_index = static_cast<int>(rem / num_theta);
    const int theta_index = static_cast<int>(rem % num_theta);

    const PhaseShiftFault fault{spec.grid.theta_at(theta_index),
                                spec.grid.phi_at(phi_index)};
    const auto faulty = inject_fault(prep.transpiled.circuit,
                                     result.points[point_index], fault);
    const auto run = prep.exec->run(
        faulty, spec.shots,
        config_seed(spec, point_index, static_cast<std::uint64_t>(phi_index),
                    static_cast<std::uint64_t>(theta_index), 0));

    InjectionRecord& rec = result.records[idx];
    rec.point_index = static_cast<std::uint32_t>(point_index);
    rec.theta_index = theta_index;
    rec.phi_index = phi_index;
    double pa = 0.0;
    double pb = 0.0;
    for (std::uint64_t s = 0; s < run.probabilities.size(); ++s) {
      if (prep.golden.is_correct(s)) {
        pa += run.probabilities[s];
      } else {
        pb = std::max(pb, run.probabilities[s]);
      }
    }
    rec.pa = pa;
    rec.pb = pb;
    rec.qvf = qvf_from_contrast(michelson_contrast(pa, pb));
  });

  result.meta = base_metadata(spec, prep);
  result.meta.double_fault = false;
  result.meta.executions = total;
  result.meta.injections = total * (spec.shots ? spec.shots : 1);
  return result;
}

CampaignResult run_double_fault_campaign(const CampaignSpec& spec) {
  Prepared prep = prepare(spec);
  CampaignResult result;
  result.points = stride_points(
      enumerate_injection_points(prep.transpiled, spec.strategy),
      spec.max_points);
  require(!result.points.empty(), "campaign: no injection points");

  // Flatten (point, neighbor, theta0, phi0, theta1 <= theta0, phi1 <= phi0).
  struct Config {
    std::uint32_t point_index;
    std::int32_t neighbor;
    std::int32_t theta_index, phi_index;
    std::int32_t theta1_index, phi1_index;
  };
  std::vector<Config> configs;
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    const auto neighbors =
        neighbor_candidates(prep.transpiled, prep.coupling, result.points[p]);
    for (int nb : neighbors) {
      for (int j0 = 0; j0 < spec.grid.num_phi(); ++j0) {
        for (int i0 = 0; i0 < spec.grid.num_theta(); ++i0) {
          for (int j1 = 0; j1 <= j0; ++j1) {
            for (int i1 = 0; i1 <= i0; ++i1) {
              configs.push_back(Config{static_cast<std::uint32_t>(p), nb, i0,
                                       j0, i1, j1});
            }
          }
        }
      }
    }
  }
  require(!configs.empty(),
          "double campaign: no coupled active neighbors (check topology)");
  result.records.resize(configs.size());

  util::ThreadPool pool(static_cast<std::size_t>(
      spec.threads > 0 ? spec.threads : 0));
  pool.parallel_for(configs.size(), [&](std::size_t idx) {
    const Config& cfg = configs[idx];
    const PhaseShiftFault primary{spec.grid.theta_at(cfg.theta_index),
                                  spec.grid.phi_at(cfg.phi_index)};
    const PhaseShiftFault secondary{spec.grid.theta_at(cfg.theta1_index),
                                    spec.grid.phi_at(cfg.phi1_index)};
    const auto faulty = inject_double_fault(prep.transpiled.circuit,
                                            result.points[cfg.point_index],
                                            primary, cfg.neighbor, secondary);
    const auto run = prep.exec->run(
        faulty, spec.shots,
        config_seed(spec, idx, cfg.point_index,
                    static_cast<std::uint64_t>(cfg.theta_index),
                    static_cast<std::uint64_t>(cfg.phi_index)));

    InjectionRecord& rec = result.records[idx];
    rec.point_index = cfg.point_index;
    rec.theta_index = cfg.theta_index;
    rec.phi_index = cfg.phi_index;
    rec.neighbor_qubit = cfg.neighbor;
    rec.theta1_index = cfg.theta1_index;
    rec.phi1_index = cfg.phi1_index;
    double pa = 0.0;
    double pb = 0.0;
    for (std::uint64_t s = 0; s < run.probabilities.size(); ++s) {
      if (prep.golden.is_correct(s)) {
        pa += run.probabilities[s];
      } else {
        pb = std::max(pb, run.probabilities[s]);
      }
    }
    rec.pa = pa;
    rec.pb = pb;
    rec.qvf = qvf_from_contrast(michelson_contrast(pa, pb));
  });

  result.meta = base_metadata(spec, prep);
  result.meta.double_fault = true;
  result.meta.executions = configs.size();
  result.meta.injections = configs.size() * (spec.shots ? spec.shots : 1);
  return result;
}

std::vector<NamedFaultQvf> run_named_fault_campaign(
    const CampaignSpec& spec, std::span<const NamedFault> faults) {
  Prepared prep = prepare(spec);
  const auto points = stride_points(
      enumerate_injection_points(prep.transpiled, spec.strategy),
      spec.max_points);
  require(!points.empty(), "named-fault campaign: no injection points");

  std::vector<NamedFaultQvf> out;
  util::ThreadPool pool(static_cast<std::size_t>(
      spec.threads > 0 ? spec.threads : 0));
  for (std::size_t f = 0; f < faults.size(); ++f) {
    std::vector<double> qvfs(points.size(), 0.0);
    pool.parallel_for(points.size(), [&](std::size_t p) {
      const auto faulty =
          inject_fault(prep.transpiled.circuit, points[p], faults[f].fault);
      const auto run =
          prep.exec->run(faulty, spec.shots, config_seed(spec, f, p, 0, 1));
      qvfs[p] = compute_qvf(run.probabilities, prep.golden);
    });
    NamedFaultQvf entry;
    entry.fault_name = faults[f].name;
    entry.mean_qvf = util::mean_of(qvfs);
    entry.executions = points.size();
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace qufi
