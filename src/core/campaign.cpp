#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "backend/density_backend.hpp"
#include "core/adaptive.hpp"
#include "core/snapshot_tree.hpp"
#include "noise/noise_model.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace qufi {

namespace {

/// Shared, prepared campaign state.
struct Prepared {
  transpile::TranspileResult transpiled;
  transpile::CouplingMap coupling;
  GoldenOutput golden;
  std::unique_ptr<backend::Backend> owned_backend;
  backend::Backend* exec = nullptr;
};

Prepared prepare(const CampaignSpec& spec) {
  require(spec.circuit.num_clbits() > 0,
          "campaign: circuit needs measurements");
  spec.grid.validate();

  Prepared prep{transpile::transpile(spec.circuit, spec.backend,
                                     spec.transpile_options),
                transpile::CouplingMap::from_backend(spec.backend),
                {},
                nullptr,
                nullptr};

  if (spec.expected_outputs.empty()) {
    prep.golden = compute_golden(spec.circuit);
  } else {
    prep.golden =
        golden_from_expected(spec.expected_outputs, spec.circuit.num_clbits());
  }

  if (spec.backend_override) {
    prep.exec = spec.backend_override;
  } else {
    auto density = std::make_unique<backend::DensityMatrixBackend>(
        noise::NoiseModel::from_backend(spec.backend, spec.noise_scale),
        spec.idle_noise);
    // The suffix-response fast path is part of the tree engine, so the
    // --no-tree baseline measures the PR 2 flat-batch engine faithfully.
    density->set_suffix_response_enabled(spec.use_tree);
    prep.owned_backend = std::move(density);
    prep.exec = prep.owned_backend.get();
  }
  return prep;
}

/// Walks a prefix-tree plan with one task per chain: the chain head is
/// prepared from scratch, every later node is derived from its predecessor
/// via extend_snapshot (bit-identical to a from-scratch prepare), and
/// `visit(pos, snapshot)` runs for each of the node's member positions with
/// work. Nodes none of whose members have work are skipped entirely — the
/// next extension jumps across them — so e.g. double-fault points with no
/// coupled active neighbor never materialize a snapshot. At most two
/// snapshots are alive per chain, bounding memory like the flat engine
/// (few-point campaigns that store the handful of snapshots for chunked
/// sweeping are bounded by the pool size instead).
template <typename HasWork, typename Visit>
void run_tree_chains(util::ThreadPool& pool, backend::Backend& exec,
                     const circ::QuantumCircuit& circuit,
                     const CampaignSpec& spec, const SnapshotTreePlan& plan,
                     const HasWork& has_work, const Visit& visit) {
  pool.parallel_for(plan.num_chains(), [&](std::size_t chain) {
    backend::PrefixSnapshotPtr prev;
    std::size_t prev_split = 0;
    for (std::size_t i = plan.chain_begin[chain];
         i < plan.chain_begin[chain + 1]; ++i) {
      const SnapshotTreeNode& node = plan.nodes[i];
      const bool any_work = std::any_of(node.members.begin(),
                                        node.members.end(), has_work);
      if (!any_work) continue;
      backend::PrefixSnapshotPtr snapshot =
          prev ? exec.extend_snapshot(*prev, prev_split, node.split,
                                      spec.shots, spec.seed)
               : exec.prepare_prefix(circuit, node.split, spec.shots,
                                     spec.seed);
      for (const std::size_t pos : node.members) {
        if (has_work(pos)) visit(pos, snapshot);
      }
      prev = std::move(snapshot);
      prev_split = node.split;
    }
  });
}

/// Deterministic batch boundaries for a config slice: floor(len/chunk)
/// chunks of at least `chunk` configs each, remainder merged into the last
/// chunk. A pure function of (begin, end, chunk) — never of pool size or
/// subset shape — so batch composition, and with it the backend's
/// response-vs-replay choice, is identical across thread counts,
/// shardings, and scheduling (the byte-identity contract). Chunk floors at
/// or above the response thresholds keep every chunk on the fast path.
std::vector<std::pair<std::size_t, std::size_t>> chunk_slice(
    std::size_t begin, std::size_t end, std::size_t chunk) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (begin >= end) return out;
  const std::size_t n = std::max<std::size_t>(1, (end - begin) / chunk);
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.emplace_back(begin + k * chunk,
                     k + 1 == n ? end : begin + (k + 1) * chunk);
  }
  return out;
}

// Tree-engine chunk floors: single-fault grids inject one qubit (1q
// response basis), double-fault grids a (primary, neighbor) pair (2q).
constexpr std::size_t kTreeChunk1q = 64;
constexpr std::size_t kTreeChunk2q = 512;
static_assert(kTreeChunk1q >=
              backend::DensityMatrixBackend::kResponseMinConfigs1q);
static_assert(kTreeChunk2q >=
              backend::DensityMatrixBackend::kResponseMinConfigs2q);

std::uint64_t config_seed(const CampaignSpec& spec, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c, std::uint64_t d) {
  const std::uint64_t words[] = {spec.seed, a, b, c, d};
  return util::hash_combine(words);
}

double faultfree_qvf(const Prepared& prep, const CampaignSpec& spec) {
  const auto result = prep.exec->run(prep.transpiled.circuit, spec.shots,
                                     config_seed(spec, ~0ULL, 0, 0, 0));
  return compute_qvf(result.probabilities, prep.golden);
}

CampaignMetadata base_metadata(const CampaignSpec& spec, const Prepared& prep) {
  CampaignMetadata meta;
  meta.circuit_name = spec.circuit.name();
  meta.backend_name = prep.exec->name();
  meta.circuit_qubits = spec.circuit.num_qubits();
  meta.transpiled_gates = prep.transpiled.circuit.num_unitary_gates();
  meta.grid = spec.grid;
  meta.shots = spec.shots;
  meta.seed = spec.seed;
  meta.idle_noise = spec.idle_noise;
  meta.faultfree_qvf = faultfree_qvf(prep, spec);
  return meta;
}

/// Scores one executed config: pa/pb via the shared QVF split (paper
/// Eq. 1) instead of a re-implemented loop.
void score_record(InjectionRecord& rec, std::span<const double> probs,
                  const GoldenOutput& golden) {
  const ProbabilitySplit split = split_probabilities(probs, golden);
  rec.pa = split.pa;
  rec.pb = split.pb;
  rec.qvf = qvf_from_contrast(michelson_contrast(split.pa, split.pb));
}

/// Validates a shard subset against the global point table: strictly
/// increasing indices, all in range. Sorted-unique input keeps shard record
/// order canonical (ascending global point index) by construction.
void validate_subset(std::span<const std::size_t> subset,
                     std::size_t num_points) {
  for (std::size_t s = 0; s < subset.size(); ++s) {
    require(subset[s] < num_points,
            "campaign subset: point index out of range");
    require(s == 0 || subset[s - 1] < subset[s],
            "campaign subset: point indices must be strictly increasing");
  }
}

std::vector<std::size_t> identity_subset(std::size_t n) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  return all;
}

/// Streaming-emission state for CampaignSpec::record_sink: one lazily
/// allocated record buffer per subset point plus an atomic countdown of its
/// unfinished configs. The lane that scores a point's last config emits the
/// whole buffer to the sink and frees it, so engine memory is bounded by the
/// records of in-flight points instead of the whole campaign. The release
/// decrements / acquire final-decrement pair makes every lane's buffer
/// writes visible to the emitting lane.
class PointEmitter {
 public:
  PointEmitter(ResultBlockSink& sink, std::size_t num_slices)
      : sink_(sink),
        buffers_(num_slices),
        sizes_(num_slices, 0),
        once_(std::make_unique<std::once_flag[]>(num_slices)),
        remaining_(std::make_unique<std::atomic<std::size_t>[]>(num_slices)) {}

  void set_slice_size(std::size_t s, std::size_t num_records) {
    remaining_[s].store(num_records, std::memory_order_relaxed);
    sizes_[s] = num_records;
  }

  /// Slot for record `local` (enumeration order within the point) of slice
  /// `s`. Safe to call concurrently for different locals of one slice.
  InjectionRecord& slot(std::size_t s, std::size_t local) {
    std::call_once(once_[s], [&] { buffers_[s].resize(sizes_[s]); });
    return buffers_[s][local];
  }

  /// Marks one record of slice `s` complete; emits and frees the buffer
  /// when it was the last.
  void complete_one(std::size_t s) {
    if (remaining_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      sink_.emit(buffers_[s]);
      buffers_[s] = {};
    }
  }

 private:
  ResultBlockSink& sink_;
  std::vector<std::vector<InjectionRecord>> buffers_;
  std::vector<std::size_t> sizes_;
  std::unique_ptr<std::once_flag[]> once_;
  std::unique_ptr<std::atomic<std::size_t>[]> remaining_;
};

}  // namespace

std::vector<InjectionPoint> stride_points(std::vector<InjectionPoint> points,
                                          std::size_t max_points) {
  if (max_points == 0 || points.size() <= max_points) return points;
  std::vector<InjectionPoint> kept;
  kept.reserve(max_points);
  // Integer striding: floor(k * N / M) is strictly increasing for M <= N,
  // so exactly M distinct in-range points are kept (the floating-point
  // stride this replaces could duplicate or skip points).
  for (std::size_t k = 0; k < max_points; ++k) {
    kept.push_back(points[k * points.size() / max_points]);
  }
  return kept;
}

transpile::TranspileResult campaign_transpile(const CampaignSpec& spec) {
  return transpile::transpile(spec.circuit, spec.backend,
                              spec.transpile_options);
}

std::vector<InjectionPoint> campaign_points(const CampaignSpec& spec) {
  const auto transpiled = campaign_transpile(spec);
  return stride_points(enumerate_injection_points(transpiled, spec.strategy),
                       spec.max_points);
}

std::vector<std::pair<InjectionPoint, int>> campaign_point_neighbor_pairs(
    const CampaignSpec& spec) {
  const auto transpiled = campaign_transpile(spec);
  const auto coupling = transpile::CouplingMap::from_backend(spec.backend);
  const auto points = stride_points(
      enumerate_injection_points(transpiled, spec.strategy), spec.max_points);
  std::vector<std::pair<InjectionPoint, int>> pairs;
  for (const auto& p : points) {
    for (int nb : neighbor_candidates(transpiled, coupling, p)) {
      pairs.emplace_back(p, nb);
    }
  }
  return pairs;
}

namespace {

/// Shared single-fault engine: executes the configs of the subset's points
/// (subset entries are *global* indices into `result.points`). Seeds and
/// record point_index fields use global indices, so disjoint subsets union
/// to exactly the full-campaign record set; record slots are subset-local
/// (slot = subset position x configs_per_point + rem), keeping shard output
/// compact and in canonical ascending-point order.
CampaignResult single_campaign_impl(const CampaignSpec& spec, Prepared& prep,
                                    std::vector<InjectionPoint> points,
                                    std::span<const std::size_t> subset) {
  CampaignResult result;
  result.points = std::move(points);
  validate_subset(subset, result.points.size());

  const int num_theta = spec.grid.num_theta();
  const int num_phi = spec.grid.num_phi();
  const std::size_t configs_per_point =
      static_cast<std::size_t>(num_theta) * static_cast<std::size_t>(num_phi);
  const std::size_t total = subset.size() * configs_per_point;
  std::unique_ptr<PointEmitter> emitter;
  if (spec.record_sink) {
    // Streaming mode: records live in per-point buffers that are emitted
    // and freed as each point's grid completes; result.records stays empty.
    emitter = std::make_unique<PointEmitter>(*spec.record_sink, subset.size());
    for (std::size_t s = 0; s < subset.size(); ++s) {
      emitter->set_slice_size(s, configs_per_point);
    }
  } else {
    result.records.resize(total);
  }

  // The single source of a config's fault gate and seed, addressed by the
  // GLOBAL (point, phi, theta) triple so results are independent of
  // scheduling, of batched vs per-config submission, and of sharding.
  const auto make_config = [&](std::size_t global_point, std::size_t rem) {
    const int phi_index = static_cast<int>(rem / num_theta);
    const int theta_index = static_cast<int>(rem % num_theta);
    const InjectionPoint& point = result.points[global_point];
    const PhaseShiftFault fault{spec.grid.theta_at(theta_index),
                                spec.grid.phi_at(phi_index)};
    backend::SuffixConfig config;
    config.injected = {fault.as_instruction(point.qubit)};
    config.seed =
        config_seed(spec, global_point, static_cast<std::uint64_t>(phi_index),
                    static_cast<std::uint64_t>(theta_index), 0);
    return config;
  };

  // Fills and scores the record slot for config `rem` at subset position
  // `s`; shared by the per-config and batched paths so record addressing
  // has a single source.
  const auto fill_record = [&](std::size_t s, std::size_t rem,
                               std::span<const double> probs) {
    InjectionRecord& rec = emitter
                               ? emitter->slot(s, rem)
                               : result.records[s * configs_per_point + rem];
    rec.point_index = static_cast<std::uint32_t>(subset[s]);
    rec.theta_index = static_cast<int>(rem % num_theta);
    rec.phi_index = static_cast<int>(rem / num_theta);
    score_record(rec, probs, prep.golden);
    if (emitter) emitter->complete_one(s);
  };

  // One config = one faulty execution.
  const auto run_config = [&](std::size_t s, std::size_t rem,
                              const backend::PrefixSnapshot* snapshot) {
    const backend::SuffixConfig config = make_config(subset[s], rem);
    backend::ExecutionResult run;
    if (snapshot) {
      run = prep.exec->run_suffix(*snapshot, config.injected, spec.shots,
                                  config.seed);
    } else {
      run = prep.exec->run(
          backend::splice_circuit(prep.transpiled.circuit,
                                  result.points[subset[s]].split_index(),
                                  config.injected),
          spec.shots, config.seed);
    }
    fill_record(s, rem, run.probabilities);
  };

  // Sweeps configs [begin, end) at one point from its snapshot: one
  // run_suffix_batch submission when batching, per-config run_suffix jobs
  // otherwise (the --no-batch baseline).
  const auto sweep_range = [&](std::size_t s, std::size_t begin,
                               std::size_t end,
                               const backend::PrefixSnapshot* snapshot) {
    if (!spec.use_batch) {
      for (std::size_t rem = begin; rem < end; ++rem) {
        run_config(s, rem, snapshot);
      }
      return;
    }
    std::vector<backend::SuffixConfig> configs;
    configs.reserve(end - begin);
    for (std::size_t rem = begin; rem < end; ++rem) {
      configs.push_back(make_config(subset[s], rem));
    }
    const auto runs =
        prep.exec->run_suffix_batch(*snapshot, configs, spec.shots);
    require(runs.size() == configs.size(),
            "campaign: run_suffix_batch returned wrong result count");
    for (std::size_t k = 0; k < runs.size(); ++k) {
      fill_record(s, begin + k, runs[k].probabilities);
    }
  };

  util::ThreadPool pool(static_cast<std::size_t>(
      spec.threads > 0 ? spec.threads : 0));
  if (subset.empty()) {
    // Empty shard: metadata + full point table, no work (idempotent).
  } else if (spec.use_checkpoints && prep.exec->supports_checkpointing() &&
             spec.use_tree) {
    // Prefix-tree engine: one snapshot per unique split (operand points of
    // a multi-qubit gate share one), derived along chains instead of
    // re-evolved from scratch. Grids are swept in fixed-size chunks whose
    // boundaries depend only on the grid (see chunk_slice), so records are
    // identical whether chunks run inline on a chain's lane (many points)
    // or fan out across the pool (few points).
    std::vector<std::size_t> splits(subset.size());
    for (std::size_t s = 0; s < subset.size(); ++s) {
      splits[s] = result.points[subset[s]].split_index();
    }
    const SnapshotTreePlan tree = plan_snapshot_tree(splits, pool.size());
    const auto chunks = chunk_slice(0, configs_per_point, kTreeChunk1q);
    const auto always = [](std::size_t) { return true; };
    if (subset.size() >= pool.size()) {
      // Enough points to saturate the pool: chains stream, each point's
      // chunks run inline, at most two live snapshots per lane.
      run_tree_chains(pool, *prep.exec, prep.transpiled.circuit, spec, tree,
                      always,
                      [&](std::size_t s,
                          const backend::PrefixSnapshotPtr& snap) {
                        for (const auto& [begin, end] : chunks) {
                          sweep_range(s, begin, end, snap.get());
                        }
                      });
    } else {
      // Fewer points than lanes: derive the (few) snapshots via chains,
      // then fan the same chunks out across the pool so no lane idles.
      std::vector<backend::PrefixSnapshotPtr> snapshots(subset.size());
      run_tree_chains(pool, *prep.exec, prep.transpiled.circuit, spec, tree,
                      always,
                      [&](std::size_t s,
                          const backend::PrefixSnapshotPtr& snap) {
                        snapshots[s] = snap;
                      });
      pool.parallel_for(
          subset.size() * chunks.size(), [&](std::size_t item) {
            const std::size_t s = item / chunks.size();
            const auto& [begin, end] = chunks[item % chunks.size()];
            sweep_range(s, begin, end, snapshots[s].get());
          });
    }
  } else if (spec.use_checkpoints && prep.exec->supports_checkpointing()) {
    // All configs at one injection point share the gate prefix before the
    // fault, so the natural unit of parallel work is the point: evolve the
    // prefix once, then sweep the whole grid from that snapshot.
    if (subset.size() >= pool.size()) {
      // Enough points to saturate the pool; at most one live snapshot per
      // lane bounds snapshot memory.
      pool.parallel_for(subset.size(), [&](std::size_t s) {
        const auto snapshot = prep.exec->prepare_prefix(
            prep.transpiled.circuit, result.points[subset[s]].split_index(),
            spec.shots, spec.seed);
        sweep_range(s, 0, configs_per_point, snapshot.get());
      });
    } else {
      // Fewer points than workers: prepare the (few) snapshots in
      // parallel, then chunk each point's grid sweep across the pool so no
      // lane idles. Snapshots are immutable and thread-shareable; each
      // chunk is its own (smaller) batch submission.
      std::vector<backend::PrefixSnapshotPtr> snapshots(subset.size());
      pool.parallel_for(subset.size(), [&](std::size_t s) {
        snapshots[s] = prep.exec->prepare_prefix(
            prep.transpiled.circuit, result.points[subset[s]].split_index(),
            spec.shots, spec.seed);
      });
      const std::size_t chunks_per_point = std::min(
          configs_per_point,
          (pool.size() + subset.size() - 1) / subset.size());
      const std::size_t chunk_size =
          (configs_per_point + chunks_per_point - 1) / chunks_per_point;
      pool.parallel_for(
          subset.size() * chunks_per_point, [&](std::size_t item) {
            const std::size_t s = item / chunks_per_point;
            const std::size_t begin = (item % chunks_per_point) * chunk_size;
            const std::size_t end =
                std::min(begin + chunk_size, configs_per_point);
            if (begin < end) sweep_range(s, begin, end, snapshots[s].get());
          });
    }
  } else {
    // No prefix amortization available: fan out per config so small point
    // counts still use every worker.
    pool.parallel_for(total, [&](std::size_t idx) {
      run_config(idx / configs_per_point, idx % configs_per_point, nullptr);
    });
  }

  result.meta = base_metadata(spec, prep);
  result.meta.double_fault = false;
  result.meta.executions = total;
  result.meta.injections = campaign_injections(total, spec.shots);
  return result;
}

/// Adaptive single-fault engine (CampaignSpec::adaptive): each subset point
/// runs the adaptive estimator (core/adaptive.hpp) instead of sweeping the
/// whole grid, executing the estimator's batches through the same
/// snapshot + run_suffix_batch machinery as the exhaustive engine with the
/// same global (point, phi, theta)-addressed seeds. A point's whole
/// estimation loop lives on one pool lane and its batch compositions are a
/// pure function of the estimator's deterministic request sequence, so
/// records are bit-identical across reruns, thread counts and shardings —
/// the same contract as the exhaustive engine, reached the same way.
/// Per-point record blocks are sorted into grid-enumeration order before
/// they are stored or emitted, keeping merged-shard output canonical.
CampaignResult adaptive_campaign_impl(const CampaignSpec& spec, Prepared& prep,
                                      std::vector<InjectionPoint> points,
                                      std::span<const std::size_t> subset) {
  const AdaptivePolicy& policy = *spec.adaptive;
  validate_adaptive_policy(policy);

  CampaignResult result;
  result.points = std::move(points);
  validate_subset(subset, result.points.size());
  result.point_estimates.resize(result.points.size());

  const int num_theta = spec.grid.num_theta();
  const bool checkpointed =
      spec.use_checkpoints && prep.exec->supports_checkpointing();
  std::vector<std::vector<InjectionRecord>> blocks(subset.size());
  std::atomic<std::uint64_t> executions{0};

  util::ThreadPool pool(static_cast<std::size_t>(
      spec.threads > 0 ? spec.threads : 0));
  pool.parallel_for(subset.size(), [&](std::size_t s) {
    const std::size_t global_point = subset[s];
    const InjectionPoint& point = result.points[global_point];
    backend::PrefixSnapshotPtr snapshot;
    if (checkpointed) {
      snapshot = prep.exec->prepare_prefix(prep.transpiled.circuit,
                                           point.split_index(), spec.shots,
                                           spec.seed);
    }
    auto& block = blocks[s];

    const auto make_config = [&](std::uint32_t rem) {
      const int phi_index = static_cast<int>(rem / num_theta);
      const int theta_index = static_cast<int>(rem % num_theta);
      const PhaseShiftFault fault{spec.grid.theta_at(theta_index),
                                  spec.grid.phi_at(phi_index)};
      backend::SuffixConfig config;
      config.injected = {fault.as_instruction(point.qubit)};
      config.seed = config_seed(spec, global_point,
                                static_cast<std::uint64_t>(phi_index),
                                static_cast<std::uint64_t>(theta_index), 0);
      return config;
    };
    const auto score = [&](std::uint32_t rem, std::span<const double> probs) {
      InjectionRecord rec;
      rec.point_index = static_cast<std::uint32_t>(global_point);
      rec.theta_index = static_cast<int>(rem % num_theta);
      rec.phi_index = static_cast<int>(rem / num_theta);
      score_record(rec, probs, prep.golden);
      block.push_back(rec);
      return rec.qvf;
    };
    const AdaptiveBatchEval eval =
        [&](std::span<const std::uint32_t> rems) -> std::vector<double> {
      std::vector<double> qvfs;
      qvfs.reserve(rems.size());
      if (checkpointed && spec.use_batch) {
        std::vector<backend::SuffixConfig> configs;
        configs.reserve(rems.size());
        for (const std::uint32_t rem : rems) {
          configs.push_back(make_config(rem));
        }
        const auto runs =
            prep.exec->run_suffix_batch(*snapshot, configs, spec.shots);
        require(runs.size() == configs.size(),
                "campaign: run_suffix_batch returned wrong result count");
        for (std::size_t k = 0; k < runs.size(); ++k) {
          qvfs.push_back(score(rems[k], runs[k].probabilities));
        }
      } else {
        for (const std::uint32_t rem : rems) {
          const backend::SuffixConfig config = make_config(rem);
          backend::ExecutionResult run;
          if (checkpointed) {
            run = prep.exec->run_suffix(*snapshot, config.injected,
                                        spec.shots, config.seed);
          } else {
            run = prep.exec->run(
                backend::splice_circuit(prep.transpiled.circuit,
                                        point.split_index(), config.injected),
                spec.shots, config.seed);
          }
          qvfs.push_back(score(rem, run.probabilities));
        }
      }
      return qvfs;
    };

    const AdaptivePointEstimate estimate = run_adaptive_point(
        spec.grid, policy, spec.seed, global_point, eval);
    result.point_estimates[global_point] = estimate;
    executions.fetch_add(estimate.configs_evaluated,
                         std::memory_order_relaxed);
    std::sort(block.begin(), block.end(),
              [](const InjectionRecord& a, const InjectionRecord& b) {
                return std::pair(a.phi_index, a.theta_index) <
                       std::pair(b.phi_index, b.theta_index);
              });
    if (spec.record_sink) {
      spec.record_sink->emit(block);
      block = {};
    }
  });

  if (!spec.record_sink) {
    for (auto& block : blocks) {
      result.records.insert(result.records.end(), block.begin(), block.end());
    }
  }
  result.meta = base_metadata(spec, prep);
  result.meta.double_fault = false;
  result.meta.adaptive = true;
  result.meta.adaptive_policy = policy;
  result.meta.executions = executions.load(std::memory_order_relaxed);
  result.meta.injections =
      campaign_injections(result.meta.executions, spec.shots);
  return result;
}

}  // namespace

CampaignResult run_single_fault_campaign(const CampaignSpec& spec) {
  Prepared prep = prepare(spec);
  auto points = stride_points(
      enumerate_injection_points(prep.transpiled, spec.strategy),
      spec.max_points);
  require(!points.empty(), "campaign: no injection points");
  const auto subset = identity_subset(points.size());
  if (spec.adaptive) {
    return adaptive_campaign_impl(spec, prep, std::move(points), subset);
  }
  return single_campaign_impl(spec, prep, std::move(points), subset);
}

CampaignResult run_single_fault_campaign_subset(
    const CampaignSpec& spec, std::span<const std::size_t> point_indices) {
  Prepared prep = prepare(spec);
  auto points = stride_points(
      enumerate_injection_points(prep.transpiled, spec.strategy),
      spec.max_points);
  require(!points.empty(), "campaign: no injection points");
  if (spec.adaptive) {
    return adaptive_campaign_impl(spec, prep, std::move(points),
                                  point_indices);
  }
  return single_campaign_impl(spec, prep, std::move(points), point_indices);
}

namespace {

/// Shared double-fault engine (see single_campaign_impl for the sharding
/// contract). The flat config list is enumerated over ALL points so every
/// config knows its global flat index — the seed input — and then filtered
/// to the subset's points; record slots are subset-local in global order.
CampaignResult double_campaign_impl(const CampaignSpec& spec, Prepared& prep,
                                    std::vector<InjectionPoint> points,
                                    std::span<const std::size_t> subset,
                                    bool require_neighbors) {
  CampaignResult result;
  result.points = std::move(points);
  validate_subset(subset, result.points.size());

  std::vector<char> in_subset(result.points.size(), 0);
  for (const std::size_t g : subset) in_subset[g] = 1;

  // Flatten (point, neighbor, theta0, phi0, theta1 <= theta0, phi1 <= phi0)
  // over all points, keeping only the subset's configs. `global_index` is
  // the position in the full enumeration — the seed stays sharding-
  // independent even though the kept list is compact.
  struct Config {
    std::uint64_t global_index;
    std::uint32_t point_index;
    std::int32_t neighbor;
    std::int32_t theta_index, phi_index;
    std::int32_t theta1_index, phi1_index;
  };
  std::vector<Config> configs;
  std::uint64_t global_index = 0;
  bool any_neighbors = false;
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    const auto neighbors =
        neighbor_candidates(prep.transpiled, prep.coupling, result.points[p]);
    if (!neighbors.empty()) any_neighbors = true;
    for (int nb : neighbors) {
      for (int j0 = 0; j0 < spec.grid.num_phi(); ++j0) {
        for (int i0 = 0; i0 < spec.grid.num_theta(); ++i0) {
          for (int j1 = 0; j1 <= j0; ++j1) {
            for (int i1 = 0; i1 <= i0; ++i1) {
              if (in_subset[p]) {
                configs.push_back(Config{global_index,
                                         static_cast<std::uint32_t>(p), nb,
                                         i0, j0, i1, j1});
              }
              ++global_index;
            }
          }
        }
      }
    }
  }
  require(!require_neighbors || any_neighbors,
          "double campaign: no coupled active neighbors (check topology)");

  // Each subset point owns one contiguous slice of `configs` (the list is
  // ordered by point). The boundaries drive both the checkpointed sweeps
  // and the streaming emitter, so compute them once up front.
  std::vector<std::size_t> slice_begin(subset.size() + 1, 0);
  std::vector<std::size_t> subset_pos(result.points.size(), 0);
  for (std::size_t s = 0; s < subset.size(); ++s) subset_pos[subset[s]] = s;
  for (const Config& cfg : configs) {
    ++slice_begin[subset_pos[cfg.point_index] + 1];
  }
  for (std::size_t s = 0; s < subset.size(); ++s) {
    slice_begin[s + 1] += slice_begin[s];
  }

  std::unique_ptr<PointEmitter> emitter;
  if (spec.record_sink) {
    // Streaming mode: see single_campaign_impl. Zero-length slices (points
    // with no coupled active neighbor) simply never emit.
    emitter = std::make_unique<PointEmitter>(*spec.record_sink, subset.size());
    for (std::size_t s = 0; s < subset.size(); ++s) {
      emitter->set_slice_size(s, slice_begin[s + 1] - slice_begin[s]);
    }
  } else {
    result.records.resize(configs.size());
  }

  // The single source of a flat config's fault pair and seed, shared by
  // batched and per-config submission.
  const auto make_config = [&](std::size_t idx) {
    const Config& cfg = configs[idx];
    const InjectionPoint& point = result.points[cfg.point_index];
    const PhaseShiftFault primary{spec.grid.theta_at(cfg.theta_index),
                                  spec.grid.phi_at(cfg.phi_index)};
    const PhaseShiftFault secondary{spec.grid.theta_at(cfg.theta1_index),
                                    spec.grid.phi_at(cfg.phi1_index)};
    backend::SuffixConfig sc;
    sc.injected = {primary.as_instruction(point.qubit),
                   secondary.as_instruction(cfg.neighbor)};
    sc.seed = config_seed(spec, cfg.global_index, cfg.point_index,
                          static_cast<std::uint64_t>(cfg.theta_index),
                          static_cast<std::uint64_t>(cfg.phi_index));
    return sc;
  };

  // Fills and scores record `idx`; shared by the per-config and batched
  // paths so the field mapping from Config has a single source.
  const auto fill_record = [&](std::size_t idx, std::span<const double> probs) {
    const Config& cfg = configs[idx];
    const std::size_t s = subset_pos[cfg.point_index];
    InjectionRecord& rec = emitter ? emitter->slot(s, idx - slice_begin[s])
                                   : result.records[idx];
    rec.point_index = cfg.point_index;
    rec.theta_index = cfg.theta_index;
    rec.phi_index = cfg.phi_index;
    rec.neighbor_qubit = cfg.neighbor;
    rec.theta1_index = cfg.theta1_index;
    rec.phi1_index = cfg.phi1_index;
    score_record(rec, probs, prep.golden);
    if (emitter) emitter->complete_one(s);
  };

  const auto run_config = [&](std::size_t idx,
                              const backend::PrefixSnapshot* snapshot) {
    const backend::SuffixConfig sc = make_config(idx);
    backend::ExecutionResult run;
    if (snapshot) {
      run = prep.exec->run_suffix(*snapshot, sc.injected, spec.shots, sc.seed);
    } else {
      run = prep.exec->run(
          backend::splice_circuit(
              prep.transpiled.circuit,
              result.points[configs[idx].point_index].split_index(),
              sc.injected),
          spec.shots, sc.seed);
    }
    fill_record(idx, run.probabilities);
  };

  // Sweeps flat configs [begin, end) — all at the same point — from one
  // snapshot, batched or per-config.
  const auto sweep_range = [&](std::size_t begin, std::size_t end,
                               const backend::PrefixSnapshot* snapshot) {
    if (!spec.use_batch) {
      for (std::size_t idx = begin; idx < end; ++idx) {
        run_config(idx, snapshot);
      }
      return;
    }
    std::vector<backend::SuffixConfig> batch;
    batch.reserve(end - begin);
    for (std::size_t idx = begin; idx < end; ++idx) {
      batch.push_back(make_config(idx));
    }
    const auto runs = prep.exec->run_suffix_batch(*snapshot, batch, spec.shots);
    require(runs.size() == batch.size(),
            "campaign: run_suffix_batch returned wrong result count");
    for (std::size_t k = 0; k < runs.size(); ++k) {
      fill_record(begin + k, runs[k].probabilities);
    }
  };

  util::ThreadPool pool(static_cast<std::size_t>(
      spec.threads > 0 ? spec.threads : 0));
  if (configs.empty()) {
    // Empty shard (or no neighbors anywhere in the subset): metadata only.
  } else if (spec.use_checkpoints && prep.exec->supports_checkpointing()) {
    // Every config in a point's slice shares the prefix before the
    // injection site and sweeps from one snapshot.
    if (spec.use_tree) {
      // Prefix-tree engine: snapshots deduplicated by split and derived
      // along chains; each point's slice — the full primary x secondary
      // grid over every coupled neighbor — sweeps from its shared
      // snapshot in deterministic fixed-size chunks (see the single-fault
      // tree branch). Points whose slice is empty (no coupled active
      // neighbor) are skipped without materializing a snapshot.
      std::vector<std::size_t> splits(subset.size());
      for (std::size_t s = 0; s < subset.size(); ++s) {
        splits[s] = result.points[subset[s]].split_index();
      }
      const SnapshotTreePlan tree = plan_snapshot_tree(splits, pool.size());
      const auto has_work = [&](std::size_t s) {
        return slice_begin[s] < slice_begin[s + 1];
      };
      if (subset.size() >= pool.size()) {
        run_tree_chains(
            pool, *prep.exec, prep.transpiled.circuit, spec, tree, has_work,
            [&](std::size_t s, const backend::PrefixSnapshotPtr& snap) {
              for (const auto& [begin, end] : chunk_slice(
                       slice_begin[s], slice_begin[s + 1], kTreeChunk2q)) {
                sweep_range(begin, end, snap.get());
              }
            });
      } else {
        std::vector<backend::PrefixSnapshotPtr> snapshots(subset.size());
        run_tree_chains(
            pool, *prep.exec, prep.transpiled.circuit, spec, tree, has_work,
            [&](std::size_t s, const backend::PrefixSnapshotPtr& snap) {
              snapshots[s] = snap;
            });
        struct ChunkItem {
          std::size_t subset_pos, begin, end;
        };
        std::vector<ChunkItem> chunks;
        for (std::size_t s = 0; s < subset.size(); ++s) {
          for (const auto& [begin, end] : chunk_slice(
                   slice_begin[s], slice_begin[s + 1], kTreeChunk2q)) {
            chunks.push_back({s, begin, end});
          }
        }
        pool.parallel_for(chunks.size(), [&](std::size_t i) {
          sweep_range(chunks[i].begin, chunks[i].end,
                      snapshots[chunks[i].subset_pos].get());
        });
      }
    } else if (subset.size() >= pool.size()) {
      pool.parallel_for(subset.size(), [&](std::size_t s) {
        if (slice_begin[s] == slice_begin[s + 1]) return;  // no neighbors
        const auto snapshot = prep.exec->prepare_prefix(
            prep.transpiled.circuit, result.points[subset[s]].split_index(),
            spec.shots, spec.seed);
        sweep_range(slice_begin[s], slice_begin[s + 1], snapshot.get());
      });
    } else {
      // Fewer points than workers: shared snapshots, slices chunked across
      // lanes so the (large) secondary sweeps saturate the pool.
      std::vector<backend::PrefixSnapshotPtr> snapshots(subset.size());
      pool.parallel_for(subset.size(), [&](std::size_t s) {
        if (slice_begin[s] == slice_begin[s + 1]) return;
        snapshots[s] = prep.exec->prepare_prefix(
            prep.transpiled.circuit, result.points[subset[s]].split_index(),
            spec.shots, spec.seed);
      });
      struct ChunkItem {
        std::size_t subset_pos, begin, end;
      };
      std::vector<ChunkItem> chunks;
      const std::size_t chunks_per_point =
          (pool.size() + subset.size() - 1) / subset.size();
      for (std::size_t s = 0; s < subset.size(); ++s) {
        const std::size_t len = slice_begin[s + 1] - slice_begin[s];
        if (len == 0) continue;
        const std::size_t n_chunks = std::min(len, chunks_per_point);
        const std::size_t chunk_size = (len + n_chunks - 1) / n_chunks;
        for (std::size_t k = 0; k < n_chunks; ++k) {
          const std::size_t begin = slice_begin[s] + k * chunk_size;
          const std::size_t end =
              std::min(begin + chunk_size, slice_begin[s + 1]);
          if (begin < end) chunks.push_back({s, begin, end});
        }
      }
      pool.parallel_for(chunks.size(), [&](std::size_t i) {
        sweep_range(chunks[i].begin, chunks[i].end,
                    snapshots[chunks[i].subset_pos].get());
      });
    }
  } else {
    pool.parallel_for(configs.size(),
                      [&](std::size_t idx) { run_config(idx, nullptr); });
  }

  result.meta = base_metadata(spec, prep);
  result.meta.double_fault = true;
  result.meta.executions = configs.size();
  result.meta.injections = campaign_injections(configs.size(), spec.shots);
  return result;
}

}  // namespace

CampaignResult run_double_fault_campaign(const CampaignSpec& spec) {
  require(!spec.adaptive,
          "campaign: adaptive estimation supports single-fault campaigns "
          "only");
  Prepared prep = prepare(spec);
  auto points = stride_points(
      enumerate_injection_points(prep.transpiled, spec.strategy),
      spec.max_points);
  require(!points.empty(), "campaign: no injection points");
  const auto subset = identity_subset(points.size());
  return double_campaign_impl(spec, prep, std::move(points), subset,
                              /*require_neighbors=*/true);
}

CampaignResult run_double_fault_campaign_subset(
    const CampaignSpec& spec, std::span<const std::size_t> point_indices) {
  require(!spec.adaptive,
          "campaign: adaptive estimation supports single-fault campaigns "
          "only");
  Prepared prep = prepare(spec);
  auto points = stride_points(
      enumerate_injection_points(prep.transpiled, spec.strategy),
      spec.max_points);
  require(!points.empty(), "campaign: no injection points");
  return double_campaign_impl(spec, prep, std::move(points), point_indices,
                              /*require_neighbors=*/false);
}

std::vector<NamedFaultQvf> run_named_fault_campaign(
    const CampaignSpec& spec, std::span<const NamedFault> faults) {
  require(!spec.adaptive,
          "campaign: adaptive estimation supports single-fault campaigns "
          "only");
  Prepared prep = prepare(spec);
  const auto points = stride_points(
      enumerate_injection_points(prep.transpiled, spec.strategy),
      spec.max_points);
  require(!points.empty(), "named-fault campaign: no injection points");

  // One prefix snapshot per point covers every named fault injected there,
  // so the point loop is the parallel (and amortization) axis.
  const bool checkpointed =
      spec.use_checkpoints && prep.exec->supports_checkpointing();
  std::vector<std::vector<double>> qvfs(
      faults.size(), std::vector<double>(points.size(), 0.0));
  util::ThreadPool pool(static_cast<std::size_t>(
      spec.threads > 0 ? spec.threads : 0));
  pool.parallel_for(points.size(), [&](std::size_t p) {
    const InjectionPoint& point = points[p];
    // Single source of each fault's injected gate and seed, shared by the
    // batched, sequential-suffix, and full-run submission paths.
    const auto make_config = [&](std::size_t f) {
      backend::SuffixConfig config;
      config.injected = {faults[f].fault.as_instruction(point.qubit)};
      config.seed = config_seed(spec, f, p, 0, 1);
      return config;
    };
    backend::PrefixSnapshotPtr snapshot;
    if (checkpointed) {
      snapshot = prep.exec->prepare_prefix(
          prep.transpiled.circuit, point.split_index(), spec.shots, spec.seed);
    }
    if (snapshot && spec.use_batch) {
      // All named faults at one point go out as a single batch.
      std::vector<backend::SuffixConfig> batch;
      batch.reserve(faults.size());
      for (std::size_t f = 0; f < faults.size(); ++f) {
        batch.push_back(make_config(f));
      }
      const auto runs =
          prep.exec->run_suffix_batch(*snapshot, batch, spec.shots);
      require(runs.size() == batch.size(),
              "campaign: run_suffix_batch returned wrong result count");
      for (std::size_t f = 0; f < faults.size(); ++f) {
        qvfs[f][p] = compute_qvf(runs[f].probabilities, prep.golden);
      }
      return;
    }
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const backend::SuffixConfig config = make_config(f);
      backend::ExecutionResult run;
      if (snapshot) {
        run = prep.exec->run_suffix(*snapshot, config.injected, spec.shots,
                                    config.seed);
      } else {
        run = prep.exec->run(
            backend::splice_circuit(prep.transpiled.circuit,
                                    point.split_index(), config.injected),
            spec.shots, config.seed);
      }
      qvfs[f][p] = compute_qvf(run.probabilities, prep.golden);
    }
  });

  std::vector<NamedFaultQvf> out;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    NamedFaultQvf entry;
    entry.fault_name = faults[f].name;
    entry.mean_qvf = util::mean_of(qvfs[f]);
    entry.executions = points.size();
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace qufi
