#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qufi {

/// The fault-free reference against which faulty runs are scored.
///
/// Thread-safety: immutable after construction (and after build_index),
/// so one golden output is safely shared by every campaign worker; all
/// scoring functions below take it by const reference.
struct GoldenOutput {
  std::vector<std::uint64_t> correct_states;  ///< clbit-space indices
  std::vector<double> ideal_probs;            ///< noise/fault-free distribution
  int num_clbits = 0;

  /// Builds the O(1) membership index: a bitmask over the 2^num_clbits
  /// state space. The factories below call it; call again after mutating
  /// `correct_states` by hand. Without an index is_correct falls back to a
  /// linear scan (campaign hot loops hit this once per output state).
  void build_index();

  /// \param state Classical-bit-space index (bit c = clbit c).
  /// \return True when `state` is one of the correct outputs.
  bool is_correct(std::uint64_t state) const;

 private:
  std::vector<std::uint64_t> correct_mask_;  ///< bit s = state s is correct
};

/// P(A) / P(B) of the paper's Eq. 1: the total probability mass on correct
/// states and the strongest single incorrect state.
struct ProbabilitySplit {
  double pa = 0.0;
  double pb = 0.0;
};

/// Splits a distribution into the paper's P(A) / P(B).
///
/// \param probs  Distribution over classical bitstrings (size must equal
///               golden.ideal_probs.size()).
/// \param golden The fault-free reference.
/// \return P(A) = sum of probabilities over correct states, P(B) = max
///         probability over incorrect states.
ProbabilitySplit split_probabilities(std::span<const double> probs,
                                     const GoldenOutput& golden);

/// Computes the golden output by ideal simulation.
///
/// \param circuit       Circuit with terminal measurements.
/// \param tie_tolerance Correct state(s) are those whose noise-free
///                      probability is within `tie_tolerance` of the
///                      maximum (0.5 captures exact multi-state answers
///                      like GHZ while rejecting numerically-small
///                      stragglers). Must be in (0, 1].
/// \return Golden output with the membership index built.
GoldenOutput compute_golden(const circ::QuantumCircuit& circuit,
                            double tie_tolerance = 0.5);

/// Builds a golden output from externally-known expected bitstrings,
/// used when the algorithm's answer is known analytically.
///
/// \param bitstrings Expected outputs, MSB-first (e.g. "101"); each must
///                   have exactly `num_clbits` characters.
/// \param num_clbits Width of the classical register.
/// \return Golden output whose ideal distribution is uniform over the
///         expected states, with the membership index built.
GoldenOutput golden_from_expected(std::span<const std::string> bitstrings,
                                  int num_clbits);

/// Michelson contrast between the correct-state probability mass P(A) and
/// the strongest incorrect state P(B) (paper Eq. 1).
///
/// \param pa P(A), >= 0.
/// \param pb P(B), >= 0.
/// \return (pa - pb) / (pa + pb), or 0 when both are zero (completely
///         uninformative output).
double michelson_contrast(double pa, double pb);

/// Quantum Vulnerability Factor from a contrast value (paper Eq. 2).
///
/// \param contrast Michelson contrast in [-1, 1].
/// \return QVF = 1 - (contrast + 1) / 2, in [0, 1]; < 0.45 masked,
///         > 0.55 silent error, in between dubious.
double qvf_from_contrast(double contrast);

/// QVF of an observed distribution over classical bitstrings against the
/// golden output. P(A) aggregates all correct states (multi-state circuits
/// supported, paper §IV-A).
///
/// \param probs  Distribution over classical bitstrings.
/// \param golden The fault-free reference.
/// \return QVF in [0, 1].
double compute_qvf(std::span<const double> probs, const GoldenOutput& golden);

/// Classification thresholds used throughout the paper's figures.
enum class FaultImpact { Masked, Dubious, SilentError };

/// Classifies a QVF value into the paper's impact classes.
///
/// \param qvf  QVF in [0, 1].
/// \param low  Masked/dubious threshold (paper: 0.45).
/// \param high Dubious/silent-error threshold (paper: 0.55).
/// \return Masked (qvf < low), SilentError (qvf > high), else Dubious.
FaultImpact classify_qvf(double qvf, double low = 0.45, double high = 0.55);

/// \return Static lowercase label ("masked" / "dubious" / "silent-error").
const char* to_string(FaultImpact impact);

}  // namespace qufi
