#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qufi {

/// The fault-free reference against which faulty runs are scored.
struct GoldenOutput {
  std::vector<std::uint64_t> correct_states;  ///< clbit-space indices
  std::vector<double> ideal_probs;            ///< noise/fault-free distribution
  int num_clbits = 0;

  /// O(1) membership via a bitmask over the 2^num_clbits state space.
  /// The factories below build the index; call again after mutating
  /// `correct_states` by hand. Without an index is_correct falls back to a
  /// linear scan (campaign hot loops hit this once per output state).
  void build_index();

  bool is_correct(std::uint64_t state) const;

 private:
  std::vector<std::uint64_t> correct_mask_;  ///< bit s = state s is correct
};

/// P(A) / P(B) of the paper's Eq. 1: the total probability mass on correct
/// states and the strongest single incorrect state.
struct ProbabilitySplit {
  double pa = 0.0;
  double pb = 0.0;
};
ProbabilitySplit split_probabilities(std::span<const double> probs,
                                     const GoldenOutput& golden);

/// Computes the golden output by ideal simulation: the correct state(s) are
/// those whose noise-free probability is within `tie_tolerance` of the
/// maximum (tie_tolerance = 0.5 captures exact multi-state answers like GHZ
/// while rejecting numerically-small stragglers).
GoldenOutput compute_golden(const circ::QuantumCircuit& circuit,
                            double tie_tolerance = 0.5);

/// Builds a golden output from externally-known expected bitstrings
/// (MSB-first). Used when the algorithm's answer is known analytically.
GoldenOutput golden_from_expected(std::span<const std::string> bitstrings,
                                  int num_clbits);

/// Michelson contrast between the correct-state probability mass P(A) and
/// the strongest incorrect state P(B)  (paper Eq. 1). Returns 0 when both
/// are zero (completely uninformative output).
double michelson_contrast(double pa, double pb);

/// Quantum Vulnerability Factor from a contrast value (paper Eq. 2):
/// QVF = 1 - (contrast + 1) / 2, in [0, 1]; < 0.45 masked, > 0.55 silent
/// error, in between dubious.
double qvf_from_contrast(double contrast);

/// QVF of an observed distribution over classical bitstrings against the
/// golden output. P(A) aggregates all correct states (multi-state circuits
/// supported, paper §IV-A).
double compute_qvf(std::span<const double> probs, const GoldenOutput& golden);

/// Classification thresholds used throughout the paper's figures.
enum class FaultImpact { Masked, Dubious, SilentError };
FaultImpact classify_qvf(double qvf, double low = 0.45, double high = 0.55);
const char* to_string(FaultImpact impact);

}  // namespace qufi
