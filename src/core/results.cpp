#include "core/results.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>

#include "core/qvf.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace qufi {

HeatmapGrid HeatmapGrid::delta(const HeatmapGrid& other) const {
  require(theta_rad.size() == other.theta_rad.size() &&
              phi_rad.size() == other.phi_rad.size(),
          "HeatmapGrid::delta: grid shape mismatch");
  HeatmapGrid out = *this;
  for (std::size_t j = 0; j < mean_qvf.size(); ++j) {
    for (std::size_t i = 0; i < mean_qvf[j].size(); ++i) {
      out.mean_qvf[j][i] -= other.mean_qvf[j][i];
      out.samples[j][i] = std::min(samples[j][i], other.samples[j][i]);
    }
  }
  return out;
}

double HeatmapGrid::at(int phi_index, int theta_index) const {
  return mean_qvf.at(static_cast<std::size_t>(phi_index))
      .at(static_cast<std::size_t>(theta_index));
}

namespace {

HeatmapGrid make_grid(const FaultParamGrid& grid) {
  HeatmapGrid out;
  for (int i = 0; i < grid.num_theta(); ++i)
    out.theta_rad.push_back(grid.theta_at(i));
  for (int j = 0; j < grid.num_phi(); ++j) out.phi_rad.push_back(grid.phi_at(j));
  out.mean_qvf.assign(out.phi_rad.size(),
                      std::vector<double>(out.theta_rad.size(), 0.0));
  out.samples.assign(out.phi_rad.size(),
                     std::vector<std::uint64_t>(out.theta_rad.size(), 0));
  return out;
}

void finalize_means(HeatmapGrid& grid) {
  for (std::size_t j = 0; j < grid.mean_qvf.size(); ++j) {
    for (std::size_t i = 0; i < grid.mean_qvf[j].size(); ++i) {
      if (grid.samples[j][i] > 0) {
        grid.mean_qvf[j][i] /= static_cast<double>(grid.samples[j][i]);
      }
    }
  }
}

}  // namespace

HeatmapGrid CampaignResult::empty_primary_grid() const {
  return make_grid(meta.grid);
}

HeatmapGrid CampaignResult::mean_heatmap() const {
  HeatmapGrid grid = empty_primary_grid();
  for (const auto& r : records) {
    grid.mean_qvf[static_cast<std::size_t>(r.phi_index)]
                 [static_cast<std::size_t>(r.theta_index)] += r.qvf;
    ++grid.samples[static_cast<std::size_t>(r.phi_index)]
                  [static_cast<std::size_t>(r.theta_index)];
  }
  finalize_means(grid);
  return grid;
}

HeatmapGrid CampaignResult::heatmap_for_logical_qubit(int logical_qubit) const {
  HeatmapGrid grid = empty_primary_grid();
  for (const auto& r : records) {
    if (points[r.point_index].logical_qubit != logical_qubit) continue;
    grid.mean_qvf[static_cast<std::size_t>(r.phi_index)]
                 [static_cast<std::size_t>(r.theta_index)] += r.qvf;
    ++grid.samples[static_cast<std::size_t>(r.phi_index)]
                  [static_cast<std::size_t>(r.theta_index)];
  }
  finalize_means(grid);
  return grid;
}

std::vector<int> CampaignResult::logical_qubits() const {
  std::set<int> seen;
  for (const auto& p : points) {
    if (p.logical_qubit >= 0) seen.insert(p.logical_qubit);
  }
  return {seen.begin(), seen.end()};
}

HeatmapGrid CampaignResult::secondary_detail(int theta_index,
                                             int phi_index) const {
  require(meta.double_fault,
          "secondary_detail: campaign has no secondary faults");
  HeatmapGrid grid = empty_primary_grid();
  for (const auto& r : records) {
    if (r.theta_index != theta_index || r.phi_index != phi_index) continue;
    if (r.theta1_index < 0) continue;
    grid.mean_qvf[static_cast<std::size_t>(r.phi1_index)]
                 [static_cast<std::size_t>(r.theta1_index)] += r.qvf;
    ++grid.samples[static_cast<std::size_t>(r.phi1_index)]
                  [static_cast<std::size_t>(r.theta1_index)];
  }
  finalize_means(grid);
  return grid;
}

std::vector<double> CampaignResult::all_qvf() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.qvf);
  return out;
}

util::Histogram CampaignResult::qvf_histogram(std::size_t bins) const {
  util::Histogram hist(0.0, 1.0, bins);
  for (const auto& r : records) hist.add(r.qvf);
  return hist;
}

util::RunningStats CampaignResult::qvf_stats() const {
  util::RunningStats stats;
  for (const auto& r : records) stats.add(r.qvf);
  return stats;
}

CampaignResult::ImpactBreakdown CampaignResult::impact_breakdown() const {
  ImpactBreakdown b;
  if (records.empty()) return b;
  for (const auto& r : records) {
    switch (classify_qvf(r.qvf)) {
      case FaultImpact::Masked:
        b.masked += 1;
        break;
      case FaultImpact::Dubious:
        b.dubious += 1;
        break;
      case FaultImpact::SilentError:
        b.silent += 1;
        break;
    }
  }
  const double n = static_cast<double>(records.size());
  b.masked /= n;
  b.dubious /= n;
  b.silent /= n;
  return b;
}

void write_csv_preamble(util::CsvWriter& csv, const CampaignMetadata& meta) {
  std::vector<std::string> head = {
      "# circuit", meta.circuit_name, "backend", meta.backend_name,
      "shots", util::CsvWriter::field(meta.shots), "seed",
      util::CsvWriter::field(meta.seed), "faultfree_qvf",
      util::CsvWriter::field(meta.faultfree_qvf)};
  if (meta.adaptive) {
    const AdaptivePolicy& ap = meta.adaptive_policy;
    for (const auto& f : {std::string("adaptive_fraction"),
                          util::CsvWriter::field(ap.max_config_fraction),
                          std::string("adaptive_ci_target"),
                          util::CsvWriter::field(ap.qvf_ci_target),
                          std::string("adaptive_min_configs"),
                          util::CsvWriter::field(ap.min_configs_per_point),
                          std::string("adaptive_seed"),
                          util::CsvWriter::field(ap.seed)}) {
      head.push_back(f);
    }
  }
  csv.write_row(head);
  std::vector<std::string> columns = {
      "point_index", "instr_index", "physical_qubit", "logical_qubit",
      "moment",      "theta",       "phi",            "neighbor_qubit",
      "theta1",      "phi1",        "qvf",            "pa",
      "pb"};
  if (meta.adaptive) {
    for (const char* c : {"configs_evaluated", "ci_halfwidth", "est_qvf"}) {
      columns.emplace_back(c);
    }
  }
  csv.write_row(columns);
}

void write_csv_record(util::CsvWriter& csv, const CampaignMetadata& meta,
                      std::span<const InjectionPoint> points,
                      const InjectionRecord& r,
                      const AdaptivePointEstimate* estimate) {
  const auto& p = points[r.point_index];
  const bool dbl = r.theta1_index >= 0;
  std::vector<std::string> row = {
      util::CsvWriter::field(r.point_index),
      util::CsvWriter::field(p.instr_index),
      util::CsvWriter::field(p.qubit),
      util::CsvWriter::field(p.logical_qubit),
      util::CsvWriter::field(p.moment),
      util::CsvWriter::field(meta.grid.theta_at(r.theta_index)),
      util::CsvWriter::field(meta.grid.phi_at(r.phi_index)),
      util::CsvWriter::field(r.neighbor_qubit),
      dbl ? util::CsvWriter::field(meta.grid.theta_at(r.theta1_index)) : "",
      dbl ? util::CsvWriter::field(meta.grid.phi_at(r.phi1_index)) : "",
      util::CsvWriter::field(r.qvf), util::CsvWriter::field(r.pa),
      util::CsvWriter::field(r.pb)};
  if (meta.adaptive) {
    require(estimate != nullptr,
            "write_csv_record: adaptive campaign rows need the point's "
            "estimate (see adaptive_point_estimate)");
    row.push_back(util::CsvWriter::field(estimate->configs_evaluated));
    row.push_back(util::CsvWriter::field(estimate->ci_halfwidth));
    row.push_back(util::CsvWriter::field(estimate->est_qvf));
  }
  csv.write_row(row);
}

AdaptivePointEstimate adaptive_point_estimate(
    const CampaignMetadata& meta, std::span<const InjectionRecord> records) {
  require(meta.adaptive,
          "adaptive_point_estimate: campaign is not adaptive");
  require(!records.empty(),
          "adaptive_point_estimate: empty record block");
  for (const auto& r : records) {
    require(r.point_index == records.front().point_index,
            "adaptive_point_estimate: record block spans multiple points");
  }
  return replay_adaptive_point(meta.grid, meta.adaptive_policy, meta.seed,
                               records.front().point_index, records);
}

void CampaignResult::write_csv(const std::string& path) const {
  // Write-then-rename (matching the snapshot cache): the destination name
  // only ever holds a complete export.
  static std::atomic<std::uint64_t> counter{0};
  const std::string temp = path + ".tmp." + std::to_string(::getpid()) + "." +
                           std::to_string(counter.fetch_add(1));
  {
    util::CsvWriter csv(temp);
    write_csv_preamble(csv, meta);
    // Rows are emitted in canonical point-ascending order no matter how the
    // records were assembled (merged shard results arrive grouped by shard,
    // not by point), so single-process and merged-shard CSVs are
    // byte-comparable. The sort is stable: within a point, records keep
    // their enumeration order, which every assembly path already shares.
    std::vector<std::size_t> order(records.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return records[a].point_index < records[b].point_index;
                     });
    if (!meta.adaptive) {
      for (const std::size_t i : order) {
        write_csv_record(csv, meta, points, records[i]);
      }
    } else {
      // Adaptive columns are per-point replay projections: gather each
      // point's (now contiguous) block, recompute its estimate from the
      // recorded QVFs, and stamp it on every row of the block.
      std::vector<InjectionRecord> block;
      for (std::size_t begin = 0; begin < order.size();) {
        std::size_t end = begin;
        block.clear();
        while (end < order.size() &&
               records[order[end]].point_index ==
                   records[order[begin]].point_index) {
          block.push_back(records[order[end++]]);
        }
        const AdaptivePointEstimate est = adaptive_point_estimate(meta, block);
        for (const auto& r : block) {
          write_csv_record(csv, meta, points, r, &est);
        }
        begin = end;
      }
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw Error("write_csv: cannot rename temp file into place: " + path);
  }
}

std::uint64_t single_campaign_executions(std::size_t num_points,
                                         const FaultParamGrid& grid) {
  return static_cast<std::uint64_t>(num_points) *
         static_cast<std::uint64_t>(grid.num_configs());
}

std::uint64_t campaign_injections(std::uint64_t executions,
                                  std::uint64_t shots) {
  return executions * (shots ? shots : 1);
}

std::uint64_t double_campaign_executions(std::size_t num_point_neighbor_pairs,
                                         const FaultParamGrid& primary_grid) {
  const auto triangle = [](std::uint64_t n) { return n * (n + 1) / 2; };
  const auto combos = triangle(static_cast<std::uint64_t>(
                          primary_grid.num_theta())) *
                      triangle(static_cast<std::uint64_t>(
                          primary_grid.num_phi()));
  return static_cast<std::uint64_t>(num_point_neighbor_pairs) * combos;
}

}  // namespace qufi
