#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "core/fault_model.hpp"
#include "transpile/transpiler.hpp"

namespace qufi {

/// One fault location: the injector gate goes immediately after instruction
/// `instr_index` of the (transpiled) circuit, on physical qubit `qubit`.
struct InjectionPoint {
  std::size_t instr_index = 0;
  int qubit = 0;          ///< physical qubit
  int logical_qubit = -1; ///< logical qubit mapped there at that instruction
  int moment = 0;         ///< ASAP moment of the host instruction

  /// Number of instructions strictly before the injected gate — the prefix
  /// every (theta, phi) config at this point shares. The faulty circuit is
  /// instrs[0, split_index()) + fault gate(s) + instrs[split_index(), end),
  /// which is what Backend::prepare_prefix/run_suffix checkpoint on.
  std::size_t split_index() const { return instr_index + 1; }
};

/// How injection points are enumerated over a circuit.
enum class InjectionStrategy {
  /// After each unitary gate, on each of its operand qubits — the paper's
  /// "we inject faults after each gate of the original circuit".
  OperandsAfterEachGate,
  /// After the last gate of every moment, on every active qubit: a denser
  /// sweep that also hits idle qubits.
  EveryActiveQubitEveryMoment,
};

/// Enumerates points over a transpiled circuit, with logical attribution
/// from the transpiler's layout tracking.
std::vector<InjectionPoint> enumerate_injection_points(
    const transpile::TranspileResult& transpiled, InjectionStrategy strategy);

/// Enumerates points over a raw (untranspiled) circuit; logical == physical.
std::vector<InjectionPoint> enumerate_injection_points(
    const circ::QuantumCircuit& circuit, InjectionStrategy strategy);

/// Builds the faulty circuit: a copy of `circuit` with the injector gate
/// U(theta, phi, 0) inserted after `point.instr_index` on `point.qubit`.
circ::QuantumCircuit inject_fault(const circ::QuantumCircuit& circuit,
                                  const InjectionPoint& point,
                                  const PhaseShiftFault& fault);

/// Double-fault circuit (paper §IV-C): the primary fault on `point.qubit`
/// and a secondary, lower-magnitude fault on `neighbor_qubit`, inserted at
/// the same location (one particle strike hitting two adjacent qubits).
circ::QuantumCircuit inject_double_fault(const circ::QuantumCircuit& circuit,
                                         const InjectionPoint& point,
                                         const PhaseShiftFault& primary,
                                         int neighbor_qubit,
                                         const PhaseShiftFault& secondary);

/// Physical qubits adjacent to `point.qubit` in the coupling map that hold
/// an active logical qubit when the instruction executes — the candidates
/// for the secondary fault of a double injection.
std::vector<int> neighbor_candidates(
    const transpile::TranspileResult& transpiled,
    const transpile::CouplingMap& coupling, const InjectionPoint& point);

}  // namespace qufi
