#include "core/result_io.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qufi::resio {

namespace {

constexpr std::uint8_t kBlockTag = 'B';
constexpr std::uint8_t kEndTag = 'E';

/// Fixed prefix of a block body (first_point, last_point, num_records).
constexpr std::uint64_t kBlockPrefixBytes = 4 + 4 + 8;
/// Per-record columnar footprint: 6 u32 index columns + 3 f64 columns.
constexpr std::uint64_t kRecordBytes = 6 * 4 + 3 * 8;
/// End-marker body: total_records, executions, injections.
constexpr std::uint64_t kEndBodyBytes = 3 * 8;

std::uint32_t i32_bits(std::int32_t v) {
  return static_cast<std::uint32_t>(v);
}

std::int32_t bits_i32(std::uint32_t v) {
  return static_cast<std::int32_t>(v);
}

void encode_header(util::ByteWriter& w, const ResultFileHeader& h) {
  w.u32(h.shard_index);
  w.u32(h.shard_count);
  w.u64(h.expected_total_records);
  w.str(h.meta.circuit_name);
  w.str(h.meta.backend_name);
  w.u32(i32_bits(h.meta.circuit_qubits));
  w.u32(i32_bits(h.meta.transpiled_gates));
  w.f64(h.meta.grid.theta_step_deg);
  w.f64(h.meta.grid.phi_step_deg);
  w.f64(h.meta.grid.theta_max_deg);
  w.f64(h.meta.grid.phi_max_deg);
  w.u64(h.meta.shots);
  w.u64(h.meta.seed);
  w.u8(h.meta.double_fault ? 1 : 0);
  w.u8(h.meta.idle_noise ? 1 : 0);
  w.f64(h.meta.faultfree_qvf);
  // v2 adaptive fields — fixed-size, so set_meta()'s byte-size-identical
  // header rewrite keeps working whatever the flag values.
  w.u8(h.meta.adaptive ? 1 : 0);
  w.f64(h.meta.adaptive_policy.max_config_fraction);
  w.f64(h.meta.adaptive_policy.qvf_ci_target);
  w.u32(h.meta.adaptive_policy.min_configs_per_point);
  w.u64(h.meta.adaptive_policy.seed);
  w.u64(h.points.size());
  for (const auto& p : h.points) {
    w.u64(static_cast<std::uint64_t>(p.instr_index));
    w.u32(i32_bits(p.qubit));
    w.u32(i32_bits(p.logical_qubit));
    w.u32(i32_bits(p.moment));
  }
}

ResultFileHeader decode_header(util::ByteReader& r, std::uint32_t version) {
  ResultFileHeader h;
  h.shard_index = r.u32();
  h.shard_count = r.u32();
  h.expected_total_records = r.u64();
  h.meta.circuit_name = r.str();
  h.meta.backend_name = r.str();
  h.meta.circuit_qubits = bits_i32(r.u32());
  h.meta.transpiled_gates = bits_i32(r.u32());
  h.meta.grid.theta_step_deg = r.f64();
  h.meta.grid.phi_step_deg = r.f64();
  h.meta.grid.theta_max_deg = r.f64();
  h.meta.grid.phi_max_deg = r.f64();
  h.meta.shots = r.u64();
  h.meta.seed = r.u64();
  h.meta.double_fault = r.u8() != 0;
  h.meta.idle_noise = r.u8() != 0;
  h.meta.faultfree_qvf = r.f64();
  if (version >= 2) {
    h.meta.adaptive = r.u8() != 0;
    h.meta.adaptive_policy.max_config_fraction = r.f64();
    h.meta.adaptive_policy.qvf_ci_target = r.f64();
    h.meta.adaptive_policy.min_configs_per_point = r.u32();
    h.meta.adaptive_policy.seed = r.u64();
  }
  const std::uint64_t num_points = r.u64();
  h.points.reserve(num_points);
  for (std::uint64_t i = 0; i < num_points; ++i) {
    InjectionPoint p;
    p.instr_index = static_cast<std::size_t>(r.u64());
    p.qubit = bits_i32(r.u32());
    p.logical_qubit = bits_i32(r.u32());
    p.moment = bits_i32(r.u32());
    h.points.push_back(p);
  }
  return h;
}

void encode_block(util::ByteWriter& w,
                  std::span<const InjectionRecord> records) {
  w.u32(records.front().point_index);
  w.u32(records.back().point_index);
  w.u64(records.size());
  for (const auto& r : records) w.u32(r.point_index);
  for (const auto& r : records) w.u32(i32_bits(r.theta_index));
  for (const auto& r : records) w.u32(i32_bits(r.phi_index));
  for (const auto& r : records) w.u32(i32_bits(r.neighbor_qubit));
  for (const auto& r : records) w.u32(i32_bits(r.theta1_index));
  for (const auto& r : records) w.u32(i32_bits(r.phi1_index));
  for (const auto& r : records) w.f64(r.qvf);
  for (const auto& r : records) w.f64(r.pa);
  for (const auto& r : records) w.f64(r.pb);
}

/// Reads exactly `size` bytes or throws naming the section being read.
std::string read_exact(std::ifstream& in, std::uint64_t size,
                       const std::string& path, const std::string& what) {
  std::string buf(static_cast<std::size_t>(size), '\0');
  if (size > 0) in.read(buf.data(), static_cast<std::streamsize>(size));
  require(static_cast<std::uint64_t>(in.gcount()) == size && !in.bad(),
          "result file " + path + ": truncated in " + what);
  in.clear();
  return buf;
}

std::uint64_t read_u64(std::ifstream& in, const std::string& path,
                       const std::string& what) {
  const std::string bytes = read_exact(in, 8, path, what);
  util::ByteReader r(bytes);  // ByteReader views, never owns
  return r.u64();
}

}  // namespace

ResultWriter::ResultWriter(std::string path, const ResultFileHeader& header,
                           std::size_t block_records, WriteMode mode)
    : path_(std::move(path)),
      header_(header),
      block_records_(block_records),
      mode_(mode) {
  require(block_records_ > 0, "ResultWriter: block_records must be positive");
  if (mode_ == WriteMode::Live) {
    // Live mode streams straight to the destination so tail readers can
    // watch blocks appear; the missing end marker is what marks it
    // unfinished, not a temp name.
    temp_path_ = path_;
  } else {
    static std::atomic<std::uint64_t> counter{0};
    temp_path_ = path_ + ".tmp." + std::to_string(::getpid()) + "." +
                 std::to_string(counter.fetch_add(1));
  }
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
  require(out_.is_open(),
          "ResultWriter: cannot create output file: " + temp_path_);

  util::ByteWriter head;
  head.raw(kResultMagic, sizeof(kResultMagic));
  head.u32(kResultVersion);
  util::ByteWriter body;
  encode_header(body, header_);
  header_body_size_ = body.size();
  head.u64(body.size());
  head.raw(body.data().data(), body.size());
  head.u64(util::fnv1a64(body.data()));
  out_.write(head.data().data(),
             static_cast<std::streamsize>(head.size()));
  if (mode_ == WriteMode::Live) out_.flush();
  require(out_.good(), "ResultWriter: write failed: " + temp_path_);
  bytes_written_ = head.size();
}

void ResultWriter::set_meta(const CampaignMetadata& meta) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(!finished_, "ResultWriter::set_meta: writer already finished");
  ResultFileHeader updated = header_;
  updated.meta = meta;
  util::ByteWriter body;
  encode_header(body, updated);
  require(body.size() == header_body_size_,
          "ResultWriter::set_meta: updated metadata changes the header size");
  header_ = std::move(updated);
}

ResultWriter::~ResultWriter() {
  if (!finished_) {
    out_.close();
    // Live mode keeps the unsealed file: that *is* the dead-worker artifact
    // (tail readers salvage its complete blocks; the strict reader rejects
    // it). TempRename mode removes the temp so `path` never appears.
    if (mode_ != WriteMode::Live) std::remove(temp_path_.c_str());
  }
}

void ResultWriter::append(std::span<const InjectionRecord> records) {
  if (records.empty()) return;
  for (std::size_t i = 1; i < records.size(); ++i) {
    require(records[i].point_index >= records[i - 1].point_index,
            "ResultWriter::append: records not sorted by point index");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  require(!finished_, "ResultWriter::append: writer already finished");
  // Only coalesce consecutive point indices into one buffered block: a gap
  // could be filled by a later (completion-ordered) append, which would make
  // this block's point range overlap the later block's.
  if (!pending_.empty() &&
      records.front().point_index != pending_.back().point_index + 1) {
    flush_pending_locked(/*all=*/true);
  }
  pending_.insert(pending_.end(), records.begin(), records.end());
  records_written_ += records.size();
  flush_pending_locked(/*all=*/false);
}

void ResultWriter::flush_pending_locked(bool all) {
  if (all) {
    if (!pending_.empty()) {
      write_block_locked(pending_);
      pending_.clear();
    }
    return;
  }
  while (pending_.size() >= block_records_) {
    // Cut at the first point boundary at or past the block target so a
    // point never spans blocks.
    std::size_t cut = block_records_;
    while (cut < pending_.size() &&
           pending_[cut].point_index == pending_[cut - 1].point_index) {
      ++cut;
    }
    if (cut == pending_.size()) return;  // tail point may still grow
    write_block_locked(
        std::span<const InjectionRecord>(pending_.data(), cut));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(cut));
  }
}

void ResultWriter::write_block_locked(
    std::span<const InjectionRecord> records) {
  util::ByteWriter body;
  encode_block(body, records);
  util::ByteWriter frame;
  frame.u8(kBlockTag);
  frame.u64(body.size());
  frame.raw(body.data().data(), body.size());
  frame.u64(util::fnv1a64(body.data()));
  out_.write(frame.data().data(),
             static_cast<std::streamsize>(frame.size()));
  // Live blocks must reach the file promptly: a tail reader's view advances
  // block by block, and an ofstream-buffered block would stall the
  // incremental-merge frontier until the next flush.
  if (mode_ == WriteMode::Live) out_.flush();
  require(out_.good(), "ResultWriter: write failed: " + temp_path_);
  bytes_written_ += frame.size();
}

void ResultWriter::finish(std::uint64_t executions, std::uint64_t injections) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(!finished_, "ResultWriter::finish: already finished");
  flush_pending_locked(/*all=*/true);
  util::ByteWriter body;
  body.u64(records_written_);
  body.u64(executions);
  body.u64(injections);
  util::ByteWriter frame;
  frame.u8(kEndTag);
  frame.u64(body.size());
  frame.raw(body.data().data(), body.size());
  frame.u64(util::fnv1a64(body.data()));
  out_.write(frame.data().data(),
             static_cast<std::streamsize>(frame.size()));
  require(out_.good(), "ResultWriter: write failed: " + temp_path_);
  bytes_written_ += frame.size();
  // Rewrite the header in place with the final metadata (see set_meta) —
  // same byte size, so the block offsets that follow are untouched.
  util::ByteWriter head_body;
  encode_header(head_body, header_);
  require(head_body.size() == header_body_size_,
          "ResultWriter::finish: header size changed");
  out_.seekp(static_cast<std::streamoff>(sizeof(kResultMagic) + 4 + 8),
             std::ios::beg);
  out_.write(head_body.data().data(),
             static_cast<std::streamsize>(head_body.size()));
  util::ByteWriter head_sum;
  head_sum.u64(util::fnv1a64(head_body.data()));
  out_.write(head_sum.data().data(),
             static_cast<std::streamsize>(head_sum.size()));
  out_.flush();
  require(out_.good(), "ResultWriter: write failed: " + temp_path_);
  out_.close();
  if (mode_ != WriteMode::Live &&
      std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    throw Error("ResultWriter: cannot rename temp file into place: " + path_);
  }
  finished_ = true;
}

ResultReader::ResultReader(std::string path, ReadMode mode)
    : path_(std::move(path)) {
  in_.open(path_, std::ios::binary);
  require(in_.is_open(), "result file " + path_ + ": cannot open");
  in_.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);

  const std::string magic = read_exact(in_, sizeof(kResultMagic), path_,
                                       "magic");
  require(std::memcmp(magic.data(), kResultMagic, sizeof(kResultMagic)) == 0,
          "result file " + path_ + ": bad magic (not a QUFIPART file)");
  std::uint32_t version = 0;
  {
    const std::string bytes = read_exact(in_, 4, path_, "version");
    util::ByteReader r(bytes);
    version = r.u32();
    require(version >= 1 && version <= kResultVersion,
            "result file " + path_ + ": unsupported container version " +
                std::to_string(version));
  }

  const std::uint64_t header_size = read_u64(in_, path_, "header size");
  require(header_size <= file_size,
          "result file " + path_ + ": truncated in header");
  const std::string header_bytes =
      read_exact(in_, header_size, path_, "header");
  const std::uint64_t header_sum = read_u64(in_, path_, "header checksum");
  require(util::fnv1a64(header_bytes) == header_sum,
          "result file " + path_ + ": header checksum mismatch");
  {
    util::ByteReader r(header_bytes);
    header_ = decode_header(r, version);
    require(r.at_end(),
            "result file " + path_ + ": header has trailing bytes");
  }

  // A live writer appends whole frames sequentially, so a still-growing (or
  // killed-mid-write) file is always a *prefix* of a valid frame sequence:
  // running out of bytes inside a frame means "not written yet" (torn tail),
  // while an inconsistency inside fully available bytes is genuine
  // corruption. Tail mode therefore stops cleanly on the former and still
  // throws on the latter; Sealed mode throws on both.
  bool torn = false;
  const auto torn_or_throw = [&](const std::string& what) {
    if (mode == ReadMode::Tail) {
      torn = true;
      return;
    }
    throw Error("result file " + path_ + ": " + what);
  };
  std::size_t ordinal = 0;
  while (!sealed_ && !torn) {
    char tag_ch = 0;
    in_.read(&tag_ch, 1);
    if (in_.gcount() != 1) {
      in_.clear();
      torn_or_throw("truncated (missing end marker)");
      break;  // clean EOF at a frame boundary: an unsealed tail read
    }
    const std::uint64_t after_tag = static_cast<std::uint64_t>(in_.tellg());
    const std::uint8_t tag = static_cast<std::uint8_t>(tag_ch);
    if (tag == kBlockTag) {
      const std::string label = "block " + std::to_string(ordinal);
      if (file_size - after_tag < 8) {
        torn_or_throw("truncated in " + label + " size");
        break;
      }
      const std::uint64_t body_size =
          read_u64(in_, path_, label + " size");
      const std::uint64_t body_offset =
          static_cast<std::uint64_t>(in_.tellg());
      if (body_offset + body_size + 8 > file_size) {
        torn_or_throw(label + ": truncated");
        break;
      }
      const std::string prefix =
          read_exact(in_, kBlockPrefixBytes, path_, label + " prefix");
      util::ByteReader r(prefix);
      IndexedBlock blk;
      blk.info.first_point = r.u32();
      blk.info.last_point = r.u32();
      blk.info.num_records = r.u64();
      blk.body_offset = body_offset;
      blk.body_size = body_size;
      blk.ordinal = ordinal;
      require(body_size ==
                  kBlockPrefixBytes + blk.info.num_records * kRecordBytes,
              "result file " + path_ + ": " + label + ": size mismatch");
      require(blk.info.num_records > 0 &&
                  blk.info.first_point <= blk.info.last_point &&
                  blk.info.last_point < header_.points.size(),
              "result file " + path_ + ": " + label +
                  ": invalid point range");
      blocks_.push_back(blk);
      // Skip the column arrays and the body checksum; read_block() verifies
      // the checksum when the body is actually consumed.
      in_.seekg(static_cast<std::streamoff>(body_offset + body_size + 8),
                std::ios::beg);
      ++ordinal;
    } else if (tag == kEndTag) {
      if (file_size - after_tag < 8 + kEndBodyBytes + 8) {
        torn_or_throw("truncated in end marker");
        break;
      }
      const std::uint64_t body_size = read_u64(in_, path_, "end marker size");
      require(body_size == kEndBodyBytes,
              "result file " + path_ + ": end marker: size mismatch");
      const std::string body =
          read_exact(in_, body_size, path_, "end marker");
      const std::uint64_t sum = read_u64(in_, path_, "end marker checksum");
      require(util::fnv1a64(body) == sum,
              "result file " + path_ + ": end marker checksum mismatch");
      util::ByteReader r(body);
      total_records_ = r.u64();
      executions_ = r.u64();
      injections_ = r.u64();
      sealed_ = true;
    } else {
      throw Error("result file " + path_ + ": unknown section tag at block " +
                  std::to_string(ordinal));
    }
  }
  if (sealed_) {
    require(in_.peek() == std::ifstream::traits_type::eof(),
            "result file " + path_ + ": trailing bytes after end marker");
  }
  in_.clear();

  for (const auto& b : blocks_) indexed_records_ += b.info.num_records;
  if (sealed_) {
    require(indexed_records_ == total_records_,
            "result file " + path_ + ": end marker record count mismatch (" +
                std::to_string(indexed_records_) + " indexed, " +
                std::to_string(total_records_) + " declared)");
  }

  std::sort(blocks_.begin(), blocks_.end(),
            [](const IndexedBlock& a, const IndexedBlock& b) {
              return a.info.first_point < b.info.first_point;
            });
  for (std::size_t i = 1; i < blocks_.size(); ++i) {
    require(blocks_[i - 1].info.last_point < blocks_[i].info.first_point,
            "result file " + path_ + ": blocks " +
                std::to_string(blocks_[i - 1].ordinal) + " and " +
                std::to_string(blocks_[i].ordinal) +
                " have overlapping point ranges");
  }
}

std::vector<InjectionRecord> ResultReader::read_block(std::size_t i) {
  require(i < blocks_.size(), "ResultReader::read_block: index out of range");
  const IndexedBlock& blk = blocks_[i];
  const std::string label = "block " + std::to_string(blk.ordinal) +
                            " (points " +
                            std::to_string(blk.info.first_point) + ".." +
                            std::to_string(blk.info.last_point) + ")";
  in_.seekg(static_cast<std::streamoff>(blk.body_offset), std::ios::beg);
  const std::string body = read_exact(in_, blk.body_size, path_, label);
  const std::uint64_t sum = read_u64(in_, path_, label + " checksum");
  require(util::fnv1a64(body) == sum,
          "result file " + path_ + ": " + label + ": checksum mismatch");

  util::ByteReader r(body);
  const std::uint32_t first = r.u32();
  const std::uint32_t last = r.u32();
  const std::uint64_t n = r.u64();
  require(first == blk.info.first_point && last == blk.info.last_point &&
              n == blk.info.num_records,
          "result file " + path_ + ": " + label + ": index mismatch");
  std::vector<InjectionRecord> records(static_cast<std::size_t>(n));
  for (auto& rec : records) rec.point_index = r.u32();
  for (auto& rec : records) rec.theta_index = bits_i32(r.u32());
  for (auto& rec : records) rec.phi_index = bits_i32(r.u32());
  for (auto& rec : records) rec.neighbor_qubit = bits_i32(r.u32());
  for (auto& rec : records) rec.theta1_index = bits_i32(r.u32());
  for (auto& rec : records) rec.phi1_index = bits_i32(r.u32());
  for (auto& rec : records) rec.qvf = r.f64();
  for (auto& rec : records) rec.pa = r.f64();
  for (auto& rec : records) rec.pb = r.f64();
  require(r.at_end(),
          "result file " + path_ + ": " + label + ": trailing bytes");
  for (std::size_t k = 0; k < records.size(); ++k) {
    const auto& rec = records[k];
    require(rec.point_index >= first && rec.point_index <= last,
            "result file " + path_ + ": " + label +
                ": record outside declared point range");
    require(k == 0 || rec.point_index >= records[k - 1].point_index,
            "result file " + path_ + ": " + label +
                ": records not sorted by point index");
  }
  return records;
}

bool is_result_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char magic[sizeof(kResultMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kResultMagic, sizeof(kResultMagic)) == 0;
}

bool result_header_available(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  // Fixed prefix: magic + version + header size field.
  constexpr std::uint64_t kFixed = sizeof(kResultMagic) + 4 + 8;
  if (file_size < kFixed + 8) return false;
  in.seekg(static_cast<std::streamoff>(sizeof(kResultMagic) + 4),
           std::ios::beg);
  std::string bytes(8, '\0');
  in.read(bytes.data(), 8);
  if (in.gcount() != 8) return false;
  util::ByteReader r(bytes);
  const std::uint64_t header_size = r.u64();
  // Body + trailing checksum fully present? (Avoids summing into overflow.)
  return file_size - kFixed - 8 >= header_size;
}

void write_result_file(const std::string& path, const ResultFileHeader& header,
                       std::span<const InjectionRecord> records,
                       std::uint64_t executions, std::uint64_t injections,
                       std::size_t block_records) {
  ResultWriter writer(path, header, block_records);
  writer.append(records);
  writer.finish(executions, injections);
}

LoadedResultFile read_result_file(const std::string& path) {
  ResultReader reader(path);
  LoadedResultFile out;
  out.header = reader.header();
  out.executions = reader.executions();
  out.injections = reader.injections();
  out.records.reserve(static_cast<std::size_t>(reader.total_records()));
  for (std::size_t i = 0; i < reader.num_blocks(); ++i) {
    auto block = reader.read_block(i);
    out.records.insert(out.records.end(), block.begin(), block.end());
  }
  return out;
}

}  // namespace qufi::resio
