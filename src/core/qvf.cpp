#include "core/qvf.hpp"

#include <algorithm>

#include "sim/statevector.hpp"
#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi {

void GoldenOutput::build_index() {
  correct_mask_.assign((std::size_t{1} << num_clbits) / 64 + 1, 0);
  for (const std::uint64_t s : correct_states) {
    require(s < (std::uint64_t{1} << num_clbits),
            "GoldenOutput: correct state outside the clbit space");
    correct_mask_[s >> 6] |= 1ULL << (s & 63);
  }
}

bool GoldenOutput::is_correct(std::uint64_t state) const {
  if (!correct_mask_.empty()) {
    if ((state >> 6) >= correct_mask_.size()) return false;
    return (correct_mask_[state >> 6] >> (state & 63)) & 1ULL;
  }
  return std::find(correct_states.begin(), correct_states.end(), state) !=
         correct_states.end();
}

GoldenOutput compute_golden(const circ::QuantumCircuit& circuit,
                            double tie_tolerance) {
  require(tie_tolerance > 0.0 && tie_tolerance <= 1.0,
          "compute_golden: tie_tolerance must be in (0, 1]");
  GoldenOutput golden;
  golden.ideal_probs = sim::ideal_clbit_probabilities(circuit);
  golden.num_clbits = circuit.num_clbits();

  const double max_prob =
      *std::max_element(golden.ideal_probs.begin(), golden.ideal_probs.end());
  require(max_prob > 0.0, "compute_golden: degenerate ideal distribution");
  for (std::uint64_t s = 0; s < golden.ideal_probs.size(); ++s) {
    if (golden.ideal_probs[s] >= tie_tolerance * max_prob) {
      golden.correct_states.push_back(s);
    }
  }
  golden.build_index();
  return golden;
}

GoldenOutput golden_from_expected(std::span<const std::string> bitstrings,
                                  int num_clbits) {
  require(!bitstrings.empty(), "golden_from_expected: no expected outputs");
  GoldenOutput golden;
  golden.num_clbits = num_clbits;
  golden.ideal_probs.assign(std::size_t{1} << num_clbits, 0.0);
  const double share = 1.0 / static_cast<double>(bitstrings.size());
  for (const auto& bits : bitstrings) {
    require(static_cast<int>(bits.size()) == num_clbits,
            "golden_from_expected: bitstring width mismatch");
    const std::uint64_t state = util::from_bitstring(bits);
    golden.correct_states.push_back(state);
    golden.ideal_probs[state] = share;
  }
  golden.build_index();
  return golden;
}

double michelson_contrast(double pa, double pb) {
  require(pa >= -1e-12 && pb >= -1e-12,
          "michelson_contrast: negative probability");
  const double denom = pa + pb;
  if (denom <= 0.0) return 0.0;
  return (pa - pb) / denom;
}

double qvf_from_contrast(double contrast) {
  require(contrast >= -1.0 - 1e-12 && contrast <= 1.0 + 1e-12,
          "qvf_from_contrast: contrast out of [-1, 1]");
  return 1.0 - (contrast + 1.0) / 2.0;
}

ProbabilitySplit split_probabilities(std::span<const double> probs,
                                     const GoldenOutput& golden) {
  require(probs.size() == golden.ideal_probs.size(),
          "split_probabilities: distribution size mismatch");
  ProbabilitySplit split;
  for (std::uint64_t s = 0; s < probs.size(); ++s) {
    if (golden.is_correct(s)) {
      split.pa += probs[s];
    } else {
      split.pb = std::max(split.pb, probs[s]);
    }
  }
  return split;
}

double compute_qvf(std::span<const double> probs, const GoldenOutput& golden) {
  const ProbabilitySplit split = split_probabilities(probs, golden);
  return qvf_from_contrast(michelson_contrast(split.pa, split.pb));
}

FaultImpact classify_qvf(double qvf, double low, double high) {
  if (qvf < low) return FaultImpact::Masked;
  if (qvf > high) return FaultImpact::SilentError;
  return FaultImpact::Dubious;
}

const char* to_string(FaultImpact impact) {
  switch (impact) {
    case FaultImpact::Masked:
      return "masked";
    case FaultImpact::Dubious:
      return "dubious";
    case FaultImpact::SilentError:
      return "silent-error";
  }
  return "unknown";
}

}  // namespace qufi
