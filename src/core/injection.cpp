#include "core/injection.hpp"

#include <algorithm>

#include "circuit/moments.hpp"
#include "util/error.hpp"

namespace qufi {

using circ::GateKind;
using circ::Instruction;
using circ::QuantumCircuit;

namespace {

/// Index of the first Measure touching each qubit (SIZE_MAX when never
/// measured). Injecting a fault gate at or after this index would break
/// measurement terminality, so such points are excluded.
std::vector<std::size_t> first_measure_index(const QuantumCircuit& circuit) {
  std::vector<std::size_t> first(
      static_cast<std::size_t>(circuit.num_qubits()), SIZE_MAX);
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (instrs[i].kind != GateKind::Measure) continue;
    auto& slot = first[static_cast<std::size_t>(instrs[i].qubits[0])];
    slot = std::min(slot, i);
  }
  return first;
}

std::vector<InjectionPoint> enumerate_impl(
    const QuantumCircuit& circuit, InjectionStrategy strategy,
    const std::vector<std::vector<int>>* p2l_per_instruction) {
  const auto moments = circ::compute_moments(circuit);
  const auto& instrs = circuit.instructions();

  const auto logical_of = [&](std::size_t instr_index, int qubit) {
    if (!p2l_per_instruction) return qubit;
    return (*p2l_per_instruction)[instr_index][static_cast<std::size_t>(qubit)];
  };

  std::vector<InjectionPoint> points;
  if (strategy == InjectionStrategy::OperandsAfterEachGate) {
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      if (!instrs[i].is_unitary()) continue;
      for (int q : instrs[i].qubits) {
        points.push_back(
            InjectionPoint{i, q, logical_of(i, q), moments.moment_of[i]});
      }
    }
    return points;
  }

  // EveryActiveQubitEveryMoment: inject after the last instruction of each
  // moment, on every active qubit that has not been measured yet.
  const auto active = circuit.active_qubits();
  const auto measured_at = first_measure_index(circuit);
  for (int m = 0; m < moments.num_moments(); ++m) {
    const auto& in_moment =
        moments.instructions_per_moment[static_cast<std::size_t>(m)];
    if (in_moment.empty()) continue;
    std::size_t last = in_moment.back();
    // Skip measurement-only moments: faults after measurement are unseen.
    const bool all_measures =
        std::all_of(in_moment.begin(), in_moment.end(), [&](std::size_t i) {
          return instrs[i].kind == GateKind::Measure;
        });
    if (all_measures) continue;
    for (int q : active) {
      if (measured_at[static_cast<std::size_t>(q)] <= last) continue;
      points.push_back(InjectionPoint{last, q, logical_of(last, q), m});
    }
  }
  return points;
}

}  // namespace

std::vector<InjectionPoint> enumerate_injection_points(
    const transpile::TranspileResult& transpiled, InjectionStrategy strategy) {
  return enumerate_impl(transpiled.circuit, strategy,
                        &transpiled.p2l_per_instruction);
}

std::vector<InjectionPoint> enumerate_injection_points(
    const QuantumCircuit& circuit, InjectionStrategy strategy) {
  return enumerate_impl(circuit, strategy, nullptr);
}

QuantumCircuit inject_fault(const QuantumCircuit& circuit,
                            const InjectionPoint& point,
                            const PhaseShiftFault& fault) {
  require(point.instr_index < circuit.size(),
          "inject_fault: instruction index out of range");
  require(point.qubit >= 0 && point.qubit < circuit.num_qubits(),
          "inject_fault: qubit out of range");

  QuantumCircuit faulty(circuit.num_qubits(), circuit.num_clbits());
  faulty.set_name(circuit.name() + "+fault");
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    faulty.append(instrs[i]);
    if (i == point.instr_index) {
      faulty.append(fault.as_instruction(point.qubit));
    }
  }
  return faulty;
}

QuantumCircuit inject_double_fault(const QuantumCircuit& circuit,
                                   const InjectionPoint& point,
                                   const PhaseShiftFault& primary,
                                   int neighbor_qubit,
                                   const PhaseShiftFault& secondary) {
  require(neighbor_qubit >= 0 && neighbor_qubit < circuit.num_qubits(),
          "inject_double_fault: neighbor out of range");
  require(neighbor_qubit != point.qubit,
          "inject_double_fault: neighbor equals primary qubit");
  require(point.instr_index < circuit.size(),
          "inject_double_fault: instruction index out of range");

  QuantumCircuit faulty(circuit.num_qubits(), circuit.num_clbits());
  faulty.set_name(circuit.name() + "+fault2");
  const auto& instrs = circuit.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    faulty.append(instrs[i]);
    if (i == point.instr_index) {
      faulty.append(primary.as_instruction(point.qubit));
      faulty.append(secondary.as_instruction(neighbor_qubit));
    }
  }
  return faulty;
}

std::vector<int> neighbor_candidates(
    const transpile::TranspileResult& transpiled,
    const transpile::CouplingMap& coupling, const InjectionPoint& point) {
  require(point.instr_index < transpiled.p2l_per_instruction.size(),
          "neighbor_candidates: instruction index out of range");
  const auto measured_at = first_measure_index(transpiled.circuit);
  std::vector<int> out;
  for (int nb : coupling.neighbors(point.qubit)) {
    // The neighbor must carry an active logical qubit AND not have been
    // measured yet (a fault after measurement is physically meaningless
    // and would break measurement terminality).
    if (transpiled.logical_at(point.instr_index, nb) < 0) continue;
    if (measured_at[static_cast<std::size_t>(nb)] <= point.instr_index)
      continue;
    out.push_back(nb);
  }
  return out;
}

}  // namespace qufi
