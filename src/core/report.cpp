#include "core/report.hpp"

#include <cmath>
#include <iomanip>
#include <numbers>
#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace qufi {

std::string angle_label(double radians) {
  constexpr double kPi = std::numbers::pi;
  const double ratio = radians / kPi;
  for (int den = 1; den <= 12; ++den) {
    const double num = ratio * den;
    if (std::abs(num - std::round(num)) < 1e-9) {
      const long n = std::lround(num);
      if (n == 0) return "0";
      std::ostringstream os;
      if (n == 1) os << "pi";
      else if (n == -1) os << "-pi";
      else os << n << "pi";
      if (den != 1) os << "/" << den;
      return os.str();
    }
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(0) << radians * 180.0 / kPi << "deg";
  return os.str();
}

std::string render_heatmap(const HeatmapGrid& grid, const std::string& title,
                           const HeatmapReportOptions& options) {
  std::vector<std::string> col_labels;
  for (double t : grid.theta_rad) col_labels.push_back(angle_label(t));

  // phi descending from the top, like the paper's plots.
  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> rows;
  for (std::size_t j = grid.phi_rad.size(); j-- > 0;) {
    row_labels.push_back(angle_label(grid.phi_rad[j]));
    rows.push_back(grid.mean_qvf[j]);
  }

  util::HeatmapOptions hm;
  hm.use_color = options.color;
  if (options.delta) {
    hm.lo = -1.0;
    hm.hi = 1.0;
    hm.low_threshold = -0.05;
    hm.high_threshold = 0.05;
    hm.cell_width = 6;
  }

  std::ostringstream os;
  os << title << "\n";
  os << "rows: phi shift (top=" << row_labels.front()
     << "), cols: theta shift (left=0)\n";
  os << util::ascii_heatmap(rows, row_labels, col_labels, hm);
  return os.str();
}

std::string render_histogram(const util::Histogram& hist,
                             const std::string& title) {
  std::vector<double> centers;
  for (std::size_t i = 0; i < hist.bins(); ++i)
    centers.push_back(hist.bin_center(i));
  const auto density = hist.density();

  std::ostringstream os;
  os << title << "  (n=" << hist.total() << ", mean=" << std::fixed
     << std::setprecision(4) << hist.stats().mean()
     << ", stddev=" << hist.stats().stddev() << ")\n";
  os << util::ascii_histogram(centers, density);
  return os.str();
}

std::string render_campaign_summary(const CampaignResult& result) {
  const auto stats = result.qvf_stats();
  const auto impact = result.impact_breakdown();
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "campaign: circuit=" << result.meta.circuit_name
     << " backend=" << result.meta.backend_name
     << " points=" << result.points.size()
     << " executions=" << result.meta.executions
     << " injections=" << result.meta.injections
     << (result.meta.shots ? " (shots=" + std::to_string(result.meta.shots) + ")"
                           : " (exact distributions)")
     << "\n";
  os << "  fault-free QVF (noise only): " << result.meta.faultfree_qvf << "\n";
  os << "  QVF mean=" << stats.mean() << " stddev=" << stats.stddev()
     << " min=" << stats.min() << " max=" << stats.max() << "\n";
  os << "  impact: masked=" << impact.masked * 100 << "%"
     << " dubious=" << impact.dubious * 100 << "%"
     << " silent-error=" << impact.silent * 100 << "%\n";
  return os.str();
}

std::string render_named_fault_comparison(
    std::span<const NamedFaultQvf> series_a,
    std::span<const NamedFaultQvf> series_b, const std::string& name_a,
    const std::string& name_b) {
  require(series_a.size() == series_b.size(),
          "render_named_fault_comparison: series size mismatch");
  std::ostringstream os;
  os << std::left << std::setw(8) << "gate" << std::setw(14) << name_a
     << std::setw(14) << name_b << "abs diff\n";
  double max_diff = 0.0;
  for (std::size_t i = 0; i < series_a.size(); ++i) {
    require(series_a[i].fault_name == series_b[i].fault_name,
            "render_named_fault_comparison: fault name mismatch");
    const double diff = std::abs(series_a[i].mean_qvf - series_b[i].mean_qvf);
    max_diff = std::max(max_diff, diff);
    os << std::left << std::setw(8) << series_a[i].fault_name << std::fixed
       << std::setprecision(4) << std::setw(14) << series_a[i].mean_qvf
       << std::setw(14) << series_b[i].mean_qvf << diff << "\n";
  }
  os << "max |diff| = " << std::fixed << std::setprecision(4) << max_diff
     << "\n";
  return os.str();
}

void write_heatmap_csv(const HeatmapGrid& grid, const std::string& path) {
  util::CsvWriter csv(path);
  std::vector<std::string> header{"phi\\theta"};
  for (double t : grid.theta_rad) header.push_back(util::CsvWriter::field(t));
  csv.write_row(header);
  for (std::size_t j = 0; j < grid.phi_rad.size(); ++j) {
    std::vector<std::string> row{util::CsvWriter::field(grid.phi_rad[j])};
    for (double v : grid.mean_qvf[j]) row.push_back(util::CsvWriter::field(v));
    csv.write_row(row);
  }
}

}  // namespace qufi
