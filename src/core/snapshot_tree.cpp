#include "core/snapshot_tree.hpp"

#include <algorithm>
#include <map>

namespace qufi {

std::uint64_t SnapshotTreePlan::scratch_gates() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes) {
    if (node.parent < 0) total += node.split;
  }
  return total;
}

std::uint64_t SnapshotTreePlan::extended_gates() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes) {
    if (node.parent >= 0) {
      total += node.split - nodes[static_cast<std::size_t>(node.parent)].split;
    }
  }
  return total;
}

std::uint64_t SnapshotTreePlan::flat_gates() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes) {
    total += static_cast<std::uint64_t>(node.split) * node.members.size();
  }
  return total;
}

SnapshotTreePlan plan_snapshot_tree(std::span<const std::size_t> splits,
                                    std::size_t max_chains) {
  SnapshotTreePlan plan;
  if (splits.empty()) {
    plan.chain_begin.push_back(0);
    return plan;
  }

  // Deduplicate: one node per unique split, members in input order (the
  // map iterates splits ascending, which is also chain order).
  std::map<std::size_t, std::vector<std::size_t>> members_by_split;
  for (std::size_t pos = 0; pos < splits.size(); ++pos) {
    members_by_split[splits[pos]].push_back(pos);
  }

  const std::size_t unique = members_by_split.size();
  const std::size_t chains = std::min(std::max<std::size_t>(max_chains, 1),
                                      unique);
  plan.nodes.reserve(unique);
  auto it = members_by_split.begin();
  for (std::size_t node_index = 0; node_index < unique; ++node_index, ++it) {
    SnapshotTreeNode node;
    node.split = it->first;
    node.members = std::move(it->second);
    plan.nodes.push_back(std::move(node));
  }

  // Contiguous integer-strided chains (the stride_points idiom): chain k
  // owns unique splits [k*U/C, (k+1)*U/C); the head of each chain is a
  // root, every other node extends its predecessor.
  plan.chain_begin.reserve(chains + 1);
  for (std::size_t k = 0; k <= chains; ++k) {
    plan.chain_begin.push_back(unique * k / chains);
  }
  for (std::size_t k = 0; k < chains; ++k) {
    for (std::size_t i = plan.chain_begin[k] + 1; i < plan.chain_begin[k + 1];
         ++i) {
      plan.nodes[i].parent = static_cast<std::ptrdiff_t>(i - 1);
    }
  }
  return plan;
}

}  // namespace qufi
