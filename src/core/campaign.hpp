#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "circuit/circuit.hpp"
#include "core/fault_model.hpp"
#include "core/injection.hpp"
#include "core/qvf.hpp"
#include "core/results.hpp"
#include "noise/backend_props.hpp"
#include "transpile/transpiler.hpp"

namespace qufi {

/// Everything that defines one fault-injection campaign.
struct CampaignSpec {
  /// Logical circuit with terminal measurements (e.g. from qufi::algo).
  circ::QuantumCircuit circuit;
  /// Known correct outputs (MSB-first). Empty = derive by ideal simulation.
  std::vector<std::string> expected_outputs;

  /// Device the circuit is transpiled onto; also sources the noise model
  /// and the coupling map used for neighbor discovery.
  noise::BackendProperties backend = noise::fake_casablanca();
  transpile::TranspileOptions transpile_options{};  // opt level 3, the paper's

  FaultParamGrid grid;
  InjectionStrategy strategy = InjectionStrategy::OperandsAfterEachGate;

  std::uint64_t shots = 0;  ///< 0 = exact distributions; paper uses 1024
  std::uint64_t seed = 0x51754649;
  double noise_scale = 1.0;  ///< scales the backend noise (0 = ideal run)

  /// Apply thermal relaxation to idle qubits per circuit moment (the
  /// calibrated-T1/T2 extension of the paper's noise model; see
  /// docs/CAMPAIGNS.md). The density backend's snapshots are moment-aware,
  /// so idle-noise campaigns run through the same checkpoint/batch/tree
  /// engine as plain ones — records match the --no-checkpoint re-simulation
  /// reference within the usual 1e-9 QVF bound. Ignored when a
  /// backend_override executes the campaign (configure the override
  /// itself); recorded in CampaignMetadata::idle_noise either way so shard
  /// merges can refuse to mix modes.
  bool idle_noise = false;

  /// Keep only every k-th injection point so the total stays <= max_points
  /// (0 = keep all). Deterministic striding, used by quick benches.
  std::size_t max_points = 0;

  /// Adaptive estimation mode (docs/CAMPAIGNS.md "Adaptive estimation"):
  /// instead of sweeping every (theta, phi) config per injection point, run
  /// the adaptive estimator (core/adaptive.hpp), which evaluates a coarse
  /// stratified lattice and refines only high-uncertainty cells until the
  /// per-point QVF confidence interval or config budget is reached. Records
  /// then cover only the evaluated subset (sorted in enumeration order per
  /// point), CampaignResult gains per-point estimates, and CSVs grow
  /// configs_evaluated/ci_halfwidth/est_qvf columns. The evaluated config
  /// set is deterministic-by-seed — a pure function of (grid, policy,
  /// spec.seed, global point index) — so adaptive runs are bit-identical
  /// across reruns, thread counts, and shard splits, exactly like
  /// exhaustive ones. Single-fault campaigns only (double-fault and named
  /// campaigns reject it).
  std::optional<AdaptivePolicy> adaptive;

  int threads = 0;  ///< worker threads; 0 = hardware concurrency

  /// Evolve the gate prefix of each injection point once (one backend
  /// snapshot per point) and sweep the whole (theta, phi) grid from it,
  /// instead of re-simulating the full faulty circuit per config. Only
  /// takes effect when the executing backend supports checkpointing; the
  /// exact density-matrix backend produces bit-identical records either
  /// way. Disable for the re-simulation baseline (bench --no-checkpoint).
  bool use_checkpoints = true;

  /// Submit each injection point's configs as one Backend::run_suffix_batch
  /// call (chunked across pool lanes when points are scarce) instead of
  /// per-config run_suffix jobs, letting the backend amortize suffix
  /// compilation and scratch state across the grid. Only takes effect
  /// together with use_checkpoints on a checkpointing backend; records
  /// match the per-config path within 1e-9 (QVF parity) on the density
  /// backend. Disable for the batching baseline (bench --no-batch).
  bool use_batch = true;

  /// Run the prefix-tree engine: the subset's injection points are
  /// deduplicated by split index and organized into chains of nested split
  /// points, each snapshot derived from its predecessor via
  /// Backend::extend_snapshot instead of re-evolved from the initial state,
  /// and each point's whole grid (for double campaigns: the full
  /// primary x secondary grid across every neighbor) sweeps from its shared
  /// per-point snapshot as one batch. On the density backend this also
  /// enables the suffix-response fast path inside run_suffix_batch (see
  /// DensityMatrixBackend::set_suffix_response_enabled) — the deepest tree
  /// level, where the injection site itself is the shared split point.
  /// Only takes effect together with use_checkpoints on a checkpointing
  /// backend. Records match the flat engine within 1e-9 (QVF parity);
  /// snapshot derivation itself is bit-identical to from-scratch prepares,
  /// so sharding and tree shape never interact. Disable for the PR 2
  /// flat-batch baseline (bench --no-tree).
  ///
  /// Caveat: campaigns only toggle the suffix-response path on the backend
  /// they construct themselves. A caller-supplied backend_override is
  /// never mutated — a DensityMatrixBackend passed in with its default
  /// (enabled) response setting keeps it even when use_tree is false, so
  /// for a faithful --no-tree baseline over an override, call
  /// set_suffix_response_enabled(false) on it yourself (the dist shard
  /// runner does exactly that from the manifest's use_tree knob).
  bool use_tree = true;

  /// Execute on this backend instead of the density-matrix simulator built
  /// from `backend` (e.g. SimulatedHardwareBackend). Must be thread-safe:
  /// run(), prepare_prefix(), run_suffix() and run_suffix_batch() are all
  /// called concurrently from pool workers (batched campaigns submit
  /// multiple chunks against one shared snapshot). Not owned.
  backend::Backend* backend_override = nullptr;

  /// Stream each injection point's completed record slice out of the engine
  /// the moment its whole grid finished, instead of accumulating the full
  /// record vector: the returned CampaignResult then carries metadata, the
  /// point table and execution totals but an *empty* records vector, keeping
  /// engine memory at O(points) slices instead of O(campaign). Blocks
  /// arrive in completion order (not point order) and emit() is called
  /// concurrently from pool lanes — see ResultBlockSink. Values are
  /// bit-identical to the accumulated records (same slots, same seeds).
  /// Not owned; nullptr = accumulate as before.
  ResultBlockSink* record_sink = nullptr;
};

/// Runs the single-fault campaign of §IV-B: every injection point x every
/// grid (theta, phi), one faulty execution each.
///
/// \param spec Campaign definition (circuit, device, grid, execution knobs).
/// \return Per-config records (indexed by point/theta/phi), the point list,
///         and campaign metadata. Record values are independent of thread
///         count and scheduling (per-config seeds, index-addressed slots).
///
/// Thread-safety: runs its own worker pool internally; concurrent campaign
/// calls are safe as long as any backend_override is itself thread-safe.
CampaignResult run_single_fault_campaign(const CampaignSpec& spec);

/// Runs the double-fault campaign of §IV-C: for every injection point and
/// every coupled, active neighbor, the primary fault (theta0, phi0) sweeps
/// `spec.grid` and the secondary sweeps theta1 <= theta0, phi1 <= phi0 on
/// the same step (the neighbor is farther from the particle impact).
/// The paper restricts phi0 to [0, pi] for BV symmetry; pass a grid with
/// phi_max_deg = 180 to reproduce that.
///
/// \param spec Campaign definition; spec.grid drives the primary sweep.
/// \return Records carrying both fault index tuples (neighbor_qubit,
///         theta1/phi1 set). Deterministic as in run_single_fault_campaign.
CampaignResult run_double_fault_campaign(const CampaignSpec& spec);

/// Runs the single-fault campaign restricted to a subset of the campaign's
/// injection points — the shard-execution primitive (src/dist). Point
/// indices refer to the *global* enumeration (campaign_points(spec)), and
/// per-config seeds are derived from those global indices, so the union of
/// disjoint shard runs is record-for-record identical to the one-process
/// run: qufi::dist::merge_shard_results reassembles it bit-exactly on the
/// density backend and under common random numbers on the trajectory
/// backend.
///
/// \param spec          Campaign definition, as in run_single_fault_campaign.
/// \param point_indices Strictly increasing global point indices (a shard
///                      from qufi::dist::plan_shards). May be empty: the
///                      result then carries metadata and the full point
///                      table but no records (idempotent empty shard).
/// \return Shard-local records (point_index fields stay global) plus the
///         full point table, so shards merge without re-transpiling.
CampaignResult run_single_fault_campaign_subset(
    const CampaignSpec& spec, std::span<const std::size_t> point_indices);

/// Shard form of run_double_fault_campaign: executes only configs whose
/// primary injection point is in `point_indices`. Seeds are derived from
/// the *global* flat config enumeration, so shard unions match the
/// one-process run exactly (see run_single_fault_campaign_subset).
///
/// \param spec          Campaign definition; spec.grid drives the sweep.
/// \param point_indices Strictly increasing global point indices; may be
///                      empty (and a non-empty shard may still yield zero
///                      records when none of its points has a coupled,
///                      active neighbor).
CampaignResult run_double_fault_campaign_subset(
    const CampaignSpec& spec, std::span<const std::size_t> point_indices);

/// Mean QVF per named fault (paper Fig. 11): injects each named fault at
/// every point and averages. Grid fields of `spec` are ignored.
struct NamedFaultQvf {
  std::string fault_name;
  double mean_qvf = 0.0;
  std::uint64_t executions = 0;
};

/// \param spec   Campaign definition (grid fields ignored).
/// \param faults Named faults to inject (e.g. gate_equivalent_faults()).
/// \return One entry per fault, in input order, with the mean QVF over all
///         injection points.
std::vector<NamedFaultQvf> run_named_fault_campaign(
    const CampaignSpec& spec, std::span<const NamedFault> faults);

/// Transpiles spec.circuit exactly as the campaign would (for inspection
/// and point counting without running anything).
///
/// \return The transpiled circuit plus layout/attribution metadata.
transpile::TranspileResult campaign_transpile(const CampaignSpec& spec);

/// Injection points the campaign would use (after max_points striding).
///
/// \return Points over the transpiled circuit, in instruction order.
std::vector<InjectionPoint> campaign_points(const CampaignSpec& spec);

/// Deterministic down-selection to at most `max_points` points (0 = keep
/// all): integer striding over the input order — exact output count,
/// strictly increasing source indices, never a duplicate or an out-of-range
/// pick (regression: the old floating-point stride could repeat or skip
/// points for large counts).
///
/// \param points     Candidate points, in enumeration order.
/// \param max_points Budget; 0 keeps everything.
/// \return The strided subset (always includes the first point).
std::vector<InjectionPoint> stride_points(std::vector<InjectionPoint> points,
                                          std::size_t max_points);

/// (point, neighbor) pairs a double campaign would use.
///
/// \return One pair per (injection point, coupled active neighbor), in
///         point order.
std::vector<std::pair<InjectionPoint, int>> campaign_point_neighbor_pairs(
    const CampaignSpec& spec);

}  // namespace qufi
