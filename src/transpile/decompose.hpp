#pragma once

#include "circuit/circuit.hpp"
#include "util/matrix.hpp"

namespace qufi::transpile {

/// ZYZ Euler decomposition of a 2x2 unitary:
/// u = e^{i phase} * U(theta, phi, lambda)   (paper Eq. 3 convention).
struct EulerAngles {
  double theta = 0.0;
  double phi = 0.0;
  double lambda = 0.0;
  double phase = 0.0;
};

/// Extracts the Euler angles of `u` (must be unitary within 1e-8).
EulerAngles euler_angles(const util::Mat2& u);

/// Appends the minimal {rz, sx, x} realization of a 1q unitary to `circuit`
/// on `qubit` (IBM's "ZSX" basis):
///   theta ~ 0      -> rz(phi+lambda)                       (0 physical gates)
///   theta ~ pi/2   -> rz(lambda-pi/2) sx rz(phi+pi/2)      (1 physical gate)
///   otherwise      -> rz(lambda) sx rz(theta+pi) sx rz(phi+pi)
/// Near-identity rz rotations are dropped. Global phase is discarded.
void append_1q_basis(circ::QuantumCircuit& circuit, const util::Mat2& u,
                     int qubit);

/// True when `kind` is in the hardware basis {rz, sx, x, cx} or is a
/// non-unitary directive (barrier / measure / reset).
bool in_basis(circ::GateKind kind);

/// Lowers every instruction to the basis {rz, sx, x, cx}: 1q gates via
/// append_1q_basis, swap -> 3 cx, cz/cy/ch/cp/crz -> cx + 1q, ccx -> the
/// standard 6-cx network. Idempotent on already-lowered circuits.
circ::QuantumCircuit decompose_to_basis(const circ::QuantumCircuit& input);

}  // namespace qufi::transpile
