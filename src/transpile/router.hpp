#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "transpile/coupling.hpp"
#include "transpile/layout.hpp"

namespace qufi::transpile {

/// Output of SWAP routing: a circuit over *physical* qubits whose two-qubit
/// gates all act on coupled pairs, plus the layout bookkeeping QuFI needs
/// to attribute injected faults to logical qubits ("QuFI keeps track of the
/// logical and physical qubits throughout the transpiling process").
struct RoutingResult {
  circ::QuantumCircuit circuit;  ///< width = device qubits; SWAPs explicit
  Layout initial_layout;
  Layout final_layout;
  /// For each instruction of `circuit`: physical -> logical mapping in
  /// effect when that instruction executes (for SWAPs: before the swap).
  std::vector<std::vector<int>> p2l_per_instruction;
};

/// Greedy shortest-path router: processes gates in order; when a two-qubit
/// gate spans non-adjacent physical qubits, SWAPs walk one operand along a
/// shortest path until adjacent. Deterministic.
///
/// `logical` may contain 1q gates, cx (any 2q unitary), barrier, measure
/// and reset; 3q gates must be decomposed first.
RoutingResult route(const circ::QuantumCircuit& logical,
                    const CouplingMap& coupling, const Layout& initial);

}  // namespace qufi::transpile
