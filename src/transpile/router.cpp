#include "transpile/router.hpp"

#include "util/error.hpp"

namespace qufi::transpile {

using circ::GateKind;
using circ::Instruction;
using circ::QuantumCircuit;

RoutingResult route(const QuantumCircuit& logical, const CouplingMap& coupling,
                    const Layout& initial) {
  require(logical.num_qubits() <= coupling.num_qubits(),
          "route: circuit wider than device");
  require(initial.num_logical() == logical.num_qubits(),
          "route: layout size mismatch");
  require(initial.num_physical() == coupling.num_qubits(),
          "route: layout/device size mismatch");

  RoutingResult result{
      QuantumCircuit(coupling.num_qubits(), logical.num_clbits()),
      initial,
      initial,
      {}};
  result.circuit.set_name(logical.name());
  Layout& layout = result.final_layout;

  const auto emit = [&](Instruction instr) {
    result.circuit.append(std::move(instr));
    result.p2l_per_instruction.push_back(layout.p2l);
  };

  for (const auto& instr : logical.instructions()) {
    require(instr.qubits.size() <= 2 || instr.kind == GateKind::Barrier,
            "route: decompose 3+ qubit gates before routing");

    Instruction mapped = instr;
    for (auto& q : mapped.qubits) q = layout.physical(q);

    if (mapped.qubits.size() == 2 && instr.kind != GateKind::Barrier) {
      int pa = mapped.qubits[0];
      int pb = mapped.qubits[1];
      if (!coupling.connected(pa, pb)) {
        // Walk operand A toward B along a shortest path.
        const auto path = coupling.shortest_path(pa, pb);
        require(path.size() >= 3, "route: inconsistent path");
        for (std::size_t step = 0; step + 2 < path.size(); ++step) {
          const int from = path[step];
          const int to = path[step + 1];
          // Record mapping *before* the swap takes effect.
          emit(Instruction{GateKind::SWAP, {from, to}, {}, {}});
          layout.swap_physical(from, to);
        }
        pa = path[path.size() - 2];
        mapped.qubits[0] = pa;
        // pb unchanged; the moved qubit is now adjacent to it.
        require(coupling.connected(pa, pb), "route: swap walk failed");
      }
    }
    emit(std::move(mapped));
  }
  return result;
}

}  // namespace qufi::transpile
