#pragma once

#include "circuit/circuit.hpp"

namespace qufi::transpile {

/// Removes gates that are the identity up to global phase: id, rz/p/u with
/// trivial angles, and any 1q gate whose matrix ~ e^{ia} I.
circ::QuantumCircuit remove_trivial_gates(const circ::QuantumCircuit& input);

/// Cancels adjacent self-inverse two-qubit gate pairs (cx·cx, cz·cz,
/// swap·swap on identical operands with nothing touching either qubit in
/// between). Runs to fixpoint.
circ::QuantumCircuit cancel_adjacent_pairs(const circ::QuantumCircuit& input);

/// Fuses maximal runs of single-qubit unitaries on each qubit into one
/// matrix and re-emits the minimal {rz, sx, x} realization. Produces at
/// most 5 gates (3 of them virtual rz) per run.
circ::QuantumCircuit merge_1q_runs(const circ::QuantumCircuit& input);

/// Applies the optimization pipeline for a transpiler optimization level:
///   0: nothing
///   1: remove_trivial_gates + cancel_adjacent_pairs
///   2+: level 1 passes + merge_1q_runs, iterated to fixpoint
circ::QuantumCircuit optimize(const circ::QuantumCircuit& input, int level);

}  // namespace qufi::transpile
