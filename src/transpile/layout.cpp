#include "transpile/layout.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace qufi::transpile {

Layout Layout::from_l2p(std::vector<int> l2p, int num_physical) {
  Layout layout;
  layout.p2l.assign(static_cast<std::size_t>(num_physical), -1);
  for (std::size_t l = 0; l < l2p.size(); ++l) {
    const int p = l2p[l];
    require(p >= 0 && p < num_physical, "Layout: physical index out of range");
    require(layout.p2l[static_cast<std::size_t>(p)] < 0,
            "Layout: duplicate physical assignment");
    layout.p2l[static_cast<std::size_t>(p)] = static_cast<int>(l);
  }
  layout.l2p = std::move(l2p);
  return layout;
}

void Layout::swap_physical(int pa, int pb) {
  const int la = p2l.at(static_cast<std::size_t>(pa));
  const int lb = p2l.at(static_cast<std::size_t>(pb));
  std::swap(p2l[static_cast<std::size_t>(pa)],
            p2l[static_cast<std::size_t>(pb)]);
  if (la >= 0) l2p[static_cast<std::size_t>(la)] = pb;
  if (lb >= 0) l2p[static_cast<std::size_t>(lb)] = pa;
}

Layout trivial_layout(int num_logical, int num_physical) {
  require(num_logical <= num_physical,
          "trivial_layout: circuit needs more qubits than the device has");
  std::vector<int> l2p(static_cast<std::size_t>(num_logical));
  for (int l = 0; l < num_logical; ++l) l2p[static_cast<std::size_t>(l)] = l;
  return Layout::from_l2p(std::move(l2p), num_physical);
}

namespace {

/// Grows a connected set of size k from `seed`, preferring candidates with
/// the most edges into the current set (ties: lower index, deterministic).
/// Returns the selected physical qubits in insertion order, or empty if the
/// component is too small.
std::vector<int> grow_dense_set(int seed, int k, const CouplingMap& coupling) {
  std::vector<int> selected{seed};
  std::vector<bool> in_set(static_cast<std::size_t>(coupling.num_qubits()),
                           false);
  in_set[static_cast<std::size_t>(seed)] = true;
  while (static_cast<int>(selected.size()) < k) {
    int best = -1;
    int best_links = -1;
    for (int q : selected) {
      for (int nb : coupling.neighbors(q)) {
        if (in_set[static_cast<std::size_t>(nb)]) continue;
        int links = 0;
        for (int nb2 : coupling.neighbors(nb)) {
          if (in_set[static_cast<std::size_t>(nb2)]) ++links;
        }
        if (links > best_links || (links == best_links && nb < best)) {
          best_links = links;
          best = nb;
        }
      }
    }
    if (best < 0) return {};  // component exhausted
    selected.push_back(best);
    in_set[static_cast<std::size_t>(best)] = true;
  }
  return selected;
}

int internal_edges(const std::vector<int>& set, const CouplingMap& coupling) {
  int count = 0;
  for (std::size_t i = 0; i < set.size(); ++i)
    for (std::size_t j = i + 1; j < set.size(); ++j)
      if (coupling.connected(set[i], set[j])) ++count;
  return count;
}

}  // namespace

Layout dense_layout(int num_logical, const CouplingMap& coupling) {
  require(num_logical >= 1, "dense_layout: need at least one logical qubit");
  require(num_logical <= coupling.num_qubits(),
          "dense_layout: circuit needs more qubits than the device has");

  std::vector<int> best_set;
  int best_score = -1;
  for (int seed = 0; seed < coupling.num_qubits(); ++seed) {
    const auto set = grow_dense_set(seed, num_logical, coupling);
    if (set.empty()) continue;
    const int score = internal_edges(set, coupling);
    if (score > best_score) {
      best_score = score;
      best_set = set;
    }
  }
  require(!best_set.empty(),
          "dense_layout: no connected subgraph of the required size");
  // Logical i -> i-th selected qubit (BFS insertion order keeps logically
  // adjacent indices physically close for chain-structured circuits).
  return Layout::from_l2p(best_set, coupling.num_qubits());
}

Layout noise_adaptive_layout(int num_logical, const CouplingMap& coupling,
                             const noise::BackendProperties& props) {
  require(num_logical <= coupling.num_qubits(),
          "noise_adaptive_layout: circuit too wide for device");
  require(props.num_qubits == coupling.num_qubits(),
          "noise_adaptive_layout: backend/coupling size mismatch");

  // Per-qubit badness: readout + 1q error; per-edge badness: cx error.
  const auto qubit_cost = [&](int q) {
    return props.qubits[static_cast<std::size_t>(q)].readout.mean_error() +
           props.gate_1q[static_cast<std::size_t>(q)].error;
  };

  std::vector<int> best_set;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int seed = 0; seed < coupling.num_qubits(); ++seed) {
    std::vector<int> selected{seed};
    std::vector<bool> in_set(static_cast<std::size_t>(coupling.num_qubits()),
                             false);
    in_set[static_cast<std::size_t>(seed)] = true;
    double cost = qubit_cost(seed);
    while (static_cast<int>(selected.size()) < num_logical) {
      int best = -1;
      double best_delta = std::numeric_limits<double>::infinity();
      for (int q : selected) {
        for (int nb : coupling.neighbors(q)) {
          if (in_set[static_cast<std::size_t>(nb)]) continue;
          double delta = qubit_cost(nb);
          // Favor candidates whose links into the set are low-error edges.
          for (int nb2 : coupling.neighbors(nb)) {
            if (in_set[static_cast<std::size_t>(nb2)])
              delta += 0.5 * props.cx_spec(nb, nb2).error;
          }
          if (delta < best_delta || (delta == best_delta && nb < best)) {
            best_delta = delta;
            best = nb;
          }
        }
      }
      if (best < 0) break;
      selected.push_back(best);
      in_set[static_cast<std::size_t>(best)] = true;
      cost += best_delta;
    }
    if (static_cast<int>(selected.size()) == num_logical && cost < best_cost) {
      best_cost = cost;
      best_set = selected;
    }
  }
  require(!best_set.empty(),
          "noise_adaptive_layout: no connected subgraph of the required size");
  return Layout::from_l2p(best_set, coupling.num_qubits());
}

}  // namespace qufi::transpile
