#include "transpile/transpiler.hpp"

#include <optional>

#include "transpile/decompose.hpp"
#include "transpile/optimize.hpp"
#include "transpile/router.hpp"
#include "util/error.hpp"

namespace qufi::transpile {

using circ::GateKind;
using circ::Instruction;
using circ::QuantumCircuit;

int TranspileResult::logical_at(std::size_t instr_index, int physical) const {
  require(instr_index < p2l_per_instruction.size(),
          "logical_at: instruction index out of range");
  const auto& p2l = p2l_per_instruction[instr_index];
  require(physical >= 0 && physical < static_cast<int>(p2l.size()),
          "logical_at: physical qubit out of range");
  return p2l[static_cast<std::size_t>(physical)];
}

namespace {

struct TrackedCircuit {
  std::vector<Instruction> instrs;
  std::vector<std::vector<int>> snaps;  // parallel p2l snapshots
};

/// SWAP -> 3 cx; the three gates inherit the pre-swap snapshot (the logical
/// handoff is attributed to the boundary between swap and successor).
TrackedCircuit lower_swaps(TrackedCircuit in) {
  TrackedCircuit out;
  for (std::size_t i = 0; i < in.instrs.size(); ++i) {
    const auto& instr = in.instrs[i];
    if (instr.kind != GateKind::SWAP) {
      out.instrs.push_back(instr);
      out.snaps.push_back(in.snaps[i]);
      continue;
    }
    const int a = instr.qubits[0];
    const int b = instr.qubits[1];
    for (const auto& q : {std::pair{a, b}, std::pair{b, a}, std::pair{a, b}}) {
      out.instrs.push_back(Instruction{GateKind::CX, {q.first, q.second}, {}, {}});
      out.snaps.push_back(in.snaps[i]);
    }
  }
  return out;
}

/// Snapshot-aware adjacent-cx cancellation (the unitary-preserving subset
/// of the optimizer that is safe after routing: removing an identity pair
/// leaves every recorded p2l snapshot valid).
TrackedCircuit cancel_cx_pairs(TrackedCircuit in, int num_wires) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::optional<std::size_t>> live_idx;
    std::vector<long> last_touch(static_cast<std::size_t>(num_wires), -1);
    std::vector<bool> dead(in.instrs.size(), false);

    std::vector<long> position_of(in.instrs.size(), -1);
    std::vector<std::size_t> order;

    const auto rescan = [&](int wire) {
      last_touch[static_cast<std::size_t>(wire)] = -1;
      for (long j = static_cast<long>(order.size()) - 1; j >= 0; --j) {
        const std::size_t idx = order[static_cast<std::size_t>(j)];
        if (dead[idx]) continue;
        for (int q : in.instrs[idx].qubits) {
          if (q == wire) {
            last_touch[static_cast<std::size_t>(wire)] = j;
            return;
          }
        }
      }
    };

    for (std::size_t i = 0; i < in.instrs.size(); ++i) {
      const auto& instr = in.instrs[i];
      if (instr.kind == GateKind::CX) {
        const int a = instr.qubits[0];
        const int b = instr.qubits[1];
        const long ja = last_touch[static_cast<std::size_t>(a)];
        const long jb = last_touch[static_cast<std::size_t>(b)];
        if (ja >= 0 && ja == jb) {
          const std::size_t prev = order[static_cast<std::size_t>(ja)];
          if (!dead[prev] && in.instrs[prev].kind == GateKind::CX &&
              in.instrs[prev].qubits == instr.qubits) {
            dead[prev] = true;
            dead[i] = true;
            changed = true;
            rescan(a);
            rescan(b);
            continue;
          }
        }
      }
      order.push_back(i);
      const long pos = static_cast<long>(order.size()) - 1;
      for (int q : instr.qubits) last_touch[static_cast<std::size_t>(q)] = pos;
    }

    if (changed) {
      TrackedCircuit next;
      for (std::size_t i = 0; i < in.instrs.size(); ++i) {
        if (dead[i]) continue;
        next.instrs.push_back(std::move(in.instrs[i]));
        next.snaps.push_back(std::move(in.snaps[i]));
      }
      in = std::move(next);
    }
  }
  return in;
}

/// Drops rz gates with ~0 angle (can appear at snapshot boundaries after
/// routing); snapshot array stays aligned.
TrackedCircuit drop_trivial_rz(TrackedCircuit in) {
  TrackedCircuit out;
  for (std::size_t i = 0; i < in.instrs.size(); ++i) {
    const auto& instr = in.instrs[i];
    if (instr.kind == GateKind::RZ) {
      const util::Mat2 m = circ::gate_matrix1(instr.kind, instr.params);
      if (m.equal_up_to_phase(util::Mat2::identity(), 1e-12)) continue;
    }
    out.instrs.push_back(instr);
    out.snaps.push_back(in.snaps[i]);
  }
  return out;
}

TranspileResult transpile_impl(const QuantumCircuit& circuit,
                               const CouplingMap& coupling,
                               const noise::BackendProperties* props,
                               const TranspileOptions& options,
                               const std::string& backend_name) {
  require(options.optimization_level >= 0 && options.optimization_level <= 3,
          "transpile: optimization_level must be in [0, 3]");
  require(coupling.is_connected(), "transpile: device graph is disconnected");
  require(circuit.num_qubits() <= coupling.num_qubits(),
          "transpile: circuit wider than device");

  const int level = options.optimization_level;

  // 1) Lower to basis gates, 2) logical-domain optimization.
  QuantumCircuit lowered = decompose_to_basis(circuit);
  lowered = optimize(lowered, level);

  // 3) Layout selection.
  LayoutMethod method = options.layout_method;
  if (method == LayoutMethod::ByLevel) {
    method = level >= 2 ? LayoutMethod::Dense : LayoutMethod::Trivial;
  }
  Layout initial = [&] {
    switch (method) {
      case LayoutMethod::Trivial:
        return trivial_layout(circuit.num_qubits(), coupling.num_qubits());
      case LayoutMethod::Dense:
        return dense_layout(circuit.num_qubits(), coupling);
      case LayoutMethod::NoiseAdaptive:
        require(props != nullptr,
                "transpile: NoiseAdaptive layout needs BackendProperties");
        return noise_adaptive_layout(circuit.num_qubits(), coupling, *props);
      default:
        throw Error("transpile: bad layout method");
    }
  }();

  // 4) Routing, 5) SWAP lowering with snapshot replication.
  RoutingResult routed = route(lowered, coupling, initial);
  TrackedCircuit tracked{routed.circuit.instructions(),
                         std::move(routed.p2l_per_instruction)};
  tracked = lower_swaps(std::move(tracked));

  // 6) Post-routing cleanup (snapshot-preserving passes only).
  if (level >= 1) {
    tracked = cancel_cx_pairs(std::move(tracked), coupling.num_qubits());
    tracked = drop_trivial_rz(std::move(tracked));
  }

  TranspileResult result{
      QuantumCircuit(coupling.num_qubits(), circuit.num_clbits()),
      routed.initial_layout,
      routed.final_layout,
      std::move(tracked.snaps),
      backend_name,
      level};
  result.circuit.set_name(circuit.name() + "@" + backend_name);
  for (auto& instr : tracked.instrs) result.circuit.append(std::move(instr));
  require(result.circuit.size() == result.p2l_per_instruction.size(),
          "transpile: snapshot bookkeeping out of sync");
  return result;
}

}  // namespace

TranspileResult transpile(const QuantumCircuit& circuit,
                          const noise::BackendProperties& backend,
                          const TranspileOptions& options) {
  const CouplingMap coupling = CouplingMap::from_backend(backend);
  return transpile_impl(circuit, coupling, &backend, options, backend.name);
}

TranspileResult transpile(const QuantumCircuit& circuit,
                          const CouplingMap& coupling,
                          const TranspileOptions& options) {
  return transpile_impl(circuit, coupling, nullptr, options, "coupling_map");
}

}  // namespace qufi::transpile
