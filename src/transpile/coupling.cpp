#include "transpile/coupling.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace qufi::transpile {

CouplingMap::CouplingMap(int num_qubits,
                         std::span<const std::pair<int, int>> edges)
    : num_qubits_(num_qubits) {
  require(num_qubits >= 1, "CouplingMap: need at least one qubit");
  adj_.resize(static_cast<std::size_t>(num_qubits));
  for (auto [a, b] : edges) {
    require(a >= 0 && a < num_qubits && b >= 0 && b < num_qubits,
            "CouplingMap: edge endpoint out of range");
    require(a != b, "CouplingMap: self edge");
    const auto key = std::pair{std::min(a, b), std::max(a, b)};
    if (std::find(edges_.begin(), edges_.end(), key) != edges_.end()) continue;
    edges_.push_back(key);
    adj_[static_cast<std::size_t>(a)].push_back(b);
    adj_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());

  // All-pairs BFS.
  dist_.assign(static_cast<std::size_t>(num_qubits),
               std::vector<int>(static_cast<std::size_t>(num_qubits), -1));
  for (int src = 0; src < num_qubits; ++src) {
    auto& d = dist_[static_cast<std::size_t>(src)];
    d[static_cast<std::size_t>(src)] = 0;
    std::deque<int> queue{src};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : adj_[static_cast<std::size_t>(u)]) {
        if (d[static_cast<std::size_t>(v)] < 0) {
          d[static_cast<std::size_t>(v)] = d[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
  }
}

CouplingMap CouplingMap::from_backend(const noise::BackendProperties& props) {
  return CouplingMap(props.num_qubits, props.coupling);
}

bool CouplingMap::connected(int a, int b) const { return distance(a, b) == 1; }

const std::vector<int>& CouplingMap::neighbors(int q) const {
  require(q >= 0 && q < num_qubits_, "CouplingMap: qubit out of range");
  return adj_[static_cast<std::size_t>(q)];
}

int CouplingMap::distance(int a, int b) const {
  require(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_,
          "CouplingMap: qubit out of range");
  return dist_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

std::vector<int> CouplingMap::shortest_path(int a, int b) const {
  const int d = distance(a, b);
  require(d >= 0, "CouplingMap: qubits are not connected");
  std::vector<int> path{a};
  int current = a;
  while (current != b) {
    // Greedy descent on the distance field.
    for (int v : adj_[static_cast<std::size_t>(current)]) {
      if (distance(v, b) == distance(current, b) - 1) {
        current = v;
        path.push_back(v);
        break;
      }
    }
  }
  return path;
}

bool CouplingMap::is_connected() const {
  for (int q = 1; q < num_qubits_; ++q) {
    if (distance(0, q) < 0) return false;
  }
  return true;
}

}  // namespace qufi::transpile
