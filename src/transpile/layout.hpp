#pragma once

#include <vector>

#include "transpile/coupling.hpp"

namespace qufi::transpile {

/// Bidirectional logical <-> physical qubit assignment.
struct Layout {
  std::vector<int> l2p;  ///< logical -> physical
  std::vector<int> p2l;  ///< physical -> logical, -1 for unused ancillas

  static Layout from_l2p(std::vector<int> l2p, int num_physical);

  int num_logical() const { return static_cast<int>(l2p.size()); }
  int num_physical() const { return static_cast<int>(p2l.size()); }
  int physical(int logical) const { return l2p.at(static_cast<std::size_t>(logical)); }
  int logical(int physical) const { return p2l.at(static_cast<std::size_t>(physical)); }

  /// Applies a physical SWAP: the logical payloads of pa and pb exchange.
  void swap_physical(int pa, int pb);
};

/// Identity assignment: logical i -> physical i.
Layout trivial_layout(int num_logical, int num_physical);

/// Greedy densest-connected-subgraph layout (the effect of Qiskit's
/// DenseLayout at optimization_level=3): chooses `num_logical` physical
/// qubits forming a connected subgraph with as many internal edges as
/// possible, so fewer SWAPs are needed.
Layout dense_layout(int num_logical, const CouplingMap& coupling);

/// Reliability-aware layout: picks a connected subgraph greedily minimizing
/// accumulated gate + readout error. The paper motivates exactly this use
/// of per-qubit reliability data ("reliability-aware mapping of the circuit
/// qubits to physical qubits").
Layout noise_adaptive_layout(int num_logical, const CouplingMap& coupling,
                             const noise::BackendProperties& props);

}  // namespace qufi::transpile
