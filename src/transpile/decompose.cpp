#include "transpile/decompose.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace qufi::transpile {

using circ::GateKind;
using circ::Instruction;
using circ::QuantumCircuit;
using util::Mat2;

namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTol = 1e-9;

/// Wraps an angle into (-pi, pi].
double wrap_angle(double a) {
  a = std::fmod(a, 2 * kPi);
  if (a > kPi) a -= 2 * kPi;
  if (a <= -kPi) a += 2 * kPi;
  return a;
}

bool angle_is_zero(double a) { return std::abs(wrap_angle(a)) < 1e-10; }

void emit_rz(QuantumCircuit& qc, double angle, int qubit) {
  angle = wrap_angle(angle);
  if (!angle_is_zero(angle)) qc.rz(angle, qubit);
}

}  // namespace

EulerAngles euler_angles(const Mat2& u) {
  require(u.is_unitary(1e-8), "euler_angles: matrix is not unitary");
  EulerAngles e;
  const double m00 = std::abs(u(0, 0));
  const double m10 = std::abs(u(1, 0));
  e.theta = 2.0 * std::atan2(m10, m00);
  if (m10 < kTol) {
    // Diagonal: theta ~ 0. Fold the whole relative phase into lambda.
    e.phase = std::arg(u(0, 0));
    e.phi = 0.0;
    e.lambda = wrap_angle(std::arg(u(1, 1)) - e.phase);
    e.theta = 0.0;
  } else if (m00 < kTol) {
    // Anti-diagonal: theta ~ pi; phase is absorbed into phi and lambda.
    e.phase = 0.0;
    e.theta = kPi;
    e.phi = std::arg(u(1, 0));
    e.lambda = std::arg(-u(0, 1));
  } else {
    e.phase = std::arg(u(0, 0));
    e.phi = wrap_angle(std::arg(u(1, 0)) - e.phase);
    e.lambda = wrap_angle(std::arg(-u(0, 1)) - e.phase);
  }
  return e;
}

void append_1q_basis(QuantumCircuit& circuit, const Mat2& u, int qubit) {
  const EulerAngles e = euler_angles(u);

  if (std::abs(e.theta) < kTol) {
    emit_rz(circuit, e.phi + e.lambda, qubit);
    return;
  }
  // Exact X: U(pi, 0, pi).
  if (std::abs(e.theta - kPi) < kTol && angle_is_zero(e.phi) &&
      angle_is_zero(e.lambda - kPi)) {
    circuit.x(qubit);
    return;
  }
  if (std::abs(e.theta - kPi / 2) < kTol) {
    // U(pi/2, phi, lambda) = e^{ig} RZ(phi+pi/2) SX RZ(lambda-pi/2).
    emit_rz(circuit, e.lambda - kPi / 2, qubit);
    circuit.sx(qubit);
    emit_rz(circuit, e.phi + kPi / 2, qubit);
    return;
  }
  // General ZSX: U(theta, phi, lambda)
  //   = e^{ig} RZ(phi+pi) SX RZ(theta+pi) SX RZ(lambda).
  emit_rz(circuit, e.lambda, qubit);
  circuit.sx(qubit);
  emit_rz(circuit, e.theta + kPi, qubit);
  circuit.sx(qubit);
  emit_rz(circuit, e.phi + kPi, qubit);
}

bool in_basis(GateKind kind) {
  switch (kind) {
    case GateKind::RZ:
    case GateKind::SX:
    case GateKind::X:
    case GateKind::CX:
    case GateKind::Barrier:
    case GateKind::Measure:
    case GateKind::Reset:
      return true;
    default:
      return false;
  }
}

namespace {

/// Appends Qiskit's exact controlled-U(theta, phi, lambda) network
/// (2 cx + 1q rotations) to `qc`.
void append_controlled_u(QuantumCircuit& qc, double theta, double phi,
                         double lambda, int control, int target) {
  qc.p((lambda + phi) / 2, control);
  qc.p((lambda - phi) / 2, target);
  qc.cx(control, target);
  qc.u(-theta / 2, 0.0, -(phi + lambda) / 2, target);
  qc.cx(control, target);
  qc.u(theta / 2, phi, 0.0, target);
}

/// One level of expansion of a non-basis instruction into simpler gates.
/// Returned gates may themselves need further lowering.
QuantumCircuit expand(const Instruction& instr, int num_qubits) {
  QuantumCircuit qc(num_qubits);
  const auto q = instr.qubits;
  switch (instr.kind) {
    case GateKind::SWAP:
      qc.cx(q[0], q[1]).cx(q[1], q[0]).cx(q[0], q[1]);
      return qc;
    case GateKind::CZ:
      qc.h(q[1]).cx(q[0], q[1]).h(q[1]);
      return qc;
    case GateKind::CY:
      qc.sdg(q[1]).cx(q[0], q[1]).s(q[1]);
      return qc;
    case GateKind::CH:
      // H = U(pi/2, 0, pi) exactly.
      append_controlled_u(qc, kPi / 2, 0.0, kPi, q[0], q[1]);
      return qc;
    case GateKind::CP: {
      const double lam = instr.params[0];
      qc.p(lam / 2, q[0]);
      qc.cx(q[0], q[1]);
      qc.p(-lam / 2, q[1]);
      qc.cx(q[0], q[1]);
      qc.p(lam / 2, q[1]);
      return qc;
    }
    case GateKind::CRZ: {
      const double lam = instr.params[0];
      qc.rz(lam / 2, q[1]);
      qc.cx(q[0], q[1]);
      qc.rz(-lam / 2, q[1]);
      qc.cx(q[0], q[1]);
      return qc;
    }
    case GateKind::CCX: {
      const int a = q[0], b = q[1], c = q[2];
      qc.h(c);
      qc.cx(b, c).tdg(c);
      qc.cx(a, c).t(c);
      qc.cx(b, c).tdg(c);
      qc.cx(a, c).t(b).t(c).h(c);
      qc.cx(a, b).t(a).tdg(b);
      qc.cx(a, b);
      return qc;
    }
    default:
      throw Error(std::string("expand: no decomposition for ") +
                  circ::gate_info(instr.kind).name);
  }
}

void lower_into(const Instruction& instr, QuantumCircuit& out) {
  if (in_basis(instr.kind)) {
    out.append(instr);
    return;
  }
  const auto& info = circ::gate_info(instr.kind);
  if (info.is_unitary && info.num_qubits == 1) {
    append_1q_basis(out, circ::gate_matrix1(instr.kind, instr.params),
                    instr.qubits[0]);
    return;
  }
  const QuantumCircuit expanded = expand(instr, out.num_qubits());
  for (const auto& sub : expanded.instructions()) lower_into(sub, out);
}

}  // namespace

QuantumCircuit decompose_to_basis(const QuantumCircuit& input) {
  QuantumCircuit out(input.num_qubits(), input.num_clbits());
  out.set_name(input.name());
  for (const auto& instr : input.instructions()) lower_into(instr, out);
  return out;
}

}  // namespace qufi::transpile
