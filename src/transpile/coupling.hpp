#pragma once

#include <span>
#include <utility>
#include <vector>

#include "noise/backend_props.hpp"

namespace qufi::transpile {

/// Qubit connectivity graph of a device, with precomputed all-pairs BFS
/// distances (devices here are <= a few dozen qubits).
class CouplingMap {
 public:
  /// Builds from undirected edges. Throws on out-of-range or self edges.
  CouplingMap(int num_qubits, std::span<const std::pair<int, int>> edges);

  static CouplingMap from_backend(const noise::BackendProperties& props);

  int num_qubits() const { return num_qubits_; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// True when a and b share an edge.
  bool connected(int a, int b) const;

  /// Sorted neighbor list of q.
  const std::vector<int>& neighbors(int q) const;

  /// Hop distance between a and b; -1 when unreachable.
  int distance(int a, int b) const;

  /// One shortest path from a to b, inclusive of both endpoints.
  /// Throws when unreachable.
  std::vector<int> shortest_path(int a, int b) const;

  /// True when the whole graph is one connected component.
  bool is_connected() const;

 private:
  int num_qubits_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<int>> dist_;  // -1 = unreachable
};

}  // namespace qufi::transpile
