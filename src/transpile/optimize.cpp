#include "transpile/optimize.hpp"

#include <optional>

#include "transpile/decompose.hpp"
#include "util/error.hpp"

namespace qufi::transpile {

using circ::GateKind;
using circ::Instruction;
using circ::QuantumCircuit;
using util::Mat2;

QuantumCircuit remove_trivial_gates(const QuantumCircuit& input) {
  QuantumCircuit out(input.num_qubits(), input.num_clbits());
  out.set_name(input.name());
  for (const auto& instr : input.instructions()) {
    const auto& info = circ::gate_info(instr.kind);
    if (info.is_unitary && info.num_qubits == 1) {
      const Mat2 m = circ::gate_matrix1(instr.kind, instr.params);
      if (m.equal_up_to_phase(Mat2::identity(), 1e-12)) continue;
    }
    out.append(instr);
  }
  return out;
}

namespace {

bool is_self_inverse_2q(GateKind kind) {
  return kind == GateKind::CX || kind == GateKind::CZ ||
         kind == GateKind::SWAP;
}

bool same_2q_gate(const Instruction& a, const Instruction& b) {
  if (a.kind != b.kind) return false;
  if (a.qubits == b.qubits) return true;
  // cz and swap are symmetric in their operands.
  if (a.kind == GateKind::CZ || a.kind == GateKind::SWAP) {
    return a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0];
  }
  return false;
}

bool cancel_pass(std::vector<Instruction>& instrs, int num_wires) {
  std::vector<std::optional<Instruction>> out;
  std::vector<long> last_touch(static_cast<std::size_t>(num_wires), -1);
  bool changed = false;

  const auto rescan_touch = [&](int wire) {
    last_touch[static_cast<std::size_t>(wire)] = -1;
    for (long j = static_cast<long>(out.size()) - 1; j >= 0; --j) {
      if (!out[static_cast<std::size_t>(j)]) continue;
      const auto& prev = *out[static_cast<std::size_t>(j)];
      for (int q : prev.qubits) {
        if (q == wire) {
          last_touch[static_cast<std::size_t>(wire)] = j;
          return;
        }
      }
    }
  };

  for (const auto& instr : instrs) {
    if (is_self_inverse_2q(instr.kind)) {
      const int a = instr.qubits[0];
      const int b = instr.qubits[1];
      const long ja = last_touch[static_cast<std::size_t>(a)];
      const long jb = last_touch[static_cast<std::size_t>(b)];
      if (ja >= 0 && ja == jb && out[static_cast<std::size_t>(ja)] &&
          same_2q_gate(*out[static_cast<std::size_t>(ja)], instr)) {
        out[static_cast<std::size_t>(ja)].reset();
        rescan_touch(a);
        rescan_touch(b);
        changed = true;
        continue;
      }
    }
    out.emplace_back(instr);
    const long idx = static_cast<long>(out.size()) - 1;
    for (int q : instr.qubits) last_touch[static_cast<std::size_t>(q)] = idx;
  }

  instrs.clear();
  for (auto& slot : out) {
    if (slot) instrs.push_back(std::move(*slot));
  }
  return changed;
}

}  // namespace

QuantumCircuit cancel_adjacent_pairs(const QuantumCircuit& input) {
  std::vector<Instruction> instrs = input.instructions();
  while (cancel_pass(instrs, input.num_qubits())) {
  }
  QuantumCircuit out(input.num_qubits(), input.num_clbits());
  out.set_name(input.name());
  for (auto& instr : instrs) out.append(std::move(instr));
  return out;
}

QuantumCircuit merge_1q_runs(const QuantumCircuit& input) {
  QuantumCircuit out(input.num_qubits(), input.num_clbits());
  out.set_name(input.name());

  std::vector<std::optional<Mat2>> pending(
      static_cast<std::size_t>(input.num_qubits()));

  const auto flush = [&](int q) {
    auto& slot = pending[static_cast<std::size_t>(q)];
    if (!slot) return;
    if (!slot->equal_up_to_phase(Mat2::identity(), 1e-12)) {
      append_1q_basis(out, *slot, q);
    }
    slot.reset();
  };

  for (const auto& instr : input.instructions()) {
    const auto& info = circ::gate_info(instr.kind);
    if (info.is_unitary && info.num_qubits == 1) {
      auto& slot = pending[static_cast<std::size_t>(instr.qubits[0])];
      const Mat2 g = circ::gate_matrix1(instr.kind, instr.params);
      slot = slot ? (g * *slot) : g;
      continue;
    }
    for (int q : instr.qubits) flush(q);
    out.append(instr);
  }
  for (int q = 0; q < input.num_qubits(); ++q) flush(q);
  return out;
}

QuantumCircuit optimize(const QuantumCircuit& input, int level) {
  require(level >= 0 && level <= 3, "optimize: level must be in [0, 3]");
  if (level == 0) return input;
  QuantumCircuit current = cancel_adjacent_pairs(remove_trivial_gates(input));
  if (level == 1) return current;
  // Level 2+: fuse 1q runs, then re-run cheap cleanups until stable.
  for (int iter = 0; iter < 4; ++iter) {
    QuantumCircuit next = cancel_adjacent_pairs(
        remove_trivial_gates(merge_1q_runs(current)));
    const bool stable = next.size() == current.size();
    current = std::move(next);
    if (stable) break;
  }
  return current;
}

}  // namespace qufi::transpile
