#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "noise/backend_props.hpp"
#include "transpile/coupling.hpp"
#include "transpile/layout.hpp"

namespace qufi::transpile {

/// Layout selection strategy.
enum class LayoutMethod {
  ByLevel,        ///< trivial for levels 0-1, dense for 2-3 (Qiskit-like)
  Trivial,
  Dense,
  NoiseAdaptive,  ///< requires BackendProperties
};

struct TranspileOptions {
  /// 0 = map only; 1 = + cheap cleanups; 2 = + 1q fusion;
  /// 3 = + post-routing cleanup (the paper uses optimization_level=3).
  int optimization_level = 3;
  LayoutMethod layout_method = LayoutMethod::ByLevel;
};

/// Everything QuFI needs from transpilation: the physical-basis circuit
/// plus the logical <-> physical tracking for fault attribution and
/// neighbor discovery.
struct TranspileResult {
  circ::QuantumCircuit circuit;  ///< physical qubits, {rz, sx, x, cx} basis
  Layout initial_layout;
  Layout final_layout;
  /// Physical -> logical map in effect at each instruction of `circuit`.
  std::vector<std::vector<int>> p2l_per_instruction;
  std::string backend_name;
  int optimization_level = 0;

  /// Logical qubit whose state is on physical qubit `physical` when
  /// instruction `instr_index` executes; -1 for ancillas.
  int logical_at(std::size_t instr_index, int physical) const;
};

/// Full pipeline: decompose -> optimize -> layout -> route -> lower SWAPs
/// -> (level 3) post-routing cleanup. Deterministic.
TranspileResult transpile(const circ::QuantumCircuit& circuit,
                          const noise::BackendProperties& backend,
                          const TranspileOptions& options = {});

/// Topology-only overload (no calibration data; NoiseAdaptive unavailable).
TranspileResult transpile(const circ::QuantumCircuit& circuit,
                          const CouplingMap& coupling,
                          const TranspileOptions& options = {});

}  // namespace qufi::transpile
