#include "sim/simulator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qufi::sim {

double expectation_z(const Statevector& sv, int qubit) {
  const double p1 = sv.probability_one(qubit);
  return 1.0 - 2.0 * p1;
}

std::vector<double> marginal_probabilities(std::span<const double> probs,
                                           std::span<const int> qubits,
                                           int num_qubits) {
  require(probs.size() == (std::size_t{1} << num_qubits),
          "marginal_probabilities: size mismatch");
  for (int q : qubits)
    require(q >= 0 && q < num_qubits,
            "marginal_probabilities: qubit out of range");
  std::vector<double> out(std::size_t{1} << qubits.size(), 0.0);
  for (std::uint64_t i = 0; i < probs.size(); ++i) {
    if (probs[i] == 0.0) continue;
    std::uint64_t j = 0;
    for (std::size_t k = 0; k < qubits.size(); ++k) {
      if ((i >> qubits[k]) & 1ULL) j |= 1ULL << k;
    }
    out[j] += probs[i];
  }
  return out;
}

double total_variation_distance(std::span<const double> p,
                                std::span<const double> q) {
  require(p.size() == q.size(), "total_variation_distance: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) sum += std::abs(p[i] - q[i]);
  return 0.5 * sum;
}

double hellinger_fidelity(std::span<const double> p,
                          std::span<const double> q) {
  require(p.size() == q.size(), "hellinger_fidelity: size mismatch");
  double bc = 0.0;  // Bhattacharyya coefficient
  for (std::size_t i = 0; i < p.size(); ++i)
    bc += std::sqrt(std::max(0.0, p[i]) * std::max(0.0, q[i]));
  return bc * bc;
}

}  // namespace qufi::sim
