#pragma once

// Runtime kernel dispatch: selects between the scalar reference kernels and
// the vectorized variants in kernels_simd.hpp, adds cache-tiled iteration,
// and (above a group-count threshold) splits one state across ThreadPool
// lanes. All variants are bit-identical by contract (see kernels_simd.hpp),
// so the selection is purely a performance knob: golden CSVs, shard merges,
// and snapshot replay do not depend on it.
//
// Selection order: the `QUFI_KERNELS` environment variable
// (`scalar|simd|avx2`) if set, else the best set the CPU supports (CPUID
// probe for AVX2, then the portable std::experimental::simd set, then
// scalar). Tests and benches can also switch programmatically via
// select_kernel_set().
//
// Tuning knobs (env, read once at first use):
//   QUFI_KERNEL_BLOCK    — groups per cache tile (default 16384)
//   QUFI_KERNEL_PAR_MIN  — min groups before ThreadPool splitting engages
//                          (default 1<<19; campaign-sized states never hit it)
//   QUFI_KERNEL_THREADS  — kernel pool size (default 0 = hardware)

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/matrix.hpp"

namespace qufi::sim {

/// One complete kernel implementation: part-range entry points for the four
/// simulator kernels. `*_part` functions process the half-open group range
/// [g_begin, g_end) — see kernels_simd.hpp for the group-index convention.
struct KernelSet {
  const char* name;
  void (*m1_part)(std::span<util::cplx>, const util::Mat2&, int,
                  std::uint64_t, std::uint64_t);
  void (*m2_part)(std::span<util::cplx>, const util::Mat4&, int, int,
                  std::uint64_t, std::uint64_t);
  void (*ccx_part)(std::span<util::cplx>, int, int, int, std::uint64_t,
                   std::uint64_t);
  void (*mk_part)(std::span<util::cplx>, std::span<const util::cplx>,
                  std::span<const int>, std::uint64_t, std::uint64_t);
};

/// Kernel sets usable on this host (compiled in and CPU-supported), best
/// first. "scalar" is always present.
const std::vector<const KernelSet*>& available_kernel_sets();

/// Looks up a set by name among the available ones; nullptr if absent.
const KernelSet* find_kernel_set(std::string_view name);

/// The set dispatch currently routes to.
const KernelSet& active_kernel_set();

/// Makes `name` the active set. Throws qufi::Error if the set is unknown or
/// unavailable on this host. Returns the newly active set.
const KernelSet& select_kernel_set(std::string_view name);

/// Iteration/parallelism knobs. Mutating tuning while kernels run on other
/// threads is not supported; set it up front (tests, benches).
struct KernelTuning {
  std::uint64_t block_groups = 1 << 14;        ///< groups per cache tile
  std::uint64_t parallel_min_groups = 1 << 19; ///< pool engages at/above this
  int threads = 0;                             ///< kernel pool size, 0 = hw
  bool parallel_enabled = true;
};

KernelTuning kernel_tuning();
void set_kernel_tuning(const KernelTuning& t);

namespace dispatch {

/// Drop-in replacements for the detail:: kernels; same semantics, routed
/// through the active KernelSet with tiling/parallel partitioning.
void apply_matrix1(std::span<util::cplx> amps, const util::Mat2& m, int q);
void apply_matrix2(std::span<util::cplx> amps, const util::Mat4& m, int q_low,
                   int q_high);
void apply_ccx(std::span<util::cplx> amps, int c0, int c1, int t);
void apply_matrix_k(std::span<util::cplx> amps, std::span<const util::cplx> m,
                    std::span<const int> bits);

}  // namespace dispatch

}  // namespace qufi::sim
