#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"
#include "util/matrix.hpp"

namespace qufi::sim {

/// Mixed-state simulator: the full 2^n x 2^n density matrix, row-major.
///
/// This is the exact noisy-execution engine: unitaries evolve the state as
/// rho -> U rho U†, noise is applied through Kraus channels, and the final
/// diagonal gives exact outcome probabilities (no sampling noise) — the
/// equivalent of Qiskit Aer's density_matrix method used by the paper's
/// noise-model scenario.
///
/// Implementation note: rho is stored flat with index (row << n) | col, so
/// a unitary on qubit q is one statevector-style kernel pass over the row
/// bit (q + n) followed by the elementwise-conjugate matrix over the column
/// bit q.
class DensityMatrix {
 public:
  /// Initializes |0...0><0...0|.
  explicit DensityMatrix(int num_qubits);

  /// rho = |psi><psi|.
  static DensityMatrix from_statevector(const Statevector& sv);

  /// Takes ownership of explicit flat row-major storage (size must be
  /// 4^num_qubits). Not validated for positivity/trace; intended for
  /// deserializing snapshots written from a valid state.
  static DensityMatrix from_raw(int num_qubits, std::vector<cplx> rho);

  /// Explicit deep copy — checkpointed execution resumes campaigns from a
  /// shared prefix snapshot, so the copy intent is spelled out at call
  /// sites instead of relying on implicit copies.
  DensityMatrix clone() const { return *this; }

  /// Read-only view of the flat row-major storage (index (row << n) | col).
  std::span<const cplx> raw() const { return rho_; }

  /// Mutable view of the flat storage, for callers that refill a scratch
  /// DensityMatrix in place (response-basis construction) instead of
  /// churning a fresh allocation per element. The caller owns keeping the
  /// contents a valid state before the next evolution call.
  std::span<cplx> mutable_raw() { return rho_; }

  int num_qubits() const { return num_qubits_; }
  std::uint64_t dim() const { return std::uint64_t{1} << num_qubits_; }

  /// Element rho[r, c].
  cplx at(std::uint64_t r, std::uint64_t c) const;

  /// Applies a single-qubit unitary on qubit q.
  void apply_unitary1(const util::Mat2& u, int q);
  /// Applies a two-qubit unitary; operand 0 is the low local bit.
  void apply_unitary2(const util::Mat4& u, int q0, int q1);

  /// Applies one unitary circuit instruction.
  void apply_instruction(const circ::Instruction& instr);

  /// Applies a single-qubit Kraus channel {K_i}: rho -> sum K rho K†.
  void apply_kraus1(std::span<const util::Mat2> kraus, int q);
  /// Applies a two-qubit Kraus channel.
  void apply_kraus2(std::span<const util::Mat4> kraus, int q0, int q1);

  /// Fast path: applies a precomputed 1q channel superoperator (4x4 over
  /// (column bit, row bit), as built by noise::channel_superop).
  void apply_superop1(const util::Mat4& superop, int q);
  /// Fast path: applies a precomputed 2q channel superoperator (16x16,
  /// local index (rowpart << 2) | colpart, operand 0 = low bit).
  void apply_superop2(std::span<const util::cplx> superop, int q0, int q1);

  /// Diagonal of rho: probability of each basis state.
  std::vector<double> probabilities() const;

  /// probabilities() into caller-provided storage (size must be dim());
  /// allocation-free for arena-backed batch loops.
  void probabilities_into(std::span<double> out) const;

  /// tr(rho); should stay ~1 under CPTP evolution.
  double trace() const;

  /// tr(rho^2); 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;

 private:
  int num_qubits_;
  std::uint64_t dim_;
  std::vector<cplx> rho_;
};

}  // namespace qufi::sim
