#include "sim/unitary.hpp"

#include <cmath>

#include "sim/kernels.hpp"
#include "sim/statevector.hpp"
#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi::sim {

DenseUnitary::DenseUnitary(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1 && num_qubits <= 10,
          "DenseUnitary: qubit count out of supported range [1, 10]");
  const std::uint64_t d = dim();
  m_.assign(d * d, util::cplx{});
  for (std::uint64_t i = 0; i < d; ++i) at(i, i) = util::cplx{1, 0};
}

util::cplx& DenseUnitary::at(std::uint64_t r, std::uint64_t c) {
  return m_[r * dim() + c];
}

const util::cplx& DenseUnitary::at(std::uint64_t r, std::uint64_t c) const {
  return m_[r * dim() + c];
}

double DenseUnitary::distance(const DenseUnitary& other) const {
  require(num_qubits_ == other.num_qubits_, "distance: dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < m_.size(); ++i)
    sum += std::norm(m_[i] - other.m_[i]);
  return std::sqrt(sum);
}

bool DenseUnitary::equal_up_to_phase(const DenseUnitary& other,
                                     double tol) const {
  require(num_qubits_ == other.num_qubits_,
          "equal_up_to_phase: dimension mismatch");
  // Find the largest entry of `other` and compute the relative phase there.
  std::size_t best = 0;
  double best_mag = 0.0;
  for (std::size_t i = 0; i < m_.size(); ++i) {
    const double mag = std::abs(other.m_[i]);
    if (mag > best_mag) {
      best_mag = mag;
      best = i;
    }
  }
  if (best_mag < 1e-12) return distance(other) <= tol;
  util::cplx phase = m_[best] / other.m_[best];
  const double pm = std::abs(phase);
  if (pm < 1e-12) return false;
  phase /= pm;
  double sum = 0.0;
  for (std::size_t i = 0; i < m_.size(); ++i)
    sum += std::norm(m_[i] - phase * other.m_[i]);
  return std::sqrt(sum) <= tol;
}

DenseUnitary DenseUnitary::permute_qubits(const std::vector<int>& perm) const {
  require(static_cast<int>(perm.size()) == num_qubits_,
          "permute_qubits: permutation size mismatch");
  const auto map_index = [&](std::uint64_t i) {
    std::uint64_t out = 0;
    for (int q = 0; q < num_qubits_; ++q) {
      if ((i >> q) & 1ULL)
        out |= 1ULL << perm[static_cast<std::size_t>(q)];
    }
    return out;
  };
  DenseUnitary out(num_qubits_);
  const std::uint64_t d = dim();
  for (std::uint64_t r = 0; r < d; ++r)
    for (std::uint64_t c = 0; c < d; ++c)
      out.at(map_index(r), map_index(c)) = at(r, c);
  return out;
}

DenseUnitary unitary_of(const circ::QuantumCircuit& circuit) {
  DenseUnitary u(circuit.num_qubits());
  const std::uint64_t d = u.dim();
  // Apply the circuit to each basis column via the statevector kernels.
  for (std::uint64_t col = 0; col < d; ++col) {
    std::vector<util::cplx> amps(d, util::cplx{});
    amps[col] = util::cplx{1, 0};
    Statevector sv = Statevector::from_amplitudes(std::move(amps));
    for (const auto& instr : circuit.instructions()) {
      if (instr.kind == circ::GateKind::Barrier ||
          instr.kind == circ::GateKind::Measure) {
        continue;
      }
      require(instr.kind != circ::GateKind::Reset,
              "unitary_of: circuit contains Reset");
      sv.apply_instruction(instr);
    }
    const auto out = sv.amplitudes();
    for (std::uint64_t r = 0; r < d; ++r) u.at(r, col) = out[r];
  }
  return u;
}

}  // namespace qufi::sim
