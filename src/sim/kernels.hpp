#pragma once

#include <cstdint>
#include <span>

#include "util/error.hpp"
#include "util/matrix.hpp"

namespace qufi::sim::detail {

using util::cplx;
using util::Mat2;
using util::Mat4;

/// Applies a 2x2 matrix to bit position `q` of a 2^k amplitude array.
/// Shared by the statevector simulator and (via the row/column-bit trick)
/// the density-matrix simulator.
inline void apply_matrix1(std::span<cplx> amps, const Mat2& m, int q) {
  const std::uint64_t stride = 1ULL << q;
  const std::uint64_t size = amps.size();
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    for (std::uint64_t offset = 0; offset < stride; ++offset) {
      const std::uint64_t i0 = base + offset;
      const std::uint64_t i1 = i0 + stride;
      const cplx a0 = amps[i0];
      const cplx a1 = amps[i1];
      amps[i0] = m.a[0] * a0 + m.a[1] * a1;
      amps[i1] = m.a[2] * a0 + m.a[3] * a1;
    }
  }
}

/// Applies a 4x4 matrix to bit positions (`q_low`, `q_high`) of a 2^k
/// amplitude array, where `q_low` is the low bit of the 2-bit local index
/// (gate operand 0) and `q_high` the high bit (operand 1).
inline void apply_matrix2(std::span<cplx> amps, const Mat4& m, int q_low,
                          int q_high) {
  const std::uint64_t bl = 1ULL << q_low;
  const std::uint64_t bh = 1ULL << q_high;
  const std::uint64_t size = amps.size();
  for (std::uint64_t i = 0; i < size; ++i) {
    if ((i & bl) || (i & bh)) continue;  // visit each 4-tuple once
    const std::uint64_t i00 = i;
    const std::uint64_t i01 = i | bl;
    const std::uint64_t i10 = i | bh;
    const std::uint64_t i11 = i | bl | bh;
    const cplx a0 = amps[i00];
    const cplx a1 = amps[i01];
    const cplx a2 = amps[i10];
    const cplx a3 = amps[i11];
    amps[i00] = m.a[0] * a0 + m.a[1] * a1 + m.a[2] * a2 + m.a[3] * a3;
    amps[i01] = m.a[4] * a0 + m.a[5] * a1 + m.a[6] * a2 + m.a[7] * a3;
    amps[i10] = m.a[8] * a0 + m.a[9] * a1 + m.a[10] * a2 + m.a[11] * a3;
    amps[i11] = m.a[12] * a0 + m.a[13] * a1 + m.a[14] * a2 + m.a[15] * a3;
  }
}

/// Toffoli as an amplitude permutation: swaps the amplitudes of states that
/// differ at bit `t` and have both control bits set.
inline void apply_ccx(std::span<cplx> amps, int c0, int c1, int t) {
  const std::uint64_t bc0 = 1ULL << c0;
  const std::uint64_t bc1 = 1ULL << c1;
  const std::uint64_t bt = 1ULL << t;
  const std::uint64_t size = amps.size();
  for (std::uint64_t i = 0; i < size; ++i) {
    if ((i & bc0) && (i & bc1) && !(i & bt)) {
      std::swap(amps[i], amps[i | bt]);
    }
  }
}

/// Applies a dense 2^k x 2^k matrix (row-major) to the k bit positions
/// listed in `bits` (bits[0] = low local bit). Generic kernel behind the
/// density-matrix superoperator fast path (k up to 4).
///
/// Channel superoperators are structurally sparse (Pauli mixtures compose
/// to ~20-30% nonzeros), so the matrix is converted to sparse rows once per
/// call; entries below 1e-12 in magnitude are dropped (far under any
/// physical tolerance used here).
/// Hard capacity of the apply_matrix_k scratch tables: `offset`/`v` hold
/// 2^k entries and the sparse-row store dim^2 entries, both sized for k = 4
/// (the 16x16 two-qubit superoperator). A caller growing past that must
/// widen the tables; until then, reject instead of silently indexing out of
/// bounds.
inline constexpr std::size_t kApplyMatrixKMaxBits = 4;

inline void apply_matrix_k(std::span<cplx> amps, std::span<const cplx> m,
                           std::span<const int> bits) {
  const std::size_t k = bits.size();
  require(k <= kApplyMatrixKMaxBits,
          "apply_matrix_k: at most 4 bit positions supported (16x16 matrix); "
          "widen the kernel scratch tables before growing k");
  const std::size_t dim = std::size_t{1} << k;

  std::uint64_t mask = 0;
  std::array<std::uint64_t, 16> offset{};
  for (std::size_t j = 0; j < dim; ++j) {
    std::uint64_t off = 0;
    for (std::size_t b = 0; b < k; ++b) {
      if ((j >> b) & 1) off |= 1ULL << bits[b];
    }
    offset[j] = off;
  }
  for (std::size_t b = 0; b < k; ++b) mask |= 1ULL << bits[b];

  // Sparse rows of m.
  struct Entry {
    std::uint16_t col;
    cplx value;
  };
  std::array<Entry, 256> entries;
  std::array<std::uint16_t, 17> row_start{};
  std::uint16_t nnz = 0;
  for (std::size_t r = 0; r < dim; ++r) {
    row_start[r] = nnz;
    const cplx* row = m.data() + r * dim;
    for (std::size_t c = 0; c < dim; ++c) {
      if (std::norm(row[c]) > 1e-24) {
        entries[nnz++] = Entry{static_cast<std::uint16_t>(c), row[c]};
      }
    }
  }
  row_start[dim] = nnz;

  std::array<cplx, 16> v{};
  const std::uint64_t size = amps.size();
  for (std::uint64_t base = 0; base < size; ++base) {
    if (base & mask) continue;
    for (std::size_t j = 0; j < dim; ++j) v[j] = amps[base | offset[j]];
    for (std::size_t r = 0; r < dim; ++r) {
      cplx sum{};
      for (std::uint16_t e = row_start[r]; e < row_start[r + 1]; ++e) {
        sum += entries[e].value * v[entries[e].col];
      }
      amps[base | offset[r]] = sum;
    }
  }
}

/// Naive dense reference for apply_matrix_k: no sparsification and no
/// drop threshold — every entry of `m` participates in every row sum. This
/// is the oracle the kernel-conformance/fuzz suite checks the sparse
/// production path against (the sparse path may drop entries with
/// |x| <= 1e-12, so agreement is within that documented tolerance, not
/// bit-level).
inline void apply_matrix_k_dense(std::span<cplx> amps, std::span<const cplx> m,
                                 std::span<const int> bits) {
  const std::size_t k = bits.size();
  require(k <= kApplyMatrixKMaxBits,
          "apply_matrix_k_dense: at most 4 bit positions supported");
  const std::size_t dim = std::size_t{1} << k;

  std::uint64_t mask = 0;
  std::array<std::uint64_t, 16> offset{};
  for (std::size_t j = 0; j < dim; ++j) {
    std::uint64_t off = 0;
    for (std::size_t b = 0; b < k; ++b) {
      if ((j >> b) & 1) off |= 1ULL << bits[b];
    }
    offset[j] = off;
  }
  for (std::size_t b = 0; b < k; ++b) mask |= 1ULL << bits[b];

  std::array<cplx, 16> v{};
  const std::uint64_t size = amps.size();
  for (std::uint64_t base = 0; base < size; ++base) {
    if (base & mask) continue;
    for (std::size_t j = 0; j < dim; ++j) v[j] = amps[base | offset[j]];
    for (std::size_t r = 0; r < dim; ++r) {
      cplx sum{};
      const cplx* row = m.data() + r * dim;
      for (std::size_t c = 0; c < dim; ++c) sum += row[c] * v[c];
      amps[base | offset[r]] = sum;
    }
  }
}

/// Elementwise conjugate of a 2x2 matrix (NOT the adjoint).
inline Mat2 conj_elementwise(const Mat2& m) {
  Mat2 out;
  for (std::size_t i = 0; i < 4; ++i) out.a[i] = std::conj(m.a[i]);
  return out;
}

/// Elementwise conjugate of a 4x4 matrix (NOT the adjoint).
inline Mat4 conj_elementwise(const Mat4& m) {
  Mat4 out;
  for (std::size_t i = 0; i < 16; ++i) out.a[i] = std::conj(m.a[i]);
  return out;
}

}  // namespace qufi::sim::detail
