#include "sim/density_matrix.hpp"

#include "sim/kernel_dispatch.hpp"
#include "sim/kernels.hpp"
#include "util/error.hpp"

namespace qufi::sim {

DensityMatrix::DensityMatrix(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1 && num_qubits <= 12,
          "DensityMatrix: qubit count out of supported range [1, 12]");
  dim_ = std::uint64_t{1} << num_qubits;
  rho_.assign(dim_ * dim_, cplx{});
  rho_[0] = cplx{1, 0};
}

DensityMatrix DensityMatrix::from_statevector(const Statevector& sv) {
  DensityMatrix dm(sv.num_qubits());
  const auto amps = sv.amplitudes();
  for (std::uint64_t r = 0; r < dm.dim_; ++r)
    for (std::uint64_t c = 0; c < dm.dim_; ++c)
      dm.rho_[(r << dm.num_qubits_) | c] = amps[r] * std::conj(amps[c]);
  return dm;
}

DensityMatrix DensityMatrix::from_raw(int num_qubits, std::vector<cplx> rho) {
  DensityMatrix dm(num_qubits);
  require(rho.size() == dm.dim_ * dm.dim_,
          "DensityMatrix::from_raw: storage size mismatch");
  dm.rho_ = std::move(rho);
  return dm;
}

cplx DensityMatrix::at(std::uint64_t r, std::uint64_t c) const {
  require(r < dim_ && c < dim_, "DensityMatrix::at: index out of range");
  return rho_[(r << num_qubits_) | c];
}

void DensityMatrix::apply_unitary1(const util::Mat2& u, int q) {
  require(q >= 0 && q < num_qubits_, "apply_unitary1: qubit out of range");
  dispatch::apply_matrix1(rho_, u, q + num_qubits_);          // rows: U rho
  dispatch::apply_matrix1(rho_, detail::conj_elementwise(u), q);  // cols: rho U†
}

void DensityMatrix::apply_unitary2(const util::Mat4& u, int q0, int q1) {
  require(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 && q1 < num_qubits_ &&
              q0 != q1,
          "apply_unitary2: bad qubit operands");
  dispatch::apply_matrix2(rho_, u, q0 + num_qubits_, q1 + num_qubits_);
  dispatch::apply_matrix2(rho_, detail::conj_elementwise(u), q0, q1);
}

void DensityMatrix::apply_instruction(const circ::Instruction& instr) {
  require(instr.is_unitary(),
          std::string("DensityMatrix: cannot apply non-unitary op ") +
              instr.name());
  const auto& info = circ::gate_info(instr.kind);
  switch (info.num_qubits) {
    case 1:
      apply_unitary1(circ::gate_matrix1(instr.kind, instr.params),
                     instr.qubits[0]);
      return;
    case 2:
      apply_unitary2(circ::gate_matrix2(instr.kind, instr.params),
                     instr.qubits[0], instr.qubits[1]);
      return;
    case 3: {
      require(instr.kind == circ::GateKind::CCX,
              "DensityMatrix: unsupported 3-qubit gate");
      dispatch::apply_ccx(rho_, instr.qubits[0] + num_qubits_,
                        instr.qubits[1] + num_qubits_,
                        instr.qubits[2] + num_qubits_);
      dispatch::apply_ccx(rho_, instr.qubits[0], instr.qubits[1],
                        instr.qubits[2]);
      return;
    }
    default:
      throw Error("DensityMatrix: unsupported operand count");
  }
}

void DensityMatrix::apply_kraus1(std::span<const util::Mat2> kraus, int q) {
  require(q >= 0 && q < num_qubits_, "apply_kraus1: qubit out of range");
  require(!kraus.empty(), "apply_kraus1: empty Kraus set");
  if (kraus.size() == 1) {
    // Single operator: same machinery as a (possibly non-unitary) gate.
    dispatch::apply_matrix1(rho_, kraus[0], q + num_qubits_);
    dispatch::apply_matrix1(rho_, detail::conj_elementwise(kraus[0]), q);
    return;
  }
  // Superoperator fast path: vec_rm(K B K†) = (K (x) conj(K)) vec_rm(B), so
  // the whole channel is one 4x4 matrix over (column bit q, row bit q+n).
  util::Mat4 superop = util::Mat4::zero();
  for (const auto& k : kraus) {
    superop = superop + util::kron(k, detail::conj_elementwise(k));
  }
  dispatch::apply_matrix2(rho_, superop, q, q + num_qubits_);
}

void DensityMatrix::apply_kraus2(std::span<const util::Mat4> kraus, int q0,
                                 int q1) {
  require(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 && q1 < num_qubits_ &&
              q0 != q1,
          "apply_kraus2: bad qubit operands");
  require(!kraus.empty(), "apply_kraus2: empty Kraus set");
  // 16x16 superoperator over local bits [col q0, col q1, row q0, row q1]:
  // entry M[(r<<2)|c', ...] = K[row part] * conj(K)[col part].
  std::array<cplx, 256> superop{};
  for (const auto& k : kraus) {
    const util::Mat4 kc = detail::conj_elementwise(k);
    for (int rr = 0; rr < 4; ++rr) {
      for (int rc = 0; rc < 4; ++rc) {
        for (int cr = 0; cr < 4; ++cr) {
          for (int cc = 0; cc < 4; ++cc) {
            superop[static_cast<std::size_t>(((rr << 2) | rc) * 16 +
                                             ((cr << 2) | cc))] +=
                k(rr, cr) * kc(rc, cc);
          }
        }
      }
    }
  }
  const int bits[] = {q0, q1, q0 + num_qubits_, q1 + num_qubits_};
  dispatch::apply_matrix_k(rho_, superop, bits);
}

void DensityMatrix::apply_superop1(const util::Mat4& superop, int q) {
  require(q >= 0 && q < num_qubits_, "apply_superop1: qubit out of range");
  dispatch::apply_matrix2(rho_, superop, q, q + num_qubits_);
}

void DensityMatrix::apply_superop2(std::span<const util::cplx> superop,
                                   int q0, int q1) {
  require(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 && q1 < num_qubits_ &&
              q0 != q1,
          "apply_superop2: bad qubit operands");
  require(superop.size() == 256, "apply_superop2: need a 16x16 matrix");
  const int bits[] = {q0, q1, q0 + num_qubits_, q1 + num_qubits_};
  dispatch::apply_matrix_k(rho_, superop, bits);
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> probs(dim_);
  probabilities_into(probs);
  return probs;
}

void DensityMatrix::probabilities_into(std::span<double> out) const {
  require(out.size() == dim_,
          "probabilities_into: output span must have dim() entries");
  for (std::uint64_t i = 0; i < dim_; ++i)
    out[i] = rho_[(i << num_qubits_) | i].real();
}

double DensityMatrix::trace() const {
  double t = 0.0;
  for (std::uint64_t i = 0; i < dim_; ++i)
    t += rho_[(i << num_qubits_) | i].real();
  return t;
}

double DensityMatrix::purity() const {
  // tr(rho^2) = sum_{r,c} rho[r,c] * rho[c,r] = sum |rho[r,c]|^2 (Hermitian).
  double sum = 0.0;
  for (const auto& v : rho_) sum += std::norm(v);
  return sum;
}

}  // namespace qufi::sim
