#include "sim/statevector.hpp"

#include <bit>
#include <cmath>

#include "sim/kernel_dispatch.hpp"
#include "sim/kernels.hpp"
#include "util/error.hpp"

namespace qufi::sim {

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits >= 1 && num_qubits <= 24,
          "Statevector: qubit count out of supported range [1, 24]");
  amps_.assign(std::size_t{1} << num_qubits, cplx{});
  amps_[0] = cplx{1, 0};
}

Statevector Statevector::from_amplitudes(std::vector<cplx> amps) {
  require(!amps.empty() && std::has_single_bit(amps.size()),
          "Statevector: amplitude count must be a power of two");
  const int n = std::max(1, static_cast<int>(std::bit_width(amps.size())) - 1);
  Statevector sv(n);
  sv.amps_ = std::move(amps);
  return sv;
}

void Statevector::apply_matrix1(const util::Mat2& m, int q) {
  require(q >= 0 && q < num_qubits_, "apply_matrix1: qubit out of range");
  dispatch::apply_matrix1(amps_, m, q);
}

void Statevector::apply_matrix2(const util::Mat4& m, int q0, int q1) {
  require(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 && q1 < num_qubits_ &&
              q0 != q1,
          "apply_matrix2: bad qubit operands");
  dispatch::apply_matrix2(amps_, m, q0, q1);
}

void Statevector::apply_instruction(const circ::Instruction& instr) {
  require(instr.is_unitary(),
          std::string("Statevector: cannot apply non-unitary op ") +
              instr.name());
  const auto& info = circ::gate_info(instr.kind);
  switch (info.num_qubits) {
    case 1:
      apply_matrix1(circ::gate_matrix1(instr.kind, instr.params),
                    instr.qubits[0]);
      return;
    case 2:
      apply_matrix2(circ::gate_matrix2(instr.kind, instr.params),
                    instr.qubits[0], instr.qubits[1]);
      return;
    case 3:
      require(instr.kind == circ::GateKind::CCX,
              "Statevector: unsupported 3-qubit gate");
      dispatch::apply_ccx(amps_, instr.qubits[0], instr.qubits[1],
                        instr.qubits[2]);
      return;
    default:
      throw Error("Statevector: unsupported operand count");
  }
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> probs(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) probs[i] = std::norm(amps_[i]);
  return probs;
}

double Statevector::probability_one(int q) const {
  require(q >= 0 && q < num_qubits_, "probability_one: qubit out of range");
  const std::uint64_t bit = 1ULL << q;
  double p = 0.0;
  for (std::uint64_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) p += std::norm(amps_[i]);
  }
  return p;
}

int Statevector::measure_qubit(int q, util::Xoshiro256pp& rng) {
  const double p1 = probability_one(q);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const std::uint64_t bit = 1ULL << q;
  const double keep_prob = outcome ? p1 : 1.0 - p1;
  const double scale = keep_prob > 0 ? 1.0 / std::sqrt(keep_prob) : 0.0;
  for (std::uint64_t i = 0; i < amps_.size(); ++i) {
    const bool is_one = (i & bit) != 0;
    if (is_one == (outcome == 1)) {
      amps_[i] *= scale;
    } else {
      amps_[i] = cplx{};
    }
  }
  return outcome;
}

void Statevector::reset_qubit(int q, util::Xoshiro256pp& rng) {
  if (measure_qubit(q, rng) == 1) {
    apply_matrix1(circ::gate_matrix1(circ::GateKind::X, {}), q);
  }
}

double Statevector::fidelity(const Statevector& other) const {
  require(num_qubits_ == other.num_qubits_, "fidelity: dimension mismatch");
  cplx inner{};
  for (std::size_t i = 0; i < amps_.size(); ++i)
    inner += std::conj(amps_[i]) * other.amps_[i];
  return std::norm(inner);
}

double Statevector::norm() const {
  double sum = 0.0;
  for (const auto& a : amps_) sum += std::norm(a);
  return std::sqrt(sum);
}

void Statevector::normalize() {
  const double n = norm();
  require(n > 0, "normalize: zero state");
  for (auto& a : amps_) a /= n;
}

Statevector run_statevector(const circ::QuantumCircuit& circuit) {
  Statevector sv(circuit.num_qubits());
  for (const auto& instr : circuit.instructions()) {
    if (instr.kind == circ::GateKind::Barrier ||
        instr.kind == circ::GateKind::Measure) {
      continue;  // Measure handled downstream; golden path is pre-measure.
    }
    require(instr.kind != circ::GateKind::Reset,
            "run_statevector: Reset requires a trajectory backend");
    sv.apply_instruction(instr);
  }
  return sv;
}

std::vector<double> map_to_clbit_probs(std::span<const double> qubit_probs,
                                       const circ::QuantumCircuit& circuit) {
  require(circuit.num_clbits() > 0, "map_to_clbit_probs: circuit has no clbits");
  // Last measure into a clbit wins.
  std::vector<int> clbit_source(static_cast<std::size_t>(circuit.num_clbits()),
                                -1);
  bool any = false;
  for (const auto& instr : circuit.instructions()) {
    if (instr.kind == circ::GateKind::Measure) {
      clbit_source[static_cast<std::size_t>(instr.clbits[0])] =
          instr.qubits[0];
      any = true;
    }
  }
  require(any, "map_to_clbit_probs: circuit has no measurements");

  std::vector<double> out(std::size_t{1} << circuit.num_clbits(), 0.0);
  for (std::uint64_t i = 0; i < qubit_probs.size(); ++i) {
    if (qubit_probs[i] == 0.0) continue;
    std::uint64_t j = 0;
    for (int c = 0; c < circuit.num_clbits(); ++c) {
      const int q = clbit_source[static_cast<std::size_t>(c)];
      if (q >= 0 && ((i >> q) & 1ULL)) j |= 1ULL << c;
    }
    out[j] += qubit_probs[i];
  }
  return out;
}

std::vector<double> ideal_clbit_probabilities(
    const circ::QuantumCircuit& circuit) {
  const Statevector sv = run_statevector(circuit);
  const auto probs = sv.probabilities();
  return map_to_clbit_probs(probs, circuit);
}

}  // namespace qufi::sim
