#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "util/matrix.hpp"

namespace qufi::sim {

/// Dense 2^n x 2^n unitary, row-major. Testing oracle: lets property tests
/// assert full semantic equivalence of circuits (e.g. original vs
/// transpiled) instead of spot-checking a few inputs.
class DenseUnitary {
 public:
  explicit DenseUnitary(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::uint64_t dim() const { return std::uint64_t{1} << num_qubits_; }

  util::cplx& at(std::uint64_t r, std::uint64_t c);
  const util::cplx& at(std::uint64_t r, std::uint64_t c) const;

  /// ||this - other||_F.
  double distance(const DenseUnitary& other) const;

  /// True when this == e^{i phase} * other within tol.
  bool equal_up_to_phase(const DenseUnitary& other, double tol = 1e-9) const;

  /// Returns the unitary conjugated by a qubit relabeling: qubit q of this
  /// becomes qubit perm[q] of the result. Used to compare a transpiled
  /// (physically laid-out) circuit against the original logical circuit.
  DenseUnitary permute_qubits(const std::vector<int>& perm) const;

 private:
  int num_qubits_;
  std::vector<util::cplx> m_;
};

/// Builds the full unitary of a circuit (unitary instructions only; Barrier
/// skipped, Measure/Reset throw). Intended for n <= 10.
DenseUnitary unitary_of(const circ::QuantumCircuit& circuit);

}  // namespace qufi::sim
