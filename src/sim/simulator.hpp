#pragma once

#include <span>
#include <vector>

#include "sim/statevector.hpp"

namespace qufi::sim {

/// <Z> on `qubit` for a pure state: P(0) - P(1).
double expectation_z(const Statevector& sv, int qubit);

/// Marginal distribution of `probs` (over 2^n states) restricted to the
/// given qubits; result is indexed with qubits[0] as the low bit.
std::vector<double> marginal_probabilities(std::span<const double> probs,
                                           std::span<const int> qubits,
                                           int num_qubits);

/// Total variation distance: 0.5 * sum |p_i - q_i| in [0, 1].
double total_variation_distance(std::span<const double> p,
                                std::span<const double> q);

/// Hellinger fidelity (sum sqrt(p_i q_i))^2 in [0, 1]; 1 for identical
/// distributions. Used to compare backend outputs in tests and ablations.
double hellinger_fidelity(std::span<const double> p, std::span<const double> q);

}  // namespace qufi::sim
