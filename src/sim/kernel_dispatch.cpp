#include "sim/kernel_dispatch.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "sim/kernels_simd.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace qufi::sim {

namespace {

using u64 = std::uint64_t;

const KernelSet kScalarSet{
    "scalar",
    &kern::scalar_m1_part,
    &kern::scalar_m2_part,
    &kern::scalar_ccx_part,
    &kern::scalar_mk_part,
};

#if QUFI_KERNELS_HAVE_STD_SIMD
// Portable set: vector m1/m2; ccx is a pure swap permutation (nothing to
// vectorize profitably in ISA-portable code) and mk's gather pattern stays
// scalar here — the AVX2 set covers it with intrinsics.
const KernelSet kSimdSet{
    "simd",
    &kern::portable_m1_part,
    &kern::portable_m2_part,
    &kern::scalar_ccx_part,
    &kern::scalar_mk_part,
};
#endif

#if QUFI_KERNELS_HAVE_AVX2
const KernelSet kAvx2Set{
    "avx2",
    &kern::avx2_m1_part,
    &kern::avx2_m2_part,
    &kern::scalar_ccx_part,
    &kern::avx2_mk_part,
};
#endif

u64 env_u64(const char* name, u64 fallback, u64 min_value) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  require(end != nullptr && *end == '\0',
          std::string(name) + ": expected an unsigned integer, got '" + s +
              "'");
  return std::max<u64>(v, min_value);
}

struct DispatchState {
  std::vector<const KernelSet*> available;  // best first
  std::atomic<const KernelSet*> active{nullptr};
  KernelTuning tuning;

  DispatchState() {
#if QUFI_KERNELS_HAVE_AVX2
    if (__builtin_cpu_supports("avx2")) available.push_back(&kAvx2Set);
#endif
#if QUFI_KERNELS_HAVE_STD_SIMD
    available.push_back(&kSimdSet);
#endif
    available.push_back(&kScalarSet);

    const KernelSet* chosen = available.front();
    if (const char* env = std::getenv("QUFI_KERNELS");
        env != nullptr && *env != '\0') {
      chosen = nullptr;
      for (const KernelSet* ks : available) {
        if (env == std::string_view(ks->name)) chosen = ks;
      }
      require(chosen != nullptr,
              std::string("QUFI_KERNELS: unknown or unavailable kernel set '") +
                  env + "' (try scalar, simd, or avx2)");
    }
    active.store(chosen, std::memory_order_release);

    tuning.block_groups = env_u64("QUFI_KERNEL_BLOCK", tuning.block_groups, 1);
    tuning.parallel_min_groups =
        env_u64("QUFI_KERNEL_PAR_MIN", tuning.parallel_min_groups, 2);
    tuning.threads = static_cast<int>(env_u64("QUFI_KERNEL_THREADS", 0, 0));
  }
};

DispatchState& state() {
  static DispatchState s;
  return s;
}

/// Lazily-built pool for intra-state parallelism. The dispatcher service
/// forks worker processes; a pool of threads does not survive fork, so the
/// instance is keyed by pid — in a fresh child the stale husk is leaked
/// (its threads are gone and its mutex state is unspecified; touching it
/// would be worse) and a new pool is built on first large-state kernel.
util::ThreadPool& kernel_pool(int threads) {
  static std::mutex mu;
  static util::ThreadPool* pool = nullptr;
  static pid_t pool_pid = -1;
  std::lock_guard<std::mutex> lock(mu);
  const pid_t pid = ::getpid();
  if (pool == nullptr || pool_pid != pid) {
    pool = new util::ThreadPool(static_cast<std::size_t>(threads));
    pool_pid = pid;
  }
  return *pool;
}

/// Runs `body(g_begin, g_end)` over [0, groups) in cache tiles, splitting
/// across the kernel pool when the state is large enough. Partitioning never
/// changes results: every tile is a disjoint group range.
template <typename Body>
void run_partitioned(u64 groups, const Body& body) {
  if (groups == 0) return;
  const KernelTuning t = state().tuning;
  const u64 block = std::max<u64>(t.block_groups, 1);
  if (t.parallel_enabled && groups >= t.parallel_min_groups) {
    util::ThreadPool& pool = kernel_pool(t.threads);
    // A few chunks per lane so uneven memory bandwidth does not stall the
    // tail; each chunk is tiled internally like the serial path.
    const u64 chunks = std::min<u64>(groups, pool.size() * 4);
    pool.parallel_for(static_cast<std::size_t>(chunks), [&](std::size_t c) {
      const u64 begin = groups * c / chunks;
      const u64 end = groups * (c + 1) / chunks;
      for (u64 g = begin; g < end; g += block) {
        body(g, std::min(end, g + block));
      }
    });
    return;
  }
  for (u64 g = 0; g < groups; g += block) {
    body(g, std::min(groups, g + block));
  }
}

}  // namespace

const std::vector<const KernelSet*>& available_kernel_sets() {
  return state().available;
}

const KernelSet* find_kernel_set(std::string_view name) {
  for (const KernelSet* ks : state().available) {
    if (name == std::string_view(ks->name)) return ks;
  }
  return nullptr;
}

const KernelSet& active_kernel_set() {
  return *state().active.load(std::memory_order_acquire);
}

const KernelSet& select_kernel_set(std::string_view name) {
  const KernelSet* ks = find_kernel_set(name);
  require(ks != nullptr,
          std::string("select_kernel_set: unknown or unavailable kernel set '") +
              std::string(name) + "'");
  state().active.store(ks, std::memory_order_release);
  return *ks;
}

KernelTuning kernel_tuning() { return state().tuning; }

void set_kernel_tuning(const KernelTuning& t) { state().tuning = t; }

namespace dispatch {

void apply_matrix1(std::span<util::cplx> amps, const util::Mat2& m, int q) {
  const KernelSet& ks = active_kernel_set();
  run_partitioned(amps.size() / 2, [&](u64 b, u64 e) {
    ks.m1_part(amps, m, q, b, e);
  });
}

void apply_matrix2(std::span<util::cplx> amps, const util::Mat4& m, int q_low,
                   int q_high) {
  const KernelSet& ks = active_kernel_set();
  run_partitioned(amps.size() / 4, [&](u64 b, u64 e) {
    ks.m2_part(amps, m, q_low, q_high, b, e);
  });
}

void apply_ccx(std::span<util::cplx> amps, int c0, int c1, int t) {
  const KernelSet& ks = active_kernel_set();
  run_partitioned(amps.size() / 2, [&](u64 b, u64 e) {
    ks.ccx_part(amps, c0, c1, t, b, e);
  });
}

void apply_matrix_k(std::span<util::cplx> amps, std::span<const util::cplx> m,
                    std::span<const int> bits) {
  const KernelSet& ks = active_kernel_set();
  require(bits.size() <= detail::kApplyMatrixKMaxBits,
          "apply_matrix_k: at most 4 bit positions supported (16x16 matrix); "
          "widen the kernel scratch tables before growing k");
  run_partitioned(amps.size() >> bits.size(), [&](u64 b, u64 e) {
    ks.mk_part(amps, m, bits, b, e);
  });
}

}  // namespace dispatch

}  // namespace qufi::sim
