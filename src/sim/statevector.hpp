#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace qufi::sim {

using util::cplx;

/// Pure-state simulator state: 2^n complex amplitudes, qubit q = bit q.
///
/// This is the ideal-execution engine (golden outputs for QVF) and the
/// per-shot engine of the Monte-Carlo trajectory backend.
class Statevector {
 public:
  /// Initializes |0...0> on `num_qubits` qubits (max 24 for sanity).
  explicit Statevector(int num_qubits);

  /// Takes ownership of explicit amplitudes (size must be a power of two).
  /// The vector is not re-normalized; callers own normalization.
  static Statevector from_amplitudes(std::vector<cplx> amps);

  int num_qubits() const { return num_qubits_; }
  std::uint64_t dim() const { return std::uint64_t{1} << num_qubits_; }
  std::span<const cplx> amplitudes() const { return amps_; }

  /// Explicit deep copy (see DensityMatrix::clone): trajectory prefix
  /// snapshots are resumed by cloning the cached per-shot state.
  Statevector clone() const { return *this; }

  /// Applies a single-qubit unitary to qubit q.
  void apply_matrix1(const util::Mat2& m, int q);
  /// Applies a two-qubit unitary; operand 0 is the low local bit.
  void apply_matrix2(const util::Mat4& m, int q0, int q1);

  /// Applies one unitary circuit instruction (gate kinds only; throws on
  /// Measure/Reset/Barrier — those are interpreted by simulators/backends).
  void apply_instruction(const circ::Instruction& instr);

  /// |amplitude|^2 for every basis state.
  std::vector<double> probabilities() const;

  /// Probability of measuring qubit q as 1.
  double probability_one(int q) const;

  /// Projective measurement of qubit q: collapses the state, renormalizes,
  /// and returns the outcome (0/1) drawn from `rng`.
  int measure_qubit(int q, util::Xoshiro256pp& rng);

  /// Non-unitary reset of qubit q to |0> (measure + conditional X).
  void reset_qubit(int q, util::Xoshiro256pp& rng);

  /// Squared overlap |<this|other>|^2.
  double fidelity(const Statevector& other) const;

  double norm() const;
  void normalize();

 private:
  int num_qubits_;
  std::vector<cplx> amps_;
};

/// Runs all unitary instructions of `circuit` on |0...0>; Barriers are
/// skipped, Measure/Reset throw (use a backend for those).
Statevector run_statevector(const circ::QuantumCircuit& circuit);

/// Maps a 2^num_qubits probability vector onto the circuit's classical-bit
/// space (2^num_clbits) according to its Measure instructions. Later
/// measures into the same clbit override earlier ones (Qiskit semantics).
/// Throws if the circuit has no measurements.
std::vector<double> map_to_clbit_probs(std::span<const double> qubit_probs,
                                       const circ::QuantumCircuit& circuit);

/// Ideal (noise-free) distribution over classical bitstrings for a circuit
/// with terminal measurements: statevector run + clbit mapping.
std::vector<double> ideal_clbit_probabilities(
    const circ::QuantumCircuit& circuit);

}  // namespace qufi::sim
