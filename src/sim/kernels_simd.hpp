#pragma once

// Vectorized, range-partitionable variants of the simulator bit-kernels.
//
// Every kernel here operates on "groups": the independent amplitude tuples a
// gate application touches (pairs for a 1q matrix, quadruples for a 2q
// matrix, 2^k-tuples for apply_matrix_k). A kernel variant processes the
// half-open group range [g_begin, g_end) — the seam the dispatch layer uses
// for cache-tiled iteration and for splitting one state across ThreadPool
// lanes. Because groups are disjoint and each group's arithmetic is a fixed
// sequence of IEEE-754 operations, results are bit-identical for any
// partition of the range.
//
// The bit-identity contract (docs/ARCHITECTURE.md "Kernel dispatch"): every
// variant performs, per amplitude, the exact operation sequence of the
// scalar reference in kernels.hpp — products in the same operand order,
// sums associated left-to-right, no FMA contraction (explicit intrinsics
// only), no reassociation across lanes. The differential suite in
// tests/test_kernels.cpp enforces this bit-for-bit; campaign-level results
// (golden CSVs, shard merges) therefore do not depend on which kernel set
// executed them.
//
// Three implementations:
//   scalar   — the reference loops, restructured over group ranges;
//   simd     — std::experimental::simd (portable; SSE2-width by default);
//   avx2     — AVX2 intrinsics behind __attribute__((target)), selected at
//              runtime by CPUID, so the build needs no global arch flags.

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>

#include "sim/kernels.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

#ifndef QUFI_ENABLE_AVX2
#define QUFI_ENABLE_AVX2 1
#endif

#if QUFI_ENABLE_AVX2 && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define QUFI_KERNELS_HAVE_AVX2 1
#include <immintrin.h>
#else
#define QUFI_KERNELS_HAVE_AVX2 0
#endif

#if __has_include(<experimental/simd>)
#define QUFI_KERNELS_HAVE_STD_SIMD 1
#include <experimental/simd>
#else
#define QUFI_KERNELS_HAVE_STD_SIMD 0
#endif

namespace qufi::sim::kern {

using util::cplx;
using util::Mat2;
using util::Mat4;
using u64 = std::uint64_t;

/// Inserts a zero bit at position `pos`: bits >= pos shift up by one.
inline u64 insert_zero_bit(u64 g, int pos) {
  const u64 low = (u64{1} << pos) - 1;
  return ((g & ~low) << 1) | (g & low);
}

// ---- shared apply_matrix_k setup --------------------------------------------

/// Precomputed per-call tables for apply_matrix_k: local-offset expansion,
/// sorted mask positions for group expansion, and the sparse rows of the
/// matrix (same 1e-12 magnitude drop threshold as the scalar reference).
struct MkTables {
  std::size_t k = 0;
  std::size_t dim = 0;
  u64 mask = 0;
  std::array<u64, 16> offset{};
  std::array<int, 4> sorted{};
  struct Entry {
    std::uint16_t col;
    cplx value;
  };
  std::array<Entry, 256> entries;
  std::array<std::uint16_t, 17> row_start{};
};

inline MkTables build_mk_tables(std::span<const cplx> m,
                                std::span<const int> bits) {
  MkTables t;
  t.k = bits.size();
  require(t.k <= detail::kApplyMatrixKMaxBits,
          "apply_matrix_k: at most 4 bit positions supported (16x16 matrix); "
          "widen the kernel scratch tables before growing k");
  t.dim = std::size_t{1} << t.k;
  for (std::size_t j = 0; j < t.dim; ++j) {
    u64 off = 0;
    for (std::size_t b = 0; b < t.k; ++b) {
      if ((j >> b) & 1) off |= u64{1} << bits[b];
    }
    t.offset[j] = off;
  }
  for (std::size_t b = 0; b < t.k; ++b) {
    t.mask |= u64{1} << bits[b];
    t.sorted[b] = bits[b];
  }
  std::sort(t.sorted.begin(), t.sorted.begin() + t.k);
  std::uint16_t nnz = 0;
  for (std::size_t r = 0; r < t.dim; ++r) {
    t.row_start[r] = nnz;
    const cplx* row = m.data() + r * t.dim;
    for (std::size_t c = 0; c < t.dim; ++c) {
      if (std::norm(row[c]) > 1e-24) {
        t.entries[nnz++] =
            MkTables::Entry{static_cast<std::uint16_t>(c), row[c]};
      }
    }
  }
  t.row_start[t.dim] = nnz;
  return t;
}

/// Expands group index `g` to a base amplitude index: zeros are inserted at
/// the (ascending) masked bit positions.
inline u64 expand_group(u64 g, const MkTables& t) {
  u64 x = g;
  for (std::size_t b = 0; b < t.k; ++b) x = insert_zero_bit(x, t.sorted[b]);
  return x;
}

// ---- scalar reference over group ranges -------------------------------------

inline void scalar_m1_part(std::span<cplx> amps, const Mat2& m, int q,
                           u64 g_begin, u64 g_end) {
  cplx* a = amps.data();
  const u64 stride = u64{1} << q;
  u64 g = g_begin;
  while (g < g_end) {
    const u64 off0 = g & (stride - 1);
    const u64 run = std::min(stride - off0, g_end - g);
    const u64 i0_first = ((g >> q) << (q + 1)) | off0;
    for (u64 r = 0; r < run; ++r) {
      const u64 i0 = i0_first + r;
      const u64 i1 = i0 + stride;
      const cplx a0 = a[i0];
      const cplx a1 = a[i1];
      a[i0] = m.a[0] * a0 + m.a[1] * a1;
      a[i1] = m.a[2] * a0 + m.a[3] * a1;
    }
    g += run;
  }
}

inline void scalar_m2_part(std::span<cplx> amps, const Mat4& m, int q_low,
                           int q_high, u64 g_begin, u64 g_end) {
  cplx* a = amps.data();
  const u64 bl = u64{1} << q_low;
  const u64 bh = u64{1} << q_high;
  const int s0 = std::min(q_low, q_high);
  const int s1 = std::max(q_low, q_high);
  const u64 low = u64{1} << s0;
  u64 g = g_begin;
  while (g < g_end) {
    const u64 off0 = g & (low - 1);
    const u64 run = std::min(low - off0, g_end - g);
    const u64 i00_first = insert_zero_bit(insert_zero_bit(g, s0), s1);
    for (u64 r = 0; r < run; ++r) {
      const u64 i00 = i00_first + r;
      const u64 i01 = i00 | bl;
      const u64 i10 = i00 | bh;
      const u64 i11 = i00 | bl | bh;
      const cplx a0 = a[i00];
      const cplx a1 = a[i01];
      const cplx a2 = a[i10];
      const cplx a3 = a[i11];
      a[i00] = m.a[0] * a0 + m.a[1] * a1 + m.a[2] * a2 + m.a[3] * a3;
      a[i01] = m.a[4] * a0 + m.a[5] * a1 + m.a[6] * a2 + m.a[7] * a3;
      a[i10] = m.a[8] * a0 + m.a[9] * a1 + m.a[10] * a2 + m.a[11] * a3;
      a[i11] = m.a[12] * a0 + m.a[13] * a1 + m.a[14] * a2 + m.a[15] * a3;
    }
    g += run;
  }
}

inline void scalar_ccx_part(std::span<cplx> amps, int c0, int c1, int t,
                            u64 g_begin, u64 g_end) {
  cplx* a = amps.data();
  const u64 bc0 = u64{1} << c0;
  const u64 bc1 = u64{1} << c1;
  const u64 bt = u64{1} << t;
  for (u64 g = g_begin; g < g_end; ++g) {
    const u64 i = insert_zero_bit(g, t);
    if ((i & bc0) && (i & bc1)) std::swap(a[i], a[i | bt]);
  }
}

inline void scalar_mk_part(std::span<cplx> amps, std::span<const cplx> m,
                           std::span<const int> bits, u64 g_begin, u64 g_end) {
  const MkTables t = build_mk_tables(m, bits);
  cplx* a = amps.data();
  std::array<cplx, 16> v{};
  for (u64 g = g_begin; g < g_end; ++g) {
    const u64 base = expand_group(g, t);
    for (std::size_t j = 0; j < t.dim; ++j) v[j] = a[base | t.offset[j]];
    for (std::size_t r = 0; r < t.dim; ++r) {
      cplx sum{};
      for (std::uint16_t e = t.row_start[r]; e < t.row_start[r + 1]; ++e) {
        sum += t.entries[e].value * v[t.entries[e].col];
      }
      a[base | t.offset[r]] = sum;
    }
  }
}

// ---- portable std::experimental::simd variants ------------------------------
//
// Complexes stay interleaved (re, im, re, im, ...); a coefficient multiply
// uses the alternating-sign trick: with rr = broadcast(c.re) and
// ia = (-c.im, +c.im, ...), cmul(x) = x*rr + swap_pairs(x)*ia reproduces the
// scalar (re*re - im*im, re*im + im*re) bit-for-bit (IEEE a + (-b) == a - b
// and negation/multiplication commute exactly).

#if QUFI_KERNELS_HAVE_STD_SIMD

namespace stdx = std::experimental;
using vd = stdx::native_simd<double>;

struct PortableCoeff {
  vd rr;  ///< coefficient real part in every lane
  vd ia;  ///< alternating (-im, +im) per complex lane pair
};

inline PortableCoeff portable_coeff(cplx c) {
  PortableCoeff out;
  out.rr = vd(c.real());
  out.ia = vd([&](auto i) {
    return (static_cast<int>(i) & 1) ? c.imag() : -c.imag();
  });
  return out;
}

inline vd portable_cmul(const PortableCoeff& c, vd x) {
  const vd swp([&x](auto i) { return x[static_cast<int>(i) ^ 1]; });
  return x * c.rr + swp * c.ia;
}

inline void portable_m1_part(std::span<cplx> amps, const Mat2& m, int q,
                             u64 g_begin, u64 g_end) {
  constexpr u64 kVc = vd::size() / 2;  // complexes per vector
  if constexpr (kVc < 1) {
    scalar_m1_part(amps, m, q, g_begin, g_end);
    return;
  }
  cplx* a = amps.data();
  const u64 stride = u64{1} << q;
  const PortableCoeff c0 = portable_coeff(m.a[0]);
  const PortableCoeff c1 = portable_coeff(m.a[1]);
  const PortableCoeff c2 = portable_coeff(m.a[2]);
  const PortableCoeff c3 = portable_coeff(m.a[3]);
  u64 g = g_begin;
  while (g < g_end) {
    const u64 off0 = g & (stride - 1);
    const u64 run = std::min(stride - off0, g_end - g);
    const u64 i0_first = ((g >> q) << (q + 1)) | off0;
    u64 r = 0;
    for (; r + kVc <= run; r += kVc) {
      double* p0 = reinterpret_cast<double*>(a + i0_first + r);
      double* p1 = reinterpret_cast<double*>(a + i0_first + r + stride);
      const vd a0(p0, stdx::element_aligned);
      const vd a1(p1, stdx::element_aligned);
      const vd r0 = portable_cmul(c0, a0) + portable_cmul(c1, a1);
      const vd r1 = portable_cmul(c2, a0) + portable_cmul(c3, a1);
      r0.copy_to(p0, stdx::element_aligned);
      r1.copy_to(p1, stdx::element_aligned);
    }
    for (; r < run; ++r) {
      const u64 i0 = i0_first + r;
      const u64 i1 = i0 + stride;
      const cplx a0 = a[i0];
      const cplx a1 = a[i1];
      a[i0] = m.a[0] * a0 + m.a[1] * a1;
      a[i1] = m.a[2] * a0 + m.a[3] * a1;
    }
    g += run;
  }
}

inline void portable_m2_part(std::span<cplx> amps, const Mat4& m, int q_low,
                             int q_high, u64 g_begin, u64 g_end) {
  constexpr u64 kVc = vd::size() / 2;
  if constexpr (kVc < 1) {
    scalar_m2_part(amps, m, q_low, q_high, g_begin, g_end);
    return;
  }
  cplx* a = amps.data();
  const u64 bl = u64{1} << q_low;
  const u64 bh = u64{1} << q_high;
  const int s0 = std::min(q_low, q_high);
  const int s1 = std::max(q_low, q_high);
  const u64 low = u64{1} << s0;
  std::array<PortableCoeff, 16> c;
  for (int i = 0; i < 16; ++i) c[static_cast<std::size_t>(i)] = portable_coeff(m.a[static_cast<std::size_t>(i)]);
  u64 g = g_begin;
  while (g < g_end) {
    const u64 off0 = g & (low - 1);
    const u64 run = std::min(low - off0, g_end - g);
    const u64 i00_first = insert_zero_bit(insert_zero_bit(g, s0), s1);
    u64 r = 0;
    for (; r + kVc <= run; r += kVc) {
      const u64 i00 = i00_first + r;
      double* p0 = reinterpret_cast<double*>(a + i00);
      double* p1 = reinterpret_cast<double*>(a + (i00 | bl));
      double* p2 = reinterpret_cast<double*>(a + (i00 | bh));
      double* p3 = reinterpret_cast<double*>(a + (i00 | bl | bh));
      const vd a0(p0, stdx::element_aligned);
      const vd a1(p1, stdx::element_aligned);
      const vd a2(p2, stdx::element_aligned);
      const vd a3(p3, stdx::element_aligned);
      const vd r0 = portable_cmul(c[0], a0) + portable_cmul(c[1], a1) +
                    portable_cmul(c[2], a2) + portable_cmul(c[3], a3);
      const vd r1 = portable_cmul(c[4], a0) + portable_cmul(c[5], a1) +
                    portable_cmul(c[6], a2) + portable_cmul(c[7], a3);
      const vd r2 = portable_cmul(c[8], a0) + portable_cmul(c[9], a1) +
                    portable_cmul(c[10], a2) + portable_cmul(c[11], a3);
      const vd r3 = portable_cmul(c[12], a0) + portable_cmul(c[13], a1) +
                    portable_cmul(c[14], a2) + portable_cmul(c[15], a3);
      r0.copy_to(p0, stdx::element_aligned);
      r1.copy_to(p1, stdx::element_aligned);
      r2.copy_to(p2, stdx::element_aligned);
      r3.copy_to(p3, stdx::element_aligned);
    }
    for (; r < run; ++r) {
      const u64 i00 = i00_first + r;
      const u64 i01 = i00 | bl;
      const u64 i10 = i00 | bh;
      const u64 i11 = i00 | bl | bh;
      const cplx a0 = a[i00];
      const cplx a1 = a[i01];
      const cplx a2 = a[i10];
      const cplx a3 = a[i11];
      a[i00] = m.a[0] * a0 + m.a[1] * a1 + m.a[2] * a2 + m.a[3] * a3;
      a[i01] = m.a[4] * a0 + m.a[5] * a1 + m.a[6] * a2 + m.a[7] * a3;
      a[i10] = m.a[8] * a0 + m.a[9] * a1 + m.a[10] * a2 + m.a[11] * a3;
      a[i11] = m.a[12] * a0 + m.a[13] * a1 + m.a[14] * a2 + m.a[15] * a3;
    }
    g += run;
  }
}

#endif  // QUFI_KERNELS_HAVE_STD_SIMD

// ---- AVX2 variants ----------------------------------------------------------
//
// One __m256d holds two interleaved complexes. cmul applies a coefficient to
// both: t1 = x * bc(re); t2 = swap_within_pairs(x) * bc(im);
// addsub(t1, t2) = (x.re*re - x.im*im, x.im*re + x.re*im) — the scalar
// formula, lane for lane, with no FMA contraction (explicit mul/addsub).

#if QUFI_KERNELS_HAVE_AVX2

#define QUFI_AVX2_FN __attribute__((target("avx2")))
#define QUFI_AVX2_INLINE \
  __attribute__((target("avx2"), always_inline)) inline

struct Avx2Coeff {
  __m256d rr;
  __m256d ii;
};

QUFI_AVX2_INLINE Avx2Coeff avx2_coeff(cplx c) {
  return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

/// Per-128-lane coefficients: `lo` multiplies the low complex, `hi` the
/// high one (for paths where the two lanes carry different local indices).
QUFI_AVX2_INLINE Avx2Coeff avx2_coeff_pair(cplx lo, cplx hi) {
  return {_mm256_set_pd(hi.real(), hi.real(), lo.real(), lo.real()),
          _mm256_set_pd(hi.imag(), hi.imag(), lo.imag(), lo.imag())};
}

QUFI_AVX2_INLINE __m256d avx2_cmul(const Avx2Coeff& c, __m256d x) {
  const __m256d t1 = _mm256_mul_pd(x, c.rr);
  const __m256d sw = _mm256_permute_pd(x, 0x5);  // swap re/im within pairs
  const __m256d t2 = _mm256_mul_pd(sw, c.ii);
  return _mm256_addsub_pd(t1, t2);
}

QUFI_AVX2_FN inline void avx2_m1_part(std::span<cplx> amps, const Mat2& m,
                                      int q, u64 g_begin, u64 g_end) {
  cplx* a = amps.data();
  const u64 stride = u64{1} << q;
  const Avx2Coeff c0 = avx2_coeff(m.a[0]);
  const Avx2Coeff c1 = avx2_coeff(m.a[1]);
  const Avx2Coeff c2 = avx2_coeff(m.a[2]);
  const Avx2Coeff c3 = avx2_coeff(m.a[3]);
  if (stride >= 2) {
    u64 g = g_begin;
    while (g < g_end) {
      const u64 off0 = g & (stride - 1);
      const u64 run = std::min(stride - off0, g_end - g);
      const u64 i0_first = ((g >> q) << (q + 1)) | off0;
      u64 r = 0;
      for (; r + 2 <= run; r += 2) {
        double* p0 = reinterpret_cast<double*>(a + i0_first + r);
        double* p1 = reinterpret_cast<double*>(a + i0_first + r + stride);
        const __m256d a0 = _mm256_loadu_pd(p0);
        const __m256d a1 = _mm256_loadu_pd(p1);
        const __m256d r0 = _mm256_add_pd(avx2_cmul(c0, a0), avx2_cmul(c1, a1));
        const __m256d r1 = _mm256_add_pd(avx2_cmul(c2, a0), avx2_cmul(c3, a1));
        _mm256_storeu_pd(p0, r0);
        _mm256_storeu_pd(p1, r1);
      }
      for (; r < run; ++r) {
        const u64 i0 = i0_first + r;
        const u64 i1 = i0 + stride;
        const cplx a0 = a[i0];
        const cplx a1 = a[i1];
        a[i0] = m.a[0] * a0 + m.a[1] * a1;
        a[i1] = m.a[2] * a0 + m.a[3] * a1;
      }
      g += run;
    }
    return;
  }
  // q == 0: each group is an adjacent (a0, a1) pair; process two groups per
  // iteration by regrouping lanes so each vector holds one local index of
  // both groups.
  u64 g = g_begin;
  for (; g + 2 <= g_end; g += 2) {
    double* p = reinterpret_cast<double*>(a + 2 * g);
    const __m256d x = _mm256_loadu_pd(p);      // [g0.a0, g0.a1]
    const __m256d y = _mm256_loadu_pd(p + 4);  // [g1.a0, g1.a1]
    const __m256d a0 = _mm256_permute2f128_pd(x, y, 0x20);  // [g0.a0, g1.a0]
    const __m256d a1 = _mm256_permute2f128_pd(x, y, 0x31);  // [g0.a1, g1.a1]
    const __m256d r0 = _mm256_add_pd(avx2_cmul(c0, a0), avx2_cmul(c1, a1));
    const __m256d r1 = _mm256_add_pd(avx2_cmul(c2, a0), avx2_cmul(c3, a1));
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(r0, r1, 0x20));
    _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(r0, r1, 0x31));
  }
  for (; g < g_end; ++g) {
    const u64 i0 = 2 * g;
    const cplx a0 = a[i0];
    const cplx a1 = a[i0 + 1];
    a[i0] = m.a[0] * a0 + m.a[1] * a1;
    a[i0 + 1] = m.a[2] * a0 + m.a[3] * a1;
  }
}

QUFI_AVX2_FN inline void avx2_m2_part(std::span<cplx> amps, const Mat4& m,
                                      int q_low, int q_high, u64 g_begin,
                                      u64 g_end) {
  cplx* a = amps.data();
  const u64 bl = u64{1} << q_low;
  const u64 bh = u64{1} << q_high;
  const int s0 = std::min(q_low, q_high);
  const int s1 = std::max(q_low, q_high);
  if (s0 >= 1) {
    // Offsets below s0 are contiguous in every plane: vectorize two offsets
    // per step with broadcast coefficients.
    std::array<Avx2Coeff, 16> c;
    for (std::size_t i = 0; i < 16; ++i) c[i] = avx2_coeff(m.a[i]);
    const u64 low = u64{1} << s0;
    u64 g = g_begin;
    while (g < g_end) {
      const u64 off0 = g & (low - 1);
      const u64 run = std::min(low - off0, g_end - g);
      const u64 i00_first = insert_zero_bit(insert_zero_bit(g, s0), s1);
      u64 r = 0;
      for (; r + 2 <= run; r += 2) {
        const u64 i00 = i00_first + r;
        double* p0 = reinterpret_cast<double*>(a + i00);
        double* p1 = reinterpret_cast<double*>(a + (i00 | bl));
        double* p2 = reinterpret_cast<double*>(a + (i00 | bh));
        double* p3 = reinterpret_cast<double*>(a + (i00 | bl | bh));
        const __m256d a0 = _mm256_loadu_pd(p0);
        const __m256d a1 = _mm256_loadu_pd(p1);
        const __m256d a2 = _mm256_loadu_pd(p2);
        const __m256d a3 = _mm256_loadu_pd(p3);
        const __m256d r0 = _mm256_add_pd(
            _mm256_add_pd(_mm256_add_pd(avx2_cmul(c[0], a0),
                                        avx2_cmul(c[1], a1)),
                          avx2_cmul(c[2], a2)),
            avx2_cmul(c[3], a3));
        const __m256d r1 = _mm256_add_pd(
            _mm256_add_pd(_mm256_add_pd(avx2_cmul(c[4], a0),
                                        avx2_cmul(c[5], a1)),
                          avx2_cmul(c[6], a2)),
            avx2_cmul(c[7], a3));
        const __m256d r2 = _mm256_add_pd(
            _mm256_add_pd(_mm256_add_pd(avx2_cmul(c[8], a0),
                                        avx2_cmul(c[9], a1)),
                          avx2_cmul(c[10], a2)),
            avx2_cmul(c[11], a3));
        const __m256d r3 = _mm256_add_pd(
            _mm256_add_pd(_mm256_add_pd(avx2_cmul(c[12], a0),
                                        avx2_cmul(c[13], a1)),
                          avx2_cmul(c[14], a2)),
            avx2_cmul(c[15], a3));
        _mm256_storeu_pd(p0, r0);
        _mm256_storeu_pd(p1, r1);
        _mm256_storeu_pd(p2, r2);
        _mm256_storeu_pd(p3, r3);
      }
      for (; r < run; ++r) {
        const u64 i00 = i00_first + r;
        const u64 i01 = i00 | bl;
        const u64 i10 = i00 | bh;
        const u64 i11 = i00 | bl | bh;
        const cplx a0 = a[i00];
        const cplx a1 = a[i01];
        const cplx a2 = a[i10];
        const cplx a3 = a[i11];
        a[i00] = m.a[0] * a0 + m.a[1] * a1 + m.a[2] * a2 + m.a[3] * a3;
        a[i01] = m.a[4] * a0 + m.a[5] * a1 + m.a[6] * a2 + m.a[7] * a3;
        a[i10] = m.a[8] * a0 + m.a[9] * a1 + m.a[10] * a2 + m.a[11] * a3;
        a[i11] = m.a[12] * a0 + m.a[13] * a1 + m.a[14] * a2 + m.a[15] * a3;
      }
      g += run;
    }
    return;
  }
  // One operand is qubit 0: each group's four amplitudes live in two
  // adjacent-pair vectors. Broadcast each local amplitude across both
  // lanes and use per-lane coefficient rows to produce two outputs per
  // cmul chain.
  //
  // Lane labels depend on which operand is bit 0:
  //   q_low == 0 : x = (a0, a1) at i00, z = (a2, a3) at i00|bh
  //   q_high == 0: x = (a0, a2) at i00, z = (a1, a3) at i00|bl
  const bool low_is_bit0 = q_low == 0;
  const u64 bfar = low_is_bit0 ? bh : bl;
  const std::size_t lx1 = low_is_bit0 ? 1 : 2;  // local index of x's high lane
  const std::size_t lz0 = low_is_bit0 ? 2 : 1;  // local index of z's low lane
  // Output-row coefficient pairs: rx lanes hold rows (0, lx1), rz rows
  // (lz0, 3); column j coefficients in ascending j to match the scalar sum
  // order.
  std::array<Avx2Coeff, 4> cx;
  std::array<Avx2Coeff, 4> cz;
  for (std::size_t j = 0; j < 4; ++j) {
    cx[j] = avx2_coeff_pair(m.a[0 * 4 + j], m.a[lx1 * 4 + j]);
    cz[j] = avx2_coeff_pair(m.a[lz0 * 4 + j], m.a[3 * 4 + j]);
  }
  for (u64 g = g_begin; g < g_end; ++g) {
    const u64 i00 = insert_zero_bit(g << 1, s1);
    double* px = reinterpret_cast<double*>(a + i00);
    double* pz = reinterpret_cast<double*>(a + (i00 | bfar));
    const __m256d x = _mm256_loadu_pd(px);
    const __m256d z = _mm256_loadu_pd(pz);
    // Broadcast the four local amplitudes, indexed by local label.
    __m256d amp[4];
    amp[0] = _mm256_permute2f128_pd(x, x, 0x00);
    amp[lx1] = _mm256_permute2f128_pd(x, x, 0x11);
    amp[lz0] = _mm256_permute2f128_pd(z, z, 0x00);
    amp[3] = _mm256_permute2f128_pd(z, z, 0x11);
    const __m256d rx = _mm256_add_pd(
        _mm256_add_pd(
            _mm256_add_pd(avx2_cmul(cx[0], amp[0]), avx2_cmul(cx[1], amp[1])),
            avx2_cmul(cx[2], amp[2])),
        avx2_cmul(cx[3], amp[3]));
    const __m256d rz = _mm256_add_pd(
        _mm256_add_pd(
            _mm256_add_pd(avx2_cmul(cz[0], amp[0]), avx2_cmul(cz[1], amp[1])),
            avx2_cmul(cz[2], amp[2])),
        avx2_cmul(cz[3], amp[3]));
    _mm256_storeu_pd(px, rx);
    _mm256_storeu_pd(pz, rz);
  }
}

QUFI_AVX2_INLINE __m128d avx2_cmul128(cplx c, __m128d x) {
  const __m128d rr = _mm_set1_pd(c.real());
  const __m128d ii = _mm_set1_pd(c.imag());
  const __m128d t1 = _mm_mul_pd(x, rr);
  const __m128d sw = _mm_shuffle_pd(x, x, 0x1);
  const __m128d t2 = _mm_mul_pd(sw, ii);
  return _mm_addsub_pd(t1, t2);
}

QUFI_AVX2_FN inline void avx2_mk_part(std::span<cplx> amps,
                                      std::span<const cplx> m,
                                      std::span<const int> bits, u64 g_begin,
                                      u64 g_end) {
  const MkTables t = build_mk_tables(m, bits);
  cplx* a = amps.data();
  if ((t.mask & 1) == 0) {
    // Bit 0 is free: group g and g+1 expand to adjacent bases (g even), so
    // every local amplitude vector serves two bases at once.
    std::array<Avx2Coeff, 256> ec;
    const std::uint16_t nnz = t.row_start[t.dim];
    for (std::uint16_t e = 0; e < nnz; ++e) {
      ec[e] = avx2_coeff(t.entries[e].value);
    }
    u64 g = g_begin;
    if ((g & 1) && g < g_end) {
      scalar_mk_part(amps, m, bits, g, g + 1);
      ++g;
    }
    __m256d v[16];
    for (; g + 2 <= g_end; g += 2) {
      const u64 base = expand_group(g, t);
      for (std::size_t j = 0; j < t.dim; ++j) {
        v[j] = _mm256_loadu_pd(
            reinterpret_cast<double*>(a + (base | t.offset[j])));
      }
      for (std::size_t r = 0; r < t.dim; ++r) {
        __m256d sum = _mm256_setzero_pd();
        for (std::uint16_t e = t.row_start[r]; e < t.row_start[r + 1]; ++e) {
          sum = _mm256_add_pd(sum, avx2_cmul(ec[e], v[t.entries[e].col]));
        }
        _mm256_storeu_pd(reinterpret_cast<double*>(a + (base | t.offset[r])),
                         sum);
      }
    }
    if (g < g_end) scalar_mk_part(amps, m, bits, g, g_end);
    return;
  }
  // Bit 0 is masked: bases are never adjacent; use branch-free 128-bit
  // complex arithmetic per base.
  __m128d v[16];
  for (u64 g = g_begin; g < g_end; ++g) {
    const u64 base = expand_group(g, t);
    for (std::size_t j = 0; j < t.dim; ++j) {
      v[j] =
          _mm_loadu_pd(reinterpret_cast<double*>(a + (base | t.offset[j])));
    }
    for (std::size_t r = 0; r < t.dim; ++r) {
      __m128d sum = _mm_setzero_pd();
      for (std::uint16_t e = t.row_start[r]; e < t.row_start[r + 1]; ++e) {
        sum = _mm_add_pd(sum,
                         avx2_cmul128(t.entries[e].value, v[t.entries[e].col]));
      }
      _mm_storeu_pd(reinterpret_cast<double*>(a + (base | t.offset[r])), sum);
    }
  }
}

#endif  // QUFI_KERNELS_HAVE_AVX2

}  // namespace qufi::sim::kern
