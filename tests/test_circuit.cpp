// Unit tests for the circuit IR: gates, builder, moments, inverse.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "circuit/moments.hpp"
#include "util/error.hpp"

namespace qufi::circ {
namespace {

constexpr double kPi = std::numbers::pi;

// ---------------------------------------------------------------- gates

TEST(Gate, InfoLookup) {
  EXPECT_STREQ(gate_info(GateKind::CX).name, "cx");
  EXPECT_EQ(gate_info(GateKind::CX).num_qubits, 2);
  EXPECT_EQ(gate_info(GateKind::U).num_params, 3);
  EXPECT_FALSE(gate_info(GateKind::Measure).is_unitary);
  EXPECT_EQ(gate_info(GateKind::CCX).num_qubits, 3);
}

TEST(Gate, FromNameRoundTrip) {
  for (int i = 0; i <= static_cast<int>(GateKind::Reset); ++i) {
    const auto kind = static_cast<GateKind>(i);
    EXPECT_EQ(gate_from_name(gate_info(kind).name), kind);
  }
  EXPECT_THROW(gate_from_name("bogus"), Error);
}

// Every 1q gate matrix must be unitary (parameter sweep).
class OneQubitGateUnitarity
    : public ::testing::TestWithParam<std::tuple<GateKind, double>> {};

TEST_P(OneQubitGateUnitarity, MatrixIsUnitary) {
  const auto [kind, angle] = GetParam();
  const auto& info = gate_info(kind);
  std::vector<double> params;
  for (int k = 0; k < info.num_params; ++k)
    params.push_back(angle * (k + 1) / 2.0);
  EXPECT_TRUE(gate_matrix1(kind, params).is_unitary())
      << info.name << " angle=" << angle;
}

INSTANTIATE_TEST_SUITE_P(
    AllGatesAndAngles, OneQubitGateUnitarity,
    ::testing::Combine(
        ::testing::Values(GateKind::I, GateKind::X, GateKind::Y, GateKind::Z,
                          GateKind::H, GateKind::S, GateKind::Sdg, GateKind::T,
                          GateKind::Tdg, GateKind::SX, GateKind::SXdg,
                          GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::P,
                          GateKind::U),
        ::testing::Values(-kPi, -kPi / 3, 0.0, kPi / 7, kPi / 2, kPi,
                          1.9 * kPi)));

class TwoQubitGateUnitarity
    : public ::testing::TestWithParam<std::tuple<GateKind, double>> {};

TEST_P(TwoQubitGateUnitarity, MatrixIsUnitary) {
  const auto [kind, angle] = GetParam();
  std::vector<double> params;
  for (int k = 0; k < gate_info(kind).num_params; ++k) params.push_back(angle);
  EXPECT_TRUE(gate_matrix2(kind, params).is_unitary());
}

INSTANTIATE_TEST_SUITE_P(
    AllGatesAndAngles, TwoQubitGateUnitarity,
    ::testing::Combine(::testing::Values(GateKind::CX, GateKind::CY,
                                         GateKind::CZ, GateKind::CH,
                                         GateKind::CP, GateKind::CRZ,
                                         GateKind::SWAP),
                       ::testing::Values(-kPi / 2, 0.3, kPi)));

TEST(Gate, KnownMatrices) {
  const auto x = gate_matrix1(GateKind::X, {});
  EXPECT_EQ(x(0, 1), (util::cplx{1, 0}));
  EXPECT_EQ(x(0, 0), (util::cplx{0, 0}));

  // SX^2 == X.
  const auto sx = gate_matrix1(GateKind::SX, {});
  EXPECT_TRUE((sx * sx).approx_equal(x));

  // T^2 == S, S^2 == Z.
  const auto t = gate_matrix1(GateKind::T, {});
  const auto s = gate_matrix1(GateKind::S, {});
  const auto z = gate_matrix1(GateKind::Z, {});
  EXPECT_TRUE((t * t).approx_equal(s));
  EXPECT_TRUE((s * s).approx_equal(z));

  // H Z H == X.
  const auto h = gate_matrix1(GateKind::H, {});
  EXPECT_TRUE((h * z * h).approx_equal(x, 1e-12));
}

TEST(Gate, UGateMatchesSpecialCases) {
  // U(0, 0, lambda) == P(lambda).
  const double lam[] = {0.73};
  const double u_args[] = {0.0, 0.0, 0.73};
  EXPECT_TRUE(gate_matrix1(GateKind::U, u_args)
                  .approx_equal(gate_matrix1(GateKind::P, lam)));
  // U(pi, 0, pi) == X.
  const double x_args[] = {kPi, 0.0, kPi};
  EXPECT_TRUE(gate_matrix1(GateKind::U, x_args)
                  .approx_equal(gate_matrix1(GateKind::X, {}), 1e-12));
  // U(theta, -pi/2, pi/2) == RX(theta).
  const double rx_arg[] = {0.9};
  const double urx[] = {0.9, -kPi / 2, kPi / 2};
  EXPECT_TRUE(gate_matrix1(GateKind::U, urx)
                  .approx_equal(gate_matrix1(GateKind::RX, rx_arg), 1e-12));
}

TEST(Gate, CxMatrixLittleEndian) {
  // Control = operand 0 = low bit: |01> (q0=1) -> |11>.
  const auto cx = gate_matrix2(GateKind::CX, {});
  EXPECT_EQ(cx(3, 1), (util::cplx{1, 0}));
  EXPECT_EQ(cx(1, 3), (util::cplx{1, 0}));
  EXPECT_EQ(cx(0, 0), (util::cplx{1, 0}));
  EXPECT_EQ(cx(2, 2), (util::cplx{1, 0}));
  EXPECT_EQ(cx(1, 1), (util::cplx{0, 0}));
}

TEST(Gate, InversePairs) {
  const auto check_inverse = [](GateKind kind, std::span<const double> params) {
    const auto inv = gate_inverse(kind, params);
    const std::span<const double> inv_params{inv.params.data(),
                                             static_cast<std::size_t>(inv.num_params)};
    const auto m = gate_matrix1(kind, params);
    const auto mi = gate_matrix1(inv.kind, inv_params);
    EXPECT_TRUE((m * mi).equal_up_to_phase(util::Mat2::identity(), 1e-12))
        << gate_info(kind).name;
  };
  check_inverse(GateKind::S, {});
  check_inverse(GateKind::T, {});
  check_inverse(GateKind::SX, {});
  const double angle[] = {1.234};
  check_inverse(GateKind::RX, angle);
  check_inverse(GateKind::RZ, angle);
  check_inverse(GateKind::P, angle);
  const double u_args[] = {0.5, 1.5, -0.7};
  check_inverse(GateKind::U, u_args);
  EXPECT_THROW(gate_inverse(GateKind::Measure, {}), Error);
}

// --------------------------------------------------------------- circuit

TEST(Circuit, BuilderChainsAndCounts) {
  QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).cx(1, 2).measure_all();
  EXPECT_EQ(qc.size(), 6u);
  EXPECT_EQ(qc.count_ops().at("cx"), 2);
  EXPECT_EQ(qc.count_ops().at("measure"), 3);
  EXPECT_EQ(qc.num_unitary_gates(), 3);
}

TEST(Circuit, ValidatesQubitRanges) {
  QuantumCircuit qc(2, 1);
  EXPECT_THROW(qc.h(2), Error);
  EXPECT_THROW(qc.h(-1), Error);
  EXPECT_THROW(qc.cx(0, 0), Error);  // duplicate operand
  EXPECT_THROW(qc.measure(0, 5), Error);
  EXPECT_THROW(qc.measure(3, 0), Error);
}

TEST(Circuit, ValidatesParamCounts) {
  QuantumCircuit qc(1);
  EXPECT_THROW(qc.append(Instruction{GateKind::RZ, {0}, {}, {}}), Error);
  EXPECT_THROW(qc.append(Instruction{GateKind::H, {0}, {}, {0.5}}), Error);
  EXPECT_THROW(qc.append(Instruction{GateKind::H, {0}, {0}, {}}), Error);
}

TEST(Circuit, DepthComputation) {
  QuantumCircuit qc(3);
  qc.h(0).h(1).h(2);  // one layer
  EXPECT_EQ(qc.depth(), 1);
  qc.cx(0, 1);  // second layer
  EXPECT_EQ(qc.depth(), 2);
  qc.h(2);  // still fits layer 2
  EXPECT_EQ(qc.depth(), 2);
  qc.cx(1, 2);  // layer 3
  EXPECT_EQ(qc.depth(), 3);
}

TEST(Circuit, BarrierSynchronizesWithoutDepth) {
  QuantumCircuit qc(2);
  qc.h(0);
  qc.barrier();
  qc.h(1);  // must start after the barrier => layer 2
  EXPECT_EQ(qc.depth(), 2);
}

TEST(Circuit, MeasureAllGrowsClbits) {
  QuantumCircuit qc(3, 0);
  qc.h(0).measure_all();
  EXPECT_EQ(qc.num_clbits(), 3);
}

TEST(Circuit, ComposeWithMapping) {
  QuantumCircuit inner(2);
  inner.h(0).cx(0, 1);
  QuantumCircuit outer(4);
  outer.compose(inner, {2, 3});
  ASSERT_EQ(outer.size(), 2u);
  EXPECT_EQ(outer.instructions()[0].qubits[0], 2);
  EXPECT_EQ(outer.instructions()[1].qubits, (std::vector<int>{2, 3}));
  EXPECT_THROW(outer.compose(inner, {0}), Error);
}

TEST(Circuit, InverseReversesAndInverts) {
  QuantumCircuit qc(2);
  qc.h(0).s(1).cx(0, 1).t(0);
  const auto inv = qc.inverse();
  ASSERT_EQ(inv.size(), 4u);
  EXPECT_EQ(inv.instructions()[0].kind, GateKind::Tdg);
  EXPECT_EQ(inv.instructions()[1].kind, GateKind::CX);
  EXPECT_EQ(inv.instructions()[2].kind, GateKind::Sdg);
  EXPECT_EQ(inv.instructions()[3].kind, GateKind::H);
}

TEST(Circuit, InverseRejectsMeasurement) {
  QuantumCircuit qc(1, 1);
  qc.h(0).measure(0, 0);
  EXPECT_THROW(qc.inverse(), Error);
}

TEST(Circuit, MeasurementsAreTerminalDetection) {
  QuantumCircuit ok(2, 2);
  ok.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
  EXPECT_TRUE(ok.measurements_are_terminal());

  QuantumCircuit bad(2, 2);
  bad.h(0).measure(0, 0).cx(0, 1);
  EXPECT_FALSE(bad.measurements_are_terminal());
}

TEST(Circuit, ActiveQubits) {
  QuantumCircuit qc(5);
  qc.h(1).cx(1, 3);
  EXPECT_EQ(qc.active_qubits(), (std::vector<int>{1, 3}));
}

TEST(Circuit, ToStringMentionsGates) {
  QuantumCircuit qc(2, 2);
  qc.set_name("demo").h(0).cx(0, 1).measure(1, 0);
  const std::string s = qc.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("cx q0,q1"), std::string::npos);
  EXPECT_NE(s.find("-> c0"), std::string::npos);
}

// --------------------------------------------------------------- moments

TEST(Moments, AsapLayering) {
  QuantumCircuit qc(3);
  qc.h(0).h(1).cx(0, 1).h(2);
  const auto m = compute_moments(qc);
  EXPECT_EQ(m.moment_of[0], 0);
  EXPECT_EQ(m.moment_of[1], 0);
  EXPECT_EQ(m.moment_of[2], 1);  // cx waits for both h
  EXPECT_EQ(m.moment_of[3], 0);  // h(2) independent
  EXPECT_EQ(m.num_moments(), 2);
  EXPECT_EQ(m.instructions_per_moment[0].size(), 3u);
}

TEST(Moments, BarrierForcesOrdering) {
  QuantumCircuit qc(2);
  qc.h(0);
  qc.barrier();
  qc.h(1);
  const auto m = compute_moments(qc);
  EXPECT_EQ(m.moment_of[2], 1);  // h(1) pushed past the barrier
}

TEST(Moments, EmptyCircuit) {
  QuantumCircuit qc(2);
  const auto m = compute_moments(qc);
  EXPECT_EQ(m.num_moments(), 0);
}

TEST(Moments, FrontierMatchesSchedulerStateAtEveryPrefix) {
  QuantumCircuit qc(3);
  qc.h(0).h(1).cx(0, 1).h(2).cx(1, 2);
  const auto m = compute_moments(qc);
  // At the full prefix, each qubit's frontier is one past the last moment
  // it was busy in — the scheduler's own level array.
  const auto full = moment_frontier(qc, qc.size());
  for (std::size_t i = 0; i < qc.size(); ++i) {
    for (const int q : qc.instructions()[i].qubits) {
      EXPECT_GE(full[static_cast<std::size_t>(q)], m.moment_of[i] + 1);
    }
  }
  // Frontiers are monotone in the prefix, and an untouched wire stays 0.
  std::vector<int> prev(static_cast<std::size_t>(qc.num_qubits()), 0);
  for (std::size_t n = 0; n <= qc.size(); ++n) {
    const auto f = moment_frontier(qc, n);
    for (int q = 0; q < qc.num_qubits(); ++q) {
      EXPECT_GE(f[static_cast<std::size_t>(q)],
                prev[static_cast<std::size_t>(q)])
          << "prefix " << n << " qubit " << q;
      prev[static_cast<std::size_t>(q)] = f[static_cast<std::size_t>(q)];
    }
  }
  EXPECT_EQ(moment_frontier(qc, 1)[1], 0);  // h(1) not yet processed
}

TEST(Moments, SealedCountBoundsFutureInstructionPlacement) {
  QuantumCircuit qc(3);
  qc.h(0).h(1).cx(0, 1).h(2).cx(1, 2).h(0);
  const auto m = compute_moments(qc);
  const std::vector<int> all = {0, 1, 2};
  for (std::size_t split = 0; split <= qc.size(); ++split) {
    const int sealed = sealed_moment_count(qc, split, all);
    // The defining property: no instruction at or after the split is ever
    // scheduled into a sealed moment.
    for (std::size_t i = split; i < qc.size(); ++i) {
      EXPECT_GE(m.moment_of[i], sealed)
          << "instr " << i << " split " << split;
    }
    // And sealing is monotone in the split.
    if (split > 0) {
      EXPECT_GE(sealed, sealed_moment_count(qc, split - 1, all));
    }
  }
  EXPECT_EQ(sealed_moment_count(qc, 0, all), 0);
  // A qubit that idles forever holds the boundary at its frontier.
  const std::vector<int> with_idle = {0, 2};
  EXPECT_LE(sealed_moment_count(qc, 3, with_idle),
            sealed_moment_count(qc, 3, std::vector<int>{0}));
}

}  // namespace
}  // namespace qufi::circ
