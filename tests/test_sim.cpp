// Simulator tests: statevector, density matrix, unitary builder, and the
// statevector == density-matrix property on random circuits.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "algorithms/algorithms.hpp"
#include "circuit/circuit.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary.hpp"
#include "util/error.hpp"

namespace qufi::sim {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Statevector, InitializesToZeroState) {
  Statevector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(sv.probabilities()[0], 1.0, 1e-12);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, RejectsBadSizes) {
  EXPECT_THROW(Statevector(0), Error);
  EXPECT_THROW(Statevector(25), Error);
  EXPECT_THROW(Statevector::from_amplitudes({{1, 0}, {0, 0}, {0, 0}}), Error);
}

TEST(Statevector, HadamardSuperposition) {
  Statevector sv(1);
  sv.apply_matrix1(circ::gate_matrix1(circ::GateKind::H, {}), 0);
  const auto p = sv.probabilities();
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(Statevector, BellState) {
  circ::QuantumCircuit qc(2);
  qc.h(0).cx(0, 1);
  const auto sv = run_statevector(qc);
  const auto p = sv.probabilities();
  EXPECT_NEAR(p[0b00], 0.5, 1e-12);
  EXPECT_NEAR(p[0b11], 0.5, 1e-12);
  EXPECT_NEAR(p[0b01], 0.0, 1e-12);
  EXPECT_NEAR(p[0b10], 0.0, 1e-12);
}

TEST(Statevector, CxLittleEndianControl) {
  // X on q0 (control), then cx(0, 1) must flip q1: state |11> = index 3.
  circ::QuantumCircuit qc(2);
  qc.x(0).cx(0, 1);
  EXPECT_NEAR(run_statevector(qc).probabilities()[3], 1.0, 1e-12);
  // Control q1 = 0: no flip, state stays |01> = index 1.
  circ::QuantumCircuit qc2(2);
  qc2.x(0).cx(1, 0);
  EXPECT_NEAR(run_statevector(qc2).probabilities()[1], 1.0, 1e-12);
}

TEST(Statevector, SwapGate) {
  circ::QuantumCircuit qc(3);
  qc.x(0).swap(0, 2);
  EXPECT_NEAR(run_statevector(qc).probabilities()[0b100], 1.0, 1e-12);
}

TEST(Statevector, ToffoliTruthTable) {
  for (int input = 0; input < 8; ++input) {
    circ::QuantumCircuit qc(3);
    for (int b = 0; b < 3; ++b) {
      if ((input >> b) & 1) qc.x(b);
    }
    qc.ccx(0, 1, 2);
    const int expected = ((input & 3) == 3) ? (input ^ 4) : input;
    EXPECT_NEAR(run_statevector(qc).probabilities()[expected], 1.0, 1e-12)
        << "input " << input;
  }
}

TEST(Statevector, PhaseKickback) {
  // |-> target: cx control picks up a phase; verify via interference.
  circ::QuantumCircuit qc(2);
  qc.h(0).x(1).h(1).cx(0, 1).h(0);
  // f(x) = x: result on q0 should be |1>.
  const auto p = run_statevector(qc).probabilities();
  EXPECT_NEAR(p[0b01] + p[0b11], 1.0, 1e-12);
}

TEST(Statevector, MeasureCollapses) {
  util::Xoshiro256pp rng(5);
  Statevector sv(2);
  sv.apply_matrix1(circ::gate_matrix1(circ::GateKind::H, {}), 0);
  const int outcome = sv.measure_qubit(0, rng);
  EXPECT_NEAR(sv.probability_one(0), static_cast<double>(outcome), 1e-12);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, MeasureStatistics) {
  int ones = 0;
  for (int i = 0; i < 2000; ++i) {
    util::Xoshiro256pp rng(1000 + i);
    Statevector sv(1);
    sv.apply_matrix1(circ::gate_matrix1(circ::GateKind::H, {}), 0);
    ones += sv.measure_qubit(0, rng);
  }
  EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
}

TEST(Statevector, ResetForcesZero) {
  util::Xoshiro256pp rng(3);
  Statevector sv(1);
  sv.apply_matrix1(circ::gate_matrix1(circ::GateKind::X, {}), 0);
  sv.reset_qubit(0, rng);
  EXPECT_NEAR(sv.probabilities()[0], 1.0, 1e-12);
}

TEST(Statevector, FidelitySelfIsOne) {
  const auto bench = algo::ghz(3);
  circ::QuantumCircuit unitary_part(3);
  unitary_part.h(0).cx(0, 1).cx(1, 2);
  const auto sv = run_statevector(unitary_part);
  EXPECT_NEAR(sv.fidelity(sv), 1.0, 1e-12);
  EXPECT_NEAR(Statevector(3).fidelity(sv), 0.5, 1e-12);
}

TEST(Statevector, RunRejectsReset) {
  circ::QuantumCircuit qc(1, 1);
  qc.reset(0);
  EXPECT_THROW(run_statevector(qc), Error);
}

// ---------------------------------------------------- clbit mapping

TEST(ClbitMapping, SelectsMeasuredQubits) {
  circ::QuantumCircuit qc(3, 2);
  qc.x(2);
  qc.measure(2, 0);  // clbit 0 <- qubit 2 (which is |1>)
  qc.measure(0, 1);  // clbit 1 <- qubit 0 (|0>)
  const auto probs = ideal_clbit_probabilities(qc);
  EXPECT_NEAR(probs[0b01], 1.0, 1e-12);
}

TEST(ClbitMapping, LastMeasureWins) {
  circ::QuantumCircuit qc(2, 1);
  qc.x(1);
  qc.measure(0, 0);
  qc.measure(1, 0);  // overrides: clbit 0 reads qubit 1
  const auto probs = ideal_clbit_probabilities(qc);
  EXPECT_NEAR(probs[1], 1.0, 1e-12);
}

TEST(ClbitMapping, RequiresMeasurements) {
  circ::QuantumCircuit qc(1, 1);
  qc.h(0);
  const auto sv_probs = run_statevector(qc).probabilities();
  EXPECT_THROW(map_to_clbit_probs(sv_probs, qc), Error);
}

// ---------------------------------------------------- density matrix

TEST(DensityMatrix, PureStateAgreesWithStatevector) {
  circ::QuantumCircuit qc(2);
  qc.h(0).cx(0, 1).t(1);
  const auto sv = run_statevector(qc);
  DensityMatrix dm(2);
  for (const auto& instr : qc.instructions()) dm.apply_instruction(instr);
  const auto sp = sv.probabilities();
  const auto dp = dm.probabilities();
  for (std::size_t i = 0; i < sp.size(); ++i) EXPECT_NEAR(sp[i], dp[i], 1e-12);
  EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
  EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, FromStatevector) {
  circ::QuantumCircuit qc(2);
  qc.h(0);
  const auto sv = run_statevector(qc);
  const auto dm = DensityMatrix::from_statevector(sv);
  EXPECT_NEAR(dm.at(0, 1).real(), 0.5, 1e-12);  // coherence present
  EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, DepolarizingDrivesToMaximallyMixed) {
  DensityMatrix dm(1);
  // p = 3/4 is the fully-depolarizing point of our parametrization.
  util::Mat2 kraus_id = util::Mat2::identity() * util::cplx{0.5, 0};
  const auto x = circ::gate_matrix1(circ::GateKind::X, {});
  const auto y = circ::gate_matrix1(circ::GateKind::Y, {});
  const auto z = circ::gate_matrix1(circ::GateKind::Z, {});
  const std::vector<util::Mat2> kraus = {kraus_id, x * util::cplx{0.5, 0},
                                         y * util::cplx{0.5, 0},
                                         z * util::cplx{0.5, 0}};
  dm.apply_kraus1(kraus, 0);
  EXPECT_NEAR(dm.at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(dm.at(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(dm.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, CcxMatchesStatevector) {
  circ::QuantumCircuit qc(3);
  qc.h(0).h(1).ccx(0, 1, 2);
  const auto sv = run_statevector(qc);
  DensityMatrix dm(3);
  for (const auto& instr : qc.instructions()) dm.apply_instruction(instr);
  const auto sp = sv.probabilities();
  const auto dp = dm.probabilities();
  for (std::size_t i = 0; i < sp.size(); ++i) EXPECT_NEAR(sp[i], dp[i], 1e-12);
}

TEST(DensityMatrix, RejectsNonUnitaryInstruction) {
  DensityMatrix dm(1);
  EXPECT_THROW(
      dm.apply_instruction(circ::Instruction{circ::GateKind::Measure, {0}, {0}, {}}),
      Error);
}

// Property: statevector and density matrix agree on random circuits.
class SvDmEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SvDmEquivalence, ProbabilitiesMatch) {
  const auto qc = algo::random_circuit(4, 8, GetParam(), 0.3);
  const auto sv = run_statevector(qc);
  DensityMatrix dm(4);
  for (const auto& instr : qc.instructions()) {
    if (instr.kind == circ::GateKind::Barrier) continue;
    dm.apply_instruction(instr);
  }
  const auto sp = sv.probabilities();
  const auto dp = dm.probabilities();
  for (std::size_t i = 0; i < sp.size(); ++i) {
    EXPECT_NEAR(sp[i], dp[i], 1e-10) << "seed " << GetParam() << " idx " << i;
  }
  EXPECT_NEAR(dm.purity(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvDmEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------- unitary builder

TEST(Unitary, HadamardColumns) {
  circ::QuantumCircuit qc(1);
  qc.h(0);
  const auto u = unitary_of(qc);
  const double s = 1 / std::sqrt(2.0);
  EXPECT_NEAR(u.at(0, 0).real(), s, 1e-12);
  EXPECT_NEAR(u.at(1, 1).real(), -s, 1e-12);
}

TEST(Unitary, EqualUpToPhase) {
  circ::QuantumCircuit a(2);
  a.h(0).cx(0, 1);
  circ::QuantumCircuit b(2);
  // Same circuit with an extra global phase via rz pair.
  b.h(0).cx(0, 1).rz(kPi, 0).rz(-kPi, 0);
  EXPECT_TRUE(unitary_of(a).equal_up_to_phase(unitary_of(b), 1e-9));
}

TEST(Unitary, PermuteQubitsRelabels) {
  circ::QuantumCircuit qc(2);
  qc.x(0);
  const auto u = unitary_of(qc).permute_qubits({1, 0});
  circ::QuantumCircuit expected(2);
  expected.x(1);
  EXPECT_TRUE(u.equal_up_to_phase(unitary_of(expected), 1e-12));
}

TEST(Unitary, QftMatchesDftMatrix) {
  const int n = 3;
  const auto u = unitary_of(algo::qft_circuit(n));
  const double norm = 1.0 / std::sqrt(8.0);
  for (std::uint64_t x = 0; x < 8; ++x) {
    for (std::uint64_t y = 0; y < 8; ++y) {
      const double angle = 2 * kPi * static_cast<double>(x * y) / 8.0;
      EXPECT_NEAR(u.at(y, x).real(), norm * std::cos(angle), 1e-9);
      EXPECT_NEAR(u.at(y, x).imag(), norm * std::sin(angle), 1e-9);
    }
  }
}

// --------------------------------------------------- generic k-bit kernel

TEST(KernelMatrixK, MatchesDedicatedKernels) {
  // apply_matrix_k with k=1 and k=2 must agree with the specialized paths.
  util::Xoshiro256pp rng(77);
  std::vector<util::cplx> amps(32);
  for (auto& a : amps) a = util::cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto amps2 = amps;

  const auto h = circ::gate_matrix1(circ::GateKind::H, {});
  detail::apply_matrix1(std::span<util::cplx>(amps), h, 3);
  const int bits1[] = {3};
  detail::apply_matrix_k(std::span<util::cplx>(amps2), h.a, bits1);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    ASSERT_NEAR(std::abs(amps[i] - amps2[i]), 0.0, 1e-12);
  }

  const auto cx = circ::gate_matrix2(circ::GateKind::CX, {});
  detail::apply_matrix2(std::span<util::cplx>(amps), cx, 1, 4);
  const int bits2[] = {1, 4};
  detail::apply_matrix_k(std::span<util::cplx>(amps2), cx.a, bits2);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    ASSERT_NEAR(std::abs(amps[i] - amps2[i]), 0.0, 1e-12);
  }
}

TEST(KernelMatrixK, SparseDropIsHarmless) {
  // A matrix with explicit tiny entries must behave like one with zeros.
  std::array<util::cplx, 4> nearly_x{util::cplx{1e-15, 0}, util::cplx{1, 0},
                                     util::cplx{1, 0}, util::cplx{-1e-15, 0}};
  std::vector<util::cplx> amps(4, util::cplx{});
  amps[0] = 1.0;
  const int bits[] = {0};
  detail::apply_matrix_k(std::span<util::cplx>(amps), nearly_x, bits);
  EXPECT_NEAR(std::abs(amps[1] - util::cplx{1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amps[0]), 0.0, 1e-12);
}

// ---------------------------------------------------- distribution utils

TEST(Distributions, MarginalProbabilities) {
  circ::QuantumCircuit qc(3);
  qc.x(1).h(2);
  const auto probs = run_statevector(qc).probabilities();
  const int qubits[] = {1, 2};
  const auto marginal = marginal_probabilities(probs, qubits, 3);
  EXPECT_NEAR(marginal[0b01], 0.5, 1e-12);  // q1=1, q2=0
  EXPECT_NEAR(marginal[0b11], 0.5, 1e-12);  // q1=1, q2=1
}

TEST(Distributions, TvdAndHellinger) {
  const double p[] = {1.0, 0.0};
  const double q[] = {0.5, 0.5};
  EXPECT_NEAR(total_variation_distance(p, q), 0.5, 1e-12);
  EXPECT_NEAR(hellinger_fidelity(p, p), 1.0, 1e-12);
  EXPECT_NEAR(hellinger_fidelity(p, q), 0.5, 1e-12);
}

TEST(Distributions, ExpectationZ) {
  Statevector sv(1);
  EXPECT_NEAR(expectation_z(sv, 0), 1.0, 1e-12);
  sv.apply_matrix1(circ::gate_matrix1(circ::GateKind::X, {}), 0);
  EXPECT_NEAR(expectation_z(sv, 0), -1.0, 1e-12);
}

}  // namespace
}  // namespace qufi::sim
