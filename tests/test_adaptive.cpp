// Statistical-accuracy harness for the adaptive QVF estimator
// (docs/CAMPAIGNS.md "Adaptive estimation"). The headline property is
// pinned against committed exhaustive gold: on the paper circuits with
// full 15-degree sweeps on disk (tests/golden/{bv,dj}4q_single_15deg.csv),
// the default policy must land every per-point estimated grid-mean QVF
// within 0.01 of the exhaustive mean while evaluating at most 25% of the
// grid. Around it: the determinism contract (bit-identical across reruns,
// thread counts, and plan -> subset -> merge shard splits), budget
// monotonicity with prefix-nested sampling sequences, replay/engine
// agreement of the derived statistics, format round trips (columnar
// container, shard manifest, text partial), and the merger's refusal to
// mix adaptive and exhaustive shards or differing policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "core/adaptive.hpp"
#include "core/campaign.hpp"
#include "core/result_io.hpp"
#include "core/results.hpp"
#include "dist/manifest.hpp"
#include "dist/merge.hpp"
#include "dist/shard_plan.hpp"
#include "util/error.hpp"

namespace qufi {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("qufi_adaptive_" + tag + "_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str(const std::string& name) const {
    return (path / name).string();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The campaign behind tests/golden/<name>4q_single_15deg.csv: the paper
/// circuit at width 4 on fake_casablanca, full 15-degree grid (312 configs
/// per point), first 6 injection points. Byte-identical fixtures require
/// identical spec bits — change only together with the files.
CampaignSpec gold_spec(const std::string& name) {
  const auto bench = algo::paper_circuit(name, 4);
  CampaignSpec spec;
  spec.circuit = bench.circuit;
  spec.expected_outputs = bench.expected_outputs;
  spec.max_points = 6;
  return spec;
}

std::string gold_path(const std::string& name) {
  return std::string(QUFI_SOURCE_DIR) + "/tests/golden/" + name +
         "4q_single_15deg.csv";
}

/// Parses a campaign CSV's data rows into per-point exhaustive QVF means.
std::map<std::uint32_t, double> gold_point_means(const std::string& csv) {
  std::map<std::uint32_t, double> sum;
  std::map<std::uint32_t, std::uint64_t> count;
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // "# circuit,..." preamble
  std::getline(lines, line);  // column header
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::istringstream row(line);
    std::string field;
    while (std::getline(row, field, ',')) fields.push_back(field);
    if (fields.size() < 11) {
      ADD_FAILURE() << "short CSV row: " << line;
      continue;
    }
    const auto point = static_cast<std::uint32_t>(std::stoul(fields[0]));
    sum[point] += std::stod(fields[10]);  // qvf column
    ++count[point];
  }
  std::map<std::uint32_t, double> mean;
  for (const auto& [point, total] : sum) {
    mean[point] = total / static_cast<double>(count.at(point));
  }
  return mean;
}

void expect_record_bits(const InjectionRecord& a, const InjectionRecord& b,
                        std::size_t i) {
  EXPECT_EQ(a.point_index, b.point_index) << "record " << i;
  EXPECT_EQ(a.theta_index, b.theta_index) << "record " << i;
  EXPECT_EQ(a.phi_index, b.phi_index) << "record " << i;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.qvf),
            std::bit_cast<std::uint64_t>(b.qvf))
      << "record " << i;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.pa),
            std::bit_cast<std::uint64_t>(b.pa))
      << "record " << i;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.pb),
            std::bit_cast<std::uint64_t>(b.pb))
      << "record " << i;
}

void expect_results_identical(const CampaignResult& a, const CampaignResult& b,
                              const std::string& what) {
  ASSERT_EQ(a.records.size(), b.records.size()) << what;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    expect_record_bits(a.records[i], b.records[i], i);
    if (::testing::Test::HasFailure()) FAIL() << what;
  }
  ASSERT_EQ(a.point_estimates.size(), b.point_estimates.size()) << what;
  for (std::size_t p = 0; p < a.point_estimates.size(); ++p) {
    EXPECT_EQ(a.point_estimates[p].configs_evaluated,
              b.point_estimates[p].configs_evaluated)
        << what << " point " << p;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.point_estimates[p].ci_halfwidth),
              std::bit_cast<std::uint64_t>(b.point_estimates[p].ci_halfwidth))
        << what << " point " << p;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.point_estimates[p].est_qvf),
              std::bit_cast<std::uint64_t>(b.point_estimates[p].est_qvf))
        << what << " point " << p;
  }
}

// ---- committed exhaustive gold --------------------------------------------

TEST(AdaptiveGold, ExhaustiveFixturesAreFresh) {
  for (const std::string name : {"bv", "dj"}) {
    const auto result = run_single_fault_campaign(gold_spec(name));
    TempDir dir("gold_" + name);
    const auto fresh_path = dir.str("fresh.csv");
    result.write_csv(fresh_path);
    const std::string fresh = read_file(fresh_path);
    const std::string golden = read_file(gold_path(name));
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(fresh, golden)
        << "exhaustive campaign drifted from " << gold_path(name)
        << " — the adaptive accuracy criterion below would compare against "
           "a stale reference; regenerate the fixture";
  }
}

// The acceptance criterion: per-point |QVF_est - QVF_exhaustive| <= 0.01
// while evaluating <= 25% of the full (theta, phi) grid, on every circuit
// with committed exhaustive gold.
TEST(AdaptiveAccuracy, DefaultPolicyMeetsErrorAndBudgetOnGoldCircuits) {
  for (const std::string name : {"bv", "dj"}) {
    const std::string golden = read_file(gold_path(name));
    ASSERT_FALSE(golden.empty());
    std::map<std::uint32_t, double> exhaustive;
    ASSERT_NO_FATAL_FAILURE(exhaustive = gold_point_means(golden));

    auto spec = gold_spec(name);
    spec.adaptive = AdaptivePolicy{};  // the documented defaults
    const auto result = run_single_fault_campaign(spec);

    const std::uint64_t grid = spec.grid.num_configs();
    ASSERT_EQ(result.point_estimates.size(), exhaustive.size()) << name;
    std::uint64_t evaluated = 0;
    for (const auto& [point, mean] : exhaustive) {
      const auto& estimate = result.point_estimates[point];
      EXPECT_LE(std::abs(estimate.est_qvf - mean), 0.01)
          << name << " point " << point << ": estimated " << estimate.est_qvf
          << " vs exhaustive " << mean;
      EXPECT_LE(estimate.configs_evaluated, grid / 4)
          << name << " point " << point;
      evaluated += estimate.configs_evaluated;
    }
    EXPECT_LE(evaluated * 4, grid * exhaustive.size()) << name;
    EXPECT_GT(evaluated, 0u) << name;
  }
}

// ---- determinism contract -------------------------------------------------

TEST(AdaptiveDeterminism, RerunsAndThreadCountsAreBitIdentical) {
  auto spec = gold_spec("bv");
  spec.adaptive = AdaptivePolicy{};
  spec.threads = 1;
  const auto first = run_single_fault_campaign(spec);
  const auto rerun = run_single_fault_campaign(spec);
  expect_results_identical(first, rerun, "rerun");

  spec.threads = 4;
  const auto threaded = run_single_fault_campaign(spec);
  expect_results_identical(first, threaded, "threads 1 vs 4");

  TempDir dir("determinism");
  const auto a = dir.str("a.csv");
  const auto b = dir.str("b.csv");
  first.write_csv(a);
  threaded.write_csv(b);
  EXPECT_EQ(read_file(a), read_file(b));
}

TEST(AdaptiveDeterminism, RefinementSeedSelectsADifferentSample) {
  auto spec = gold_spec("bv");
  spec.max_points = 2;
  spec.adaptive = AdaptivePolicy{};
  const auto base = run_single_fault_campaign(spec);
  spec.adaptive->seed = 1;
  const auto reseeded = run_single_fault_campaign(spec);

  // The coarse lattice is seed-independent, but the per-round refinement
  // probes hash the policy seed, so the evaluated config sets must diverge.
  const auto sampled = [](const CampaignResult& result) {
    std::vector<std::uint64_t> configs;
    for (const auto& r : result.records) {
      configs.push_back((std::uint64_t{r.point_index} << 32) |
                        (static_cast<std::uint64_t>(r.phi_index) << 16) |
                        static_cast<std::uint64_t>(r.theta_index));
    }
    return configs;
  };
  EXPECT_NE(sampled(base), sampled(reseeded));
}

TEST(AdaptiveShardInvariance, PlanRunMergeMatchesSingleProcess) {
  auto spec = gold_spec("bv");
  spec.max_points = 8;
  spec.adaptive = AdaptivePolicy{};

  const auto single = run_single_fault_campaign(spec);
  TempDir dir("shards");
  const auto single_csv = dir.str("single.csv");
  single.write_csv(single_csv);
  const std::string single_bytes = read_file(single_csv);

  for (const std::uint32_t num_shards : {1u, 2u, 8u}) {
    const auto plan = dist::plan_campaign_shards(spec, num_shards);
    std::vector<CampaignResult> parts;
    for (const auto& assignment : plan.shards) {
      if (assignment.point_indices.empty()) continue;
      parts.push_back(
          run_single_fault_campaign_subset(spec, assignment.point_indices));
    }
    const auto merged = dist::merge_shard_results(parts);
    expect_results_identical(single, merged,
                             std::to_string(num_shards) + " shards");
    const auto merged_csv =
        dir.str("merged_" + std::to_string(num_shards) + ".csv");
    merged.write_csv(merged_csv);
    EXPECT_EQ(read_file(merged_csv), single_bytes)
        << num_shards << "-shard merge CSV differs from single-process run";
  }
}

// ---- budget monotonicity --------------------------------------------------

// The budget is strictly a stop condition: raising max_config_fraction can
// only extend the sampling sequence, never reorder it. Checked directly on
// the estimator with a synthetic surface (no simulator in the loop).
TEST(AdaptiveBudget, RaisingTheBudgetExtendsTheSampleInPlace) {
  FaultParamGrid grid;  // the full 15-degree default, 13 x 24
  const auto surface = [&](std::uint32_t rem) {
    const auto num_theta = static_cast<std::uint32_t>(grid.num_theta());
    const auto theta = static_cast<double>(rem % num_theta);
    const auto phi = static_cast<double>(rem / num_theta);
    // Smooth ramp plus one off-lattice ridge so refinement has work to do.
    return 0.4 + 0.3 * std::sin(theta / 3.0) * std::cos(phi / 5.0) +
           (theta == 7.0 ? 0.2 : 0.0);
  };

  std::vector<std::uint32_t> previous_sequence;
  std::uint64_t previous_evaluated = 0;
  for (const double fraction : {0.1, 0.15, 0.25, 0.4, 0.7, 1.0}) {
    // A budget covering the whole grid short-circuits to one exhaustive
    // batch in plain rem order — complete coverage, zero CI — so the
    // prefix-extension property is asserted among the genuinely adaptive
    // budgets only.
    const bool exhaustive =
        static_cast<std::uint64_t>(fraction * grid.num_configs()) >=
        static_cast<std::uint64_t>(grid.num_configs());
    AdaptivePolicy policy;
    policy.max_config_fraction = fraction;
    policy.qvf_ci_target = 0.0;  // never stop early: isolate the budget
    std::vector<std::uint32_t> sequence;
    const auto estimate = run_adaptive_point(
        grid, policy, /*campaign_seed=*/7, /*point_index=*/3,
        [&](std::span<const std::uint32_t> batch) {
          std::vector<double> qvf;
          for (const std::uint32_t rem : batch) {
            sequence.push_back(rem);
            qvf.push_back(surface(rem));
          }
          return qvf;
        });

    EXPECT_EQ(estimate.configs_evaluated, sequence.size());
    EXPECT_LE(estimate.configs_evaluated,
              adaptive_config_budget(grid, policy));
    EXPECT_GE(estimate.configs_evaluated, previous_evaluated)
        << "budget " << fraction << " evaluated fewer configs";
    ASSERT_GE(sequence.size(), previous_sequence.size());
    if (exhaustive) {
      EXPECT_EQ(sequence.size(),
                static_cast<std::size_t>(grid.num_configs()));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(estimate.ci_halfwidth),
                std::bit_cast<std::uint64_t>(0.0));
    } else {
      EXPECT_TRUE(std::equal(previous_sequence.begin(),
                             previous_sequence.end(), sequence.begin()))
          << "budget " << fraction
          << " is not a pure extension of the smaller budget's sequence";
      previous_sequence = sequence;
    }
    previous_evaluated = estimate.configs_evaluated;
  }

  // fraction 1.0 is the exhaustive degenerate case: every config, zero CI.
  EXPECT_EQ(previous_evaluated, grid.num_configs());
}

// ---- derived statistics ---------------------------------------------------

TEST(AdaptiveReplay, ReplayedEstimatesMatchTheEngine) {
  auto spec = gold_spec("dj");
  spec.max_points = 4;
  spec.adaptive = AdaptivePolicy{};
  const auto result = run_single_fault_campaign(spec);
  ASSERT_EQ(result.point_estimates.size(), result.points.size());

  for (std::size_t i = 0; i < result.records.size();) {
    std::size_t j = i;
    while (j < result.records.size() &&
           result.records[j].point_index == result.records[i].point_index) {
      ++j;
    }
    const std::span<const InjectionRecord> block(result.records.data() + i,
                                                 j - i);
    const auto point = result.records[i].point_index;
    const auto replayed = adaptive_point_estimate(result.meta, block);
    const auto& engine = result.point_estimates[point];
    EXPECT_EQ(replayed.configs_evaluated, engine.configs_evaluated)
        << "point " << point;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(replayed.ci_halfwidth),
              std::bit_cast<std::uint64_t>(engine.ci_halfwidth))
        << "point " << point;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(replayed.est_qvf),
              std::bit_cast<std::uint64_t>(engine.est_qvf))
        << "point " << point;
    i = j;
  }
}

// ---- validation -----------------------------------------------------------

TEST(AdaptiveValidation, RejectsBadPoliciesAndDoubleFaultCampaigns) {
  AdaptivePolicy policy;
  policy.max_config_fraction = 0.0;
  EXPECT_THROW(validate_adaptive_policy(policy), Error);
  policy.max_config_fraction = 1.5;
  EXPECT_THROW(validate_adaptive_policy(policy), Error);
  policy = AdaptivePolicy{};
  policy.qvf_ci_target = -0.001;
  EXPECT_THROW(validate_adaptive_policy(policy), Error);
  policy = AdaptivePolicy{};
  policy.min_configs_per_point = 0;
  EXPECT_THROW(validate_adaptive_policy(policy), Error);
  EXPECT_NO_THROW(validate_adaptive_policy(AdaptivePolicy{}));

  auto spec = gold_spec("bv");
  spec.max_points = 2;
  spec.adaptive = AdaptivePolicy{};
  EXPECT_THROW((void)run_double_fault_campaign(spec), Error);
  const std::size_t subset[] = {0, 1};
  EXPECT_THROW((void)run_double_fault_campaign_subset(spec, subset), Error);
}

// ---- format round trips ---------------------------------------------------

TEST(AdaptiveFormats, ColumnarContainerRoundTripsThePolicy) {
  auto spec = gold_spec("bv");
  spec.max_points = 2;
  spec.adaptive = AdaptivePolicy{};
  spec.adaptive->max_config_fraction = 0.3;
  spec.adaptive->qvf_ci_target = 0.002;
  spec.adaptive->min_configs_per_point = 40;
  spec.adaptive->seed = 99;
  const auto result = run_single_fault_campaign(spec);
  ASSERT_TRUE(result.meta.adaptive);

  TempDir dir("container");
  const auto path = dir.str("adaptive.qp");
  resio::ResultFileHeader header;
  header.expected_total_records = result.records.size();
  header.meta = result.meta;
  header.points = result.points;
  resio::write_result_file(path, header, result.records,
                           result.meta.executions, result.meta.injections);

  resio::ResultReader reader(path);
  EXPECT_TRUE(reader.header().meta.adaptive);
  EXPECT_EQ(reader.header().meta.adaptive_policy, *spec.adaptive);
}

TEST(AdaptiveFormats, ManifestAndTextPartialRoundTripThePolicy) {
  auto spec = gold_spec("dj");
  spec.max_points = 4;
  spec.adaptive = AdaptivePolicy{};
  spec.adaptive->qvf_ci_target = 0.004;
  spec.adaptive->seed = 17;

  const auto plan = dist::plan_campaign_shards(spec, 2);
  const auto manifests = dist::make_manifests(
      spec, "casablanca", dist::WorkerBackendKind::Density, plan, false);
  TempDir dir("manifest");
  for (const auto& manifest : manifests) {
    ASSERT_TRUE(manifest.adaptive.has_value());
    EXPECT_EQ(*manifest.adaptive, *spec.adaptive);
    // Adaptive record counts are decided at run time; the planner must not
    // pretend to know them.
    EXPECT_EQ(manifest.expected_records, 0u);
    const auto path =
        dir.str("shard_" + std::to_string(manifest.shard_index) + ".manifest");
    dist::save_manifest(manifest, path);
    const auto loaded = dist::load_manifest(path);
    ASSERT_TRUE(loaded.adaptive.has_value());
    EXPECT_EQ(*loaded.adaptive, *spec.adaptive);
    const auto respec = dist::manifest_to_spec(loaded);
    ASSERT_TRUE(respec.adaptive.has_value());
    EXPECT_EQ(*respec.adaptive, *spec.adaptive);
  }

  // Double-fault campaigns cannot be planned adaptively.
  EXPECT_THROW((void)dist::make_manifests(spec, "casablanca",
                                          dist::WorkerBackendKind::Density,
                                          plan, /*double_fault=*/true),
               Error);

  const auto result = run_single_fault_campaign(spec);
  dist::PartialResult partial;
  partial.meta = result.meta;
  partial.points = result.points;
  partial.records = result.records;
  const auto partial_path = dir.str("shard.partial.csv");
  dist::write_partial(partial_path, partial);
  const auto loaded = dist::read_partial(partial_path);
  EXPECT_TRUE(loaded.meta.adaptive);
  EXPECT_EQ(loaded.meta.adaptive_policy, *spec.adaptive);
}

// ---- merge policy enforcement ---------------------------------------------

TEST(AdaptiveMerge, RefusesMixedModesAndDifferingPolicies) {
  auto spec = gold_spec("bv");
  spec.max_points = 4;
  const std::size_t first[] = {0, 1};
  const std::size_t second[] = {2, 3};

  const auto exhaustive = run_single_fault_campaign_subset(spec, first);
  spec.adaptive = AdaptivePolicy{};
  const auto adaptive = run_single_fault_campaign_subset(spec, second);
  {
    const CampaignResult shards[] = {exhaustive, adaptive};
    try {
      (void)dist::merge_shard_results(shards);
      FAIL() << "merge accepted mixed adaptive/exhaustive shards";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("adaptive"), std::string::npos)
          << e.what();
    }
  }

  spec.adaptive->seed = 123;
  const auto reseeded = run_single_fault_campaign_subset(spec, first);
  {
    const CampaignResult shards[] = {reseeded, adaptive};
    try {
      (void)dist::merge_shard_results(shards);
      FAIL() << "merge accepted shards with differing adaptive policies";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("polic"), std::string::npos)
          << e.what();
    }
  }
}

}  // namespace
}  // namespace qufi
