// Repetition-code tests: the paper's QEC argument made executable. Single
// faults of the matching type are corrected; mismatched-type and
// double faults defeat the code.
#include <gtest/gtest.h>

#include <numbers>

#include "core/injection.hpp"
#include "core/qvf.hpp"
#include "noise/mitigation.hpp"
#include "qec/repetition_code.hpp"
#include "sim/statevector.hpp"
#include "util/error.hpp"

namespace qufi::qec {
namespace {

constexpr double kPi = std::numbers::pi;

double ideal_qvf_with_fault(const algo::AlgorithmCircuit& bench,
                            const PhaseShiftFault& fault, int qubit) {
  const InjectionPoint point{memory_window_index(bench.circuit), qubit,
                             qubit, 0};
  const auto faulty = inject_fault(bench.circuit, point, fault);
  const auto probs = sim::ideal_clbit_probabilities(faulty);
  const auto golden = golden_from_expected(bench.expected_outputs,
                                           bench.circuit.num_clbits());
  return compute_qvf(probs, golden);
}

double ideal_qvf_with_double_fault(const algo::AlgorithmCircuit& bench,
                                   const PhaseShiftFault& fault, int q0,
                                   int q1) {
  const InjectionPoint point{memory_window_index(bench.circuit), q0, q0, 0};
  const auto faulty =
      inject_double_fault(bench.circuit, point, fault, q1, fault);
  const auto probs = sim::ideal_clbit_probabilities(faulty);
  const auto golden = golden_from_expected(bench.expected_outputs,
                                           bench.circuit.num_clbits());
  return compute_qvf(probs, golden);
}

// ------------------------------------------------------- fault-free logic

class MemoryFaultFree
    : public ::testing::TestWithParam<std::tuple<Payload, CodeType>> {};

TEST_P(MemoryFaultFree, IdealOutputIsPayload) {
  const auto [payload, code] = GetParam();
  const auto bench = protected_memory(payload, code);
  const auto probs = sim::ideal_clbit_probabilities(bench.circuit);
  const auto golden = golden_from_expected(bench.expected_outputs, 1);
  EXPECT_NEAR(compute_qvf(probs, golden), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, MemoryFaultFree,
    ::testing::Combine(::testing::Values(Payload::Zero, Payload::One,
                                         Payload::Plus),
                       ::testing::Values(CodeType::None, CodeType::BitFlip,
                                         CodeType::PhaseFlip)));

// --------------------------------------------- single-fault correction

TEST(BitFlipCode, CorrectsSingleThetaPiFaultOnEveryQubit) {
  const auto bench = protected_memory(Payload::One, CodeType::BitFlip);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(ideal_qvf_with_fault(bench, {kPi, 0.0}, q), 0.0, 1e-9)
        << "qubit " << q;
  }
}

TEST(BitFlipCode, UnprotectedQubitFlips) {
  const auto bench = protected_memory(Payload::One, CodeType::None);
  EXPECT_NEAR(ideal_qvf_with_fault(bench, {kPi, 0.0}, 0), 1.0, 1e-9);
}

TEST(BitFlipCode, DoesNotCorrectPhaseFaultOnPlus) {
  const auto bench = protected_memory(Payload::Plus, CodeType::BitFlip);
  // Z-equivalent fault (phi = pi) on any single qubit flips the logical |+>.
  EXPECT_NEAR(ideal_qvf_with_fault(bench, {0.0, kPi}, 0), 1.0, 1e-9);
}

TEST(PhaseFlipCode, CorrectsSinglePhaseFaultOnEveryQubit) {
  const auto bench = protected_memory(Payload::Plus, CodeType::PhaseFlip);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(ideal_qvf_with_fault(bench, {0.0, kPi}, q), 0.0, 1e-9)
        << "qubit " << q;
  }
}

TEST(PhaseFlipCode, UnprotectedPlusDiesFromPhaseFault) {
  const auto bench = protected_memory(Payload::Plus, CodeType::None);
  EXPECT_NEAR(ideal_qvf_with_fault(bench, {0.0, kPi}, 0), 1.0, 1e-9);
}

TEST(PhaseFlipCode, CorrectsSingleThetaFaultOnComputationalPayload) {
  // theta = pi (a Y-like shift) acts as a correctable +/- flip in the
  // Hadamard frame: the phase code absorbs it on |1>_L.
  const auto bench = protected_memory(Payload::One, CodeType::PhaseFlip);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(ideal_qvf_with_fault(bench, {kPi, 0.0}, q), 0.0, 1e-9)
        << "qubit " << q;
  }
}

TEST(PhaseFlipCode, CorrectsSinglePhaseFaultOnComputationalPayload) {
  const auto bench = protected_memory(Payload::One, CodeType::PhaseFlip);
  EXPECT_NEAR(ideal_qvf_with_fault(bench, {0.0, kPi}, 1), 0.0, 1e-9);
}

TEST(BitFlipCode, PartialThetaFaultIsSuppressed) {
  // theta = pi/2 flips with probability 1/2 unprotected; the code reduces
  // the logical flip probability to ~p^2-ish terms.
  const auto plain = protected_memory(Payload::One, CodeType::None);
  const auto coded = protected_memory(Payload::One, CodeType::BitFlip);
  const double qvf_plain = ideal_qvf_with_fault(plain, {kPi / 2, 0.0}, 0);
  const double qvf_coded = ideal_qvf_with_fault(coded, {kPi / 2, 0.0}, 0);
  EXPECT_LT(qvf_coded, qvf_plain);
}

// ----------------------------------------------- double faults defeat QEC

TEST(DoubleFaults, DefeatBitFlipCode) {
  const auto bench = protected_memory(Payload::One, CodeType::BitFlip);
  for (const auto& [a, b] :
       {std::pair{0, 1}, std::pair{0, 2}, std::pair{1, 2}}) {
    EXPECT_NEAR(ideal_qvf_with_double_fault(bench, {kPi, 0.0}, a, b), 1.0,
                1e-9)
        << a << "," << b;
  }
}

TEST(DoubleFaults, DefeatPhaseFlipCode) {
  // Two Z faults = logical flip x weight-1 error: the decoder miscorrects
  // and the computational payload flips.
  const auto bench = protected_memory(Payload::One, CodeType::PhaseFlip);
  EXPECT_NEAR(ideal_qvf_with_double_fault(bench, {0.0, kPi}, 0, 1), 1.0,
              1e-9);
}

TEST(DoubleFaults, InvisibleOnLogicalXEigenstate) {
  // On |+>_L the logical-X component of a weight-2 Z error is invisible:
  // the decoder sees an effective weight-1 error and recovers. This is why
  // multi-qubit fault criticality is *state dependent* (paper: "the fault
  // criticality is circuit-dependent").
  const auto bench = protected_memory(Payload::Plus, CodeType::PhaseFlip);
  EXPECT_NEAR(ideal_qvf_with_double_fault(bench, {0.0, kPi}, 0, 1), 0.0,
              1e-9);
}

// ------------------------------------------------------ measured variant

class MeasuredMemory : public ::testing::TestWithParam<int> {};

TEST_P(MeasuredMemory, MajorityDecodesFaultFree) {
  const int distance = GetParam();
  for (auto payload : {Payload::Zero, Payload::One}) {
    const auto bench =
        repetition_memory_measured(distance, payload, CodeType::BitFlip);
    const auto probs = sim::ideal_clbit_probabilities(bench.circuit);
    const auto logical = decode_majority(probs, distance);
    EXPECT_NEAR(logical[payload == Payload::One ? 1 : 0], 1.0, 1e-9);
  }
}

TEST_P(MeasuredMemory, MajorityAbsorbsMinorityFlips) {
  const int distance = GetParam();
  const auto bench =
      repetition_memory_measured(distance, Payload::One, CodeType::BitFlip);
  // Flip (distance-1)/2 qubits: majority still reads 1.
  auto faulty = bench.circuit;
  // Insert X right after the barrier on the first (d-1)/2 qubits.
  const auto window = memory_window_index(bench.circuit);
  for (int q = 0; q < (distance - 1) / 2; ++q) {
    faulty = inject_fault(faulty, InjectionPoint{window, q, q, 0},
                          PhaseShiftFault{kPi, 0.0});
  }
  const auto probs = sim::ideal_clbit_probabilities(faulty);
  const auto logical = decode_majority(probs, distance);
  EXPECT_NEAR(logical[1], 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Distances, MeasuredMemory, ::testing::Values(1, 3, 5, 7));

TEST(MeasuredMemory, Validation) {
  EXPECT_THROW(repetition_memory_measured(2, Payload::One, CodeType::BitFlip),
               Error);
  EXPECT_THROW(repetition_memory_measured(3, Payload::Plus, CodeType::BitFlip),
               Error);
  EXPECT_THROW(repetition_memory_measured(3, Payload::One, CodeType::None),
               Error);
}

TEST(MajorityStrings, CountsAndMembership) {
  const auto ones = majority_strings(3, true);
  EXPECT_EQ(ones.size(), 4u);  // 011 101 110 111
  EXPECT_NE(std::find(ones.begin(), ones.end(), "110"), ones.end());
  const auto zeros = majority_strings(3, false);
  EXPECT_EQ(zeros.size(), 4u);
  EXPECT_NE(std::find(zeros.begin(), zeros.end(), "001"), zeros.end());
}

TEST(DecodeMajority, SplitsDistribution) {
  const std::vector<double> probs{0.1, 0.2, 0.3, 0.0, 0.2, 0.0, 0.1, 0.1};
  const auto logical = decode_majority(probs, 3);
  // Majority-one states: 3 (011), 5 (101), 6 (110), 7 (111).
  EXPECT_NEAR(logical[1], 0.0 + 0.0 + 0.1 + 0.1, 1e-12);
  EXPECT_NEAR(logical[0] + logical[1], 1.0, 1e-12);
}

// ---------------------------------------------------- readout mitigation

TEST(Mitigation, InvertsKnownConfusion) {
  // Apply readout error, then mitigate: should recover the original.
  std::vector<double> truth{0.7, 0.1, 0.05, 0.15};
  auto observed = truth;
  const int clbits[] = {0, 1};
  const noise::ReadoutError errors[] = {{0.02, 0.05}, {0.03, 0.04}};
  noise::apply_readout_error(observed, clbits, errors);
  const auto mitigated = noise::mitigate_readout(observed, clbits, errors);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(mitigated[i], truth[i], 1e-10) << i;
  }
}

TEST(Mitigation, ClipsNegativeQuasiProbabilities) {
  // Over-aggressive mitigation of a distribution that never saw the error.
  const std::vector<double> observed{1.0, 0.0};
  const int clbits[] = {0};
  const noise::ReadoutError errors[] = {{0.2, 0.2}};
  const auto mitigated = noise::mitigate_readout(observed, clbits, errors);
  EXPECT_GE(mitigated[1], 0.0);
  EXPECT_NEAR(mitigated[0] + mitigated[1], 1.0, 1e-12);
}

TEST(Mitigation, RejectsSingularConfusion) {
  const std::vector<double> observed{0.5, 0.5};
  const int clbits[] = {0};
  const noise::ReadoutError errors[] = {{0.5, 0.5}};
  EXPECT_THROW(noise::mitigate_readout(observed, clbits, errors), Error);
}

}  // namespace
}  // namespace qufi::qec
