// Property test for the incremental (prefix) merge behind the dispatcher's
// live progress view (docs/DISPATCHER.md): for random shard completion
// orders and random kill schedules — a writer abandoned mid-stream with a
// torn frame on disk, a retry attempt re-emitting the whole shard in a
// different order — every streamed merge prefix must be a bit-exact prefix
// of the final merged output, the frontier must never move backwards, and
// once every attempt seals, the prefix must converge to the complete merged
// record sequence. Campaigns are the bv/dj 2-shard quick specs; the shard
// records are computed once in memory and replayed through Live-mode
// ResultWriters, so the property sweep itself is pure I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "core/campaign.hpp"
#include "core/result_io.hpp"
#include "dist/merge.hpp"
#include "dist/shard_plan.hpp"
#include "util/error.hpp"

namespace qufi {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("qufi_prefix_" + tag + "_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str(const std::string& name) const {
    return (path / name).string();
  }
};

CampaignSpec quick_spec(const std::string& name, int width) {
  const auto bench = algo::paper_circuit(name, width);
  CampaignSpec spec;
  spec.circuit = bench.circuit;
  spec.expected_outputs = bench.expected_outputs;
  spec.grid.theta_step_deg = 60.0;
  spec.grid.phi_step_deg = 90.0;
  spec.threads = 2;
  return spec;
}

void expect_record_bits(const InjectionRecord& a, const InjectionRecord& b,
                        std::size_t i) {
  EXPECT_EQ(a.point_index, b.point_index) << "record " << i;
  EXPECT_EQ(a.theta_index, b.theta_index) << "record " << i;
  EXPECT_EQ(a.phi_index, b.phi_index) << "record " << i;
  EXPECT_EQ(a.neighbor_qubit, b.neighbor_qubit) << "record " << i;
  EXPECT_EQ(a.theta1_index, b.theta1_index) << "record " << i;
  EXPECT_EQ(a.phi1_index, b.phi1_index) << "record " << i;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.qvf),
            std::bit_cast<std::uint64_t>(b.qvf))
      << "record " << i;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.pa),
            std::bit_cast<std::uint64_t>(b.pa))
      << "record " << i;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.pb),
            std::bit_cast<std::uint64_t>(b.pb))
      << "record " << i;
}

/// One shard's in-memory execution, sliced per owned point for replay.
struct ShardData {
  std::vector<std::size_t> owned;  // global point indices, ascending
  std::vector<std::vector<InjectionRecord>> slices;  // per owned point
  resio::ResultFileHeader header;
};

/// One attempt file being replayed: a Live writer plus the shuffled order
/// in which it emits its shard's points.
struct Attempt {
  std::size_t shard = 0;
  std::string path;
  std::unique_ptr<resio::ResultWriter> writer;
  std::vector<std::size_t> order;  // positions into ShardData::slices
  std::size_t next = 0;
  bool sealed = false;
  std::uint64_t written = 0;
};

/// The ground truth plus everything the replay needs, built once per
/// circuit (the expensive part) and shared across trials.
struct Campaign {
  CampaignResult merged;
  std::vector<ShardData> shards;
  /// records with point_index < f, i.e. the expected prefix size at
  /// frontier f (merged.records is sorted by point index).
  std::vector<std::size_t> prefix_size;
};

Campaign build_campaign(const std::string& circuit) {
  const auto spec = quick_spec(circuit, 4);
  const auto plan =
      dist::plan_campaign_shards(spec, 2, dist::ShardPolicy::CostWeighted);

  Campaign campaign;
  std::vector<CampaignResult> results;
  for (const auto& assignment : plan.shards) {
    results.push_back(
        run_single_fault_campaign_subset(spec, assignment.point_indices));
  }
  campaign.merged = dist::merge_shard_results(results);

  for (std::size_t i = 0; i < results.size(); ++i) {
    ShardData shard;
    shard.owned = plan.shards[i].point_indices;
    shard.slices.resize(shard.owned.size());
    for (std::size_t k = 0; k < shard.owned.size(); ++k) {
      const auto point = static_cast<std::uint32_t>(shard.owned[k]);
      for (const InjectionRecord& r : results[i].records) {
        if (r.point_index == point) shard.slices[k].push_back(r);
      }
    }
    shard.header.shard_index = static_cast<std::uint32_t>(i);
    shard.header.shard_count = static_cast<std::uint32_t>(results.size());
    shard.header.expected_total_records = campaign.merged.records.size();
    shard.header.meta = results[i].meta;
    shard.header.points = results[i].points;
    campaign.shards.push_back(std::move(shard));
  }

  campaign.prefix_size.assign(campaign.merged.points.size() + 1, 0);
  for (const InjectionRecord& r : campaign.merged.records) {
    ++campaign.prefix_size[r.point_index + 1];
  }
  std::partial_sum(campaign.prefix_size.begin(), campaign.prefix_size.end(),
                   campaign.prefix_size.begin());
  return campaign;
}

/// The property itself, asserted after every replay event.
void check_prefix(const Campaign& campaign,
                  const std::vector<dist::PrefixMergeInput>& inputs,
                  std::uint32_t& last_frontier, const std::string& where) {
  const auto view = dist::merge_result_prefix(inputs);
  ASSERT_GE(view.frontier, last_frontier) << where << ": frontier regressed";
  last_frontier = view.frontier;
  ASSERT_LE(view.frontier, campaign.merged.points.size()) << where;
  ASSERT_EQ(view.records.size(), campaign.prefix_size[view.frontier])
      << where << ": prefix size disagrees with the frontier";
  for (std::size_t i = 0; i < view.records.size(); ++i) {
    expect_record_bits(view.records[i], campaign.merged.records[i], i);
    if (::testing::Test::HasFailure()) FAIL() << where;
  }
}

std::vector<std::size_t> shuffled_order(std::size_t n, std::mt19937_64& rng) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

Attempt start_attempt(const Campaign& campaign, std::size_t shard,
                      const std::string& path, std::mt19937_64& rng) {
  Attempt attempt;
  attempt.shard = shard;
  attempt.path = path;
  attempt.order = shuffled_order(campaign.shards[shard].slices.size(), rng);
  // One point per block: the finest streaming granularity, so every single
  // replay step moves the observable state of the file.
  attempt.writer = std::make_unique<resio::ResultWriter>(
      path, campaign.shards[shard].header, /*block_records=*/1,
      resio::WriteMode::Live);
  return attempt;
}

void replay_trial(const Campaign& campaign, const TempDir& dir,
                  const std::string& tag, std::uint64_t seed, bool with_kill) {
  std::mt19937_64 rng(seed);
  std::vector<dist::PrefixMergeInput> inputs;
  std::vector<Attempt> attempts;
  for (std::size_t shard = 0; shard < campaign.shards.size(); ++shard) {
    const std::string path =
        dir.str(tag + "_s" + std::to_string(shard) + "_a1.qp");
    inputs.push_back({path, campaign.shards[shard].owned});
    attempts.push_back(start_attempt(campaign, shard, path, rng));
  }

  // Kill shard 0's first attempt after this many of its appends, leaving a
  // torn frame on disk, then start a retry attempt in a fresh order.
  const std::size_t kill_after =
      with_kill ? rng() % (campaign.shards[0].slices.size() + 1)
                : std::size_t(-1);
  bool killed = false;

  std::uint32_t last_frontier = 0;
  check_prefix(campaign, inputs, last_frontier, tag + " (empty files)");

  std::uniform_int_distribution<std::size_t> pick(0, 1'000'000);
  for (;;) {
    // Candidates: attempts that still have points to append or a seal
    // pending. The killed attempt is out of the pool forever.
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      if (attempts[i].writer != nullptr && !attempts[i].sealed) {
        live.push_back(i);
      }
    }
    if (live.empty()) break;
    Attempt& attempt = attempts[live[pick(rng) % live.size()]];
    const ShardData& shard = campaign.shards[attempt.shard];

    if (!killed && attempt.shard == 0 && attempt.next >= kill_after) {
      // SIGKILL mid-stream: destroy the writer (the Live file stays, end
      // marker missing), then append the first bytes of a frame the worker
      // never finished — a torn tail the Tail readers must step over.
      killed = true;
      attempt.writer.reset();
      {
        std::ofstream torn(attempt.path,
                           std::ios::binary | std::ios::app);
        const char partial_frame[3] = {'B', 0x40, 0x00};
        torn.write(partial_frame, sizeof partial_frame);
      }
      check_prefix(campaign, inputs, last_frontier, tag + " (after kill)");

      // The retry's input is visible before its writer exists: the merge
      // must count it unreadable and keep going.
      const std::string retry_path = dir.str(tag + "_s0_a2.qp");
      inputs.push_back({retry_path, shard.owned});
      const auto view = dist::merge_result_prefix(inputs);
      EXPECT_GE(view.unreadable_inputs, 1u) << tag;
      attempts.push_back(start_attempt(campaign, 0, retry_path, rng));
      check_prefix(campaign, inputs, last_frontier, tag + " (retry started)");
      continue;
    }

    if (attempt.next < attempt.order.size()) {
      const auto& slice = shard.slices[attempt.order[attempt.next]];
      attempt.writer->append(slice);
      attempt.written += slice.size();
      ++attempt.next;
    } else {
      attempt.writer->finish(attempt.written, attempt.written);
      attempt.sealed = true;
    }
    check_prefix(campaign, inputs, last_frontier, tag + " (replay step)");
  }

  // Everything sealed (except the killed attempt): the prefix must have
  // converged to the complete merged record sequence.
  const auto final_view = dist::merge_result_prefix(inputs);
  EXPECT_TRUE(final_view.complete) << tag;
  EXPECT_EQ(final_view.frontier, campaign.merged.points.size()) << tag;
  EXPECT_EQ(final_view.records.size(), campaign.merged.records.size()) << tag;
  // Two sealed files either way: without a kill both first attempts seal;
  // with one, the killed attempt stays unsealed and the retry seals instead.
  EXPECT_EQ(final_view.sealed_inputs, 2u) << tag;
  EXPECT_EQ(final_view.unreadable_inputs, 0u) << tag;
}

void run_property(const std::string& circuit) {
  TempDir dir(circuit);
  const Campaign campaign = build_campaign(circuit);
  ASSERT_GE(campaign.merged.points.size(), 4u);
  ASSERT_EQ(campaign.shards.size(), 2u);

  int trial = 0;
  for (const std::uint64_t seed :
       {0x51754649ull, 0xDEADBEEFull, 0xA5A5A5A5ull, 0x0Full}) {
    for (const bool with_kill : {false, true}) {
      replay_trial(campaign, dir,
                   circuit + "_t" + std::to_string(trial++), seed, with_kill);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Adaptive campaigns ride the same recombination machinery: for random
// shard emission orders, random merge input orders, and a duplicate retry
// attempt re-emitting a whole shard, the streaming file merge's CSV must
// stay byte-identical to the single-process adaptive run's write_csv —
// including the derived per-point estimate columns, which every exporter
// recomputes by replay.
TEST(MergePrefix, AdaptiveShardSchedulesMergeToTheSingleProcessCsv) {
  auto spec = quick_spec("bv", 4);
  spec.grid = FaultParamGrid{};  // full 15-degree grid: room to adapt
  spec.max_points = 6;
  spec.adaptive = AdaptivePolicy{};

  TempDir dir("adaptive_csv");
  const auto single = run_single_fault_campaign(spec);
  const auto single_csv = dir.str("single.csv");
  single.write_csv(single_csv);
  std::string single_bytes;
  {
    std::ifstream in(single_csv, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    single_bytes = buffer.str();
  }
  ASSERT_FALSE(single_bytes.empty());

  const auto plan =
      dist::plan_campaign_shards(spec, 2, dist::ShardPolicy::CostWeighted);
  std::vector<CampaignResult> results;
  for (const auto& assignment : plan.shards) {
    results.push_back(
        run_single_fault_campaign_subset(spec, assignment.point_indices));
  }

  int trial = 0;
  for (const std::uint64_t seed : {0x5EEDull, 0xCAFEull, 0xF00Dull}) {
    std::mt19937_64 rng(seed);
    std::vector<std::string> inputs;
    // Attempt 0 and 1 are the two shards; attempt 2 is a bit-exact retry
    // of a random shard (the duplicate schedule the merger must collapse).
    const std::size_t retried = rng() % results.size();
    for (std::size_t a = 0; a < 3; ++a) {
      const std::size_t shard = a < 2 ? a : retried;
      const auto& result = results[shard];
      resio::ResultFileHeader header;
      header.shard_index = static_cast<std::uint32_t>(shard);
      header.shard_count = 2;
      header.expected_total_records = 0;  // adaptive: decided at run time
      header.meta = result.meta;
      header.points = result.points;
      const auto path = dir.str("t" + std::to_string(trial) + "_a" +
                                std::to_string(a) + ".qp");
      resio::ResultWriter writer(path, header, /*block_records=*/1,
                                 resio::WriteMode::Live);
      // Emit whole points in a shuffled order — blocks never split points,
      // so any emission order is a valid worker schedule.
      std::vector<std::vector<InjectionRecord>> slices;
      for (std::size_t i = 0; i < result.records.size();) {
        std::size_t j = i;
        while (j < result.records.size() &&
               result.records[j].point_index ==
                   result.records[i].point_index) {
          ++j;
        }
        slices.emplace_back(result.records.begin() + i,
                            result.records.begin() + j);
        i = j;
      }
      for (const std::size_t k : shuffled_order(slices.size(), rng)) {
        writer.append(slices[k]);
      }
      writer.finish(result.meta.executions, result.meta.injections);
      inputs.push_back(path);
    }

    std::shuffle(inputs.begin(), inputs.end(), rng);
    const auto merged_csv = dir.str("t" + std::to_string(trial) + ".csv");
    const auto stats = dist::merge_result_files_to_csv(inputs, merged_csv);
    EXPECT_GT(stats.duplicate_records, 0u) << "trial " << trial;
    std::ifstream in(merged_csv, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), single_bytes)
        << "trial " << trial << " (retry of shard " << retried << ")";
    ++trial;
  }
}

TEST(MergePrefix, RandomOrdersAndKillsYieldBitExactPrefixesBv) {
  run_property("bv");
}

TEST(MergePrefix, RandomOrdersAndKillsYieldBitExactPrefixesDj) {
  run_property("dj");
}

}  // namespace
}  // namespace qufi
