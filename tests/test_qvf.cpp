// QVF metric tests: contrast algebra, golden outputs, classification.
#include <gtest/gtest.h>

#include "algorithms/algorithms.hpp"
#include "core/fault_model.hpp"
#include "core/qvf.hpp"
#include "util/error.hpp"

namespace qufi {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ------------------------------------------------------------- contrast

TEST(Contrast, PaperEquationValues) {
  EXPECT_DOUBLE_EQ(michelson_contrast(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(michelson_contrast(0.0, 1.0), -1.0);
  EXPECT_DOUBLE_EQ(michelson_contrast(0.5, 0.5), 0.0);
  EXPECT_NEAR(michelson_contrast(0.901, 0.043), (0.901 - 0.043) / 0.944,
              1e-12);
  EXPECT_DOUBLE_EQ(michelson_contrast(0.0, 0.0), 0.0);  // defined as 0
  EXPECT_THROW(michelson_contrast(-0.5, 0.1), Error);
}

TEST(Qvf, RangeMapping) {
  // Perfect output -> QVF 0; fully wrong -> 1; ambiguous -> 0.5.
  EXPECT_DOUBLE_EQ(qvf_from_contrast(1.0), 0.0);
  EXPECT_DOUBLE_EQ(qvf_from_contrast(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(qvf_from_contrast(0.0), 0.5);
  EXPECT_THROW(qvf_from_contrast(1.5), Error);
}

TEST(Qvf, PaperFig4Example) {
  // Fig. 4: fault-free P(A)=0.901, highest wrong 0.043 -> low QVF;
  // faulty P(A)=0.169, P(B)=0.763 -> high QVF.
  const double qvf_ok =
      qvf_from_contrast(michelson_contrast(0.901, 0.043));
  const double qvf_bad =
      qvf_from_contrast(michelson_contrast(0.169, 0.763));
  EXPECT_LT(qvf_ok, 0.05);
  EXPECT_GT(qvf_bad, 0.8);
}

TEST(Qvf, Classification) {
  EXPECT_EQ(classify_qvf(0.1), FaultImpact::Masked);
  EXPECT_EQ(classify_qvf(0.5), FaultImpact::Dubious);
  EXPECT_EQ(classify_qvf(0.9), FaultImpact::SilentError);
  EXPECT_STREQ(to_string(FaultImpact::Masked), "masked");
  EXPECT_STREQ(to_string(FaultImpact::Dubious), "dubious");
  EXPECT_STREQ(to_string(FaultImpact::SilentError), "silent-error");
}

// --------------------------------------------------------------- golden

TEST(Golden, ComputedFromIdealSimulation) {
  const auto bench = algo::bernstein_vazirani(4, 0b011);
  const auto golden = compute_golden(bench.circuit);
  ASSERT_EQ(golden.correct_states.size(), 1u);
  EXPECT_EQ(golden.correct_states[0], 0b011u);
  EXPECT_TRUE(golden.is_correct(0b011));
  EXPECT_FALSE(golden.is_correct(0b111));
}

TEST(Golden, MultiStateGhz) {
  const auto bench = algo::ghz(3);
  const auto golden = compute_golden(bench.circuit);
  ASSERT_EQ(golden.correct_states.size(), 2u);
  EXPECT_TRUE(golden.is_correct(0b000));
  EXPECT_TRUE(golden.is_correct(0b111));
}

TEST(Golden, AgreesWithAnalyticalExpectations) {
  for (const char* name : {"bv", "dj", "qft"}) {
    for (int width : {4, 5, 6, 7}) {
      const auto bench = algo::paper_circuit(name, width);
      const auto computed = compute_golden(bench.circuit);
      const auto declared = golden_from_expected(bench.expected_outputs,
                                                 bench.circuit.num_clbits());
      EXPECT_EQ(computed.correct_states, declared.correct_states)
          << name << " width " << width;
    }
  }
}

TEST(Golden, FromExpectedValidation) {
  const std::string bits[] = {std::string("10")};
  const auto golden = golden_from_expected(bits, 2);
  EXPECT_TRUE(golden.is_correct(0b10));
  const std::string wrong_width[] = {std::string("101")};
  EXPECT_THROW(golden_from_expected(wrong_width, 2), Error);
  EXPECT_THROW(golden_from_expected({}, 2), Error);
}

TEST(Golden, TieToleranceValidated) {
  const auto bench = algo::ghz(2);
  EXPECT_THROW(compute_golden(bench.circuit, 0.0), Error);
  EXPECT_THROW(compute_golden(bench.circuit, 1.5), Error);
}

// ----------------------------------------------------------- compute_qvf

TEST(ComputeQvf, PerfectAndWorstDistributions) {
  const std::string bits[] = {std::string("11")};
  const auto golden = golden_from_expected(bits, 2);
  const std::vector<double> perfect{0, 0, 0, 1.0};
  EXPECT_NEAR(compute_qvf(perfect, golden), 0.0, 1e-12);
  const std::vector<double> worst{1.0, 0, 0, 0};
  EXPECT_NEAR(compute_qvf(worst, golden), 1.0, 1e-12);
  const std::vector<double> ambiguous{0.5, 0, 0, 0.5};
  EXPECT_NEAR(compute_qvf(ambiguous, golden), 0.5, 1e-12);
}

TEST(ComputeQvf, AggregatesMultipleCorrectStates) {
  const std::string bits[] = {std::string("00"), std::string("11")};
  const auto golden = golden_from_expected(bits, 2);
  // Split between the two correct states: P(A)=0.9, P(B)=0.1.
  const std::vector<double> probs{0.45, 0.1, 0.0, 0.45};
  EXPECT_NEAR(compute_qvf(probs, golden),
              qvf_from_contrast(michelson_contrast(0.9, 0.1)), 1e-12);
}

TEST(ComputeQvf, SizeMismatchThrows) {
  const std::string bits[] = {std::string("0")};
  const auto golden = golden_from_expected(bits, 1);
  const std::vector<double> probs{1.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(compute_qvf(probs, golden), Error);
}

// ------------------------------------------------------------ fault model

TEST(FaultModel, PaperGridIs312Configurations) {
  const FaultParamGrid grid;  // defaults = paper values
  EXPECT_EQ(grid.num_theta(), 13);
  EXPECT_EQ(grid.num_phi(), 24);
  EXPECT_EQ(grid.num_configs(), 312);
  EXPECT_EQ(grid.enumerate().size(), 312u);
}

TEST(FaultModel, GridValuesAndOrdering) {
  const FaultParamGrid grid;
  EXPECT_DOUBLE_EQ(grid.theta_at(0), 0.0);
  EXPECT_NEAR(grid.theta_at(12), kPi, 1e-12);
  EXPECT_NEAR(grid.phi_at(23), 2 * kPi - kPi / 12, 1e-12);
  const auto faults = grid.enumerate();
  EXPECT_TRUE(faults[0].is_identity());
  EXPECT_NEAR(faults[1].theta, kPi / 12, 1e-12);  // theta-major within phi
}

TEST(FaultModel, RestrictedPhiGridIncludesEndpoint) {
  FaultParamGrid grid;
  grid.phi_max_deg = 180.0;  // the paper's double-fault restriction
  EXPECT_EQ(grid.num_phi(), 13);
  EXPECT_NEAR(grid.phi_at(12), kPi, 1e-12);
}

TEST(FaultModel, CoarseGridForBenches) {
  FaultParamGrid grid;
  grid.theta_step_deg = 30.0;
  grid.phi_step_deg = 30.0;
  EXPECT_EQ(grid.num_theta(), 7);
  EXPECT_EQ(grid.num_phi(), 12);
}

TEST(FaultModel, Validation) {
  FaultParamGrid bad;
  bad.theta_step_deg = 7.0;  // does not divide 180
  EXPECT_THROW(bad.validate(), Error);
  bad = FaultParamGrid{};
  bad.phi_step_deg = -15.0;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(FaultModel, InstructionIsUGateWithLambdaZero) {
  const PhaseShiftFault fault{kPi / 4, kPi / 2};
  const auto instr = fault.as_instruction(2);
  EXPECT_EQ(instr.kind, circ::GateKind::U);
  EXPECT_EQ(instr.qubits[0], 2);
  ASSERT_EQ(instr.params.size(), 3u);
  EXPECT_DOUBLE_EQ(instr.params[0], kPi / 4);
  EXPECT_DOUBLE_EQ(instr.params[1], kPi / 2);
  EXPECT_DOUBLE_EQ(instr.params[2], 0.0);
}

TEST(Golden, IndexedMembershipMatchesLinearScan) {
  GoldenOutput golden;
  golden.num_clbits = 10;
  golden.ideal_probs.assign(1u << 10, 0.0);
  golden.correct_states = {0, 5, 513, 1023};
  for (const auto s : golden.correct_states) golden.ideal_probs[s] = 0.25;

  // Without an index, is_correct falls back to the linear scan; building
  // the mask must not change any answer over the full state space.
  std::vector<bool> linear(1u << 10, false);
  for (std::uint64_t s = 0; s < (1u << 10); ++s) linear[s] = golden.is_correct(s);
  golden.build_index();
  for (std::uint64_t s = 0; s < (1u << 10); ++s) {
    ASSERT_EQ(golden.is_correct(s), linear[s]) << "state " << s;
  }
  // States beyond the clbit space are never correct.
  EXPECT_FALSE(golden.is_correct(1u << 10));
  EXPECT_FALSE(golden.is_correct(~0ULL));
}

TEST(Golden, BuildIndexRejectsOutOfSpaceStates) {
  GoldenOutput golden;
  golden.num_clbits = 3;
  golden.ideal_probs.assign(8, 0.0);
  golden.correct_states = {9};  // outside 2^3
  EXPECT_THROW(golden.build_index(), Error);
}

TEST(SplitProbabilities, MatchesComputeQvf) {
  const auto bench = algo::ghz(3);
  const auto golden = compute_golden(bench.circuit);
  std::vector<double> probs(golden.ideal_probs.size(), 0.0);
  probs[0] = 0.6;
  probs[3] = 0.3;
  probs[7] = 0.1;
  const auto split = split_probabilities(probs, golden);
  EXPECT_NEAR(split.pa, 0.7, 1e-12);  // GHZ correct states: 000 and 111
  EXPECT_NEAR(split.pb, 0.3, 1e-12);
  EXPECT_NEAR(compute_qvf(probs, golden),
              qvf_from_contrast(michelson_contrast(split.pa, split.pb)),
              1e-15);
}

TEST(FaultModel, GateEquivalentFaults) {
  const auto faults = gate_equivalent_faults();
  ASSERT_EQ(faults.size(), 4u);
  EXPECT_EQ(faults[0].name, "t");
  EXPECT_NEAR(faults[0].fault.phi, kPi / 4, 1e-12);
  EXPECT_EQ(faults[2].name, "z");
  EXPECT_NEAR(faults[2].fault.phi, kPi, 1e-12);
  EXPECT_EQ(faults[3].name, "y");
  EXPECT_NEAR(faults[3].fault.theta, kPi, 1e-12);
}

}  // namespace
}  // namespace qufi
