// Golden-CSV regression: a tiny bv-2q single-fault campaign, committed at
// tests/golden/bv2q_single.csv, diffed byte-exact against a fresh run.
// This pins the full CLI-facing output contract in one shot — the metadata
// header comment, the column schema documented in README ("Campaign CSV
// schema"), the %.17g number formatting, and the canonical point-ascending
// row order — so an accidental schema or determinism change fails loudly
// with a file-level diff instead of surfacing downstream in someone's
// parsing pipeline. check.sh runs the same diff through the real qufi_cli
// binary; this test keeps the property in the tier-1 suite.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "algorithms/algorithms.hpp"
#include "core/campaign.hpp"

namespace qufi {
namespace {

/// The campaign behind the committed file — byte-identical output requires
/// identical spec bits, so change these only together with the fixture.
CampaignSpec golden_spec() {
  const auto bench = algo::paper_circuit("bv", 2);
  CampaignSpec spec;
  spec.circuit = bench.circuit;
  spec.expected_outputs = bench.expected_outputs;
  spec.grid.theta_step_deg = 90.0;
  spec.grid.phi_step_deg = 180.0;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GoldenCsv, Bv2qSingleFaultCampaignIsByteIdenticalToCommittedFile) {
  const auto result = run_single_fault_campaign(golden_spec());
  const std::string fresh_path =
      ::testing::TempDir() + "qufi_golden_bv2q.csv";
  result.write_csv(fresh_path);
  const std::string fresh = read_file(fresh_path);
  const std::string golden =
      read_file(std::string(QUFI_SOURCE_DIR) + "/tests/golden/bv2q_single.csv");
  std::remove(fresh_path.c_str());

  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(fresh, golden)
      << "campaign CSV output drifted from tests/golden/bv2q_single.csv — "
         "if the schema or determinism contract changed intentionally, "
         "regenerate the fixture and update README's CSV schema section";
}

TEST(GoldenCsv, CommittedFilePinsTheDocumentedColumnSchema) {
  const std::string golden =
      read_file(std::string(QUFI_SOURCE_DIR) + "/tests/golden/bv2q_single.csv");
  std::istringstream lines(golden);
  std::string header_comment, columns;
  ASSERT_TRUE(std::getline(lines, header_comment));
  ASSERT_TRUE(std::getline(lines, columns));
  EXPECT_EQ(header_comment.rfind("# circuit,", 0), 0u);
  EXPECT_EQ(columns,
            "point_index,instr_index,physical_qubit,logical_qubit,moment,"
            "theta,phi,neighbor_qubit,theta1,phi1,qvf,pa,pb");

  // Row order is canonical: point_index ascending across every data row.
  long previous = -1;
  std::string row;
  std::size_t rows = 0;
  while (std::getline(lines, row)) {
    if (row.empty()) continue;
    const long point = std::stol(row.substr(0, row.find(',')));
    EXPECT_GE(point, previous) << "row " << rows;
    previous = point;
    ++rows;
  }
  EXPECT_GT(rows, 0u);
}

}  // namespace
}  // namespace qufi
