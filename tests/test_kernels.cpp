// Differential kernel-conformance and fuzz suite.
//
// The engine's merge/golden-CSV gates promise bit-identical results no
// matter which kernel set, tile size, range partition, or thread count
// executed a campaign. This suite is that promise's enforcement point:
// every available kernel variant is diffed bit-for-bit against the scalar
// reference in kernels.hpp on randomized states and matrices across all
// qubit positions and sizes, and the sparse apply_matrix_k path is fuzzed
// against a naive dense oracle.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "sim/kernel_dispatch.hpp"
#include "sim/kernels.hpp"
#include "sim/kernels_simd.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace qufi::sim {
namespace {

using util::cplx;
using util::Mat2;
using util::Mat4;
using u64 = std::uint64_t;

std::vector<cplx> random_state(std::size_t size, util::Xoshiro256pp& rng) {
  std::vector<cplx> amps(size);
  for (auto& a : amps) a = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return amps;
}

Mat2 random_mat2(util::Xoshiro256pp& rng) {
  Mat2 m;
  for (auto& x : m.a) x = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return m;
}

Mat4 random_mat4(util::Xoshiro256pp& rng) {
  Mat4 m;
  for (auto& x : m.a) x = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return m;
}

/// Bit-level comparison; on mismatch names the first differing amplitude so
/// failures point at a concrete lane, not just "vectors differ".
::testing::AssertionResult BitIdentical(const std::vector<cplx>& got,
                                        const std::vector<cplx>& want) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure()
           << "size " << got.size() << " != " << want.size();
  }
  if (std::memcmp(got.data(), want.data(), got.size() * sizeof(cplx)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(cplx)) != 0) {
      return ::testing::AssertionFailure()
             << "first bit difference at amplitude " << i << ": got ("
             << got[i].real() << ", " << got[i].imag() << ") want ("
             << want[i].real() << ", " << want[i].imag() << ")";
    }
  }
  return ::testing::AssertionFailure() << "memcmp mismatch (padding?)";
}

/// Saves and restores the globally selected kernel set + tuning so each
/// test can reconfigure dispatch freely.
class KernelConformance : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_set_ = active_kernel_set().name;
    saved_tuning_ = kernel_tuning();
  }
  void TearDown() override {
    select_kernel_set(saved_set_);
    set_kernel_tuning(saved_tuning_);
  }

 private:
  std::string saved_set_;
  KernelTuning saved_tuning_;
};

TEST_F(KernelConformance, ScalarSetIsAlwaysAvailable) {
  ASSERT_NE(find_kernel_set("scalar"), nullptr);
  ASSERT_FALSE(available_kernel_sets().empty());
  // Best-first ordering: the default pick is the front of the list.
  EXPECT_EQ(find_kernel_set(available_kernel_sets().front()->name),
            available_kernel_sets().front());
}

TEST_F(KernelConformance, SelectRejectsUnknownSet) {
  EXPECT_THROW(select_kernel_set("avx9000"), Error);
}

// ---- apply_matrix1: every set x every qubit position x 1..12 qubits -------

TEST_F(KernelConformance, Matrix1AllSetsAllPositionsBitIdentical) {
  util::Xoshiro256pp rng(101);
  for (int n = 1; n <= 12; ++n) {
    const std::size_t size = std::size_t{1} << n;
    const auto base = random_state(size, rng);
    const Mat2 m = random_mat2(rng);
    for (int q = 0; q < n; ++q) {
      auto want = base;
      detail::apply_matrix1(want, m, q);
      for (const KernelSet* ks : available_kernel_sets()) {
        auto got = base;
        ks->m1_part(got, m, q, 0, size / 2);
        EXPECT_TRUE(BitIdentical(got, want))
            << "set=" << ks->name << " n=" << n << " q=" << q;
      }
    }
  }
}

TEST_F(KernelConformance, Matrix1PartitionAndOddSplitInvariance) {
  util::Xoshiro256pp rng(202);
  const int n = 9;
  const std::size_t size = std::size_t{1} << n;
  const auto base = random_state(size, rng);
  const Mat2 m = random_mat2(rng);
  for (int q : {0, 1, n / 2, n - 1}) {
    auto want = base;
    detail::apply_matrix1(want, m, q);
    for (const KernelSet* ks : available_kernel_sets()) {
      const u64 groups = size / 2;
      // Odd/prime split points land mid-stride and mid-vector on purpose.
      for (u64 split : {u64{1}, u64{3}, u64{37}, groups / 2 + 1, groups - 1}) {
        auto got = base;
        ks->m1_part(got, m, q, 0, split);
        ks->m1_part(got, m, q, split, groups);
        EXPECT_TRUE(BitIdentical(got, want))
            << "set=" << ks->name << " q=" << q << " split=" << split;
      }
    }
  }
}

TEST_F(KernelConformance, Matrix1MisalignedSubspan) {
  // A view starting at an odd complex offset is 16- but not 32-byte
  // aligned; every vector path must tolerate it (unaligned loads).
  util::Xoshiro256pp rng(303);
  const std::size_t size = 1 << 8;
  auto backing = random_state(size + 1, rng);
  const Mat2 m = random_mat2(rng);
  for (const KernelSet* ks : available_kernel_sets()) {
    auto got_backing = backing;
    auto want_backing = backing;
    std::span<cplx> got(got_backing.data() + 1, size);
    std::span<cplx> want(want_backing.data() + 1, size);
    detail::apply_matrix1(want, m, 3);
    ks->m1_part(got, m, 3, 0, size / 2);
    EXPECT_TRUE(BitIdentical(got_backing, want_backing)) << "set=" << ks->name;
  }
}

// ---- apply_matrix2: every set x every (q0, q1) pair ------------------------

TEST_F(KernelConformance, Matrix2AllSetsAllPairsBitIdentical) {
  util::Xoshiro256pp rng(404);
  for (int n = 2; n <= 12; n += 2) {
    const std::size_t size = std::size_t{1} << n;
    const auto base = random_state(size, rng);
    const Mat4 m = random_mat4(rng);
    // Both operand orders for every unordered pair: adjacent, far, and the
    // q=0 / q=n-1 edges all occur naturally.
    for (int q0 = 0; q0 < n; ++q0) {
      for (int q1 = 0; q1 < n; ++q1) {
        if (q0 == q1) continue;
        auto want = base;
        detail::apply_matrix2(want, m, q0, q1);
        for (const KernelSet* ks : available_kernel_sets()) {
          auto got = base;
          ks->m2_part(got, m, q0, q1, 0, size / 4);
          EXPECT_TRUE(BitIdentical(got, want))
              << "set=" << ks->name << " n=" << n << " q0=" << q0
              << " q1=" << q1;
        }
      }
    }
  }
}

TEST_F(KernelConformance, Matrix2PartitionInvariance) {
  util::Xoshiro256pp rng(505);
  const int n = 10;
  const std::size_t size = std::size_t{1} << n;
  const auto base = random_state(size, rng);
  const Mat4 m = random_mat4(rng);
  const std::pair<int, int> pairs[] = {{0, 1}, {1, 0}, {0, n - 1},
                                       {n - 1, 0}, {3, 7}, {n - 2, n - 1}};
  for (auto [q0, q1] : pairs) {
    auto want = base;
    detail::apply_matrix2(want, m, q0, q1);
    for (const KernelSet* ks : available_kernel_sets()) {
      const u64 groups = size / 4;
      for (u64 split : {u64{1}, u64{5}, u64{31}, groups - 1}) {
        auto got = base;
        ks->m2_part(got, m, q0, q1, 0, split);
        ks->m2_part(got, m, q0, q1, split, groups);
        EXPECT_TRUE(BitIdentical(got, want))
            << "set=" << ks->name << " q0=" << q0 << " q1=" << q1
            << " split=" << split;
      }
    }
  }
}

// ---- apply_ccx -------------------------------------------------------------

TEST_F(KernelConformance, CcxAllSetsBitIdentical) {
  util::Xoshiro256pp rng(606);
  for (int n = 3; n <= 12; n += 3) {
    const std::size_t size = std::size_t{1} << n;
    const auto base = random_state(size, rng);
    const std::array<std::array<int, 3>, 4> cases = {{
        {0, 1, 2},
        {n - 1, n - 2, 0},
        {0, n - 1, n / 2},
        {1, n / 2, n - 1},
    }};
    for (const auto& [c0, c1, t] : cases) {
      auto want = base;
      detail::apply_ccx(want, c0, c1, t);
      for (const KernelSet* ks : available_kernel_sets()) {
        auto got = base;
        ks->ccx_part(got, c0, c1, t, 0, size / 2);
        EXPECT_TRUE(BitIdentical(got, want))
            << "set=" << ks->name << " n=" << n << " c0=" << c0
            << " c1=" << c1 << " t=" << t;
      }
    }
  }
}

// ---- apply_matrix_k: variants, partitioning, fuzz vs dense oracle ----------

/// Pauli-mixture-shaped superoperator: structurally sparse with the zero
/// pattern real channels produce, plus optional fill to hit capacity.
std::vector<cplx> random_sparse_superop(std::size_t dim,
                                        util::Xoshiro256pp& rng,
                                        double density) {
  std::vector<cplx> m(dim * dim);
  for (auto& x : m) {
    if (rng.uniform() < density) x = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  // Keep a dominant diagonal so the matrix is not accidentally all-zero.
  for (std::size_t i = 0; i < dim; ++i) {
    m[i * dim + i] += cplx{1.0, 0.0};
  }
  return m;
}

TEST_F(KernelConformance, MatrixKAllSetsBitIdentical) {
  util::Xoshiro256pp rng(707);
  const int n = 10;
  const std::size_t size = std::size_t{1} << n;
  const auto base = random_state(size, rng);
  const std::vector<std::vector<int>> bit_cases = {
      {0}, {5}, {n - 1},          // k=1: bit 0 masked and free
      {0, 5}, {3, 8}, {1, 0},     // k=2, both orders
      {0, 4, 7}, {2, 5, 9},       // k=3
      {0, 3, 6, 9}, {1, 4, 7, 2}, // k=4 with and without bit 0
  };
  for (const auto& bits : bit_cases) {
    const std::size_t dim = std::size_t{1} << bits.size();
    const auto m = random_sparse_superop(dim, rng, 0.3);
    auto want = base;
    detail::apply_matrix_k(want, m, bits);
    for (const KernelSet* ks : available_kernel_sets()) {
      const u64 groups = size >> bits.size();
      auto got = base;
      ks->mk_part(got, m, bits, 0, groups);
      EXPECT_TRUE(BitIdentical(got, want))
          << "set=" << ks->name << " k=" << bits.size();
      // Odd split: exercises the scalar head/tail stitching in the paired
      // AVX2 path.
      auto got2 = base;
      ks->mk_part(got2, m, bits, 0, 3);
      ks->mk_part(got2, m, bits, 3, groups);
      EXPECT_TRUE(BitIdentical(got2, want))
          << "set=" << ks->name << " k=" << bits.size() << " (split)";
    }
  }
}

TEST_F(KernelConformance, MatrixKSparseFuzzAgainstDenseOracle) {
  util::Xoshiro256pp rng(808);
  const int n = 8;
  const std::size_t size = std::size_t{1} << n;
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t k = 1 + rng.uniform_int(4);
    std::vector<int> bits;
    while (bits.size() < k) {
      const int b = static_cast<int>(rng.uniform_int(n));
      bool dup = false;
      for (int x : bits) dup |= (x == b);
      if (!dup) bits.push_back(b);
    }
    const std::size_t dim = std::size_t{1} << k;
    const auto m = random_sparse_superop(dim, rng, rng.uniform(0.1, 0.9));
    const auto base = random_state(size, rng);
    auto sparse = base;
    auto dense = base;
    detail::apply_matrix_k(sparse, m, bits);
    detail::apply_matrix_k_dense(dense, m, bits);
    for (std::size_t i = 0; i < size; ++i) {
      ASSERT_NEAR(sparse[i].real(), dense[i].real(), 1e-12)
          << "iter=" << iter << " k=" << k << " amp=" << i;
      ASSERT_NEAR(sparse[i].imag(), dense[i].imag(), 1e-12)
          << "iter=" << iter << " k=" << k << " amp=" << i;
    }
  }
}

TEST_F(KernelConformance, MatrixKDropThresholdBoundary) {
  // The sparsifier keeps entries with |x| > 1e-12 and drops the rest. An
  // entry exactly at the boundary is dropped; one at 2e-12 must survive and
  // contribute to the result.
  const std::vector<int> bits = {0};
  std::vector<cplx> base = {cplx{1.0, 0.0}, cplx{1.0, 0.0}};

  std::vector<cplx> m_dropped = {cplx{1.0, 0.0}, cplx{1e-12, 0.0},
                                 cplx{0.0, 0.0}, cplx{1.0, 0.0}};
  auto dropped = base;
  detail::apply_matrix_k(dropped, m_dropped, bits);
  EXPECT_EQ(dropped[0], (cplx{1.0, 0.0}));  // off-diagonal 1e-12 was dropped

  std::vector<cplx> m_kept = {cplx{1.0, 0.0}, cplx{2e-12, 0.0},
                              cplx{0.0, 0.0}, cplx{1.0, 0.0}};
  auto kept = base;
  detail::apply_matrix_k(kept, m_kept, bits);
  EXPECT_EQ(kept[0], (cplx{1.0 + 2e-12, 0.0}));

  // And the dense oracle never drops anything.
  auto dense = base;
  detail::apply_matrix_k_dense(dense, m_dropped, bits);
  EXPECT_EQ(dense[0], (cplx{1.0 + 1e-12, 0.0}));
}

TEST_F(KernelConformance, MatrixKFullDenseHitsEntryCapacity) {
  // k=4 with every one of the 256 entries nonzero: exercises the full
  // sparse-entry store on every set.
  util::Xoshiro256pp rng(909);
  const int n = 8;
  const std::size_t size = std::size_t{1} << n;
  const std::vector<int> bits = {0, 2, 5, 7};
  std::vector<cplx> m(256);
  for (auto& x : m) x = cplx{rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)};
  const auto base = random_state(size, rng);
  auto want = base;
  detail::apply_matrix_k(want, m, bits);
  auto dense = base;
  detail::apply_matrix_k_dense(dense, m, bits);
  EXPECT_TRUE(BitIdentical(want, dense));  // nothing droppable: bit-equal
  for (const KernelSet* ks : available_kernel_sets()) {
    auto got = base;
    ks->mk_part(got, m, bits, 0, size >> 4);
    EXPECT_TRUE(BitIdentical(got, want)) << "set=" << ks->name;
  }
}

TEST_F(KernelConformance, MatrixKRejectsMoreThanFourBits) {
  // Regression for the capacity hazard: offset/v scratch holds 16 entries
  // (k=4); k=5 used to index out of bounds silently.
  std::vector<cplx> amps(64, cplx{0.1, 0.0});
  std::vector<cplx> m(32 * 32, cplx{});
  const std::vector<int> bits = {0, 1, 2, 3, 4};
  EXPECT_THROW(detail::apply_matrix_k(amps, m, bits), Error);
  EXPECT_THROW(detail::apply_matrix_k_dense(amps, m, bits), Error);
  EXPECT_THROW(dispatch::apply_matrix_k(amps, m, bits), Error);
  EXPECT_THROW(kern::build_mk_tables(m, bits), Error);
}

// ---- dispatch layer: tiling and intra-state parallelism --------------------

TEST_F(KernelConformance, DispatchBlockedVsUnblockedBitIdentical) {
  util::Xoshiro256pp rng(1010);
  const int n = 11;
  const std::size_t size = std::size_t{1} << n;
  const auto base = random_state(size, rng);
  const Mat2 m1 = random_mat2(rng);
  const Mat4 m2 = random_mat4(rng);
  for (const KernelSet* ks : available_kernel_sets()) {
    select_kernel_set(ks->name);
    KernelTuning t = kernel_tuning();
    t.parallel_enabled = false;
    t.block_groups = u64{1} << 30;  // one tile: unblocked
    set_kernel_tuning(t);
    auto want = base;
    dispatch::apply_matrix1(want, m1, 4);
    dispatch::apply_matrix2(want, m2, 1, n - 1);
    for (u64 block : {u64{3}, u64{64}, u64{1000}}) {
      t.block_groups = block;
      set_kernel_tuning(t);
      auto got = base;
      dispatch::apply_matrix1(got, m1, 4);
      dispatch::apply_matrix2(got, m2, 1, n - 1);
      EXPECT_TRUE(BitIdentical(got, want))
          << "set=" << ks->name << " block=" << block;
    }
  }
}

TEST_F(KernelConformance, DispatchParallelVsSerialBitIdentical) {
  util::Xoshiro256pp rng(1111);
  const int n = 12;
  const std::size_t size = std::size_t{1} << n;
  const auto base = random_state(size, rng);
  const Mat2 m1 = random_mat2(rng);
  const Mat4 m2 = random_mat4(rng);
  for (const KernelSet* ks : available_kernel_sets()) {
    select_kernel_set(ks->name);
    KernelTuning t = kernel_tuning();
    t.parallel_enabled = false;
    set_kernel_tuning(t);
    auto want = base;
    dispatch::apply_matrix1(want, m1, 0);
    dispatch::apply_matrix2(want, m2, 0, n - 1);
    dispatch::apply_ccx(want, 1, n - 1, 3);

    t.parallel_enabled = true;
    t.parallel_min_groups = 2;  // force the pool even at test sizes
    t.threads = 4;
    t.block_groups = 17;  // odd tile inside each lane chunk
    set_kernel_tuning(t);
    auto got = base;
    dispatch::apply_matrix1(got, m1, 0);
    dispatch::apply_matrix2(got, m2, 0, n - 1);
    dispatch::apply_ccx(got, 1, n - 1, 3);
    EXPECT_TRUE(BitIdentical(got, want)) << "set=" << ks->name;
  }
}

TEST_F(KernelConformance, DispatchSelectionRoutesToNamedSet) {
  // Selecting a set is observable end to end: a statevector evolved under
  // each set produces bit-identical amplitudes (the whole point of the
  // contract), and the active set reports the selected name.
  util::Xoshiro256pp rng(1212);
  const std::size_t size = 1 << 10;
  const auto base = random_state(size, rng);
  const Mat2 m = random_mat2(rng);
  select_kernel_set("scalar");
  EXPECT_STREQ(active_kernel_set().name, "scalar");
  auto want = base;
  dispatch::apply_matrix1(want, m, 7);
  for (const KernelSet* ks : available_kernel_sets()) {
    select_kernel_set(ks->name);
    EXPECT_STREQ(active_kernel_set().name, ks->name);
    auto got = base;
    dispatch::apply_matrix1(got, m, 7);
    EXPECT_TRUE(BitIdentical(got, want)) << "set=" << ks->name;
  }
}

}  // namespace
}  // namespace qufi::sim
