// Backend tests: result bookkeeping, ideal/density/trajectory agreement,
// simulated-hardware behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.hpp"
#include "backend/density_backend.hpp"
#include "backend/hardware_backend.hpp"
#include "backend/ideal_backend.hpp"
#include "backend/trajectory_backend.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace qufi::backend {
namespace {

// ----------------------------------------------------------------- result

TEST(Result, ExactDistribution) {
  auto r = ExecutionResult::from_distribution({0.25, 0.75}, 1, 0, 0, "test");
  EXPECT_EQ(r.shots, 0u);
  EXPECT_TRUE(r.counts.empty());
  EXPECT_EQ(r.most_probable(), "1");
  EXPECT_DOUBLE_EQ(r.probability_of("0"), 0.25);
}

TEST(Result, SampledCountsSumToShots) {
  auto r = ExecutionResult::from_distribution({0.5, 0.5}, 1, 1024, 7, "test");
  std::uint64_t total = 0;
  for (const auto& [bits, count] : r.counts) total += count;
  EXPECT_EQ(total, 1024u);
  EXPECT_NEAR(r.probability_of("0"), 0.5, 0.08);
}

TEST(Result, SamplingDeterministicInSeed) {
  auto a = ExecutionResult::from_distribution({0.3, 0.7}, 1, 512, 9, "t");
  auto b = ExecutionResult::from_distribution({0.3, 0.7}, 1, 512, 9, "t");
  EXPECT_EQ(a.counts, b.counts);
}

TEST(Result, FromOutcomeCounts) {
  auto r = ExecutionResult::from_outcome_counts({10, 30}, 1, "t");
  EXPECT_EQ(r.shots, 40u);
  EXPECT_DOUBLE_EQ(r.probabilities[1], 0.75);
  EXPECT_THROW(ExecutionResult::from_outcome_counts({0, 0}, 1, "t"), Error);
}

TEST(Result, ValidatesWidth) {
  auto r = ExecutionResult::from_distribution({1.0, 0.0}, 1, 0, 0, "t");
  EXPECT_THROW(r.probability_of("00"), Error);
  EXPECT_THROW(
      ExecutionResult::from_distribution({1.0, 0.0, 0.0}, 1, 0, 0, "t"),
      Error);
}

// ------------------------------------------------------------------ ideal

TEST(IdealBackend, DeterministicCircuitSingleOutcome) {
  IdealBackend backend;
  const auto bench = algo::bernstein_vazirani(4, 0b101);
  const auto result = backend.run(bench.circuit, 0, 0);
  EXPECT_NEAR(result.probability_of("101"), 1.0, 1e-9);
  EXPECT_EQ(result.most_probable(), "101");
}

TEST(IdealBackend, SampledGhzIsBimodal) {
  IdealBackend backend;
  const auto bench = algo::ghz(3);
  const auto result = backend.run(bench.circuit, 2048, 5);
  EXPECT_NEAR(result.probability_of("000"), 0.5, 0.06);
  EXPECT_NEAR(result.probability_of("111"), 0.5, 0.06);
  EXPECT_NEAR(result.probability_of("010"), 0.0, 1e-12);
}

// ---------------------------------------------------------------- density

TEST(DensityBackend, IdealNoiseMatchesIdealBackend) {
  DensityMatrixBackend noisy(noise::NoiseModel::ideal());
  IdealBackend ideal;
  const auto bench = algo::paper_circuit("qft", 4);
  const auto a = noisy.run(bench.circuit, 0, 0);
  const auto b = ideal.run(bench.circuit, 0, 0);
  for (std::size_t i = 0; i < a.probabilities.size(); ++i) {
    EXPECT_NEAR(a.probabilities[i], b.probabilities[i], 1e-9);
  }
}

TEST(DensityBackend, NoiseDegradesCorrectState) {
  const auto bench = algo::bernstein_vazirani(4, 0b101);
  DensityMatrixBackend ideal(noise::NoiseModel::ideal());
  DensityMatrixBackend noisy(
      noise::NoiseModel::from_backend(noise::fake_casablanca()));
  const double p_ideal =
      ideal.run(bench.circuit, 0, 0).probability_of("101");
  const double p_noisy =
      noisy.run(bench.circuit, 0, 0).probability_of("101");
  EXPECT_GT(p_ideal, 0.999);
  EXPECT_LT(p_noisy, p_ideal);
  EXPECT_GT(p_noisy, 0.7);  // realistic calibration: still dominant
}

TEST(DensityBackend, NoiseScalesMonotonically) {
  const auto bench = algo::paper_circuit("qft", 4);
  double previous = 1.1;
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    DensityMatrixBackend backend(
        noise::NoiseModel::from_backend(noise::fake_casablanca(), scale));
    const double p = backend.run(bench.circuit, 0, 0)
                         .probability_of(bench.expected_outputs[0]);
    EXPECT_LT(p, previous) << "scale " << scale;
    previous = p;
  }
}

TEST(DensityBackend, DistributionsSumToOne) {
  DensityMatrixBackend backend(
      noise::NoiseModel::from_backend(noise::fake_jakarta()));
  const auto bench = algo::paper_circuit("dj", 5);
  const auto result = backend.run(bench.circuit, 0, 0);
  double total = 0;
  for (double p : result.probabilities) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DensityBackend, RejectsMidCircuitMeasurement) {
  circ::QuantumCircuit qc(2, 2);
  qc.h(0).measure(0, 0).cx(0, 1).measure(1, 1);
  DensityMatrixBackend backend(noise::NoiseModel::ideal());
  EXPECT_THROW(backend.run(qc, 0, 0), Error);
}

TEST(DensityBackend, SupportsReset) {
  circ::QuantumCircuit qc(1, 1);
  qc.x(0).reset(0).measure(0, 0);
  DensityMatrixBackend backend(noise::NoiseModel::ideal());
  EXPECT_NEAR(backend.run(qc, 0, 0).probability_of("0"), 1.0, 1e-9);
}

TEST(DensityBackend, IdleNoiseIncreasesError) {
  // A circuit where one qubit idles while others work.
  circ::QuantumCircuit qc(3, 3);
  qc.x(0);
  for (int i = 0; i < 10; ++i) qc.x(1).x(2);
  qc.measure_all();
  const auto nm = noise::NoiseModel::from_backend(noise::fake_casablanca());
  DensityMatrixBackend plain(nm, false);
  DensityMatrixBackend idle(nm, true);
  const double p_plain = plain.run(qc, 0, 0).probability_of("001");
  const double p_idle = idle.run(qc, 0, 0).probability_of("001");
  EXPECT_LT(p_idle, p_plain);
}

// ------------------------------------------------------------- trajectory

TEST(TrajectoryBackend, RequiresShots) {
  TrajectoryBackend backend(noise::NoiseModel::ideal());
  const auto bench = algo::ghz(2);
  EXPECT_THROW(backend.run(bench.circuit, 0, 0), Error);
}

TEST(TrajectoryBackend, IdealMatchesExpectation) {
  TrajectoryBackend backend(noise::NoiseModel::ideal());
  const auto bench = algo::bernstein_vazirani(4, 0b110);
  const auto result = backend.run(bench.circuit, 512, 3);
  EXPECT_NEAR(result.probability_of("110"), 1.0, 1e-12);
}

TEST(TrajectoryBackend, AgreesWithDensityMatrixUnderNoise) {
  // Property: trajectory sampling converges to the exact density-matrix
  // distribution. Use boosted noise so the difference is visible.
  const auto nm =
      noise::NoiseModel::from_backend(noise::fake_casablanca(), 5.0);
  const auto bench = algo::paper_circuit("bv", 4);

  DensityMatrixBackend exact(nm);
  TrajectoryBackend sampled(nm);
  const auto p_exact = exact.run(bench.circuit, 0, 0).probabilities;
  const auto p_sampled = sampled.run(bench.circuit, 6000, 11).probabilities;
  EXPECT_GT(sim::hellinger_fidelity(p_exact, p_sampled), 0.99);
}

TEST(TrajectoryBackend, SupportsMidCircuitMeasureAndReset) {
  circ::QuantumCircuit qc(2, 2);
  qc.h(0).measure(0, 0).reset(0).x(0).measure(0, 1);
  TrajectoryBackend backend(noise::NoiseModel::ideal());
  const auto result = backend.run(qc, 256, 5);
  // clbit 1 always reads 1 after reset+x; clbit 0 is random.
  double p_c1 = 0.0;
  for (std::size_t i = 0; i < result.probabilities.size(); ++i) {
    if (i & 2) p_c1 += result.probabilities[i];
  }
  EXPECT_NEAR(p_c1, 1.0, 1e-12);
}

TEST(TrajectoryBackend, DeterministicInSeed) {
  const auto nm = noise::NoiseModel::from_backend(noise::fake_jakarta());
  TrajectoryBackend backend(nm);
  const auto bench = algo::ghz(3);
  const auto a = backend.run(bench.circuit, 128, 77);
  const auto b = backend.run(bench.circuit, 128, 77);
  EXPECT_EQ(a.counts, b.counts);
}

// --------------------------------------------------------------- hardware

TEST(HardwareBackend, ProducesFiniteShots) {
  SimulatedHardwareBackend hw(noise::fake_jakarta());
  const auto bench = algo::bernstein_vazirani(4, 0b101);
  const auto result = hw.run(bench.circuit, 0, 1);  // promoted to 1024
  EXPECT_EQ(result.shots, 1024u);
  EXPECT_GT(result.probability_of("101"), 0.5);
}

TEST(HardwareBackend, DriftMakesJobsDiffer) {
  SimulatedHardwareBackend hw(noise::fake_jakarta());
  const auto bench = algo::paper_circuit("qft", 4);
  const auto a = hw.run(bench.circuit, 4096, 1);
  const auto b = hw.run(bench.circuit, 4096, 2);
  // Different jobs see different calibration: distributions differ
  // slightly but not wildly.
  const double tvd =
      sim::total_variation_distance(a.probabilities, b.probabilities);
  EXPECT_GT(tvd, 0.0);
  EXPECT_LT(tvd, 0.25);
}

TEST(HardwareBackend, CloseToStaticNoiseModel) {
  // The premise of Fig. 11: simulation with the nominal noise model is a
  // good predictor of the (drifting) machine.
  const auto props = noise::fake_jakarta();
  SimulatedHardwareBackend hw(props);
  DensityMatrixBackend sim_backend(noise::NoiseModel::from_backend(props));
  const auto bench = algo::bernstein_vazirani(4, 0b101);
  const auto hw_result = hw.run(bench.circuit, 8192, 3);
  const auto sim_result = sim_backend.run(bench.circuit, 0, 0);
  EXPECT_GT(sim::hellinger_fidelity(hw_result.probabilities,
                                    sim_result.probabilities),
            0.98);
}

TEST(HardwareBackend, RejectsOversizedCircuit) {
  SimulatedHardwareBackend hw(noise::fake_jakarta());
  circ::QuantumCircuit qc(9, 9);
  qc.h(0).measure_all();
  EXPECT_THROW(hw.run(qc, 1024, 0), Error);
}

}  // namespace
}  // namespace qufi::backend
