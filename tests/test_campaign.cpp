// Campaign tests: injection-point enumeration, faulty-circuit construction,
// single/double campaigns, determinism, aggregations, reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <numbers>
#include <span>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "backend/hardware_backend.hpp"
#include "core/campaign.hpp"
#include "core/injection.hpp"
#include "core/report.hpp"
#include "core/results.hpp"
#include "sim/statevector.hpp"
#include "util/error.hpp"

namespace qufi {
namespace {

constexpr double kPi = std::numbers::pi;

/// Small, fast spec shared by the campaign tests.
CampaignSpec quick_spec(const char* circuit_name = "bv", int width = 4) {
  const auto bench = algo::paper_circuit(circuit_name, width);
  CampaignSpec spec;
  spec.circuit = bench.circuit;
  spec.expected_outputs = bench.expected_outputs;
  spec.grid.theta_step_deg = 60.0;
  spec.grid.phi_step_deg = 90.0;
  spec.threads = 2;
  return spec;
}

// -------------------------------------------------------------- injection

TEST(Injection, PointsAfterEachGateOperand) {
  circ::QuantumCircuit qc(2, 2);
  qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
  const auto points =
      enumerate_injection_points(qc, InjectionStrategy::OperandsAfterEachGate);
  // h -> 1 point, cx -> 2 points, measures -> none.
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].qubit, 0);
  EXPECT_EQ(points[1].instr_index, 1u);
  EXPECT_EQ(points[2].qubit, 1);
}

TEST(Injection, MomentStrategyCoversActiveQubits) {
  circ::QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);  // qubit 2 inactive
  const auto points = enumerate_injection_points(
      qc, InjectionStrategy::EveryActiveQubitEveryMoment);
  // 2 gate moments x 2 active qubits; measurement-only moment skipped.
  EXPECT_EQ(points.size(), 4u);
  for (const auto& p : points) EXPECT_NE(p.qubit, 2);
}

TEST(Injection, FaultGateInsertedAfterInstruction) {
  circ::QuantumCircuit qc(2, 2);
  qc.h(0).cx(0, 1).measure_all();
  const InjectionPoint point{0, 0, 0, 0};
  const PhaseShiftFault fault{kPi / 4, 0.0};
  const auto faulty = inject_fault(qc, point, fault);
  ASSERT_EQ(faulty.size(), qc.size() + 1);
  EXPECT_EQ(faulty.instructions()[1].kind, circ::GateKind::U);
  EXPECT_DOUBLE_EQ(faulty.instructions()[1].params[0], kPi / 4);
}

TEST(Injection, IdentityFaultPreservesDistribution) {
  const auto bench = algo::bernstein_vazirani(4, 0b101);
  const InjectionPoint point{2, 1, 1, 0};
  const auto faulty =
      inject_fault(bench.circuit, point, PhaseShiftFault{0.0, 0.0});
  const auto p0 = sim::ideal_clbit_probabilities(bench.circuit);
  const auto p1 = sim::ideal_clbit_probabilities(faulty);
  for (std::size_t i = 0; i < p0.size(); ++i) EXPECT_NEAR(p0[i], p1[i], 1e-12);
}

TEST(Injection, ThetaPiFaultFlipsMeasuredQubit) {
  // X-like fault right before measurement flips the output bit.
  circ::QuantumCircuit qc(1, 1);
  qc.i(0);
  qc.measure(0, 0);
  const InjectionPoint point{0, 0, 0, 0};
  const auto faulty = inject_fault(qc, point, PhaseShiftFault{kPi, 0.0});
  const auto probs = sim::ideal_clbit_probabilities(faulty);
  EXPECT_NEAR(probs[1], 1.0, 1e-12);
}

TEST(Injection, DoubleFaultInsertsTwoGates) {
  circ::QuantumCircuit qc(3, 3);
  qc.h(0).cx(0, 1).measure_all();
  const InjectionPoint point{1, 0, 0, 1};
  const auto faulty = inject_double_fault(
      qc, point, PhaseShiftFault{kPi, kPi}, 1, PhaseShiftFault{kPi / 2, 0.0});
  ASSERT_EQ(faulty.size(), qc.size() + 2);
  EXPECT_EQ(faulty.instructions()[2].kind, circ::GateKind::U);
  EXPECT_EQ(faulty.instructions()[3].kind, circ::GateKind::U);
  EXPECT_EQ(faulty.instructions()[3].qubits[0], 1);
  EXPECT_THROW(inject_double_fault(qc, point, PhaseShiftFault{kPi, kPi}, 0,
                                   PhaseShiftFault{0, 0}),
               Error);
}

TEST(Injection, ValidatesRanges) {
  circ::QuantumCircuit qc(2, 2);
  qc.h(0).measure_all();
  EXPECT_THROW(
      inject_fault(qc, InjectionPoint{99, 0, 0, 0}, PhaseShiftFault{}),
      Error);
  EXPECT_THROW(
      inject_fault(qc, InjectionPoint{0, 7, 0, 0}, PhaseShiftFault{}),
      Error);
}

TEST(Injection, NeighborCandidatesFollowCoupling) {
  const auto spec = quick_spec("bv", 4);
  const auto transpiled = campaign_transpile(spec);
  const auto coupling =
      transpile::CouplingMap::from_backend(spec.backend);
  const auto points = enumerate_injection_points(
      transpiled, InjectionStrategy::OperandsAfterEachGate);
  ASSERT_FALSE(points.empty());
  for (const auto& p : points) {
    for (int nb : neighbor_candidates(transpiled, coupling, p)) {
      EXPECT_TRUE(coupling.connected(p.qubit, nb));
      EXPECT_GE(transpiled.logical_at(p.instr_index, nb), 0);
    }
  }
}

// -------------------------------------------------------- single campaign

TEST(SingleCampaign, RunsAllConfigs) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const auto points = campaign_points(spec);
  EXPECT_EQ(result.points.size(), points.size());
  EXPECT_EQ(result.records.size(),
            points.size() * static_cast<std::size_t>(spec.grid.num_configs()));
  EXPECT_EQ(result.meta.executions, result.records.size());
  EXPECT_FALSE(result.meta.double_fault);
  for (const auto& r : result.records) {
    EXPECT_GE(r.qvf, 0.0);
    EXPECT_LE(r.qvf, 1.0);
  }
}

TEST(SingleCampaign, IdentityConfigMatchesFaultFree) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  // All (theta=0, phi=0) records equal the fault-free QVF.
  for (const auto& r : result.records) {
    if (r.theta_index == 0 && r.phi_index == 0) {
      EXPECT_NEAR(r.qvf, result.meta.faultfree_qvf, 1e-9);
    }
  }
  // Noise floor: fault-free QVF is small but positive (paper §V-B).
  EXPECT_GT(result.meta.faultfree_qvf, 0.0);
  EXPECT_LT(result.meta.faultfree_qvf, 0.3);
}

TEST(SingleCampaign, ThetaPiIsWorstRow) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const auto heatmap = result.mean_heatmap();
  // Mean QVF at theta=pi (last column) must exceed theta=0 (first column).
  const int last = static_cast<int>(heatmap.theta_rad.size()) - 1;
  double mean_flip = 0.0, mean_none = 0.0;
  for (std::size_t j = 0; j < heatmap.phi_rad.size(); ++j) {
    mean_flip += heatmap.mean_qvf[j][static_cast<std::size_t>(last)];
    mean_none += heatmap.mean_qvf[j][0];
  }
  EXPECT_GT(mean_flip, mean_none + 0.2);
}

TEST(SingleCampaign, DeterministicAcrossThreadCounts) {
  auto spec = quick_spec();
  spec.shots = 64;  // exercise the sampling path too
  spec.threads = 1;
  const auto a = run_single_fault_campaign(spec);
  spec.threads = 4;
  const auto b = run_single_fault_campaign(spec);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].qvf, b.records[i].qvf) << i;
  }
}

TEST(SingleCampaign, GoldenFromIdealSimWhenNotProvided) {
  auto spec = quick_spec();
  spec.expected_outputs.clear();
  const auto result = run_single_fault_campaign(spec);
  EXPECT_FALSE(result.records.empty());
  EXPECT_LT(result.meta.faultfree_qvf, 0.3);
}

TEST(SingleCampaign, MaxPointsStrides) {
  auto spec = quick_spec();
  spec.max_points = 3;
  const auto result = run_single_fault_campaign(spec);
  EXPECT_EQ(result.points.size(), 3u);
}

TEST(SingleCampaign, BackendOverrideIsUsed) {
  auto spec = quick_spec();
  spec.max_points = 2;
  spec.grid.theta_step_deg = 90.0;
  backend::SimulatedHardwareBackend hw(spec.backend);
  spec.backend_override = &hw;
  const auto result = run_single_fault_campaign(spec);
  EXPECT_NE(result.meta.backend_name.find("hardware_sim"), std::string::npos);
}

TEST(SingleCampaign, PerQubitHeatmapsPartitionRecords) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const auto qubits = result.logical_qubits();
  ASSERT_FALSE(qubits.empty());
  std::uint64_t total_samples = 0;
  for (int lq : qubits) {
    const auto grid = result.heatmap_for_logical_qubit(lq);
    total_samples += grid.samples[0][0];
  }
  EXPECT_EQ(total_samples, result.mean_heatmap().samples[0][0]);
}

TEST(SingleCampaign, HandlesSpreadDistributionCircuits) {
  // IQP output distributions are spread over many states; the golden set
  // comes from compute_golden's most-probable rule and the campaign must
  // still produce valid QVF values.
  CampaignSpec spec;
  spec.circuit = algo::iqp_circuit(4, 11);
  spec.grid.theta_step_deg = 90.0;
  spec.grid.phi_step_deg = 180.0;
  spec.max_points = 6;
  spec.threads = 2;
  const auto result = run_single_fault_campaign(spec);
  ASSERT_FALSE(result.records.empty());
  for (const auto& r : result.records) {
    EXPECT_GE(r.qvf, 0.0);
    EXPECT_LE(r.qvf, 1.0);
  }
}

// -------------------------------------------------------- double campaign

TEST(DoubleCampaign, SecondaryBoundedByPrimary) {
  auto spec = quick_spec();
  spec.grid.theta_step_deg = 90.0;
  spec.grid.phi_step_deg = 90.0;
  spec.grid.phi_max_deg = 180.0;
  spec.max_points = 4;
  const auto result = run_double_fault_campaign(spec);
  EXPECT_TRUE(result.meta.double_fault);
  ASSERT_FALSE(result.records.empty());
  for (const auto& r : result.records) {
    EXPECT_LE(r.theta1_index, r.theta_index);
    EXPECT_LE(r.phi1_index, r.phi_index);
    EXPECT_GE(r.neighbor_qubit, 0);
  }
}

TEST(DoubleCampaign, ExecutionCountMatchesFormula) {
  auto spec = quick_spec();
  spec.grid.theta_step_deg = 90.0;
  spec.grid.phi_step_deg = 90.0;
  spec.grid.phi_max_deg = 180.0;
  spec.max_points = 4;
  const auto pairs = campaign_point_neighbor_pairs(spec);
  const auto result = run_double_fault_campaign(spec);
  EXPECT_EQ(result.meta.executions,
            double_campaign_executions(pairs.size(), spec.grid));
}

TEST(DoubleCampaign, WorsensMeanQvf) {
  // The paper's central multi-fault finding: double faults push QVF up.
  auto spec = quick_spec();
  spec.grid.theta_step_deg = 60.0;
  spec.grid.phi_step_deg = 60.0;
  spec.grid.phi_max_deg = 180.0;
  spec.max_points = 6;
  const auto single = run_single_fault_campaign(spec);
  const auto dbl = run_double_fault_campaign(spec);
  EXPECT_GT(dbl.qvf_stats().mean(), single.qvf_stats().mean());
}

TEST(DoubleCampaign, SecondaryDetailGridFilled) {
  auto spec = quick_spec();
  spec.grid.theta_step_deg = 90.0;
  spec.grid.phi_step_deg = 90.0;
  spec.grid.phi_max_deg = 180.0;
  spec.max_points = 3;
  const auto result = run_double_fault_campaign(spec);
  const int ti = spec.grid.num_theta() - 1;
  const int pi_idx = spec.grid.num_phi() - 1;
  const auto detail = result.secondary_detail(ti, pi_idx);
  // Full secondary triangle available at the (pi, pi) primary.
  EXPECT_GT(detail.samples[0][0], 0u);
  EXPECT_GT(detail.samples[static_cast<std::size_t>(pi_idx)]
                          [static_cast<std::size_t>(ti)],
            0u);
}

TEST(DoubleCampaign, SingleCampaignHasNoSecondaryDetail) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  EXPECT_THROW(result.secondary_detail(0, 0), Error);
}

// ---------------------------------------------------- named-fault campaign

TEST(NamedFaultCampaign, ProducesOneEntryPerFault) {
  auto spec = quick_spec();
  spec.max_points = 4;
  const auto faults = gate_equivalent_faults();
  const auto results = run_named_fault_campaign(spec, faults);
  ASSERT_EQ(results.size(), faults.size());
  for (const auto& r : results) {
    EXPECT_GE(r.mean_qvf, 0.0);
    EXPECT_LE(r.mean_qvf, 1.0);
    EXPECT_EQ(r.executions, 4u);
  }
  // Z fault (phi=pi) should be at least as harmful as T (phi=pi/4) on BV.
  EXPECT_GE(results[2].mean_qvf, results[0].mean_qvf - 0.05);
}

// ------------------------------------------------------------ aggregation

TEST(Results, HeatmapDeltaAndAccessors) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const auto grid = result.mean_heatmap();
  const auto zero = grid.delta(grid);
  for (std::size_t j = 0; j < zero.mean_qvf.size(); ++j) {
    for (double v : zero.mean_qvf[j]) EXPECT_NEAR(v, 0.0, 1e-12);
  }
  EXPECT_NO_THROW(grid.at(0, 0));
}

TEST(Results, HistogramAndStatsConsistent) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const auto hist = result.qvf_histogram(10);
  EXPECT_EQ(hist.total(), result.records.size());
  EXPECT_NEAR(hist.stats().mean(), result.qvf_stats().mean(), 1e-12);
  const auto impact = result.impact_breakdown();
  EXPECT_NEAR(impact.masked + impact.dubious + impact.silent, 1.0, 1e-12);
}

TEST(Results, CsvExportHasHeaderAndRows) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const std::string path = ::testing::TempDir() + "qufi_campaign.csv";
  result.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, result.records.size() + 2);  // meta + header + rows
  std::remove(path.c_str());
}

TEST(Results, InjectionAccountingFormulas) {
  // Reproduce the paper's arithmetic: 312 configs x 1024 shots x 59 points
  // = 18,849,792 injections for the fixed-width campaign (§V-B).
  const FaultParamGrid paper_grid;
  EXPECT_EQ(single_campaign_executions(59, paper_grid) * 1024,
            18849792u);
  // Double campaign (§V-D): 20 pairs x T(13)^2 x 1024 = 169,594,880.
  FaultParamGrid primary;
  primary.phi_max_deg = 180.0;
  EXPECT_EQ(double_campaign_executions(20, primary) * 1024, 169594880u);
}

TEST(Results, WriteCsvIsAtomicNoTempLeftBehind) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("qufi_csv_atomic_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::create_directories(dir);
  const std::string path = (dir / "out.csv").string();
  result.write_csv(path);
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string(), path) << "temp file left behind";
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  fs::remove_all(dir);
}

// ------------------------------------------------------- record streaming

/// Collects emitted blocks; emit() is called concurrently from pool lanes.
class CollectingSink final : public ResultBlockSink {
 public:
  void emit(std::span<const InjectionRecord> records) override {
    std::lock_guard<std::mutex> lock(mutex_);
    blocks_.emplace_back(records.begin(), records.end());
  }
  /// All records, re-sorted into canonical ascending-point order.
  std::vector<InjectionRecord> sorted() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::sort(blocks_.begin(), blocks_.end(),
              [](const auto& a, const auto& b) {
                return a.front().point_index < b.front().point_index;
              });
    std::vector<InjectionRecord> all;
    for (const auto& block : blocks_) {
      all.insert(all.end(), block.begin(), block.end());
    }
    return all;
  }
  std::size_t num_blocks() {
    std::lock_guard<std::mutex> lock(mutex_);
    return blocks_.size();
  }

 private:
  std::mutex mutex_;
  std::vector<std::vector<InjectionRecord>> blocks_;
};

void expect_identical_records(const std::vector<InjectionRecord>& a,
                              const std::vector<InjectionRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].point_index, b[i].point_index) << "record " << i;
    EXPECT_EQ(a[i].theta_index, b[i].theta_index) << "record " << i;
    EXPECT_EQ(a[i].phi_index, b[i].phi_index) << "record " << i;
    EXPECT_EQ(a[i].neighbor_qubit, b[i].neighbor_qubit) << "record " << i;
    EXPECT_EQ(a[i].theta1_index, b[i].theta1_index) << "record " << i;
    EXPECT_EQ(a[i].phi1_index, b[i].phi1_index) << "record " << i;
    EXPECT_EQ(a[i].qvf, b[i].qvf) << "record " << i;  // bit-identical engine
    EXPECT_EQ(a[i].pa, b[i].pa) << "record " << i;
    EXPECT_EQ(a[i].pb, b[i].pb) << "record " << i;
  }
}

TEST(RecordSink, SingleCampaignStreamsWholePointsBitIdentically) {
  auto spec = quick_spec();
  const auto accumulated = run_single_fault_campaign(spec);

  CollectingSink sink;
  spec.record_sink = &sink;
  const auto streamed = run_single_fault_campaign(spec);

  EXPECT_TRUE(streamed.records.empty())
      << "sink mode must not also accumulate";
  EXPECT_EQ(streamed.meta.executions, accumulated.meta.executions);
  EXPECT_EQ(streamed.meta.faultfree_qvf, accumulated.meta.faultfree_qvf);
  EXPECT_EQ(sink.num_blocks(), accumulated.points.size())
      << "one emitted block per injection point";
  expect_identical_records(sink.sorted(), accumulated.records);
}

TEST(RecordSink, DoubleCampaignStreamsWholePointsBitIdentically) {
  auto spec = quick_spec();
  spec.grid.theta_step_deg = 90.0;
  spec.grid.phi_step_deg = 90.0;
  spec.grid.phi_max_deg = 180.0;
  spec.max_points = 4;
  const auto accumulated = run_double_fault_campaign(spec);

  CollectingSink sink;
  spec.record_sink = &sink;
  const auto streamed = run_double_fault_campaign(spec);

  EXPECT_TRUE(streamed.records.empty());
  EXPECT_EQ(streamed.meta.executions, accumulated.meta.executions);
  expect_identical_records(sink.sorted(), accumulated.records);
}

// ---------------------------------------------------------------- report

TEST(Report, AngleLabels) {
  EXPECT_EQ(angle_label(0.0), "0");
  EXPECT_EQ(angle_label(kPi), "pi");
  EXPECT_EQ(angle_label(kPi / 4), "pi/4");
  EXPECT_EQ(angle_label(3 * kPi / 4), "3pi/4");
  EXPECT_EQ(angle_label(-kPi / 2), "-pi/2");
}

TEST(Report, HeatmapRendering) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const std::string out = render_heatmap(result.mean_heatmap(), "test map");
  EXPECT_NE(out.find("test map"), std::string::npos);
  EXPECT_NE(out.find("pi"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Report, CampaignSummaryMentionsKeyFigures) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const std::string out = render_campaign_summary(result);
  EXPECT_NE(out.find("fault-free QVF"), std::string::npos);
  EXPECT_NE(out.find("masked="), std::string::npos);
}

TEST(Report, NamedFaultComparison) {
  const std::vector<NamedFaultQvf> a{{"t", 0.3, 4}, {"z", 0.5, 4}};
  const std::vector<NamedFaultQvf> b{{"t", 0.32, 4}, {"z", 0.48, 4}};
  const std::string out =
      render_named_fault_comparison(a, b, "sim", "machine");
  EXPECT_NE(out.find("max |diff|"), std::string::npos);
  const std::vector<NamedFaultQvf> mismatched{{"x", 0.1, 1}, {"z", 0.2, 1}};
  EXPECT_THROW(render_named_fault_comparison(a, mismatched, "a", "b"), Error);
}

TEST(Report, HeatmapCsv) {
  const auto spec = quick_spec();
  const auto result = run_single_fault_campaign(spec);
  const std::string path = ::testing::TempDir() + "qufi_heatmap.csv";
  write_heatmap_csv(result.mean_heatmap(), path);
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, result.mean_heatmap().phi_rad.size() + 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qufi
