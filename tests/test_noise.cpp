// Noise subsystem tests: Kraus channels (CPTP sweeps), readout, backend
// properties, noise model construction, drift model.
#include <gtest/gtest.h>

#include <cmath>

#include "noise/backend_props.hpp"
#include "noise/channels.hpp"
#include "noise/drift.hpp"
#include "noise/noise_model.hpp"
#include "noise/readout.hpp"
#include "sim/density_matrix.hpp"
#include "util/error.hpp"

namespace qufi::noise {
namespace {

// ------------------------------------------------------------- channels

class Depolarizing1Cptp : public ::testing::TestWithParam<double> {};

TEST_P(Depolarizing1Cptp, IsCptp) {
  EXPECT_TRUE(depolarizing1(GetParam()).is_cptp());
}
INSTANTIATE_TEST_SUITE_P(Probabilities, Depolarizing1Cptp,
                         ::testing::Values(0.0, 1e-4, 0.01, 0.25, 0.75, 1.0));

class Depolarizing2Cptp : public ::testing::TestWithParam<double> {};

TEST_P(Depolarizing2Cptp, IsCptp) {
  const auto ch = depolarizing2(GetParam());
  EXPECT_TRUE(ch.is_cptp());
  if (GetParam() > 0) {
    EXPECT_EQ(ch.ops.size(), 16u);
  }
}
INSTANTIATE_TEST_SUITE_P(Probabilities, Depolarizing2Cptp,
                         ::testing::Values(0.0, 1e-3, 0.0125, 0.5, 1.0));

class DampingCptp : public ::testing::TestWithParam<double> {};

TEST_P(DampingCptp, AmplitudeAndPhaseDampingAreCptp) {
  EXPECT_TRUE(amplitude_damping(GetParam()).is_cptp());
  EXPECT_TRUE(phase_damping(GetParam()).is_cptp());
}
INSTANTIATE_TEST_SUITE_P(Gammas, DampingCptp,
                         ::testing::Values(0.0, 0.001, 0.1, 0.5, 0.99, 1.0));

TEST(Channels, ProbabilityValidation) {
  EXPECT_THROW(depolarizing1(-0.1), Error);
  EXPECT_THROW(depolarizing1(1.1), Error);
  EXPECT_THROW(amplitude_damping(2.0), Error);
  EXPECT_THROW(pauli_channel(0.6, 0.6, 0.0), Error);
}

TEST(Channels, AmplitudeDampingDecaysExcitedState) {
  sim::DensityMatrix dm(1);
  dm.apply_unitary1(circ::gate_matrix1(circ::GateKind::X, {}), 0);
  dm.apply_kraus1(amplitude_damping(0.3).ops, 0);
  EXPECT_NEAR(dm.probabilities()[1], 0.7, 1e-12);
  EXPECT_NEAR(dm.probabilities()[0], 0.3, 1e-12);
}

TEST(Channels, PhaseDampingKillsCoherenceOnly) {
  sim::DensityMatrix dm(1);
  dm.apply_unitary1(circ::gate_matrix1(circ::GateKind::H, {}), 0);
  dm.apply_kraus1(phase_damping(1.0).ops, 0);
  EXPECT_NEAR(dm.probabilities()[0], 0.5, 1e-12);
  EXPECT_NEAR(std::abs(dm.at(0, 1)), 0.0, 1e-12);
}

class ThermalRelaxCptp
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ThermalRelaxCptp, IsCptp) {
  const auto [t, t1, t2] = GetParam();
  EXPECT_TRUE(thermal_relaxation(t, t1, t2).is_cptp());
}
INSTANTIATE_TEST_SUITE_P(
    Durations, ThermalRelaxCptp,
    ::testing::Values(std::tuple{0.0, 100.0, 80.0},
                      std::tuple{35.5, 100.0, 80.0},
                      std::tuple{300.0, 100.0, 80.0},
                      std::tuple{5351.0, 100.0, 80.0},
                      std::tuple{35.5, 150.0, 290.0},  // T2 close to 2*T1
                      std::tuple{1e6, 100.0, 80.0}));

TEST(Channels, ThermalRelaxationMatchesT1T2Decay) {
  // After time t: P(1) decays by exp(-t/T1); |rho01| decays by exp(-t/T2).
  const double t1 = 100.0, t2 = 60.0;    // us
  const double t_ns = 50000.0;           // 50 us
  const double t_us = 50.0;

  sim::DensityMatrix excited(1);
  excited.apply_unitary1(circ::gate_matrix1(circ::GateKind::X, {}), 0);
  excited.apply_kraus1(thermal_relaxation(t_ns, t1, t2).ops, 0);
  EXPECT_NEAR(excited.probabilities()[1], std::exp(-t_us / t1), 1e-9);

  sim::DensityMatrix coherent(1);
  coherent.apply_unitary1(circ::gate_matrix1(circ::GateKind::H, {}), 0);
  coherent.apply_kraus1(thermal_relaxation(t_ns, t1, t2).ops, 0);
  EXPECT_NEAR(std::abs(coherent.at(0, 1)), 0.5 * std::exp(-t_us / t2), 1e-9);
}

TEST(Channels, ThermalRelaxationValidation) {
  EXPECT_THROW(thermal_relaxation(-1.0, 100, 80), Error);
  EXPECT_THROW(thermal_relaxation(10, 0.0, 80), Error);
  EXPECT_THROW(thermal_relaxation(10, 100, 250), Error);  // T2 > 2*T1
}

TEST(Channels, PauliChannelFlipsWithGivenProbability) {
  sim::DensityMatrix dm(1);
  dm.apply_kraus1(bit_flip(0.25).ops, 0);
  EXPECT_NEAR(dm.probabilities()[1], 0.25, 1e-12);
  EXPECT_TRUE(bit_flip(0.25).is_cptp());
  EXPECT_TRUE(phase_flip(0.4).is_cptp());
  EXPECT_TRUE(pauli_channel(0.1, 0.2, 0.3).is_cptp());
}

TEST(Channels, CoherentRotationsAreUnitary) {
  EXPECT_TRUE(coherent_z_rotation(0.01).is_cptp());
  EXPECT_TRUE(coherent_x_rotation(-0.02).is_cptp());
  EXPECT_EQ(coherent_z_rotation(0.01).ops.size(), 1u);
}

// -------------------------------------------------------------- readout

TEST(Readout, ConfusionMixesDistribution) {
  std::vector<double> probs{1.0, 0.0};  // certainly "0"
  const int clbits[] = {0};
  const ReadoutError errors[] = {{0.1, 0.2}};
  apply_readout_error(probs, clbits, errors);
  EXPECT_NEAR(probs[0], 0.9, 1e-12);
  EXPECT_NEAR(probs[1], 0.1, 1e-12);
}

TEST(Readout, TwoBitFactorization) {
  std::vector<double> probs{0.0, 0.0, 0.0, 1.0};  // "11"
  const int clbits[] = {0, 1};
  const ReadoutError errors[] = {{0.0, 0.1}, {0.0, 0.2}};
  apply_readout_error(probs, clbits, errors);
  EXPECT_NEAR(probs[0b11], 0.9 * 0.8, 1e-12);
  EXPECT_NEAR(probs[0b10], 0.1 * 0.8, 1e-12);
  EXPECT_NEAR(probs[0b01], 0.9 * 0.2, 1e-12);
  EXPECT_NEAR(probs[0b00], 0.1 * 0.2, 1e-12);
}

TEST(Readout, PreservesTotalProbability) {
  std::vector<double> probs{0.25, 0.25, 0.25, 0.25};
  const int clbits[] = {0, 1};
  const ReadoutError errors[] = {{0.03, 0.07}, {0.02, 0.05}};
  apply_readout_error(probs, clbits, errors);
  double total = 0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Readout, SampleFlipsDeterministicInSeed) {
  util::Xoshiro256pp rng1(9), rng2(9);
  const int clbits[] = {0, 2};
  const ReadoutError errors[] = {{0.5, 0.5}, {0.5, 0.5}};
  const auto a = sample_readout_flips(0b101, clbits, errors, rng1);
  const auto b = sample_readout_flips(0b101, clbits, errors, rng2);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------- backend props

TEST(BackendProps, FakeBackendsValidate) {
  for (const auto& props :
       {fake_casablanca(), fake_jakarta(), fake_linear(7),
        fake_fully_connected(5), fake_grid(2, 4)}) {
    EXPECT_NO_THROW(props.validate()) << props.name;
    EXPECT_GT(props.num_qubits, 0);
  }
}

TEST(BackendProps, CasablancaTopology) {
  const auto props = fake_casablanca();
  EXPECT_EQ(props.num_qubits, 7);
  EXPECT_EQ(props.coupling.size(), 6u);  // the H-shaped tree
  EXPECT_TRUE(props.connected(0, 1));
  EXPECT_TRUE(props.connected(5, 6));
  EXPECT_FALSE(props.connected(0, 6));
  EXPECT_GT(props.cx_spec(1, 3).error, 0.0);
  EXPECT_GT(props.cx_spec(3, 1).duration_ns, 0.0);  // order-insensitive
  EXPECT_THROW(props.cx_spec(0, 6), Error);
}

TEST(BackendProps, LinearAndGridShapes) {
  EXPECT_EQ(fake_linear(5).coupling.size(), 4u);
  EXPECT_EQ(fake_grid(3, 3).coupling.size(), 12u);
  EXPECT_EQ(fake_fully_connected(5).coupling.size(), 10u);
}

TEST(BackendProps, T2Bounded) {
  for (const auto& props : {fake_casablanca(), fake_jakarta(), fake_linear(12)}) {
    for (const auto& q : props.qubits) {
      EXPECT_LE(q.t2_us, 2.0 * q.t1_us + 1e-9) << props.name;
    }
  }
}

// ---------------------------------------------------------- noise model

TEST(NoiseModel, IdealModelHasNoChannels) {
  const auto nm = NoiseModel::ideal();
  EXPECT_TRUE(nm.is_ideal());
  EXPECT_TRUE(nm.channels_after_1q(circ::GateKind::SX, 0).empty());
  EXPECT_EQ(nm.channels_after_2q(0, 1).depol, nullptr);
  EXPECT_TRUE(nm.readout(0).is_trivial());
}

TEST(NoiseModel, FromBackendBuildsChannels) {
  const auto nm = NoiseModel::from_backend(fake_casablanca());
  EXPECT_FALSE(nm.is_ideal());
  EXPECT_EQ(nm.num_qubits(), 7);
  const auto chans = nm.channels_after_1q(circ::GateKind::SX, 0);
  EXPECT_EQ(chans.size(), 2u);  // thermal relaxation + depolarizing
  for (const auto* ch : chans) EXPECT_TRUE(ch->is_cptp());

  const auto tq = nm.channels_after_2q(0, 1);
  ASSERT_NE(tq.depol, nullptr);
  EXPECT_TRUE(tq.depol->is_cptp());
  EXPECT_TRUE(tq.relax_a->is_cptp());
}

TEST(NoiseModel, VirtualGatesAreNoiseFree) {
  const auto nm = NoiseModel::from_backend(fake_casablanca());
  EXPECT_TRUE(nm.channels_after_1q(circ::GateKind::RZ, 0).empty());
  EXPECT_TRUE(nm.channels_after_1q(circ::GateKind::I, 0).empty());
  // The fault-injector U gate is exempt by design.
  EXPECT_TRUE(nm.channels_after_1q(circ::GateKind::U, 0).empty());
  // Physical gates are not.
  EXPECT_FALSE(nm.channels_after_1q(circ::GateKind::X, 0).empty());
  EXPECT_FALSE(nm.channels_after_1q(circ::GateKind::H, 0).empty());
}

TEST(NoiseModel, ScaleZeroIsIdeal) {
  const auto nm = NoiseModel::from_backend(fake_casablanca(), 0.0);
  EXPECT_TRUE(nm.is_ideal());
}

TEST(NoiseModel, UncalibratedEdgeFallsBack) {
  const auto nm = NoiseModel::from_backend(fake_casablanca());
  const auto tq = nm.channels_after_2q(0, 6);  // not a coupling edge
  ASSERT_NE(tq.depol, nullptr);
  EXPECT_TRUE(tq.depol->is_cptp());
}

TEST(NoiseModel, DurationsExposed) {
  const auto nm = NoiseModel::from_backend(fake_casablanca());
  EXPECT_NEAR(nm.duration_1q_ns(0), 35.5, 1e-9);
  EXPECT_GT(nm.duration_2q_ns(0, 1), 100.0);
  EXPECT_GT(nm.measure_duration_ns(), 1000.0);
  EXPECT_TRUE(nm.idle_relaxation(0, 100.0).is_cptp());
}

// ----------------------------------------------------------------- drift

TEST(Drift, DeterministicPerJob) {
  const DriftModel drift;
  const auto nominal = fake_jakarta();
  const auto a = drift.sample(nominal, 3);
  const auto b = drift.sample(nominal, 3);
  const auto c = drift.sample(nominal, 4);
  EXPECT_DOUBLE_EQ(a.qubits[0].t1_us, b.qubits[0].t1_us);
  EXPECT_NE(a.qubits[0].t1_us, c.qubits[0].t1_us);
}

TEST(Drift, StaysNearNominal) {
  const DriftModel drift;
  const auto nominal = fake_jakarta();
  for (std::uint64_t job = 0; job < 20; ++job) {
    const auto d = drift.sample(nominal, job);
    EXPECT_NO_THROW(d.validate());
    for (int q = 0; q < d.num_qubits; ++q) {
      const double ratio = d.qubits[static_cast<std::size_t>(q)].t1_us /
                           nominal.qubits[static_cast<std::size_t>(q)].t1_us;
      EXPECT_GT(ratio, 0.45);
      EXPECT_LT(ratio, 1.55);
    }
  }
}

TEST(Drift, CoherentAnglesSmall) {
  const DriftModel drift;
  const auto angles = drift.sample_coherent(7, 1);
  EXPECT_EQ(angles.size(), 7u);
  for (const auto& a : angles) {
    EXPECT_LT(std::abs(a.z_angle), 0.1);
    EXPECT_LT(std::abs(a.x_angle), 0.1);
  }
}

}  // namespace
}  // namespace qufi::noise
