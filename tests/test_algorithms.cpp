// Algorithm-library tests: ideal outputs across widths and parameters.
#include <gtest/gtest.h>

#include "algorithms/algorithms.hpp"
#include "sim/statevector.hpp"
#include "util/bitstring.hpp"
#include "util/error.hpp"

namespace qufi::algo {
namespace {

double expected_probability(const AlgorithmCircuit& bench) {
  const auto probs = sim::ideal_clbit_probabilities(bench.circuit);
  double total = 0.0;
  for (const auto& s : bench.expected_outputs) {
    total += probs[util::from_bitstring(s)];
  }
  return total;
}

// ----------------------------------------------------- Bernstein-Vazirani

class BvAllSecrets : public ::testing::TestWithParam<int> {};

TEST_P(BvAllSecrets, RecoversEverySecret) {
  const int width = GetParam();
  const int data = width - 1;
  for (std::uint64_t secret = 0; secret < (1ULL << data); ++secret) {
    const auto bench = bernstein_vazirani(width, secret);
    EXPECT_EQ(bench.expected_outputs[0], util::to_bitstring(secret, data));
    EXPECT_NEAR(expected_probability(bench), 1.0, 1e-9)
        << "secret " << secret;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BvAllSecrets, ::testing::Values(2, 3, 4, 5));

TEST(Bv, DefaultSecretAlternates) {
  EXPECT_EQ(default_bv_secret(4), 0b101u);
  EXPECT_EQ(default_bv_secret(5), 0b1010u);
  EXPECT_EQ(default_bv_secret(7), 0b101010u);
}

TEST(Bv, Validation) {
  EXPECT_THROW(bernstein_vazirani(1, 0), Error);
  EXPECT_THROW(bernstein_vazirani(3, 0b100), Error);  // secret too wide
}

TEST(Bv, PaperFig4Configuration) {
  // 4-qubit BV with secret 101: the Fig. 4 example.
  const auto bench = bernstein_vazirani(4, 0b101);
  EXPECT_EQ(bench.expected_outputs[0], "101");
  EXPECT_EQ(bench.circuit.num_qubits(), 4);
  EXPECT_EQ(bench.circuit.num_clbits(), 3);
  EXPECT_NEAR(expected_probability(bench), 1.0, 1e-9);
}

// --------------------------------------------------------- Deutsch-Jozsa

class DjWidths : public ::testing::TestWithParam<int> {};

TEST_P(DjWidths, ConstantOraclesGiveZeros) {
  for (auto oracle : {DjOracle::ConstantZero, DjOracle::ConstantOne}) {
    const auto bench = deutsch_jozsa(GetParam(), oracle);
    EXPECT_EQ(bench.expected_outputs[0],
              std::string(static_cast<std::size_t>(GetParam() - 1), '0'));
    EXPECT_NEAR(expected_probability(bench), 1.0, 1e-9);
  }
}

TEST_P(DjWidths, BalancedOracleGivesMask) {
  const int data = GetParam() - 1;
  for (std::uint64_t mask = 1; mask < (1ULL << data); ++mask) {
    const auto bench = deutsch_jozsa(GetParam(), DjOracle::Balanced, mask);
    EXPECT_EQ(bench.expected_outputs[0], util::to_bitstring(mask, data));
    EXPECT_NEAR(expected_probability(bench), 1.0, 1e-9) << "mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DjWidths, ::testing::Values(2, 3, 4, 5));

TEST(Dj, BalancedNeedsNonzeroMask) {
  EXPECT_THROW(deutsch_jozsa(4, DjOracle::Balanced, 0), Error);
}

// ------------------------------------------------------------------- QFT

class QftAllValues : public ::testing::TestWithParam<int> {};

TEST_P(QftAllValues, BenchmarkRecoversEveryValue) {
  const int n = GetParam();
  for (std::uint64_t value = 0; value < (1ULL << n); ++value) {
    const auto bench = qft_benchmark(n, value);
    EXPECT_NEAR(expected_probability(bench), 1.0, 1e-9)
        << "n=" << n << " value=" << value;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QftAllValues, ::testing::Values(1, 2, 3, 4, 5));

TEST(Qft, InverseUndoesQft) {
  circ::QuantumCircuit qc(3);
  qc.x(0).x(2);
  qc.compose(qft_circuit(3));
  qc.compose(iqft_circuit(3));
  const auto probs = sim::run_statevector(qc).probabilities();
  EXPECT_NEAR(probs[0b101], 1.0, 1e-9);
}

TEST(Qft, GateInventory) {
  const auto qc = qft_circuit(4);
  const auto ops = qc.count_ops();
  EXPECT_EQ(ops.at("h"), 4);
  EXPECT_EQ(ops.at("cp"), 6);  // n(n-1)/2 controlled phases
  EXPECT_EQ(ops.at("swap"), 2);
}

// ------------------------------------------------------------------- GHZ

class GhzWidths : public ::testing::TestWithParam<int> {};

TEST_P(GhzWidths, TwoCorrectStatesSplitEvenly) {
  const auto bench = ghz(GetParam());
  ASSERT_EQ(bench.expected_outputs.size(), 2u);
  const auto probs = sim::ideal_clbit_probabilities(bench.circuit);
  for (const auto& s : bench.expected_outputs) {
    EXPECT_NEAR(probs[util::from_bitstring(s)], 0.5, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, GhzWidths, ::testing::Values(2, 3, 4, 5, 6));

// ---------------------------------------------------------------- Grover

TEST(Grover, TwoQubitFindsEveryMark) {
  for (std::uint64_t marked = 0; marked < 4; ++marked) {
    const auto bench = grover(2, marked);
    const auto probs = sim::ideal_clbit_probabilities(bench.circuit);
    EXPECT_NEAR(probs[marked], 1.0, 1e-9) << "marked " << marked;
  }
}

TEST(Grover, ThreeQubitAmplifiesMark) {
  for (std::uint64_t marked : {0ULL, 3ULL, 7ULL}) {
    const auto bench = grover(3, marked);
    const auto probs = sim::ideal_clbit_probabilities(bench.circuit);
    // Two iterations on 8 states: ~0.945 success probability.
    EXPECT_GT(probs[marked], 0.9) << "marked " << marked;
  }
}

TEST(Grover, Validation) {
  EXPECT_THROW(grover(4, 0), Error);
  EXPECT_THROW(grover(2, 9), Error);
}

// -------------------------------------------------------- random circuit

TEST(RandomCircuit, DeterministicInSeed) {
  const auto a = random_circuit(3, 5, 42);
  const auto b = random_circuit(3, 5, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.instructions()[i].kind, b.instructions()[i].kind);
    EXPECT_EQ(a.instructions()[i].qubits, b.instructions()[i].qubits);
  }
}

TEST(RandomCircuit, DifferentSeedsDiffer) {
  const auto a = random_circuit(3, 8, 1);
  const auto b = random_circuit(3, 8, 2);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.instructions()[i].kind != b.instructions()[i].kind ||
              a.instructions()[i].qubits != b.instructions()[i].qubits;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomCircuit, TwoQubitFractionZeroMeansNoCx) {
  const auto qc = random_circuit(4, 10, 7, 0.0);
  EXPECT_EQ(qc.count_ops().count("cx"), 0u);
}

// --------------------------------------------------------------- IQP

TEST(Iqp, DeterministicAndMeasured) {
  const auto a = iqp_circuit(4, 9);
  const auto b = iqp_circuit(4, 9);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.count_ops().at("measure"), 4);
  EXPECT_EQ(a.count_ops().at("h"), 8);  // two H layers
}

TEST(Iqp, ProducesValidDistribution) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto qc = iqp_circuit(4, seed);
    const auto probs = sim::ideal_clbit_probabilities(qc);
    double total = 0.0;
    for (double p : probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9) << "seed " << seed;
  }
}

TEST(Iqp, DiagonalLayerCommutes) {
  // The middle layer is diagonal: circuits with the diagonal gates in any
  // order are identical. Reversing the 1q phase layer must not change the
  // distribution (sanity check of the IQP structure).
  const auto qc = iqp_circuit(3, 5, 1.0);
  const auto probs = sim::ideal_clbit_probabilities(qc);
  EXPECT_EQ(probs.size(), 8u);
}

// -------------------------------------------------------- paper_circuit

TEST(PaperCircuit, BuildsAllThree) {
  for (const char* name : {"bv", "dj", "qft"}) {
    for (int width = 4; width <= 7; ++width) {
      const auto bench = paper_circuit(name, width);
      EXPECT_EQ(bench.circuit.num_qubits(), width) << name;
      EXPECT_NEAR(expected_probability(bench), 1.0, 1e-9)
          << name << " width " << width;
    }
  }
  EXPECT_THROW(paper_circuit("shor", 4), Error);
}

}  // namespace
}  // namespace qufi::algo
